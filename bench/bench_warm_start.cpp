// WARM START: the checkpoint/restore subsystem's A/B case.  A sweep over a
// nonlinear circuit pays its start-up price in every run: Newton has to find
// the DC operating point from zero and the first simulated interval is
// burned on start-up transients.  With a warm-start snapshot the settle
// interval is simulated once, saved (core/snapshot), and every subsequent
// run resumes from the converged state instead of re-converging.
//
// Benchmarks (both end at the same simulated timestamp, so the measured
// window is identical):
//   * cold_start:   build fresh -> run(settle + window)
//   * warm_restore: decode_snapshot(saved-at-settle) -> run(window)
// The Arg is the settle interval in ms: the longer a model needs to settle,
// the larger the warm-start win, while the restore price stays flat (decode
// + rebuild + overlay).
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <vector>

#include "core/scenario.hpp"
#include "core/snapshot.hpp"
#include "eln/network.hpp"
#include "eln/nonlinear.hpp"
#include "eln/primitives.hpp"
#include "eln/sources.hpp"

namespace core = sca::core;
namespace de = sca::de;
namespace eln = sca::eln;
using namespace sca::de::literals;

namespace {

constexpr de::time k_window = de::time::from_fs(2'000'000'000'000);  // 2 ms

/// Full-wave-ish rectifier feeding a big RC reservoir: the output capacitor
/// charges over many source cycles, so the DC operating point is genuinely
/// expensive to reach — the workload warm start exists for.
void define_rectifier() {
    core::scenario::define(
        "warm_start_rectifier", core::params{{"c", 4.7e-6}},
        [](core::testbench& tb, const core::params& p) {
            auto& net = tb.make<eln::network>("net");
            net.set_timestep(5.0, de::time_unit::us);
            auto gnd = net.ground();
            auto vin = net.create_node("vin");
            auto vout = net.create_node("vout");
            tb.make<eln::vsource>("vs", net, vin, gnd,
                                  eln::waveform::sine(5.0, 1e3));
            tb.make<eln::diode>("d", net, vin, vout);
            tb.make<eln::resistor>("rl", net, vout, gnd, 10e3);
            tb.make<eln::capacitor>("cl", net, vout, gnd, p.get("c", 4.7e-6));
            tb.probe("vout", [&net, vout] { return net.voltage(vout); });
            tb.measure("vout_final", [&net, vout] { return net.voltage(vout); });
            tb.set_sample_period(50_us);
            tb.set_stop_time(k_window);
        });
}

de::time settle_of(const benchmark::State& state) {
    return de::time(static_cast<double>(state.range(0)), de::time_unit::ms);
}

/// Every run re-converges: build from scratch, simulate settle + window.
void cold_start(benchmark::State& state) {
    define_rectifier();
    auto sc = core::scenario::find("warm_start_rectifier");
    const de::time settle = settle_of(state);
    for (auto _ : state) {
        auto tb = sc.build();
        tb->run(settle);
        tb->run(k_window);
        benchmark::DoNotOptimize(tb->measurement("vout_final"));
    }
}

/// The settle interval is simulated once outside the timed loop; every run
/// restores the snapshot and simulates only the measured window.
void warm_restore(benchmark::State& state) {
    define_rectifier();
    auto sc = core::scenario::find("warm_start_rectifier");
    auto settled = sc.build();
    settled->run(settle_of(state));
    const std::vector<std::uint8_t> snap = core::encode_snapshot(*settled);
    settled.reset();
    state.counters["snapshot_bytes"] = static_cast<double>(snap.size());
    for (auto _ : state) {
        auto tb = core::decode_snapshot(snap);
        tb->run(k_window);
        benchmark::DoNotOptimize(tb->measurement("vout_final"));
    }
}

/// The restore price alone (decode + rebuild + overlay, no simulation) —
/// what a run pays before its first warm timestep.
void restore_only(benchmark::State& state) {
    define_rectifier();
    auto sc = core::scenario::find("warm_start_rectifier");
    auto settled = sc.build();
    settled->run(settle_of(state));
    const std::vector<std::uint8_t> snap = core::encode_snapshot(*settled);
    settled.reset();
    for (auto _ : state) {
        auto tb = core::decode_snapshot(snap);
        benchmark::DoNotOptimize(tb.get());
    }
}

}  // namespace

BENCHMARK(cold_start)->Arg(2)->Arg(10)->Arg(50)->Unit(benchmark::kMillisecond);
BENCHMARK(warm_restore)->Arg(2)->Arg(10)->Arg(50)->Unit(benchmark::kMillisecond);
BENCHMARK(restore_only)->Arg(2)->Arg(10)->Arg(50)->Unit(benchmark::kMillisecond);

SCA_BENCH_MAIN(bench_warm_start)
