// CLAIM-STIFF (paper §2 + phase 2): multi-domain systems "usually lead to
// stiff nonlinear models that exhibit time constants whose values differ by
// several orders of magnitude. This property imposes strong numerical
// constraints"; phase 2 therefore requires "simulation using variable time
// steps".
//
// A two-time-constant linear system (fast tau_f, slow tau_s = ratio*tau_f)
// integrated to 5*tau_s three ways:
//   fixed_fine    - fixed step resolving the fast mode (accurate, slow)
//   fixed_coarse  - fixed step sized for the slow mode (fast, misses the
//                   fast transient)
//   variable      - LTE-controlled steps (small during the fast transient,
//                   growing afterwards)
// Counters: steps taken and max relative error against the analytic sum of
// exponentials.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <cmath>

#include "solver/equation_system.hpp"
#include "solver/linear_dae.hpp"
#include "solver/nonlinear_dae.hpp"

namespace solver = sca::solver;

namespace {

constexpr double k_tau_fast = 1e-7;

solver::equation_system stiff_system(double ratio) {
    // Two decoupled decays solved together; x0 = [1, 1].
    solver::equation_system sys;
    const std::size_t xf = sys.add_unknown("fast");
    const std::size_t xs = sys.add_unknown("slow");
    sys.add_a(xf, xf, 1.0 / k_tau_fast);
    sys.add_b(xf, xf, 1.0);
    sys.add_a(xs, xs, 1.0 / (k_tau_fast * ratio));
    sys.add_b(xs, xs, 1.0);
    return sys;
}

double max_rel_error(const std::vector<double>& x, double t, double ratio) {
    const double ef = std::exp(-t / k_tau_fast);
    const double es = std::exp(-t / (k_tau_fast * ratio));
    return std::max(std::abs(x[0] - ef), std::abs(x[1] - es) / std::max(es, 1e-12));
}

void fixed_fine(benchmark::State& state) {
    const double ratio = static_cast<double>(state.range(0));
    const double t_end = 5.0 * k_tau_fast * ratio;
    const double h = k_tau_fast / 5.0;
    double err = 0.0;
    std::uint64_t steps = 0;
    for (auto _ : state) {
        auto sys = stiff_system(ratio);
        solver::linear_dae_solver s(sys, solver::integration_method::backward_euler, h);
        s.set_initial_state({1.0, 1.0}, 0.0);
        s.advance_to(t_end);
        err = max_rel_error(s.x(), s.time(), ratio);
        steps = s.solve_count();
    }
    state.counters["steps"] = static_cast<double>(steps);
    state.counters["max_rel_err"] = err;
}

void fixed_coarse(benchmark::State& state) {
    const double ratio = static_cast<double>(state.range(0));
    const double t_end = 5.0 * k_tau_fast * ratio;
    const double h = k_tau_fast * ratio / 100.0;  // sized for the slow mode
    double err_at_fast_scale = 0.0;
    std::uint64_t steps = 0;
    for (auto _ : state) {
        auto sys = stiff_system(ratio);
        solver::linear_dae_solver s(sys, solver::integration_method::backward_euler, h);
        s.set_initial_state({1.0, 1.0}, 0.0);
        // Error probed right after the fast transient: the coarse grid has
        // completely skipped it (fast state should be ~0 after 10 tau_f but
        // BE with h >> tau_f still reports a finite remnant of step 1).
        s.step();
        err_at_fast_scale = std::abs(s.x()[0] - std::exp(-s.time() / k_tau_fast));
        s.advance_to(t_end);
        steps = s.solve_count();
        benchmark::DoNotOptimize(s.x());
    }
    state.counters["steps"] = static_cast<double>(steps);
    state.counters["fast_transient_err"] = err_at_fast_scale;
}

void variable_step(benchmark::State& state) {
    const double ratio = static_cast<double>(state.range(0));
    const double t_end = 5.0 * k_tau_fast * ratio;
    double err = 0.0;
    std::uint64_t steps = 0;
    std::uint64_t rejected = 0;
    for (auto _ : state) {
        auto sys = stiff_system(ratio);
        solver::nonlinear_options opt;
        opt.h_init = k_tau_fast / 10.0;
        opt.h_min = k_tau_fast / 1e4;
        opt.h_max = t_end / 50.0;
        opt.lte_reltol = 1e-4;
        opt.lte_abstol = 1e-10;
        solver::nonlinear_dae_solver s(sys, opt);
        s.set_initial_state({1.0, 1.0}, 0.0);
        s.advance_to(t_end);
        err = max_rel_error(s.x(), s.time(), ratio);
        steps = s.steps_accepted();
        rejected = s.steps_rejected();
    }
    state.counters["steps"] = static_cast<double>(steps);
    state.counters["rejected"] = static_cast<double>(rejected);
    state.counters["max_rel_err"] = err;
}

}  // namespace

BENCHMARK(fixed_fine)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);
BENCHMARK(fixed_coarse)->Arg(1000)->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK(variable_step)->Arg(1000)->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);

SCA_BENCH_MAIN(bench_stiff_variable_step)
