// Shared model-building helpers for the benchmark suite.
#ifndef SCA_BENCH_UTIL_HPP
#define SCA_BENCH_UTIL_HPP

#include <memory>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "eln/converter.hpp"
#include "eln/network.hpp"
#include "eln/primitives.hpp"
#include "eln/sources.hpp"
#include "tdf/block.hpp"
#include "tdf/module.hpp"
#include "tdf/port.hpp"

namespace bench_util {

namespace de = sca::de;
namespace tdf = sca::tdf;
namespace eln = sca::eln;

/// TDF sine source with configurable timestep.
struct sine_src : tdf::module {
    tdf::out<double> out;
    double amp, freq;
    de::time ts;
    sine_src(const de::module_name& nm, double a, double f, de::time step)
        : tdf::module(nm), out("out"), amp(a), freq(f), ts(step) {}
    void set_attributes() override { set_timestep(ts); }
    void processing() override {
        out.write(amp * std::sin(2.0 * 3.141592653589793 * freq *
                                 tdf_time().to_seconds()));
    }
    [[nodiscard]] bool has_block_processing() const override { return true; }
    void processing(tdf::block_view& blk) override {
        double* y = blk.out_span(out);
        for (std::uint64_t i = 0; i < blk.count(); ++i) {
            y[i] = amp * std::sin(2.0 * 3.141592653589793 * freq *
                                  blk.time_at(i).to_seconds());
        }
    }
};

/// TDF sink that only consumes (keeps the cluster busy end to end).
struct null_sink : tdf::module {
    tdf::in<double> in;
    double last = 0.0;
    explicit null_sink(const de::module_name& nm) : tdf::module(nm), in("in") {}
    void processing() override {
        for (unsigned k = 0; k < in.rate(); ++k) last = in.read(k);
    }
    [[nodiscard]] bool has_block_processing() const override { return true; }
    void processing(tdf::block_view& blk) override {
        const double* x = blk.in_span(in);
        last = x[blk.count() * in.rate() - 1];
    }
};

/// TDF gain stage.
struct gain_stage : tdf::module {
    tdf::in<double> in;
    tdf::out<double> out;
    double k;
    gain_stage(const de::module_name& nm, double gain)
        : tdf::module(nm), in("in"), out("out"), k(gain) {}
    void processing() override { out.write(k * in.read()); }
    [[nodiscard]] bool has_block_processing() const override { return true; }
    void processing(tdf::block_view& blk) override {
        const double* x = blk.in_span(in);
        double* y = blk.out_span(out);
        for (std::uint64_t i = 0; i < blk.count(); ++i) y[i] = k * x[i];
    }
};

/// Owning bundle for an RC ladder network: source -> N sections -> load.
struct rc_ladder {
    std::unique_ptr<eln::network> net;
    std::vector<std::unique_ptr<eln::component>> parts;
    eln::node out_node;

    rc_ladder(std::size_t sections, de::time step, double r = 100.0, double c = 1e-9) {
        net = std::make_unique<eln::network>(de::module_name("ladder"));
        net->set_timestep(step);
        auto gnd = net->ground();
        auto prev = net->create_node("n0");
        parts.push_back(std::make_unique<eln::vsource>(
            "vs", *net, prev, gnd, eln::waveform::sine(1.0, 10e3)));
        for (std::size_t i = 0; i < sections; ++i) {
            auto node = net->create_node("n" + std::to_string(i + 1));
            parts.push_back(std::make_unique<eln::resistor>(
                "r" + std::to_string(i), *net, prev, node, r));
            parts.push_back(std::make_unique<eln::capacitor>(
                "c" + std::to_string(i), *net, node, gnd, c));
            prev = node;
        }
        out_node = prev;
    }
};

/// Owning bundle for the PWM-switched buck converter shared by
/// bench_switching_restamp and the tests/test_eln.cpp bit-equivalence
/// tests (one netlist, so the bench's bit-identity claim stays covered):
/// 24 V source with ESR + input decoupling — which keep the MNA pivot
/// order value-stable across switch states — high-side DE-controlled
/// switch, freewheel path, LC output filter, 4 ohm load.
struct switched_buck {
    std::unique_ptr<eln::network> net;
    std::vector<std::unique_ptr<eln::component>> parts;
    eln::de_rswitch* hi_side = nullptr;
    eln::node vout_node;

    explicit switched_buck(de::time step = de::time(1.0, de::time_unit::us)) {
        net = std::make_unique<eln::network>(de::module_name("buck"));
        net->set_timestep(step);
        auto gnd = net->ground();
        auto vsrc = net->create_node("vsrc");
        auto vin = net->create_node("vin");
        auto sw = net->create_node("sw");
        vout_node = net->create_node("vout");
        parts.push_back(std::make_unique<eln::vsource>(
            "vs", *net, vsrc, gnd, eln::waveform::dc(24.0)));
        parts.push_back(std::make_unique<eln::resistor>("esr", *net, vsrc, vin, 0.01));
        parts.push_back(std::make_unique<eln::capacitor>("cin", *net, vin, gnd, 10e-6));
        auto hi = std::make_unique<eln::de_rswitch>("hi_side", *net, vin, sw, 0.05, 1e6);
        hi_side = hi.get();
        parts.push_back(std::move(hi));
        parts.push_back(
            std::make_unique<eln::resistor>("freewheel", *net, sw, gnd, 0.5));
        parts.push_back(
            std::make_unique<eln::inductor>("filter_l", *net, sw, vout_node, 100e-6));
        parts.push_back(
            std::make_unique<eln::capacitor>("filter_c", *net, vout_node, gnd, 220e-6));
        parts.push_back(
            std::make_unique<eln::resistor>("load", *net, vout_node, gnd, 4.0));
    }
};

}  // namespace bench_util

#endif  // SCA_BENCH_UTIL_HPP
