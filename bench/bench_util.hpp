// Shared model-building helpers for the benchmark suite.
#ifndef SCA_BENCH_UTIL_HPP
#define SCA_BENCH_UTIL_HPP

#include <memory>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "eln/network.hpp"
#include "eln/primitives.hpp"
#include "eln/sources.hpp"
#include "tdf/module.hpp"
#include "tdf/port.hpp"

namespace bench_util {

namespace de = sca::de;
namespace tdf = sca::tdf;
namespace eln = sca::eln;

/// TDF sine source with configurable timestep.
struct sine_src : tdf::module {
    tdf::out<double> out;
    double amp, freq;
    de::time ts;
    sine_src(const de::module_name& nm, double a, double f, de::time step)
        : tdf::module(nm), out("out"), amp(a), freq(f), ts(step) {}
    void set_attributes() override { set_timestep(ts); }
    void processing() override {
        out.write(amp * std::sin(2.0 * 3.141592653589793 * freq *
                                 tdf_time().to_seconds()));
    }
};

/// TDF sink that only consumes (keeps the cluster busy end to end).
struct null_sink : tdf::module {
    tdf::in<double> in;
    double last = 0.0;
    explicit null_sink(const de::module_name& nm) : tdf::module(nm), in("in") {}
    void processing() override {
        for (unsigned k = 0; k < in.rate(); ++k) last = in.read(k);
    }
};

/// TDF gain stage.
struct gain_stage : tdf::module {
    tdf::in<double> in;
    tdf::out<double> out;
    double k;
    gain_stage(const de::module_name& nm, double gain)
        : tdf::module(nm), in("in"), out("out"), k(gain) {}
    void processing() override { out.write(k * in.read()); }
};

/// Owning bundle for an RC ladder network: source -> N sections -> load.
struct rc_ladder {
    std::unique_ptr<eln::network> net;
    std::vector<std::unique_ptr<eln::component>> parts;
    eln::node out_node;

    rc_ladder(std::size_t sections, de::time step, double r = 100.0, double c = 1e-9) {
        net = std::make_unique<eln::network>(de::module_name("ladder"));
        net->set_timestep(step);
        auto gnd = net->ground();
        auto prev = net->create_node("n0");
        parts.push_back(std::make_unique<eln::vsource>(
            "vs", *net, prev, gnd, eln::waveform::sine(1.0, 10e3)));
        for (std::size_t i = 0; i < sections; ++i) {
            auto node = net->create_node("n" + std::to_string(i + 1));
            parts.push_back(std::make_unique<eln::resistor>(
                "r" + std::to_string(i), *net, prev, node, r));
            parts.push_back(std::make_unique<eln::capacitor>(
                "c" + std::to_string(i), *net, node, gnd, c));
            prev = node;
        }
        out_node = prev;
    }
};

}  // namespace bench_util

#endif  // SCA_BENCH_UTIL_HPP
