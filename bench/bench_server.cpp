// Streaming-server costs: what does putting the simulator behind a socket
// add on top of running it in-process?
//
//   open_close_latency   - full session handshake round trip (connect,
//                          hello, open, close) against an idle server
//   stream_throughput/N  - N concurrent sessions streaming a 100k-sample
//                          TDF waveform each over loopback TCP; the
//                          counter is aggregate delivered samples/s
//   pacing_drift         - a 100 ms sim paced at 10x wall clock; the
//                          counter is the scheduler's worst observed lag
//                          behind the wall-clock schedule
//
// Sessions are opened via the race-free configure-then-start sequence
// (open_async, subscribe, await_opened, resume), so every run streams the
// complete waveform from t=0 and the throughput numbers compare apples to
// apples across session counts.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <cmath>
#include <thread>
#include <vector>

#include "core/scenario.hpp"
#include "server/server.hpp"
#include "tdf/connect.hpp"
#include "tdf/module.hpp"
#include "tdf/port.hpp"

namespace core = sca::core;
namespace de = sca::de;
namespace tdf = sca::tdf;
namespace server = sca::server;
using namespace sca::de::literals;

namespace {

constexpr double k_pi = 3.141592653589793;

struct tone_source : tdf::module {
    tdf::out<double> out;
    explicit tone_source(const de::module_name& nm) : tdf::module(nm), out("out") {}
    void set_attributes() override { set_timestep(10.0, de::time_unit::us); }
    void processing() override {
        out.write(std::sin(2.0 * k_pi * 5e3 * tdf_time().to_seconds()));
    }
};

struct null_sink : tdf::module {
    tdf::in<double> in;
    explicit null_sink(const de::module_name& nm) : tdf::module(nm), in("in") {}
    void processing() override { (void)in.read(); }
};

/// 1 s at 10 us -> 100,001 samples per session.
constexpr double k_stream_samples = 100'001.0;

void define_scenarios() {
    static const bool once = [] {
        auto tdf_setup = [](core::testbench& tb, const core::params&) {
            auto& src = tb.make<tone_source>("src");
            auto& sink = tb.make<null_sink>("sink");
            auto& sig = connect(src.out, sink.in);
            tb.probe("out", sig);
            tb.set_sample_period(10_us);
        };
        core::scenario::define("bench_stream", core::params{},
                               [tdf_setup](core::testbench& tb, const core::params& p) {
                                   tdf_setup(tb, p);
                                   tb.set_stop_time(1000_ms);
                               });
        core::scenario::define("bench_tiny", core::params{},
                               [tdf_setup](core::testbench& tb, const core::params& p) {
                                   tdf_setup(tb, p);
                                   tb.set_stop_time(1_ms);
                               });
        core::scenario::define("bench_paced", core::params{},
                               [tdf_setup](core::testbench& tb, const core::params& p) {
                                   tdf_setup(tb, p);
                                   tb.set_stop_time(100_ms);
                               });
        return true;
    }();
    (void)once;
}

void open_close_latency(benchmark::State& state) {
    define_scenarios();
    server::sim_server srv;
    srv.start();
    for (auto _ : state) {
        auto cl = server::client::connect_tcp("127.0.0.1", srv.port());
        benchmark::DoNotOptimize(cl.hello());
        const auto info = cl.open("bench_tiny");
        benchmark::DoNotOptimize(info.session_id);
        cl.request_close();
        const auto close = cl.drain();
        benchmark::DoNotOptimize(close.reason);
    }
    srv.stop();
}

void stream_throughput(benchmark::State& state) {
    define_scenarios();
    const auto sessions = static_cast<std::size_t>(state.range(0));
    server::sim_server srv;
    srv.start();
    for (auto _ : state) {
        std::vector<std::thread> threads;
        threads.reserve(sessions);
        for (std::size_t i = 0; i < sessions; ++i) {
            threads.emplace_back([&srv] {
                auto cl = server::client::connect_tcp("127.0.0.1", srv.port());
                cl.open_async("bench_stream");
                cl.subscribe("out");
                (void)cl.await_opened();
                cl.resume();
                const auto close = cl.drain();
                benchmark::DoNotOptimize(close.samples_streamed);
            });
        }
        for (auto& t : threads) t.join();
    }
    srv.stop();
    state.counters["samples_per_sec"] =
        benchmark::Counter(k_stream_samples * static_cast<double>(sessions),
                           benchmark::Counter::kIsIterationInvariantRate);
}

void pacing_drift(benchmark::State& state) {
    define_scenarios();
    server::sim_server srv;
    srv.start();
    double max_drift_s = 0.0;
    for (auto _ : state) {
        auto cl = server::client::connect_tcp("127.0.0.1", srv.port());
        cl.open_async("bench_paced");
        cl.subscribe("out");
        cl.pace(10.0);  // 100 ms of sim in ~10 ms of wall clock
        (void)cl.await_opened();
        cl.resume();
        const auto close = cl.drain();
        max_drift_s = std::max(max_drift_s, close.pace_max_drift_s);
    }
    srv.stop();
    state.counters["max_drift_ms"] = max_drift_s * 1e3;
}

}  // namespace

// UseRealTime: the work happens on server and client threads, so the
// benchmark thread's CPU time is meaningless — wall clock is the metric.
BENCHMARK(open_close_latency)->Unit(benchmark::kMicrosecond)->UseRealTime();
BENCHMARK(stream_throughput)
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(pacing_drift)->Unit(benchmark::kMillisecond)->UseRealTime();

SCA_BENCH_MAIN(bench_server)
