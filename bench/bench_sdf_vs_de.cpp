// CLAIM-DF (paper §2): "The design of a RF transceiver at system level ...
// is usually done using dataflow models to improve simulation efficiency."
//
// The same N-stage gain pipeline processing the same sample stream, modeled
// (a) as a statically scheduled TDF cluster and (b) as DE processes driven
// by per-sample signal events.  The dataflow version avoids the event queue
// and delta-cycle machinery entirely; the ratio of the two rows is the
// paper's claimed efficiency gain.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include "bench_util.hpp"
#include "kernel/module.hpp"
#include "kernel/signal.hpp"

namespace de = sca::de;
namespace tdf = sca::tdf;
using namespace sca::de::literals;
using namespace bench_util;

namespace {

constexpr de::time k_sample_period = de::time::from_fs(1'000'000'000);  // 1 us
constexpr double k_sim_seconds = 10e-3;  // 10k samples per run

void tdf_pipeline(benchmark::State& state) {
    const auto n_stages = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        sca::core::simulation sim;
        sine_src src("src", 1.0, 10e3, k_sample_period);
        std::vector<std::unique_ptr<gain_stage>> stages;
        std::vector<std::unique_ptr<tdf::signal<double>>> wires;
        wires.push_back(std::make_unique<tdf::signal<double>>("w0"));
        src.out.bind(*wires.back());
        for (std::size_t i = 0; i < n_stages; ++i) {
            stages.push_back(std::make_unique<gain_stage>(
                de::module_name(("g" + std::to_string(i)).c_str()), 1.0001));
            stages.back()->in.bind(*wires.back());
            wires.push_back(
                std::make_unique<tdf::signal<double>>("w" + std::to_string(i + 1)));
            stages.back()->out.bind(*wires.back());
        }
        null_sink sink("sink");
        sink.in.bind(*wires.back());

        sim.run_seconds(k_sim_seconds);
        benchmark::DoNotOptimize(sink.last);
    }
    const double samples = k_sim_seconds / k_sample_period.to_seconds();
    state.counters["samples_per_sec"] = benchmark::Counter(
        samples * static_cast<double>(n_stages), benchmark::Counter::kIsIterationInvariantRate);
}

namespace de_model {

struct de_gain : de::module {
    de::in<double> in;
    de::out<double> out;
    double k;
    de_gain(const de::module_name& nm, double gain)
        : de::module(nm), in("in"), out("out"), k(gain) {
        declare_method("step", [this] { out.write(k * in.read()); })
            .sensitive(in)
            .dont_initialize();
    }
};

struct de_source : de::module {
    de::out<double> out;
    double amp, freq;
    explicit de_source(const de::module_name& nm, double a, double f)
        : de::module(nm), out("out"), amp(a), freq(f) {
        declare_method("tick", [this] {
            out.write(amp * std::sin(2.0 * 3.141592653589793 * freq *
                                     now().to_seconds()));
            next_trigger(k_sample_period);
        });
    }
};

}  // namespace de_model

void de_pipeline(benchmark::State& state) {
    const auto n_stages = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        sca::core::simulation sim;
        de_model::de_source src("src", 1.0, 10e3);
        std::vector<std::unique_ptr<de_model::de_gain>> stages;
        std::vector<std::unique_ptr<de::signal<double>>> wires;
        wires.push_back(std::make_unique<de::signal<double>>("w0"));
        src.out.bind(*wires.back());
        for (std::size_t i = 0; i < n_stages; ++i) {
            stages.push_back(std::make_unique<de_model::de_gain>(
                de::module_name(("g" + std::to_string(i)).c_str()), 1.0001));
            stages.back()->in.bind(*wires.back());
            wires.push_back(
                std::make_unique<de::signal<double>>("w" + std::to_string(i + 1)));
            stages.back()->out.bind(*wires.back());
        }

        sim.run_seconds(k_sim_seconds);
        benchmark::DoNotOptimize(wires.back()->read());
    }
    const double samples = k_sim_seconds / k_sample_period.to_seconds();
    state.counters["samples_per_sec"] = benchmark::Counter(
        samples * static_cast<double>(n_stages), benchmark::Counter::kIsIterationInvariantRate);
}

}  // namespace

BENCHMARK(tdf_pipeline)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);
BENCHMARK(de_pipeline)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

SCA_BENCH_MAIN(bench_sdf_vs_de)
