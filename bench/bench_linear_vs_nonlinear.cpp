// CLAIM-LIN (paper §3, citing [6]): for linear models "the resulting system
// of equations can be solved without iterations".
//
// The same RC ladder advanced with (a) the fixed-step linear solver (one LU
// factorization, one forward/back substitution per step) and (b) the Newton
// nonlinear solver, forced by inserting a numerically negligible nonlinear
// element (the topology and waveforms are identical).  Counters report the
// factorization count: 1 for the linear path, one-or-more per step for
// Newton.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include "bench_util.hpp"
#include "eln/nonlinear.hpp"

namespace de = sca::de;
namespace eln = sca::eln;
using namespace bench_util;

namespace {

constexpr double k_sim_seconds = 1e-3;
constexpr de::time k_step = de::time::from_fs(1'000'000'000);  // 1 us

void linear_ladder(benchmark::State& state) {
    const auto sections = static_cast<std::size_t>(state.range(0));
    std::uint64_t factorizations = 0;
    std::uint64_t activations = 0;
    for (auto _ : state) {
        sca::core::simulation sim;
        rc_ladder ladder(sections, k_step);
        sim.run_seconds(k_sim_seconds);
        factorizations = ladder.net->factorizations();
        activations = ladder.net->activation_count();
        benchmark::DoNotOptimize(ladder.net->voltage(ladder.out_node));
    }
    state.counters["factorizations"] = static_cast<double>(factorizations);
    state.counters["steps"] = static_cast<double>(activations);
    state.counters["steps_per_sec"] = benchmark::Counter(
        static_cast<double>(activations), benchmark::Counter::kIsIterationInvariantRate);
}

void newton_ladder(benchmark::State& state) {
    const auto sections = static_cast<std::size_t>(state.range(0));
    std::uint64_t factorizations = 0;
    std::uint64_t activations = 0;
    for (auto _ : state) {
        sca::core::simulation sim;
        rc_ladder ladder(sections, k_step);
        // A vanishing nonlinearity: same equations, but the solver can no
        // longer assume linearity and must iterate.
        auto gnd = ladder.net->ground();
        eln::nonlinear_vccs tiny("tiny", *ladder.net, ladder.out_node, gnd,
                                 ladder.out_node, gnd,
                                 [](double v) { return 1e-15 * v; },
                                 [](double) { return 1e-15; });
        sim.run_seconds(k_sim_seconds);
        factorizations = ladder.net->factorizations();
        activations = ladder.net->activation_count();
        benchmark::DoNotOptimize(ladder.net->voltage(ladder.out_node));
    }
    state.counters["factorizations"] = static_cast<double>(factorizations);
    state.counters["steps"] = static_cast<double>(activations);
    state.counters["steps_per_sec"] = benchmark::Counter(
        static_cast<double>(activations), benchmark::Counter::kIsIterationInvariantRate);
}

}  // namespace

BENCHMARK(linear_ladder)->Arg(8)->Arg(32)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK(newton_ladder)->Arg(8)->Arg(32)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

SCA_BENCH_MAIN(bench_linear_vs_nonlinear)
