// CLAIM-FREQ (paper §3): "the frequency-domain model can be derived from the
// time-domain description" — and doing it directly (small-signal AC) is far
// cheaper than estimating the transfer function from a transient run.
//
// A 6-section RC ladder characterized two ways:
//   ac_sweep        - direct complex solves at N frequencies
//   transient_fft   - impulse-ish excitation, long transient, FFT magnitude
// Counters report the agreement between both magnitude estimates at a probe
// frequency, demonstrating the equivalence the paper asserts.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <cmath>
#include <complex>

#include "bench_util.hpp"
#include "core/ac_analysis.hpp"
#include "eln/converter.hpp"
#include "util/fft.hpp"

namespace de = sca::de;
namespace tdf = sca::tdf;
namespace eln = sca::eln;
namespace solver = sca::solver;
using namespace bench_util;

namespace {

constexpr de::time k_step = de::time::from_fs(200'000'000);  // 0.2 us -> fs = 5 MHz

/// The ladder with an AC-enabled source; returns the network ready to run.
struct ac_ladder {
    sca::core::simulation sim;
    std::unique_ptr<eln::network> net;
    std::vector<std::unique_ptr<eln::component>> parts;
    eln::node out_node;

    explicit ac_ladder(bool sine_burst) {
        net = std::make_unique<eln::network>(de::module_name("net"));
        net->set_timestep(k_step);
        auto gnd = net->ground();
        auto prev = net->create_node("n0");
        auto src = std::make_unique<eln::vsource>(
            "vs", *net, prev, gnd,
            sine_burst ? eln::waveform::custom([](double t) {
                // Wideband excitation: short raised-cosine pulse.
                const double w = 2e-6;
                if (t > w) return 0.0;
                return 0.5 * (1.0 - std::cos(2.0 * 3.141592653589793 * t / w));
            })
                       : eln::waveform::dc(0.0));
        src->set_ac(1.0);
        parts.push_back(std::move(src));
        for (int i = 0; i < 6; ++i) {
            auto node = net->create_node("n" + std::to_string(i + 1));
            parts.push_back(std::make_unique<eln::resistor>(
                "r" + std::to_string(i), *net, prev, node, 1000.0));
            parts.push_back(std::make_unique<eln::capacitor>(
                "c" + std::to_string(i), *net, node, gnd, 3e-9));
            prev = node;
        }
        out_node = prev;
    }
};

constexpr double k_probe_freq = 50e3;

void ac_sweep(benchmark::State& state) {
    const auto points = static_cast<std::size_t>(state.range(0));
    double mag_at_probe = 0.0;
    for (auto _ : state) {
        ac_ladder model(false);
        model.sim.elaborate();
        sca::core::ac_analysis ac(*model.net);
        const auto pts = ac.sweep(model.out_node.index(),
                                  {100.0, 1e6, points, solver::sweep::scale::logarithmic});
        benchmark::DoNotOptimize(pts);
        const auto probe = ac.sweep(model.out_node.index(), {k_probe_freq, k_probe_freq, 1});
        mag_at_probe = std::abs(probe[0].value);
    }
    state.counters["mag_at_50k"] = mag_at_probe;
    state.counters["freqs_per_sec"] = benchmark::Counter(
        static_cast<double>(points), benchmark::Counter::kIsIterationInvariantRate);
}

void transient_fft(benchmark::State& state) {
    double mag_at_probe = 0.0;
    for (auto _ : state) {
        ac_ladder model(true);
        // Record the output; the input is known analytically, so
        // H(f) = FFT(out)/FFT(in) with both on the same sample grid.
        std::vector<double> vin, vout;
        struct rec : tdf::module {
            tdf::in<double> in;
            std::vector<double>* store;
            rec(const de::module_name& nm, std::vector<double>* s)
                : tdf::module(nm), in("in"), store(s) {}
            void processing() override { store->push_back(in.read()); }
        };
        // Input is known analytically; only the output needs probing.
        eln::tdf_vsink out_probe("out_probe", *model.net, model.out_node,
                                 model.net->ground());
        rec out_rec("out_rec", &vout);
        tdf::signal<double> s2("s2");
        out_probe.outp.bind(s2);
        out_rec.in.bind(s2);

        model.sim.run_seconds(3.2e-3);  // 16k samples at 5 MHz

        const double fs = 1.0 / k_step.to_seconds();
        for (std::size_t i = 0; i < vout.size(); ++i) {
            const double t = static_cast<double>(i) * k_step.to_seconds();
            const double w = 2e-6;
            vin.push_back(t > w ? 0.0
                                : 0.5 * (1.0 - std::cos(2.0 * 3.141592653589793 * t / w)));
        }
        const auto in_spec = sca::util::fft_real(vin);
        const auto out_spec = sca::util::fft_real(vout);
        const std::size_t n = in_spec.size();
        const std::size_t bin = static_cast<std::size_t>(k_probe_freq / fs *
                                                         static_cast<double>(n));
        mag_at_probe = std::abs(out_spec[bin]) / std::abs(in_spec[bin]);
        benchmark::DoNotOptimize(mag_at_probe);
    }
    state.counters["mag_at_50k"] = mag_at_probe;
}

}  // namespace

BENCHMARK(ac_sweep)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);
BENCHMARK(transient_fft)->Unit(benchmark::kMillisecond);

SCA_BENCH_MAIN(bench_freq_domain)
