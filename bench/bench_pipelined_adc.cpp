// SEED-ADC (paper §4, [2]): functional-level exploration of pipelined ADC
// architectures — ENOB versus per-stage analog impairments, with and without
// digital correction, "while achieving comparable accuracy" to a numerical
// reference at a fraction of the cost.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include "bench_util.hpp"
#include "lib/pipeline_adc.hpp"
#include "util/measure.hpp"

namespace de = sca::de;
namespace tdf = sca::tdf;
namespace lib = sca::lib;
using namespace bench_util;

namespace {

constexpr de::time k_sample = de::time::from_fs(10'000'000'000);  // 100 kHz

double measure_enob(double gain_error, double offset, bool correction) {
    sca::core::simulation sim;
    sine_src src("src", 0.95, 997.0, k_sample);
    lib::pipeline_adc adc("adc", 9, 1.0);
    std::vector<lib::pipeline_stage_params> params(9);
    for (auto& p : params) {
        p.gain_error = gain_error;
        p.offset = offset;
    }
    adc.set_stage_params(params);
    adc.set_digital_correction(correction);

    struct rec : tdf::module {
        tdf::in<double> in;
        std::vector<double> got;
        explicit rec(const de::module_name& nm) : tdf::module(nm), in("in") {}
        void processing() override { got.push_back(in.read()); }
    } sink("sink");
    struct code_sink : tdf::module {
        tdf::in<std::int64_t> in;
        explicit code_sink(const de::module_name& nm) : tdf::module(nm), in("in") {}
        void processing() override { (void)in.read(); }
    } csink("csink");
    tdf::signal<double> s1("s1"), s3("s3");
    tdf::signal<std::int64_t> s2("s2");
    src.out.bind(s1);
    adc.in.bind(s1);
    adc.code.bind(s2);
    adc.analog_estimate.bind(s3);
    csink.in.bind(s2);
    sink.in.bind(s3);

    sim.run_seconds(82e-3);
    std::vector<double> tail(sink.got.end() - 8192, sink.got.end());
    return sca::util::enob(sca::util::sinad_db(tail, 1.0 / k_sample.to_seconds()));
}

void adc_enob_vs_gain_error(benchmark::State& state) {
    const double gain_error = static_cast<double>(state.range(0)) * 1e-4;
    double enob = 0.0;
    for (auto _ : state) {
        enob = measure_enob(gain_error, 0.0, true);
    }
    state.counters["enob"] = enob;
    state.counters["gain_error_pct"] = gain_error * 100.0;
}

void adc_enob_offset_with_correction(benchmark::State& state) {
    double enob = 0.0;
    for (auto _ : state) {
        enob = measure_enob(0.0, 0.1, true);
    }
    state.counters["enob"] = enob;
}

void adc_enob_offset_without_correction(benchmark::State& state) {
    double enob = 0.0;
    for (auto _ : state) {
        enob = measure_enob(0.0, 0.1, false);
    }
    state.counters["enob"] = enob;
}

void adc_conversion_throughput(benchmark::State& state) {
    for (auto _ : state) {
        sca::core::simulation sim;
        sine_src src("src", 0.95, 997.0, k_sample);
        lib::pipeline_adc adc("adc", 9, 1.0);
        null_sink sink("sink");
        struct code_sink : tdf::module {
            tdf::in<std::int64_t> in;
            explicit code_sink(const de::module_name& nm) : tdf::module(nm), in("in") {}
            void processing() override { (void)in.read(); }
        } csink("csink");
        tdf::signal<double> s1("s1"), s3("s3");
        tdf::signal<std::int64_t> s2("s2");
        src.out.bind(s1);
        adc.in.bind(s1);
        adc.code.bind(s2);
        adc.analog_estimate.bind(s3);
        csink.in.bind(s2);
        sink.in.bind(s3);
        sim.run_seconds(100e-3);
        benchmark::DoNotOptimize(sink.last);
    }
    state.counters["conversions_per_sec"] = benchmark::Counter(
        100e-3 / k_sample.to_seconds(), benchmark::Counter::kIsIterationInvariantRate);
}

}  // namespace

BENCHMARK(adc_enob_vs_gain_error)->Arg(0)->Arg(10)->Arg(100)->Unit(benchmark::kMillisecond);
BENCHMARK(adc_enob_offset_with_correction)->Unit(benchmark::kMillisecond);
BENCHMARK(adc_enob_offset_without_correction)->Unit(benchmark::kMillisecond);
BENCHMARK(adc_conversion_throughput)->Unit(benchmark::kMillisecond);

SCA_BENCH_MAIN(bench_pipelined_adc)
