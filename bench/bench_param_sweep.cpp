// CLAIM-SCENARIO: one scenario definition serves a whole experiment sweep,
// and the run_set engine scales sweep throughput with worker threads because
// every run owns an independent simulation_context (no shared mutable state,
// no locks on the simulation path).
//
// Two sweeps, 64 parameter points each, at 1 / 4 / 8 workers:
//   rc_sweep    - RC lowpass corner sweep (8 R values x 8 C values)
//   buck_sweep  - PWM-switched buck converter load/duty sweep (8 x 8),
//                 exercising the DE<->ELN switching path per run
// Each sweep runs on both the in-thread pool and the multiprocess (fork)
// backend — the latter sidesteps any in-process serialization (allocator
// contention, shared caches) at the cost of fork + result-pipe overhead.
// Counters report aggregate runs/second; per-run results are bit-identical
// across worker counts AND backends (asserted by tests/test_scenario.cpp
// and tests/test_run_backend.cpp).
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include "core/run_set.hpp"
#include "core/scenario.hpp"
#include "eln/converter.hpp"
#include "eln/network.hpp"
#include "eln/primitives.hpp"
#include "eln/sources.hpp"
#include "kernel/signal.hpp"
#include "lib/pwm.hpp"

namespace core = sca::core;
namespace de = sca::de;
namespace eln = sca::eln;
namespace lib = sca::lib;
using namespace sca::de::literals;

namespace {

constexpr std::size_t k_axis_points = 8;  // 8 x 8 = 64-point sweeps

core::scenario rc_scenario() {
    return core::scenario::define(
        "bench_rc", core::params{{"r", 1e3}, {"c", 100e-9}},
        [](core::testbench& tb, const core::params& p) {
            auto& net = tb.make<eln::network>("net");
            net.set_timestep(2.0, de::time_unit::us);
            auto gnd = net.ground();
            auto vin = net.create_node("vin");
            auto vout = net.create_node("vout");
            tb.make<eln::vsource>("vs", net, vin, gnd, eln::waveform::sine(1.0, 1e3));
            tb.make<eln::resistor>("r", net, vin, vout, p.number("r"));
            tb.make<eln::capacitor>("c", net, vout, gnd, p.number("c"));
            tb.measure("vout_final", [&net, vout] { return net.voltage(vout); });
            tb.set_stop_time(de::time::from_seconds(4e-3));
        });
}

core::scenario buck_scenario() {
    return core::scenario::define(
        "bench_buck", core::params{{"load", 4.0}, {"duty", 0.5}},
        [](core::testbench& tb, const core::params& p) {
            auto& net = tb.make<eln::network>("net");
            net.set_timestep(1.0, de::time_unit::us);
            auto gnd = net.ground();
            auto vsrc = net.create_node("vsrc");
            auto vin = net.create_node("vin");
            auto sw = net.create_node("sw");
            auto vout = net.create_node("vout");
            tb.make<eln::vsource>("vs", net, vsrc, gnd, eln::waveform::dc(24.0));
            tb.make<eln::resistor>("esr", net, vsrc, vin, 0.01);
            tb.make<eln::capacitor>("cin", net, vin, gnd, 10e-6);
            auto& hi = tb.make<eln::de_rswitch>("hi_side", net, vin, sw, 0.05, 1e6);
            tb.make<eln::resistor>("freewheel", net, sw, gnd, 0.5);
            tb.make<eln::inductor>("filter_l", net, sw, vout, 100e-6);
            tb.make<eln::capacitor>("filter_c", net, vout, gnd, 220e-6);
            tb.make<eln::resistor>("load", net, vout, gnd, p.number("load"));

            auto& duty = tb.make<de::signal<double>>("duty", p.number("duty"));
            auto& gate = tb.make<de::signal<bool>>("gate", false);
            auto& pwm = tb.make<lib::pwm>("pwm", 20_us);  // 50 kHz
            pwm.duty.bind(duty);
            pwm.out.bind(gate);
            hi.ctrl.bind(gate);

            tb.measure("vout_final", [&net, vout] { return net.voltage(vout); });
            tb.set_stop_time(de::time::from_seconds(2e-3));
        });
}

core::run_set make_rc_sweep(unsigned workers) {
    return core::run_set(rc_scenario())
        .with_grid(core::param_grid()
                       .add_logspace("r", 200.0, 20e3, k_axis_points)
                       .add_logspace("c", 10e-9, 1e-6, k_axis_points))
        .set_workers(workers)
        .keep_waveforms(false);
}

core::run_set make_buck_sweep(unsigned workers) {
    return core::run_set(buck_scenario())
        .with_grid(core::param_grid()
                       .add_linspace("load", 1.0, 8.0, k_axis_points)
                       .add_linspace("duty", 0.2, 0.8, k_axis_points))
        .set_workers(workers)
        .keep_waveforms(false);
}

void run_sweep(benchmark::State& state, core::run_set (*make)(unsigned),
               core::run_backend backend) {
    const auto workers = static_cast<unsigned>(state.range(0));
    std::size_t runs = 0;
    for (auto _ : state) {
        const auto table = make(workers).set_backend(backend).run_all();
        if (table.failed_count() != 0) state.SkipWithError("sweep run failed");
        runs += table.size();
        benchmark::DoNotOptimize(table.runs().data());
    }
    state.counters["runs_per_s"] =
        benchmark::Counter(static_cast<double>(runs), benchmark::Counter::kIsRate);
}

void bm_rc_sweep(benchmark::State& state) {
    run_sweep(state, make_rc_sweep, core::run_backend::in_thread);
}

void bm_rc_sweep_mp(benchmark::State& state) {
    run_sweep(state, make_rc_sweep, core::run_backend::multiprocess);
}

void bm_buck_sweep(benchmark::State& state) {
    run_sweep(state, make_buck_sweep, core::run_backend::in_thread);
}

void bm_buck_sweep_mp(benchmark::State& state) {
    run_sweep(state, make_buck_sweep, core::run_backend::multiprocess);
}

}  // namespace

// Worker counts: sequential baseline, then 2/4/8 workers, for the in-process
// thread pool and the fork-based multiprocess backend. Real time (not
// main-thread CPU time) is the honest denominator for a pool.
BENCHMARK(bm_rc_sweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_rc_sweep_mp)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_buck_sweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_buck_sweep_mp)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

SCA_BENCH_MAIN(bench_param_sweep)
