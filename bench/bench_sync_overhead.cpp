// CLAIM-SYNC (paper §3 + §4 [2]): the synchronization layer must avoid
// "needless executions" of analog blocks; crossing the DE<->CT boundary has
// a cost that pure dataflow avoids.
//
// The same RC network probed three ways:
//   pure_tdf   - samples stay in the statically scheduled cluster
//   tdf_to_de  - every sample is converted to a DE signal write (update
//                phase + delta notification + sensitive process)
//   de_control - additionally, a DE process writes back a control source
//                every period (full round trip each sample)
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include "bench_util.hpp"
#include "eln/converter.hpp"

namespace de = sca::de;
namespace tdf = sca::tdf;
namespace eln = sca::eln;
using namespace bench_util;
using namespace sca::de::literals;

namespace {

constexpr de::time k_step = de::time::from_fs(1'000'000'000);  // 1 us
constexpr double k_sim_seconds = 10e-3;                        // 10k samples

void pure_tdf(benchmark::State& state) {
    for (auto _ : state) {
        sca::core::simulation sim;
        rc_ladder ladder(4, k_step);
        eln::tdf_vsink probe("probe", *ladder.net, ladder.out_node, ladder.net->ground());
        null_sink sink("sink");
        tdf::signal<double> s("s");
        probe.outp.bind(s);
        sink.in.bind(s);
        sim.run_seconds(k_sim_seconds);
        benchmark::DoNotOptimize(sink.last);
    }
    state.counters["samples_per_sec"] = benchmark::Counter(
        k_sim_seconds / k_step.to_seconds(), benchmark::Counter::kIsIterationInvariantRate);
}

void tdf_to_de(benchmark::State& state) {
    std::uint64_t de_activations = 0;
    for (auto _ : state) {
        sca::core::simulation sim;
        rc_ladder ladder(4, k_step);
        eln::de_vsink probe("probe", *ladder.net, ladder.out_node, ladder.net->ground());
        de::signal<double> wire("wire");
        probe.outp.bind(wire);
        // A DE watcher reacts to every converted sample.
        double acc = 0.0;
        auto& proc = sim.context().register_method("watch", [&] { acc += wire.read(); });
        proc.dont_initialize();
        proc.make_sensitive(wire.value_changed_event());
        sim.run_seconds(k_sim_seconds);
        de_activations = proc.activation_count();
        benchmark::DoNotOptimize(acc);
    }
    state.counters["de_activations"] = static_cast<double>(de_activations);
    state.counters["samples_per_sec"] = benchmark::Counter(
        k_sim_seconds / k_step.to_seconds(), benchmark::Counter::kIsIterationInvariantRate);
}

void de_control_roundtrip(benchmark::State& state) {
    std::uint64_t de_activations = 0;
    for (auto _ : state) {
        sca::core::simulation sim;
        rc_ladder ladder(4, k_step);
        eln::de_vsink probe("probe", *ladder.net, ladder.out_node, ladder.net->ground());
        // Feedback current injection: every converted sample produces a DE
        // reaction that perturbs the network on its next step (full round
        // trip across the boundary per sample).
        eln::de_isource ctl("ctl", *ladder.net, ladder.net->ground(), ladder.out_node);
        de::signal<double> wire("wire");
        de::signal<double> back("back");
        probe.outp.bind(wire);
        ctl.inp.bind(back);
        auto& proc = sim.context().register_method("controller", [&] {
            back.write(wire.read() * 1e-4);
        });
        proc.dont_initialize();
        proc.make_sensitive(wire.value_changed_event());
        sim.run_seconds(k_sim_seconds);
        de_activations = proc.activation_count();
        benchmark::DoNotOptimize(back.read());
    }
    state.counters["de_activations"] = static_cast<double>(de_activations);
    state.counters["samples_per_sec"] = benchmark::Counter(
        k_sim_seconds / k_step.to_seconds(), benchmark::Counter::kIsIterationInvariantRate);
}

/// Oversampling waste: the network run at 10x the rate the consumer needs,
/// the scenario Bonnerud et al. mitigate with a "virtual clock" [2].
void oversampled_cluster(benchmark::State& state) {
    const auto oversample = static_cast<std::int64_t>(state.range(0));
    for (auto _ : state) {
        sca::core::simulation sim;
        rc_ladder ladder(4, de::time::from_fs(k_step.value_fs() / oversample));
        eln::tdf_vsink probe("probe", *ladder.net, ladder.out_node, ladder.net->ground());
        null_sink sink("sink");
        sink.in.set_rate(static_cast<unsigned>(oversample));  // consume per batch
        tdf::signal<double> s("s");
        probe.outp.bind(s);
        sink.in.bind(s);
        sim.run_seconds(k_sim_seconds);
        benchmark::DoNotOptimize(sink.last);
    }
    state.counters["network_steps"] = static_cast<double>(
        static_cast<double>(oversample) * k_sim_seconds / k_step.to_seconds());
}

}  // namespace

BENCHMARK(pure_tdf)->Unit(benchmark::kMillisecond);
BENCHMARK(tdf_to_de)->Unit(benchmark::kMillisecond);
BENCHMARK(de_control_roundtrip)->Unit(benchmark::kMillisecond);
BENCHMARK(oversampled_cluster)->Arg(1)->Arg(4)->Arg(10)->Unit(benchmark::kMillisecond);

SCA_BENCH_MAIN(bench_sync_overhead)
