// PHASE3: the paper's phase-3 capability list — specialized continuous-time
// MoCs for power electronics and mechanics, conservative-law multi-domain
// models, generic DE<->CT synchronization.
//
// Workloads: an electro-mechanical DC drive (electrical + rotational +
// thermal domains in one conservative network) and a PWM-driven power stage
// with DE-controlled switching.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include "bench_util.hpp"
#include "eln/converter.hpp"
#include "eln/multidomain.hpp"
#include "lib/pwm.hpp"

namespace de = sca::de;
namespace eln = sca::eln;
namespace lib = sca::lib;
using namespace bench_util;
using namespace sca::de::literals;

namespace {

void dc_drive_three_domains(benchmark::State& state) {
    double speed = 0.0;
    double temperature = 0.0;
    for (auto _ : state) {
        sca::core::simulation sim;
        eln::network net("net");
        net.set_timestep(100.0, de::time_unit::us);
        auto gnd = net.ground();
        auto rgnd = net.ground(eln::nature::mechanical_rotational);
        auto tamb = net.ground(eln::nature::thermal);
        auto vp = net.create_node("vp");
        auto shaft = net.create_node("shaft", eln::nature::mechanical_rotational);
        auto tj = net.create_node("tj", eln::nature::thermal);

        eln::vsource vs("vs", net, vp, gnd, eln::waveform::dc(24.0));
        eln::dc_motor motor("motor", net, vp, gnd, shaft, 0.5, 1e-3, 0.05);
        eln::inertia j("j", net, shaft, 0.002);
        eln::rotational_damper fric("fric", net, shaft, rgnd, 2e-4);
        // Copper losses heat the winding: P = i^2 R approximated by a heat
        // source proportional to the (slowly varying) armature current via a
        // fixed operating-point estimate, plus the thermal RC.
        eln::thermal_resistance rth("rth", net, tj, tamb, 5.0);
        eln::thermal_capacitance cth("cth", net, tj, 10.0);
        eln::heat_source ploss("ploss", net, tamb, tj, eln::waveform::dc(8.0));

        sim.run_seconds(10.0);
        speed = net.voltage(shaft);
        temperature = net.voltage(tj);
    }
    state.counters["speed_rad_s"] = speed;
    state.counters["delta_T"] = temperature;
}

void pwm_buck_stage(benchmark::State& state) {
    // DE PWM drives an ELN switch into an LC filter: every PWM edge forces a
    // restamp + refactorization — the cost model for switched power
    // electronics (the dedicated-MoC motivation of [8]).
    double vout = 0.0;
    std::uint64_t factorizations = 0;
    for (auto _ : state) {
        sca::core::simulation sim;
        de::signal<double> duty("duty", 0.5);
        de::signal<bool> gate("gate", false);
        lib::pwm pwm("pwm", 50_us);
        pwm.duty.bind(duty);
        pwm.out.bind(gate);

        eln::network net("net");
        net.set_timestep(5.0, de::time_unit::us);
        auto gnd = net.ground();
        auto vin = net.create_node("vin");
        auto sw_out = net.create_node("sw_out");
        auto out = net.create_node("out");
        new eln::vsource("vs", net, vin, gnd, eln::waveform::dc(12.0));
        auto* sw = new eln::de_rswitch("sw", net, vin, sw_out, 0.1, 1e6);
        sw->ctrl.bind(gate);
        // Freewheeling path + LC output filter.
        new eln::resistor("fw", net, sw_out, gnd, 10e3);
        new eln::inductor("l", net, sw_out, out, 1e-3);
        new eln::capacitor("c", net, out, gnd, 100e-6);
        new eln::resistor("load", net, out, gnd, 10.0);

        sim.run_seconds(20e-3);
        vout = net.voltage(out);
        factorizations = net.factorizations();
    }
    state.counters["vout"] = vout;
    state.counters["factorizations"] = static_cast<double>(factorizations);
}

void generic_sync_de_to_mechanical(benchmark::State& state) {
    // A DE process commands force setpoints; the mechanical plant responds —
    // phase-3 "generic synchronization mechanism including software MoCs".
    double position = 0.0;
    for (auto _ : state) {
        sca::core::simulation sim;
        de::signal<double> setpoint("setpoint", 0.0);

        eln::network net("net");
        net.set_timestep(1.0, de::time_unit::ms);
        auto mgnd = net.ground(eln::nature::mechanical_translational);
        auto v = net.create_node("v", eln::nature::mechanical_translational);
        new eln::mass("m", net, v, 1.0);
        new eln::damper("b", net, v, mgnd, 2.0);
        new eln::spring("k", net, v, mgnd, 50.0);
        // Force follows the DE setpoint through a de-controlled source
        // mapped onto the mechanical discipline via a custom component.
        struct de_force : eln::component {
            de::in<double> inp;
            eln::node p, n;
            std::size_t slot_p = 0, slot_n = 0;
            de_force(const std::string& nm, eln::network& net_, eln::node p_, eln::node n_)
                : component(nm, net_), inp("inp"), p(p_), n(n_) {}
            void stamp(eln::network& net_) override {
                slot_p = net_.add_input(eln::network::row_of(p));
                slot_n = net_.add_input(eln::network::row_of(n));
            }
            void read_tdf_inputs(eln::network& net_) override {
                net_.set_input(slot_p, -inp.read());
                net_.set_input(slot_n, inp.read());
            }
        };
        auto* f = new de_force("f", net, mgnd, v);
        f->inp.bind(setpoint);

        // Software-ish supervisor: steps the setpoint every 200 ms.
        auto& proc = sim.context().register_method("supervisor", [&] {
            setpoint.write(setpoint.read() + 10.0);
            sim.context().next_trigger(200_ms);
        });
        (void)proc;

        sim.run_seconds(2.0);
        position = net.voltage(v);
        benchmark::DoNotOptimize(position);
    }
    state.counters["velocity_end"] = position;
}

}  // namespace

BENCHMARK(dc_drive_three_domains)->Unit(benchmark::kMillisecond);
BENCHMARK(pwm_buck_stage)->Unit(benchmark::kMillisecond);
BENCHMARK(generic_sync_de_to_mechanical)->Unit(benchmark::kMillisecond);

SCA_BENCH_MAIN(bench_phase3_multidomain)
