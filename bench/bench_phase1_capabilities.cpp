// PHASE1: the paper's phase-1 capability list — linear dynamic CT MoC with
// fixed-timestep transient, small-signal AC and noise; predefined linear
// operators (Laplace transfer function, state-space); linear network
// elements; all embedded in static dataflow.
//
// The same 2nd-order lowpass realized three ways (ltf_nd, state_space, RLC
// network); the benchmark times each realization's transient and the AC and
// noise analyses, and reports the cross-view equivalence error.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <cmath>

#include "bench_util.hpp"
#include "core/ac_analysis.hpp"
#include "core/noise_analysis.hpp"
#include "core/transient.hpp"
#include "eln/converter.hpp"
#include "lsf/ltf.hpp"
#include "lsf/node.hpp"
#include "lsf/primitives.hpp"
#include "lsf/state_space.hpp"

namespace de = sca::de;
namespace tdf = sca::tdf;
namespace eln = sca::eln;
namespace lsf = sca::lsf;
namespace solver = sca::solver;
using namespace bench_util;
using namespace sca::de::literals;

namespace {

constexpr de::time k_step = de::time::from_fs(1'000'000'000);  // 1 us
constexpr double k_f0 = 10e3;
constexpr double k_q = 0.707;
constexpr double k_sim_seconds = 2e-3;

std::pair<std::vector<double>, std::vector<double>> lowpass_tf() {
    const double w0 = 2.0 * 3.141592653589793 * k_f0;
    return {{1.0}, {1.0, 1.0 / (k_q * w0), 1.0 / (w0 * w0)}};
}

void ltf_view_transient(benchmark::State& state) {
    double final = 0.0;
    for (auto _ : state) {
        sca::core::simulation sim;
        lsf::system sys("sys");
        sys.set_timestep(k_step);
        auto u = sys.create_signal("u");
        auto y = sys.create_signal("y");
        lsf::source src("src", sys, u, lsf::waveform::sine(1.0, k_f0 / 10.0));
        const auto [num, den] = lowpass_tf();
        lsf::ltf_nd f("f", sys, u, y, num, den);
        sim.run_seconds(k_sim_seconds);
        final = sys.value(y);
    }
    state.counters["final"] = final;
}

void state_space_view_transient(benchmark::State& state) {
    double final = 0.0;
    for (auto _ : state) {
        sca::core::simulation sim;
        lsf::system sys("sys");
        sys.set_timestep(k_step);
        auto u = sys.create_signal("u");
        auto y = sys.create_signal("y");
        lsf::source src("src", sys, u, lsf::waveform::sine(1.0, k_f0 / 10.0));
        const double w0 = 2.0 * 3.141592653589793 * k_f0;
        sca::num::dense_matrix_d a(2, 2), b(2, 1), c(1, 2), d(1, 1);
        a(0, 1) = 1.0;
        a(1, 0) = -w0 * w0;
        a(1, 1) = -w0 / k_q;
        b(1, 0) = w0 * w0;
        c(0, 0) = 1.0;
        lsf::state_space ss("ss", sys, {u}, {y}, a, b, c, d);
        sim.run_seconds(k_sim_seconds);
        final = sys.value(y);
    }
    state.counters["final"] = final;
}

void netlist_view_transient(benchmark::State& state) {
    double final = 0.0;
    for (auto _ : state) {
        sca::core::simulation sim;
        eln::network net("net");
        net.set_timestep(k_step);
        auto gnd = net.ground();
        auto n1 = net.create_node("n1");
        auto n2 = net.create_node("n2");
        auto n3 = net.create_node("n3");
        // Series RLC with matching w0 and Q: R = w0 L / Q ... choose L = 10 mH.
        const double w0 = 2.0 * 3.141592653589793 * k_f0;
        const double l = 10e-3;
        const double c = 1.0 / (w0 * w0 * l);
        const double r = w0 * l / k_q;
        eln::vsource vs("vs", net, n1, gnd, eln::waveform::sine(1.0, k_f0 / 10.0));
        eln::resistor res("r", net, n1, n2, r);
        eln::inductor ind("l", net, n2, n3, l);
        eln::capacitor cap("c", net, n3, gnd, c);
        sim.run_seconds(k_sim_seconds);
        final = net.voltage(n3);
    }
    state.counters["final"] = final;
}

void ac_and_noise_analyses(benchmark::State& state) {
    double mag_f0 = 0.0;
    double noise_rms = 0.0;
    for (auto _ : state) {
        sca::core::simulation sim;
        eln::network net("net");
        net.set_timestep(k_step);
        auto gnd = net.ground();
        auto n1 = net.create_node("n1");
        auto n2 = net.create_node("n2");
        auto* vs = new eln::vsource("vs", net, n1, gnd, eln::waveform::dc(0.0));
        vs->set_ac(1.0);
        new eln::resistor("r", net, n1, n2, 1000.0);
        new eln::capacitor("c", net, n2, gnd, 15.9e-9);
        sim.elaborate();

        sca::core::ac_analysis ac(net);
        const auto pts = ac.sweep(n2.index(), {100.0, 1e6, 100});
        mag_f0 = std::abs(pts[50].value);

        sca::core::noise_analysis na(net);
        const auto res = na.run(n2.index(), {10.0, 10e6, 100});
        noise_rms = res.integrated_rms();
        benchmark::DoNotOptimize(res);
    }
    state.counters["mag_mid"] = mag_f0;
    state.counters["noise_uV_rms"] = noise_rms * 1e6;
}

/// Cross-view equivalence: the phase-1 promise that all description layers
/// produce the same behavior.
void view_equivalence(benchmark::State& state) {
    double max_diff = 0.0;
    for (auto _ : state) {
        sca::core::simulation sim;
        lsf::system sys("sys");
        sys.set_timestep(k_step);
        auto u = sys.create_signal("u");
        auto y1 = sys.create_signal("y1");
        auto y2 = sys.create_signal("y2");
        lsf::source src("src", sys, u, lsf::waveform::sine(1.0, 2e3));
        const auto [num, den] = lowpass_tf();
        lsf::ltf_nd f("f", sys, u, y1, num, den);
        const double w0 = 2.0 * 3.141592653589793 * k_f0;
        sca::num::dense_matrix_d a(2, 2), b(2, 1), c(1, 2), d(1, 1);
        a(0, 1) = 1.0;
        a(1, 0) = -w0 * w0;
        a(1, 1) = -w0 / k_q;
        b(1, 0) = w0 * w0;
        c(0, 0) = 1.0;
        lsf::state_space ss("ss", sys, {u}, {y2}, a, b, c, d);

        sca::core::transient_recorder rec(sim, 10_us);
        rec.add_probe("y1", [&] { return sys.value(y1); });
        rec.add_probe("y2", [&] { return sys.value(y2); });
        rec.run(de::time::from_seconds(k_sim_seconds));

        const auto v1 = rec.column(0);
        const auto v2 = rec.column(1);
        max_diff = 0.0;
        for (std::size_t i = 0; i < v1.size(); ++i) {
            max_diff = std::max(max_diff, std::abs(v1[i] - v2[i]));
        }
    }
    state.counters["max_view_diff"] = max_diff;
}

}  // namespace

BENCHMARK(ltf_view_transient)->Unit(benchmark::kMillisecond);
BENCHMARK(state_space_view_transient)->Unit(benchmark::kMillisecond);
BENCHMARK(netlist_view_transient)->Unit(benchmark::kMillisecond);
BENCHMARK(ac_and_noise_analyses)->Unit(benchmark::kMillisecond);
BENCHMARK(view_equivalence)->Unit(benchmark::kMillisecond);

SCA_BENCH_MAIN(bench_phase1_capabilities)
