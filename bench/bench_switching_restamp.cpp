// CLAIM-RESTAMP: switching workloads — the dominant virtual-prototyping
// scenario for power electronics (buck converters, power-state-driven
// models) — pay one stamp update + matrix factorization per DE switching
// event.  The incremental restamp pipeline turns that into a values-only
// slot rewrite plus a *numeric-only* refactorization against the symbolic
// analysis cached at elaboration; the rebuild-the-world baseline restamps
// every component and re-runs the full symbolic factorization per event.
//
// Two networks, each driven by a 50 kHz PWM gate:
//   switched_rc  - 8-section RC ladder with a shunt switch at the output
//   buck         - 24 V buck-style half bridge: source ESR + input
//                  decoupling, switch, freewheel path, LC output filter,
//                  resistive load (the power_driver net)
// Counters report events/sec, numeric factor passes, and symbolic analyses.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include "bench_util.hpp"
#include "eln/converter.hpp"
#include "lib/pwm.hpp"

namespace de = sca::de;
namespace eln = sca::eln;
namespace lib = sca::lib;
using namespace bench_util;
using namespace sca::de::literals;

namespace {

constexpr double k_sim_seconds = 10e-3;  // 500 PWM periods, 1000 edges

struct switching_counters {
    std::uint64_t factors = 0;
    std::uint64_t symbolic = 0;
};

/// PWM-driven RC ladder with a shunt switch at the output; `incremental`
/// selects the values-only pipeline or the full-restamp baseline.
switching_counters run_switched_rc(bool incremental) {
    sca::core::simulation sim;

    de::signal<double> duty("duty", 0.5);
    de::signal<bool> gate("gate", false);
    lib::pwm pwm("pwm", 20_us);  // 50 kHz: one toggle every 10 us
    pwm.duty.bind(duty);
    pwm.out.bind(gate);

    rc_ladder ladder(8, de::time(1.0, de::time_unit::us), 470.0, 220e-9);
    ladder.net->set_incremental_updates(incremental);
    eln::de_rswitch sw("sw", *ladder.net, ladder.out_node, ladder.net->ground(), 10.0,
                       1e9);
    sw.ctrl.bind(gate);

    sim.run_seconds(k_sim_seconds);
    return {ladder.net->factorizations(), ladder.net->symbolic_factorizations()};
}

/// The power_driver buck converter (bench_util::switched_buck — the same
/// netlist tests/test_eln.cpp asserts bit-identical between the pipelines).
switching_counters run_buck(bool incremental, double& vout_sample) {
    sca::core::simulation sim;

    de::signal<double> duty("duty", 0.5);
    de::signal<bool> gate("gate", false);
    lib::pwm pwm("pwm", 20_us);
    pwm.duty.bind(duty);
    pwm.out.bind(gate);

    switched_buck buck;
    buck.net->set_incremental_updates(incremental);
    buck.hi_side->ctrl.bind(gate);

    sim.run_seconds(k_sim_seconds);
    vout_sample = buck.net->voltage(buck.vout_node);
    return {buck.net->factorizations(), buck.net->symbolic_factorizations()};
}

void report(benchmark::State& state, const switching_counters& c) {
    const double events = k_sim_seconds / 10e-6;  // two edges per 20 us period
    state.counters["events_per_sec"] =
        benchmark::Counter(events, benchmark::Counter::kIsIterationInvariantRate);
    state.counters["numeric_factors"] = static_cast<double>(c.factors);
    state.counters["symbolic_factors"] = static_cast<double>(c.symbolic);
}

void switched_rc_incremental(benchmark::State& state) {
    switching_counters c;
    for (auto _ : state) c = run_switched_rc(true);
    report(state, c);
}

void switched_rc_full_restamp(benchmark::State& state) {
    switching_counters c;
    for (auto _ : state) c = run_switched_rc(false);
    report(state, c);
}

void buck_incremental(benchmark::State& state) {
    switching_counters c;
    double v = 0.0;
    for (auto _ : state) c = run_buck(true, v);
    benchmark::DoNotOptimize(v);
    report(state, c);
}

void buck_full_restamp(benchmark::State& state) {
    switching_counters c;
    double v = 0.0;
    for (auto _ : state) c = run_buck(false, v);
    benchmark::DoNotOptimize(v);
    report(state, c);
}

}  // namespace

BENCHMARK(switched_rc_incremental)->Unit(benchmark::kMillisecond);
BENCHMARK(switched_rc_full_restamp)->Unit(benchmark::kMillisecond);
BENCHMARK(buck_incremental)->Unit(benchmark::kMillisecond);
BENCHMARK(buck_full_restamp)->Unit(benchmark::kMillisecond);

SCA_BENCH_MAIN(bench_switching_restamp)
