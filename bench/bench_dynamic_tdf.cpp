// DYNAMIC TDF (adaptive sampling): runtime attribute changes let a model
// slow itself down when nothing interesting is happening instead of burning
// cycles at the static worst-case rate — the workload class behind adaptive
// sensing and power-state-driven sampling.
//
// Benchmarks:
//   * adaptive vs static worst-case end-to-end throughput on the bursty
//     receiver (same model as examples/adaptive_receiver.cpp): both cover
//     the same span of simulated input, the adaptive one with 8x sparser
//     sampling during the quiet 90% of each frame.
//   * reschedule cost when every visited configuration is cached (the
//     steady-state of an oscillating model: a hash lookup per reschedule)
//     versus when configurations are met cold (a full schedule compile).
//   * the oscillating model under the parallel run_set engine (also the
//     TSan smoke target in CI: rescheduling must stay data-race-free when
//     independent contexts reschedule concurrently).
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <cmath>

#include "bench_util.hpp"
#include "core/run_set.hpp"
#include "core/scenario.hpp"
#include "tdf/cluster.hpp"
#include "tdf/connect.hpp"

namespace de = sca::de;
namespace tdf = sca::tdf;
namespace core = sca::core;
using namespace bench_util;
using namespace sca::de::literals;

namespace {

constexpr double k_pi = 3.141592653589793;
constexpr de::time k_fast_step = de::time::from_fs(8'000'000'000);  // 8 us

/// Tone bursts (1 ms of every 10 ms frame), faint floor otherwise.
struct burst_source : tdf::module {
    tdf::out<double> out;
    explicit burst_source(const de::module_name& nm) : tdf::module(nm), out("out") {}
    [[nodiscard]] bool accept_attribute_changes() const override { return true; }
    void processing() override {
        const double t = tdf_time().to_seconds();
        const double phase = std::fmod(t, 10e-3);
        out.write(phase < 1e-3 ? std::sin(2.0 * k_pi * 20e3 * t)
                               : 1e-3 * std::sin(2.0 * k_pi * 1.1e3 * t));
    }
};

/// Decimating FIR front end that drops its rate 8x on a quiet envelope
/// (see examples/adaptive_receiver.cpp for the annotated version).
struct adaptive_frontend : tdf::module {
    tdf::in<double> in;
    tdf::out<double> out;
    double taps[8];
    double envelope = 0.0;
    int quiet_streak = 0;
    int quiet_limit;  // huge value = static worst-case model
    bool slow = false;

    adaptive_frontend(const de::module_name& nm, bool adaptive)
        : tdf::module(nm), in("in"), out("out"),
          quiet_limit(adaptive ? 3 : (1 << 30)) {
        in.set_rate(8);
        for (int i = 0; i < 8; ++i) {
            taps[i] = (0.54 - 0.46 * std::cos(2.0 * k_pi * i / 7.0)) / 8.0;
        }
    }

    [[nodiscard]] bool does_attribute_changes() const override { return true; }
    void set_attributes() override { set_timestep(k_fast_step); }
    void processing() override {
        double acc = 0.0;
        double peak = 0.0;
        for (unsigned k = 0; k < 8; ++k) {
            const double v = in.read(k);
            acc += taps[k] * v;
            peak = std::max(peak, std::abs(v));
        }
        out.write(acc);
        envelope = peak;
    }
    void change_attributes() override {
        if (envelope >= 0.05) {
            quiet_streak = 0;
            slow = false;
        } else if (++quiet_streak >= quiet_limit) {
            slow = true;
        }
        request_timestep(slow ? k_fast_step * 8 : k_fast_step);
    }
};

/// Sink accepting retiming.
struct accepting_sink : tdf::module {
    tdf::in<double> in;
    double last = 0.0;
    explicit accepting_sink(const de::module_name& nm) : tdf::module(nm), in("in") {}
    [[nodiscard]] bool accept_attribute_changes() const override { return true; }
    void processing() override { last = in.read(); }
};

/// Unanchored sine source that tolerates retiming (the dynamic module in
/// the cluster provides the timestep anchor).
struct accepting_src : tdf::module {
    tdf::out<double> out;
    explicit accepting_src(const de::module_name& nm) : tdf::module(nm), out("out") {}
    [[nodiscard]] bool accept_attribute_changes() const override { return true; }
    void processing() override {
        out.write(std::sin(2.0 * k_pi * 10e3 * tdf_time().to_seconds()));
    }
};

/// Pass-through that toggles between two timesteps every period (steady-state
/// reschedule cost: every configuration is in the schedule cache).
struct toggler : tdf::module {
    tdf::in<double> in;
    tdf::out<double> out;
    bool slow = false;
    explicit toggler(const de::module_name& nm) : tdf::module(nm), in("in"), out("out") {}
    [[nodiscard]] bool does_attribute_changes() const override { return true; }
    void set_attributes() override { set_timestep(1.0, de::time_unit::us); }
    void processing() override { out.write(in.read()); }
    void change_attributes() override {
        slow = !slow;
        request_timestep(slow ? 8_us : 1_us);
    }
};

/// Decimator cycling through `n_configs` distinct input rates (cold-cache
/// reschedule cost on the first lap, cached afterwards).
struct rate_cycler : tdf::module {
    tdf::in<double> in;
    tdf::out<double> out;
    unsigned n_configs;
    unsigned step = 0;
    rate_cycler(const de::module_name& nm, unsigned n)
        : tdf::module(nm), in("in"), out("out"), n_configs(n) {}
    [[nodiscard]] bool does_attribute_changes() const override { return true; }
    void set_attributes() override {
        // 7.2072 us = 10000 x lcm(1..16) fs: the source timestep stays an
        // integer femtosecond count for every cycled input rate up to 16.
        set_timestep(de::time::from_fs(7'207'200'000));
    }
    void processing() override {
        double acc = 0.0;
        for (unsigned k = 0; k < in.rate(); ++k) acc += in.read(k);
        out.write(acc);
    }
    void change_attributes() override {
        step = (step + 1) % n_configs;
        request_rate(in, 1 + step);
    }
};

constexpr double k_run_seconds = 100e-3;

void receiver_run(benchmark::State& state, bool adaptive, std::uint64_t max_batch) {
    std::uint64_t fe_firings = 0;
    std::uint64_t reschedules = 0;
    std::uint64_t recompiles = 0;
    std::uint64_t kernel_notifications = 0;
    for (auto _ : state) {
        sca::core::simulation sim;
        burst_source src("src");
        adaptive_frontend fe("fe", adaptive);
        accepting_sink sink("sink");
        tdf::signal<double> s1("s1"), s2("s2");
        src.out.bind(s1);
        fe.in.bind(s1);
        fe.out.bind(s2);
        sink.in.bind(s2);
        tdf::registry::of(sim.context()).set_default_max_batch_periods(max_batch);
        sim.run_seconds(k_run_seconds);
        benchmark::DoNotOptimize(sink.last);
        fe_firings = fe.activation_count();
        const auto& c = *tdf::registry::of(sim.context()).clusters().at(0);
        reschedules = c.reschedule_count();
        recompiles = c.recompile_count();
        kernel_notifications = sim.context().sched().timed_notification_count();
    }
    // End-to-end coverage rate: both models sweep the same 100 ms of input
    // signal; the static one needs 8x the samples for the quiet 90%.
    state.counters["covered_samples_per_sec"] = benchmark::Counter(
        k_run_seconds / (k_fast_step.to_seconds() / 8.0),
        benchmark::Counter::kIsIterationInvariantRate);
    state.counters["fe_firings"] = static_cast<double>(fe_firings);
    state.counters["reschedules"] = static_cast<double>(reschedules);
    state.counters["recompiles"] = static_cast<double>(recompiles);
    state.counters["kernel_notifications"] = static_cast<double>(kernel_notifications);
}

void adaptive_receiver_throughput(benchmark::State& state) {
    // A/B on dynamic-cluster period batching (arg = max batched periods):
    // 1 re-arms the DE kernel every period (the pre-batching behaviour), 64
    // amortizes the kernel interaction across up to 64 periods while still
    // opening the change_attributes() window between every pair of periods —
    // watch the kernel_notifications counter collapse, with reschedules and
    // waveforms identical.
    receiver_run(state, /*adaptive=*/true,
                 static_cast<std::uint64_t>(state.range(0)));
}

void static_worstcase_throughput(benchmark::State& state) {
    receiver_run(state, /*adaptive=*/false,
                 static_cast<std::uint64_t>(state.range(0)));
}

void reschedule_cost_cached(benchmark::State& state) {
    // Worst case for the reschedule path itself: a toggle every period, so
    // every period pays gating + signature + cache hit + install.
    std::uint64_t reschedules = 0;
    std::uint64_t recompiles = 0;
    for (auto _ : state) {
        sca::core::simulation sim;
        accepting_src src("src");
        toggler tog("tog");
        accepting_sink sink("sink");
        tdf::signal<double> s1("s1"), s2("s2");
        src.out.bind(s1);
        tog.in.bind(s1);
        tog.out.bind(s2);
        sink.in.bind(s2);
        sim.run_seconds(20e-3);
        const auto& c = *tdf::registry::of(sim.context()).clusters().at(0);
        reschedules = c.reschedule_count();
        recompiles = c.recompile_count();
        benchmark::DoNotOptimize(sink.last);
    }
    state.counters["reschedules_per_iter"] = static_cast<double>(reschedules);
    state.counters["recompiles"] = static_cast<double>(recompiles);
    state.counters["reschedules_per_sec"] = benchmark::Counter(
        static_cast<double>(reschedules),
        benchmark::Counter::kIsIterationInvariantRate);
}

void reschedule_cost_cold(benchmark::State& state) {
    // Cycle through `n` distinct configurations: lap one compiles them all,
    // later laps hit the cache — recompiles stays at n however long we run.
    const auto n = static_cast<unsigned>(state.range(0));
    std::uint64_t reschedules = 0;
    std::uint64_t recompiles = 0;
    for (auto _ : state) {
        sca::core::simulation sim;
        accepting_src src("src");
        rate_cycler cyc("cyc", n);
        accepting_sink sink("sink");
        tdf::signal<double> s1("s1"), s2("s2");
        src.out.bind(s1);
        cyc.in.bind(s1);
        cyc.out.bind(s2);
        sink.in.bind(s2);
        sim.run_seconds(20e-3);
        const auto& c = *tdf::registry::of(sim.context()).clusters().at(0);
        reschedules = c.reschedule_count();
        recompiles = c.recompile_count();
        benchmark::DoNotOptimize(sink.last);
    }
    state.counters["reschedules_per_iter"] = static_cast<double>(reschedules);
    state.counters["recompiles"] = static_cast<double>(recompiles);
}

void dynamic_parallel_run_set(benchmark::State& state) {
    // The oscillating receiver across a 4-worker run_set: every context
    // reschedules concurrently (the CI TSan smoke runs exactly this).
    auto sc = core::scenario::define(
        "bench_dynamic_parallel", core::params{{"f", 10e3}},
        [](core::testbench& tb, const core::params& p) {
            auto& src = tb.make<burst_source>("src");
            auto& fe = tb.make<adaptive_frontend>("fe", true);
            auto& sink = tb.make<accepting_sink>("sink");
            tdf::connect(src.out, fe.in);
            auto& s_out = tdf::connect(fe.out, sink.in);
            tb.probe("out", s_out);
            (void)p;
            tb.set_sample_period(64_us);
            tb.set_stop_time(20_ms);
        });
    for (auto _ : state) {
        auto table = core::run_set(sc)
                         .with_grid(core::param_grid().add_linspace("f", 1e3, 20e3, 8))
                         .set_workers(4)
                         .run_all();
        benchmark::DoNotOptimize(table.failed_count());
    }
}

}  // namespace

BENCHMARK(adaptive_receiver_throughput)->Arg(1)->Arg(64)->Unit(benchmark::kMillisecond);
BENCHMARK(static_worstcase_throughput)->Arg(1)->Arg(64)->Unit(benchmark::kMillisecond);
BENCHMARK(reschedule_cost_cached)->Unit(benchmark::kMillisecond);
BENCHMARK(reschedule_cost_cold)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);
BENCHMARK(dynamic_parallel_run_set)->Unit(benchmark::kMillisecond);

SCA_BENCH_MAIN(bench_dynamic_tdf)
