// FIG1: the paper's single figure — the ADSL subscriber line interface and
// codec filter — as an executable multi-MoC system.
//
// Blocks and their MoCs follow the figure's annotations:
//   subscriber line + protection  -> linear electrical network (ELN)
//   high-voltage driver, filters  -> signal-flow (LSF)
//   sigma-delta prefi/pofi        -> dataflow (TDF)
//   digital filters / DSP         -> dataflow (TDF, FIR)
//   software controller           -> event-driven (DE state machine)
//
// The benchmark runs the full system and reports the real-time factor and
// per-MoC activation counts — the numbers that justify modeling each block
// at its own level of abstraction.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <chrono>

#include "bench_util.hpp"
#include "eln/converter.hpp"
#include "lib/converters.hpp"
#include "lib/filters.hpp"
#include "lib/sigma_delta.hpp"
#include "lsf/ltf.hpp"
#include "lsf/node.hpp"
#include "lsf/primitives.hpp"
#include "lsf/view.hpp"

namespace de = sca::de;
namespace tdf = sca::tdf;
namespace eln = sca::eln;
namespace lsf = sca::lsf;
namespace lib = sca::lib;
using namespace bench_util;
using namespace sca::de::literals;

namespace {

constexpr de::time k_codec_step = de::time::from_fs(500'000'000);  // 2 MHz modulator

struct adsl_system {
    sca::core::simulation sim;

    // --- transmit path stimulus (the "DSP" side): upstream tone ----------
    std::unique_ptr<sine_src> tone;

    // --- line driver as LSF lowpass + gain --------------------------------
    std::unique_ptr<lsf::system> driver;
    std::unique_ptr<lsf::from_tdf> drv_in;
    std::unique_ptr<lsf::ltf_nd> drv_filter;
    std::unique_ptr<lsf::gain> drv_gain;
    std::unique_ptr<lsf::to_tdf> drv_out;

    // --- subscriber line as RC two-port (ELN) ------------------------------
    std::unique_ptr<eln::network> line;
    std::vector<std::unique_ptr<eln::component>> line_parts;

    // --- receive codec: sigma-delta + sinc3 + FIR (TDF) --------------------
    std::unique_ptr<lib::sigma_delta_modulator> prefi;
    std::unique_ptr<lib::sinc3_decimator> pofi;
    std::unique_ptr<lib::fir> rx_fir;
    std::unique_ptr<null_sink> dsp_sink;

    // --- software controller (DE): monitors line activity ------------------
    std::unique_ptr<lib::comparator> level_detect;
    de::signal<bool> line_active{"line_active", false};
    int controller_events = 0;

    struct bsink : tdf::module {
        tdf::in<bool> in;
        explicit bsink(const de::module_name& nm) : tdf::module(nm), in("in") {}
        void processing() override { (void)in.read(); }
    };

    std::vector<std::unique_ptr<tdf::signal<double>>> wires;
    std::vector<std::unique_ptr<tdf::signal<bool>>> bwires;

    adsl_system() {
        auto wire = [&] {
            wires.push_back(std::make_unique<tdf::signal<double>>(
                "w" + std::to_string(wires.size())));
            return wires.back().get();
        };

        tone = std::make_unique<sine_src>(de::module_name("tone"), 0.5, 40e3,
                                          k_codec_step);

        driver = std::make_unique<lsf::system>(de::module_name("driver"));
        auto u = driver->create_signal("u");
        auto f = driver->create_signal("f");
        auto y = driver->create_signal("y");
        drv_in = std::make_unique<lsf::from_tdf>("drv_in", *driver, u);
        const auto tf = lsf::filters::butterworth_lowpass(3, 150e3);
        drv_filter = std::make_unique<lsf::ltf_nd>("drv_filter", *driver, u, f, tf.num,
                                                   tf.den);
        drv_gain = std::make_unique<lsf::gain>("drv_gain", *driver, f, y, 4.0);
        drv_out = std::make_unique<lsf::to_tdf>("drv_out", *driver, y);

        line = std::make_unique<eln::network>(de::module_name("line"));
        auto gnd = line->ground();
        auto tx = line->create_node("tx");
        auto mid = line->create_node("mid");
        auto rx = line->create_node("rx");
        auto* drv_src = new eln::tdf_vsource("drv_src", *line, tx, gnd);
        line_parts.emplace_back(drv_src);
        line_parts.emplace_back(new eln::resistor("r_s", *line, tx, mid, 100.0));
        line_parts.emplace_back(new eln::capacitor("c_line", *line, mid, gnd, 10e-9));
        line_parts.emplace_back(new eln::resistor("r_line", *line, mid, rx, 100.0));
        line_parts.emplace_back(new eln::resistor("r_term", *line, rx, gnd, 100.0));
        auto* rx_probe = new eln::tdf_vsink("rx_probe", *line, rx, gnd);
        line_parts.emplace_back(rx_probe);

        prefi = std::make_unique<lib::sigma_delta_modulator>(de::module_name("prefi"), 2,
                                                             1.0);
        pofi = std::make_unique<lib::sinc3_decimator>(de::module_name("pofi"), 32);
        rx_fir = std::make_unique<lib::fir>(de::module_name("rx_fir"),
                                            lib::fir::design_lowpass(63, 0.4));
        dsp_sink = std::make_unique<null_sink>(de::module_name("dsp_sink"));

        level_detect = std::make_unique<lib::comparator>(de::module_name("level"), 0.05,
                                                         0.02);
        level_detect->enable_de_output(line_active);
        bwires.push_back(std::make_unique<tdf::signal<bool>>("b0"));

        // Wiring.
        auto* w0 = wire();
        tone->out.bind(*w0);
        drv_in->inp.bind(*w0);
        auto* w1 = wire();
        drv_out->outp.bind(*w1);
        drv_src->inp.bind(*w1);
        auto* w2 = wire();
        rx_probe->outp.bind(*w2);
        prefi->in.bind(*w2);
        auto* w3 = wire();
        prefi->out.bind(*w3);
        pofi->in.bind(*w3);
        auto* w4 = wire();
        pofi->out.bind(*w4);
        rx_fir->in.bind(*w4);
        auto* w5 = wire();
        rx_fir->out.bind(*w5);
        dsp_sink->in.bind(*w5);
        level_detect->in.bind(*w2);
        level_detect->out.bind(*bwires.back());
        bool_sink_ = std::make_unique<bsink>(de::module_name("bsink"));
        bool_sink_->in.bind(*bwires.back());

        // Software controller: counts link state changes.
        auto& proc = sim.context().register_method("controller", [this] {
            ++controller_events;
        });
        proc.dont_initialize();
        proc.make_sensitive(line_active.value_changed_event());
    }

    std::unique_ptr<bsink> bool_sink_;
};

void fig1_adsl_full_system(benchmark::State& state) {
    const double sim_seconds = 5e-3;
    std::uint64_t tdf_activations = 0;
    std::uint64_t line_steps = 0;
    int de_events = 0;
    double wall = 0.0;
    for (auto _ : state) {
        adsl_system sys;
        const auto t0 = std::chrono::steady_clock::now();
        sys.sim.run_seconds(sim_seconds);
        wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
        tdf_activations = sys.prefi->activation_count() + sys.pofi->activation_count() +
                          sys.rx_fir->activation_count() + sys.tone->activation_count();
        line_steps = sys.line->activation_count();
        de_events = sys.controller_events;
        benchmark::DoNotOptimize(sys.dsp_sink->last);
    }
    state.counters["tdf_activations"] = static_cast<double>(tdf_activations);
    state.counters["eln_steps"] = static_cast<double>(line_steps);
    state.counters["de_events"] = static_cast<double>(de_events);
    state.counters["real_time_factor"] = sim_seconds / wall;
}

}  // namespace

BENCHMARK(fig1_adsl_full_system)->Unit(benchmark::kMillisecond)->Iterations(3);

SCA_BENCH_MAIN(bench_fig1_adsl)
