// PHASE2: the paper's phase-2 capability list — nonlinear DAEs with variable
// time steps, implicit equations, enriched functional models (amplifiers,
// converters, mixers).
//
// Workloads: a diode bridge rectifier (hard nonlinearity, state-dependent
// topology behavior) and a saturating amplifier chain, both embedded in TDF.
// Counters expose the Newton/variable-step machinery at work.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <cmath>

#include "bench_util.hpp"
#include "eln/converter.hpp"
#include "eln/nonlinear.hpp"
#include "lib/amplifier.hpp"
#include "lib/mixer.hpp"
#include "lib/oscillator.hpp"

namespace de = sca::de;
namespace tdf = sca::tdf;
namespace eln = sca::eln;
namespace lib = sca::lib;
using namespace bench_util;

namespace {

constexpr de::time k_step = de::time::from_fs(5'000'000'000);  // 5 us

void diode_bridge_rectifier(benchmark::State& state) {
    double vout = 0.0;
    std::uint64_t factorizations = 0;
    std::uint64_t steps = 0;
    for (auto _ : state) {
        sca::core::simulation sim;
        eln::network net("net");
        net.set_timestep(k_step);
        auto gnd = net.ground();
        auto acp = net.create_node("acp");
        auto acn = net.create_node("acn");
        auto vp = net.create_node("vp");
        // Full bridge: acp/acn to vp (+) and gnd (-).
        eln::vsource vs("vs", net, acp, acn, eln::waveform::sine(10.0, 1e3));
        eln::resistor rsrc("rsrc", net, acn, gnd, 10.0);
        eln::diode d1("d1", net, acp, vp);
        eln::diode d2("d2", net, acn, vp);
        eln::diode d3("d3", net, gnd, acp);
        eln::diode d4("d4", net, gnd, acn);
        eln::capacitor cf("cf", net, vp, gnd, 47e-6);
        eln::resistor load("load", net, vp, gnd, 1000.0);

        sim.run_seconds(20e-3);
        vout = net.voltage(vp);
        factorizations = net.factorizations();
        steps = net.activation_count();
    }
    state.counters["vout"] = vout;
    state.counters["factorizations_per_step"] =
        static_cast<double>(factorizations) / static_cast<double>(steps);
}

void saturating_amplifier_chain(benchmark::State& state) {
    const auto n_stages = static_cast<std::size_t>(state.range(0));
    double last = 0.0;
    for (auto _ : state) {
        sca::core::simulation sim;
        sine_src src("src", 0.2, 5e3, k_step);
        std::vector<std::unique_ptr<lib::amplifier>> amps;
        std::vector<std::unique_ptr<tdf::signal<double>>> wires;
        wires.push_back(std::make_unique<tdf::signal<double>>("w0"));
        src.out.bind(*wires.back());
        for (std::size_t i = 0; i < n_stages; ++i) {
            amps.push_back(std::make_unique<lib::amplifier>(
                de::module_name(("a" + std::to_string(i)).c_str()), 3.0, 1.0, -1.0));
            amps.back()->set_bandwidth(50e3);
            amps.back()->in.bind(*wires.back());
            wires.push_back(
                std::make_unique<tdf::signal<double>>("w" + std::to_string(i + 1)));
            amps.back()->out.bind(*wires.back());
        }
        null_sink sink("sink");
        sink.in.bind(*wires.back());
        sim.run_seconds(20e-3);
        last = sink.last;
    }
    state.counters["last"] = last;
}

void rf_downconversion_chain(benchmark::State& state) {
    // Phase-2 "enriched mixed-signal library": oscillator + mixer + amp.
    double last = 0.0;
    for (auto _ : state) {
        sca::core::simulation sim;
        sine_src rf("rf", 0.1, 450e3, de::time::from_fs(200'000'000));  // 5 MHz rate
        lib::quadrature_oscillator lo("lo", 1.0, 440e3);
        lib::mixer mix("mix", 2.0);
        lib::amplifier ifamp("ifamp", 10.0, 1.0, -1.0);
        ifamp.set_bandwidth(50e3);  // selects the 10 kHz IF
        null_sink sink("sink");
        null_sink qsink("qsink");
        tdf::signal<double> s1("s1"), s2("s2"), s3("s3"), s4("s4"), s5("s5");
        rf.out.bind(s1);
        lo.out_i.bind(s2);
        lo.out_q.bind(s5);
        qsink.in.bind(s5);
        mix.rf.bind(s1);
        mix.lo.bind(s2);
        mix.out.bind(s3);
        ifamp.in.bind(s3);
        ifamp.out.bind(s4);
        sink.in.bind(s4);
        sim.run_seconds(5e-3);
        last = sink.last;
    }
    state.counters["last"] = last;
}

void nonlinear_vs_linear_step_cost(benchmark::State& state) {
    // Marginal cost of the Newton machinery on an otherwise identical model.
    const bool nonlinear = state.range(0) != 0;
    for (auto _ : state) {
        sca::core::simulation sim;
        eln::network net("net");
        net.set_timestep(k_step);
        auto gnd = net.ground();
        auto a = net.create_node("a");
        auto b = net.create_node("b");
        eln::vsource vs("vs", net, a, gnd, eln::waveform::sine(1.0, 1e3));
        eln::resistor r1("r1", net, a, b, 1000.0);
        eln::capacitor c1("c1", net, b, gnd, 100e-9);
        std::unique_ptr<eln::nonlinear_vccs> nl;
        if (nonlinear) {
            nl = std::make_unique<eln::nonlinear_vccs>(
                "nl", net, b, gnd, b, gnd, [](double v) { return 1e-4 * std::tanh(v); },
                [](double v) {
                    const double ch = std::cosh(v);
                    return 1e-4 / (ch * ch);
                });
        }
        sim.run_seconds(50e-3);
        benchmark::DoNotOptimize(net.voltage(b));
    }
    state.counters["steps_per_sec"] = benchmark::Counter(
        50e-3 / k_step.to_seconds(), benchmark::Counter::kIsIterationInvariantRate);
}

}  // namespace

BENCHMARK(diode_bridge_rectifier)->Unit(benchmark::kMillisecond);
BENCHMARK(saturating_amplifier_chain)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(rf_downconversion_chain)->Unit(benchmark::kMillisecond);
BENCHMARK(nonlinear_vs_linear_step_cost)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

SCA_BENCH_MAIN(bench_phase2_nonlinear)
