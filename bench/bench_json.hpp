// Machine-readable benchmark output shared by every bench_* binary.
//
// SCA_BENCH_MAIN(name) replaces BENCHMARK_MAIN(): it runs the registered
// benchmarks through a reporter that mirrors the normal console output AND
// writes BENCH_<name>.json — one object per benchmark run with its name,
// per-iteration real/cpu time, time unit and iteration count, plus a config
// block (host CPU, telemetry build flag).  Under repetitions the aggregate
// rows (median/mean/stddev) are captured too; `median` entries are what CI
// trend tracking keys on, falling back to the single-run row when a bench
// does not repeat.  Output directory: $SCA_BENCH_JSON_DIR (default cwd).
#ifndef SCA_BENCH_JSON_HPP
#define SCA_BENCH_JSON_HPP

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <locale>
#include <sstream>
#include <string>
#include <vector>

#include "util/telemetry.hpp"

namespace bench_json {

struct row {
    std::string name;
    std::string aggregate;  // "median"/"mean"/... for aggregate rows, else ""
    std::string time_unit;
    double real_time = 0.0;  // per iteration, in time_unit
    double cpu_time = 0.0;
    std::int64_t iterations = 0;
};

class json_reporter : public benchmark::ConsoleReporter {
public:
    bool ReportContext(const Context& context) override {
        num_cpus_ = context.cpu_info.num_cpus;
        cycles_per_second_ = context.cpu_info.cycles_per_second;
        return benchmark::ConsoleReporter::ReportContext(context);
    }

    void ReportRuns(const std::vector<Run>& reports) override {
        for (const Run& run : reports) {
            if (run.error_occurred) continue;
            row r;
            r.name = run.benchmark_name();
            if (run.run_type == Run::RT_Aggregate) r.aggregate = run.aggregate_name;
            r.time_unit = benchmark::GetTimeUnitString(run.time_unit);
            r.real_time = run.GetAdjustedRealTime();
            r.cpu_time = run.GetAdjustedCPUTime();
            r.iterations = static_cast<std::int64_t>(run.iterations);
            rows_.push_back(std::move(r));
        }
        benchmark::ConsoleReporter::ReportRuns(reports);
    }

    [[nodiscard]] const std::vector<row>& rows() const noexcept { return rows_; }
    [[nodiscard]] int num_cpus() const noexcept { return num_cpus_; }
    [[nodiscard]] double cycles_per_second() const noexcept {
        return cycles_per_second_;
    }

private:
    std::vector<row> rows_;
    int num_cpus_ = 0;
    double cycles_per_second_ = 0.0;
};

inline std::string fmt_double(double v) {
    std::ostringstream ss;
    ss.imbue(std::locale::classic());
    ss.precision(17);
    ss << v;
    return ss.str();
}

inline void write_json_string(std::ostream& os, const std::string& s) {
    os << '"';
    for (char c : s) {
        if (c == '"' || c == '\\') os << '\\';
        os << c;
    }
    os << '"';
}

/// Write BENCH_<bench_name>.json under $SCA_BENCH_JSON_DIR (default ".").
inline void write_report(const json_reporter& reporter, const std::string& bench_name) {
    const char* dir = std::getenv("SCA_BENCH_JSON_DIR");
    const std::string path =
        (dir != nullptr && *dir != '\0' ? std::string(dir) + "/" : std::string()) +
        "BENCH_" + bench_name + ".json";
    std::ofstream os(path);
    if (!os) return;  // unwritable dir never fails the bench itself
    os << "{\"bench\":";
    write_json_string(os, bench_name);
    os << ",\"config\":{\"num_cpus\":" << reporter.num_cpus()
       << ",\"cycles_per_second\":" << fmt_double(reporter.cycles_per_second())
       << ",\"telemetry\":" << (SCA_TELEMETRY_ENABLED ? 1 : 0) << "}";
    os << ",\"results\":[";
    bool first = true;
    for (const row& r : reporter.rows()) {
        if (!first) os << ',';
        first = false;
        os << "{\"name\":";
        write_json_string(os, r.name);
        os << ",\"aggregate\":";
        write_json_string(os, r.aggregate);
        os << ",\"real_time\":" << fmt_double(r.real_time)
           << ",\"cpu_time\":" << fmt_double(r.cpu_time) << ",\"time_unit\":\""
           << r.time_unit << "\",\"iterations\":" << r.iterations << '}';
    }
    os << "]}\n";
}

}  // namespace bench_json

// Drop-in replacement for BENCHMARK_MAIN(); the JSON report is written after
// the run so a crashed bench leaves no half-written file behind.
#define SCA_BENCH_MAIN(bench_name)                                         \
    int main(int argc, char** argv) {                                      \
        benchmark::Initialize(&argc, argv);                                \
        if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;  \
        bench_json::json_reporter reporter;                                \
        benchmark::RunSpecifiedBenchmarks(&reporter);                      \
        benchmark::Shutdown();                                             \
        bench_json::write_report(reporter, #bench_name);                   \
        return 0;                                                          \
    }

#endif  // SCA_BENCH_JSON_HPP
