// RATE-MULTI (paper §3): SDF graphs "have the nice property that a finite
// static scheduling can always be found" — and computing that schedule is a
// one-time elaboration cost, after which multirate execution is as cheap as
// single-rate.
//
// Benchmarks: elaboration (schedule construction) cost for deep chains, and
// steady-state throughput of multirate versus rate-1 pipelines moving the
// same token volume.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>

#include "bench_util.hpp"
#include "kernel/context.hpp"
#include "lib/filters.hpp"
#include "tdf/cluster.hpp"
#include "tdf/schedule.hpp"
#include "util/telemetry.hpp"
#include "util/trace_export.hpp"

namespace de = sca::de;
namespace tdf = sca::tdf;
namespace lib = sca::lib;
using namespace bench_util;

namespace {

constexpr de::time k_step = de::time::from_fs(1'000'000'000);  // 1 us

/// Coupled-form rotation oscillator: a sine source at a few mul/add per
/// sample instead of a libm sin() call.  The throughput benchmarks measure
/// the executor and the pipeline kernels; with a libm source both A/B arms
/// share a ~15 ns/sample constant that masks exactly the overhead the
/// block path removes.  Per-sample and block paths run the identical
/// recurrence, so the two arms stay bit-identical.
struct rot_src : tdf::module {
    tdf::out<double> out;
    de::time ts;
    double c_, s_;            // rotating phasor, |.| = amplitude
    const double cr_, sr_;    // per-step rotation
    rot_src(const de::module_name& nm, double a, double f, de::time step)
        : tdf::module(nm),
          out("out"),
          ts(step),
          c_(a),
          s_(0.0),
          cr_(std::cos(2.0 * 3.141592653589793 * f * step.to_seconds())),
          sr_(std::sin(2.0 * 3.141592653589793 * f * step.to_seconds())) {}
    void set_attributes() override { set_timestep(ts); }
    void processing() override {
        out.write(s_);
        const double ns = s_ * cr_ + c_ * sr_;
        c_ = c_ * cr_ - s_ * sr_;
        s_ = ns;
    }
    [[nodiscard]] bool has_block_processing() const override { return true; }
    void processing(tdf::block_view& blk) override {
        double* y = blk.out_span(out);
        double c = c_, s = s_;
        for (std::uint64_t i = 0; i < blk.count(); ++i) {
            y[i] = s;
            const double ns = s * cr_ + c * sr_;
            c = c * cr_ - s * sr_;
            s = ns;
        }
        c_ = c;
        s_ = s;
    }
};

void schedule_elaboration(benchmark::State& state) {
    const auto n_stages = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        sca::core::simulation sim;
        sine_src src("src", 1.0, 10e3, k_step);
        std::vector<std::unique_ptr<gain_stage>> stages;
        std::vector<std::unique_ptr<tdf::signal<double>>> wires;
        wires.push_back(std::make_unique<tdf::signal<double>>("w0"));
        src.out.bind(*wires.back());
        for (std::size_t i = 0; i < n_stages; ++i) {
            stages.push_back(std::make_unique<gain_stage>(
                de::module_name(("g" + std::to_string(i)).c_str()), 1.0));
            // Alternate 1:2 and 2:1 rates: non-trivial repetition vector.
            if (i % 2 == 0) {
                stages.back()->out.set_rate(2);
            } else {
                stages.back()->in.set_rate(2);
            }
            stages.back()->in.bind(*wires.back());
            wires.push_back(
                std::make_unique<tdf::signal<double>>("w" + std::to_string(i + 1)));
            stages.back()->out.bind(*wires.back());
        }
        null_sink sink("sink");
        sink.in.bind(*wires.back());
        sim.elaborate();  // the measured operation
        benchmark::DoNotOptimize(sim.now());
    }
}

/// state.range(0): 1 = block execution (default), 0 = per-sample A/B baseline.
void monorate_throughput(benchmark::State& state) {
    const bool block = state.range(0) != 0;
    for (auto _ : state) {
        sca::core::simulation sim;
        tdf::registry::of(sim.context()).set_default_block_execution(block);
        rot_src src("src", 1.0, 10e3, k_step);
        gain_stage g1("g1", 1.0), g2("g2", 1.0);
        null_sink sink("sink");
        tdf::signal<double> s1("s1"), s2("s2"), s3("s3");
        src.out.bind(s1);
        g1.in.bind(s1);
        g1.out.bind(s2);
        g2.in.bind(s2);
        g2.out.bind(s3);
        sink.in.bind(s3);
        sim.run_seconds(100e-3);
        benchmark::DoNotOptimize(sink.last);
    }
    state.counters["tokens_per_sec"] = benchmark::Counter(
        100e-3 / k_step.to_seconds(), benchmark::Counter::kIsIterationInvariantRate);
}

/// state.range(0): 1 = block execution (default), 0 = per-sample A/B baseline.
void multirate_throughput(benchmark::State& state) {
    // Interpolate 1:4, process, decimate 4:1 — 4x the internal token volume.
    const bool block = state.range(0) != 0;
    for (auto _ : state) {
        sca::core::simulation sim;
        tdf::registry::of(sim.context()).set_default_block_execution(block);
        rot_src src("src", 1.0, 10e3, k_step);
        lib::interpolator up("up", 4);
        gain_stage g("g", 1.0);
        lib::decimator down("down", 4);
        null_sink sink("sink");
        tdf::signal<double> s1("s1"), s2("s2"), s3("s3"), s4("s4");
        src.out.bind(s1);
        up.in.bind(s1);
        up.out.bind(s2);
        g.in.bind(s2);
        g.out.bind(s3);
        down.in.bind(s3);
        down.out.bind(s4);
        sink.in.bind(s4);
        sim.run_seconds(100e-3);
        benchmark::DoNotOptimize(sink.last);
    }
    state.counters["tokens_per_sec"] = benchmark::Counter(
        4.0 * 100e-3 / k_step.to_seconds(), benchmark::Counter::kIsIterationInvariantRate);
}

/// Multirate TDF chain plus an RC-ladder ELN network in one context — the
/// scenario behind the CI trace artifact: elaboration, cluster-firing and
/// solver spans are all present.  Set SCA_TRACE_JSON=<path> to capture a
/// Perfetto-loadable trace and/or SCA_METRICS_JSON=<path> for the metrics
/// dump (written every iteration, outside the timed region; last one wins).
void traced_multidomain(benchmark::State& state) {
    const char* trace_path = std::getenv("SCA_TRACE_JSON");
    const char* metrics_path = std::getenv("SCA_METRICS_JSON");
    for (auto _ : state) {
        sca::core::simulation sim;
        if (trace_path != nullptr) sim.context().tracer().enable();
        rot_src src("src", 1.0, 10e3, k_step);
        lib::interpolator up("up", 4);
        gain_stage g("g", 1.0);
        lib::decimator down("down", 4);
        null_sink sink("sink");
        tdf::signal<double> s1("s1"), s2("s2"), s3("s3"), s4("s4");
        src.out.bind(s1);
        up.in.bind(s1);
        up.out.bind(s2);
        g.in.bind(s2);
        g.out.bind(s3);
        down.in.bind(s3);
        down.out.bind(s4);
        sink.in.bind(s4);
        rc_ladder ladder(8, k_step);
        sim.run_seconds(10e-3);
        benchmark::DoNotOptimize(sink.last);
        if (trace_path != nullptr || metrics_path != nullptr) {
            state.PauseTiming();
            if (trace_path != nullptr) {
                std::ofstream os(trace_path);
                sim.context().tracer().write_chrome_json(os);
            }
            if (metrics_path != nullptr) {
                std::ofstream os(metrics_path);
                sca::util::write_metrics_json(os, sim.context().collect_metrics());
            }
            state.ResumeTiming();
        }
    }
}

void repetition_vector_cost(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    std::vector<tdf::rate_edge> edges;
    for (std::size_t i = 0; i + 1 < n; ++i) {
        edges.push_back({i, i + 1, static_cast<unsigned>(i % 3) + 1,
                         static_cast<unsigned>((i + 1) % 3) + 1});
    }
    for (auto _ : state) {
        auto reps = tdf::repetition_vector(n, edges);
        benchmark::DoNotOptimize(reps);
    }
}

}  // namespace

BENCHMARK(schedule_elaboration)->Arg(10)->Arg(50)->Arg(200)->Unit(benchmark::kMillisecond);
BENCHMARK(monorate_throughput)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"block"})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(multirate_throughput)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"block"})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(traced_multidomain)->Unit(benchmark::kMillisecond);
BENCHMARK(repetition_vector_cost)->Arg(100)->Arg(1000)->Unit(benchmark::kMicrosecond);

SCA_BENCH_MAIN(bench_tdf_multirate)
