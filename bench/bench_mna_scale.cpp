// CLAIM-SCALE (paper §3): system-level modeling must be "effective at
// managing complexity, both in terms of descriptive capabilities and
// simulation performances".
//
// MNA solver scaling on RC ladders of growing size: setup (stamp + first
// factorization) versus per-step marginal cost, with a sparse-vs-dense
// factorization ablation.  The sparse path keeps per-step cost near-linear
// in N; the dense path goes superlinear quickly.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include "bench_util.hpp"
#include "numeric/dense.hpp"
#include "numeric/sparse.hpp"
#include "solver/equation_system.hpp"
#include "solver/linear_dae.hpp"

namespace de = sca::de;
namespace solver = sca::solver;
using namespace bench_util;

namespace {

constexpr de::time k_step = de::time::from_fs(1'000'000'000);  // 1 us

/// Equation-level ladder (no TDF wrapper): isolates raw solver cost.
solver::equation_system ladder_equations(std::size_t n) {
    solver::equation_system sys;
    std::vector<std::size_t> nodes(n);
    for (std::size_t i = 0; i < n; ++i) nodes[i] = sys.add_unknown("n" + std::to_string(i));
    const double g = 1.0 / 100.0;
    const double c = 1e-9;
    for (std::size_t i = 0; i < n; ++i) {
        sys.add_a(nodes[i], nodes[i], i + 1 < n ? 2.0 * g : g);
        if (i > 0) {
            sys.add_a(nodes[i], nodes[i - 1], -g);
            sys.add_a(nodes[i - 1], nodes[i], -g);
        }
        sys.add_b(nodes[i], nodes[i], c);
    }
    sys.add_rhs_source(nodes[0], [](double t) {
        return std::sin(2.0 * 3.141592653589793 * 10e3 * t) / 100.0;
    });
    return sys;
}

void sparse_setup(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        auto sys = ladder_equations(n);
        solver::linear_dae_solver s(sys, solver::integration_method::trapezoidal,
                                    k_step.to_seconds());
        s.set_initial_state(std::vector<double>(n, 0.0), 0.0);
        s.step();  // forces the factorization
        benchmark::DoNotOptimize(s.x());
    }
}

void sparse_steps(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    auto sys = ladder_equations(n);
    solver::linear_dae_solver s(sys, solver::integration_method::trapezoidal,
                                k_step.to_seconds());
    s.set_initial_state(std::vector<double>(n, 0.0), 0.0);
    s.step();
    for (auto _ : state) {
        s.step();
        benchmark::DoNotOptimize(s.x());
    }
    state.counters["steps_per_sec"] =
        benchmark::Counter(1.0, benchmark::Counter::kIsIterationInvariantRate);
}

void dense_setup(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        auto sys = ladder_equations(n);
        solver::linear_dae_solver s(sys, solver::integration_method::trapezoidal,
                                    k_step.to_seconds());
        s.set_use_dense(true);
        s.set_initial_state(std::vector<double>(n, 0.0), 0.0);
        s.step();
        benchmark::DoNotOptimize(s.x());
    }
}

void dense_steps(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    auto sys = ladder_equations(n);
    solver::linear_dae_solver s(sys, solver::integration_method::trapezoidal,
                                k_step.to_seconds());
    s.set_use_dense(true);
    s.set_initial_state(std::vector<double>(n, 0.0), 0.0);
    s.step();
    for (auto _ : state) {
        s.step();
        benchmark::DoNotOptimize(s.x());
    }
    state.counters["steps_per_sec"] =
        benchmark::Counter(1.0, benchmark::Counter::kIsIterationInvariantRate);
}

/// Full-stack scaling: the same ladder through the TDF-embedded network.
void network_transient(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        sca::core::simulation sim;
        rc_ladder ladder(n, k_step);
        sim.run_seconds(1e-4);  // 100 steps
        benchmark::DoNotOptimize(ladder.net->voltage(ladder.out_node));
    }
    state.counters["steps_per_sec"] = benchmark::Counter(
        100.0, benchmark::Counter::kIsIterationInvariantRate);
}

}  // namespace

BENCHMARK(sparse_setup)->Arg(10)->Arg(50)->Arg(200)->Arg(1000)->Unit(benchmark::kMillisecond);
BENCHMARK(sparse_steps)->Arg(10)->Arg(50)->Arg(200)->Arg(1000)->Unit(benchmark::kMicrosecond);
BENCHMARK(dense_setup)->Arg(10)->Arg(50)->Arg(200)->Unit(benchmark::kMillisecond);
BENCHMARK(dense_steps)->Arg(10)->Arg(50)->Arg(200)->Unit(benchmark::kMicrosecond);
BENCHMARK(network_transient)->Arg(10)->Arg(50)->Arg(200)->Unit(benchmark::kMillisecond);

SCA_BENCH_MAIN(bench_mna_scale)
