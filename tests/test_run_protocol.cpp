// Wire protocol for out-of-process run_set execution: byte-exact round trips
// for jobs, params and results (including NaN/Inf/signed-zero/denormal
// doubles — the transport must preserve bit patterns, not values), and the
// robustness contract: truncated frames, oversized payloads, bad magic and
// checksum mismatches throw instead of yielding garbage.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/run_protocol.hpp"
#include "core/run_set.hpp"
#include "util/report.hpp"

namespace core = sca::core;
namespace wire = sca::core::wire;

namespace {

std::uint64_t bits(double d) { return std::bit_cast<std::uint64_t>(d); }

/// The doubles that break value-based transports: quiet/signaling-style NaN
/// payloads, both infinities, both zeros, denormals, and extremes.
std::vector<double> nasty_doubles() {
    return {
        std::numeric_limits<double>::quiet_NaN(),
        std::bit_cast<double>(std::uint64_t{0x7ff0dead'beef0001ULL}),  // NaN payload
        std::bit_cast<double>(std::uint64_t{0xfff00000'00000001ULL}),  // -NaN
        std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity(),
        0.0,
        -0.0,
        std::numeric_limits<double>::denorm_min(),
        -std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::max(),
        std::numeric_limits<double>::lowest(),
        1.0 / 3.0,
    };
}

}  // namespace

// ------------------------------------------------------------- round trips --

TEST(run_protocol, job_round_trip) {
    const auto payload = wire::encode_job(0xdeadbeef12345678ULL);
    EXPECT_EQ(wire::decode_job(payload.data(), payload.size()), 0xdeadbeef12345678ULL);
}

TEST(run_protocol, params_round_trip_preserves_identity_and_types) {
    core::params p{{"r", 2.2e3}, {"mode", "fast"}};
    p.set_run_identity(42, 0x5ca5eedULL);
    const auto payload = wire::encode_params(p);
    const core::params q = wire::decode_params(payload.data(), payload.size());
    EXPECT_EQ(q.run_index(), 42U);
    EXPECT_EQ(q.seed(), 0x5ca5eedULL);
    EXPECT_DOUBLE_EQ(q.number("r"), 2.2e3);
    EXPECT_EQ(q.text("mode"), "fast");
    EXPECT_EQ(q.entries().size(), 2U);
}

TEST(run_protocol, result_round_trip_is_bit_exact_for_nasty_doubles) {
    core::run_result r;
    r.index = 7;
    r.seed = 1234;
    r.ok = true;
    r.parameters.set("x", -0.0);
    r.parameters.set_run_identity(7, 1234);
    r.times = nasty_doubles();
    r.probe_names = {"v(nan)", "i"};
    r.waveforms = {nasty_doubles(), {1.5, 2.5}};
    r.measurements["nan_meas"] = std::numeric_limits<double>::quiet_NaN();
    r.measurements["inf_meas"] = -std::numeric_limits<double>::infinity();

    const auto payload = wire::encode_result(r);
    const core::run_result d = wire::decode_result(payload.data(), payload.size());

    EXPECT_EQ(d.index, 7U);
    EXPECT_EQ(d.seed, 1234U);
    EXPECT_TRUE(d.ok);
    EXPECT_TRUE(d.error.empty());
    EXPECT_EQ(bits(d.parameters.number("x")), bits(-0.0));  // sign of zero survives
    ASSERT_EQ(d.times.size(), r.times.size());
    for (std::size_t i = 0; i < r.times.size(); ++i) {
        EXPECT_EQ(bits(d.times[i]), bits(r.times[i])) << "times[" << i << "]";
    }
    ASSERT_EQ(d.waveforms.size(), 2U);
    ASSERT_EQ(d.waveforms[0].size(), r.waveforms[0].size());
    for (std::size_t i = 0; i < r.waveforms[0].size(); ++i) {
        EXPECT_EQ(bits(d.waveforms[0][i]), bits(r.waveforms[0][i])) << "wave[" << i << "]";
    }
    EXPECT_EQ(d.probe_names, r.probe_names);
    EXPECT_EQ(bits(d.measurements.at("nan_meas")), bits(r.measurements.at("nan_meas")));
    EXPECT_EQ(bits(d.measurements.at("inf_meas")), bits(r.measurements.at("inf_meas")));
}

TEST(run_protocol, error_result_round_trip) {
    core::run_result r;
    r.index = 3;
    r.seed = 99;
    r.ok = false;
    r.error = "solver diverged: matrix is singular\nsecond line, \"quoted\"";
    const auto payload = wire::encode_result(r);
    const core::run_result d = wire::decode_result(payload.data(), payload.size());
    EXPECT_FALSE(d.ok);
    EXPECT_EQ(d.error, r.error);
    EXPECT_TRUE(d.waveforms.empty());
}

TEST(run_protocol, frame_pack_unpack_round_trip) {
    const auto payload = wire::encode_job(17);
    const auto bytes = wire::pack_frame(wire::msg_type::job, payload);
    std::size_t offset = 0;
    wire::frame f;
    ASSERT_TRUE(wire::unpack_frame(bytes.data(), bytes.size(), offset, f));
    EXPECT_EQ(f.type, wire::msg_type::job);
    EXPECT_EQ(f.payload, payload);
    EXPECT_EQ(offset, bytes.size());
    // Clean end: no more frames, no throw.
    EXPECT_FALSE(wire::unpack_frame(bytes.data(), bytes.size(), offset, f));
}

TEST(run_protocol, multiple_frames_in_one_buffer) {
    auto bytes = wire::pack_frame(wire::msg_type::job, wire::encode_job(1));
    const auto second = wire::pack_frame(wire::msg_type::shutdown, {});
    bytes.insert(bytes.end(), second.begin(), second.end());
    std::size_t offset = 0;
    wire::frame f;
    ASSERT_TRUE(wire::unpack_frame(bytes.data(), bytes.size(), offset, f));
    EXPECT_EQ(f.type, wire::msg_type::job);
    ASSERT_TRUE(wire::unpack_frame(bytes.data(), bytes.size(), offset, f));
    EXPECT_EQ(f.type, wire::msg_type::shutdown);
    EXPECT_TRUE(f.payload.empty());
    EXPECT_FALSE(wire::unpack_frame(bytes.data(), bytes.size(), offset, f));
}

// -------------------------------------------------------------- rejection --

TEST(run_protocol, truncated_frame_throws_at_every_cut) {
    const auto bytes = wire::pack_frame(wire::msg_type::job, wire::encode_job(5));
    // Any strict prefix must throw (mid-frame truncation), never return
    // false (which means "clean end of stream") and never parse.
    for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
        std::size_t offset = 0;
        wire::frame f;
        EXPECT_THROW((void)wire::unpack_frame(bytes.data(), cut, offset, f),
                     sca::util::error)
            << "prefix of " << cut << " bytes";
    }
}

TEST(run_protocol, bad_magic_is_rejected) {
    auto bytes = wire::pack_frame(wire::msg_type::job, wire::encode_job(5));
    bytes[0] ^= 0xff;
    std::size_t offset = 0;
    wire::frame f;
    EXPECT_THROW((void)wire::unpack_frame(bytes.data(), bytes.size(), offset, f),
                 sca::util::error);
}

TEST(run_protocol, corrupted_payload_fails_the_checksum) {
    auto bytes = wire::pack_frame(wire::msg_type::job, wire::encode_job(5));
    bytes[9] ^= 0x01;  // flip one payload bit; length/type stay plausible
    std::size_t offset = 0;
    wire::frame f;
    EXPECT_THROW((void)wire::unpack_frame(bytes.data(), bytes.size(), offset, f),
                 sca::util::error);
}

TEST(run_protocol, oversized_length_prefix_is_rejected_before_allocation) {
    auto bytes = wire::pack_frame(wire::msg_type::job, wire::encode_job(5));
    // Rewrite the length field (bytes 4..7, little-endian) to > k_max_payload.
    const std::uint32_t huge = wire::k_max_payload + 1;
    for (int i = 0; i < 4; ++i) bytes[4 + i] = static_cast<std::uint8_t>(huge >> (8 * i));
    std::size_t offset = 0;
    wire::frame f;
    EXPECT_THROW((void)wire::unpack_frame(bytes.data(), bytes.size(), offset, f),
                 sca::util::error);
}

TEST(run_protocol, unknown_frame_type_is_rejected) {
    auto bytes = wire::pack_frame(wire::msg_type::job, wire::encode_job(5));
    bytes[8] = 0x77;  // type byte
    std::size_t offset = 0;
    wire::frame f;
    EXPECT_THROW((void)wire::unpack_frame(bytes.data(), bytes.size(), offset, f),
                 sca::util::error);
}

TEST(run_protocol, short_payload_decoders_throw) {
    const auto payload = wire::encode_job(5);
    EXPECT_THROW((void)wire::decode_job(payload.data(), payload.size() - 1),
                 sca::util::error);
    core::run_result r;
    r.index = 1;
    r.ok = true;
    const auto res = wire::encode_result(r);
    for (const std::size_t cut : {res.size() / 2, res.size() - 1}) {
        EXPECT_THROW((void)wire::decode_result(res.data(), cut), sca::util::error);
    }
}

TEST(run_protocol, trailing_garbage_after_payload_is_rejected) {
    auto payload = wire::encode_job(5);
    payload.push_back(0x00);
    EXPECT_THROW((void)wire::decode_job(payload.data(), payload.size()),
                 sca::util::error);
}

// -------------------------------------------------- session protocol (v1) --

TEST(session_protocol, hello_round_trip_and_version_guard) {
    const auto payload = wire::encode_hello(wire::k_session_version);
    EXPECT_EQ(wire::decode_hello(payload.data(), payload.size()),
              wire::k_session_version);
    // A hello from the future still decodes — the reply carries this side's
    // version, so negotiation happens above the codec — but 0 is invalid.
    const auto future = wire::encode_hello(wire::k_session_version + 1);
    EXPECT_EQ(wire::decode_hello(future.data(), future.size()),
              wire::k_session_version + 1);
    const std::uint8_t zero[] = {0};
    EXPECT_THROW((void)wire::decode_hello(zero, 1), sca::util::error);
}

TEST(session_protocol, catalog_round_trip) {
    std::vector<wire::catalog_entry> entries(2);
    entries[0].name = "adaptive_receiver";
    entries[0].defaults = core::params{{"threshold", 0.25}, {"mode", "fast"}};
    entries[1].name = "rc_filter";
    const auto payload = wire::encode_catalog(entries);
    const auto d = wire::decode_catalog(payload.data(), payload.size());
    ASSERT_EQ(d.size(), 2U);
    EXPECT_EQ(d[0].name, "adaptive_receiver");
    EXPECT_DOUBLE_EQ(d[0].defaults.number("threshold"), 0.25);
    EXPECT_EQ(d[0].defaults.text("mode"), "fast");
    EXPECT_EQ(d[1].name, "rc_filter");
    EXPECT_TRUE(d[1].defaults.entries().empty());
}

TEST(session_protocol, open_round_trip) {
    wire::open_request req;
    req.scenario = "adaptive_receiver";
    req.overrides = core::params{{"threshold", 0.5}};
    req.slice_us = 250;
    const auto payload = wire::encode_open(req);
    const wire::open_request d = wire::decode_open(payload.data(), payload.size());
    EXPECT_EQ(d.scenario, req.scenario);
    EXPECT_DOUBLE_EQ(d.overrides.number("threshold"), 0.5);
    EXPECT_EQ(d.slice_us, 250U);
}

TEST(session_protocol, opened_round_trip) {
    wire::session_info info;
    info.session_id = 0xfeedface01ULL;
    info.stop_time_s = 0.2;
    info.sample_period_s = 64e-6;
    info.probes = {"decimated", "level"};
    const auto payload = wire::encode_opened(info);
    const wire::session_info d = wire::decode_opened(payload.data(), payload.size());
    EXPECT_EQ(d.session_id, info.session_id);
    EXPECT_DOUBLE_EQ(d.stop_time_s, 0.2);
    EXPECT_DOUBLE_EQ(d.sample_period_s, 64e-6);
    EXPECT_EQ(d.probes, info.probes);
}

TEST(session_protocol, poke_and_subscribe_round_trips) {
    const auto poke = wire::encode_poke({"threshold", -0.0});
    const wire::param_poke p = wire::decode_poke(poke.data(), poke.size());
    EXPECT_EQ(p.name, "threshold");
    EXPECT_EQ(bits(p.value), bits(-0.0));

    for (const bool on : {true, false}) {
        wire::subscribe_request req;
        req.probe = "decimated";
        req.on = on;
        const auto payload = wire::encode_subscribe(req);
        const wire::subscribe_request d =
            wire::decode_subscribe(payload.data(), payload.size());
        EXPECT_EQ(d.probe, "decimated");
        EXPECT_EQ(d.on, on);
    }
}

TEST(session_protocol, sample_batch_round_trip_is_bit_exact) {
    wire::sample_batch batch;
    batch.probe = "v(out)";
    batch.first_index = 512;
    batch.dropped = 64;
    batch.times = nasty_doubles();
    batch.values = nasty_doubles();
    const auto payload = wire::encode_samples(batch);
    const wire::sample_batch d = wire::decode_samples(payload.data(), payload.size());
    EXPECT_EQ(d.probe, batch.probe);
    EXPECT_EQ(d.first_index, 512U);
    EXPECT_EQ(d.dropped, 64U);
    ASSERT_EQ(d.times.size(), batch.times.size());
    ASSERT_EQ(d.values.size(), batch.values.size());
    for (std::size_t i = 0; i < batch.times.size(); ++i) {
        EXPECT_EQ(bits(d.times[i]), bits(batch.times[i])) << "times[" << i << "]";
        EXPECT_EQ(bits(d.values[i]), bits(batch.values[i])) << "values[" << i << "]";
    }
}

TEST(session_protocol, sample_batch_with_mismatched_lengths_is_rejected) {
    wire::sample_batch batch;
    batch.probe = "p";
    batch.times = {1.0, 2.0, 3.0};
    batch.values = {1.0, 2.0};  // one short: decoder must refuse
    const auto payload = wire::encode_samples(batch);
    EXPECT_THROW((void)wire::decode_samples(payload.data(), payload.size()),
                 sca::util::error);
}

TEST(session_protocol, pace_and_run_state_round_trips) {
    wire::pace_info info;
    info.real_time_factor = 10.0;
    info.drift_s = 1.5e-3;
    info.max_drift_s = 2.5e-3;
    const auto payload = wire::encode_pace(info);
    const wire::pace_info d = wire::decode_pace(payload.data(), payload.size());
    EXPECT_DOUBLE_EQ(d.real_time_factor, 10.0);
    EXPECT_DOUBLE_EQ(d.drift_s, 1.5e-3);
    EXPECT_DOUBLE_EQ(d.max_drift_s, 2.5e-3);

    for (const bool running : {true, false}) {
        const auto rs = wire::encode_run_state(running);
        EXPECT_EQ(wire::decode_run_state(rs.data(), rs.size()), running);
    }
    const std::uint8_t bogus[] = {2};
    EXPECT_THROW((void)wire::decode_run_state(bogus, 1), sca::util::error);
}

TEST(session_protocol, close_round_trip) {
    wire::close_info info;
    info.reason = wire::close_reason::finished;
    info.sim_time_s = 0.1;
    info.samples_streamed = 12345;
    info.samples_dropped = 67;
    info.pace_drift_s = 3e-4;
    info.pace_max_drift_s = 9e-4;
    info.max_queue_depth = 31;
    info.slices = 4000;
    info.measurements["rms"] = 0.7071;
    info.measurements["nan"] = std::numeric_limits<double>::quiet_NaN();
    const auto payload = wire::encode_close(info);
    const wire::close_info d = wire::decode_close(payload.data(), payload.size());
    EXPECT_EQ(d.reason, wire::close_reason::finished);
    EXPECT_DOUBLE_EQ(d.sim_time_s, 0.1);
    EXPECT_EQ(d.samples_streamed, 12345U);
    EXPECT_EQ(d.samples_dropped, 67U);
    EXPECT_DOUBLE_EQ(d.pace_drift_s, 3e-4);
    EXPECT_DOUBLE_EQ(d.pace_max_drift_s, 9e-4);
    EXPECT_EQ(d.max_queue_depth, 31U);
    EXPECT_EQ(d.slices, 4000U);
    EXPECT_DOUBLE_EQ(d.measurements.at("rms"), 0.7071);
    EXPECT_TRUE(std::isnan(d.measurements.at("nan")));
}

TEST(session_protocol, stats_round_trip) {
    wire::stats_info info;
    info.sim_time_s = 2.5e-3;
    info.slices = 640;
    info.samples_streamed = 98765;
    info.samples_dropped = 12;
    info.queue_depth = 7;
    info.max_queue_depth = 42;
    info.pace_drift_s = -1e-5;
    info.pace_max_drift_s = 4e-4;
    const auto payload = wire::encode_stats(info);
    const wire::stats_info d = wire::decode_stats(payload.data(), payload.size());
    EXPECT_DOUBLE_EQ(d.sim_time_s, 2.5e-3);
    EXPECT_EQ(d.slices, 640U);
    EXPECT_EQ(d.samples_streamed, 98765U);
    EXPECT_EQ(d.samples_dropped, 12U);
    EXPECT_EQ(d.queue_depth, 7U);
    EXPECT_EQ(d.max_queue_depth, 42U);
    EXPECT_DOUBLE_EQ(d.pace_drift_s, -1e-5);
    EXPECT_DOUBLE_EQ(d.pace_max_drift_s, 4e-4);
}

TEST(run_protocol, metrics_round_trip_is_bit_exact_for_nasty_doubles) {
    // Gauges carry arbitrary doubles: the metrics frame must move them
    // bit-exactly, like results do.
    namespace util = sca::util;
    wire::run_metrics m;
    m.index = 17;
    util::metric_value c;
    c.name = "kernel.delta_cycles";
    c.kind = util::metric_value::metric_kind::counter;
    c.count = 123456789;
    m.entries.push_back(c);
    for (const double v : nasty_doubles()) {
        util::metric_value g;
        g.name = "gauge_" + std::to_string(m.entries.size());
        g.kind = util::metric_value::metric_kind::gauge;
        g.value = v;
        m.entries.push_back(g);
    }
    const auto payload = wire::encode_metrics(m);
    const wire::run_metrics d = wire::decode_metrics(payload.data(), payload.size());
    EXPECT_EQ(d.index, 17U);
    ASSERT_EQ(d.entries.size(), m.entries.size());
    for (std::size_t i = 0; i < m.entries.size(); ++i) {
        EXPECT_EQ(d.entries[i].name, m.entries[i].name);
        EXPECT_EQ(d.entries[i].kind, m.entries[i].kind);
        EXPECT_EQ(d.entries[i].count, m.entries[i].count);
        EXPECT_EQ(bits(d.entries[i].value), bits(m.entries[i].value)) << i;
    }
}

TEST(session_protocol, error_round_trip) {
    const std::string msg = "no probe named 'x'\nwith a second line";
    const auto payload = wire::encode_error(msg);
    EXPECT_EQ(wire::decode_error(payload.data(), payload.size()), msg);
}

TEST(session_protocol, session_frames_truncate_and_corrupt_like_v0_frames) {
    // The robustness contract extends unchanged to every new frame type:
    // any strict prefix throws, any payload bit flip fails the checksum.
    wire::sample_batch batch;
    batch.probe = "p";
    batch.times = {1.0, 2.0};
    batch.values = {3.0, 4.0};
    const auto bytes = wire::pack_frame(wire::msg_type::samples,
                                        wire::encode_samples(batch));
    for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
        std::size_t offset = 0;
        wire::frame f;
        EXPECT_THROW((void)wire::unpack_frame(bytes.data(), cut, offset, f),
                     sca::util::error)
            << "prefix of " << cut << " bytes";
    }
    auto corrupt = bytes;
    corrupt[10] ^= 0x40;
    std::size_t offset = 0;
    wire::frame f;
    EXPECT_THROW((void)wire::unpack_frame(corrupt.data(), corrupt.size(), offset, f),
                 sca::util::error);
}

TEST(session_protocol, v0_frame_layout_is_frozen) {
    // Byte-for-byte guard on the pre-session framing: header magic 'SCA1',
    // little-endian length, type byte, payload, FNV-1a trailer.  The session
    // protocol extension must not disturb frames old workers exchange.
    const auto bytes = wire::pack_frame(wire::msg_type::job, wire::encode_job(5));
    const std::vector<std::uint8_t> expected = {
        'S', 'C', 'A', '1',          // magic
        8,   0,   0,   0,            // payload length = 8
        1,                           // msg_type::job
        5,   0,   0,   0, 0, 0, 0, 0,  // u64 run index, little-endian
        0xc0, 0x95, 0xfa, 0xc8,      // fnv1a over the payload
    };
    ASSERT_EQ(bytes.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(bytes[i], expected[i]) << "byte " << i;
    }
}

TEST(session_protocol, frame_size_hint_distinguishes_wait_from_garbage) {
    const auto bytes = wire::pack_frame(wire::msg_type::hello,
                                        wire::encode_hello(wire::k_session_version));
    // Incomplete header: "read more", no exception.
    for (std::size_t n = 0; n < 9; ++n) {
        EXPECT_EQ(wire::frame_size_hint(bytes.data(), n), 0U) << n << " bytes";
    }
    // Complete header: the exact frame size, even before the body arrives.
    for (std::size_t n = 9; n <= bytes.size(); ++n) {
        EXPECT_EQ(wire::frame_size_hint(bytes.data(), n), bytes.size());
    }
    auto bad_magic = bytes;
    bad_magic[1] ^= 0xff;
    EXPECT_THROW((void)wire::frame_size_hint(bad_magic.data(), bad_magic.size()),
                 sca::util::error);
    auto huge = bytes;
    const std::uint32_t too_big = wire::k_max_payload + 1;
    for (int i = 0; i < 4; ++i) {
        huge[4 + i] = static_cast<std::uint8_t>(too_big >> (8 * i));
    }
    EXPECT_THROW((void)wire::frame_size_hint(huge.data(), huge.size()),
                 sca::util::error);
}

TEST(run_protocol, fnv1a_is_stable) {
    // Reference vectors (FNV-1a 32-bit): guards the journal format across
    // refactors — a silent hash change would orphan existing checkpoints.
    const std::uint8_t abc[] = {'a', 'b', 'c'};
    EXPECT_EQ(wire::fnv1a(abc, 3), 0x1a47e90bU);
    EXPECT_EQ(wire::fnv1a(nullptr, 0), 0x811c9dc5U);
}
