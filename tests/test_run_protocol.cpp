// Wire protocol for out-of-process run_set execution: byte-exact round trips
// for jobs, params and results (including NaN/Inf/signed-zero/denormal
// doubles — the transport must preserve bit patterns, not values), and the
// robustness contract: truncated frames, oversized payloads, bad magic and
// checksum mismatches throw instead of yielding garbage.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/run_protocol.hpp"
#include "core/run_set.hpp"
#include "util/report.hpp"

namespace core = sca::core;
namespace wire = sca::core::wire;

namespace {

std::uint64_t bits(double d) { return std::bit_cast<std::uint64_t>(d); }

/// The doubles that break value-based transports: quiet/signaling-style NaN
/// payloads, both infinities, both zeros, denormals, and extremes.
std::vector<double> nasty_doubles() {
    return {
        std::numeric_limits<double>::quiet_NaN(),
        std::bit_cast<double>(std::uint64_t{0x7ff0dead'beef0001ULL}),  // NaN payload
        std::bit_cast<double>(std::uint64_t{0xfff00000'00000001ULL}),  // -NaN
        std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity(),
        0.0,
        -0.0,
        std::numeric_limits<double>::denorm_min(),
        -std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::max(),
        std::numeric_limits<double>::lowest(),
        1.0 / 3.0,
    };
}

}  // namespace

// ------------------------------------------------------------- round trips --

TEST(run_protocol, job_round_trip) {
    const auto payload = wire::encode_job(0xdeadbeef12345678ULL);
    EXPECT_EQ(wire::decode_job(payload.data(), payload.size()), 0xdeadbeef12345678ULL);
}

TEST(run_protocol, params_round_trip_preserves_identity_and_types) {
    core::params p{{"r", 2.2e3}, {"mode", "fast"}};
    p.set_run_identity(42, 0x5ca5eedULL);
    const auto payload = wire::encode_params(p);
    const core::params q = wire::decode_params(payload.data(), payload.size());
    EXPECT_EQ(q.run_index(), 42U);
    EXPECT_EQ(q.seed(), 0x5ca5eedULL);
    EXPECT_DOUBLE_EQ(q.number("r"), 2.2e3);
    EXPECT_EQ(q.text("mode"), "fast");
    EXPECT_EQ(q.entries().size(), 2U);
}

TEST(run_protocol, result_round_trip_is_bit_exact_for_nasty_doubles) {
    core::run_result r;
    r.index = 7;
    r.seed = 1234;
    r.ok = true;
    r.parameters.set("x", -0.0);
    r.parameters.set_run_identity(7, 1234);
    r.times = nasty_doubles();
    r.probe_names = {"v(nan)", "i"};
    r.waveforms = {nasty_doubles(), {1.5, 2.5}};
    r.measurements["nan_meas"] = std::numeric_limits<double>::quiet_NaN();
    r.measurements["inf_meas"] = -std::numeric_limits<double>::infinity();

    const auto payload = wire::encode_result(r);
    const core::run_result d = wire::decode_result(payload.data(), payload.size());

    EXPECT_EQ(d.index, 7U);
    EXPECT_EQ(d.seed, 1234U);
    EXPECT_TRUE(d.ok);
    EXPECT_TRUE(d.error.empty());
    EXPECT_EQ(bits(d.parameters.number("x")), bits(-0.0));  // sign of zero survives
    ASSERT_EQ(d.times.size(), r.times.size());
    for (std::size_t i = 0; i < r.times.size(); ++i) {
        EXPECT_EQ(bits(d.times[i]), bits(r.times[i])) << "times[" << i << "]";
    }
    ASSERT_EQ(d.waveforms.size(), 2U);
    ASSERT_EQ(d.waveforms[0].size(), r.waveforms[0].size());
    for (std::size_t i = 0; i < r.waveforms[0].size(); ++i) {
        EXPECT_EQ(bits(d.waveforms[0][i]), bits(r.waveforms[0][i])) << "wave[" << i << "]";
    }
    EXPECT_EQ(d.probe_names, r.probe_names);
    EXPECT_EQ(bits(d.measurements.at("nan_meas")), bits(r.measurements.at("nan_meas")));
    EXPECT_EQ(bits(d.measurements.at("inf_meas")), bits(r.measurements.at("inf_meas")));
}

TEST(run_protocol, error_result_round_trip) {
    core::run_result r;
    r.index = 3;
    r.seed = 99;
    r.ok = false;
    r.error = "solver diverged: matrix is singular\nsecond line, \"quoted\"";
    const auto payload = wire::encode_result(r);
    const core::run_result d = wire::decode_result(payload.data(), payload.size());
    EXPECT_FALSE(d.ok);
    EXPECT_EQ(d.error, r.error);
    EXPECT_TRUE(d.waveforms.empty());
}

TEST(run_protocol, frame_pack_unpack_round_trip) {
    const auto payload = wire::encode_job(17);
    const auto bytes = wire::pack_frame(wire::msg_type::job, payload);
    std::size_t offset = 0;
    wire::frame f;
    ASSERT_TRUE(wire::unpack_frame(bytes.data(), bytes.size(), offset, f));
    EXPECT_EQ(f.type, wire::msg_type::job);
    EXPECT_EQ(f.payload, payload);
    EXPECT_EQ(offset, bytes.size());
    // Clean end: no more frames, no throw.
    EXPECT_FALSE(wire::unpack_frame(bytes.data(), bytes.size(), offset, f));
}

TEST(run_protocol, multiple_frames_in_one_buffer) {
    auto bytes = wire::pack_frame(wire::msg_type::job, wire::encode_job(1));
    const auto second = wire::pack_frame(wire::msg_type::shutdown, {});
    bytes.insert(bytes.end(), second.begin(), second.end());
    std::size_t offset = 0;
    wire::frame f;
    ASSERT_TRUE(wire::unpack_frame(bytes.data(), bytes.size(), offset, f));
    EXPECT_EQ(f.type, wire::msg_type::job);
    ASSERT_TRUE(wire::unpack_frame(bytes.data(), bytes.size(), offset, f));
    EXPECT_EQ(f.type, wire::msg_type::shutdown);
    EXPECT_TRUE(f.payload.empty());
    EXPECT_FALSE(wire::unpack_frame(bytes.data(), bytes.size(), offset, f));
}

// -------------------------------------------------------------- rejection --

TEST(run_protocol, truncated_frame_throws_at_every_cut) {
    const auto bytes = wire::pack_frame(wire::msg_type::job, wire::encode_job(5));
    // Any strict prefix must throw (mid-frame truncation), never return
    // false (which means "clean end of stream") and never parse.
    for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
        std::size_t offset = 0;
        wire::frame f;
        EXPECT_THROW((void)wire::unpack_frame(bytes.data(), cut, offset, f),
                     sca::util::error)
            << "prefix of " << cut << " bytes";
    }
}

TEST(run_protocol, bad_magic_is_rejected) {
    auto bytes = wire::pack_frame(wire::msg_type::job, wire::encode_job(5));
    bytes[0] ^= 0xff;
    std::size_t offset = 0;
    wire::frame f;
    EXPECT_THROW((void)wire::unpack_frame(bytes.data(), bytes.size(), offset, f),
                 sca::util::error);
}

TEST(run_protocol, corrupted_payload_fails_the_checksum) {
    auto bytes = wire::pack_frame(wire::msg_type::job, wire::encode_job(5));
    bytes[9] ^= 0x01;  // flip one payload bit; length/type stay plausible
    std::size_t offset = 0;
    wire::frame f;
    EXPECT_THROW((void)wire::unpack_frame(bytes.data(), bytes.size(), offset, f),
                 sca::util::error);
}

TEST(run_protocol, oversized_length_prefix_is_rejected_before_allocation) {
    auto bytes = wire::pack_frame(wire::msg_type::job, wire::encode_job(5));
    // Rewrite the length field (bytes 4..7, little-endian) to > k_max_payload.
    const std::uint32_t huge = wire::k_max_payload + 1;
    for (int i = 0; i < 4; ++i) bytes[4 + i] = static_cast<std::uint8_t>(huge >> (8 * i));
    std::size_t offset = 0;
    wire::frame f;
    EXPECT_THROW((void)wire::unpack_frame(bytes.data(), bytes.size(), offset, f),
                 sca::util::error);
}

TEST(run_protocol, unknown_frame_type_is_rejected) {
    auto bytes = wire::pack_frame(wire::msg_type::job, wire::encode_job(5));
    bytes[8] = 0x77;  // type byte
    std::size_t offset = 0;
    wire::frame f;
    EXPECT_THROW((void)wire::unpack_frame(bytes.data(), bytes.size(), offset, f),
                 sca::util::error);
}

TEST(run_protocol, short_payload_decoders_throw) {
    const auto payload = wire::encode_job(5);
    EXPECT_THROW((void)wire::decode_job(payload.data(), payload.size() - 1),
                 sca::util::error);
    core::run_result r;
    r.index = 1;
    r.ok = true;
    const auto res = wire::encode_result(r);
    for (const std::size_t cut : {res.size() / 2, res.size() - 1}) {
        EXPECT_THROW((void)wire::decode_result(res.data(), cut), sca::util::error);
    }
}

TEST(run_protocol, trailing_garbage_after_payload_is_rejected) {
    auto payload = wire::encode_job(5);
    payload.push_back(0x00);
    EXPECT_THROW((void)wire::decode_job(payload.data(), payload.size()),
                 sca::util::error);
}

TEST(run_protocol, fnv1a_is_stable) {
    // Reference vectors (FNV-1a 32-bit): guards the journal format across
    // refactors — a silent hash change would orphan existing checkpoints.
    const std::uint8_t abc[] = {'a', 'b', 'c'};
    EXPECT_EQ(wire::fnv1a(abc, 3), 0x1a47e90bU);
    EXPECT_EQ(wire::fnv1a(nullptr, 0), 0x811c9dc5U);
}
