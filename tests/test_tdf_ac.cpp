// Frequency-domain models of dataflow components (paper §4, [6]) and the
// cascade analysis built on them: the model must agree with the measured
// time-domain behavior of the very same module.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/ac_analysis.hpp"
#include "core/simulation.hpp"
#include "lib/amplifier.hpp"
#include "lib/filters.hpp"
#include "lib/oscillator.hpp"
#include "tdf/module.hpp"
#include "util/measure.hpp"
#include "util/report.hpp"

namespace de = sca::de;
namespace tdf = sca::tdf;
namespace lib = sca::lib;
namespace core = sca::core;
namespace solver = sca::solver;
using namespace sca::de::literals;

namespace {

struct recorder : tdf::module {
    tdf::in<double> in;
    std::vector<double> samples;
    explicit recorder(const de::module_name& nm) : tdf::module(nm), in("in") {}
    void processing() override { samples.push_back(in.read()); }
};

/// Measured steady-state sine gain and modeled |H| of a freshly built
/// module, both within one simulation context.
struct gain_pair {
    double measured;
    double modeled;
};

template <typename MakeModule>
gain_pair compare_gain(MakeModule make, double freq, const de::time& step,
                       double run_seconds) {
    sca::core::simulation sim;
    lib::sine_source src("src", 1.0, freq);
    src.set_timestep(step);
    auto m = make();
    recorder rec("rec");
    tdf::signal<double> s1("s1"), s2("s2");
    src.out.bind(s1);
    m->in.bind(s1);
    m->out.bind(s2);
    rec.in.bind(s2);
    sim.run(de::time::from_seconds(run_seconds));
    double amp = 0.0;
    for (std::size_t i = rec.samples.size() / 2; i < rec.samples.size(); ++i) {
        amp = std::max(amp, std::abs(rec.samples[i]));
    }
    return {amp, std::abs(m->ac_response(freq))};
}

}  // namespace

TEST(tdf_ac, fir_model_matches_time_domain) {
    const auto g = compare_gain(
        [] {
            return std::make_unique<lib::fir>(de::module_name("filt"),
                                              lib::fir::design_lowpass(63, 0.1));
        },
        2e3, de::time(10.0, de::time_unit::us), 40e-3);  // fs = 100 kHz, fc = 10 kHz
    EXPECT_NEAR(g.measured, g.modeled, 0.02);

    // Static properties on a second instance (post-elaboration).
    sca::core::simulation sim;
    lib::fir filt("filt2", lib::fir::design_lowpass(63, 0.1));
    struct src_t : tdf::module {
        tdf::out<double> out;
        explicit src_t(const de::module_name& nm) : tdf::module(nm), out("out") {}
        void set_attributes() override { set_timestep(10.0, de::time_unit::us); }
        void processing() override { out.write(0.0); }
    } s("s");
    recorder r("r");
    tdf::signal<double> s1("s1"), s2("s2");
    s.out.bind(s1);
    filt.in.bind(s1);
    filt.out.bind(s2);
    r.in.bind(s2);
    sim.elaborate();
    EXPECT_LT(std::abs(filt.ac_response(30e3)), 0.01);          // stopband
    EXPECT_NEAR(std::abs(filt.ac_response(0.0)), 1.0, 1e-12);  // unity DC
}

TEST(tdf_ac, biquad_model_matches_time_domain) {
    const auto c = lib::bilinear({1.0}, {1.0, 1.0 / (2.0 * std::numbers::pi * 2e3)}, 100e3);
    const auto g = compare_gain(
        [c] { return std::make_unique<lib::biquad>(de::module_name("filt"), c); }, 2e3,
        de::time(10.0, de::time_unit::us), 40e-3);
    EXPECT_NEAR(g.measured, g.modeled, 0.02);
    EXPECT_NEAR(g.modeled, 1.0 / std::sqrt(2.0), 0.01);  // corner of the prototype
}

TEST(tdf_ac, amplifier_model_is_single_pole) {
    sca::core::simulation sim;
    lib::amplifier amp("amp", 10.0);
    amp.set_bandwidth(5e3);
    EXPECT_NEAR(std::abs(amp.ac_response(0.0)), 10.0, 1e-12);
    EXPECT_NEAR(std::abs(amp.ac_response(5e3)), 10.0 / std::sqrt(2.0), 1e-9);
    EXPECT_NEAR(solver::phase_deg(amp.ac_response(5e3)), -45.0, 1e-6);
}

TEST(tdf_ac, cascade_multiplies_responses) {
    sca::core::simulation sim;
    lib::amplifier a1("a1", 4.0);
    a1.set_bandwidth(10e3);
    lib::amplifier a2("a2", 2.5);
    a2.set_bandwidth(100e3);
    const std::vector<const tdf::module*> chain{&a1, &a2};
    const auto pts = core::tdf_cascade_response(chain, {1e2, 1e2, 1});
    EXPECT_NEAR(std::abs(pts[0].value), 10.0, 0.01);  // 4 * 2.5 well below poles
    const auto hi = core::tdf_cascade_response(chain, {10e3, 10e3, 1});
    EXPECT_NEAR(std::abs(hi[0].value),
                std::abs(a1.ac_response(10e3)) * std::abs(a2.ac_response(10e3)), 1e-9);
}

TEST(tdf_ac, modules_without_model_are_rejected) {
    sca::core::simulation sim;
    struct plain : tdf::module {
        tdf::in<double> in;
        tdf::out<double> out;
        explicit plain(const de::module_name& nm) : tdf::module(nm), in("in"), out("out") {}
        void processing() override { out.write(in.read()); }
    } p("p");
    EXPECT_FALSE(p.has_ac_model());
    const std::vector<const tdf::module*> chain{&p};
    EXPECT_THROW((void)core::tdf_cascade_response(chain, {1e3, 1e3, 1}),
                 sca::util::error);
    EXPECT_THROW((void)core::tdf_cascade_response({}, {1e3, 1e3, 1}), sca::util::error);
}

TEST(tdf_ac, fir_response_before_elaboration_is_rejected) {
    sca::core::simulation sim;
    lib::fir filt("filt", {0.5, 0.5});
    EXPECT_THROW((void)filt.ac_response(1e3), sca::util::error);
}
