// Unified instrumentation layer: metrics-registry semantics (find-or-create
// handles, kind mismatch, reset), Chrome-trace export well-formedness and
// span coverage for a multirate TDF + ELN run, counter reset/carryover pins
// across repeated run() / scheduler reset / snapshot restore, bit-identical
// worker-metrics aggregation across backends and worker counts, and
// concurrent recording (the TSan job runs this binary).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/run_set.hpp"
#include "core/scenario.hpp"
#include "core/simulation.hpp"
#include "core/snapshot.hpp"
#include "eln/network.hpp"
#include "eln/primitives.hpp"
#include "eln/sources.hpp"
#include "kernel/context.hpp"
#include "kernel/scheduler.hpp"
#include "tdf/module.hpp"
#include "tdf/port.hpp"
#include "util/telemetry.hpp"
#include "util/trace_export.hpp"

namespace core = sca::core;
namespace de = sca::de;
namespace eln = sca::eln;
namespace tdf = sca::tdf;
namespace util = sca::util;
using namespace sca::de::literals;

namespace {

constexpr double k_pi = 3.141592653589793;

struct sine_src : tdf::module {
    tdf::out<double> out;
    explicit sine_src(const de::module_name& nm) : tdf::module(nm), out("out") {}
    void set_attributes() override { set_timestep(10.0, de::time_unit::us); }
    void processing() override {
        out.write(std::sin(2.0 * k_pi * 1e3 * tdf_time().to_seconds()));
    }
};

/// 1:2 upsampler — makes the cluster genuinely multirate.
struct doubler : tdf::module {
    tdf::in<double> in;
    tdf::out<double> out;
    explicit doubler(const de::module_name& nm) : tdf::module(nm), in("in"), out("out") {}
    void set_attributes() override { out.set_rate(2); }
    void processing() override {
        const double v = in.read();
        out.write(v, 0);
        out.write(v, 1);
    }
};

struct sink : tdf::module {
    tdf::in<double> in;
    double last = 0.0;
    explicit sink(const de::module_name& nm) : tdf::module(nm), in("in") {}
    void processing() override {
        for (unsigned k = 0; k < in.rate(); ++k) last = in.read(k);
    }
};

/// Multirate TDF chain + RC lowpass ELN network in one context: every span
/// family (elaboration, cluster firing, DAE solve) shows up in the trace.
struct multidomain_rig {
    sine_src src{"src"};
    doubler up{"up"};
    sink snk{"snk"};
    tdf::signal<double> s1{"s1"}, s2{"s2"};
    eln::network net{de::module_name("net")};
    std::vector<std::unique_ptr<eln::component>> parts;

    multidomain_rig() {
        src.out.bind(s1);
        up.in.bind(s1);
        up.out.bind(s2);
        snk.in.bind(s2);
        net.set_timestep(10.0, de::time_unit::us);
        auto gnd = net.ground();
        auto vin = net.create_node("vin");
        auto vout = net.create_node("vout");
        parts.push_back(std::make_unique<eln::vsource>("vs", net, vin, gnd,
                                                       eln::waveform::sine(1.0, 1e3)));
        parts.push_back(std::make_unique<eln::resistor>("r", net, vin, vout, 1e3));
        parts.push_back(std::make_unique<eln::capacitor>("c", net, vout, gnd, 100e-9));
    }
};

/// RC lowpass scenario for run_set metrics aggregation (mirrors the
/// backend-suite reference testbench).
core::scenario define_rc(const std::string& name) {
    return core::scenario::define(
        name, core::params{{"r", 1e3}, {"c", 100e-9}},
        [](core::testbench& tb, const core::params& p) {
            auto& net = tb.make<eln::network>("net");
            net.set_timestep(5.0, de::time_unit::us);
            auto gnd = net.ground();
            auto vin = net.create_node("vin");
            auto vout = net.create_node("vout");
            tb.make<eln::vsource>("vs", net, vin, gnd, eln::waveform::sine(1.0, 1e3));
            tb.make<eln::resistor>("r", net, vin, vout, p.get("r", 1e3));
            tb.make<eln::capacitor>("c", net, vout, gnd, p.get("c", 100e-9));
            tb.probe("vout", [&net, vout] { return net.voltage(vout); });
            tb.measure("vout_final", [&net, vout] { return net.voltage(vout); });
            tb.set_stop_time(de::time::from_seconds(0.5e-3));
            tb.set_sample_period(20_us);
        });
}

std::string metrics_csv_of(const core::result_table& t) {
    std::ostringstream os;
    t.write_metrics_csv(os);
    return os.str();
}

// Minimal JSON well-formedness checker (objects/arrays/strings/numbers/
// true/false/null) — enough to guarantee a viewer can parse the export.
struct json_checker {
    const char* p;
    const char* end;
    bool ok = true;

    explicit json_checker(const std::string& s) : p(s.data()), end(s.data() + s.size()) {}

    void ws() {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) ++p;
    }
    bool eat(char c) {
        ws();
        if (p < end && *p == c) {
            ++p;
            return true;
        }
        return false;
    }
    void fail() { ok = false; }
    void string() {
        if (!eat('"')) return fail();
        while (p < end && *p != '"') {
            if (*p == '\\') {
                ++p;
                if (p >= end) return fail();
            }
            ++p;
        }
        if (p >= end) return fail();
        ++p;  // closing quote
    }
    void number() {
        if (p < end && (*p == '-' || *p == '+')) ++p;
        const char* start = p;
        while (p < end && (std::isdigit(static_cast<unsigned char>(*p)) != 0 ||
                           *p == '.' || *p == 'e' || *p == 'E' || *p == '-' ||
                           *p == '+')) {
            ++p;
        }
        if (p == start) fail();
    }
    bool literal(const char* lit) {
        const std::size_t n = std::char_traits<char>::length(lit);
        if (static_cast<std::size_t>(end - p) >= n &&
            std::char_traits<char>::compare(p, lit, n) == 0) {
            p += n;
            return true;
        }
        return false;
    }
    void value() {
        if (!ok) return;
        ws();
        if (p >= end) return fail();
        if (*p == '{') {
            ++p;
            if (eat('}')) return;
            do {
                string();
                if (!ok || !eat(':')) return fail();
                value();
                if (!ok) return;
            } while (eat(','));
            if (!eat('}')) fail();
        } else if (*p == '[') {
            ++p;
            if (eat(']')) return;
            do {
                value();
                if (!ok) return;
            } while (eat(','));
            if (!eat(']')) fail();
        } else if (*p == '"') {
            string();
        } else if (literal("true") || literal("false") || literal("null")) {
        } else {
            number();
        }
    }
    bool parse() {
        value();
        ws();
        return ok && p == end;
    }
};

bool json_well_formed(const std::string& s) { return json_checker(s).parse(); }

}  // namespace

// ----------------------------------------------------------------- registry --

TEST(metrics_registry, counter_gauge_histogram_semantics) {
    util::metrics_registry reg;
    util::counter& c = reg.get_counter("a.count");
    c.add(3);
    c.add(2);
    EXPECT_EQ(c.value(), 5U);
    EXPECT_EQ(&reg.get_counter("a.count"), &c) << "find-or-create must return the same slot";

    util::gauge& g = reg.get_gauge("a.gauge");
    g.set(-2.5);
    EXPECT_DOUBLE_EQ(g.value(), -2.5);

    util::histogram& h = reg.get_histogram("a.hist");
    EXPECT_EQ(h.count(), 0U);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);  // empty histogram reads as zeros
    h.record(2.0);
    h.record(6.0);
    h.record(4.0);
    EXPECT_EQ(h.count(), 3U);
    EXPECT_DOUBLE_EQ(h.sum(), 12.0);
    EXPECT_DOUBLE_EQ(h.min(), 2.0);
    EXPECT_DOUBLE_EQ(h.max(), 6.0);
    EXPECT_DOUBLE_EQ(h.mean(), 4.0);
    EXPECT_EQ(reg.size(), 3U);
}

TEST(metrics_registry, kind_mismatch_throws) {
    util::metrics_registry reg;
    (void)reg.get_counter("x");
    EXPECT_THROW((void)reg.get_gauge("x"), std::logic_error);
    EXPECT_THROW((void)reg.get_histogram("x"), std::logic_error);
    (void)reg.get_gauge("y");
    EXPECT_THROW((void)reg.get_counter("y"), std::logic_error);
}

TEST(metrics_registry, reset_zeroes_values_but_keeps_handles) {
    util::metrics_registry reg;
    util::counter& c = reg.get_counter("c");
    util::histogram& h = reg.get_histogram("h");
    c.add(7);
    h.record(1.0);
    reg.reset();
    EXPECT_EQ(c.value(), 0U);
    EXPECT_EQ(h.count(), 0U);
    EXPECT_EQ(reg.size(), 2U) << "reset clears values, not registrations";
    c.add(1);  // handle still live after reset
    EXPECT_EQ(c.value(), 1U);
}

TEST(metrics_registry, snapshot_is_sorted_and_wire_subset_drops_histograms) {
    util::metrics_registry reg;
    reg.get_counter("z.last").add(1);
    reg.get_gauge("m.middle").set(0.5);
    reg.get_histogram("a.first").record(1.0);
    const util::metrics_snapshot snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 3U);
    EXPECT_EQ(snap[0].name, "a.first");
    EXPECT_EQ(snap[1].name, "m.middle");
    EXPECT_EQ(snap[2].name, "z.last");

    const util::metrics_snapshot wire = reg.wire_snapshot();
    ASSERT_EQ(wire.size(), 2U) << "histograms are host-local wall-clock data";
    EXPECT_EQ(wire[0].name, "m.middle");
    EXPECT_EQ(wire[1].name, "z.last");
}

TEST(metrics_registry, scoped_timer_records_one_sample) {
    util::metrics_registry reg;
    util::histogram& h = reg.get_histogram("t");
    {
        util::scoped_timer timer(&h);
    }
    EXPECT_EQ(h.count(), 1U);
    EXPECT_GE(h.sum(), 0.0);
    {
        util::scoped_timer disabled(nullptr);  // null histogram = no-op
    }
    EXPECT_EQ(h.count(), 1U);
}

TEST(metrics_registry, json_and_csv_exports_are_well_formed) {
    util::metrics_registry reg;
    reg.get_counter("k.count").add(42);
    reg.get_gauge("k.gauge").set(1.0 / 3.0);
    reg.get_histogram("k\"quoted\".hist").record(2.5);
    std::ostringstream js;
    reg.write_json(js);
    EXPECT_TRUE(json_well_formed(js.str())) << js.str();
    EXPECT_NE(js.str().find("\"k.count\""), std::string::npos);

    std::ostringstream csv;
    reg.write_csv(csv);
    const std::string s = csv.str();
    EXPECT_EQ(s.rfind("name,kind,count,value,min,max\n", 0), 0U);
    EXPECT_NE(s.find("k.count,counter,42"), std::string::npos);
}

// ------------------------------------------------------------------- tracer --

TEST(event_tracer, off_by_default_and_bounded_with_drop_counting) {
    util::event_tracer tr(4);  // tiny capacity to hit the bound
    {
        util::scoped_span span(&tr, "ignored", "test");
    }
    EXPECT_EQ(tr.event_count(), 0U) << "disabled tracer must not record";

    tr.enable();
    for (int i = 0; i < 10; ++i) {
        util::scoped_span span(&tr, "s", "test");
    }
    tr.disable();
    EXPECT_EQ(tr.event_count(), 4U);
    EXPECT_EQ(tr.dropped(), 6U);

    tr.enable();  // re-enable clears the buffer and the drop count
    EXPECT_EQ(tr.event_count(), 0U);
    EXPECT_EQ(tr.dropped(), 0U);
}

TEST(event_tracer, chrome_json_from_multidomain_run_has_kernel_spans) {
    sca::core::simulation sim;
    sim.context().tracer().enable();
    multidomain_rig rig;
    sim.run_seconds(2e-3);
    sim.context().tracer().disable();

    std::ostringstream os;
    sim.context().tracer().write_chrome_json(os);
    const std::string trace = os.str();

    EXPECT_TRUE(json_well_formed(trace));
    // The Perfetto acceptance surface: elaboration, cluster-firing and
    // solver spans all present, with complete-event framing.
    EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(trace.find("\"elaborate\""), std::string::npos);
    EXPECT_NE(trace.find("\"tdf.elaborate_clusters\""), std::string::npos);
    EXPECT_NE(trace.find("\"tdf.cluster.cycles\""), std::string::npos);
    EXPECT_NE(trace.find("\"dae.step\""), std::string::npos);
    EXPECT_NE(trace.find("\"kernel.run\""), std::string::npos);
    EXPECT_NE(trace.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST(event_tracer, concurrent_recording_is_race_free) {
    // Four threads hammer one tracer + one registry: the TSan job proves the
    // relaxed fast paths are data-race-free; counts must still add up.
    util::event_tracer tr;
    util::metrics_registry reg;
    util::counter& c = reg.get_counter("threads.count");
    util::histogram& h = reg.get_histogram("threads.hist");
    tr.enable();
    constexpr int k_threads = 4;
    constexpr int k_iters = 5000;
    std::vector<std::thread> pool;
    pool.reserve(k_threads);
    for (int t = 0; t < k_threads; ++t) {
        pool.emplace_back([&, t] {
            for (int i = 0; i < k_iters; ++i) {
                util::scoped_span span(&tr, "work", "test");
                c.add(1);
                h.record(static_cast<double>(t));
            }
        });
    }
    for (auto& th : pool) th.join();
    tr.disable();
    EXPECT_EQ(c.value(), static_cast<std::uint64_t>(k_threads) * k_iters);
    EXPECT_EQ(h.count(), static_cast<std::uint64_t>(k_threads) * k_iters);
    EXPECT_EQ(tr.event_count() + tr.dropped(),
              static_cast<std::uint64_t>(k_threads) * k_iters);
    std::ostringstream os;
    tr.write_chrome_json(os);
    EXPECT_TRUE(json_well_formed(os.str()));
}

// ---------------------------------------------------- context integration --

TEST(context_metrics, kernel_counters_live_in_the_registry) {
    sca::core::simulation sim;
    multidomain_rig rig;
    sim.run_seconds(1e-3);
    const util::metrics_snapshot snap = sim.context().collect_metrics();
    auto value_of = [&](const std::string& name) -> std::uint64_t {
        for (const util::metric_value& mv : snap) {
            if (mv.name == name) return mv.count;
        }
        return 0;
    };
    EXPECT_GT(value_of("kernel.delta_cycles"), 0U);
    EXPECT_GT(value_of("kernel.timed_notifications"), 0U);
    EXPECT_GT(value_of("tdf.cluster.cycles"), 0U);
    EXPECT_GT(value_of("tdf.module.activations"), 0U);
    EXPECT_GT(value_of("solver.numeric_factorizations"), 0U);
    // Accessors read through the registry: both views must agree.
    EXPECT_EQ(value_of("kernel.delta_cycles"), sim.context().sched().delta_count());
}

TEST(context_metrics, contexts_are_isolated) {
    {
        sca::core::simulation a;
        multidomain_rig rig;
        a.run_seconds(1e-3);
        EXPECT_GT(a.context().sched().delta_count(), 0U);
    }
    sca::core::simulation b;
    EXPECT_EQ(b.context().sched().delta_count(), 0U)
        << "a fresh context must not inherit another context's counters";
}

// ------------------------------------------------------- reset / carryover --

TEST(context_metrics, collectors_are_idempotent) {
    sca::core::simulation sim;
    multidomain_rig rig;
    sim.run_seconds(1e-3);
    const util::metrics_snapshot first = sim.context().collect_metrics();
    const util::metrics_snapshot second = sim.context().collect_metrics();
    EXPECT_EQ(first, second)
        << "collecting twice without running must not change any value";
}

TEST(context_metrics, counters_are_monotonic_across_repeated_run) {
    sca::core::simulation sim;
    multidomain_rig rig;
    sim.run_seconds(1e-3);
    const std::uint64_t dc1 = sim.context().sched().delta_count();
    const util::metrics_snapshot snap1 = sim.context().collect_metrics();
    sim.run_seconds(1e-3);
    const std::uint64_t dc2 = sim.context().sched().delta_count();
    const util::metrics_snapshot snap2 = sim.context().collect_metrics();
    EXPECT_GT(dc2, dc1);
    ASSERT_EQ(snap1.size(), snap2.size())
        << "a second run must not mint new metric names";
    for (std::size_t i = 0; i < snap1.size(); ++i) {
        if (snap1[i].kind != util::metric_value::metric_kind::counter) continue;
        EXPECT_GE(snap2[i].count, snap1[i].count) << snap1[i].name;
    }
}

TEST(context_metrics, scheduler_reset_clears_registry_counters) {
    sca::core::simulation sim;
    multidomain_rig rig;
    sim.run_seconds(1e-3);
    ASSERT_GT(sim.context().sched().delta_count(), 0U);
    sim.context().sched().reset();
    EXPECT_EQ(sim.context().sched().delta_count(), 0U);
    EXPECT_EQ(sim.context().sched().timed_notification_count(), 0U);
    for (const util::metric_value& mv : sim.context().metrics().snapshot()) {
        if (mv.name == "kernel.delta_cycles" || mv.name == "kernel.timed_notifications") {
            EXPECT_EQ(mv.count, 0U) << mv.name << " held a stale value after reset";
        }
    }
}

TEST(context_metrics, snapshot_restore_overlays_saved_counters) {
    static const core::scenario sc = define_rc("telemetry_snap_rc");
    auto tb = sc.build({});
    tb->run(de::time::from_seconds(0.25e-3));
    const std::uint64_t saved_dc = tb->context().sched().delta_count();
    const std::uint64_t saved_tn = tb->context().sched().timed_notification_count();
    ASSERT_GT(saved_dc, 0U);
    const std::vector<std::uint8_t> bytes = core::encode_snapshot(*tb);
    EXPECT_EQ(tb->context().metrics().get_histogram("time.snapshot.save_s").count(), 1U);

    auto restored = core::decode_snapshot(bytes.data(), bytes.size());
    EXPECT_EQ(restored->context().sched().delta_count(), saved_dc);
    EXPECT_EQ(restored->context().sched().timed_notification_count(), saved_tn);
    EXPECT_EQ(
        restored->context().metrics().get_histogram("time.snapshot.restore_s").count(),
        1U);
}

// ----------------------------------------------------- run_set aggregation --

TEST(run_set_metrics, run_one_carries_the_deterministic_wire_subset) {
    static const core::scenario sc = define_rc("telemetry_rs_one");
    const core::run_set rs =
        core::run_set(sc).with_grid(core::param_grid().add("r", {1e3, 2e3}));
    const core::run_result r = rs.run_one(0);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_GT(r.metric("kernel.delta_cycles"), 0.0);
    EXPECT_GT(r.metric("tdf.cluster.cycles"), 0.0);
    EXPECT_GT(r.metric("solver.numeric_factorizations"), 0.0);
    EXPECT_EQ(r.metric("no.such.metric"), 0.0);
    for (const util::metric_value& mv : r.run_metrics) {
        EXPECT_NE(mv.kind, util::metric_value::metric_kind::histogram)
            << mv.name << ": histograms are wall-clock and must stay off the wire";
    }
    // Same index, fresh context: bit-identical metrics (no carryover).
    const core::run_result again = rs.run_one(0);
    EXPECT_EQ(r.run_metrics, again.run_metrics);
}

TEST(run_set_metrics, aggregation_is_bit_identical_across_backends_and_workers) {
    static const core::scenario sc = define_rc("telemetry_rs_agg");
    auto make = [&] {
        return core::run_set(sc)
            .with_grid(core::param_grid()
                           .add_logspace("r", 100.0, 10e3, 3)
                           .add("c", {47e-9, 100e-9, 220e-9}))
            .set_base_seed(0xfeedULL);
    };
    const core::result_table golden_table = make().set_workers(1).run_all();
    const std::string golden = metrics_csv_of(golden_table);
    ASSERT_NE(golden.find("kernel.delta_cycles"), std::string::npos);
    EXPECT_GT(golden_table.metrics_total("kernel.delta_cycles"), 0.0);

    EXPECT_EQ(metrics_csv_of(make().set_workers(4).run_all()), golden)
        << "in_thread workers=4";
    for (const unsigned workers : {1U, 2U, 4U, 8U}) {
        const core::result_table table = make()
                                             .set_backend(core::run_backend::multiprocess)
                                             .set_workers(workers)
                                             .run_all();
        EXPECT_EQ(table.failed_count(), 0U) << "workers=" << workers;
        EXPECT_EQ(metrics_csv_of(table), golden) << "workers=" << workers;
        for (const core::run_result& r : table.runs()) {
            EXPECT_GE(r.worker, 0) << "multiprocess runs must report their worker";
        }
    }
}
