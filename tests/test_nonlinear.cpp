// Nonlinear network tests (paper phase 2): diode, MOS devices, custom
// nonlinearities, and the variable-timestep integration embedded in TDF.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/simulation.hpp"
#include "core/transient.hpp"
#include "eln/network.hpp"
#include "eln/nonlinear.hpp"
#include "eln/primitives.hpp"
#include "eln/sources.hpp"
#include "util/measure.hpp"
#include "util/object_bag.hpp"

namespace de = sca::de;
namespace eln = sca::eln;
namespace core = sca::core;
using namespace sca::de::literals;

TEST(nonlinear, diode_forward_voltage) {
    core::simulation sim;
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto vin = net.create_node("vin");
    auto vd = net.create_node("vd");
    eln::vsource vs("vs", net, vin, gnd, eln::waveform::dc(5.0));
    eln::resistor r("r", net, vin, vd, 1000.0);
    eln::diode d("d", net, vd, gnd);

    sim.run(5_us);
    // ~4.3 mA through 1k: forward voltage in the usual silicon range.
    EXPECT_GT(net.voltage(vd), 0.55);
    EXPECT_LT(net.voltage(vd), 0.80);
}

TEST(nonlinear, diode_blocks_reverse) {
    core::simulation sim;
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto vin = net.create_node("vin");
    auto vd = net.create_node("vd");
    eln::vsource vs("vs", net, vin, gnd, eln::waveform::dc(-5.0));
    eln::resistor r("r", net, vin, vd, 1000.0);
    eln::diode d("d", net, vd, gnd);

    sim.run(5_us);
    EXPECT_NEAR(net.voltage(vd), -5.0, 1e-3);  // no current: full reverse bias
}

TEST(nonlinear, half_wave_rectifier_with_filter) {
    core::simulation sim;
    eln::network net("net");
    net.set_timestep(5.0, de::time_unit::us);
    auto gnd = net.ground();
    auto vin = net.create_node("vin");
    auto vout = net.create_node("vout");
    eln::vsource vs("vs", net, vin, gnd, eln::waveform::sine(5.0, 1e3));
    eln::diode d("d", net, vin, vout);
    eln::capacitor c("c", net, vout, gnd, 10e-6);
    eln::resistor load("load", net, vout, gnd, 10e3);

    core::transient_recorder rec(sim, 10_us);
    rec.add_probe("vout", [&] { return net.voltage(vout); });
    rec.run(10_ms);

    const auto v = rec.column(0);
    // Peak detector: settles near the peak minus one diode drop, low ripple.
    std::vector<double> tail(v.end() - 200, v.end());
    const double mean_v = sca::util::mean(tail);
    EXPECT_GT(mean_v, 3.7);
    EXPECT_LT(mean_v, 4.7);
    double ripple = 0.0;
    for (double x : tail) ripple = std::max(ripple, std::abs(x - mean_v));
    EXPECT_LT(ripple, 0.4);
}

TEST(nonlinear, nmos_saturation_current) {
    core::simulation sim;
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto vg = net.create_node("vg");
    auto vd = net.create_node("vd");
    eln::vsource vgs("vgs", net, vg, gnd, eln::waveform::dc(1.7));
    eln::vsource vds("vds", net, vd, gnd, eln::waveform::dc(3.0));
    eln::nmos m("m", net, vd, vg, gnd, 2e-3, 0.7, 0.0);

    sim.run(3_us);
    // Saturation: Id = k/2 (vgs - vth)^2 = 1e-3 * 1 = 1 mA, drawn through vds.
    EXPECT_NEAR(std::abs(net.current(vds)), 1e-3, 2e-5);
}

TEST(nonlinear, nmos_resistor_inverter_transfer) {
    auto vout_for = [](double vin_value) {
        core::simulation sim;
        sca::util::object_bag bag;
        eln::network net("net");
        net.set_timestep(1.0, de::time_unit::us);
        auto gnd = net.ground();
        auto vdd = net.create_node("vdd");
        auto vin = net.create_node("vin");
        auto vout = net.create_node("vout");
        bag.make<eln::vsource>("vdd_s", net, vdd, gnd, eln::waveform::dc(5.0));
        bag.make<eln::vsource>("vin_s", net, vin, gnd, eln::waveform::dc(vin_value));
        bag.make<eln::resistor>("rl", net, vdd, vout, 10e3);
        bag.make<eln::nmos>("m", net, vout, vin, gnd, 2e-3, 0.7, 0.01);
        sim.run(3_us);
        return net.voltage(vout);
    };
    EXPECT_GT(vout_for(0.0), 4.9);   // off: pulled to VDD
    EXPECT_LT(vout_for(5.0), 0.5);   // hard on: pulled low
    EXPECT_GT(vout_for(0.0), vout_for(1.0));  // monotonic falling
}

TEST(nonlinear, pmos_mirror_of_nmos) {
    core::simulation sim;
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto vdd = net.create_node("vdd");
    auto vg = net.create_node("vg");
    auto vd = net.create_node("vd");
    eln::vsource vs("vs", net, vdd, gnd, eln::waveform::dc(5.0));
    eln::vsource vgs("vgs", net, vg, gnd, eln::waveform::dc(3.3));  // vsg = 1.7
    eln::pmos m("m", net, vd, vg, vdd, 2e-3, 0.7, 0.0);
    eln::resistor load("load", net, vd, gnd, 1000.0);

    sim.run(3_us);
    // Id = k/2 (vsg - vth)^2 = 1 mA into 1k: vd = 1 V.
    EXPECT_NEAR(net.voltage(vd), 1.0, 0.02);
}

TEST(nonlinear, saturating_vccs_clips_and_distorts) {
    core::simulation sim;
    eln::network net("net");
    net.set_timestep(2.0, de::time_unit::us);
    auto gnd = net.ground();
    auto vin = net.create_node("vin");
    auto vout = net.create_node("vout");
    eln::vsource vs("vs", net, vin, gnd, eln::waveform::sine(2.0, 1e3));
    // tanh transconductor: saturates at +/- 1 mA into 1k -> +/- 1 V.
    eln::nonlinear_vccs amp("amp", net, vin, gnd, gnd, vout,
                            [](double v) { return 1e-3 * std::tanh(v); },
                            [](double v) {
                                const double c = std::cosh(v);
                                return 1e-3 / (c * c);
                            });
    eln::resistor load("load", net, vout, gnd, 1000.0);

    core::transient_recorder rec(sim, 2_us);
    rec.add_probe("vout", [&] { return net.voltage(vout); });
    rec.run(8_ms);

    auto v = rec.column(0);
    std::vector<double> tail(v.end() - 2048, v.end());
    // Strong drive into tanh: output compressed below the linear 2 V and
    // rich in odd harmonics.
    double vmax = 0.0;
    for (double x : tail) vmax = std::max(vmax, std::abs(x));
    EXPECT_LT(vmax, 1.01);
    EXPECT_GT(vmax, 0.9);
    EXPECT_GT(sca::util::thd_db(tail, 500e3), -25.0);  // visible distortion
}

TEST(nonlinear, variable_step_statistics_reported) {
    core::simulation sim;
    eln::network net("net");
    net.set_timestep(10.0, de::time_unit::us);
    auto gnd = net.ground();
    auto vin = net.create_node("vin");
    auto vout = net.create_node("vout");
    eln::vsource vs("vs", net, vin, gnd, eln::waveform::sine(5.0, 1e3));
    eln::diode d("d", net, vin, vout);
    eln::capacitor c("c", net, vout, gnd, 1e-6);
    eln::resistor load("load", net, vout, gnd, 100e3);

    sim.run(2_ms);
    EXPECT_GT(net.factorizations(), net.activation_count());  // Newton refactors
}

TEST(nonlinear, linear_network_stays_on_fast_path) {
    core::simulation sim;
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto n = net.create_node("n");
    eln::isource is("is", net, gnd, n, eln::waveform::sine(1e-3, 10e3));
    eln::resistor r("r", net, n, gnd, 1000.0);
    eln::capacitor c("c", net, n, gnd, 10e-9);

    sim.run(1_ms);
    EXPECT_EQ(net.factorizations(), 1U);  // linear: one LU for the whole run
}
