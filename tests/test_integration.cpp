// Cross-MoC integration tests: Figure-1-shaped pipelines mixing DE, TDF,
// LSF, and ELN models, closed loops across MoC boundaries, and tracing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "core/simulation.hpp"
#include "core/transient.hpp"
#include "eln/converter.hpp"
#include "eln/network.hpp"
#include "eln/primitives.hpp"
#include "eln/sources.hpp"
#include "kernel/clock.hpp"
#include "lib/amplifier.hpp"
#include "lib/converters.hpp"
#include "lib/filters.hpp"
#include "lib/oscillator.hpp"
#include "lib/sigma_delta.hpp"
#include "lsf/ltf.hpp"
#include "lsf/node.hpp"
#include "lsf/primitives.hpp"
#include "lsf/view.hpp"
#include "util/measure.hpp"
#include "util/object_bag.hpp"

namespace de = sca::de;
namespace tdf = sca::tdf;
namespace eln = sca::eln;
namespace lsf = sca::lsf;
namespace lib = sca::lib;
namespace core = sca::core;
using namespace sca::de::literals;

namespace {

struct collector : tdf::module {
    tdf::in<double> in;
    std::vector<double> samples;
    explicit collector(const de::module_name& nm) : tdf::module(nm), in("in") {}
    void processing() override {
        for (unsigned k = 0; k < in.rate(); ++k) samples.push_back(in.read(k));
    }
};

}  // namespace

TEST(integration, tdf_lsf_eln_chain_propagates_signal) {
    // Signal path crossing three MoCs: TDF sine -> LSF lowpass -> ELN RC
    // line -> TDF probe, all in a single cluster.
    core::simulation sim;
    sca::util::object_bag bag;

    lib::sine_source src("src", 1.0, 1e3);
    src.set_timestep(5.0, de::time_unit::us);

    lsf::system filt("filt");
    auto u = filt.create_signal("u");
    auto y = filt.create_signal("y");
    lsf::from_tdf from("from", filt, u);
    const auto tf = lsf::filters::first_order_lowpass(50e3);  // wide open
    lsf::ltf_nd lp("lp", filt, u, y, tf.num, tf.den);
    lsf::to_tdf to("to", filt, y);

    eln::network line("line");
    auto gnd = line.ground();
    auto n1 = line.create_node("n1");
    auto n2 = line.create_node("n2");
    auto& drv = bag.make<eln::tdf_vsource>("drv", line, n1, gnd);
    bag.make<eln::resistor>("rs", line, n1, n2, 100.0);
    bag.make<eln::resistor>("rl", line, n2, gnd, 100.0);
    auto& probe = bag.make<eln::tdf_vsink>("probe", line, n2, gnd);

    collector sink("sink");
    tdf::signal<double> s1("s1"), s2("s2"), s3("s3");
    src.out.bind(s1);
    from.inp.bind(s1);
    to.outp.bind(s2);
    drv.inp.bind(s2);
    probe.outp.bind(s3);
    sink.in.bind(s3);

    sim.run(5_ms);
    // Divider halves the filtered sine: amplitude ~0.5 in steady state.
    std::vector<double> tail(sink.samples.end() - 400, sink.samples.end());
    double amp = 0.0;
    for (double v : tail) amp = std::max(amp, std::abs(v));
    EXPECT_NEAR(amp, 0.5, 0.02);
}

TEST(integration, de_controller_closes_loop_over_analog_plant) {
    // Bang-bang temperature-style control: ELN RC integrator charges, a TDF
    // comparator publishes to DE, the DE controller toggles the charging
    // switch. The loop must regulate the capacitor voltage near setpoint.
    core::simulation sim;
    sca::util::object_bag bag;

    de::signal<bool> heater_on("heater_on", true);
    de::signal<bool> above("above", false);

    eln::network plant("plant");
    plant.set_timestep(10.0, de::time_unit::us);
    auto gnd = plant.ground();
    auto vsup = plant.create_node("vsup");
    auto vc = plant.create_node("vc");
    bag.make<eln::vsource>("vs", plant, vsup, gnd, eln::waveform::dc(10.0));
    auto& sw = bag.make<eln::de_rswitch>("sw", plant, vsup, vc, 1000.0, 1e9);
    sw.ctrl.bind(heater_on);
    bag.make<eln::capacitor>("c", plant, vc, gnd, 1e-6);
    bag.make<eln::resistor>("leak", plant, vc, gnd, 2000.0);
    auto& probe = bag.make<eln::tdf_vsink>("probe", plant, vc, gnd);

    lib::comparator cmp("cmp", 5.0, 0.2);
    cmp.enable_de_output(above);

    tdf::signal<double> s("s");
    probe.outp.bind(s);
    cmp.in.bind(s);
    tdf::signal<bool> sdummy("sdummy");
    cmp.out.bind(sdummy);
    struct bool_sink : tdf::module {
        tdf::in<bool> in;
        explicit bool_sink(const de::module_name& nm) : tdf::module(nm), in("in") {}
        void processing() override { (void)in.read(); }
    } bsink("bsink");
    bsink.in.bind(sdummy);

    // DE controller: heater off when above setpoint.
    struct controller : de::module {
        de::in<bool> above_in;
        de::out<bool> heat_out;
        int switches = 0;
        explicit controller(const de::module_name& nm)
            : de::module(nm), above_in("above_in"), heat_out("heat_out") {
            declare_method("ctl", [this] {
                heat_out.write(!above_in.read());
                ++switches;
            }).sensitive(above_in);
        }
    } ctl("ctl");
    ctl.above_in.bind(above);
    ctl.heat_out.bind(heater_on);

    core::transient_recorder rec(sim, 100_us);
    rec.add_probe("vc", [&] { return plant.voltage(vc); });
    rec.run(100_ms);

    const auto v = rec.column(0);
    // After the first rise, regulation holds the voltage near 5 V.
    std::vector<double> tail(v.end() - 400, v.end());
    for (double x : tail) {
        EXPECT_GT(x, 4.0);
        EXPECT_LT(x, 6.2);
    }
    EXPECT_GT(ctl.switches, 4);  // the loop actually toggled repeatedly
}

TEST(integration, codec_path_sigma_delta_to_fir) {
    // Figure-1 codec slice: sine -> sigma-delta -> sinc3 decimator -> FIR.
    core::simulation sim;
    lib::sine_source src("src", 0.5, 500.0);
    src.set_timestep(2.0, de::time_unit::us);  // 500 kHz modulator rate
    lib::sigma_delta_modulator mod("mod", 2, 1.0);
    lib::sinc3_decimator dec("dec", 32);  // -> 15.625 kHz
    lib::fir post("post", lib::fir::design_lowpass(33, 0.2));
    collector sink("sink");
    tdf::signal<double> s1("s1"), s2("s2"), s3("s3"), s4("s4");
    src.out.bind(s1);
    mod.in.bind(s1);
    mod.out.bind(s2);
    dec.in.bind(s2);
    dec.out.bind(s3);
    post.in.bind(s3);
    post.out.bind(s4);
    sink.in.bind(s4);

    sim.run(60_ms);
    std::vector<double> tail(sink.samples.end() - 512, sink.samples.end());
    const double sinad = sca::util::sinad_db(tail, 500e3 / 32.0);
    EXPECT_GT(sinad, 30.0);
    double amp = 0.0;
    for (double v : tail) amp = std::max(amp, std::abs(v));
    EXPECT_NEAR(amp, 0.5, 0.05);
}

TEST(integration, trace_files_capture_mixed_signals) {
    const std::string path = ::testing::TempDir() + "sca_integration_trace.dat";
    {
        core::simulation sim;
        lib::sine_source src("src", 1.0, 1e3);
        src.set_timestep(10.0, de::time_unit::us);
        collector sink("sink");
        tdf::signal<double> s("s");
        src.out.bind(s);
        sink.in.bind(s);

        sca::util::tabular_trace_file file(path);
        file.add_channel("sine", core::probe(s));
        sim.trace(file, 100_us);
        sim.run(1_ms);
        file.close();
    }
    std::ifstream in(path);
    std::string header;
    std::getline(in, header);
    EXPECT_EQ(header, "%time sine");
    int rows = 0;
    std::string line;
    while (std::getline(in, line)) ++rows;
    EXPECT_GE(rows, 10);
    std::remove(path.c_str());
}

TEST(integration, multiple_networks_in_one_simulation) {
    core::simulation sim;
    sca::util::object_bag bag;
    eln::network net_a("net_a");
    net_a.set_timestep(1.0, de::time_unit::us);
    auto ga = net_a.ground();
    auto na = net_a.create_node("na");
    bag.make<eln::isource>("ia", net_a, ga, na, eln::waveform::dc(1e-3));
    bag.make<eln::resistor>("ra", net_a, na, ga, 1000.0);

    eln::network net_b("net_b");
    net_b.set_timestep(3.0, de::time_unit::us);
    auto gb = net_b.ground();
    auto nb = net_b.create_node("nb");
    bag.make<eln::isource>("ib", net_b, gb, nb, eln::waveform::dc(2e-3));
    bag.make<eln::resistor>("rb", net_b, nb, gb, 1000.0);

    sim.run(30_us);
    EXPECT_NEAR(net_a.voltage(na), 1.0, 1e-9);
    EXPECT_NEAR(net_b.voltage(nb), 2.0, 1e-9);
    EXPECT_EQ(net_a.activation_count(), 31U);
    EXPECT_EQ(net_b.activation_count(), 11U);
}

TEST(integration, de_clock_gates_tdf_processing) {
    // A DE clock's value gates a TDF accumulator through a de_in port.
    core::simulation sim;
    de::clock clk("clk", 20_us);

    struct gated_accumulator : tdf::module {
        tdf::de_in<bool> gate;
        tdf::out<double> out;
        double acc = 0.0;
        explicit gated_accumulator(const de::module_name& nm)
            : tdf::module(nm), gate("gate"), out("out") {}
        void set_attributes() override { set_timestep(5.0, de::time_unit::us); }
        void processing() override {
            if (gate.read()) acc += 1.0;
            out.write(acc);
        }
    } acc("acc");
    collector sink("sink");
    tdf::signal<double> s("s");
    acc.gate.bind(clk.sig());
    acc.out.bind(s);
    sink.in.bind(s);

    sim.run(100_us);
    // Clock high 50% of the time: accumulator counts roughly half the 21
    // activations.
    const double final = sink.samples.back();
    EXPECT_GE(final, 8.0);
    EXPECT_LE(final, 13.0);
}
