// Golden-waveform regression suite (`ctest -L golden`): canonical scenarios
// covering the example models and the pipeline-ADC / sigma-delta / PLL
// composites, each checked sample-for-sample against a reference trace
// stored in tests/golden/.  Pure-TDF traces are tagged exact (bit-identity,
// tol 0); solver-backed (ELN) traces carry a small tolerance for
// cross-platform libm/BLAS drift.  Each scenario is replayed under BOTH the
// block and the per-sample executor — the same golden file must match both.
//
// Regenerate with scripts/regen_golden.py (or SCA_REGEN_GOLDEN=1 in the
// environment) after an intentional numeric change.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "eln/converter.hpp"
#include "eln/network.hpp"
#include "eln/primitives.hpp"
#include "eln/sources.hpp"
#include "kernel/signal.hpp"
#include "lib/amplifier.hpp"
#include "lib/filters.hpp"
#include "lib/mixer.hpp"
#include "lib/oscillator.hpp"
#include "lib/pipeline_adc.hpp"
#include "lib/pll.hpp"
#include "lib/pwm.hpp"
#include "lib/sigma_delta.hpp"
#include "tdf/cluster.hpp"
#include "tdf/module.hpp"
#include "tdf/port.hpp"

namespace core = sca::core;
namespace de = sca::de;
namespace tdf = sca::tdf;
namespace eln = sca::eln;
namespace lib = sca::lib;
using namespace sca::de::literals;

#ifndef SCA_GOLDEN_DIR
#define SCA_GOLDEN_DIR "tests/golden"
#endif

namespace {

/// Consumes tokens so probed signals have a reader in the cluster.
struct tap : tdf::module {
    tdf::in<double> in;
    explicit tap(const de::module_name& nm) : tdf::module(nm), in("in") {}
    void processing() override { (void)in.read(); }
};

struct probe_spec {
    std::string name;
    double tol;  // 0 = exact (bit-identity), > 0 = EXPECT_NEAR
};

struct golden_case {
    std::string name;
    std::vector<probe_spec> probes;
    std::function<void(core::testbench&)> build;  // probes + stop/sample times
};

std::string golden_path(const std::string& scenario) {
    return std::string(SCA_GOLDEN_DIR) + "/" + scenario + ".csv";
}

/// Hexfloat CSV: line 1 = `name:tol` columns, then one row per sample.
void write_golden(const std::string& path, const std::vector<probe_spec>& probes,
                  const std::vector<std::vector<double>>& waves) {
    std::ofstream f(path);
    ASSERT_TRUE(f.good()) << "cannot write " << path;
    for (std::size_t c = 0; c < probes.size(); ++c) {
        f << (c ? "," : "") << probes[c].name << ":" << probes[c].tol;
    }
    f << "\n";
    const std::size_t rows = waves.empty() ? 0 : waves[0].size();
    char buf[64];
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < waves.size(); ++c) {
            std::snprintf(buf, sizeof buf, "%a", waves[c][r]);
            f << (c ? "," : "") << buf;
        }
        f << "\n";
    }
}

struct golden_file {
    std::vector<probe_spec> probes;
    std::vector<std::vector<double>> waves;  // per probe
};

bool read_golden(const std::string& path, golden_file& out) {
    std::ifstream f(path);
    if (!f.good()) return false;
    std::string line;
    if (!std::getline(f, line)) return false;
    std::stringstream hdr(line);
    std::string col;
    while (std::getline(hdr, col, ',')) {
        const auto sep = col.rfind(':');
        out.probes.push_back({col.substr(0, sep), std::strtod(col.c_str() + sep + 1, nullptr)});
    }
    out.waves.assign(out.probes.size(), {});
    while (std::getline(f, line)) {
        if (line.empty()) continue;
        std::stringstream row(line);
        std::size_t c = 0;
        while (std::getline(row, col, ',') && c < out.waves.size()) {
            out.waves[c].push_back(std::strtod(col.c_str(), nullptr));
            ++c;
        }
    }
    return true;
}

bool regen_requested() {
    const char* v = std::getenv("SCA_REGEN_GOLDEN");
    return v != nullptr && std::strcmp(v, "0") != 0;
}

/// Build + run `gc` under the chosen executor; returns one waveform per probe.
std::vector<std::vector<double>> run_case(const golden_case& gc, bool block) {
    core::scenario sc = core::scenario::define("golden_" + gc.name + (block ? "_b" : "_s"),
                                               [&gc](core::testbench& tb,
                                                     const core::params&) { gc.build(tb); });
    auto tb = sc.build();
    tdf::registry::of(tb->context()).set_default_block_execution(block);
    tb->run();
    std::vector<std::vector<double>> waves;
    waves.reserve(gc.probes.size());
    for (const auto& p : gc.probes) waves.push_back(tb->waveform(p.name));
    return waves;
}

void check_against_golden(const golden_case& gc) {
    const std::string path = golden_path(gc.name);
    if (regen_requested()) {
        const auto waves = run_case(gc, true);
        ASSERT_FALSE(waves.empty());
        ASSERT_GT(waves[0].size(), 10U) << gc.name << ": suspiciously short trace";
        write_golden(path, gc.probes, waves);
        GTEST_SKIP() << "regenerated " << path << " (" << waves[0].size() << " samples)";
    }
    golden_file ref;
    ASSERT_TRUE(read_golden(path, ref))
        << "missing golden file " << path << " — run scripts/regen_golden.py";
    ASSERT_EQ(ref.probes.size(), gc.probes.size()) << gc.name;

    for (const bool block : {true, false}) {
        const auto waves = run_case(gc, block);
        const char* mode = block ? "block" : "per-sample";
        ASSERT_EQ(waves.size(), ref.waves.size()) << gc.name << " " << mode;
        for (std::size_t c = 0; c < waves.size(); ++c) {
            ASSERT_EQ(waves[c].size(), ref.waves[c].size())
                << gc.name << " " << mode << " probe " << gc.probes[c].name;
            const double tol = ref.probes[c].tol;
            for (std::size_t i = 0; i < waves[c].size(); ++i) {
                if (tol == 0.0) {
                    ASSERT_EQ(waves[c][i], ref.waves[c][i])
                        << gc.name << " " << mode << " probe " << gc.probes[c].name
                        << " sample " << i;
                } else {
                    ASSERT_NEAR(waves[c][i], ref.waves[c][i], tol)
                        << gc.name << " " << mode << " probe " << gc.probes[c].name
                        << " sample " << i;
                }
            }
        }
    }
}

// ----------------------------------------------------------- the scenarios

golden_case quickstart_rc_case() {
    return {"quickstart_rc",
            {{"vout", 1e-9}},  // MNA-solved: tolerance-tagged
            [](core::testbench& tb) {
                auto& net = tb.make<eln::network>("net");
                net.set_timestep(2.0, de::time_unit::us);
                auto gnd = net.ground();
                auto vin = net.create_node("vin");
                auto vout = net.create_node("vout");
                tb.make<eln::vsource>("vs", net, vin, gnd,
                                      eln::waveform::sine(1.0, 1e3));
                tb.make<eln::resistor>("r", net, vin, vout, 1e3);
                tb.make<eln::capacitor>("c", net, vout, gnd, 100e-9);
                tb.probe("vout", [&net, vout] { return net.voltage(vout); });
                tb.set_stop_time(2_ms);
                tb.set_sample_period(10_us);
            }};
}

golden_case tdf_filter_chain_case() {
    return {"tdf_filter_chain",
            {{"filtered", 0.0}},
            [](core::testbench& tb) {
                auto& src = tb.make<lib::sine_source>("src", 1.0, 5e3);
                src.set_timestep(10.0, de::time_unit::us);
                auto& f = tb.make<lib::fir>("fir", lib::fir::design_lowpass(21, 0.15));
                auto& bq = tb.make<lib::biquad>(
                    "bq", lib::biquad_coefficients{0.2, 0.3, 0.1, -0.4, 0.05});
                auto& snk = tb.make<tap>("snk");
                auto& w1 = tb.make<tdf::signal<double>>("w1");
                auto& w2 = tb.make<tdf::signal<double>>("w2");
                auto& w3 = tb.make<tdf::signal<double>>("w3");
                src.out.bind(w1);
                f.in.bind(w1);
                f.out.bind(w2);
                bq.in.bind(w2);
                bq.out.bind(w3);
                snk.in.bind(w3);
                tb.probe("filtered", w3);
                tb.set_stop_time(5_ms);
                tb.set_sample_period(10_us);
            }};
}

golden_case multirate_codec_case() {
    return {"multirate_codec",
            {{"decoded", 0.0}},
            [](core::testbench& tb) {
                auto& src = tb.make<lib::sine_source>("src", 0.9, 2e3);
                src.set_timestep(8.0, de::time_unit::us);
                auto& up = tb.make<lib::interpolator>("up", 4U);
                auto& f = tb.make<lib::fir>("fir", lib::fir::design_lowpass(11, 0.2));
                auto& down = tb.make<lib::decimator>("down", 4U);
                auto& snk = tb.make<tap>("snk");
                auto& w1 = tb.make<tdf::signal<double>>("w1");
                auto& w2 = tb.make<tdf::signal<double>>("w2");
                auto& w3 = tb.make<tdf::signal<double>>("w3");
                auto& w4 = tb.make<tdf::signal<double>>("w4");
                src.out.bind(w1);
                up.in.bind(w1);
                up.out.bind(w2);
                f.in.bind(w2);
                f.out.bind(w3);
                down.in.bind(w3);
                down.out.bind(w4);
                snk.in.bind(w4);
                tb.probe("decoded", w4);
                tb.set_stop_time(4_ms);
                tb.set_sample_period(8_us);
            }};
}

golden_case rf_mixer_chain_case() {
    return {"rf_mixer_chain",
            {{"if_out", 0.0}},
            [](core::testbench& tb) {
                auto& rf = tb.make<lib::sine_source>("rf", 1.0, 3e3);
                rf.set_timestep(5.0, de::time_unit::us);
                auto& lo = tb.make<lib::sine_source>("lo", 1.0, 20e3);
                lo.set_timestep(5.0, de::time_unit::us);
                auto& mix = tb.make<lib::mixer>("mix", 2.0);
                mix.set_feedthrough(0.1, 0.05);
                auto& amp = tb.make<lib::amplifier>("amp", 3.0, 2.0, -2.0);
                amp.set_bandwidth(10e3);
                auto& snk = tb.make<tap>("snk");
                auto& w1 = tb.make<tdf::signal<double>>("w1");
                auto& w2 = tb.make<tdf::signal<double>>("w2");
                auto& w3 = tb.make<tdf::signal<double>>("w3");
                auto& w4 = tb.make<tdf::signal<double>>("w4");
                rf.out.bind(w1);
                lo.out.bind(w2);
                mix.rf.bind(w1);
                mix.lo.bind(w2);
                mix.out.bind(w3);
                amp.in.bind(w3);
                amp.out.bind(w4);
                snk.in.bind(w4);
                tb.probe("if_out", w4);
                tb.set_stop_time(5_ms);
                tb.set_sample_period(5_us);
            }};
}

golden_case quadrature_product_case() {
    return {"quadrature_product",
            {{"product", 0.0}},
            [](core::testbench& tb) {
                auto& osc = tb.make<lib::quadrature_oscillator>("osc", 1.0, 4e3);
                osc.set_timestep(10.0, de::time_unit::us);
                auto& mix = tb.make<lib::mixer>("mix", 1.0);
                auto& snk = tb.make<tap>("snk");
                auto& wi = tb.make<tdf::signal<double>>("wi");
                auto& wq = tb.make<tdf::signal<double>>("wq");
                auto& wp = tb.make<tdf::signal<double>>("wp");
                osc.out_i.bind(wi);
                osc.out_q.bind(wq);
                mix.rf.bind(wi);
                mix.lo.bind(wq);
                mix.out.bind(wp);
                snk.in.bind(wp);
                tb.probe("product", wp);
                tb.set_stop_time(5_ms);
                tb.set_sample_period(10_us);
            }};
}

golden_case sigma_delta_adc_case() {
    return {"sigma_delta_adc",
            {{"decimated", 0.0}},
            [](core::testbench& tb) {
                auto& src = tb.make<lib::sine_source>("src", 0.8, 1e3);
                src.set_timestep(2.0, de::time_unit::us);
                auto& adc = tb.make<lib::sigma_delta_adc>("adc", 2U, 1.0, 16U);
                auto& snk = tb.make<tap>("snk");
                auto& w1 = tb.make<tdf::signal<double>>("w1");
                auto& w2 = tb.make<tdf::signal<double>>("w2");
                src.out.bind(w1);
                adc.in.bind(w1);
                adc.out.bind(w2);
                snk.in.bind(w2);
                tb.probe("decimated", w2);
                tb.set_stop_time(8_ms);
                tb.set_sample_period(32_us);
            }};
}

golden_case pipeline_adc_case() {
    return {"pipeline_adc",
            {{"estimate", 0.0}},
            [](core::testbench& tb) {
                auto& src = tb.make<lib::sine_source>("src", 0.95, 997.0);
                src.set_timestep(10.0, de::time_unit::us);
                auto& adc = tb.make<lib::pipeline_adc>("adc", 6U, 1.0);
                auto& snk = tb.make<tap>("snk");
                struct code_tap : tdf::module {
                    tdf::in<std::int64_t> in;
                    explicit code_tap(const de::module_name& nm)
                        : tdf::module(nm), in("in") {}
                    void processing() override { (void)in.read(); }
                };
                auto& csnk = tb.make<code_tap>("csnk");
                auto& w1 = tb.make<tdf::signal<double>>("w1");
                auto& w2 = tb.make<tdf::signal<double>>("w2");
                auto& wc = tb.make<tdf::signal<std::int64_t>>("wc");
                src.out.bind(w1);
                adc.in.bind(w1);
                adc.analog_estimate.bind(w2);
                adc.code.bind(wc);
                snk.in.bind(w2);
                csnk.in.bind(wc);
                tb.probe("estimate", w2);
                tb.set_stop_time(5_ms);
                tb.set_sample_period(10_us);
            }};
}

golden_case pll_lock_case() {
    return {"pll_lock",
            {{"control", 0.0}},
            [](core::testbench& tb) {
                auto& ref = tb.make<lib::sine_source>("ref", 1.0, 10.2e3);
                ref.set_timestep(2.0, de::time_unit::us);
                auto& loop = tb.make<lib::pll>("loop", 10e3, 2e3, 1000.0);
                auto& osnk = tb.make<tap>("osnk");
                auto& csnk = tb.make<tap>("csnk");
                auto& w1 = tb.make<tdf::signal<double>>("w1");
                auto& wo = tb.make<tdf::signal<double>>("wo");
                auto& wc = tb.make<tdf::signal<double>>("wc");
                ref.out.bind(w1);
                loop.ref.bind(w1);
                loop.out.bind(wo);
                loop.control.bind(wc);
                osnk.in.bind(wo);
                csnk.in.bind(wc);
                tb.probe("control", wc);
                tb.set_stop_time(20_ms);
                tb.set_sample_period(20_us);
            }};
}

golden_case pwm_switch_rc_case() {
    // The power_driver family: a DE PWM gating a switched RC through a
    // de_rswitch.  The cluster is DE-coupled, so it syncs every period and
    // never compiles fused programs — the golden trace pins down that the
    // block executor leaves this path untouched.
    return {"pwm_switch_rc",
            {{"vout", 1e-9}},  // MNA-solved: tolerance-tagged
            [](core::testbench& tb) {
                auto& duty = tb.make<de::signal<double>>("duty", 0.4);
                auto& gate = tb.make<de::signal<bool>>("gate", false);
                auto& mod = tb.make<lib::pwm>("mod", 20_us);
                mod.duty.bind(duty);
                mod.out.bind(gate);

                auto& net = tb.make<eln::network>("net");
                net.set_timestep(2.0, de::time_unit::us);
                auto gnd = net.ground();
                auto vin = net.create_node("vin");
                auto vsw = net.create_node("vsw");
                tb.make<eln::vsource>("vs", net, vin, gnd, eln::waveform::dc(12.0));
                auto& sw = tb.make<eln::de_rswitch>("sw", net, vin, vsw, 0.1, 1e6);
                sw.ctrl.bind(gate);
                tb.make<eln::resistor>("load", net, vsw, gnd, 100.0);
                tb.make<eln::capacitor>("c", net, vsw, gnd, 1e-6);

                tb.probe("vout", [&net, vsw] { return net.voltage(vsw); });
                // Co-prime with the 20 us PWM period so ripple doesn't alias.
                tb.set_sample_period(3_us);
                tb.set_stop_time(3_ms);
            }};
}

golden_case adaptive_retimer_case() {
    // The adaptive_receiver family: a dynamic module retimes its cluster at
    // runtime.  Dynamic clusters keep the per-sample path between reschedule
    // barriers, so the same golden file must match with block execution on
    // and off — and across every reschedule, with no lost or duplicated
    // samples on the probe grid.
    struct dyn_ramp : tdf::module {
        tdf::out<double> out;
        std::uint64_t k = 0;
        bool slow = false;
        explicit dyn_ramp(const de::module_name& nm) : tdf::module(nm), out("out") {}
        [[nodiscard]] bool does_attribute_changes() const override { return true; }
        void set_attributes() override { set_timestep(10.0, de::time_unit::us); }
        void processing() override { out.write(1e-3 * static_cast<double>(k++)); }
        void change_attributes() override {
            if (k % 16 == 0) {
                slow = !slow;
                request_timestep(slow ? 25_us : 10_us);
            }
        }
    };
    // A biquad's recurrence is timestep-independent, so riding along a
    // retime is sound — it just has to say so.
    struct dyn_biquad : lib::biquad {
        using lib::biquad::biquad;
        [[nodiscard]] bool accept_attribute_changes() const override { return true; }
    };
    struct dyn_tap : tap {
        using tap::tap;
        [[nodiscard]] bool accept_attribute_changes() const override { return true; }
    };
    return {"adaptive_retimer",
            {{"shaped", 0.0}},
            [](core::testbench& tb) {
                auto& src = tb.make<dyn_ramp>("src");
                auto& bq = tb.make<dyn_biquad>(
                    "bq", lib::biquad_coefficients{0.3, 0.2, 0.1, -0.5, 0.04});
                auto& snk = tb.make<dyn_tap>("snk");
                auto& w1 = tb.make<tdf::signal<double>>("w1");
                auto& w2 = tb.make<tdf::signal<double>>("w2");
                src.out.bind(w1);
                bq.in.bind(w1);
                bq.out.bind(w2);
                snk.in.bind(w2);
                tb.probe("shaped", w2);
                tb.set_stop_time(10_ms);
                tb.set_sample_period(50_us);  // multiple of both timesteps
            }};
}

}  // namespace

TEST(golden_waveforms, quickstart_rc) { check_against_golden(quickstart_rc_case()); }
TEST(golden_waveforms, tdf_filter_chain) { check_against_golden(tdf_filter_chain_case()); }
TEST(golden_waveforms, multirate_codec) { check_against_golden(multirate_codec_case()); }
TEST(golden_waveforms, rf_mixer_chain) { check_against_golden(rf_mixer_chain_case()); }
TEST(golden_waveforms, quadrature_product) {
    check_against_golden(quadrature_product_case());
}
TEST(golden_waveforms, sigma_delta_adc) { check_against_golden(sigma_delta_adc_case()); }
TEST(golden_waveforms, pipeline_adc) { check_against_golden(pipeline_adc_case()); }
TEST(golden_waveforms, pll_lock) { check_against_golden(pll_lock_case()); }
TEST(golden_waveforms, pwm_switch_rc) { check_against_golden(pwm_switch_rc_case()); }
TEST(golden_waveforms, adaptive_retimer) {
    check_against_golden(adaptive_retimer_case());
}
