// Property-based sweeps over randomized models: conservation laws, SDF
// balance/schedule invariants, filter stability, solver robustness.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <random>

#include "core/simulation.hpp"
#include "eln/network.hpp"
#include "eln/primitives.hpp"
#include "eln/sources.hpp"
#include "lsf/ltf.hpp"
#include "lsf/node.hpp"
#include "lsf/primitives.hpp"
#include "solver/linear_dae.hpp"
#include "tdf/cluster.hpp"
#include "tdf/module.hpp"
#include "tdf/schedule.hpp"
#include "util/object_bag.hpp"

namespace de = sca::de;
namespace eln = sca::eln;
namespace lsf = sca::lsf;
namespace tdf = sca::tdf;
namespace core = sca::core;
namespace solver = sca::solver;
using namespace sca::de::literals;

// ---------------------------------------------------- conservation property

class random_ladder : public ::testing::TestWithParam<int> {};

TEST_P(random_ladder, dc_solution_satisfies_kirchhoff) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()) * 7919U + 3U);
    std::uniform_real_distribution<double> res(100.0, 100e3);
    std::uniform_int_distribution<int> len(2, 12);

    core::simulation sim;
    sca::util::object_bag bag;
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    const int n = len(rng);
    std::vector<eln::node> nodes;
    for (int i = 0; i < n; ++i) nodes.push_back(net.create_node("n" + std::to_string(i)));
    bag.make<eln::vsource>("vs", net, nodes[0], gnd, eln::waveform::dc(10.0));
    std::vector<double> series_r;
    for (int i = 0; i + 1 < n; ++i) {
        series_r.push_back(res(rng));
        bag.make<eln::resistor>("rs" + std::to_string(i), net, nodes[i], nodes[i + 1],
                          series_r.back());
        bag.make<eln::resistor>("rp" + std::to_string(i), net, nodes[i + 1], gnd, res(rng));
    }

    sim.run(3_us);
    // KCL check at every internal node: the solved state must satisfy the
    // assembled equations (residual of A x - q).
    auto& sys = net.equations();
    const auto x = net.state();
    const auto ax = sys.a().multiply(x);
    const auto q = sys.rhs(sim.now().to_seconds());
    for (std::size_t i = 0; i < x.size(); ++i) {
        EXPECT_NEAR(ax[i], q[i], 1e-6) << "row " << i;
    }
    // Voltages decrease monotonically along a dissipative ladder.
    for (int i = 0; i + 1 < n; ++i) {
        EXPECT_GE(net.voltage(nodes[i]) + 1e-9, net.voltage(nodes[i + 1]));
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, random_ladder, ::testing::Range(0, 12));

// -------------------------------------------------- SDF balance properties

class random_sdf_chain : public ::testing::TestWithParam<int> {};

TEST_P(random_sdf_chain, repetition_vector_satisfies_balance) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()) * 31337U + 11U);
    std::uniform_int_distribution<unsigned> rate(1, 6);
    std::uniform_int_distribution<int> len(2, 10);

    const int n = len(rng);
    std::vector<tdf::rate_edge> edges;
    for (int i = 0; i + 1 < n; ++i) {
        edges.push_back({static_cast<std::size_t>(i), static_cast<std::size_t>(i + 1),
                         rate(rng), rate(rng)});
    }
    const auto reps = tdf::repetition_vector(static_cast<std::size_t>(n), edges);
    for (const auto& e : edges) {
        EXPECT_EQ(reps[e.from] * e.out_rate, reps[e.to] * e.in_rate);
    }
    // Minimality: the gcd of all repetitions is 1.
    std::uint64_t g = 0;
    for (auto r : reps) g = std::gcd(g, r);
    EXPECT_EQ(g, 1U);
}

INSTANTIATE_TEST_SUITE_P(seeds, random_sdf_chain, ::testing::Range(0, 20));

namespace {

struct rate_producer : tdf::module {
    tdf::out<double> out;
    rate_producer(const de::module_name& nm, unsigned rate) : tdf::module(nm), out("out") {
        out.set_rate(rate);
    }
    void set_attributes() override { set_timestep(1.0, de::time_unit::us); }
    void processing() override {
        for (unsigned k = 0; k < out.rate(); ++k) {
            out.write(static_cast<double>(out.position() + k), k);
        }
    }
};

struct rate_consumer : tdf::module {
    tdf::in<double> in;
    std::vector<double> got;
    rate_consumer(const de::module_name& nm, unsigned rate) : tdf::module(nm), in("in") {
        in.set_rate(rate);
    }
    void processing() override {
        for (unsigned k = 0; k < in.rate(); ++k) got.push_back(in.read(k));
    }
};

}  // namespace

class random_rate_pair : public ::testing::TestWithParam<int> {};

TEST_P(random_rate_pair, token_stream_is_lossless_and_ordered) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()) * 104729U + 17U);
    std::uniform_int_distribution<unsigned> rate(1, 5);

    core::simulation sim;
    rate_producer src("src", rate(rng));
    rate_consumer dst("dst", rate(rng));
    tdf::signal<double> s("s");
    src.out.bind(s);
    dst.in.bind(s);

    sim.run(40_us);
    ASSERT_GE(dst.got.size(), 10U);
    for (std::size_t i = 0; i < dst.got.size(); ++i) {
        EXPECT_DOUBLE_EQ(dst.got[i], static_cast<double>(i)) << i;
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, random_rate_pair, ::testing::Range(0, 15));

// ------------------------------------------------ filter stability property

class random_stable_filter : public ::testing::TestWithParam<int> {};

TEST_P(random_stable_filter, bounded_response_and_dc_gain) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()) * 65537U + 29U);
    std::uniform_real_distribution<double> re(-50e3, -500.0);
    std::uniform_real_distribution<double> im(1e3, 30e3);
    std::uniform_int_distribution<int> pairs(1, 2);

    std::vector<std::complex<double>> poles;
    const int np = pairs(rng);
    for (int i = 0; i < np; ++i) {
        const std::complex<double> p(re(rng), im(rng));
        poles.push_back(p);
        poles.push_back(std::conj(p));
    }
    auto den = lsf::poly_from_roots(poles);
    const std::vector<double> num{den[0]};  // unity DC gain

    core::simulation sim;
    lsf::system sys("sys");
    sys.set_timestep(1.0, de::time_unit::us);
    auto u = sys.create_signal("u");
    auto y = sys.create_signal("y");
    lsf::source src("src", sys, u, lsf::waveform::dc(1.0));
    lsf::ltf_nd f("f", sys, u, y, num, den);

    sim.run(5_ms);
    // Stable filter: settles to the DC gain without blowing up.
    EXPECT_NEAR(sys.value(y), 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(seeds, random_stable_filter, ::testing::Range(0, 15));

// ---------------------------------------------- stiff solver never explodes

class random_stiff_system : public ::testing::TestWithParam<int> {};

TEST_P(random_stiff_system, backward_euler_remains_bounded) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()) * 2654435761U + 41U);
    std::uniform_real_distribution<double> log_tau(-9.0, -3.0);

    solver::equation_system sys;
    const int n = 4;
    for (int i = 0; i < n; ++i) {
        const std::size_t r = sys.add_unknown("x" + std::to_string(i));
        const double tau = std::pow(10.0, log_tau(rng));
        sys.add_a(r, r, 1.0 / tau);
        sys.add_b(r, r, 1.0);
        // Weak random coupling to the next state keeps the system stable
        // (diagonally dominant) while making it non-trivial.
        if (i > 0) sys.add_a(r, r - 1, 0.1 / tau);
    }
    solver::linear_dae_solver s(sys, solver::integration_method::backward_euler, 1e-5);
    s.set_initial_state(std::vector<double>(n, 1.0), 0.0);
    s.advance_to(1e-2);
    for (double v : s.x()) {
        EXPECT_TRUE(std::isfinite(v));
        EXPECT_LT(std::abs(v), 2.0);
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, random_stiff_system, ::testing::Range(0, 15));

// ----------------------------------------- passive network energy property

class random_rc_energy : public ::testing::TestWithParam<int> {};

TEST_P(random_rc_energy, discharge_is_monotonic_without_sources) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()) * 48271U + 53U);
    std::uniform_real_distribution<double> res(1e3, 50e3);
    std::uniform_real_distribution<double> cap(1e-9, 100e-9);

    // A charged capacitor discharging through a random resistor mesh must
    // decay monotonically (passivity: no energy creation).
    core::simulation sim;
    sca::util::object_bag bag;
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto a = net.create_node("a");
    auto b = net.create_node("b");
    // Charge via a source that switches off after 10 us.
    bag.make<eln::isource>("chg", net, gnd, a,
                     eln::waveform::pulse(1e-3, 0.0, 10e-6, 1e-9, 1e-9, 1.0, 2.0));
    bag.make<eln::capacitor>("c1", net, a, gnd, cap(rng));
    bag.make<eln::resistor>("r1", net, a, b, res(rng));
    bag.make<eln::resistor>("r2", net, b, gnd, res(rng));

    sim.run(10_us);
    double prev = net.voltage(a);
    bool decayed = false;
    for (int i = 0; i < 100; ++i) {
        sim.run(5_us);
        const double now = net.voltage(a);
        EXPECT_LE(now, prev + 1e-9);
        if (now < prev) decayed = true;
        prev = now;
    }
    EXPECT_TRUE(decayed);
}

INSTANTIATE_TEST_SUITE_P(seeds, random_rc_energy, ::testing::Range(0, 10));
