// Dynamic TDF: runtime attribute changes with incremental rescheduling.
//
// Covers the contract of tdf/dynamic.hpp + the cluster reschedule path:
// static clusters stay on the compiled fast path bit-identically, timestep
// and rate requests retime/rebalance the cluster between periods, repeat
// visits to a configuration hit the schedule cache instead of recompiling,
// non-accepting neighbors reject requests with their full hierarchical path,
// rate-oscillating clusters stay deterministic under the parallel run_set
// engine, and a coupled dae_module absorbs timestep changes through the
// numeric-only refactor path.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/run_set.hpp"
#include "core/scenario.hpp"
#include "eln/converter.hpp"
#include "eln/network.hpp"
#include "eln/primitives.hpp"
#include "kernel/context.hpp"
#include "tdf/block.hpp"
#include "tdf/cluster.hpp"
#include "tdf/connect.hpp"
#include "tdf/dynamic.hpp"
#include "tdf/module.hpp"
#include "tdf/port.hpp"
#include "util/report.hpp"

namespace de = sca::de;
namespace tdf = sca::tdf;
namespace eln = sca::eln;
namespace core = sca::core;
using namespace sca::de::literals;

namespace {

struct ramp_source : tdf::module {
    tdf::out<double> out;
    double next_value = 0.0;
    bool accept = true;

    explicit ramp_source(const de::module_name& nm) : tdf::module(nm), out("out") {}
    [[nodiscard]] bool accept_attribute_changes() const override { return accept; }
    void processing() override {
        for (unsigned k = 0; k < out.rate(); ++k) out.write(next_value++, k);
    }
};

struct collector : tdf::module {
    tdf::in<double> in;
    std::vector<double> samples;
    std::vector<de::time> sample_times;
    bool accept = true;

    explicit collector(const de::module_name& nm) : tdf::module(nm), in("in") {}
    [[nodiscard]] bool accept_attribute_changes() const override { return accept; }
    void processing() override {
        for (unsigned j = 0; j < in.rate(); ++j) {
            samples.push_back(in.read(j));
            sample_times.push_back(tdf_time());
        }
    }
};

/// Pass-through that retimes itself: after `cycles_before_change` periods it
/// requests `slow_factor` times its base timestep; with `toggle` set it flips
/// between the two timesteps every period.
struct retimer : tdf::module {
    tdf::in<double> in;
    tdf::out<double> out;
    de::time base_step;
    std::int64_t slow_factor;
    std::uint64_t cycles_before_change;
    bool toggle = false;
    bool slow = false;

    retimer(const de::module_name& nm, const de::time& step, std::int64_t factor,
            std::uint64_t after_cycles)
        : tdf::module(nm), in("in"), out("out"), base_step(step), slow_factor(factor),
          cycles_before_change(after_cycles) {}

    [[nodiscard]] bool does_attribute_changes() const override { return true; }
    void set_attributes() override { set_timestep(base_step); }
    void processing() override { out.write(in.read()); }
    void change_attributes() override {
        const std::uint64_t cycles = owning_cluster()->cycle_count();
        if (toggle) {
            slow = !slow;
        } else if (cycles >= cycles_before_change) {
            slow = true;
        }
        request_timestep(slow ? base_step * slow_factor : base_step);
    }
};

/// Decimator that oscillates its input rate between `fast_rate` and 1 every
/// `flip_every` periods (exercises repetition-vector rebalancing + cache).
struct rate_hopper : tdf::module {
    tdf::in<double> in;
    tdf::out<double> out;
    unsigned fast_rate;
    std::uint64_t flip_every;
    bool fast = true;

    rate_hopper(const de::module_name& nm, unsigned rate, std::uint64_t flip)
        : tdf::module(nm), in("in"), out("out"), fast_rate(rate), flip_every(flip) {
        in.set_rate(rate);
    }

    [[nodiscard]] bool does_attribute_changes() const override { return true; }
    void set_attributes() override { set_timestep(8.0, de::time_unit::us); }
    void processing() override {
        double acc = 0.0;
        for (unsigned k = 0; k < in.rate(); ++k) acc += in.read(k);
        out.write(acc / static_cast<double>(in.rate()));
    }
    void change_attributes() override {
        if (owning_cluster()->cycle_count() % flip_every == 0) fast = !fast;
        request_rate(in, fast ? fast_rate : 1);
    }
};

const tdf::cluster& only_cluster(de::simulation_context& ctx) {
    auto& reg = tdf::registry::of(ctx);
    EXPECT_EQ(reg.clusters().size(), 1U);
    return *reg.clusters()[0];
}

}  // namespace

// ------------------------------------------------- static fast path intact

TEST(dynamic_tdf, static_cluster_is_not_dynamic_and_never_reschedules) {
    de::simulation_context ctx;
    ramp_source src("src");
    src.set_timestep(1.0, de::time_unit::us);
    collector sink("sink");
    tdf::signal<double> s("s");
    src.out.bind(s);
    sink.in.bind(s);

    ctx.run(10_us);
    const tdf::cluster& c = only_cluster(ctx);
    EXPECT_FALSE(c.is_dynamic());
    EXPECT_EQ(c.reschedule_count(), 0U);
    EXPECT_EQ(c.recompile_count(), 0U);
    EXPECT_EQ(c.schedule_cache_size(), 0U);
}

TEST(dynamic_tdf, static_waveform_bit_identical_with_dynamic_subsystem_compiled_in) {
    // PR-4 baseline: a 2:3 multirate ramp pipeline is fully deterministic —
    // the collector sees the ramp 0, 1, 2, ... exactly, batched or not.
    auto run_pipeline = [](std::uint64_t max_batch) {
        de::simulation_context ctx;
        tdf::registry::of(ctx).set_default_max_batch_periods(max_batch);
        ramp_source src("src");
        src.set_timestep(1.0, de::time_unit::us);
        collector sink("sink");
        tdf::signal<double> s("s");
        src.out.set_rate(2);
        src.out.bind(s);
        sink.in.bind(s);
        sink.in.set_rate(3);
        ctx.run(1_ms);
        return sink.samples;
    };
    const auto per_period = run_pipeline(1);
    const auto batched = run_pipeline(tdf::cluster::k_default_max_batch_periods);
    ASSERT_EQ(per_period.size(), batched.size());
    for (std::size_t i = 0; i < per_period.size(); ++i) {
        ASSERT_EQ(per_period[i], batched[i]) << "sample " << i;  // exact, not near
        ASSERT_EQ(per_period[i], static_cast<double>(i)) << "sample " << i;
    }
}

// ----------------------------------------------------- timestep retiming --

TEST(dynamic_tdf, timestep_request_stretches_the_sampling_grid) {
    de::simulation_context ctx;
    ramp_source src("src");
    retimer slow_down("slow_down", 1_us, 4, 3);  // 4x slower after 3 cycles
    collector sink("sink");
    tdf::signal<double> s1("s1"), s2("s2");
    src.out.bind(s1);
    slow_down.in.bind(s1);
    slow_down.out.bind(s2);
    sink.in.bind(s2);

    ctx.run(20_us);
    const tdf::cluster& c = only_cluster(ctx);
    EXPECT_TRUE(c.is_dynamic());
    EXPECT_EQ(c.reschedule_count(), 1U);
    EXPECT_EQ(c.recompile_count(), 1U);

    // Cycles 0..2 sample at 1 us; the request lands after cycle 3 ran (its
    // period still spans 1 us), so t = 0,1,2,3 us then 4 us steps: 7,11,...
    ASSERT_GE(sink.sample_times.size(), 6U);
    EXPECT_EQ(sink.sample_times[0], 0_us);
    EXPECT_EQ(sink.sample_times[1], 1_us);
    EXPECT_EQ(sink.sample_times[2], 2_us);
    EXPECT_EQ(sink.sample_times[3], 3_us);
    EXPECT_EQ(sink.sample_times[4], 7_us);
    EXPECT_EQ(sink.sample_times[5], 11_us);
    // The stream itself stays gapless: every ramp value arrives in order.
    for (std::size_t i = 0; i < sink.samples.size(); ++i) {
        EXPECT_EQ(sink.samples[i], static_cast<double>(i));
    }
}

TEST(dynamic_tdf, request_outside_change_attributes_throws) {
    de::simulation_context ctx;
    ramp_source src("src");
    retimer r("r", 1_us, 2, 1000);
    collector sink("sink");
    tdf::signal<double> s1("s1"), s2("s2");
    src.out.bind(s1);
    r.in.bind(s1);
    r.out.bind(s2);
    sink.in.bind(s2);
    ctx.elaborate();
    EXPECT_THROW(r.request_timestep(2_us), sca::util::error);
    EXPECT_THROW(r.request_rate(r.in, 2), sca::util::error);
}

// ------------------------------------------------------- schedule caching --

TEST(dynamic_tdf, repeated_toggle_hits_the_schedule_cache) {
    de::simulation_context ctx;
    ramp_source src("src");
    retimer osc("osc", 1_us, 8, 0);
    osc.toggle = true;  // flip between 1 us and 8 us every period
    collector sink("sink");
    tdf::signal<double> s1("s1"), s2("s2");
    src.out.bind(s1);
    osc.in.bind(s1);
    osc.out.bind(s2);
    sink.in.bind(s2);

    ctx.run(200_us);
    const tdf::cluster& c = only_cluster(ctx);
    // Every period reschedules, but only the first visit to the slow
    // configuration compiles: the fast configuration was seeded at
    // elaboration, so flipping back is a cache hit too.
    EXPECT_GT(c.reschedule_count(), 10U);
    EXPECT_EQ(c.recompile_count(), 1U);
    EXPECT_EQ(c.schedule_cache_size(), 2U);
    EXPECT_EQ(c.schedule_cache_misses(), 1U);
    EXPECT_EQ(c.schedule_cache_hits(), c.reschedule_count() - 1U);
}

TEST(dynamic_tdf, rate_request_rebalances_repetitions) {
    de::simulation_context ctx;
    ramp_source src("src");
    src.accept = true;
    rate_hopper hop("hop", 8, 4);
    collector sink("sink");
    tdf::signal<double> s1("s1"), s2("s2");
    src.out.bind(s1);
    hop.in.bind(s1);
    hop.out.bind(s2);
    sink.in.bind(s2);

    ctx.elaborate();
    // Fast configuration: hopper consumes 8 per firing -> src repeats 8x.
    EXPECT_EQ(src.repetitions(), 8U);
    EXPECT_EQ(hop.repetitions(), 1U);

    ctx.run(200_us);
    const tdf::cluster& c = only_cluster(ctx);
    EXPECT_TRUE(c.is_dynamic());
    EXPECT_GT(c.reschedule_count(), 2U);
    // Two configurations total; each compiled at most once.
    EXPECT_EQ(c.recompile_count(), 1U);
    EXPECT_EQ(c.schedule_cache_size(), 2U);
    // In the slow configuration the source fires once per period: the
    // repetition vector rebalanced (visible through whichever configuration
    // is installed at run end).
    EXPECT_TRUE(src.repetitions() == 1U || src.repetitions() == 8U);
}

// ------------------------------------------------------------ gating ------

namespace {

/// Composite wrapping a non-accepting sink, so the rejection diagnostic must
/// carry the full hierarchical path ("rx.sink").
struct stubborn_rx : tdf::composite {
    tdf::in<double> x;
    collector* sink = nullptr;
    explicit stubborn_rx(const de::module_name& nm) : tdf::composite(nm), x("x") {
        sink = &make_child<collector>("sink");
        sink->accept = false;
        sink->in.bind(x);
    }
};

}  // namespace

TEST(dynamic_tdf, non_accepting_neighbor_rejects_with_full_path) {
    de::simulation_context ctx;
    ramp_source src("src");
    retimer r("r", 1_us, 2, 1);
    stubborn_rx rx("rx");
    tdf::signal<double> s1("s1"), s2("s2");
    src.out.bind(s1);
    r.in.bind(s1);
    r.out.bind(s2);
    rx.x.bind(s2);

    try {
        ctx.run(100_us);
        FAIL() << "expected the attribute-change rejection to throw";
    } catch (const sca::util::error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("rx.sink"), std::string::npos) << msg;
        EXPECT_NE(msg.find("attribute change"), std::string::npos) << msg;
        EXPECT_NE(msg.find("r"), std::string::npos) << msg;
    }
}

TEST(dynamic_tdf, restating_the_current_configuration_is_free) {
    de::simulation_context ctx;
    ramp_source src("src");
    src.accept = false;  // would reject an actual change...
    retimer r("r", 1_us, 2, 1000000);  // ...but only ever restates 1 us
    collector sink("sink");
    sink.accept = false;
    tdf::signal<double> s1("s1"), s2("s2");
    src.out.bind(s1);
    r.in.bind(s1);
    r.out.bind(s2);
    sink.in.bind(s2);

    ctx.run(50_us);  // no throw: a no-op request does not gate
    const tdf::cluster& c = only_cluster(ctx);
    EXPECT_EQ(c.reschedule_count(), 0U);
    EXPECT_EQ(c.recompile_count(), 0U);
}

TEST(dynamic_tdf, unanchored_module_restating_resolved_timestep_is_free) {
    // A module with no timestep anchor of its own (timing derived from the
    // source) that re-requests its *resolved* timestep every period must be
    // a no-op too — even next to neighbors that reject actual changes.
    struct restater : tdf::module {
        tdf::in<double> in;
        tdf::out<double> out;
        explicit restater(const de::module_name& nm)
            : tdf::module(nm), in("in"), out("out") {}
        [[nodiscard]] bool does_attribute_changes() const override { return true; }
        void processing() override { out.write(in.read()); }
        void change_attributes() override { request_timestep(timestep()); }
    };

    de::simulation_context ctx;
    ramp_source src("src");
    src.set_timestep(1.0, de::time_unit::us);  // the only anchor
    src.accept = false;
    restater r("r");
    collector sink("sink");
    sink.accept = false;
    tdf::signal<double> s1("s1"), s2("s2");
    src.out.bind(s1);
    r.in.bind(s1);
    r.out.bind(s2);
    sink.in.bind(s2);

    ctx.run(50_us);  // no throw, no reschedule
    const tdf::cluster& c = only_cluster(ctx);
    EXPECT_EQ(c.reschedule_count(), 0U);
    EXPECT_EQ(c.recompile_count(), 0U);
}

TEST(dynamic_tdf, restatement_does_not_become_an_anchor_during_a_real_change) {
    // An unanchored restater rides along while the anchored retimer makes a
    // real change: the restated (old) timestep must not be promoted to a
    // fresh anchor, or it would conflict with the new period.
    struct restater : tdf::module {
        tdf::in<double> in;
        tdf::out<double> out;
        explicit restater(const de::module_name& nm)
            : tdf::module(nm), in("in"), out("out") {}
        [[nodiscard]] bool does_attribute_changes() const override { return true; }
        void processing() override { out.write(in.read()); }
        void change_attributes() override { request_timestep(timestep()); }
    };

    de::simulation_context ctx;
    ramp_source src("src");
    retimer slow_down("slow_down", 1_us, 4, 2);  // 4x slower after 2 cycles
    restater tail("tail");
    collector sink("sink");
    tdf::signal<double> s1("s1"), s2("s2"), s3("s3");
    src.out.bind(s1);
    slow_down.in.bind(s1);
    slow_down.out.bind(s2);
    tail.in.bind(s2);
    tail.out.bind(s3);
    sink.in.bind(s3);

    ctx.run(40_us);  // would throw "conflicting anchors" if tail anchored
    const tdf::cluster& c = only_cluster(ctx);
    EXPECT_EQ(c.reschedule_count(), 1U);
    EXPECT_EQ(tail.timestep(), de::time(4.0, de::time_unit::us));
}

TEST(dynamic_tdf, schedule_cache_is_bounded) {
    tdf::schedule_cache cache;
    cache.set_max_entries(4);
    for (std::uint64_t i = 0; i < 10; ++i) {
        tdf::attribute_signature sig;
        sig.words = {i};
        cache.insert(sig, tdf::cluster_config{});
        EXPECT_LE(cache.size(), 4U);
        EXPECT_NE(cache.find(sig), nullptr);  // newest entry always present
    }
    EXPECT_EQ(cache.size(), 4U);
}

// ------------------------------------- parallel run_set determinism -------

TEST(dynamic_tdf, rate_oscillating_cluster_parallel_matches_sequential) {
    auto sc = core::scenario::define(
        "dynamic_rate_osc", core::params{{"gain", 1.0}},
        [](core::testbench& tb, const core::params& p) {
            auto& src = tb.make<ramp_source>("src");
            src.next_value = p.number("gain");
            auto& hop = tb.make<rate_hopper>("hop", 8, 3);
            auto& sink = tb.make<collector>("sink");
            auto& s_out = connect(hop.out, sink.in);
            connect(src.out, hop.in);
            tb.probe("decimated", s_out);
            tb.set_sample_period(8_us);
            tb.set_stop_time(2_ms);
        });

    auto grid = core::param_grid().add("gain", {1.0, 2.0, 3.0, 4.0});
    auto sequential = core::run_set(sc).with_grid(grid).set_workers(1).run_all();
    auto parallel = core::run_set(sc).with_grid(grid).set_workers(4).run_all();
    ASSERT_EQ(sequential.size(), parallel.size());
    for (std::size_t i = 0; i < sequential.size(); ++i) {
        ASSERT_TRUE(sequential[i].ok) << sequential[i].error;
        ASSERT_TRUE(parallel[i].ok) << parallel[i].error;
        const auto& a = sequential[i].waveform("decimated");
        const auto& b = parallel[i].waveform("decimated");
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t j = 0; j < a.size(); ++j) {
            ASSERT_EQ(a[j], b[j]) << "run " << i << " sample " << j;
        }
    }
}

// --------------------------------------- coupled dae_module (ELN view) ----

TEST(dynamic_tdf, dae_timestep_change_reuses_symbolic_factorization) {
    de::simulation_context ctx;
    // TDF drive -> RC network -> TDF probe, with a dynamic retimer feeding
    // the drive so the whole cluster (network included) retimes at runtime.
    ramp_source src("src");
    retimer r("r", 10_us, 4, 5);
    eln::network net("net");
    auto gnd = net.ground();
    auto vin = net.create_node("vin");
    auto vout = net.create_node("vout");
    eln::tdf_vsource drive("drive", net, vin, gnd);
    eln::resistor res("res", net, vin, vout, 1e3);
    eln::capacitor cap("cap", net, vout, gnd, 100e-9);
    eln::tdf_vsink probe("probe", net, vout, gnd);
    collector sink("sink");
    tdf::signal<double> s1("s1"), s2("s2"), s3("s3");
    src.out.bind(s1);
    r.in.bind(s1);
    r.out.bind(s2);
    drive.inp.bind(s2);
    probe.outp.bind(s3);
    sink.in.bind(s3);

    ctx.run(500_us);
    const tdf::cluster& c = only_cluster(ctx);
    EXPECT_EQ(c.reschedule_count(), 1U);
    EXPECT_EQ(net.timestep(), de::time(40.0, de::time_unit::us));
    // The h change rebuilt the iteration matrix values in place: numeric
    // refactors advanced, the symbolic analysis from the first factorization
    // was never repeated.
    EXPECT_EQ(net.symbolic_factorizations(), 1U);
    EXPECT_GE(net.factorizations(), 2U);
}

// ------------------------------------------- block x dynamic interaction ----

namespace {

/// Block-capable ramp source (same token stream on both paths) so dynamic
/// clusters exercise real block calls between reschedule barriers.
struct block_ramp_source : tdf::module {
    tdf::out<double> out;
    double next_value = 0.0;

    explicit block_ramp_source(const de::module_name& nm) : tdf::module(nm), out("out") {}
    [[nodiscard]] bool accept_attribute_changes() const override { return true; }
    void processing() override {
        for (unsigned k = 0; k < out.rate(); ++k) out.write(next_value++, k);
    }
    [[nodiscard]] bool has_block_processing() const override { return true; }
    void processing(tdf::block_view& blk) override {
        double* y = blk.out_span(out);
        const std::uint64_t tot = blk.count() * out.rate();
        for (std::uint64_t i = 0; i < tot; ++i) y[i] = next_value++;
    }
};

/// Run src -> retimer -> collector(in rate 4) and return the collected
/// waveform plus diagnostics.  Rate-4 collector input gives the source and
/// retimer repetition 4, so block runs of several firings happen INSIDE each
/// period of the dynamic cluster.
struct block_dynamic_run {
    std::vector<double> samples;
    std::vector<de::time> times;
    std::uint64_t reschedules = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t recompiles = 0;
    std::uint64_t src_block_calls = 0;
    std::uint64_t src_block_firings = 0;
    std::uint64_t src_activations = 0;
    bool fused_empty = false;
};

block_dynamic_run run_block_dynamic(bool block, bool toggle, const de::time& dur) {
    de::simulation_context ctx;
    tdf::registry::of(ctx).set_default_block_execution(block);
    block_ramp_source src("src");
    retimer r("r", 10_us, 3, 5);
    r.toggle = toggle;
    collector sink("sink");
    sink.in.set_rate(4);
    tdf::signal<double> s1("s1"), s2("s2");
    src.out.bind(s1);
    r.in.bind(s1);
    r.out.bind(s2);
    sink.in.bind(s2);
    ctx.run(dur);

    const tdf::cluster& c = only_cluster(ctx);
    block_dynamic_run out;
    out.samples = sink.samples;
    out.times = sink.sample_times;
    out.reschedules = c.reschedule_count();
    out.cache_hits = c.schedule_cache_hits();
    out.recompiles = c.recompile_count();
    out.src_block_calls = src.block_call_count();
    out.src_block_firings = src.block_firing_count();
    out.src_activations = src.activation_count();
    out.fused_empty = c.fused_programs().empty();
    return out;
}

}  // namespace

TEST(block_dynamic, dynamic_cluster_compiles_no_fused_programs) {
    const auto run = run_block_dynamic(true, false, 2000_us);
    // The reschedule barrier: change_attributes() only opens between periods
    // and dynamic clusters never fuse periods, so any in-flight block is
    // flushed before a reschedule can land.
    EXPECT_TRUE(run.fused_empty);
    EXPECT_GE(run.reschedules, 1U);
    // Block calls still happen INSIDE a period (repetition 4 per period).
    EXPECT_GT(run.src_block_calls, 0U);
    EXPECT_GT(run.src_block_firings, run.src_block_calls);
}

TEST(block_dynamic, reschedule_loses_and_duplicates_nothing) {
    const auto blk = run_block_dynamic(true, false, 2000_us);
    const auto base = run_block_dynamic(false, false, 2000_us);
    // The ramp makes loss/duplication visible: samples must be the exact
    // integer sequence 0,1,2,... in both modes, at identical tdf times.
    ASSERT_EQ(blk.samples.size(), base.samples.size());
    for (std::size_t i = 0; i < blk.samples.size(); ++i) {
        ASSERT_EQ(blk.samples[i], static_cast<double>(i)) << "sample " << i;
        ASSERT_EQ(blk.samples[i], base.samples[i]) << "sample " << i;
        ASSERT_EQ(blk.times[i], base.times[i]) << "sample time " << i;
    }
    EXPECT_EQ(blk.reschedules, base.reschedules);
}

TEST(block_dynamic, per_period_toggling_flushes_every_block) {
    // change_attributes() toggles the timestep EVERY period: each period's
    // block run must flush before the barrier, and the stream still counts
    // straight through.
    const auto blk = run_block_dynamic(true, true, 2000_us);
    const auto base = run_block_dynamic(false, true, 2000_us);
    ASSERT_EQ(blk.samples.size(), base.samples.size());
    ASSERT_GT(blk.samples.size(), 20U);
    for (std::size_t i = 0; i < blk.samples.size(); ++i) {
        ASSERT_EQ(blk.samples[i], static_cast<double>(i)) << "sample " << i;
        ASSERT_EQ(blk.times[i], base.times[i]) << "sample time " << i;
    }
    EXPECT_GT(blk.reschedules, 10U);
    // Activations agree with firings: every token fired exactly once.
    EXPECT_EQ(blk.src_activations, base.src_activations);
}

TEST(block_dynamic, schedule_cache_behaves_identically_under_block_mode) {
    const auto blk = run_block_dynamic(true, true, 4000_us);
    const auto base = run_block_dynamic(false, true, 4000_us);
    // Two visited configurations -> two compiles, everything else cache hits;
    // the block path must not change cache behavior.
    EXPECT_EQ(blk.recompiles, base.recompiles);
    EXPECT_EQ(blk.cache_hits, base.cache_hits);
    EXPECT_GT(blk.cache_hits, 5U);
}
