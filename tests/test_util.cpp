// Reporting, tracing, FFT, waveform, and measurement utility tests.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <numbers>

#include "util/fft.hpp"
#include "util/measure.hpp"
#include "util/report.hpp"
#include "util/trace.hpp"
#include "util/waveform.hpp"

namespace util = sca::util;

TEST(report, fatal_throws_with_context) {
    try {
        util::report_fatal("widget", "broke");
        FAIL() << "expected throw";
    } catch (const util::error& e) {
        EXPECT_EQ(e.context(), "widget");
        EXPECT_STREQ(e.what(), "widget: broke");
    }
}

TEST(report, warnings_are_collected) {
    util::clear_reports();
    util::report_warning("a", "one");
    util::report_warning("b", "two");
    ASSERT_EQ(util::warnings().size(), 2U);
    EXPECT_EQ(util::warnings()[1], "b: two");
    util::clear_reports();
    EXPECT_TRUE(util::warnings().empty());
}

TEST(report, require_passes_and_fails) {
    EXPECT_NO_THROW(util::require(true, "x", "y"));
    EXPECT_THROW(util::require(false, "x", "y"), util::error);
}

TEST(fft, roundtrip_identity) {
    std::vector<std::complex<double>> data(64);
    for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = std::complex<double>(std::sin(0.3 * static_cast<double>(i)),
                                       std::cos(0.7 * static_cast<double>(i)));
    }
    auto copy = data;
    util::fft(copy);
    util::fft(copy, /*inverse=*/true);
    for (std::size_t i = 0; i < data.size(); ++i) {
        EXPECT_NEAR(std::abs(copy[i] - data[i]), 0.0, 1e-10);
    }
}

TEST(fft, rejects_non_power_of_two) {
    std::vector<std::complex<double>> data(10);
    EXPECT_THROW(util::fft(data), util::error);
}

TEST(fft, sine_peak_at_expected_bin) {
    const double fs = 1024.0;
    const double f0 = 128.0;
    std::vector<double> sig(1024);
    for (std::size_t i = 0; i < sig.size(); ++i) {
        sig[i] = std::sin(2.0 * std::numbers::pi * f0 * static_cast<double>(i) / fs);
    }
    const auto bins = util::magnitude_spectrum(sig, fs, /*hann=*/false);
    std::size_t peak = 1;
    for (std::size_t k = 2; k < bins.size(); ++k) {
        if (bins[k].magnitude > bins[peak].magnitude) peak = k;
    }
    EXPECT_NEAR(bins[peak].frequency, f0, fs / 1024.0);
    EXPECT_NEAR(bins[peak].magnitude, 1.0, 0.05);
}

TEST(measure, rms_and_mean) {
    EXPECT_DOUBLE_EQ(util::mean({1.0, 3.0}), 2.0);
    EXPECT_NEAR(util::rms({3.0, 4.0}), std::sqrt(12.5), 1e-12);
}

TEST(measure, sinad_of_clean_sine_is_high) {
    const double fs = 8192.0;
    std::vector<double> sig(8192);
    for (std::size_t i = 0; i < sig.size(); ++i) {
        sig[i] = std::sin(2.0 * std::numbers::pi * 1000.0 * static_cast<double>(i) / fs);
    }
    EXPECT_GT(util::sinad_db(sig, fs), 80.0);
}

TEST(measure, sinad_degrades_with_noise) {
    const double fs = 8192.0;
    std::vector<double> clean(8192), noisy(8192);
    unsigned lcg = 12345;
    for (std::size_t i = 0; i < clean.size(); ++i) {
        const double s =
            std::sin(2.0 * std::numbers::pi * 1000.0 * static_cast<double>(i) / fs);
        lcg = lcg * 1664525U + 1013904223U;
        const double n = (static_cast<double>(lcg) / 4294967296.0 - 0.5) * 0.2;
        clean[i] = s;
        noisy[i] = s + n;
    }
    EXPECT_GT(util::sinad_db(clean, fs), util::sinad_db(noisy, fs) + 20.0);
}

TEST(measure, enob_conversion) {
    EXPECT_NEAR(util::enob(74.0), 12.0, 0.01);
}

TEST(measure, first_rising_crossing_interpolates) {
    const std::vector<double> t{0.0, 1.0, 2.0};
    const std::vector<double> x{0.0, 0.0, 1.0};
    EXPECT_NEAR(util::first_rising_crossing(t, x, 0.5), 1.5, 1e-12);
    EXPECT_DOUBLE_EQ(util::first_rising_crossing(t, x, 2.0), -1.0);
}

TEST(measure, settled_checks_tail) {
    std::vector<double> x(100, 1.0);
    x[10] = 5.0;  // early transient does not matter
    EXPECT_TRUE(util::settled(x, 1.0, 0.01, 0.5));
    x[99] = 2.0;
    EXPECT_FALSE(util::settled(x, 1.0, 0.01, 0.5));
}

TEST(waveform, dc_pulse_sine_pwl) {
    const auto d = util::waveform::dc(2.5);
    EXPECT_TRUE(d.is_dc());
    EXPECT_DOUBLE_EQ(d.at(123.0), 2.5);

    const auto s = util::waveform::sine(2.0, 50.0, 1.0);
    EXPECT_NEAR(s.at(0.0), 1.0, 1e-12);
    EXPECT_NEAR(s.at(0.005), 3.0, 1e-9);  // quarter period of 50 Hz

    const auto p = util::waveform::pulse(0.0, 1.0, 1e-3, 1e-4, 1e-4, 4e-4, 1e-3);
    EXPECT_DOUBLE_EQ(p.at(0.0), 0.0);
    EXPECT_NEAR(p.at(1e-3 + 5e-5), 0.5, 1e-9);   // mid-rise
    EXPECT_DOUBLE_EQ(p.at(1e-3 + 3e-4), 1.0);    // plateau
    EXPECT_DOUBLE_EQ(p.at(1e-3 + 9e-4), 0.0);    // low phase

    const auto w = util::waveform::pwl({{0.0, 0.0}, {1.0, 10.0}});
    EXPECT_NEAR(w.at(0.25), 2.5, 1e-12);
    EXPECT_DOUBLE_EQ(w.at(2.0), 10.0);
}

TEST(trace, memory_trace_records_rows) {
    util::memory_trace tr;
    double v = 1.0;
    tr.add_channel("v", [&v] { return v; });
    tr.sample(0.0);
    v = 2.0;
    tr.sample(1.0);
    ASSERT_EQ(tr.times().size(), 2U);
    EXPECT_DOUBLE_EQ(tr.column(0)[0], 1.0);
    EXPECT_DOUBLE_EQ(tr.column(0)[1], 2.0);
}

TEST(trace, cannot_add_channel_after_sampling) {
    util::memory_trace tr;
    tr.add_channel("a", [] { return 0.0; });
    tr.sample(0.0);
    EXPECT_THROW(tr.add_channel("b", [] { return 0.0; }), util::error);
}

TEST(trace, late_channel_error_names_the_channel) {
    util::memory_trace tr;
    tr.add_channel("a", [] { return 0.0; });
    tr.sample(0.0);
    try {
        tr.add_channel("vout_late", [] { return 0.0; });
        FAIL() << "expected late add_channel to throw";
    } catch (const util::error& e) {
        EXPECT_NE(std::string(e.what()).find("vout_late"), std::string::npos)
            << e.what();
    }
}

TEST(trace, tabular_file_writes_header_and_rows) {
    const std::string path = ::testing::TempDir() + "sca_tab_trace.dat";
    {
        util::tabular_trace_file tr(path);
        tr.add_channel("x", [] { return 42.0; });
        tr.sample(0.5);
        tr.close();
    }
    std::ifstream in(path);
    std::string line1, line2;
    std::getline(in, line1);
    std::getline(in, line2);
    EXPECT_EQ(line1, "%time x");
    EXPECT_EQ(line2, "0.5 42");
    std::remove(path.c_str());
}

TEST(trace, vcd_file_emits_value_changes_only) {
    const std::string path = ::testing::TempDir() + "sca_vcd_trace.vcd";
    {
        util::vcd_trace_file tr(path, 1e-9);
        double v = 1.0;
        tr.add_channel("sig", [&v] { return v; });
        tr.sample(0.0);
        tr.sample(1e-9);  // unchanged: no emission
        v = 2.0;
        tr.sample(2e-9);
        tr.close();
    }
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_NE(content.find("$timescale"), std::string::npos);
    EXPECT_NE(content.find("r1 !"), std::string::npos);
    EXPECT_NE(content.find("r2 !"), std::string::npos);
    EXPECT_EQ(content.find("#1\n"), std::string::npos);  // the silent sample
    std::remove(path.c_str());
}
