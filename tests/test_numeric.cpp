// Dense/sparse linear algebra unit and property tests.
#include <gtest/gtest.h>

#include <complex>
#include <random>

#include "numeric/dense.hpp"
#include "numeric/sparse.hpp"
#include "util/report.hpp"

namespace num = sca::num;

TEST(dense_matrix, construction_and_indexing) {
    num::dense_matrix_d m(3, 4, 1.5);
    EXPECT_EQ(m.rows(), 3U);
    EXPECT_EQ(m.cols(), 4U);
    EXPECT_DOUBLE_EQ(m(2, 3), 1.5);
    m(1, 2) = -2.0;
    EXPECT_DOUBLE_EQ(m(1, 2), -2.0);
}

TEST(dense_matrix, multiply) {
    num::dense_matrix_d m(2, 3);
    m(0, 0) = 1.0;
    m(0, 1) = 2.0;
    m(0, 2) = 3.0;
    m(1, 0) = 4.0;
    m(1, 1) = 5.0;
    m(1, 2) = 6.0;
    const auto y = m.multiply({1.0, 1.0, 1.0});
    ASSERT_EQ(y.size(), 2U);
    EXPECT_DOUBLE_EQ(y[0], 6.0);
    EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(dense_matrix, multiply_dimension_mismatch_throws) {
    num::dense_matrix_d m(2, 3);
    EXPECT_THROW((void)m.multiply({1.0, 2.0}), sca::util::error);
}

TEST(dense_lu, solves_small_system) {
    num::dense_matrix_d a(2, 2);
    a(0, 0) = 2.0;
    a(0, 1) = 1.0;
    a(1, 0) = 1.0;
    a(1, 1) = 3.0;
    num::dense_lu_d lu(a);
    const auto x = lu.solve({5.0, 10.0});
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(dense_lu, pivoting_handles_zero_diagonal) {
    num::dense_matrix_d a(2, 2);
    a(0, 0) = 0.0;
    a(0, 1) = 1.0;
    a(1, 0) = 1.0;
    a(1, 1) = 0.0;
    num::dense_lu_d lu(a);
    const auto x = lu.solve({2.0, 3.0});
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(dense_lu, singular_matrix_throws) {
    num::dense_matrix_d a(2, 2);
    a(0, 0) = 1.0;
    a(0, 1) = 2.0;
    a(1, 0) = 2.0;
    a(1, 1) = 4.0;
    EXPECT_THROW(num::dense_lu_d{a}, sca::util::error);
}

TEST(dense_lu, complex_system) {
    using cd = std::complex<double>;
    num::dense_matrix_z a(2, 2);
    a(0, 0) = cd(1.0, 1.0);
    a(0, 1) = cd(0.0, -1.0);
    a(1, 0) = cd(2.0, 0.0);
    a(1, 1) = cd(3.0, 1.0);
    num::dense_lu_z lu(a);
    const std::vector<cd> b{cd(1.0, 0.0), cd(0.0, 1.0)};
    const auto x = lu.solve(b);
    // Verify residual instead of hand-computing the inverse.
    const auto r = a.multiply(x);
    EXPECT_NEAR(std::abs(r[0] - b[0]), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(r[1] - b[1]), 0.0, 1e-12);
}

TEST(sparse_matrix, stamp_accumulates_duplicates) {
    num::sparse_matrix_d m(3);
    m.add(1, 1, 2.0);
    m.add(1, 1, 3.0);
    EXPECT_DOUBLE_EQ(m.get(1, 1), 5.0);
    EXPECT_EQ(m.nonzeros(), 1U);
}

TEST(sparse_matrix, multiply_matches_dense) {
    num::sparse_matrix_d m(3);
    m.add(0, 0, 2.0);
    m.add(0, 2, -1.0);
    m.add(1, 1, 4.0);
    m.add(2, 0, 1.0);
    m.add(2, 2, 5.0);
    const std::vector<double> x{1.0, 2.0, 3.0};
    const auto ys = m.multiply(x);
    const auto yd = m.to_dense().multiply(x);
    for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(ys[i], yd[i], 1e-14);
}

TEST(sparse_matrix, add_scaled_unions_patterns) {
    num::sparse_matrix_d a(2), b(2);
    a.add(0, 0, 1.0);
    b.add(1, 1, 2.0);
    b.add(0, 0, 3.0);
    a.add_scaled(b, 10.0);
    EXPECT_DOUBLE_EQ(a.get(0, 0), 31.0);
    EXPECT_DOUBLE_EQ(a.get(1, 1), 20.0);
}

TEST(sparse_lu, tridiagonal_system) {
    const std::size_t n = 50;
    num::sparse_matrix_d m(n);
    for (std::size_t i = 0; i < n; ++i) {
        m.add(i, i, 2.0);
        if (i > 0) m.add(i, i - 1, -1.0);
        if (i + 1 < n) m.add(i, i + 1, -1.0);
    }
    // Exact solution of -u'' = 0 with u(0)=0, u(n+1)=n+1 is linear.
    std::vector<double> b(n, 0.0);
    b[n - 1] = static_cast<double>(n + 1) - 0.0;  // boundary lift
    num::sparse_lu_d lu(m);
    const auto x = lu.solve(b);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(x[i], static_cast<double>(i + 1), 1e-9);
    }
}

TEST(sparse_lu, requires_pivoting) {
    num::sparse_matrix_d m(2);
    m.add(0, 1, 1.0);
    m.add(1, 0, 1.0);
    num::sparse_lu_d lu(m);
    const auto x = lu.solve({5.0, 7.0});
    EXPECT_NEAR(x[0], 7.0, 1e-12);
    EXPECT_NEAR(x[1], 5.0, 1e-12);
}

TEST(sparse_lu, singular_throws) {
    num::sparse_matrix_d m(2);
    m.add(0, 0, 1.0);
    // Row 1 empty -> singular.
    EXPECT_THROW(num::sparse_lu_d{m}, sca::util::error);
}

TEST(sparse_lu, factor_nonzeros_reports_fill) {
    num::sparse_matrix_d m(3);
    for (std::size_t i = 0; i < 3; ++i) m.add(i, i, 1.0);
    num::sparse_lu_d lu(m);
    EXPECT_GE(lu.factor_nonzeros(), 3U);
}

// --- property sweep: random diagonally dominant systems, sparse vs dense ---

class random_system_property : public ::testing::TestWithParam<int> {};

TEST_P(random_system_property, sparse_and_dense_agree) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()));
    std::uniform_real_distribution<double> val(-1.0, 1.0);
    std::uniform_int_distribution<std::size_t> sz(3, 40);

    const std::size_t n = sz(rng);
    num::sparse_matrix_d m(n);
    for (std::size_t i = 0; i < n; ++i) {
        double row_sum = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            if (i == j) continue;
            if ((rng() & 3U) == 0U) {  // ~25% density
                const double v = val(rng);
                m.add(i, j, v);
                row_sum += std::abs(v);
            }
        }
        m.add(i, i, row_sum + 1.0);  // strict diagonal dominance
    }
    std::vector<double> b(n);
    for (auto& v : b) v = val(rng);

    num::sparse_lu_d slu(m);
    num::dense_lu_d dlu(m.to_dense());
    const auto xs = slu.solve(b);
    const auto xd = dlu.solve(b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(xs[i], xd[i], 1e-9);

    // Residual check against the original operator.
    const auto r = m.multiply(xs);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(r[i], b[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(seeds, random_system_property, ::testing::Range(0, 25));
