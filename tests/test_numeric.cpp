// Dense/sparse linear algebra unit and property tests.
#include <gtest/gtest.h>

#include <complex>
#include <random>

#include "numeric/dense.hpp"
#include "numeric/sparse.hpp"
#include "util/report.hpp"

namespace num = sca::num;

TEST(dense_matrix, construction_and_indexing) {
    num::dense_matrix_d m(3, 4, 1.5);
    EXPECT_EQ(m.rows(), 3U);
    EXPECT_EQ(m.cols(), 4U);
    EXPECT_DOUBLE_EQ(m(2, 3), 1.5);
    m(1, 2) = -2.0;
    EXPECT_DOUBLE_EQ(m(1, 2), -2.0);
}

TEST(dense_matrix, multiply) {
    num::dense_matrix_d m(2, 3);
    m(0, 0) = 1.0;
    m(0, 1) = 2.0;
    m(0, 2) = 3.0;
    m(1, 0) = 4.0;
    m(1, 1) = 5.0;
    m(1, 2) = 6.0;
    const auto y = m.multiply({1.0, 1.0, 1.0});
    ASSERT_EQ(y.size(), 2U);
    EXPECT_DOUBLE_EQ(y[0], 6.0);
    EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(dense_matrix, multiply_dimension_mismatch_throws) {
    num::dense_matrix_d m(2, 3);
    EXPECT_THROW((void)m.multiply({1.0, 2.0}), sca::util::error);
}

TEST(dense_lu, solves_small_system) {
    num::dense_matrix_d a(2, 2);
    a(0, 0) = 2.0;
    a(0, 1) = 1.0;
    a(1, 0) = 1.0;
    a(1, 1) = 3.0;
    num::dense_lu_d lu(a);
    const auto x = lu.solve({5.0, 10.0});
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(dense_lu, pivoting_handles_zero_diagonal) {
    num::dense_matrix_d a(2, 2);
    a(0, 0) = 0.0;
    a(0, 1) = 1.0;
    a(1, 0) = 1.0;
    a(1, 1) = 0.0;
    num::dense_lu_d lu(a);
    const auto x = lu.solve({2.0, 3.0});
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(dense_lu, singular_matrix_throws) {
    num::dense_matrix_d a(2, 2);
    a(0, 0) = 1.0;
    a(0, 1) = 2.0;
    a(1, 0) = 2.0;
    a(1, 1) = 4.0;
    EXPECT_THROW(num::dense_lu_d{a}, sca::util::error);
}

TEST(dense_lu, complex_system) {
    using cd = std::complex<double>;
    num::dense_matrix_z a(2, 2);
    a(0, 0) = cd(1.0, 1.0);
    a(0, 1) = cd(0.0, -1.0);
    a(1, 0) = cd(2.0, 0.0);
    a(1, 1) = cd(3.0, 1.0);
    num::dense_lu_z lu(a);
    const std::vector<cd> b{cd(1.0, 0.0), cd(0.0, 1.0)};
    const auto x = lu.solve(b);
    // Verify residual instead of hand-computing the inverse.
    const auto r = a.multiply(x);
    EXPECT_NEAR(std::abs(r[0] - b[0]), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(r[1] - b[1]), 0.0, 1e-12);
}

TEST(sparse_matrix, stamp_accumulates_duplicates) {
    num::sparse_matrix_d m(3);
    m.add(1, 1, 2.0);
    m.add(1, 1, 3.0);
    EXPECT_DOUBLE_EQ(m.get(1, 1), 5.0);
    EXPECT_EQ(m.nonzeros(), 1U);
}

TEST(sparse_matrix, multiply_matches_dense) {
    num::sparse_matrix_d m(3);
    m.add(0, 0, 2.0);
    m.add(0, 2, -1.0);
    m.add(1, 1, 4.0);
    m.add(2, 0, 1.0);
    m.add(2, 2, 5.0);
    const std::vector<double> x{1.0, 2.0, 3.0};
    const auto ys = m.multiply(x);
    const auto yd = m.to_dense().multiply(x);
    for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(ys[i], yd[i], 1e-14);
}

TEST(sparse_matrix, add_scaled_unions_patterns) {
    num::sparse_matrix_d a(2), b(2);
    a.add(0, 0, 1.0);
    b.add(1, 1, 2.0);
    b.add(0, 0, 3.0);
    a.add_scaled(b, 10.0);
    EXPECT_DOUBLE_EQ(a.get(0, 0), 31.0);
    EXPECT_DOUBLE_EQ(a.get(1, 1), 20.0);
}

TEST(sparse_lu, tridiagonal_system) {
    const std::size_t n = 50;
    num::sparse_matrix_d m(n);
    for (std::size_t i = 0; i < n; ++i) {
        m.add(i, i, 2.0);
        if (i > 0) m.add(i, i - 1, -1.0);
        if (i + 1 < n) m.add(i, i + 1, -1.0);
    }
    // Exact solution of -u'' = 0 with u(0)=0, u(n+1)=n+1 is linear.
    std::vector<double> b(n, 0.0);
    b[n - 1] = static_cast<double>(n + 1) - 0.0;  // boundary lift
    num::sparse_lu_d lu(m);
    const auto x = lu.solve(b);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(x[i], static_cast<double>(i + 1), 1e-9);
    }
}

TEST(sparse_lu, requires_pivoting) {
    num::sparse_matrix_d m(2);
    m.add(0, 1, 1.0);
    m.add(1, 0, 1.0);
    num::sparse_lu_d lu(m);
    const auto x = lu.solve({5.0, 7.0});
    EXPECT_NEAR(x[0], 7.0, 1e-12);
    EXPECT_NEAR(x[1], 5.0, 1e-12);
}

TEST(sparse_lu, singular_throws) {
    num::sparse_matrix_d m(2);
    m.add(0, 0, 1.0);
    // Row 1 empty -> singular.
    EXPECT_THROW(num::sparse_lu_d{m}, sca::util::error);
}

TEST(sparse_lu, factor_nonzeros_reports_fill) {
    num::sparse_matrix_d m(3);
    for (std::size_t i = 0; i < 3; ++i) m.add(i, i, 1.0);
    num::sparse_lu_d lu(m);
    EXPECT_GE(lu.factor_nonzeros(), 3U);
}

// --- symbolic/numeric split ---

TEST(sparse_matrix, pattern_version_tracks_structure_not_values) {
    num::sparse_matrix_d m(3);
    const auto v0 = m.pattern_version();
    m.add(0, 0, 1.0);
    const auto v1 = m.pattern_version();
    EXPECT_NE(v0, v1);
    m.add(0, 0, 2.0);  // duplicate sum: no structural change
    EXPECT_EQ(m.pattern_version(), v1);
    m.set_entry(0, 0, 5.0);  // value rewrite: no structural change
    EXPECT_EQ(m.pattern_version(), v1);
    EXPECT_DOUBLE_EQ(m.get(0, 0), 5.0);
    m.zero_values();
    EXPECT_EQ(m.pattern_version(), v1);
    EXPECT_DOUBLE_EQ(m.get(0, 0), 0.0);
    m.add(1, 2, 1.0);  // new entry: structural change
    EXPECT_NE(m.pattern_version(), v1);
}

TEST(sparse_matrix, set_entry_outside_pattern_throws) {
    num::sparse_matrix_d m(2);
    m.add(0, 0, 1.0);
    EXPECT_THROW(m.set_entry(0, 1, 2.0), sca::util::error);
}

TEST(sparse_lu, refactor_matches_full_factor_bit_for_bit) {
    // MNA-shaped system with a voltage-source style zero diagonal (forces a
    // pivot swap) and a conductance whose value will change.
    auto build = [](double g) {
        num::sparse_matrix_d m(4);
        m.add(0, 0, g + 0.1);
        m.add(0, 1, -g);
        m.add(1, 0, -g);
        m.add(1, 1, g + 0.5);
        m.add(1, 3, 1.0);  // branch current into KCL
        m.add(3, 1, 1.0);  // branch voltage constraint
        m.add(2, 2, 2.0);
        m.add(2, 1, -0.25);
        return m;
    };
    num::sparse_matrix_d m = build(1.0);
    num::sparse_lu_d lu(m);
    EXPECT_EQ(lu.symbolic_count(), 1U);
    EXPECT_EQ(lu.numeric_count(), 1U);

    // Values-only change in place, numeric refactor.
    m.zero_values();
    m.add_scaled(build(3.5), 1.0);
    ASSERT_TRUE(lu.refactor(m));
    EXPECT_EQ(lu.symbolic_count(), 1U);
    EXPECT_EQ(lu.numeric_count(), 2U);
    const std::vector<double> b{1.0, -2.0, 0.5, 0.25};
    const auto x_re = lu.solve(b);

    // Reference: full factorization of the same values from scratch.
    num::sparse_lu_d fresh(build(3.5));
    const auto x_full = fresh.solve(b);
    ASSERT_EQ(x_re.size(), x_full.size());
    for (std::size_t i = 0; i < x_re.size(); ++i) {
        EXPECT_EQ(x_re[i], x_full[i]);  // bit-identical, not just close
    }
}

TEST(sparse_lu, refactor_rejects_pattern_change) {
    num::sparse_matrix_d m(2);
    m.add(0, 0, 2.0);
    m.add(1, 1, 3.0);
    num::sparse_lu_d lu(m);
    m.add(0, 1, 1.0);  // structural change
    EXPECT_FALSE(lu.refactor(m));
    EXPECT_FALSE(lu.factored());
    lu.factor(m);  // recovers with a fresh symbolic pass
    EXPECT_EQ(lu.symbolic_count(), 2U);
    const auto x = lu.solve({2.0, 3.0});
    EXPECT_NEAR(x[0], 0.5, 1e-12);
    EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(sparse_lu, refactor_rejects_other_matrix) {
    num::sparse_matrix_d m1(2);
    m1.add(0, 0, 1.0);
    m1.add(1, 1, 1.0);
    num::sparse_matrix_d m2(2);
    m2.add(0, 0, 1.0);
    m2.add(1, 1, 1.0);
    num::sparse_lu_d lu(m1);
    EXPECT_FALSE(lu.refactor(m2));  // same shape, different pattern token
}

TEST(sparse_lu, refactor_bails_on_vanishing_pivot) {
    num::sparse_matrix_d m(2);
    m.add(0, 0, 1.0);
    m.add(0, 1, 1.0);
    m.add(1, 0, 1.0);
    m.add(1, 1, 2.0);
    num::sparse_lu_d lu(m);
    // Make the second pivot exactly cancel: 2 - 1*2/1 ... set values so the
    // (1,1) elimination result is 0.
    m.zero_values();
    m.add_scaled([&] {
        num::sparse_matrix_d v(2);
        v.add(0, 0, 1.0);
        v.add(0, 1, 2.0);
        v.add(1, 0, 1.0);
        v.add(1, 1, 2.0);  // u22 = 2 - 1*2 = 0
        return v;
    }(), 1.0);
    EXPECT_FALSE(lu.refactor(m));
    EXPECT_FALSE(lu.factored());
}

TEST(sparse_lu, refactor_keeps_cancelled_fill_positions) {
    // An entry that cancels to exactly zero during the first factorization
    // must stay in the cached pattern: with different values it is nonzero
    // again and the refactor has to land it correctly.
    auto build = [](double a10) {
        num::sparse_matrix_d m(3);
        m.add(0, 0, 1.0);
        m.add(0, 1, 1.0);
        m.add(1, 0, a10);
        m.add(1, 1, 1.0);  // a10 == 1 makes the (1,1) update cancel exactly
        m.add(1, 2, 1.0);
        m.add(2, 1, 1.0);
        m.add(2, 2, 4.0);
        return m;
    };
    num::sparse_matrix_d m = build(1.0);
    num::sparse_lu_d lu(m);
    m.zero_values();
    m.add_scaled(build(0.5), 1.0);
    if (lu.refactor(m)) {
        const std::vector<double> b{1.0, 2.0, 3.0};
        const auto x = lu.solve(b);
        num::dense_lu_d ref(build(0.5).to_dense());
        const auto xr = ref.solve(b);
        for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], xr[i], 1e-12);
    }
}

TEST(sparse_lu, repeated_refactor_matches_dense_reference) {
    // Random diagonally dominant pattern; rewrite values 10 times and check
    // each refactored solve against a dense factorization of the same values.
    std::mt19937 rng(1234);
    std::uniform_real_distribution<double> val(0.5, 2.0);
    const std::size_t n = 25;
    num::sparse_matrix_d m(n);
    std::vector<std::pair<std::size_t, std::size_t>> off;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            if (i != j && (rng() & 7U) == 0U) off.emplace_back(i, j);
        }
    }
    auto fill = [&](num::sparse_matrix_d& t) {
        std::mt19937 vals(static_cast<unsigned>(rng()));
        for (auto [i, j] : off) t.add(i, j, val(vals) * 0.1);
        for (std::size_t i = 0; i < n; ++i) t.add(i, i, 10.0 + val(vals));
    };
    fill(m);
    num::sparse_lu_d lu(m);
    std::vector<double> b(n, 1.0);
    for (int round = 0; round < 10; ++round) {
        m.zero_values();
        fill(m);
        ASSERT_TRUE(lu.refactor(m));
        const auto xs = lu.solve(b);
        num::dense_lu_d dlu(m.to_dense());
        const auto xd = dlu.solve(b);
        for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(xs[i], xd[i], 1e-9);
    }
    EXPECT_EQ(lu.symbolic_count(), 1U);
    EXPECT_EQ(lu.numeric_count(), 11U);
}

// --- property sweep: random diagonally dominant systems, sparse vs dense ---

class random_system_property : public ::testing::TestWithParam<int> {};

TEST_P(random_system_property, sparse_and_dense_agree) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()));
    std::uniform_real_distribution<double> val(-1.0, 1.0);
    std::uniform_int_distribution<std::size_t> sz(3, 40);

    const std::size_t n = sz(rng);
    num::sparse_matrix_d m(n);
    for (std::size_t i = 0; i < n; ++i) {
        double row_sum = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            if (i == j) continue;
            if ((rng() & 3U) == 0U) {  // ~25% density
                const double v = val(rng);
                m.add(i, j, v);
                row_sum += std::abs(v);
            }
        }
        m.add(i, i, row_sum + 1.0);  // strict diagonal dominance
    }
    std::vector<double> b(n);
    for (auto& v : b) v = val(rng);

    num::sparse_lu_d slu(m);
    num::dense_lu_d dlu(m.to_dense());
    const auto xs = slu.solve(b);
    const auto xd = dlu.solve(b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(xs[i], xd[i], 1e-9);

    // Residual check against the original operator.
    const auto r = m.multiply(xs);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(r[i], b[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(seeds, random_system_property, ::testing::Range(0, 25));
