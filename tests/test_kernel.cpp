// Discrete-event kernel tests: time, events, delta cycles, signals, ports,
// processes, module hierarchy, clocks.
#include <gtest/gtest.h>

#include "kernel/clock.hpp"
#include "kernel/context.hpp"
#include "kernel/event.hpp"
#include "kernel/module.hpp"
#include "kernel/signal.hpp"
#include "util/report.hpp"

namespace de = sca::de;
using namespace sca::de::literals;
using de::simulation_context;
using de::event;
using de::module;
using de::module_name;
using de::in;
using de::time_unit;

TEST(de_time, unit_conversions_and_arithmetic) {
    EXPECT_EQ(de::time(1.0, time_unit::ns).value_fs(), 1'000'000);
    EXPECT_EQ((1_us).value_fs(), 1'000'000'000);
    EXPECT_EQ((2_ms + 500_us).value_fs(), de::time(2.5, time_unit::ms).value_fs());
    EXPECT_LT(1_ns, 1_us);
    EXPECT_EQ((10_ns) / (2_ns), 5);
    EXPECT_DOUBLE_EQ((1_ms).to_seconds(), 1e-3);
    EXPECT_EQ((3_ns) * 4, 12_ns);
}

TEST(de_time, printing_picks_best_unit) {
    EXPECT_EQ((5_us).to_string(), "5 us");
    EXPECT_EQ((1500_ps).to_string(), "1500 ps");
    EXPECT_EQ(de::time::zero().to_string(), "0 s");
}

TEST(context, requires_current_context) {
    // No context: object construction must fail cleanly.
    EXPECT_THROW(event e("ev"), sca::util::error);
}

namespace {

/// Counts activations; sensitivity configured by each test.
struct counter_module : module {
    in<bool> clk_in;
    int count = 0;

    explicit counter_module(const module_name& nm) : module(nm), clk_in("clk_in") {
        declare_method("count", [this] { ++count; }).sensitive(clk_in).dont_initialize();
    }
};

}  // namespace

TEST(scheduler, clock_drives_process) {
    simulation_context ctx;
    de::clock clk("clk", 10_ns);
    counter_module mod("mod");
    mod.clk_in.bind(clk.sig());
    ctx.run(100_ns);
    // Edges at 0,5,10,...: value-change events = 2 per period, 21 edges in
    // [0,100] inclusive.
    EXPECT_EQ(mod.count, 21);
}

TEST(scheduler, posedge_only_counting) {
    simulation_context ctx;
    de::clock clk("clk", 10_ns);
    int rises = 0;
    ctx.register_method("rise", [&rises] { ++rises; }).dont_initialize();
    // Rebind sensitivity through the event directly.
    auto& proc = ctx.register_method("rise2", [&rises] { ++rises; });
    proc.dont_initialize();
    proc.make_sensitive(clk.posedge_event());
    ctx.run(95_ns);
    EXPECT_EQ(rises, 10);  // posedges at 0,10,...,90
}

TEST(event, timed_notification_fires_once) {
    simulation_context ctx;
    event ev("ev");
    int fired = 0;
    auto& p = ctx.register_method("watch", [&fired] { ++fired; });
    p.dont_initialize();
    p.make_sensitive(ev);
    ev.notify(5_ns);
    ctx.run(20_ns);
    EXPECT_EQ(fired, 1);
}

TEST(event, earlier_notification_wins) {
    simulation_context ctx;
    event ev("ev");
    std::vector<double> stamps;
    auto& p = ctx.register_method("watch", [&] { stamps.push_back(ctx.now().to_seconds()); });
    p.dont_initialize();
    p.make_sensitive(ev);
    ev.notify(10_ns);
    ev.notify(3_ns);  // earlier: replaces the 10 ns one
    ctx.run(20_ns);
    ASSERT_EQ(stamps.size(), 1U);
    EXPECT_DOUBLE_EQ(stamps[0], 3e-9);
}

TEST(event, later_notification_is_discarded) {
    simulation_context ctx;
    event ev("ev");
    int fired = 0;
    auto& p = ctx.register_method("watch", [&fired] { ++fired; });
    p.dont_initialize();
    p.make_sensitive(ev);
    ev.notify(3_ns);
    ev.notify(10_ns);  // ignored: a 3 ns notification is pending
    ctx.run(20_ns);
    EXPECT_EQ(fired, 1);
}

TEST(event, cancel_stops_pending) {
    simulation_context ctx;
    event ev("ev");
    int fired = 0;
    auto& p = ctx.register_method("watch", [&fired] { ++fired; });
    p.dont_initialize();
    p.make_sensitive(ev);
    ev.notify(5_ns);
    ev.cancel();
    ctx.run(20_ns);
    EXPECT_EQ(fired, 0);
}

TEST(signal, update_semantics_are_deferred) {
    simulation_context ctx;
    de::signal<int> sig("sig", 1);
    int seen_during_eval = -1;
    auto& writer = ctx.register_method("writer", [&] {
        sig.write(42);
        seen_during_eval = sig.read();  // old value: update is deferred
    });
    (void)writer;
    ctx.run(1_ns);
    EXPECT_EQ(seen_during_eval, 1);
    EXPECT_EQ(sig.read(), 42);
}

TEST(signal, value_changed_fires_only_on_change) {
    simulation_context ctx;
    de::signal<int> sig("sig", 7);
    int changes = 0;
    auto& p = ctx.register_method("watch", [&changes] { ++changes; });
    p.dont_initialize();
    p.make_sensitive(sig.value_changed_event());
    auto& w = ctx.register_method("write", [&] {
        sig.write(7);  // same value: no event
        ctx.next_trigger(5_ns);
    });
    (void)w;
    ctx.run(2_ns);
    EXPECT_EQ(changes, 0);
}

TEST(signal, delta_cycle_counts) {
    simulation_context ctx;
    de::signal<int> a("a", 0);
    de::signal<int> b("b", 0);
    // b follows a one delta later.
    auto& follow = ctx.register_method("follow", [&] { b.write(a.read()); });
    follow.make_sensitive(a.value_changed_event());
    auto& stim = ctx.register_method("stim", [&] { a.write(1); });
    stim.dont_initialize();
    event kick("kick");
    stim.make_sensitive(kick);
    kick.notify(1_ns);
    ctx.run(2_ns);
    EXPECT_EQ(b.read(), 1);
}

namespace {

struct child_module : module {
    de::signal<int> s;
    explicit child_module(const module_name& nm) : module(nm), s("s") {}
};

struct parent_module : module {
    child_module child;
    explicit parent_module(const module_name& nm) : module(nm), child("child") {}
};

}  // namespace

TEST(hierarchy, names_are_hierarchical) {
    simulation_context ctx;
    parent_module top("top");
    EXPECT_EQ(top.name(), "top");
    EXPECT_EQ(top.child.name(), "top.child");
    EXPECT_EQ(top.child.s.name(), "top.child.s");
    EXPECT_EQ(ctx.find_object("top.child.s"), &top.child.s);
    EXPECT_EQ(top.child.parent(), &top);
}

TEST(hierarchy, port_to_port_binding_resolves) {
    simulation_context ctx;
    de::signal<double> sig("sig", 3.25);
    in<double> outer("outer");
    in<double> inner("inner");
    outer.bind(sig);
    inner.bind(outer);  // hierarchical chain
    ctx.elaborate();
    EXPECT_DOUBLE_EQ(inner.read(), 3.25);
}

TEST(hierarchy, unbound_port_fails_elaboration) {
    simulation_context ctx;
    in<double> dangling("dangling");
    EXPECT_THROW(ctx.elaborate(), sca::util::error);
}

TEST(hierarchy, optional_port_may_stay_unbound) {
    simulation_context ctx;
    in<double> maybe("maybe");
    maybe.set_optional();
    EXPECT_NO_THROW(ctx.elaborate());
}

TEST(process, next_trigger_timeout_repeats) {
    simulation_context ctx;
    int ticks = 0;
    ctx.register_method("ticker", [&] {
        ++ticks;
        ctx.next_trigger(10_ns);
    });
    ctx.run(95_ns);
    EXPECT_EQ(ticks, 10);  // t = 0, 10, ..., 90
}

TEST(process, dynamic_trigger_overrides_static_once) {
    simulation_context ctx;
    de::clock clk("clk", 10_ns);
    int count = 0;
    bool first = true;
    auto& p = ctx.register_method("mixed", [&] {
        ++count;
        if (first) {
            first = false;
            ctx.next_trigger(35_ns);  // skip several de::clock edges
        }
    });
    p.make_sensitive(clk.posedge_event());
    ctx.run(100_ns);
    // Runs at t=0 (init), then 35ns (dynamic), then every posedge 40..100.
    EXPECT_EQ(count, 2 + 7);
}

TEST(clock_gen, duty_cycle_and_start) {
    simulation_context ctx;
    de::clock clk("clk", 10_ns, 0.3, 5_ns, true);
    EXPECT_FALSE(clk.read());
    ctx.run(5_ns);
    EXPECT_TRUE(clk.read());  // first rising edge at 5 ns
    ctx.run(3_ns);            // 8 ns: high phase is 3 ns
    EXPECT_FALSE(clk.read());
    ctx.run(7_ns);  // 15 ns: next rising edge
    EXPECT_TRUE(clk.read());
}

TEST(clock_gen, rejects_bad_parameters) {
    simulation_context ctx;
    EXPECT_THROW(de::clock("bad", de::time::zero()), sca::util::error);
    EXPECT_THROW(de::clock("bad2", 10_ns, 1.5), sca::util::error);
}

TEST(scheduler, activation_counts_are_tracked) {
    simulation_context ctx;
    auto& p = ctx.register_method("tick", [&] { ctx.next_trigger(1_ns); });
    ctx.run(10_ns);
    EXPECT_EQ(p.activation_count(), 11U);
}

TEST(context, run_to_completion_drains_all_events) {
    simulation_context ctx;
    event ev("ev");
    int fired = 0;
    auto& p = ctx.register_method("watch", [&fired] { ++fired; });
    p.dont_initialize();
    p.make_sensitive(ev);
    ev.notify(1_ms);
    ctx.run_to_completion();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(ctx.now(), 1_ms);
}

TEST(context, two_contexts_alive_at_once_stay_isolated) {
    // The multi-run engine keeps several simulations alive in one process;
    // the kernel contract is that contexts interleaved on one thread never
    // observe each other's objects, clocks, or time.
    simulation_context ctx_a;
    de::clock clk_a("clk", 10_ns);
    counter_module mod_a("mod");
    mod_a.clk_in.bind(clk_a.sig());

    simulation_context ctx_b;  // now current: objects below land in B
    de::clock clk_b("clk", 20_ns);
    counter_module mod_b("mod");
    mod_b.clk_in.bind(clk_b.sig());

    // Same hierarchical names resolve per context, to different objects.
    EXPECT_EQ(ctx_a.find_object("mod"), &mod_a);
    EXPECT_EQ(ctx_b.find_object("mod"), &mod_b);
    EXPECT_NE(ctx_a.find_object("clk"), ctx_b.find_object("clk"));

    // Interleave runs: each context advances its own scheduler only.
    ctx_a.make_current();
    ctx_a.run(100_ns);
    ctx_b.make_current();
    ctx_b.run(100_ns);
    ctx_a.make_current();
    ctx_a.run(100_ns);

    EXPECT_EQ(ctx_a.now(), 200_ns);
    EXPECT_EQ(ctx_b.now(), 100_ns);
    // A saw 2 edges per 10 ns period over 200 ns (+1 for the t=0 edge);
    // B half the rate over half the time.
    EXPECT_EQ(mod_a.count, 41);
    EXPECT_EQ(mod_b.count, 11);
}
