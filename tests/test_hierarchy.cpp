// Hierarchical composition: make_child object trees, TDF port forwarding and
// connect(), ELN terminals and subcircuits — plus the elaboration-time
// diagnostics and the determinism contracts (flat vs hierarchical model
// construction is bit-identical; composites inside a parallel run_set match
// sequential execution exactly).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "core/run_set.hpp"
#include "core/scenario.hpp"
#include "eln/converter.hpp"
#include "eln/network.hpp"
#include "eln/primitives.hpp"
#include "eln/sources.hpp"
#include "eln/subcircuit.hpp"
#include "lib/amplifier.hpp"
#include "lib/converters.hpp"
#include "lib/filters.hpp"
#include "lib/mixer.hpp"
#include "lib/oscillator.hpp"
#include "lib/pipeline_adc.hpp"
#include "lib/pll.hpp"
#include "lib/sigma_delta.hpp"
#include "tdf/cluster.hpp"
#include "tdf/connect.hpp"
#include "tdf/port.hpp"
#include "util/report.hpp"

namespace core = sca::core;
namespace de = sca::de;
namespace tdf = sca::tdf;
namespace eln = sca::eln;
namespace lib = sca::lib;
using namespace sca::de::literals;

namespace {

struct scaler : tdf::module {
    tdf::in<double> x;
    tdf::out<double> y;
    double k;
    scaler(const de::module_name& nm, double gain) : tdf::module(nm), x("x"), y("y"),
                                                     k(gain) {}
    void processing() override { y.write(k * x.read()); }
};

struct ramp_src : tdf::module {
    tdf::out<double> out;
    double v = 0.0;
    explicit ramp_src(const de::module_name& nm) : tdf::module(nm), out("out") {}
    void set_attributes() override { set_timestep(10.0, de::time_unit::us); }
    void processing() override {
        out.write(v);
        v += 0.125;
    }
};

struct collector : tdf::module {
    tdf::in<double> in;
    std::vector<double> got;
    explicit collector(const de::module_name& nm) : tdf::module(nm), in("in") {}
    void processing() override { got.push_back(in.read()); }
};

/// One-level composite: two scalers in series behind forwarded ports.
struct gain_chain : tdf::composite {
    tdf::in<double> x;
    tdf::out<double> y;
    scaler* a = nullptr;
    scaler* b = nullptr;
    gain_chain(const de::module_name& nm, double k1, double k2)
        : tdf::composite(nm), x("x"), y("y") {
        a = &make_child<scaler>("a", k1);
        b = &make_child<scaler>("b", k2);
        a->x.bind(x);
        connect(a->y, b->x);
        b->y.bind(y);
    }
};

/// Two-level composite: a gain_chain nested inside another composite, with
/// the ports forwarded through both levels.
struct rx_stack : tdf::composite {
    tdf::in<double> x;
    tdf::out<double> y;
    gain_chain* filter = nullptr;
    rx_stack(const de::module_name& nm, double k1, double k2)
        : tdf::composite(nm), x("x"), y("y") {
        filter = &make_child<gain_chain>("filter", k1, k2);
        filter->x.bind(x);
        filter->y.bind(y);
    }
};

}  // namespace

// ----------------------------------------------------------- object tree ---

TEST(hierarchy, path_names_round_trip_through_find_object) {
    de::simulation_context ctx;
    struct top_mod : tdf::composite {
        explicit top_mod(const de::module_name& nm) : tdf::composite(nm) {
            make_child<rx_stack>("rx", 2.0, 3.0);
        }
    } top("top");

    for (const char* path :
         {"top", "top.rx", "top.rx.filter", "top.rx.filter.a", "top.rx.filter.a.x",
          "top.rx.filter.b.y", "top.rx.filter.a_y"}) {
        de::object* o = ctx.find_object(path);
        ASSERT_NE(o, nullptr) << path;
        EXPECT_EQ(o->name(), path);
    }
    de::object* filter = ctx.find_object("top.rx.filter");
    EXPECT_STREQ(filter->kind(), "tdf_composite");
    EXPECT_EQ(filter->parent(), ctx.find_object("top.rx"));
    // The interior wire created by connect() nests under its composite.
    EXPECT_STREQ(ctx.find_object("top.rx.filter.a_y")->kind(), "tdf_signal");
    EXPECT_EQ(ctx.find_object("does.not.exist"), nullptr);
}

TEST(hierarchy, make_child_can_grow_a_module_from_outside) {
    de::simulation_context ctx;
    struct group : tdf::composite {
        explicit group(const de::module_name& nm) : tdf::composite(nm) {}
    } g("g");
    auto& s = g.make_child<scaler>("late", 4.0);
    EXPECT_EQ(s.name(), "g.late");
    EXPECT_EQ(g.owned_children(), 1U);
    EXPECT_EQ(ctx.find_object("g.late"), &s);
}

TEST(hierarchy, children_are_destroyed_in_reverse_construction_order) {
    std::vector<int> log;
    struct witness : de::module {
        std::vector<int>* log_;
        int id_;
        witness(const de::module_name& nm, std::vector<int>* log, int id)
            : de::module(nm), log_(log), id_(id) {}
        ~witness() override { log_->push_back(id_); }
    };
    {
        de::simulation_context ctx;
        struct parent_mod : tdf::composite {
            parent_mod(const de::module_name& nm, std::vector<int>* log)
                : tdf::composite(nm) {
                make_child<witness>("w1", log, 1);
                make_child<witness>("w2", log, 2);
                make_child<witness>("w3", log, 3);
            }
        } p("p", &log);
    }
    ASSERT_EQ(log.size(), 3U);
    EXPECT_EQ(log, (std::vector<int>{3, 2, 1}));
}

// ------------------------------------------------- TDF forwarding + wiring --

TEST(hierarchy, two_level_forwarding_resolves_and_schedules) {
    de::simulation_context ctx;
    ramp_src src("src");
    rx_stack rx("rx", 2.0, 3.0);
    collector sink("sink");
    connect(src.out, rx.x);
    connect(rx.y, sink.in);

    ctx.run(100_us);
    ASSERT_EQ(sink.got.size(), 11U);
    for (std::size_t i = 0; i < sink.got.size(); ++i) {
        EXPECT_DOUBLE_EQ(sink.got[i], 6.0 * 0.125 * static_cast<double>(i));
    }
    // One cluster holds the leaf modules; the composites are not scheduled.
    const auto& clusters = tdf::registry::of(ctx).clusters();
    ASSERT_EQ(clusters.size(), 1U);
    EXPECT_EQ(clusters[0]->modules().size(), 4U);  // src, a, b, sink
    // Forwarded ports are aliases of the terminal signals.
    EXPECT_EQ(rx.x.bound_signal(), src.out.bound_signal());
    EXPECT_EQ(rx.filter->x.bound_signal(), src.out.bound_signal());
}

TEST(hierarchy, connect_fans_out_on_the_writers_signal) {
    de::simulation_context ctx;
    ramp_src src("src");
    collector c1("c1"), c2("c2");
    auto& w1 = tdf::connect(src.out, c1.in);
    auto& w2 = tdf::connect(src.out, c2.in);
    EXPECT_EQ(&w1, &w2);
    ctx.run(50_us);
    EXPECT_EQ(c1.got, c2.got);
    ASSERT_FALSE(c1.got.empty());
}

TEST(hierarchy, connect_rejects_a_name_on_the_fan_out_path) {
    de::simulation_context ctx;
    ramp_src src("src");
    collector c1("c1"), c2("c2");
    tdf::connect(src.out, c1.in, "first_wire");
    // The wire already exists; a second name cannot be applied silently.
    EXPECT_THROW(tdf::connect(src.out, c2.in, "second_wire"), sca::util::error);
}

TEST(hierarchy, destroyed_components_deregister_their_terminals) {
    de::simulation_context ctx;
    eln::network net("net");
    net.set_timestep(10.0, de::time_unit::us);
    auto gnd = net.ground();
    auto vin = net.create_node("vin");
    auto vout = net.create_node("vout");
    {
        // A component that dies before elaboration must not leave dangling
        // terminal registrations behind (exercised under ASan in CI).
        eln::resistor scratch("scratch", net, 1e3);
        scratch.p(vin);
        scratch.n(vout);
    }
    eln::vsource vs("vs", net, vin, gnd, eln::waveform::dc(1.0));
    eln::resistor r("r", net, vin, vout, 1e3);
    eln::capacitor c("c", net, vout, gnd, 100e-9);
    ctx.run(1_ms);
    EXPECT_NEAR(net.voltage(vout), 1.0, 1e-3);
}

// ------------------------------------------------------------ diagnostics ---

TEST(hierarchy, unbound_tdf_port_reports_full_path_at_elaboration) {
    de::simulation_context ctx;
    ramp_src src("src");
    collector sink("sink");
    connect(src.out, sink.in);        // a valid cluster on the side
    gain_chain amp("amp", 2.0, 3.0);  // amp.x / amp.y never bound externally
    try {
        ctx.elaborate();
        FAIL() << "expected an unbound-port diagnostic";
    } catch (const sca::util::error& e) {
        EXPECT_NE(std::string(e.what()).find("amp."), std::string::npos) << e.what();
        EXPECT_NE(std::string(e.what()).find("unbound TDF port"), std::string::npos);
    }
}

TEST(hierarchy, genuinely_unbound_port_names_itself) {
    de::simulation_context ctx;
    ramp_src src("src");
    collector sink("sink");  // sink.in never bound
    tdf::signal<double> s("s");
    src.out.bind(s);
    try {
        ctx.elaborate();
        FAIL() << "expected an unbound-port diagnostic";
    } catch (const sca::util::error& e) {
        EXPECT_NE(std::string(e.what()).find("sink.in"), std::string::npos) << e.what();
        EXPECT_NE(std::string(e.what()).find("unbound TDF port"), std::string::npos);
    }
}

TEST(hierarchy, double_bound_input_is_rejected_with_path) {
    de::simulation_context ctx;
    collector sink("sink");
    tdf::signal<double> s1("s1"), s2("s2");
    sink.in.bind(s1);
    try {
        sink.in.bind(s2);
        FAIL() << "expected a double-binding diagnostic";
    } catch (const sca::util::error& e) {
        EXPECT_NE(std::string(e.what()).find("sink.in"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("already bound"), std::string::npos);
    }
}

TEST(hierarchy, unbound_eln_terminal_reports_full_path) {
    de::simulation_context ctx;
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto vin = net.create_node("vin");
    eln::rc_lowpass rc("rc1", net, 1e3, 1e-9);
    rc.in(vin);
    rc.ref(gnd);  // rc.out left unbound
    try {
        ctx.elaborate();
        FAIL() << "expected an unbound-terminal diagnostic";
    } catch (const sca::util::error& e) {
        EXPECT_NE(std::string(e.what()).find("rc1.out"), std::string::npos) << e.what();
        EXPECT_NE(std::string(e.what()).find("unbound ELN terminal"), std::string::npos);
    }
}

TEST(hierarchy, double_bound_terminal_is_rejected) {
    de::simulation_context ctx;
    eln::network net("net");
    auto a = net.create_node("a");
    auto b = net.create_node("b");
    eln::resistor r("r", net, 1e3);
    r.p(a);
    EXPECT_THROW(r.p(b), sca::util::error);
}

TEST(hierarchy, duplicate_node_names_are_rejected) {
    de::simulation_context ctx;
    eln::network net("net");
    (void)net.create_node("x");
    try {
        (void)net.create_node("x");
        FAIL() << "expected a duplicate-node diagnostic";
    } catch (const sca::util::error& e) {
        EXPECT_NE(std::string(e.what()).find("duplicate node name 'x'"),
                  std::string::npos);
    }
}

// ------------------------------------------------------- ELN subcircuits ----

TEST(hierarchy, subcircuits_instantiate_n_times_with_unique_internals) {
    de::simulation_context ctx;
    eln::network net("net");
    net.set_timestep(10.0, de::time_unit::us);
    auto gnd = net.ground();
    auto vin = net.create_node("vin");
    auto mid = net.create_node("mid");
    auto vout = net.create_node("vout");
    eln::vsource vs("vs", net, vin, gnd, eln::waveform::dc(1.0));
    // Two instances of the same ladder block: their internal tap nodes are
    // auto-prefixed with the instance path, so nothing collides.
    eln::rc_ladder l1("l1", net, 4, 1e3, 1e-9);
    eln::rc_ladder l2("l2", net, 4, 1e3, 1e-9);
    l1.a(vin);
    l1.b(mid);
    l1.ref(gnd);
    l2.a(mid);
    l2.b(vout);
    l2.ref(gnd);

    EXPECT_NE(ctx.find_object("l1.r0"), nullptr);
    EXPECT_NE(ctx.find_object("l2.r0"), nullptr);
    EXPECT_NE(ctx.find_object("l1.r0"), ctx.find_object("l2.r0"));

    ctx.run(5_ms);
    // DC steady state: no current flows, the full source voltage appears at
    // the far end of the ladder chain.
    EXPECT_NEAR(net.voltage(vout), 1.0, 1e-3);
}

TEST(hierarchy, resistive_divider_divides) {
    de::simulation_context ctx;
    eln::network net("net");
    net.set_timestep(10.0, de::time_unit::us);
    auto gnd = net.ground();
    auto vin = net.create_node("vin");
    auto vout = net.create_node("vout");
    eln::vsource vs("vs", net, vin, gnd, eln::waveform::dc(2.0));
    eln::resistive_divider div("div", net, 1e3, 1e3);
    div.in(vin);
    div.out(vout);
    div.ref(gnd);
    ctx.run(1_ms);
    EXPECT_NEAR(net.voltage(vout), 1.0, 1e-6);
}

// ----------------------------------------- flat vs hierarchical identity ----

namespace {

/// The quickstart topology, built flat (manual signals, node-constructed
/// components) or hierarchically (subcircuit + terminals + connect).  Both
/// must produce byte-identical probes and measurements.
core::scenario define_quickstart_like(const std::string& name, bool hierarchical) {
    return core::scenario::define(
        name, core::params{{"f_sine", 1e3}, {"r", 1e3}, {"c", 100e-9}},
        [hierarchical](core::testbench& tb, const core::params& p) {
            auto& src = tb.make<lib::sine_source>("src", 1.0, p.number("f_sine"));
            src.set_timestep(1.0, de::time_unit::us);

            auto& net = tb.make<eln::network>("net");
            auto gnd = net.ground();
            auto vin = net.create_node("vin");
            auto vout = net.create_node("vout");
            auto& cmp = tb.make<lib::comparator>("cmp", 0.0, 0.05);
            auto& square = tb.make<de::signal<bool>>("square", false);
            cmp.enable_de_output(square);

            struct bool_sink : tdf::module {
                tdf::in<bool> in;
                explicit bool_sink(const de::module_name& nm)
                    : tdf::module(nm), in("in") {}
                void processing() override { (void)in.read(); }
            };

            if (hierarchical) {
                auto& drive = tb.make<eln::tdf_vsource>("drive", net);
                drive.p(vin);
                drive.n(gnd);
                auto& rc =
                    tb.make<eln::rc_lowpass>("rc", net, p.number("r"), p.number("c"));
                rc.in(vin);
                rc.out(vout);
                rc.ref(gnd);
                auto& probe = tb.make<eln::tdf_vsink>("probe", net);
                probe.p(vout);
                probe.n(gnd);
                auto& bsink = tb.make<bool_sink>("bsink");
                auto& s_sine = connect(src.out, drive.inp);
                connect(probe.outp, cmp.in);
                connect(cmp.out, bsink.in);
                tb.probe("sine", s_sine);
            } else {
                auto& drive = tb.make<eln::tdf_vsource>("drive", net, vin, gnd);
                tb.make<eln::resistor>("rc_r", net, vin, vout, p.number("r"));
                tb.make<eln::capacitor>("rc_c", net, vout, gnd, p.number("c"));
                auto& probe = tb.make<eln::tdf_vsink>("probe", net, vout, gnd);
                auto& bsink = tb.make<bool_sink>("bsink");
                auto& s_sine = tb.make<tdf::signal<double>>("s_sine");
                auto& s_filtered = tb.make<tdf::signal<double>>("s_filtered");
                auto& s_square = tb.make<tdf::signal<bool>>("s_square");
                src.out.bind(s_sine);
                drive.inp.bind(s_sine);
                probe.outp.bind(s_filtered);
                cmp.in.bind(s_filtered);
                cmp.out.bind(s_square);
                bsink.in.bind(s_square);
                tb.probe("sine", s_sine);
            }
            tb.probe("filtered", [&net, vout] { return net.voltage(vout); });
            tb.probe("square", square);
            tb.set_sample_period(10_us);
            tb.set_stop_time(5_ms);
            tb.measure("vout_final", [&net, vout] { return net.voltage(vout); });
        });
}

}  // namespace

TEST(hierarchy, quickstart_like_flat_and_hierarchical_are_bit_identical) {
    auto flat = define_quickstart_like("qs_flat", false).build();
    auto hier = define_quickstart_like("qs_hier", true).build();
    flat->run();
    hier->run();

    EXPECT_TRUE(flat->times() == hier->times());
    for (const char* probe : {"sine", "filtered", "square"}) {
        EXPECT_TRUE(flat->waveform(probe) == hier->waveform(probe))
            << "probe '" << probe << "' differs";
    }
    EXPECT_TRUE(flat->measurements() == hier->measurements());
}

TEST(hierarchy, receiver_like_flat_and_hierarchical_are_bit_identical) {
    struct front_end : tdf::composite {
        tdf::in<double> rf;
        tdf::out<double> if_out;
        front_end(const de::module_name& nm, double f_lo)
            : tdf::composite(nm), rf("rf"), if_out("if_out") {
            auto& lna = make_child<lib::amplifier>("lna", 20.0, 1.0, -1.0);
            auto& lo = make_child<lib::quadrature_oscillator>("lo", 1.0, f_lo);
            auto& mix = make_child<lib::mixer>("mix", 2.0);
            auto& fir = make_child<lib::fir>("fir", lib::fir::design_lowpass(31, 0.02));
            struct null_sink : tdf::module {
                tdf::in<double> in;
                explicit null_sink(const de::module_name& nm)
                    : tdf::module(nm), in("in") {}
                void processing() override { (void)in.read(); }
            };
            auto& q = make_child<null_sink>("q");
            lna.in.bind(rf);
            connect(lna.out, mix.rf);
            connect(lo.out_i, mix.lo);
            connect(lo.out_q, q.in);
            connect(mix.out, fir.in);
            fir.out.bind(if_out);
        }
    };

    auto run_flat = [] {
        core::simulation sim;
        lib::sine_source src("src", 20e-3, 455e3);
        src.set_timestep(0.2, de::time_unit::us);
        lib::amplifier lna("lna", 20.0, 1.0, -1.0);
        lib::quadrature_oscillator lo("lo", 1.0, 445e3);
        lib::mixer mix("mix", 2.0);
        lib::fir fir("fir", lib::fir::design_lowpass(31, 0.02));
        collector rec("rec");
        collector qrec("qrec");
        tdf::signal<double> s1("s1"), s2("s2"), s3("s3"), s4("s4"), s5("s5");
        src.out.bind(s1);
        lna.in.bind(s1);
        lna.out.bind(s2);
        lo.out_i.bind(s3);
        lo.out_q.bind(s5);
        qrec.in.bind(s5);
        mix.rf.bind(s2);
        mix.lo.bind(s3);
        mix.out.bind(s4);
        fir.in.bind(s4);
        tdf::signal<double> s6("s6");
        fir.out.bind(s6);
        rec.in.bind(s6);
        sim.run(2_ms);
        return rec.got;
    };
    auto run_hier = [] {
        core::simulation sim;
        lib::sine_source src("src", 20e-3, 455e3);
        src.set_timestep(0.2, de::time_unit::us);
        front_end rx("rx", 445e3);
        collector rec("rec");
        connect(src.out, rx.rf);
        connect(rx.if_out, rec.in);
        sim.run(2_ms);
        return rec.got;
    };

    const auto flat = run_flat();
    const auto hier = run_hier();
    ASSERT_EQ(flat.size(), hier.size());
    EXPECT_TRUE(flat == hier);
}

// ------------------------------------------------ run_set with composites ---

TEST(hierarchy, two_level_composite_in_parallel_run_set_matches_sequential) {
    auto scen = core::scenario::define(
        "hier_sweep", core::params{{"k1", 2.0}, {"k2", 3.0}},
        [](core::testbench& tb, const core::params& p) {
            auto& src = tb.make<ramp_src>("src");
            auto& rx = tb.make<rx_stack>("rx", p.number("k1"), p.number("k2"));
            auto& sink = tb.make<collector>("sink");
            connect(src.out, rx.x);
            auto& y = connect(rx.y, sink.in);
            tb.probe("y", y);
            tb.set_sample_period(100_us);
            tb.set_stop_time(5_ms);
            tb.measure("last", [&sink] { return sink.got.back(); });
            tb.measure("count", [&sink] { return double(sink.got.size()); });
        });

    auto make_set = [&] {
        return core::run_set(scen)
            .with_grid(core::param_grid().add("k1", {0.5, 2.0}).add("k2", {1.0, 3.0}))
            .set_base_seed(11);
    };
    const auto seq = make_set().set_workers(1).run_all();
    const auto par = make_set().set_workers(4).run_all();
    ASSERT_EQ(seq.size(), 4U);
    ASSERT_EQ(par.size(), 4U);
    EXPECT_EQ(seq.failed_count(), 0U);
    EXPECT_EQ(par.failed_count(), 0U);
    for (std::size_t i = 0; i < seq.size(); ++i) {
        EXPECT_TRUE(seq[i].times == par[i].times);
        ASSERT_EQ(seq[i].waveforms.size(), par[i].waveforms.size());
        for (std::size_t w = 0; w < seq[i].waveforms.size(); ++w) {
            EXPECT_TRUE(seq[i].waveforms[w] == par[i].waveforms[w]);
        }
        EXPECT_TRUE(seq[i].measurements == par[i].measurements);
    }
}

// ------------------------------------------------------- lib composites -----

TEST(hierarchy, pipeline_adc_composite_matches_monolithic_reference) {
    // Reference: the former monolithic per-sample computation.
    const unsigned stages = 6;
    const double vref = 1.0;
    std::vector<lib::pipeline_stage_params> ps(stages);
    for (unsigned s = 0; s < stages; ++s) {
        ps[s].gain_error = 0.001 * (s + 1);
        ps[s].offset = 0.01 * s;
    }
    auto reference_code = [&](double x) {
        double residue = std::clamp(x, -vref, vref);
        std::vector<int> d(stages);
        for (unsigned s = 0; s < stages; ++s) {
            const double v = residue + ps[s].offset;
            d[s] = v > vref / 4.0 ? 1 : (v < -vref / 4.0 ? -1 : 0);
            const double gain = 2.0 * (1.0 + ps[s].gain_error);
            residue = gain * residue - static_cast<double>(d[s]) * vref *
                                           (1.0 + ps[s].gain_error);
            residue = std::clamp(residue, -2.0 * vref, 2.0 * vref);
        }
        const int last = residue >= 0.0 ? 1 : -1;
        std::int64_t code = 0;
        for (unsigned s = 0; s < stages; ++s) {
            const std::int64_t weight = std::int64_t{1}
                                        << static_cast<std::int64_t>(stages - s);
            code += static_cast<std::int64_t>(d[s]) * weight;
        }
        code += last;
        const std::int64_t max_code = (std::int64_t{1} << (stages + 1)) - 1;
        return std::clamp<std::int64_t>(code, -max_code - 1, max_code);
    };

    core::simulation sim;
    struct wave_src : tdf::module {
        tdf::out<double> out;
        double t = 0.0;
        explicit wave_src(const de::module_name& nm) : tdf::module(nm), out("out") {}
        void set_attributes() override { set_timestep(10.0, de::time_unit::us); }
        void processing() override {
            out.write(1.2 * std::sin(t));  // exercises the clamp too
            t += 0.37;
        }
    } src("src");
    lib::pipeline_adc adc("adc", stages, vref);
    adc.set_stage_params(ps);
    struct code_rec : tdf::module {
        tdf::in<std::int64_t> in;
        std::vector<std::int64_t> got;
        explicit code_rec(const de::module_name& nm) : tdf::module(nm), in("in") {}
        void processing() override { got.push_back(in.read()); }
    } rec("rec");
    collector est("est");
    connect(src.out, adc.in);
    connect(adc.code, rec.in);
    connect(adc.analog_estimate, est.in);
    sim.run(2_ms);

    ASSERT_GE(rec.got.size(), 100U);
    double t = 0.0;
    for (std::size_t i = 0; i < rec.got.size(); ++i) {
        EXPECT_EQ(rec.got[i], reference_code(1.2 * std::sin(t))) << "sample " << i;
        t += 0.37;
    }
}

TEST(hierarchy, sigma_delta_adc_composite_tracks_dc_input) {
    core::simulation sim;
    lib::waveform_source src("src", sca::util::waveform::dc(0.4));
    src.set_timestep(1.0, de::time_unit::us);
    lib::sigma_delta_adc adc("adc", 2, 1.0, 32);
    collector rec("rec");
    connect(src.out, adc.in);
    connect(adc.out, rec.in);
    sim.run(20_ms);
    ASSERT_GE(rec.got.size(), 100U);
    double sum = 0.0;
    for (std::size_t i = rec.got.size() - 100; i < rec.got.size(); ++i) {
        sum += rec.got[i];
    }
    EXPECT_NEAR(sum / 100.0, 0.4, 0.02);
}

TEST(hierarchy, pll_loop_composite_tracks_monolithic_pll_sample_for_sample) {
    core::simulation sim;
    const double f_ref = 10.2e3, f0 = 10e3, kv = 2e3, bw = 1000.0;
    lib::sine_source ref("ref", 1.0, f_ref);
    ref.set_timestep(2.0, de::time_unit::us);
    lib::pll mono("mono", f0, kv, bw);
    lib::pll_loop comp("comp", f0, kv, bw);
    collector mono_out("mono_out"), comp_out("comp_out");
    struct null_sink : tdf::module {
        tdf::in<double> in;
        explicit null_sink(const de::module_name& nm) : tdf::module(nm), in("in") {}
        void processing() override { (void)in.read(); }
    } ctl_sink("ctl_sink");

    auto& s_ref = connect(ref.out, mono.ref);
    comp.ref.bind(s_ref);  // fan-out: both loops track the same reference
    connect(mono.out, mono_out.in);
    connect(mono.control, ctl_sink.in);
    connect(comp.out, comp_out.in);

    sim.run(100_ms);
    ASSERT_EQ(mono_out.got.size(), comp_out.got.size());
    ASSERT_GE(mono_out.got.size(), 1000U);
    // The composite's delayed feedback reproduces the monolithic recursion
    // exactly (the monolithic PD also reads the previous-sample VCO phase).
    EXPECT_TRUE(mono_out.got == comp_out.got);
    // Same for the instantaneous VCO frequency (it ripples at 2x the
    // carrier, so compare against the monolithic loop, not the mean lock).
    EXPECT_DOUBLE_EQ(comp.vco_frequency(), mono.vco_frequency());
    // And the loop is locked in the mean: the monolithic model's lock is
    // asserted in test_rf_line, and the two outputs are bit-identical.
    EXPECT_NEAR(comp.vco_frequency(), f_ref, kv);  // within the ripple band
}
