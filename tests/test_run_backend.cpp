// run_set execution backends: the multiprocess and remote-TCP backends must
// produce result tables byte-identical (CSV compare — identical doubles
// format identically) to sequential in-thread execution at any worker count;
// a run that throws records `error` without poisoning the table on every
// backend; a SIGKILLed worker costs only its in-flight run; and a checkpoint
// journal lets the campaign resume with every run index computed exactly
// once.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "core/run_backend.hpp"
#include "core/run_checkpoint.hpp"
#include "core/run_set.hpp"
#include "core/scenario.hpp"
#include "eln/network.hpp"
#include "eln/primitives.hpp"
#include "eln/sources.hpp"
#include "util/measure.hpp"

namespace core = sca::core;
namespace de = sca::de;
namespace eln = sca::eln;
using namespace sca::de::literals;

namespace {

/// Set before run_all(); forked workers inherit the value, so a worker
/// executing this run index kills itself mid-run (never the test process —
/// only the multiprocess backend runs the kill scenario).
volatile std::sig_atomic_t g_kill_run_index = -1;

/// RC lowpass scenario (the suite's reference testbench).
core::scenario define_rc(const std::string& name) {
    return core::scenario::define(
        name, core::params{{"r", 1e3}, {"c", 100e-9}, {"f", 1e3}},
        [](core::testbench& tb, const core::params& p) {
            if (static_cast<std::sig_atomic_t>(p.run_index()) == g_kill_run_index) {
                ::raise(SIGKILL);
            }
            if (p.get("blow_up", 0.0) != 0.0) {
                throw sca::util::error("test", "requested failure");
            }
            auto& net = tb.make<eln::network>("net");
            net.set_timestep(5.0, de::time_unit::us);
            auto gnd = net.ground();
            auto vin = net.create_node("vin");
            auto vout = net.create_node("vout");
            tb.make<eln::vsource>("vs", net, vin, gnd,
                                  eln::waveform::sine(1.0, p.get("f", 1e3)));
            tb.make<eln::resistor>("r", net, vin, vout, p.get("r", 1e3));
            tb.make<eln::capacitor>("c", net, vout, gnd, p.get("c", 100e-9));
            tb.probe("vout", [&net, vout] { return net.voltage(vout); });
            tb.measure("vout_final", [&net, vout] { return net.voltage(vout); });
            tb.measure("vout_rms",
                       [&tb] { return sca::util::rms(tb.waveform("vout")); });
            tb.set_stop_time(de::time::from_seconds(1e-3));
            tb.set_sample_period(20_us);
        });
}

core::run_set make_grid_set(const core::scenario& sc) {
    return core::run_set(sc)
        .with_grid(core::param_grid()
                       .add_logspace("r", 100.0, 10e3, 3)
                       .add("c", {47e-9, 100e-9, 220e-9}))
        .set_base_seed(0xfeedULL);
}

core::run_set make_mc_set(const core::scenario& sc) {
    return core::run_set(sc)
        .with_samples(core::monte_carlo(9)
                          .uniform("r", 500.0, 5e3)
                          .normal("c", 100e-9, 10e-9))
        .set_base_seed(0xfeedULL);
}

std::string csv_of(const core::result_table& t) {
    std::ostringstream os;
    t.write_csv(os);
    return os.str();
}

std::string temp_journal(const std::string& tag) {
    const std::string path = ::testing::TempDir() + "journal_" + tag + ".sca";
    std::remove(path.c_str());
    return path;
}

}  // namespace

// ------------------------------------------------------------ bit identity --

TEST(run_backend, multiprocess_grid_is_bit_identical_to_sequential) {
    const auto rc = define_rc("mp_grid");
    const std::string golden =
        csv_of(make_grid_set(rc).set_workers(1).run_all());
    for (const unsigned workers : {1U, 2U, 4U, 8U}) {
        const auto table = make_grid_set(rc)
                               .set_backend(core::run_backend::multiprocess)
                               .set_workers(workers)
                               .run_all();
        EXPECT_EQ(table.failed_count(), 0U) << "workers=" << workers;
        EXPECT_EQ(csv_of(table), golden) << "workers=" << workers;
    }
}

TEST(run_backend, multiprocess_monte_carlo_is_bit_identical_to_sequential) {
    const auto rc = define_rc("mp_mc");
    const std::string golden = csv_of(make_mc_set(rc).set_workers(1).run_all());
    for (const unsigned workers : {1U, 2U, 4U, 8U}) {
        EXPECT_EQ(csv_of(make_mc_set(rc)
                             .set_backend(core::run_backend::multiprocess)
                             .set_workers(workers)
                             .run_all()),
                  golden)
            << "workers=" << workers;
    }
}

TEST(run_backend, multiprocess_waveforms_survive_the_pipe_bit_exactly) {
    const auto rc = define_rc("mp_wave");
    const auto seq = make_grid_set(rc).set_workers(1).run_all();
    const auto mp = make_grid_set(rc)
                        .set_backend(core::run_backend::multiprocess)
                        .set_workers(4)
                        .run_all();
    ASSERT_EQ(mp.size(), seq.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
        EXPECT_EQ(mp[i].seed, seq[i].seed);
        EXPECT_EQ(mp[i].times, seq[i].times);
        EXPECT_EQ(mp[i].waveforms, seq[i].waveforms);
    }
}

// ------------------------------------------------------- failure semantics --

TEST(run_backend, throwing_run_records_error_on_every_backend) {
    const auto rc = define_rc("fail_backends");
    auto build = [&rc] {
        return core::run_set(rc).with_grid(
            core::param_grid().add("blow_up", {0.0, 1.0, 0.0, 1.0, 0.0}));
    };
    for (const auto backend :
         {core::run_backend::in_thread, core::run_backend::multiprocess}) {
        const auto table = build().set_backend(backend).set_workers(2).run_all();
        ASSERT_EQ(table.size(), 5U);
        EXPECT_EQ(table.failed_count(), 2U);
        for (const std::size_t bad : {1U, 3U}) {
            EXPECT_FALSE(table[bad].ok);
            EXPECT_NE(table[bad].error.find("requested failure"), std::string::npos);
        }
        for (const std::size_t good : {0U, 2U, 4U}) {
            EXPECT_TRUE(table[good].ok) << "backend did not isolate the failure";
            EXPECT_GT(table[good].measurements.at("vout_rms"), 0.0);
        }
    }
}

TEST(run_backend, sigkilled_worker_loses_only_its_run) {
    const auto rc = define_rc("kill_one");
    g_kill_run_index = 4;
    const auto table = make_grid_set(rc)
                           .set_backend(core::run_backend::multiprocess)
                           .set_workers(2)
                           .run_all();
    g_kill_run_index = -1;
    ASSERT_EQ(table.size(), 9U);
    EXPECT_EQ(table.failed_count(), 1U);
    EXPECT_FALSE(table[4].ok);
    EXPECT_NE(table[4].error.find("signal 9"), std::string::npos) << table[4].error;
    for (std::size_t i = 0; i < table.size(); ++i) {
        if (i == 4) continue;
        EXPECT_TRUE(table[i].ok) << "run " << i << ": " << table[i].error;
    }
}

// ---------------------------------------------------- checkpoint / resume --

TEST(run_backend, checkpoint_resume_completes_a_killed_campaign) {
    const auto rc = define_rc("kill_resume");
    const std::string journal = temp_journal("kill_resume");

    // First attempt: worker for run 4 is SIGKILLed.  The lost run is NOT
    // journaled (it never completed); every other run is.
    g_kill_run_index = 4;
    const auto first = make_grid_set(rc)
                           .set_backend(core::run_backend::multiprocess)
                           .set_workers(2)
                           .set_checkpoint(journal)
                           .run_all();
    g_kill_run_index = -1;
    EXPECT_EQ(first.failed_count(), 1U);
    EXPECT_EQ(core::checkpoint_indices(journal).size(), 8U);

    // Resume: same campaign, same journal — only run 4 recomputes, and the
    // final table matches an uninterrupted sequential run byte for byte.
    const auto resumed = make_grid_set(rc)
                             .set_backend(core::run_backend::multiprocess)
                             .set_workers(2)
                             .set_checkpoint(journal)
                             .run_all();
    EXPECT_EQ(resumed.failed_count(), 0U);
    EXPECT_EQ(csv_of(resumed), csv_of(make_grid_set(rc).set_workers(1).run_all()));

    // Across both attempts, every run index was journaled exactly once.
    auto indices = core::checkpoint_indices(journal);
    std::sort(indices.begin(), indices.end());
    ASSERT_EQ(indices.size(), 9U);
    for (std::size_t i = 0; i < indices.size(); ++i) EXPECT_EQ(indices[i], i);
    std::remove(journal.c_str());
}

TEST(run_backend, completed_checkpoint_skips_all_work) {
    const auto rc = define_rc("ckpt_done");
    const std::string journal = temp_journal("ckpt_done");
    const std::string golden =
        csv_of(make_grid_set(rc).set_checkpoint(journal).run_all());
    // Second run with the journal present: nothing recomputes (no result
    // callbacks fire) and the table is identical.
    std::atomic<int> computed{0};
    const auto again = make_grid_set(rc)
                           .set_checkpoint(journal)
                           .on_result([&](const core::run_result&) { ++computed; })
                           .run_all();
    EXPECT_EQ(computed.load(), 0);
    EXPECT_EQ(csv_of(again), golden);
    std::remove(journal.c_str());
}

TEST(run_backend, mismatched_checkpoint_is_refused) {
    const auto rc = define_rc("ckpt_mismatch");
    const std::string journal = temp_journal("ckpt_mismatch");
    (void)make_grid_set(rc).set_checkpoint(journal).run_all();
    // Same journal, different base seed -> different campaign fingerprint.
    EXPECT_THROW((void)make_grid_set(rc)
                     .set_base_seed(0xbadULL)
                     .set_checkpoint(journal)
                     .run_all(),
                 sca::util::error);
    std::remove(journal.c_str());
}

// ------------------------------------------------------ streaming delivery --

TEST(run_backend, streamed_rows_and_callbacks_arrive_per_result) {
    const auto rc = define_rc("stream");
    std::ostringstream streamed;
    std::atomic<int> seen{0};
    const auto table = make_grid_set(rc)
                           .set_backend(core::run_backend::multiprocess)
                           .set_workers(4)
                           .stream_csv(streamed)
                           .on_result([&](const core::run_result& r) {
                               EXPECT_TRUE(r.ok);
                               ++seen;
                           })
                           .run_all();
    EXPECT_EQ(seen.load(), 9);
    // Header + one row per run (arrival order is nondeterministic; the row
    // count is not).
    const std::string s = streamed.str();
    EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 10);
}

// -------------------------------------------------------------- remote TCP --

TEST(run_backend, remote_tcp_worker_matches_sequential) {
    const auto rc = define_rc("tcp");
    const auto rs = make_grid_set(rc);
    std::uint16_t port = 0;
    const int listen_fd = core::listen_tcp(port);
    ASSERT_GT(listen_fd, 0);
    ASSERT_NE(port, 0);
    const pid_t server = fork();
    ASSERT_GE(server, 0);
    if (server == 0) {
        core::serve_tcp_workers(rs, listen_fd, /*max_sessions=*/1);
        ::_exit(0);
    }
    ::close(listen_fd);
    const auto table =
        make_grid_set(rc)
            .set_backend(core::run_backend::remote_tcp)
            .set_endpoints({"127.0.0.1:" + std::to_string(port)})
            .run_all();
    int status = 0;
    ASSERT_EQ(::waitpid(server, &status, 0), server);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    EXPECT_EQ(csv_of(table), csv_of(make_grid_set(rc).set_workers(1).run_all()));
}

TEST(run_backend, remote_tcp_without_endpoints_is_an_error) {
    const auto rc = define_rc("tcp_noep");
    EXPECT_THROW((void)make_grid_set(rc)
                     .set_backend(core::run_backend::remote_tcp)
                     .run_all(),
                 sca::util::error);
}
