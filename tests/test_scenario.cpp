// Scenario front end and parallel multi-run engine: params semantics,
// testbench lifecycle/ownership, grids and Monte Carlo sampling, the
// worker-pool engine — and the core concurrency-correctness contract that
// sequential and parallel execution of the same run_set are bit-identical.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <sstream>

#include "core/ac_analysis.hpp"
#include "core/dc_analysis.hpp"
#include "core/noise_analysis.hpp"
#include "core/run_set.hpp"
#include "core/scenario.hpp"
#include "eln/network.hpp"
#include "eln/primitives.hpp"
#include "eln/sources.hpp"
#include "util/measure.hpp"

namespace core = sca::core;
namespace de = sca::de;
namespace eln = sca::eln;
namespace solver = sca::solver;
using namespace sca::de::literals;

namespace {

/// The reference scenario of the suite: series-R, shunt-C lowpass driven by
/// a sine, with voltage probe and waveform measurements.
core::scenario define_rc_scenario(const std::string& name = "rc_test") {
    return core::scenario::define(
        name, core::params{{"r", 1e3}, {"c", 100e-9}, {"f", 1e3}},
        [](core::testbench& tb, const core::params& p) {
            auto& net = tb.make<eln::network>("net");
            net.set_timestep(2.0, de::time_unit::us);
            auto gnd = net.ground();
            auto vin = net.create_node("vin");
            auto vout = net.create_node("vout");
            auto& vs = tb.make<eln::vsource>(
                "vs", net, vin, gnd,
                eln::waveform::sine(1.0, p.get("f", 1e3)));
            vs.set_ac(1.0);
            tb.make<eln::resistor>("r", net, vin, vout, p.get("r", 1e3));
            tb.make<eln::capacitor>("c", net, vout, gnd, p.get("c", 100e-9));

            tb.probe("vout", [&net, vout] { return net.voltage(vout); });
            tb.measure("vout_final", [&net, vout] { return net.voltage(vout); });
            tb.measure("vout_rms", [&tb] { return sca::util::rms(tb.waveform("vout")); });
            tb.set_stop_time(de::time::from_seconds(4e-3));
            tb.set_sample_period(10_us);
        });
}

}  // namespace

// ------------------------------------------------------------------ params --

TEST(params, defaults_overrides_and_merge) {
    core::params defaults{{"r", 1e3}, {"mode", "fast"}};
    core::params overrides;
    overrides.set("r", 2e3);
    const core::params merged = overrides.merged_onto(defaults);
    EXPECT_DOUBLE_EQ(merged.get("r", 0.0), 2e3);
    EXPECT_EQ(merged.get("mode", std::string("?")), "fast");
    EXPECT_DOUBLE_EQ(merged.get("absent", 42.0), 42.0);
    EXPECT_THROW((void)merged.number("absent"), sca::util::error);
    EXPECT_THROW((void)merged.text("r"), sca::util::error);
}

TEST(params, run_identity_survives_merge) {
    core::params p;
    p.set_run_identity(7, 1234);
    const core::params merged = p.merged_onto(core::params{{"x", 1.0}});
    EXPECT_EQ(merged.run_index(), 7U);
    EXPECT_EQ(merged.seed(), 1234U);
}

// -------------------------------------------------------------- param_grid --

TEST(param_grid, cartesian_product_with_fixed_order) {
    core::param_grid grid;
    grid.add("a", {1.0, 2.0}).add("b", {10.0, 20.0, 30.0});
    ASSERT_EQ(grid.size(), 6U);
    // Last axis varies fastest.
    EXPECT_DOUBLE_EQ(grid.at(0).number("a"), 1.0);
    EXPECT_DOUBLE_EQ(grid.at(0).number("b"), 10.0);
    EXPECT_DOUBLE_EQ(grid.at(1).number("b"), 20.0);
    EXPECT_DOUBLE_EQ(grid.at(3).number("a"), 2.0);
    EXPECT_DOUBLE_EQ(grid.at(3).number("b"), 10.0);
    EXPECT_DOUBLE_EQ(grid.at(5).number("b"), 30.0);
}

TEST(param_grid, linspace_and_logspace) {
    core::param_grid grid;
    grid.add_linspace("x", 0.0, 1.0, 5).add_logspace("y", 1.0, 100.0, 3);
    EXPECT_EQ(grid.size(), 15U);
    EXPECT_DOUBLE_EQ(grid.at(0).number("x"), 0.0);
    EXPECT_NEAR(grid.at(1).number("y"), 10.0, 1e-9);
    EXPECT_NEAR(grid.at(2).number("y"), 100.0, 1e-9);
}

TEST(monte_carlo, deterministic_from_seed) {
    core::monte_carlo mc(4);
    mc.uniform("r", 500.0, 1500.0).normal("c", 100e-9, 5e-9);
    const auto a = mc.at(2, 999);
    const auto b = mc.at(2, 999);
    EXPECT_DOUBLE_EQ(a.number("r"), b.number("r"));
    EXPECT_DOUBLE_EQ(a.number("c"), b.number("c"));
    const auto c = mc.at(2, 1000);
    EXPECT_NE(a.number("r"), c.number("r"));
    EXPECT_GE(a.number("r"), 500.0);
    EXPECT_LE(a.number("r"), 1500.0);
}

// ---------------------------------------------------------------- scenario --

TEST(scenario, define_find_and_single_run) {
    auto rc = define_rc_scenario("rc_single");
    EXPECT_EQ(rc.name(), "rc_single");
    auto found = core::scenario::find("rc_single");
    EXPECT_EQ(found.name(), "rc_single");
    EXPECT_THROW((void)core::scenario::find("does_not_exist"), sca::util::error);

    auto tb = found.build();
    tb->run();
    // Steady-state sine through an RC lowpass at fc ~ 1.6 kHz: attenuated,
    // nonzero response; rms of the full record is positive and below input.
    const double rms = tb->measurement("vout_rms");
    EXPECT_GT(rms, 0.1);
    EXPECT_LT(rms, 1.0);
    EXPECT_EQ(tb->waveform("vout").size(), tb->times().size());
}

TEST(scenario, overrides_change_the_built_model) {
    auto rc = define_rc_scenario("rc_override");
    auto tb_small = rc.build({{"c", 10e-9}});
    auto tb_large = rc.build({{"c", 1000e-9}});
    tb_small->run();
    tb_large->run();
    // Bigger C, lower cutoff, more attenuation at the same drive frequency.
    EXPECT_GT(tb_small->measurement("vout_rms"), tb_large->measurement("vout_rms"));
}

TEST(scenario, testbench_owns_objects_and_tears_down) {
    auto rc = define_rc_scenario("rc_teardown");
    for (int i = 0; i < 3; ++i) {
        auto tb = rc.build();
        tb->run();
        // tb (context + components) destroyed here; leak checking in CI
        // verifies nothing is left behind.
    }
    SUCCEED();
}

TEST(scenario, names_enumerates_the_registry_sorted) {
    define_rc_scenario("rc_enum_b");
    define_rc_scenario("rc_enum_a");
    const std::vector<std::string> names = core::scenario::names();
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
    // Enumeration is the streaming server's service catalog: every defined
    // scenario must appear, and each name must resolve back through find().
    for (const std::string& expect : {std::string("rc_enum_a"), std::string("rc_enum_b")}) {
        EXPECT_NE(std::find(names.begin(), names.end(), expect), names.end());
        EXPECT_EQ(core::scenario::find(expect).name(), expect);
    }
}

TEST(scenario, param_hooks_poke_between_runs) {
    double gain = 1.0;
    core::testbench tb("hooks");
    tb.on_param("gain", [&gain](double v) { gain = v; });
    EXPECT_TRUE(tb.has_param_hook("gain"));
    EXPECT_FALSE(tb.has_param_hook("offset"));
    EXPECT_EQ(tb.param_names(), std::vector<std::string>{"gain"});
    tb.poke("gain", 2.5);
    EXPECT_DOUBLE_EQ(gain, 2.5);
    // Unknown names throw — a live client poking a typo gets an error frame,
    // not a silent no-op.
    EXPECT_THROW(tb.poke("offset", 0.0), sca::util::error);
}

// ----------------------------------------------- analyses on one testbench --

TEST(scenario, all_four_analyses_on_one_testbench) {
    const double r = 1e3, c = 100e-9;
    const double fc = 1.0 / (2.0 * std::numbers::pi * r * c);

    core::testbench tb("analyses");
    auto& net = tb.make<eln::network>("net");
    net.set_timestep(2.0, de::time_unit::us);
    auto gnd = net.ground();
    auto vin = net.create_node("vin");
    auto vout = net.create_node("vout");
    auto& vs = tb.make<eln::vsource>("vs", net, vin, gnd,
                                     eln::waveform::sine(1.0, 1e3));
    vs.set_ac(1.0);
    tb.make<eln::resistor>("r", net, vin, vout, r);
    tb.make<eln::capacitor>("c", net, vout, gnd, c);
    tb.probe("vout", [&net, vout] { return net.voltage(vout); });
    tb.measure("vout_rms", [&tb] { return sca::util::rms(tb.waveform("vout")); });
    tb.set_stop_time(de::time::from_seconds(4e-3));
    tb.set_sample_period(10_us);

    // DC: zero-input quiescent point, one handle, no model rebuild.
    core::dc_analysis dc(tb);
    const auto op = dc.operating_point();
    EXPECT_FALSE(op.empty());

    // AC: -3 dB at the cutoff.
    core::ac_analysis ac(tb);
    const auto pts = ac.sweep(vout.index(),
                              {fc, fc, 1, solver::sweep::scale::logarithmic});
    ASSERT_EQ(pts.size(), 1U);
    EXPECT_NEAR(pts[0].magnitude_db(), -3.0103, 0.01);

    // Noise: resistor thermal noise appears at the output.
    core::noise_analysis noise(tb);
    const auto nres = noise.run(vout.index(), {fc, fc, 1});
    EXPECT_GT(nres.points[0].total_psd, 0.0);

    // Transient on the very same testbench afterwards.
    tb.run();
    EXPECT_GT(tb.measurement("vout_rms"), 0.0);
}

// ------------------------------------------- engine: determinism contracts --

TEST(run_set, sequential_and_parallel_runs_are_bit_identical) {
    auto rc = define_rc_scenario("rc_parallel");
    auto make_set = [&] {
        return core::run_set(rc)
            .with_grid(core::param_grid()
                           .add_logspace("r", 200.0, 5e3, 4)
                           .add("c", {47e-9, 220e-9}))
            .set_base_seed(42);
    };
    const auto seq = make_set().set_workers(1).run_all();
    const auto par = make_set().set_workers(4).run_all();

    ASSERT_EQ(seq.size(), 8U);
    ASSERT_EQ(par.size(), 8U);
    EXPECT_EQ(seq.failed_count(), 0U);
    EXPECT_EQ(par.failed_count(), 0U);
    for (std::size_t i = 0; i < seq.size(); ++i) {
        const auto& a = seq[i];
        const auto& b = par[i];
        EXPECT_EQ(a.index, b.index);
        EXPECT_EQ(a.seed, b.seed);
        EXPECT_EQ(a.parameters.entries(), b.parameters.entries());
        // Bit-identical: exact double equality on every sample and scalar.
        EXPECT_TRUE(a.times == b.times) << "time axis differs in run " << i;
        ASSERT_EQ(a.waveforms.size(), b.waveforms.size());
        for (std::size_t w = 0; w < a.waveforms.size(); ++w) {
            EXPECT_TRUE(a.waveforms[w] == b.waveforms[w])
                << "waveform '" << a.probe_names[w] << "' differs in run " << i;
        }
        EXPECT_TRUE(a.measurements == b.measurements)
            << "measurements differ in run " << i;
    }
}

TEST(run_set, monte_carlo_results_independent_of_worker_count) {
    auto rc = define_rc_scenario("rc_mc");
    auto make_set = [&] {
        return core::run_set(rc)
            .with_samples(core::monte_carlo(6).uniform("r", 300.0, 3e3))
            .set_base_seed(7)
            .keep_waveforms(false);
    };
    const auto seq = make_set().set_workers(1).run_all();
    const auto par = make_set().set_workers(4).run_all();
    ASSERT_EQ(seq.size(), 6U);
    for (std::size_t i = 0; i < seq.size(); ++i) {
        EXPECT_TRUE(seq[i].measurements == par[i].measurements);
        EXPECT_DOUBLE_EQ(seq[i].parameters.number("r"), par[i].parameters.number("r"));
        EXPECT_TRUE(seq[i].waveforms.empty());
    }
}

TEST(run_set, per_run_seeds_are_distinct_and_deterministic) {
    const std::uint64_t s0 = core::detail::derive_seed(42, 0);
    const std::uint64_t s1 = core::detail::derive_seed(42, 1);
    EXPECT_NE(s0, s1);
    EXPECT_EQ(s0, core::detail::derive_seed(42, 0));
    EXPECT_NE(s0, core::detail::derive_seed(43, 0));
}

TEST(run_set, a_failing_run_does_not_poison_the_others) {
    auto bad = core::scenario::define(
        "sometimes_fails", [](core::testbench& tb, const core::params& p) {
            if (p.get("blow_up", 0.0) > 0.5) {
                sca::util::report_fatal("sometimes_fails", "requested, deliberate failure");
            }
            auto& net = tb.make<eln::network>("net");
            net.set_timestep(10.0, de::time_unit::us);
            auto gnd = net.ground();
            auto n = net.create_node("n");
            tb.make<eln::isource>("is", net, gnd, n, eln::waveform::dc(1e-3));
            tb.make<eln::resistor>("r", net, n, gnd, 1e3);
            tb.measure("v", [&net, n] { return net.voltage(n); });
            tb.set_stop_time(1_ms);
        });
    const auto table = core::run_set(bad)
                           .with_grid(core::param_grid().add("blow_up", {0.0, 1.0, 0.0}))
                           .set_workers(2)
                           .run_all();
    ASSERT_EQ(table.size(), 3U);
    EXPECT_EQ(table.failed_count(), 1U);
    EXPECT_TRUE(table[0].ok);
    EXPECT_FALSE(table[1].ok);
    EXPECT_NE(table[1].error.find("requested, deliberate failure"), std::string::npos);
    EXPECT_TRUE(table[2].ok);
    EXPECT_NEAR(table[0].measurement("v"), 1.0, 1e-9);

    // The comma-bearing error must come out CSV-quoted, keeping every row at
    // the same field count.
    std::ostringstream csv;
    table.write_csv(csv);
    EXPECT_NE(csv.str().find("\"sometimes_fails: requested, deliberate failure\""),
              std::string::npos);
    std::istringstream rows(csv.str());
    std::string row;
    std::getline(rows, row);
    const auto header_fields = std::count(row.begin(), row.end(), ',');
    while (std::getline(rows, row)) {
        long fields = 0;
        bool quoted = false;
        for (char c : row) {
            if (c == '"') quoted = !quoted;
            if (c == ',' && !quoted) ++fields;
        }
        EXPECT_EQ(fields, header_fields);
    }
}

TEST(result_table, columns_best_and_csv) {
    auto rc = define_rc_scenario("rc_table");
    const auto table = core::run_set(rc)
                           .with_grid(core::param_grid().add("c", {10e-9, 1000e-9}))
                           .set_workers(1)
                           .keep_waveforms(false)
                           .run_all();
    const auto rms_col = table.column("vout_rms");
    ASSERT_EQ(rms_col.size(), 2U);
    const auto* best = table.best("vout_rms", /*maximize=*/true);
    ASSERT_NE(best, nullptr);
    EXPECT_DOUBLE_EQ(best->measurement("vout_rms"), std::max(rms_col[0], rms_col[1]));
    // Small C keeps more signal: run 0 wins.
    EXPECT_EQ(best->index, 0U);

    std::ostringstream csv;
    table.write_csv(csv);
    const std::string text = csv.str();
    EXPECT_NE(text.find("run,seed"), std::string::npos);
    EXPECT_NE(text.find("vout_rms"), std::string::npos);
    // Header + one row per run.
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
}
