// Checkpoint/restore: full-state snapshots and deterministic replay.
//
// The contract under test (core/snapshot): snapshot a live simulation at
// time T, restore it into a fresh context (a stand-in for a fresh process:
// nothing is shared but the scenario registry and the snapshot file), run
// both to T+D — and the resumed waveforms are EXPECT_EQ-identical (bit
// equality, not tolerance) with the uninterrupted run, across every stateful
// layer: DE kernel, static/block/dynamic TDF, ELN switching networks, LSF,
// and the nonlinear DAE solver.  Robustness mirrors test_run_protocol.cpp:
// truncation at every byte, bad magic/checksum/version, and a structural
// fingerprint mismatch are refused with named diagnostics.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/run_checkpoint.hpp"
#include "core/run_protocol.hpp"
#include "core/run_set.hpp"
#include "core/scenario.hpp"
#include "core/snapshot.hpp"
#include "eln/converter.hpp"
#include "eln/network.hpp"
#include "eln/nonlinear.hpp"
#include "eln/primitives.hpp"
#include "eln/sources.hpp"
#include "kernel/context.hpp"
#include "kernel/signal.hpp"
#include "lib/filters.hpp"
#include "lsf/primitives.hpp"
#include "lsf/view.hpp"
#include "tdf/cluster.hpp"
#include "tdf/connect.hpp"
#include "tdf/module.hpp"
#include "tdf/port.hpp"
#include "util/bytes.hpp"
#include "util/report.hpp"

namespace core = sca::core;
namespace de = sca::de;
namespace eln = sca::eln;
namespace lsf = sca::lsf;
namespace lib = sca::lib;
namespace tdf = sca::tdf;
namespace wire = sca::core::wire;
using namespace sca::de::literals;

namespace {

// ------------------------------------------------- snapshot-capable modules --
// Custom stateful TDF modules implementing their own object hooks — the
// extension point every user module with private state uses.

/// Ramp source: the counter is the whole state.
struct snap_ramp : tdf::module {
    tdf::out<double> out;
    double next_value = 0.0;
    de::time step;

    snap_ramp(const de::module_name& nm, const de::time& s)
        : tdf::module(nm), out("out"), step(s) {}
    // step == zero leaves the module un-anchored (a dynamic neighbour then
    // owns the cluster timestep).
    void set_attributes() override {
        if (step > de::time::zero()) set_timestep(step);
    }
    [[nodiscard]] bool accept_attribute_changes() const override { return true; }
    void processing() override {
        for (unsigned k = 0; k < out.rate(); ++k) out.write(next_value++, k);
    }

    [[nodiscard]] bool has_snapshot_state() const noexcept override { return true; }
    void save_state(sca::util::byte_writer& w) const override { w.f64(next_value); }
    void restore_state(sca::util::byte_reader& r) override { next_value = r.f64(); }
};

/// Leaky integrator consuming two tokens per firing through a one-token
/// input delay — multirate + delay exercise the ring positions.
struct snap_leaky : tdf::module {
    tdf::in<double> in;
    tdf::out<double> out;
    double y = 0.0;
    double a;

    snap_leaky(const de::module_name& nm, double alpha)
        : tdf::module(nm), in("in"), out("out"), a(alpha) {}
    void set_attributes() override {
        in.set_rate(2);
        in.set_delay(1);
    }
    void processing() override {
        for (unsigned j = 0; j < in.rate(); ++j) y += a * (in.read(j) - y);
        out.write(y);
    }

    [[nodiscard]] bool has_snapshot_state() const noexcept override { return true; }
    void save_state(sca::util::byte_writer& w) const override { w.f64(y); }
    void restore_state(sca::util::byte_reader& r) override { y = r.f64(); }
};

/// Pass-through that retimes its cluster every period (dynamic TDF): the
/// timestep pattern is derived from the restored cluster cycle count, the
/// private flag rides through its own snapshot hooks.
struct snap_retimer : tdf::module {
    tdf::in<double> in;
    tdf::out<double> out;
    de::time base_step;
    bool slow = false;

    snap_retimer(const de::module_name& nm, const de::time& s)
        : tdf::module(nm), in("in"), out("out"), base_step(s) {}
    [[nodiscard]] bool does_attribute_changes() const override { return true; }
    void set_attributes() override { set_timestep(base_step); }
    void processing() override { out.write(in.read()); }
    void change_attributes() override {
        slow = !slow;
        request_timestep(slow ? base_step * 2 : base_step);
    }

    [[nodiscard]] bool has_snapshot_state() const noexcept override { return true; }
    void save_state(sca::util::byte_writer& w) const override { w.boolean(slow); }
    void restore_state(sca::util::byte_reader& r) override { slow = r.boolean(); }
};

// ------------------------------------------------------- scenario families --

/// Static TDF: ramp -> leaky integrator (rate 2, delay 1) -> probe.
void define_static_tdf() {
    core::scenario::define(
        "snap_static_tdf", core::params{{"alpha", 0.125}},
        [](core::testbench& tb, const core::params& p) {
            auto& src = tb.make<snap_ramp>("src", de::time(1.0, de::time_unit::us));
            auto& fil = tb.make<snap_leaky>("leaky", p.get("alpha", 0.125));
            auto& s1 = tb.make<tdf::signal<double>>("s1");
            auto& s2 = tb.make<tdf::signal<double>>("s2");
            src.out.bind(s1);
            fil.in.bind(s1);
            fil.out.bind(s2);
            tb.probe("y", s2);
            tb.measure("y_final", [&s2] { return s2.last_value(); });
            tb.set_sample_period(10_us);
            tb.set_stop_time(1_ms);
        });
}

/// Block TDF: the real DSP library kernels, multirate, under block execution.
void define_block_tdf() {
    core::scenario::define(
        "snap_block_tdf", core::params{},
        [](core::testbench& tb, const core::params&) {
            tdf::registry::of(tb.context()).set_default_block_execution(true);
            auto& src = tb.make<snap_ramp>("src", de::time(3.0, de::time_unit::us));
            auto& f = tb.make<lib::fir>("fir", lib::fir::design_lowpass(15, 0.2));
            auto& bq = tb.make<lib::biquad>(
                "bq", lib::biquad_coefficients{0.2, 0.3, 0.1, -0.4, 0.05});
            auto& up = tb.make<lib::interpolator>("up", 3U);
            auto& down = tb.make<lib::decimator>("down", 4U);
            auto& w1 = tb.make<tdf::signal<double>>("w1");
            auto& w2 = tb.make<tdf::signal<double>>("w2");
            auto& w3 = tb.make<tdf::signal<double>>("w3");
            auto& w4 = tb.make<tdf::signal<double>>("w4");
            auto& w5 = tb.make<tdf::signal<double>>("w5");
            src.out.bind(w1);
            f.in.bind(w1);
            f.out.bind(w2);
            bq.in.bind(w2);
            bq.out.bind(w3);
            up.in.bind(w3);
            up.out.bind(w4);
            down.in.bind(w4);
            down.out.bind(w5);
            tb.probe("y", w5);
            tb.measure("y_final", [&w5] { return w5.last_value(); });
            tb.set_sample_period(24_us);
            tb.set_stop_time(2400_us);
        });
}

/// ELN switching: RC network with a DE-controlled switch toggled by a kernel
/// process — linear solver, numeric-only refactors, forced-BE steps.
void define_eln_switching() {
    core::scenario::define(
        "snap_eln_switch", core::params{{"r", 1e3}, {"c", 100e-9}},
        [](core::testbench& tb, const core::params& p) {
            auto& ctl = tb.make<de::signal<bool>>("ctl", false);
            auto& net = tb.make<eln::network>("net");
            net.set_timestep(2.0, de::time_unit::us);
            auto gnd = net.ground();
            auto vin = net.create_node("vin");
            auto vout = net.create_node("vout");
            tb.make<eln::vsource>("vs", net, vin, gnd,
                                  eln::waveform::sine(1.0, 2e3));
            tb.make<eln::resistor>("r", net, vin, vout, p.get("r", 1e3));
            tb.make<eln::capacitor>("c", net, vout, gnd, p.get("c", 100e-9));
            auto& sw = tb.make<eln::de_rswitch>("sw", net, vout, gnd, 50.0, 1e9);
            sw.ctrl.bind(ctl);
            // Kernel-side PWM: toggle every 50 us.  The toggler's state lives
            // in the DE signal, which the snapshot carries.
            tb.context().register_method("toggler", [&tb, &ctl] {
                ctl.write(!ctl.read());
                tb.context().next_trigger(50_us);
            });
            tb.probe("vout", [&net, vout] { return net.voltage(vout); });
            tb.measure("vout_final", [&net, vout] { return net.voltage(vout); });
            tb.set_sample_period(10_us);
            tb.set_stop_time(1_ms);
        });
}

/// LSF: sine source through gain + integrator (linear DAE view).
void define_lsf() {
    core::scenario::define(
        "snap_lsf", core::params{{"k", 3.0}},
        [](core::testbench& tb, const core::params& p) {
            auto& sys = tb.make<lsf::system>("sys");
            sys.set_timestep(1.0, de::time_unit::us);
            auto u = sys.create_signal("u");
            auto g = sys.create_signal("g");
            auto y = sys.create_signal("y");
            tb.make<lsf::source>("src", sys, u,
                                 lsf::waveform::sine(1.0, 5e3));
            tb.make<lsf::gain>("k", sys, u, g, p.get("k", 3.0));
            tb.make<lsf::integ>("i", sys, g, y, 1e3, 0.0);
            tb.probe("y", [&sys, y] { return sys.value(y); });
            tb.measure("y_final", [&sys, y] { return sys.value(y); });
            tb.set_sample_period(10_us);
            tb.set_stop_time(1_ms);
        });
}

/// Dynamic TDF: a retimer flips the cluster timestep every period, so the
/// restore path must re-install the right compiled schedule (cache or
/// recompile) before overlaying tokens.
void define_dynamic_tdf() {
    core::scenario::define(
        "snap_dynamic_tdf", core::params{},
        [](core::testbench& tb, const core::params&) {
            auto& src = tb.make<snap_ramp>("src", de::time::zero());
            auto& rt = tb.make<snap_retimer>("rt", de::time(5.0, de::time_unit::us));
            auto& s1 = tb.make<tdf::signal<double>>("s1");
            auto& s2 = tb.make<tdf::signal<double>>("s2");
            src.out.bind(s1);
            rt.in.bind(s1);
            rt.out.bind(s2);
            tb.probe("y", s2);
            tb.measure("y_final", [&s2] { return s2.last_value(); });
            tb.set_sample_period(20_us);
            tb.set_stop_time(2_ms);
        });
}

/// Nonlinear DAE: half-wave rectifier (diode + RC load) — Newton iteration,
/// adaptive internal steps, frozen LU pivot order.
void define_nonlinear() {
    core::scenario::define(
        "snap_nonlinear", core::params{{"c", 1e-6}},
        [](core::testbench& tb, const core::params& p) {
            auto& net = tb.make<eln::network>("net");
            net.set_timestep(5.0, de::time_unit::us);
            auto gnd = net.ground();
            auto vin = net.create_node("vin");
            auto vout = net.create_node("vout");
            tb.make<eln::vsource>("vs", net, vin, gnd,
                                  eln::waveform::sine(5.0, 1e3));
            tb.make<eln::diode>("d", net, vin, vout);
            tb.make<eln::resistor>("rl", net, vout, gnd, 10e3);
            tb.make<eln::capacitor>("cl", net, vout, gnd, p.get("c", 1e-6));
            tb.probe("vout", [&net, vout] { return net.voltage(vout); });
            tb.measure("vout_final", [&net, vout] { return net.voltage(vout); });
            tb.set_sample_period(20_us);
            tb.set_stop_time(2_ms);
        });
}

/// Tiny scenario for the byte-level robustness sweeps: small payload, fast
/// rebuilds.
void define_tiny() {
    core::scenario::define(
        "snap_tiny", core::params{},
        [](core::testbench& tb, const core::params&) {
            auto& s = tb.make<de::signal<double>>("s", 0.0);
            tb.context().register_method("bump", [&tb, &s] {
                s.write(s.read() + 1.0);
                tb.context().next_trigger(5_us);
            });
            tb.probe("s", s);
            tb.set_sample_period(5_us);
            tb.set_stop_time(20_us);
        });
}

std::string snap_path(const std::string& name) { return "snapshot_" + name + ".bin"; }

/// The acceptance harness: uninterrupted run to T+D vs snapshot-at-T /
/// restore-in-fresh-context / run-to-T+D.  The resumed trace covers (T, T+D];
/// every sample (and its timestamp, and the end measurements) must be
/// bit-equal to the uninterrupted run's tail.
void expect_resume_bit_identical(const std::string& scenario_name,
                                 const std::string& probe_name,
                                 const std::string& measurement_name,
                                 const de::time& t_snap, const de::time& t_extra) {
    auto sc = core::scenario::find(scenario_name);
    const std::string file = snap_path(scenario_name);

    auto ref = sc.build();
    ref->run(t_snap);
    ref->run(t_extra);

    auto original = sc.build();
    original->run(t_snap);
    original->snapshot(file);
    original.reset();  // fresh-process stand-in: the source bench is gone

    auto resumed = core::scenario::resume(file);
    resumed->run(t_extra);

    const auto full = ref->waveform(probe_name);
    const auto& full_t = ref->times();
    const auto tail = resumed->waveform(probe_name);
    const auto& tail_t = resumed->times();
    ASSERT_FALSE(tail.empty()) << scenario_name;
    ASSERT_GE(full.size(), tail.size()) << scenario_name;
    const std::size_t off = full.size() - tail.size();
    for (std::size_t i = 0; i < tail.size(); ++i) {
        ASSERT_EQ(full_t[off + i], tail_t[i])
            << scenario_name << " sample-time " << i;
        ASSERT_EQ(full[off + i], tail[i]) << scenario_name << " sample " << i;
    }
    EXPECT_EQ(ref->measurement(measurement_name), resumed->measurement(measurement_name))
        << scenario_name;
    std::remove(file.c_str());
}

std::vector<std::uint8_t> read_file(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes) {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
}

/// A snapshot file of the tiny scenario, as raw bytes.
std::vector<std::uint8_t> tiny_snapshot_bytes() {
    define_tiny();
    auto tb = core::scenario::find("snap_tiny").build();
    tb->run(20_us);
    const std::string file = snap_path("tiny");
    tb->snapshot(file);
    auto bytes = read_file(file);
    std::remove(file.c_str());
    return bytes;
}

std::string error_of(const std::string& path) {
    try {
        (void)core::scenario::resume(path);
    } catch (const sca::util::error& e) {
        return e.what();
    }
    return {};
}

}  // namespace

// ------------------------------------------------------- replay families --

TEST(snapshot, static_tdf_resumes_bit_identically) {
    define_static_tdf();
    expect_resume_bit_identical("snap_static_tdf", "y", "y_final", 500_us, 300_us);
}

TEST(snapshot, sliced_reference_equals_single_shot) {
    // The harness compares against a run sliced at T; this pins the premise
    // that slicing itself is bit-transparent, so the comparison isolates the
    // snapshot/restore boundary.
    define_static_tdf();
    auto sc = core::scenario::find("snap_static_tdf");
    auto sliced = sc.build();
    sliced->run(500_us);
    sliced->run(300_us);
    auto oneshot = sc.build();
    oneshot->run(800_us);
    const auto a = sliced->waveform("y");
    const auto b = oneshot->waveform("y");
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]) << i;
}

TEST(snapshot, block_tdf_multirate_pipeline) {
    define_block_tdf();
    expect_resume_bit_identical("snap_block_tdf", "y", "y_final", 1200_us, 600_us);
}

TEST(snapshot, eln_switching_network) {
    define_eln_switching();
    expect_resume_bit_identical("snap_eln_switch", "vout", "vout_final", 500_us, 300_us);
}

TEST(snapshot, lsf_integrator) {
    define_lsf();
    expect_resume_bit_identical("snap_lsf", "y", "y_final", 500_us, 300_us);
}

TEST(snapshot, dynamic_tdf_retiming) {
    define_dynamic_tdf();
    expect_resume_bit_identical("snap_dynamic_tdf", "y", "y_final", 1_ms, 500_us);
}

TEST(snapshot, nonlinear_dae_rectifier) {
    define_nonlinear();
    expect_resume_bit_identical("snap_nonlinear", "vout", "vout_final", 1_ms, 600_us);
}

TEST(snapshot, snapshot_at_different_cut_points_all_replay) {
    // The cut must be immaterial: any settled T yields the same T+D tail.
    define_static_tdf();
    for (const de::time t_snap : {100_us, 370_us, 990_us}) {
        expect_resume_bit_identical("snap_static_tdf", "y", "y_final", t_snap, 200_us);
    }
}

// ---------------------------------------------------------- preconditions --

TEST(snapshot, never_run_bench_is_refused) {
    define_static_tdf();
    auto tb = core::scenario::find("snap_static_tdf").build();
    std::ostringstream os;
    try {
        core::save_snapshot(*tb, os);
        FAIL() << "snapshot of a never-run bench must throw";
    } catch (const sca::util::error& e) {
        EXPECT_NE(std::string(e.what()).find("snapshot requires"), std::string::npos)
            << e.what();
    }
}

TEST(snapshot, unregistered_scenario_bench_is_refused) {
    core::testbench tb("not_a_registered_scenario");
    auto& s = tb.make<de::signal<double>>("s", 0.0);
    (void)s;
    tb.run(10_us);
    std::ostringstream os;
    try {
        core::save_snapshot(tb, os);
        FAIL() << "snapshot of a scenario-less bench must throw";
    } catch (const sca::util::error& e) {
        EXPECT_NE(std::string(e.what()).find("registered scenario"), std::string::npos)
            << e.what();
    }
}

// ------------------------------------------------------------- robustness --

TEST(snapshot_robustness, truncation_at_every_byte_is_detected) {
    const auto bytes = tiny_snapshot_bytes();
    ASSERT_GT(bytes.size(), 13U);
    const std::string file = snap_path("truncated");
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        write_file(file, {bytes.begin(), bytes.begin() + static_cast<long>(cut)});
        EXPECT_THROW((void)core::scenario::resume(file), sca::util::error)
            << "cut at byte " << cut << " of " << bytes.size();
    }
    std::remove(file.c_str());
}

TEST(snapshot_robustness, bad_magic_is_refused) {
    auto bytes = tiny_snapshot_bytes();
    bytes[0] ^= 0xFF;
    const std::string file = snap_path("badmagic");
    write_file(file, bytes);
    EXPECT_NE(error_of(file).find("bad frame magic"), std::string::npos);
    std::remove(file.c_str());
}

TEST(snapshot_robustness, corrupt_payload_fails_the_checksum) {
    auto bytes = tiny_snapshot_bytes();
    bytes[bytes.size() / 2] ^= 0x01;  // flip one payload bit
    const std::string file = snap_path("badsum");
    write_file(file, bytes);
    EXPECT_NE(error_of(file).find("checksum"), std::string::npos);
    std::remove(file.c_str());
}

TEST(snapshot_robustness, unsupported_version_is_refused) {
    const auto bytes = tiny_snapshot_bytes();
    // Re-frame the payload with its leading version word bumped.
    std::size_t offset = 0;
    wire::frame f;
    ASSERT_TRUE(wire::unpack_frame(bytes.data(), bytes.size(), offset, f));
    f.payload[0] += 1;  // little-endian u32 version
    const std::string file = snap_path("badversion");
    write_file(file, wire::pack_frame(wire::msg_type::snapshot_state, f.payload));
    EXPECT_NE(error_of(file).find("unsupported snapshot version"), std::string::npos);
    std::remove(file.c_str());
}

TEST(snapshot_robustness, wrong_frame_type_is_refused) {
    const auto bytes = tiny_snapshot_bytes();
    std::size_t offset = 0;
    wire::frame f;
    ASSERT_TRUE(wire::unpack_frame(bytes.data(), bytes.size(), offset, f));
    const std::string file = snap_path("wrongtype");
    write_file(file, wire::pack_frame(wire::msg_type::result, f.payload));
    EXPECT_NE(error_of(file).find("not a snapshot file"), std::string::npos);
    std::remove(file.c_str());
}

TEST(snapshot_robustness, trailing_bytes_are_refused) {
    auto bytes = tiny_snapshot_bytes();
    bytes.push_back(0x00);
    const std::string file = snap_path("trailing");
    write_file(file, bytes);
    EXPECT_NE(error_of(file).find("trailing bytes"), std::string::npos);
    std::remove(file.c_str());
}

TEST(snapshot_robustness, structural_fingerprint_mismatch_is_refused) {
    define_tiny();
    auto tb = core::scenario::find("snap_tiny").build();
    tb->run(20_us);
    const std::string file = snap_path("fpmismatch");
    tb->snapshot(file);
    tb.reset();
    // Redefine the scenario with a different shape: same name, extra signal.
    core::scenario::define(
        "snap_tiny", core::params{},
        [](core::testbench& b, const core::params&) {
            auto& s = b.make<de::signal<double>>("s", 0.0);
            auto& extra = b.make<de::signal<double>>("extra", 1.0);
            (void)extra;
            b.context().register_method("bump", [&b, &s] {
                s.write(s.read() + 1.0);
                b.context().next_trigger(5_us);
            });
            b.probe("s", s);
            b.set_sample_period(5_us);
            b.set_stop_time(20_us);
        });
    EXPECT_NE(error_of(file).find("structural fingerprint mismatch"), std::string::npos);
    define_tiny();  // restore the canonical definition for other tests
    std::remove(file.c_str());
}

// -------------------------------------------------- warm-start journaling --

TEST(snapshot_warm_start, journal_records_and_resumes_the_snapshot) {
    define_nonlinear();
    const std::string journal = "snapshot_warmstart.journal";
    std::remove(journal.c_str());
    auto sc = core::scenario::find("snap_nonlinear");

    core::run_set runs(sc);
    runs.add_point(core::params{});
    runs.set_checkpoint(journal).set_warm_start(200_us);
    const auto table = runs.run_all();
    ASSERT_EQ(table.runs().size(), 1U);

    const core::checkpoint_fingerprint fp{"snap_nonlinear", runs.base_seed(), 1, true};
    const auto payload = core::load_checkpoint_snapshot(journal, fp);
    ASSERT_FALSE(payload.empty());

    // The journaled snapshot resumes like any other and replays the
    // uninterrupted defaults run bit-identically.
    auto ref = sc.build();
    ref->run(200_us);
    ref->run(300_us);
    auto resumed = core::decode_snapshot(payload);
    resumed->run(300_us);
    const auto full = ref->waveform("vout");
    const auto tail = resumed->waveform("vout");
    ASSERT_FALSE(tail.empty());
    ASSERT_GE(full.size(), tail.size());
    const std::size_t off = full.size() - tail.size();
    for (std::size_t i = 0; i < tail.size(); ++i) ASSERT_EQ(full[off + i], tail[i]) << i;

    // Journal readers that ignore snapshots still load the result frames.
    const auto done = core::load_checkpoint(journal, fp);
    EXPECT_EQ(done.size(), 1U);
    std::remove(journal.c_str());
}

TEST(snapshot_warm_start, journal_fingerprint_mismatch_is_refused) {
    define_nonlinear();
    const std::string journal = "snapshot_warmstart_fp.journal";
    std::remove(journal.c_str());
    core::run_set runs(core::scenario::find("snap_nonlinear"));
    runs.add_point(core::params{});
    runs.set_checkpoint(journal).set_warm_start(100_us);
    (void)runs.run_all();

    const core::checkpoint_fingerprint other{"snap_nonlinear", 12345, 1, true};
    EXPECT_THROW((void)core::load_checkpoint_snapshot(journal, other), sca::util::error);
    std::remove(journal.c_str());
}
