// Synchronization-layer tests: DE<->TDF converter ports, timestamp accuracy,
// consistent initial state across MoC boundaries, cluster/DE interleaving.
#include <gtest/gtest.h>

#include <vector>

#include "core/simulation.hpp"
#include "eln/converter.hpp"
#include "eln/network.hpp"
#include "eln/primitives.hpp"
#include "eln/sources.hpp"
#include "kernel/clock.hpp"
#include "kernel/signal.hpp"
#include "tdf/cluster.hpp"
#include "tdf/converter.hpp"
#include "tdf/module.hpp"
#include "util/object_bag.hpp"

namespace de = sca::de;
namespace tdf = sca::tdf;
namespace eln = sca::eln;
namespace core = sca::core;
using namespace sca::de::literals;

namespace {

/// Records (time, value) on every change of a DE signal.
struct de_change_logger : de::module {
    de::in<double> in;
    std::vector<std::pair<double, double>> log;

    explicit de_change_logger(const de::module_name& nm) : de::module(nm), in("in") {
        declare_method("watch", [this] { log.emplace_back(now().to_seconds(), in.read()); })
            .sensitive(in)
            .dont_initialize();
    }
};

/// TDF module writing `rate` samples per activation through a de_out port.
struct staircase_writer : tdf::module {
    tdf::de_out<double> out;

    explicit staircase_writer(const de::module_name& nm) : tdf::module(nm), out("out") {
        out.set_rate(4);
    }
    void set_attributes() override { set_timestep(4.0, de::time_unit::us); }
    void processing() override {
        const double base = static_cast<double>(activation_count()) * 4.0;
        for (unsigned k = 0; k < 4; ++k) out.write(base + k, k);
    }
};

}  // namespace

TEST(sync, de_out_multirate_timestamps_are_exact) {
    core::simulation sim;
    de::signal<double> wire("wire", -1.0);
    staircase_writer src("src");
    de_change_logger logger("logger");
    src.out.bind(wire);
    logger.in.bind(wire);

    sim.run(12_us);
    // Samples at 0,1,2,3,4,... us with values 0,1,2,3,4,...
    ASSERT_GE(logger.log.size(), 12U);
    for (std::size_t i = 0; i < 12; ++i) {
        EXPECT_NEAR(logger.log[i].first, static_cast<double>(i) * 1e-6, 1e-12) << i;
        EXPECT_DOUBLE_EQ(logger.log[i].second, static_cast<double>(i)) << i;
    }
}

namespace {

struct de_in_sampler : tdf::module {
    tdf::de_in<double> in;
    std::vector<double> seen;

    explicit de_in_sampler(const de::module_name& nm) : tdf::module(nm), in("in") {}
    void set_attributes() override { set_timestep(10.0, de::time_unit::us); }
    void processing() override { seen.push_back(in.read()); }
};

}  // namespace

TEST(sync, de_in_samples_at_activation_time) {
    core::simulation sim;
    de::signal<double> wire("wire", 0.0);
    de_in_sampler mod("mod");
    mod.in.bind(wire);
    // Change the DE value between cluster activations.
    auto& driver = sim.context().register_method("driver", [&] {
        wire.write(wire.read() + 1.0);
        sim.context().next_trigger(10_us);
    });
    (void)driver;

    sim.run(35_us);
    // Cluster activations at 0,10,20,30 us; driver also runs at those times.
    // Whether the cluster sees the pre- or post-update value at the shared
    // timestamp is resolved by the signal's deferred update: the cluster
    // reads the OLD value (both run in the same evaluation phase).
    ASSERT_EQ(mod.seen.size(), 4U);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_DOUBLE_EQ(mod.seen[i], static_cast<double>(i));
    }
}

TEST(sync, consistent_initial_state_at_t0) {
    // Paper: "the synchronization also requires the formal definition of a
    // consistent initial (quiescent) state".  The first TDF sample out of an
    // ELN network must be the DC solution, not zero.
    core::simulation sim;
    sca::util::object_bag bag;
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto vin = net.create_node("vin");
    auto vout = net.create_node("vout");
    bag.make<eln::vsource>("vs", net, vin, gnd, eln::waveform::dc(6.0));
    bag.make<eln::resistor>("r1", net, vin, vout, 1000.0);
    bag.make<eln::resistor>("r2", net, vout, gnd, 2000.0);
    auto& probe = bag.make<eln::tdf_vsink>("probe", net, vout, gnd);

    struct first_sample_sink : tdf::module {
        tdf::in<double> in;
        std::vector<double> got;
        explicit first_sample_sink(const de::module_name& nm) : tdf::module(nm), in("in") {}
        void processing() override { got.push_back(in.read()); }
    } sink("sink");
    tdf::signal<double> s("s");
    probe.outp.bind(s);
    sink.in.bind(s);

    sim.run(2_us);
    ASSERT_FALSE(sink.got.empty());
    EXPECT_NEAR(sink.got.front(), 4.0, 1e-9);  // DC divider value at t=0
}

TEST(sync, de_event_reaches_network_within_one_period) {
    core::simulation sim;
    sca::util::object_bag bag;
    de::signal<double> level("level", 0.0);
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto n = net.create_node("n");
    auto& src = bag.make<eln::de_vsource>("src", net, n, gnd);
    bag.make<eln::resistor>("r", net, n, gnd, 1000.0);
    src.inp.bind(level);

    sim.run(1_us);
    EXPECT_NEAR(net.voltage(n), 0.0, 1e-12);
    level.write(7.5);
    sim.run(2_us);
    EXPECT_NEAR(net.voltage(n), 7.5, 1e-9);
}

TEST(sync, tdf_cluster_and_de_clock_interleave) {
    core::simulation sim;
    de::clock clk("clk", 3_us);
    struct edge_counter : de::module {
        de::in<bool> c;
        int edges = 0;
        explicit edge_counter(const de::module_name& nm) : de::module(nm), c("c") {
            declare_method("count", [this] { ++edges; }).sensitive(c).dont_initialize();
        }
    } counter("counter");
    counter.c.bind(clk.sig());

    struct ticker : tdf::module {
        tdf::out<double> out;
        explicit ticker(const de::module_name& nm) : tdf::module(nm), out("out") {}
        void set_attributes() override { set_timestep(2.0, de::time_unit::us); }
        void processing() override { out.write(1.0); }
    } tick("tick");
    struct null_sink : tdf::module {
        tdf::in<double> in;
        explicit null_sink(const de::module_name& nm) : tdf::module(nm), in("in") {}
        void processing() override { (void)in.read(); }
    } sink("sink");
    tdf::signal<double> s("s");
    tick.out.bind(s);
    sink.in.bind(s);

    sim.run(12_us);
    // Both worlds advanced: 12/1.5 = 8 clock edges, 7 TDF activations.
    EXPECT_EQ(counter.edges, 9);           // t=0,1.5,...,12 -> 9 changes
    EXPECT_EQ(tick.activation_count(), 7U);  // t=0,2,...,12
}

TEST(sync, network_activations_track_cluster_period) {
    core::simulation sim;
    sca::util::object_bag bag;
    eln::network net("net");
    net.set_timestep(5.0, de::time_unit::us);
    auto gnd = net.ground();
    auto n = net.create_node("n");
    bag.make<eln::isource>("is", net, gnd, n, eln::waveform::dc(1e-3));
    bag.make<eln::resistor>("r", net, n, gnd, 1000.0);

    sim.run(50_us);
    EXPECT_EQ(net.activation_count(), 11U);  // t = 0, 5, ..., 50 us
    EXPECT_EQ(net.factorizations(), 1U);     // linear: factored exactly once
}

// ------------------------------------------------- batched synchronization

TEST(sync, converter_ports_mark_cluster_de_coupled) {
    core::simulation sim;
    de::signal<double> wire("wire", -1.0);
    staircase_writer src("src");
    src.out.bind(wire);
    sim.elaborate();
    auto& reg = tdf::registry::of(sim.context());
    ASSERT_EQ(reg.clusters().size(), 1U);
    // A de_out converter port forces per-period synchronization.
    EXPECT_TRUE(reg.clusters()[0]->de_coupled());
}

TEST(sync, de_controlled_network_is_de_coupled) {
    core::simulation sim;
    sca::util::object_bag bag;
    de::signal<double> level("level", 0.0);
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto n = net.create_node("n");
    auto& src = bag.make<eln::de_vsource>("src", net, n, gnd);
    bag.make<eln::resistor>("r", net, n, gnd, 1000.0);
    src.inp.bind(level);
    sim.elaborate();
    auto& reg = tdf::registry::of(sim.context());
    ASSERT_EQ(reg.clusters().size(), 1U);
    EXPECT_TRUE(reg.clusters()[0]->de_coupled());
}

TEST(sync, pure_network_cluster_is_not_de_coupled) {
    core::simulation sim;
    sca::util::object_bag bag;
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto n = net.create_node("n");
    bag.make<eln::isource>("is", net, gnd, n, eln::waveform::dc(1e-3));
    bag.make<eln::resistor>("r", net, n, gnd, 1000.0);
    sim.elaborate();
    auto& reg = tdf::registry::of(sim.context());
    ASSERT_EQ(reg.clusters().size(), 1U);
    EXPECT_FALSE(reg.clusters()[0]->de_coupled());
}

namespace {

/// A pure TDF pipeline observed by a periodic DE process reading the raw
/// signal buffer; returns the observer's log.  Guards the batching contract:
/// timed DE observers must see exactly what per-period execution produces.
std::vector<double> run_observed_pipeline(std::uint64_t max_batch_periods) {
    core::simulation sim;
    tdf::registry::of(sim.context()).set_default_max_batch_periods(max_batch_periods);

    struct ramp : tdf::module {
        tdf::out<double> out;
        double v = 0.0;
        explicit ramp(const de::module_name& nm) : tdf::module(nm), out("out") {}
        void set_attributes() override { set_timestep(2.0, de::time_unit::us); }
        void processing() override { out.write(v += 1.0); }
    } src("src");
    struct sink_mod : tdf::module {
        tdf::in<double> in;
        explicit sink_mod(const de::module_name& nm) : tdf::module(nm), in("in") {}
        void processing() override { (void)in.read(); }
    } snk("snk");
    tdf::signal<double> s("s");
    src.out.bind(s);
    snk.in.bind(s);

    // Periodic observer at 7 us (deliberately unaligned with the 2 us
    // cluster period), reading the most recent token.
    std::vector<double> log;
    auto& watcher = sim.context().register_method("watch", [&] {
        log.push_back(s.last_value());
        sim.context().next_trigger(7_us);
    });
    (void)watcher;

    sim.run(200_us);
    return log;
}

}  // namespace

TEST(sync, batched_execution_invisible_to_timed_de_observer) {
    const auto per_period = run_observed_pipeline(1);
    const auto batched = run_observed_pipeline(tdf::cluster::k_default_max_batch_periods);
    ASSERT_EQ(per_period.size(), batched.size());
    for (std::size_t i = 0; i < per_period.size(); ++i) {
        ASSERT_EQ(per_period[i], batched[i]) << "observation " << i;
    }
}

TEST(sync, batched_network_reuses_factorization) {
    core::simulation sim;
    sca::util::object_bag bag;
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto n = net.create_node("n");
    bag.make<eln::vsource>("vs", net, n, gnd, eln::waveform::sine(1.0, 10e3));
    bag.make<eln::resistor>("r", net, n, gnd, 1000.0);

    sim.run(500_us);
    auto& reg = tdf::registry::of(sim.context());
    ASSERT_EQ(reg.clusters().size(), 1U);
    EXPECT_FALSE(reg.clusters()[0]->de_coupled());
    EXPECT_EQ(net.activation_count(), 501U);
    // The iteration matrix is factored exactly once even though activations
    // run in batches of up to k_default_max_batch_periods.
    EXPECT_EQ(net.factorizations(), 1U);
}
