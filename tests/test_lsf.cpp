// Linear signal-flow view tests: primitive relations, integrators, transfer
// functions, zero-pole, state-space, converters.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/simulation.hpp"
#include "core/transient.hpp"
#include "lsf/ltf.hpp"
#include "lsf/node.hpp"
#include "lsf/primitives.hpp"
#include "lsf/state_space.hpp"
#include "lsf/view.hpp"
#include "util/report.hpp"

namespace de = sca::de;
namespace lsf = sca::lsf;
namespace core = sca::core;
using namespace sca::de::literals;

TEST(lsf, gain_add_sub_relations) {
    core::simulation sim;
    lsf::system sys("sys");
    sys.set_timestep(1.0, de::time_unit::us);
    auto u = sys.create_signal("u");
    auto g = sys.create_signal("g");
    auto s = sys.create_signal("s");
    auto d = sys.create_signal("d");
    lsf::source src("src", sys, u, lsf::waveform::dc(2.0));
    lsf::gain k("k", sys, u, g, 3.0);
    lsf::add a("a", sys, u, g, s);
    lsf::sub m("m", sys, s, u, d);

    sim.run(3_us);
    EXPECT_NEAR(sys.value(g), 6.0, 1e-12);
    EXPECT_NEAR(sys.value(s), 8.0, 1e-12);
    EXPECT_NEAR(sys.value(d), 6.0, 1e-12);
}

TEST(lsf, integrator_ramp) {
    core::simulation sim;
    lsf::system sys("sys");
    sys.set_timestep(1.0, de::time_unit::us);
    auto u = sys.create_signal("u");
    auto y = sys.create_signal("y");
    lsf::source src("src", sys, u, lsf::waveform::dc(1000.0));
    lsf::integ integ("i", sys, u, y, 1.0, 0.0);

    sim.run(1_ms);
    EXPECT_NEAR(sys.value(y), 1.0, 1e-6);  // 1000 * 1e-3
}

TEST(lsf, integrator_initial_condition) {
    core::simulation sim;
    lsf::system sys("sys");
    sys.set_timestep(1.0, de::time_unit::us);
    auto u = sys.create_signal("u");
    auto y = sys.create_signal("y");
    lsf::source src("src", sys, u, lsf::waveform::dc(0.0));
    lsf::integ integ("i", sys, u, y, 1.0, 2.5);

    sim.run(10_us);
    EXPECT_NEAR(sys.value(y), 2.5, 1e-9);
}

TEST(lsf, differentiator_of_ramp) {
    core::simulation sim;
    lsf::system sys("sys");
    sys.set_timestep(1.0, de::time_unit::us);
    // Trapezoidal integration rings on a pure differentiator (marginally
    // stable difference equation); backward Euler is the right choice here.
    sys.set_integration_method(sca::solver::integration_method::backward_euler);
    auto u = sys.create_signal("u");
    auto y = sys.create_signal("y");
    lsf::source src("src", sys, u,
                    lsf::waveform::custom([](double t) { return 5000.0 * t; }));
    lsf::dot d("d", sys, u, y, 1.0);

    sim.run(100_us);
    EXPECT_NEAR(sys.value(y), 5000.0, 1.0);
}

TEST(lsf, first_order_lowpass_step) {
    core::simulation sim;
    lsf::system sys("sys");
    sys.set_timestep(1.0, de::time_unit::us);
    auto u = sys.create_signal("u");
    auto y = sys.create_signal("y");
    const double fc = 1000.0;  // tau ~= 159 us
    const auto tf = lsf::filters::first_order_lowpass(fc);
    lsf::source src("src", sys, u, lsf::waveform::dc(1.0));
    lsf::ltf_nd f("f", sys, u, y, tf.num, tf.den);

    core::transient_recorder rec(sim, 10_us);
    rec.add_probe("y", [&] { return sys.value(y); });
    rec.run(2_ms);

    const double tau = 1.0 / (2.0 * std::numbers::pi * fc);
    const auto v = rec.column(0);
    // Compare a mid-trajectory point against the analytic charging curve.
    const double t_probe = rec.times()[50];
    EXPECT_NEAR(v[50], 1.0 - std::exp(-t_probe / tau), 5e-3);
    EXPECT_NEAR(v.back(), 1.0, 1e-3);
}

TEST(lsf, second_order_bandpass_rejects_dc) {
    core::simulation sim;
    lsf::system sys("sys");
    sys.set_timestep(1.0, de::time_unit::us);
    auto u = sys.create_signal("u");
    auto y = sys.create_signal("y");
    const auto tf = lsf::filters::bandpass_biquad(10e3, 2.0);
    lsf::source src("src", sys, u, lsf::waveform::dc(1.0));
    lsf::ltf_nd f("f", sys, u, y, tf.num, tf.den);

    sim.run(2_ms);
    EXPECT_NEAR(sys.value(y), 0.0, 1e-3);
}

TEST(lsf, bandpass_passes_center_frequency) {
    core::simulation sim;
    lsf::system sys("sys");
    sys.set_timestep(200.0, de::time_unit::ns);
    auto u = sys.create_signal("u");
    auto y = sys.create_signal("y");
    const double f0 = 10e3;
    const auto tf = lsf::filters::bandpass_biquad(f0, 2.0);
    lsf::source src("src", sys, u, lsf::waveform::sine(1.0, f0));
    lsf::ltf_nd f("f", sys, u, y, tf.num, tf.den);

    core::transient_recorder rec(sim, 5_us);
    rec.add_probe("y", [&] { return sys.value(y); });
    rec.run(3_ms);  // settle, then measure

    const auto v = rec.column(0);
    double amp = 0.0;
    for (std::size_t i = v.size() / 2; i < v.size(); ++i) amp = std::max(amp, std::abs(v[i]));
    EXPECT_NEAR(amp, 1.0, 0.03);  // unity gain at center
}

TEST(lsf, ltf_zp_matches_nd_realization) {
    // H(s) = g (s - z) / ((s - p1)(s - p2)) built both ways must agree.
    const std::vector<std::complex<double>> zeros{{-1000.0, 0.0}};
    const std::vector<std::complex<double>> poles{{-2000.0, 3000.0}, {-2000.0, -3000.0}};

    core::simulation sim;
    lsf::system sys("sys");
    sys.set_timestep(1.0, de::time_unit::us);
    auto u = sys.create_signal("u");
    auto y1 = sys.create_signal("y1");
    auto y2 = sys.create_signal("y2");
    lsf::source src("src", sys, u, lsf::waveform::sine(1.0, 500.0));
    lsf::ltf_zp zp("zp", sys, u, y1, zeros, poles, 2.0);
    const auto num = [&] {
        auto n = lsf::poly_from_roots(zeros);
        for (double& c : n) c *= 2.0;
        return n;
    }();
    lsf::ltf_nd nd("nd", sys, u, y2, num, lsf::poly_from_roots(poles));

    core::transient_recorder rec(sim, 10_us);
    rec.add_probe("y1", [&] { return sys.value(y1); });
    rec.add_probe("y2", [&] { return sys.value(y2); });
    rec.run(5_ms);

    const auto a = rec.column(0);
    const auto b = rec.column(1);
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-9);
}

TEST(lsf, poly_from_roots_requires_conjugate_closure) {
    EXPECT_THROW((void)lsf::poly_from_roots({{1.0, 2.0}}), sca::util::error);
    const auto p = lsf::poly_from_roots({{-1.0, 2.0}, {-1.0, -2.0}});
    ASSERT_EQ(p.size(), 3U);
    EXPECT_NEAR(p[0], 5.0, 1e-12);   // (s+1)^2 + 4 = s^2 + 2s + 5
    EXPECT_NEAR(p[1], 2.0, 1e-12);
    EXPECT_NEAR(p[2], 1.0, 1e-12);
}

TEST(lsf, state_space_matches_transfer_function) {
    // dx/dt = -w x + w u, y = x  == first-order lowpass.
    core::simulation sim;
    lsf::system sys("sys");
    sys.set_timestep(1.0, de::time_unit::us);
    auto u = sys.create_signal("u");
    auto y_ss = sys.create_signal("y_ss");
    auto y_tf = sys.create_signal("y_tf");
    const double w = 2.0 * std::numbers::pi * 1000.0;
    sca::num::dense_matrix_d a(1, 1), b(1, 1), c(1, 1), d(1, 1);
    a(0, 0) = -w;
    b(0, 0) = w;
    c(0, 0) = 1.0;
    d(0, 0) = 0.0;
    lsf::source src("src", sys, u, lsf::waveform::dc(1.0));
    lsf::state_space ss("ss", sys, {u}, {y_ss}, a, b, c, d);
    const auto tf = lsf::filters::first_order_lowpass(1000.0);
    lsf::ltf_nd f("f", sys, u, y_tf, tf.num, tf.den);

    core::transient_recorder rec(sim, 20_us);
    rec.add_probe("ss", [&] { return sys.value(y_ss); });
    rec.add_probe("tf", [&] { return sys.value(y_tf); });
    rec.run(1_ms);

    const auto va = rec.column(0);
    const auto vb = rec.column(1);
    for (std::size_t i = 0; i < va.size(); ++i) EXPECT_NEAR(va[i], vb[i], 1e-6);
}

TEST(lsf, double_driver_is_rejected) {
    core::simulation sim;
    lsf::system sys("sys");
    sys.set_timestep(1.0, de::time_unit::us);
    auto u = sys.create_signal("u");
    lsf::source s1("s1", sys, u, lsf::waveform::dc(1.0));
    lsf::source s2("s2", sys, u, lsf::waveform::dc(2.0));
    EXPECT_THROW(sim.run(1_us), sca::util::error);
}

TEST(lsf, undriven_signal_is_rejected) {
    core::simulation sim;
    lsf::system sys("sys");
    sys.set_timestep(1.0, de::time_unit::us);
    auto u = sys.create_signal("u");
    auto y = sys.create_signal("y");
    lsf::gain g("g", sys, u, y, 1.0);  // u has no driver
    EXPECT_THROW(sim.run(1_us), sca::util::error);
}

TEST(lsf, tdf_converters_roundtrip) {
    core::simulation sim;
    lsf::system sys("sys");
    sys.set_timestep(1.0, de::time_unit::us);
    auto u = sys.create_signal("u");
    auto y = sys.create_signal("y");
    lsf::from_tdf from("from", sys, u);
    lsf::gain g("g", sys, u, y, -2.0);
    lsf::to_tdf to("to", sys, y);

    // External TDF stimulus / collector.
    struct stim : sca::tdf::module {
        sca::tdf::out<double> out;
        explicit stim(const de::module_name& nm) : sca::tdf::module(nm), out("out") {}
        void processing() override { out.write(static_cast<double>(activation_count())); }
    } s("s");
    struct sink : sca::tdf::module {
        sca::tdf::in<double> in;
        std::vector<double> got;
        explicit sink(const de::module_name& nm) : sca::tdf::module(nm), in("in") {}
        void processing() override { got.push_back(in.read()); }
    } k("k");
    sca::tdf::signal<double> sin_("sin"), sout_("sout");
    s.out.bind(sin_);
    from.inp.bind(sin_);
    to.outp.bind(sout_);
    k.in.bind(sout_);

    sim.run(4_us);
    ASSERT_EQ(k.got.size(), 5U);
    EXPECT_DOUBLE_EQ(k.got[0], 0.0);
    EXPECT_DOUBLE_EQ(k.got[3], -6.0);
}
