// Edge cases, error paths, and failure injection across all layers: the
// library must fail loudly and informatively on misuse, and the newer
// primitives (ideal opamp, gyrator, de_isource) must match their closed
// forms.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/ac_analysis.hpp"
#include "core/noise_analysis.hpp"
#include "core/simulation.hpp"
#include "core/transient.hpp"
#include "eln/converter.hpp"
#include "eln/network.hpp"
#include "eln/primitives.hpp"
#include "eln/sources.hpp"
#include "kernel/clock.hpp"
#include "lib/amplifier.hpp"
#include "lib/converters.hpp"
#include "lib/filters.hpp"
#include "lsf/ltf.hpp"
#include "lsf/node.hpp"
#include "lsf/primitives.hpp"
#include "solver/linear_dae.hpp"
#include "solver/nonlinear_dae.hpp"
#include "tdf/module.hpp"
#include "util/report.hpp"
#include "util/object_bag.hpp"

namespace de = sca::de;
namespace tdf = sca::tdf;
namespace eln = sca::eln;
namespace lsf = sca::lsf;
namespace lib = sca::lib;
namespace core = sca::core;
namespace solver = sca::solver;
using namespace sca::de::literals;

// ------------------------------------------------------------------- kernel

TEST(kernel_edge, event_cancel_then_renotify) {
    de::simulation_context ctx;
    de::event ev("ev");
    std::vector<double> stamps;
    auto& p = ctx.register_method("w", [&] { stamps.push_back(ctx.now().to_seconds()); });
    p.dont_initialize();
    p.make_sensitive(ev);
    ev.notify(5_ns);
    ev.cancel();
    ev.notify(8_ns);
    ctx.run(20_ns);
    ASSERT_EQ(stamps.size(), 1U);
    EXPECT_DOUBLE_EQ(stamps[0], 8e-9);
}

TEST(kernel_edge, two_contexts_can_be_juggled) {
    de::simulation_context a;
    de::signal<int> sa("sa", 1);
    de::simulation_context b;
    de::signal<int> sb("sb", 2);
    // Objects registered with the context current at their construction.
    EXPECT_EQ(&sa.context(), &a);
    EXPECT_EQ(&sb.context(), &b);
    a.make_current();
    de::signal<int> sa2("sa2", 3);
    EXPECT_EQ(&sa2.context(), &a);
}

TEST(kernel_edge, find_object_misses_return_null) {
    de::simulation_context ctx;
    de::signal<int> s("present", 0);
    EXPECT_EQ(ctx.find_object("absent"), nullptr);
    EXPECT_EQ(ctx.find_object("present"), &s);
}

TEST(kernel_edge, optional_port_with_sensitivity_is_rejected) {
    de::simulation_context ctx;
    struct m : de::module {
        de::in<double> p;
        explicit m(const de::module_name& nm) : de::module(nm), p("p") {
            p.set_optional();
            declare_method("x", [] {}).sensitive(p);
        }
    } mod("mod");
    EXPECT_THROW(ctx.elaborate(), sca::util::error);
}

TEST(kernel_edge, next_trigger_outside_process_throws) {
    de::simulation_context ctx;
    EXPECT_THROW(ctx.next_trigger(1_ns), sca::util::error);
}

TEST(kernel_edge, signal_initialize_bypasses_update_phase) {
    de::simulation_context ctx;
    de::signal<double> s("s", 0.0);
    s.initialize(42.0);
    EXPECT_DOUBLE_EQ(s.read(), 42.0);
}

// --------------------------------------------------------------------- tdf

TEST(tdf_edge, initial_token_values_are_configurable) {
    de::simulation_context ctx;
    struct src : tdf::module {
        tdf::out<double> out;
        explicit src(const de::module_name& nm) : tdf::module(nm), out("out") {}
        void set_attributes() override {
            set_timestep(1.0, de::time_unit::us);
            out.set_delay(2);
        }
        void initialize() override { out.set_initial_value(7.5); }
        void processing() override { out.write(1.0); }
    } s("s");
    struct snk : tdf::module {
        tdf::in<double> in;
        std::vector<double> got;
        explicit snk(const de::module_name& nm) : tdf::module(nm), in("in") {}
        void processing() override { got.push_back(in.read()); }
    } k("k");
    tdf::signal<double> sig("sig");
    s.out.bind(sig);
    k.in.bind(sig);
    ctx.run(3_us);
    ASSERT_EQ(k.got.size(), 4U);
    EXPECT_DOUBLE_EQ(k.got[0], 7.5);  // the two delay tokens
    EXPECT_DOUBLE_EQ(k.got[1], 7.5);
    EXPECT_DOUBLE_EQ(k.got[2], 1.0);
}

TEST(tdf_edge, multiple_readers_with_different_delays) {
    de::simulation_context ctx;
    struct src : tdf::module {
        tdf::out<double> out;
        double v = 0.0;
        explicit src(const de::module_name& nm) : tdf::module(nm), out("out") {}
        void set_attributes() override { set_timestep(1.0, de::time_unit::us); }
        void processing() override { out.write(v++); }
    } s("s");
    struct snk : tdf::module {
        tdf::in<double> in;
        std::vector<double> got;
        explicit snk(const de::module_name& nm) : tdf::module(nm), in("in") {}
        void processing() override { got.push_back(in.read()); }
    } fast("fast"), delayed("delayed");
    delayed.in.set_delay(3);
    tdf::signal<double> sig("sig");
    s.out.bind(sig);
    fast.in.bind(sig);
    delayed.in.bind(sig);
    ctx.run(5_us);
    ASSERT_EQ(fast.got.size(), 6U);
    ASSERT_EQ(delayed.got.size(), 6U);
    EXPECT_DOUBLE_EQ(fast.got[0], 0.0);
    EXPECT_DOUBLE_EQ(delayed.got[3], 0.0);  // shifted by three initial tokens
    EXPECT_DOUBLE_EQ(delayed.got[5], 2.0);
}

TEST(tdf_edge, unbound_write_throws) {
    de::simulation_context ctx;
    tdf::out<double> dangling("dangling");
    EXPECT_THROW(dangling.write(1.0), sca::util::error);
}

TEST(tdf_edge, two_writers_on_one_signal_rejected) {
    // Writer attachment happens at binding resolution (elaboration), so the
    // conflict is reported there with both port paths in the message.
    de::simulation_context ctx;
    struct src : tdf::module {
        tdf::out<double> out;
        explicit src(const de::module_name& nm) : tdf::module(nm), out("out") {
            set_timestep(1.0, de::time_unit::us);
        }
        void processing() override { out.write(1.0); }
    } w1("w1"), w2("w2");
    tdf::signal<double> sig("sig");
    w1.out.bind(sig);
    w2.out.bind(sig);
    try {
        ctx.elaborate();
        FAIL() << "expected the two-writer conflict to be reported";
    } catch (const sca::util::error& e) {
        EXPECT_NE(std::string(e.what()).find("w1.out"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("w2.out"), std::string::npos);
    }
}

// ------------------------------------------------------------------ solver

TEST(solver_edge, linear_solver_rejects_nonlinear_system) {
    solver::equation_system sys;
    (void)sys.add_unknown("x");
    sys.add_nonlinear([](const std::vector<double>&, std::vector<double>&,
                         std::vector<solver::jacobian_entry>&) {});
    EXPECT_THROW(
        solver::linear_dae_solver(sys, solver::integration_method::backward_euler, 1e-6),
        sca::util::error);
}

TEST(solver_edge, equation_system_bounds_checked) {
    solver::equation_system sys;
    (void)sys.add_unknown("x");
    EXPECT_THROW(sys.add_rhs_constant(5, 1.0), sca::util::error);
    EXPECT_THROW(sys.add_input(5), sca::util::error);
    EXPECT_THROW(sys.set_input(0, 1.0), sca::util::error);  // no slot allocated
}

TEST(solver_edge, sweep_validation) {
    EXPECT_THROW((solver::sweep{0.0, 100.0, 10}).frequencies(), sca::util::error);
    EXPECT_THROW((solver::sweep{1.0, 100.0, 0}).frequencies(), sca::util::error);
    const auto one = solver::sweep{5.0, 5.0, 1}.frequencies();
    ASSERT_EQ(one.size(), 1U);
    EXPECT_DOUBLE_EQ(one[0], 5.0);
}

TEST(solver_edge, newton_failure_at_h_min_raises) {
    // A nonlinearity whose Jacobian is always singular: Newton cannot make
    // progress and must give up loudly instead of spinning.
    solver::equation_system sys;
    const std::size_t x = sys.add_unknown("x");
    sys.add_b(x, x, 1.0);
    sys.add_nonlinear([x](const std::vector<double>& xi, std::vector<double>& r,
                          std::vector<solver::jacobian_entry>&) {
        r[x] += xi[x] >= 0.0 ? 1.0 : -1.0;  // discontinuous, zero derivative
    });
    solver::nonlinear_options opt;
    opt.h_init = 1e-6;
    opt.h_min = 1e-7;
    solver::nonlinear_dae_solver s(sys, opt);
    s.set_initial_state({0.0}, 0.0);
    EXPECT_THROW(s.advance_to(1e-3), sca::util::error);
}

// --------------------------------------------------------------------- eln

TEST(eln_edge, ideal_opamp_inverting_amplifier) {
    core::simulation sim;
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto vin = net.create_node("vin");
    auto vsum = net.create_node("vsum");
    auto vout = net.create_node("vout");
    eln::vsource vs("vs", net, vin, gnd, eln::waveform::dc(0.5));
    eln::resistor rin("rin", net, vin, vsum, 1000.0);
    eln::resistor rf("rf", net, vsum, vout, 10e3);
    eln::ideal_opamp op("op", net, gnd, vsum, vout);  // + input grounded
    sim.run(3_us);
    EXPECT_NEAR(net.voltage(vout), -5.0, 1e-9);       // gain -Rf/Rin
    EXPECT_NEAR(net.voltage(vsum), 0.0, 1e-12);       // virtual ground
}

TEST(eln_edge, gyrator_makes_inductor_from_capacitor) {
    // Gyrator loaded with C behaves as L = C/g^2: check the AC impedance
    // rises with frequency like an inductor.
    core::simulation sim;
    sca::util::object_bag bag;
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto n1 = net.create_node("n1");
    auto n2 = net.create_node("n2");
    auto& is = bag.make<eln::isource>("is", net, gnd, n1, eln::waveform::dc(0.0));
    is.set_ac(1.0);
    const double g = 1e-3;
    const double c = 1e-6;
    bag.make<eln::gyrator>("gy", net, n1, gnd, n2, gnd, g);
    bag.make<eln::capacitor>("c", net, n2, gnd, c);
    bag.make<eln::resistor>("rp", net, n1, gnd, 1e9);  // keeps DC defined
    sim.elaborate();
    core::ac_analysis ac(net);
    const double l_sim = c / (g * g);  // 1 H
    for (double f : {10.0, 100.0}) {
        const auto z = std::abs(ac.sweep(n1.index(), {f, f, 1})[0].value);
        EXPECT_NEAR(z, 2.0 * std::numbers::pi * f * l_sim, 0.01 * z) << f;
    }
}

TEST(eln_edge, de_isource_injects_controlled_current) {
    core::simulation sim;
    de::signal<double> cmd("cmd", 0.0);
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto n = net.create_node("n");
    eln::de_isource inj("inj", net, gnd, n);
    inj.inp.bind(cmd);
    eln::resistor r("r", net, n, gnd, 2000.0);
    sim.run(2_us);
    EXPECT_NEAR(net.voltage(n), 0.0, 1e-12);
    cmd.write(1e-3);
    sim.run(3_us);
    EXPECT_NEAR(net.voltage(n), 2.0, 1e-9);
}

TEST(eln_edge, noise_scales_with_temperature) {
    auto psd_at = [](double kelvin) {
        core::simulation sim;
        sca::util::object_bag bag;
        eln::network net("net");
        net.set_timestep(1.0, de::time_unit::us);
        net.set_temperature(kelvin);
        auto gnd = net.ground();
        auto n = net.create_node("n");
        bag.make<eln::resistor>("r", net, n, gnd, 1000.0);
        bag.make<eln::capacitor>("c", net, n, gnd, 1e-12);
        sim.elaborate();
        core::noise_analysis na(net);
        return na.run(n.index(), {100.0, 100.0, 1}).points[0].total_psd;
    };
    EXPECT_NEAR(psd_at(600.0) / psd_at(300.0), 2.0, 1e-6);
}

TEST(eln_edge, vsource_ac_phase_propagates) {
    core::simulation sim;
    sca::util::object_bag bag;
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto n = net.create_node("n");
    auto& vs = bag.make<eln::vsource>("vs", net, n, gnd, eln::waveform::dc(0.0));
    vs.set_ac(2.0, 90.0);
    bag.make<eln::resistor>("r", net, n, gnd, 1000.0);
    sim.elaborate();
    core::ac_analysis ac(net);
    const auto pt = ac.sweep(n.index(), {1e3, 1e3, 1})[0];
    EXPECT_NEAR(std::abs(pt.value), 2.0, 1e-12);
    EXPECT_NEAR(pt.phase_deg(), 90.0, 1e-9);
}

TEST(eln_edge, invalid_switch_parameters_rejected) {
    core::simulation sim;
    eln::network net("net");
    auto gnd = net.ground();
    auto n = net.create_node("n");
    EXPECT_THROW(eln::rswitch("sw", net, n, gnd, 10.0, 5.0), sca::util::error);
    EXPECT_THROW(eln::resistor("r", net, n, gnd, -5.0), sca::util::error);
    EXPECT_THROW(eln::capacitor("c", net, n, gnd, 0.0), sca::util::error);
}

// --------------------------------------------------------------------- lsf

TEST(lsf_edge, allpass_with_equal_degrees_has_unity_magnitude) {
    // H(s) = (s - w0)/(s + w0): numerator degree == denominator degree
    // exercises the direct-feedthrough path of the canonical realization.
    core::simulation sim;
    lsf::system sys("sys");
    sys.set_timestep(1.0, de::time_unit::us);
    auto u = sys.create_signal("u");
    auto y = sys.create_signal("y");
    lsf::source src("src", sys, u, lsf::waveform::dc(0.0));
    src.set_ac(1.0);
    const double w0 = 2.0 * std::numbers::pi * 1e3;
    lsf::ltf_nd ap("ap", sys, u, y, {-w0, 1.0}, {w0, 1.0});
    sim.elaborate();
    core::ac_analysis ac(sys);
    for (double f : {100.0, 1e3, 10e3}) {
        const auto pt = ac.sweep(y.index(), {f, f, 1})[0];
        EXPECT_NEAR(std::abs(pt.value), 1.0, 1e-9) << f;
    }
    // Phase at w0: -90 degrees for this allpass.
    const auto at_f0 = ac.sweep(y.index(), {1e3, 1e3, 1})[0];
    EXPECT_NEAR(std::abs(at_f0.phase_deg()), 90.0, 0.1);
}

TEST(lsf_edge, ltf_initial_state_is_respected) {
    core::simulation sim;
    lsf::system sys("sys");
    sys.set_timestep(1.0, de::time_unit::us);
    auto u = sys.create_signal("u");
    auto y = sys.create_signal("y");
    lsf::source src("src", sys, u, lsf::waveform::dc(0.0));
    const double w0 = 2.0 * std::numbers::pi * 1e3;
    lsf::ltf_nd lp("lp", sys, u, y, {1.0}, {1.0, 1.0 / w0});
    lp.set_initial_state({0.5});
    sim.run(1_us);
    // Output starts at b0 * x0 = 0.5 and decays.
    EXPECT_NEAR(sys.value(y), 0.5, 1e-2);
}

TEST(lsf_edge, runtime_gain_change_restamps) {
    core::simulation sim;
    lsf::system sys("sys");
    sys.set_timestep(1.0, de::time_unit::us);
    auto u = sys.create_signal("u");
    auto y = sys.create_signal("y");
    lsf::source src("src", sys, u, lsf::waveform::dc(1.0));
    lsf::gain g("g", sys, u, y, 2.0);
    sim.run(2_us);
    EXPECT_NEAR(sys.value(y), 2.0, 1e-12);
    g.set_k(5.0);
    sim.run(2_us);
    EXPECT_NEAR(sys.value(y), 5.0, 1e-9);
}

TEST(lsf_edge, improper_transfer_function_rejected) {
    core::simulation sim;
    lsf::system sys("sys");
    auto u = sys.create_signal("u");
    auto y = sys.create_signal("y");
    EXPECT_THROW(lsf::ltf_nd("bad", sys, u, y, {1.0, 1.0, 1.0}, {1.0, 1.0}),
                 sca::util::error);
    EXPECT_THROW(lsf::ltf_nd("bad2", sys, u, y, {1.0}, {1.0}), sca::util::error);
}

// --------------------------------------------------------------------- lib

TEST(lib_edge, dac_bit_errors_distort_transfer) {
    core::simulation sim;
    struct code_src : tdf::module {
        tdf::out<std::int64_t> out;
        std::int64_t v = -8;
        explicit code_src(const de::module_name& nm) : tdf::module(nm), out("out") {}
        void set_attributes() override { set_timestep(1.0, de::time_unit::us); }
        void processing() override { out.write(v < 7 ? v++ : v); }
    } src("src");
    lib::dac ideal("ideal", 4, 1.0);
    lib::dac skewed("skewed", 4, 1.0);
    skewed.set_bit_errors({0.0, 0.0, 0.0, 0.2});  // MSB heavy by 20%
    struct rec : tdf::module {
        tdf::in<double> in;
        std::vector<double> got;
        explicit rec(const de::module_name& nm) : tdf::module(nm), in("in") {}
        void processing() override { got.push_back(in.read()); }
    } r1("r1"), r2("r2");
    tdf::signal<std::int64_t> sc("sc");
    tdf::signal<double> s1("s1"), s2("s2");
    src.out.bind(sc);
    ideal.code.bind(sc);
    skewed.code.bind(sc);
    ideal.out.bind(s1);
    skewed.out.bind(s2);
    r1.in.bind(s1);
    r2.in.bind(s2);
    sim.run(15_us);
    // Ideal staircase is uniform; the skewed MSB creates a jump at code 0.
    double ideal_step_max = 0.0, skewed_step_max = 0.0;
    for (std::size_t i = 1; i < r1.got.size(); ++i) {
        ideal_step_max = std::max(ideal_step_max, r1.got[i] - r1.got[i - 1]);
        skewed_step_max = std::max(skewed_step_max, r2.got[i] - r2.got[i - 1]);
    }
    EXPECT_NEAR(ideal_step_max, 2.0 / 16.0, 1e-12);
    EXPECT_GT(skewed_step_max, 2.0 / 16.0 * 1.5);
}

TEST(lib_edge, amplifier_offset_shifts_output) {
    core::simulation sim;
    struct zero_src : tdf::module {
        tdf::out<double> out;
        explicit zero_src(const de::module_name& nm) : tdf::module(nm), out("out") {}
        void set_attributes() override { set_timestep(1.0, de::time_unit::us); }
        void processing() override { out.write(0.0); }
    } src("src");
    lib::amplifier amp("amp", 100.0);
    amp.set_offset(1e-3);
    struct rec : tdf::module {
        tdf::in<double> in;
        double last = 0.0;
        explicit rec(const de::module_name& nm) : tdf::module(nm), in("in") {}
        void processing() override { last = in.read(); }
    } r("r");
    tdf::signal<double> s1("s1"), s2("s2");
    src.out.bind(s1);
    amp.in.bind(s1);
    amp.out.bind(s2);
    r.in.bind(s2);
    sim.run(5_us);
    EXPECT_NEAR(r.last, 0.1, 1e-9);  // gain * offset
}

TEST(lib_edge, decimator_last_sample_mode) {
    core::simulation sim;
    struct ramp : tdf::module {
        tdf::out<double> out;
        double v = 0.0;
        explicit ramp(const de::module_name& nm) : tdf::module(nm), out("out") {}
        void set_attributes() override { set_timestep(1.0, de::time_unit::us); }
        void processing() override { out.write(v++); }
    } src("src");
    lib::decimator dec("dec", 4, /*average=*/false);
    struct rec : tdf::module {
        tdf::in<double> in;
        std::vector<double> got;
        explicit rec(const de::module_name& nm) : tdf::module(nm), in("in") {}
        void processing() override { got.push_back(in.read()); }
    } r("r");
    tdf::signal<double> s1("s1"), s2("s2");
    src.out.bind(s1);
    dec.in.bind(s1);
    dec.out.bind(s2);
    r.in.bind(s2);
    sim.run(8_us);
    ASSERT_GE(r.got.size(), 2U);
    EXPECT_DOUBLE_EQ(r.got[0], 3.0);
    EXPECT_DOUBLE_EQ(r.got[1], 7.0);
}

TEST(lib_edge, design_validation_errors) {
    EXPECT_THROW(lib::fir::design_lowpass(2, 0.1), sca::util::error);
    EXPECT_THROW(lib::fir::design_lowpass(31, 0.7), sca::util::error);
    EXPECT_THROW((void)lib::bilinear({1.0}, {}, 48e3), sca::util::error);
    EXPECT_THROW((void)lib::bilinear({1.0, 2.0, 3.0, 4.0}, {1.0}, 48e3), sca::util::error);
}

// -------------------------------------------------------- property: opamp --

class opamp_gain_sweep : public ::testing::TestWithParam<int> {};

TEST_P(opamp_gain_sweep, inverting_gain_tracks_resistor_ratio) {
    const double ratio = static_cast<double>(GetParam());
    core::simulation sim;
    sca::util::object_bag bag;
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto vin = net.create_node("vin");
    auto vsum = net.create_node("vsum");
    auto vout = net.create_node("vout");
    bag.make<eln::vsource>("vs", net, vin, gnd, eln::waveform::dc(0.25));
    bag.make<eln::resistor>("rin", net, vin, vsum, 1000.0);
    bag.make<eln::resistor>("rf", net, vsum, vout, 1000.0 * ratio);
    bag.make<eln::ideal_opamp>("op", net, gnd, vsum, vout);
    sim.run(2_us);
    EXPECT_NEAR(net.voltage(vout), -0.25 * ratio, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(ratios, opamp_gain_sweep, ::testing::Values(1, 2, 5, 10, 47));
