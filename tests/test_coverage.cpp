// Coverage round: analysis writers, corner duty cycles, controlled-source
// control branches, numeric helpers, and miscellaneous API contracts.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <sstream>

#include "core/ac_analysis.hpp"
#include "core/dc_analysis.hpp"
#include "core/noise_analysis.hpp"
#include "core/simulation.hpp"
#include "eln/multidomain.hpp"
#include "eln/network.hpp"
#include "eln/primitives.hpp"
#include "eln/sources.hpp"
#include "kernel/signal.hpp"
#include "lib/pwm.hpp"
#include "lib/sigma_delta.hpp"
#include "numeric/dense.hpp"
#include "tdf/converter.hpp"
#include "tdf/module.hpp"
#include "util/trace.hpp"
#include "util/waveform.hpp"
#include "util/object_bag.hpp"

namespace de = sca::de;
namespace tdf = sca::tdf;
namespace eln = sca::eln;
namespace lib = sca::lib;
namespace core = sca::core;
namespace num = sca::num;
using namespace sca::de::literals;

TEST(coverage, ac_write_emits_frequency_rows) {
    core::simulation sim;
    sca::util::object_bag bag;
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto n = net.create_node("n");
    auto& vs = bag.make<eln::vsource>("vs", net, n, gnd, eln::waveform::dc(0.0));
    vs.set_ac(1.0);
    bag.make<eln::resistor>("r", net, n, gnd, 1000.0);
    sim.elaborate();

    core::ac_analysis ac(net);
    const auto pts = ac.sweep(n.index(), {10.0, 1000.0, 3});
    sca::util::memory_trace mem;
    core::ac_analysis::write(pts, mem);
    ASSERT_EQ(mem.times().size(), 3U);
    EXPECT_DOUBLE_EQ(mem.times()[0], 10.0);     // frequency on the abscissa
    EXPECT_NEAR(mem.column(0)[0], 0.0, 1e-9);   // 0 dB (direct source)
}

TEST(coverage, noise_write_emits_per_source_columns) {
    core::simulation sim;
    sca::util::object_bag bag;
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto n = net.create_node("n");
    bag.make<eln::resistor>("ra", net, n, gnd, 1000.0);
    bag.make<eln::resistor>("rb", net, n, gnd, 1000.0);
    sim.elaborate();

    core::noise_analysis na(net);
    const auto result = na.run(n.index(), {100.0, 1e3, 2});
    sca::util::memory_trace mem;
    core::noise_analysis::write(result, mem);
    EXPECT_EQ(mem.channel_count(), 3U);  // total + two sources
    ASSERT_EQ(mem.times().size(), 2U);
    EXPECT_NEAR(mem.column(0)[0], mem.column(1)[0] + mem.column(2)[0], 1e-30);
}

TEST(coverage, pwm_extreme_duty_cycles) {
    core::simulation sim;
    de::signal<double> duty("duty", 0.0);
    de::signal<bool> out("out", true);
    lib::pwm gen("gen", 10_us);
    gen.duty.bind(duty);
    gen.out.bind(out);
    sim.run(25_us);
    EXPECT_FALSE(out.read());  // 0%: permanently low
    duty.write(1.0);
    sim.run(30_us);
    EXPECT_TRUE(out.read());  // 100%: permanently high
}

TEST(coverage, cccs_controlled_by_inductor_branch) {
    core::simulation sim;
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto a = net.create_node("a");
    auto b = net.create_node("b");
    auto mid = net.create_node("mid");
    // Series R keeps the DC problem well-posed; the source steps after t=0
    // so the quiescent state starts at zero current.
    eln::vsource vs("vs", net, a, gnd,
                    eln::waveform::pulse(0.0, 1.0, 1e-6, 1e-9, 1e-9, 1.0, 2.0));
    eln::resistor rs("rs", net, a, mid, 10.0);
    eln::inductor l("l", net, mid, gnd, 1e-3);  // tau = L/R = 100 us
    eln::cccs mirror("mirror", net, l, gnd, b, 1.0);
    eln::resistor load("load", net, b, gnd, 1000.0);
    sim.run(101_us);
    // i_L = (V/R)(1 - e^-1) = 63.2 mA; mirrored into 1k -> 63.2 V.
    EXPECT_NEAR(net.voltage(b), 100.0 * (1.0 - std::exp(-1.0)), 0.5);
}

TEST(coverage, dense_matrix_helpers) {
    num::dense_matrix_d m(2, 2, 1.0);
    m.fill(3.0);
    EXPECT_DOUBLE_EQ(m(1, 1), 3.0);
    m.resize(3, 3, -1.0);
    EXPECT_EQ(m.rows(), 3U);
    EXPECT_DOUBLE_EQ(m(2, 2), -1.0);

    std::vector<double> x{1.0, -4.0, 2.0};
    EXPECT_DOUBLE_EQ(num::norm_inf(x), 4.0);
    std::vector<double> y{0.0, 0.0, 0.0};
    num::axpy(2.0, x, y);
    EXPECT_DOUBLE_EQ(y[1], -8.0);
    EXPECT_NEAR(num::norm2(x), std::sqrt(21.0), 1e-12);
}

TEST(coverage, waveform_pwl_requires_sorted_points) {
    EXPECT_THROW(sca::util::waveform::pwl({{1.0, 0.0}, {0.5, 1.0}}), sca::util::error);
    EXPECT_THROW(sca::util::waveform::pwl({}), sca::util::error);
}

TEST(coverage, de_out_rate_bound_is_enforced) {
    core::simulation sim;
    de::signal<double> wire("wire", 0.0);
    struct bad_writer : tdf::module {
        tdf::de_out<double> out;
        explicit bad_writer(const de::module_name& nm) : tdf::module(nm), out("out") {}
        void set_attributes() override { set_timestep(1.0, de::time_unit::us); }
        void processing() override { out.write(1.0, 3); }  // rate is 1
    } mod("mod");
    mod.out.bind(wire);
    EXPECT_THROW(sim.run(1_us), sca::util::error);
}

TEST(coverage, multidomain_rejects_nonpositive_parameters) {
    core::simulation sim;
    eln::network net("net");
    auto v = net.create_node("v", eln::nature::mechanical_translational);
    auto g = net.ground(eln::nature::mechanical_translational);
    EXPECT_THROW(eln::mass("m", net, v, 0.0), sca::util::error);
    EXPECT_THROW(eln::damper("d", net, v, g, -1.0), sca::util::error);
    EXPECT_THROW(eln::spring("k", net, v, g, 0.0), sca::util::error);
}

TEST(coverage, sigma_delta_rejects_unsupported_order) {
    core::simulation sim;
    EXPECT_THROW(lib::sigma_delta_modulator("m", 3, 1.0), sca::util::error);
    EXPECT_THROW(lib::sinc3_decimator("d", 1), sca::util::error);
}

TEST(coverage, time_modulo_and_division) {
    EXPECT_EQ((10_us) % (3_us), 1_us);
    EXPECT_EQ((10_us) / (3_us), 3);
    EXPECT_EQ(de::time::max().value_fs(), INT64_MAX);
}

TEST(coverage, first_order_amplifier_dc_probe_via_dc_analysis_options) {
    // dc_options pseudo-transient knob reachable through the facade.
    core::simulation sim;
    sca::util::object_bag bag;
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto n = net.create_node("n");
    bag.make<eln::capacitor>("c", net, n, gnd, 1e-9);  // floating-by-C: singular A
    bag.make<eln::resistor>("r", net, n, gnd, 1e6);
    sim.elaborate();
    sca::core::dc_analysis dc(net);
    sca::solver::dc_options opt;
    opt.pseudo_tau = 1e3;
    dc.set_options(opt);
    EXPECT_NEAR(dc.value(n.index()), 0.0, 1e-9);
}
