// Multi-domain conservative modeling tests (paper phase 3): mechanical
// translational/rotational, thermal, and electro-mechanical coupling.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/simulation.hpp"
#include "core/transient.hpp"
#include "eln/multidomain.hpp"
#include "eln/network.hpp"
#include "eln/primitives.hpp"
#include "eln/sources.hpp"
#include "util/measure.hpp"

namespace de = sca::de;
namespace eln = sca::eln;
namespace core = sca::core;
using namespace sca::de::literals;

TEST(mechanical, damped_mass_reaches_terminal_velocity) {
    core::simulation sim;
    eln::network net("net");
    net.set_timestep(100.0, de::time_unit::us);
    auto mgnd = net.ground(eln::nature::mechanical_translational);
    auto v = net.create_node("v", eln::nature::mechanical_translational);
    eln::mass m("m", net, v, 2.0);                      // 2 kg
    eln::damper b("b", net, v, mgnd, 4.0);              // 4 N*s/m
    eln::force_source f("f", net, mgnd, v, eln::waveform::dc(8.0));  // 8 N

    sim.run(5_sec);
    // Terminal velocity F/b = 2 m/s, time constant m/b = 0.5 s.
    EXPECT_NEAR(net.voltage(v), 2.0, 1e-6);
}

TEST(mechanical, mass_spring_damper_oscillation) {
    core::simulation sim;
    eln::network net("net");
    net.set_timestep(100.0, de::time_unit::us);
    auto mgnd = net.ground(eln::nature::mechanical_translational);
    auto v = net.create_node("v", eln::nature::mechanical_translational);
    const double m = 1.0, k = 100.0, b = 0.4;  // f0 = 1.59 Hz, lightly damped
    eln::mass mass_("m", net, v, m);
    eln::spring spring_("k", net, v, mgnd, k);
    eln::damper damper_("b", net, v, mgnd, b);
    // Force step applied after a short delay so t=0 is quiescent.
    eln::force_source f("f", net, mgnd, v,
                        eln::waveform::pulse(0.0, 10.0, 0.1, 1e-6, 1e-6, 100.0, 200.0));
    eln::position_probe pos("pos", net, v);

    struct pos_sink : sca::tdf::module {
        sca::tdf::in<double> in;
        std::vector<double> xs;
        explicit pos_sink(const de::module_name& nm) : sca::tdf::module(nm), in("in") {}
        void processing() override { xs.push_back(in.read()); }
    } sink("sink");
    sca::tdf::signal<double> s("s");
    pos.outp.bind(s);
    sink.in.bind(s);

    sim.run(20_sec);
    // Final position = F/k = 0.1 m; damped oscillation on the way there.
    ASSERT_FALSE(sink.xs.empty());
    EXPECT_NEAR(sink.xs.back(), 0.1, 1e-3);
    double overshoot = 0.0;
    for (double x : sink.xs) overshoot = std::max(overshoot, x);
    EXPECT_GT(overshoot, 0.15);  // underdamped: overshoots the final value
}

TEST(mechanical, rotational_inertia_spin_up) {
    core::simulation sim;
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::ms);
    auto rgnd = net.ground(eln::nature::mechanical_rotational);
    auto w = net.create_node("w", eln::nature::mechanical_rotational);
    eln::inertia j("j", net, w, 0.5);                  // 0.5 kg m^2
    eln::rotational_damper b("b", net, w, rgnd, 0.1);  // friction
    eln::torque_source t("t", net, rgnd, w, eln::waveform::dc(1.0));

    sim.run(60_sec);  // >> tau = J/b = 5 s
    EXPECT_NEAR(net.voltage(w), 10.0, 1e-3);  // T/b
}

TEST(thermal, rc_heating_curve) {
    core::simulation sim;
    eln::network net("net");
    net.set_timestep(10.0, de::time_unit::ms);
    auto ambient = net.ground(eln::nature::thermal);
    auto junction = net.create_node("tj", eln::nature::thermal);
    const double rth = 20.0;  // K/W
    const double cth = 0.5;   // J/K -> tau = 10 s
    eln::thermal_resistance r("rth", net, junction, ambient, rth);
    eln::thermal_capacitance c("cth", net, junction, cth);
    // 2 W dissipation switched on at t = 1 s.
    eln::heat_source p("p", net, ambient, junction,
                       eln::waveform::pulse(0.0, 2.0, 1.0, 1e-6, 1e-6, 1e4, 2e4));

    sim.run(11_sec);  // one tau after switch-on
    const double expected = 2.0 * rth * (1.0 - std::exp(-1.0));
    EXPECT_NEAR(net.voltage(junction), expected, 0.2);
}

TEST(electromechanical, dc_motor_steady_state_speed) {
    core::simulation sim;
    eln::network net("net");
    net.set_timestep(100.0, de::time_unit::us);
    auto gnd = net.ground();
    auto vp = net.create_node("vp");
    auto shaft = net.create_node("shaft", eln::nature::mechanical_rotational);
    auto rgnd = net.ground(eln::nature::mechanical_rotational);
    const double ra = 1.0, la = 1e-3, kt = 0.1;
    const double j = 0.01, b = 0.001;
    eln::vsource vs("vs", net, vp, gnd, eln::waveform::dc(12.0));
    eln::dc_motor motor("motor", net, vp, gnd, shaft, ra, la, kt);
    eln::inertia inertia_("j", net, shaft, j);
    eln::rotational_damper fric("b", net, shaft, rgnd, b);

    sim.run(10_sec);
    // w = V K / (R b + K^2), i = b w / K.
    const double w_expected = 12.0 * kt / (ra * b + kt * kt);
    EXPECT_NEAR(net.voltage(shaft), w_expected, 0.01);
    EXPECT_NEAR(net.current(motor), b * w_expected / kt, 1e-4);
}

TEST(electromechanical, motor_back_emf_limits_current) {
    core::simulation sim;
    eln::network net("net");
    net.set_timestep(100.0, de::time_unit::us);
    auto gnd = net.ground();
    auto vp = net.create_node("vp");
    auto shaft = net.create_node("shaft", eln::nature::mechanical_rotational);
    auto rgnd = net.ground(eln::nature::mechanical_rotational);
    eln::vsource vs("vs", net, vp, gnd,
                    eln::waveform::pulse(0.0, 12.0, 1e-3, 1e-6, 1e-6, 100.0, 200.0));
    eln::dc_motor motor("motor", net, vp, gnd, shaft, 1.0, 1e-3, 0.1);
    eln::inertia inertia_("j", net, shaft, 0.01);
    eln::rotational_damper fric("b", net, shaft, rgnd, 0.001);

    core::transient_recorder rec(sim, 1_ms);
    rec.add_probe("i", [&] { return net.current(motor); });
    rec.run(5_sec);

    const auto i = rec.column(0);
    double imax = 0.0;
    for (double x : i) imax = std::max(imax, x);
    // Stall current ~ 12 A at switch-on, decaying as back-EMF builds.
    EXPECT_GT(imax, 8.0);
    EXPECT_LT(std::abs(i.back()), 1.5);
}

TEST(multidomain, nature_checks_guard_connections) {
    core::simulation sim;
    eln::network net("net");
    auto electrical = net.create_node("e");
    auto thermal_node = net.create_node("t", eln::nature::thermal);
    EXPECT_THROW(eln::mass("m", net, electrical, 1.0), sca::util::error);
    EXPECT_THROW(eln::thermal_capacitance("c", net, electrical, 1.0), sca::util::error);
    EXPECT_THROW(eln::resistor("r", net, electrical, thermal_node, 1.0),
                 sca::util::error);
}
