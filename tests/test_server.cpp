// Streaming simulation server, end to end over real sockets: catalog and
// version negotiation, eight concurrent sessions on mixed scenarios whose
// streamed waveforms are bit-identical to offline runs, mid-run parameter
// pokes, pause/resume, backpressure (a slow consumer loses counted sample
// batches, the kernel never blocks), wall-clock pacing drift bounds, and
// error paths that leave the session alive.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/scenario.hpp"
#include "eln/network.hpp"
#include "eln/primitives.hpp"
#include "eln/sources.hpp"
#include "server/server.hpp"
#include "tdf/connect.hpp"
#include "tdf/module.hpp"
#include "tdf/port.hpp"
#include "util/report.hpp"

namespace core = sca::core;
namespace de = sca::de;
namespace eln = sca::eln;
namespace tdf = sca::tdf;
namespace server = sca::server;
namespace wire = sca::core::wire;
using namespace sca::de::literals;

namespace {

std::uint64_t bits(double d) { return std::bit_cast<std::uint64_t>(d); }

constexpr double k_pi = 3.141592653589793;

/// DC level with a small superimposed tone; `level` is pokeable at run time,
/// so the streamed waveform shows exactly when a mid-run poke landed.
struct level_source : tdf::module {
    tdf::out<double> out;
    double level;
    double tone;

    level_source(const de::module_name& nm, double lvl, double amp)
        : tdf::module(nm), out("out"), level(lvl), tone(amp) {}
    void set_attributes() override { set_timestep(10.0, de::time_unit::us); }
    void processing() override {
        const double t = tdf_time().to_seconds();
        out.write(level + tone * std::sin(2.0 * k_pi * 5e3 * t));
    }
};

struct null_sink : tdf::module {
    tdf::in<double> in;
    explicit null_sink(const de::module_name& nm) : tdf::module(nm), in("in") {}
    void processing() override { (void)in.read(); }
};

/// TDF scenario: pokeable DC level + tone, probe "out".
/// 20 ms at a 10 us sample period -> ~2000 samples.
core::scenario define_gain_scenario(const std::string& name) {
    return core::scenario::define(
        name, core::params{{"level", 1.0}, {"tone", 0.25}},
        [](core::testbench& tb, const core::params& p) {
            auto& src = tb.make<level_source>("src", p.number("level"),
                                              p.number("tone"));
            auto& sink = tb.make<null_sink>("sink");
            auto& sig = connect(src.out, sink.in);
            tb.probe("out", sig);
            tb.set_sample_period(10_us);
            tb.set_stop_time(20_ms);
            tb.measure("final", [&src] { return src.level; });
            tb.on_param("level", [&src](double v) { src.level = v; });
        });
}

/// ELN scenario: the suite's reference RC lowpass, probe "vout".
core::scenario define_rc_scenario(const std::string& name) {
    return core::scenario::define(
        name, core::params{{"r", 1e3}, {"c", 100e-9}, {"f", 1e3}},
        [](core::testbench& tb, const core::params& p) {
            auto& net = tb.make<eln::network>("net");
            net.set_timestep(2.0, de::time_unit::us);
            auto gnd = net.ground();
            auto vin = net.create_node("vin");
            auto vout = net.create_node("vout");
            tb.make<eln::vsource>("vs", net, vin, gnd,
                                  eln::waveform::sine(1.0, p.get("f", 1e3)));
            tb.make<eln::resistor>("r", net, vin, vout, p.get("r", 1e3));
            tb.make<eln::capacitor>("c", net, vout, gnd, p.get("c", 100e-9));
            tb.probe("vout", [&net, vout] { return net.voltage(vout); });
            tb.set_sample_period(10_us);
            tb.set_stop_time(2_ms);
        });
}

/// Flood scenario for the backpressure test: 300k samples of trivial work,
/// far more framed bytes than the socket and server buffers can hold.
core::scenario define_flood_scenario(const std::string& name) {
    return core::scenario::define(
        name, core::params{}, [](core::testbench& tb, const core::params&) {
            auto& src = tb.make<level_source>("src", 0.5, 0.25);
            auto& sink = tb.make<null_sink>("sink");
            auto& sig = connect(src.out, sink.in);
            tb.probe("out", sig);
            tb.set_sample_period(10_us);
            tb.set_stop_time(3000_ms);
        });
}

/// 100 ms sim for the pacing test (1000 firings: trivially faster than the
/// 10 ms wall-clock floor a 10x pacing factor imposes).
core::scenario define_paced_scenario(const std::string& name) {
    return core::scenario::define(
        name, core::params{}, [](core::testbench& tb, const core::params&) {
            auto& src = tb.make<level_source>("src", 1.0, 0.5);
            auto& sink = tb.make<null_sink>("sink");
            auto& sig = connect(src.out, sink.in);
            tb.probe("out", sig);
            tb.set_sample_period(100_us);
            tb.set_stop_time(100_ms);
        });
}

/// Register every scenario exactly once per test binary.
void define_scenarios() {
    static const bool once = [] {
        define_gain_scenario("srv_gain");
        define_rc_scenario("srv_rc");
        define_flood_scenario("srv_flood");
        define_paced_scenario("srv_paced");
        return true;
    }();
    (void)once;
}

/// Offline reference run of a scenario: the ground truth the streamed
/// waveform must reproduce bit-for-bit.
struct reference {
    std::vector<double> times;
    std::vector<double> values;
};

reference offline(const std::string& scenario, const std::string& probe,
                  const core::params& overrides = {}) {
    auto tb = core::scenario::find(scenario).build(overrides);
    tb->run();
    return {tb->times(), tb->waveform(probe)};
}

void expect_bit_identical(const server::client::waveform& got, const reference& want) {
    ASSERT_EQ(got.times.size(), want.times.size());
    ASSERT_EQ(got.values.size(), want.values.size());
    for (std::size_t i = 0; i < want.times.size(); ++i) {
        ASSERT_EQ(bits(got.times[i]), bits(want.times[i])) << "times[" << i << "]";
        ASSERT_EQ(bits(got.values[i]), bits(want.values[i])) << "values[" << i << "]";
    }
}

}  // namespace

// ----------------------------------------------------------- handshake + catalog --

TEST(sim_server, hello_and_catalog_over_tcp) {
    define_scenarios();
    server::sim_server srv;
    srv.start();
    auto cl = server::client::connect_tcp("127.0.0.1", srv.port());
    EXPECT_EQ(cl.hello(), wire::k_session_version);

    const auto entries = cl.catalog();
    ASSERT_GE(entries.size(), 4U);
    // The catalog is scenario::names(): sorted, with each entry's defaults.
    bool saw_gain = false;
    for (std::size_t i = 1; i < entries.size(); ++i) {
        EXPECT_LT(entries[i - 1].name, entries[i].name);
    }
    for (const auto& e : entries) {
        if (e.name == "srv_gain") {
            saw_gain = true;
            EXPECT_DOUBLE_EQ(e.defaults.number("level"), 1.0);
            EXPECT_DOUBLE_EQ(e.defaults.number("tone"), 0.25);
        }
    }
    EXPECT_TRUE(saw_gain);
    srv.stop();
}

TEST(sim_server, open_unknown_scenario_reports_an_error) {
    define_scenarios();
    server::sim_server srv;
    srv.start();
    auto cl = server::client::connect_tcp("127.0.0.1", srv.port());
    EXPECT_THROW((void)cl.open("does_not_exist"), sca::util::error);
    srv.stop();
}

// ------------------------------------------------- concurrent sessions, bit-exact --

TEST(sim_server, eight_concurrent_sessions_bit_identical_to_offline) {
    define_scenarios();
    const reference ref_gain = offline("srv_gain", "out");
    const reference ref_gain_low = offline("srv_gain", "out", {{"level", 0.25}});
    const reference ref_rc = offline("srv_rc", "vout");

    server::sim_server::options opt;
    opt.unix_path = "sim_server_test.sock";
    server::sim_server srv(opt);
    srv.start();

    struct job {
        std::string scenario;
        std::string probe;
        core::params overrides;
        const reference* ref;
        bool via_unix;
    };
    const std::vector<job> jobs = {
        {"srv_gain", "out", {}, &ref_gain, false},
        {"srv_rc", "vout", {}, &ref_rc, false},
        {"srv_gain", "out", {{"level", 0.25}}, &ref_gain_low, true},
        {"srv_rc", "vout", {}, &ref_rc, true},
        {"srv_gain", "out", {}, &ref_gain, false},
        {"srv_gain", "out", {{"level", 0.25}}, &ref_gain_low, false},
        {"srv_rc", "vout", {}, &ref_rc, true},
        {"srv_gain", "out", {}, &ref_gain, true},
    };

    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    clients.reserve(jobs.size());
    for (const job& j : jobs) {
        clients.emplace_back([&srv, &j, &failures] {
            try {
                auto cl = j.via_unix
                              ? server::client::connect_unix("sim_server_test.sock")
                              : server::client::connect_tcp("127.0.0.1", srv.port());
                EXPECT_EQ(cl.hello(), wire::k_session_version);
                // Sessions open paused: the subscribe is guaranteed applied
                // before the first kernel slice because it precedes resume()
                // on the wire, so the stream covers t=0 onward.
                cl.open_async(j.scenario, j.overrides, 500);
                cl.subscribe(j.probe);
                const wire::session_info info = cl.await_opened();
                cl.resume();
                EXPECT_GT(info.session_id, 0U);
                ASSERT_EQ(info.probes.size(), 1U);
                EXPECT_EQ(info.probes[0], j.probe);
                const wire::close_info close = cl.drain();
                EXPECT_EQ(close.reason, wire::close_reason::finished);
                EXPECT_EQ(close.samples_dropped, 0U);
                EXPECT_TRUE(cl.errors().empty());
                const auto& w = cl.wave(j.probe);
                EXPECT_EQ(w.dropped, 0U);
                EXPECT_EQ(w.gaps, 0U);
                expect_bit_identical(w, *j.ref);
            } catch (const std::exception& e) {
                ADD_FAILURE() << e.what();
                failures.fetch_add(1);
            }
        });
    }
    for (auto& t : clients) t.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(srv.sessions_opened(), jobs.size());
    srv.stop();
}

// ------------------------------------------------------------------ live control --

TEST(sim_server, poke_lands_mid_run_and_changes_the_stream) {
    define_scenarios();
    server::sim_server srv;
    srv.start();
    auto cl = server::client::connect_tcp("127.0.0.1", srv.port());
    cl.hello();
    // Pure DC so the poke is the only thing that can move the waveform, and
    // real-time pacing (20 ms of sim = 20 ms of wall clock) so the poke
    // deterministically lands mid-run, not after a too-fast finish.
    cl.open_async("srv_gain", {{"tone", 0.0}}, 500);
    cl.subscribe("out");
    cl.pace(1.0);
    const wire::session_info info = cl.await_opened();
    cl.resume();

    // Wait for the stream to actually start, then drop the level to zero.
    for (;;) {
        const wire::frame f = cl.read_frame();
        cl.absorb(f);
        if (f.type == wire::msg_type::samples) break;
        ASSERT_NE(f.type, wire::msg_type::close) << "run finished before the poke";
    }
    cl.poke("level", 0.0);
    const wire::close_info close = cl.drain();

    EXPECT_EQ(close.reason, wire::close_reason::finished);
    EXPECT_DOUBLE_EQ(close.measurements.at("final"), 0.0);
    const auto& w = cl.wave("out");
    const auto expected = static_cast<std::size_t>(
        std::llround(info.stop_time_s / info.sample_period_s) + 1);
    ASSERT_EQ(w.values.size(), expected);
    EXPECT_DOUBLE_EQ(w.values.front(), 1.0);  // before the poke
    EXPECT_DOUBLE_EQ(w.values.back(), 0.0);   // after the poke
    EXPECT_TRUE(cl.errors().empty());
    srv.stop();
}

TEST(sim_server, pause_and_resume_complete_the_run) {
    define_scenarios();
    server::sim_server srv;
    srv.start();
    auto cl = server::client::connect_tcp("127.0.0.1", srv.port());
    cl.hello();
    // Sessions open paused; paced at 1x the 100 ms sim takes 100 ms of wall
    // clock once started, so each window below is ample to detect a runaway.
    cl.open_async("srv_paced", {}, 1000);
    cl.subscribe("out");
    cl.pace(1.0);
    (void)cl.await_opened();

    // Parked means parked: never resumed, the worker must not finish.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    EXPECT_EQ(srv.finished_sessions(), 0U) << "unstarted session ran anyway";

    // Start, let the stream begin, then pause mid-run and check it sticks.
    cl.resume();
    for (;;) {
        const wire::frame f = cl.read_frame();
        cl.absorb(f);
        if (f.type == wire::msg_type::samples) break;
        ASSERT_NE(f.type, wire::msg_type::close) << "run finished before the pause";
    }
    cl.pause();
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    EXPECT_EQ(srv.finished_sessions(), 0U) << "paused session kept running";

    cl.resume();
    const wire::close_info close = cl.drain();
    EXPECT_EQ(close.reason, wire::close_reason::finished);
    expect_bit_identical(cl.wave("out"), offline("srv_paced", "out"));
    srv.stop();
}

TEST(sim_server, errors_leave_the_session_alive) {
    define_scenarios();
    server::sim_server srv;
    srv.start();
    auto cl = server::client::connect_tcp("127.0.0.1", srv.port());
    cl.hello();
    cl.open_async("srv_rc", {}, 500);
    cl.subscribe("no_such_probe");  // error frame
    cl.poke("no_such_param", 1.0);  // error frame
    cl.subscribe("vout");           // still works
    (void)cl.await_opened();
    cl.resume();
    const wire::close_info close = cl.drain();
    EXPECT_EQ(close.reason, wire::close_reason::finished);
    EXPECT_EQ(cl.errors().size(), 2U);
    expect_bit_identical(cl.wave("vout"), offline("srv_rc", "vout"));
    srv.stop();
}

TEST(sim_server, client_close_ends_the_session_early) {
    define_scenarios();
    server::sim_server srv;
    srv.start();
    auto cl = server::client::connect_tcp("127.0.0.1", srv.port());
    cl.hello();
    cl.open_async("srv_flood", {}, 1000);  // 3 s of sim time
    cl.subscribe("out");
    cl.request_close();
    (void)cl.await_opened();
    const wire::close_info close = cl.drain();
    EXPECT_EQ(close.reason, wire::close_reason::client_request);
    EXPECT_LT(close.sim_time_s, 3.0);
    srv.stop();
}

// ------------------------------------------------------------------ backpressure --

TEST(sim_server, slow_consumer_drops_batches_but_the_kernel_finishes) {
    define_scenarios();
    server::sim_server::options opt;
    opt.tcp = false;
    // AF_UNIX: bounded socket buffers, so the flood reliably overruns the
    // outbound path.  A two-frame queue forces drops the moment the I/O
    // thread stops pulling.
    opt.unix_path = "sim_server_slow.sock";
    opt.queue_capacity = 2;
    server::sim_server srv(opt);
    srv.start();

    auto cl = server::client::connect_unix("sim_server_slow.sock");
    cl.hello();
    cl.open_async("srv_flood", {}, 5000);
    cl.subscribe("out");
    const wire::session_info info = cl.await_opened();
    cl.resume();

    // Do not read: the kernel must run the full 300k-sample flood to
    // completion against a stalled consumer.
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (srv.finished_sessions() == 0) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "kernel blocked on a slow consumer";
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }

    const wire::close_info close = cl.drain();
    EXPECT_EQ(close.reason, wire::close_reason::finished);
    EXPECT_GT(close.samples_dropped, 0U) << "flood too small to overrun the buffers";
    const auto& w = cl.wave("out");
    const auto expected = static_cast<std::uint64_t>(
        std::llround(info.stop_time_s / info.sample_period_s) + 1);
    // Nothing is lost silently: every sample is either delivered or counted.
    EXPECT_EQ(close.samples_streamed + close.samples_dropped, expected);
    EXPECT_EQ(w.times.size(), close.samples_streamed);
    EXPECT_EQ(w.dropped, close.samples_dropped);
    EXPECT_GE(w.gaps, 1U);
    srv.stop();
}

// -------------------------------------------------------------------- telemetry --

TEST(sim_server, close_telemetry_is_authoritative_against_client_counts) {
    define_scenarios();
    server::sim_server::options opt;
    opt.stats_every_slices = 4;
    server::sim_server srv(opt);
    srv.start();
    auto cl = server::client::connect_tcp("127.0.0.1", srv.port());
    cl.hello();
    cl.open_async("srv_gain", {}, 500);  // 20 ms / 500 us slices = 40 slices
    cl.subscribe("out");
    (void)cl.await_opened();
    cl.resume();
    const wire::close_info close = cl.drain();
    EXPECT_EQ(close.reason, wire::close_reason::finished);

    // End-of-session telemetry must agree with what the client observed: a
    // fast consumer loses nothing, so streamed == received and dropped == 0.
    const auto& w = cl.wave("out");
    EXPECT_EQ(close.samples_streamed, w.times.size());
    EXPECT_EQ(close.samples_dropped, 0U);
    EXPECT_EQ(w.dropped, close.samples_dropped);
    EXPECT_EQ(close.slices, 40U);
    EXPECT_GE(close.max_queue_depth, 1U);

    // Periodic stats: one push every 4 slices, all delivered before close.
    EXPECT_EQ(cl.stats_frames(), 10U);
    EXPECT_EQ(cl.last_stats().slices, 40U);
    EXPECT_EQ(cl.last_stats().samples_streamed + cl.last_stats().samples_dropped,
              close.samples_streamed + close.samples_dropped);
    // The close frame itself is queued after the last stats snapshot, so the
    // final high-water mark may exceed the one the stats frame observed.
    EXPECT_LE(cl.last_stats().max_queue_depth, close.max_queue_depth);
    srv.stop();
}

TEST(sim_server, stats_request_reports_live_session_state) {
    define_scenarios();
    server::sim_server srv;  // default period (64) never fires in 20 slices
    srv.start();
    auto cl = server::client::connect_tcp("127.0.0.1", srv.port());
    cl.hello();
    cl.open_async("srv_gain", {}, 1000);
    cl.subscribe("out");
    (void)cl.await_opened();

    // Sessions open paused: an on-demand stats snapshot shows t=0, 0 slices.
    cl.stats();
    const wire::frame f = cl.read_frame();
    ASSERT_EQ(f.type, wire::msg_type::stats);
    cl.absorb(f);
    EXPECT_EQ(cl.stats_frames(), 1U);
    EXPECT_EQ(cl.last_stats().slices, 0U);
    EXPECT_DOUBLE_EQ(cl.last_stats().sim_time_s, 0.0);
    EXPECT_EQ(cl.last_stats().samples_streamed, 0U);

    cl.resume();
    const wire::close_info close = cl.drain();
    EXPECT_EQ(close.reason, wire::close_reason::finished);
    EXPECT_EQ(close.slices, 20U);
    EXPECT_EQ(close.samples_streamed, cl.wave("out").times.size());
    srv.stop();
}

// ----------------------------------------------------------------------- pacing --

TEST(sim_server, pacing_holds_wall_clock_with_bounded_drift) {
    define_scenarios();
    server::sim_server srv;
    srv.start();
    auto cl = server::client::connect_tcp("127.0.0.1", srv.port());
    cl.hello();
    cl.open_async("srv_paced", {}, 1000);
    cl.pace(10.0);  // 100 ms of sim time in ~10 ms of wall time
    cl.subscribe("out");
    (void)cl.await_opened();
    cl.resume();

    const auto t0 = std::chrono::steady_clock::now();
    const wire::close_info close = cl.drain();
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

    EXPECT_EQ(close.reason, wire::close_reason::finished);
    // The pace frame reply confirmed the factor.
    EXPECT_DOUBLE_EQ(cl.last_pace().real_time_factor, 10.0);
    // Pacing must actually slow the run down to ~10 ms; the model itself
    // finishes in well under a millisecond unpaced.
    EXPECT_GE(elapsed, 8e-3);
    // ...and the kernel must keep up: drift is the wall-clock lag the
    // scheduler could not sleep away.  Allow generous CI scheduling noise,
    // and more under TSan, whose ~15x instrumentation slowdown makes the
    // kernel genuinely miss the 10x schedule — drift reporting working as
    // designed, but the honest bound is much looser.
#if defined(__SANITIZE_THREAD__)
    EXPECT_LT(close.pace_max_drift_s, 500e-3);
#else
    EXPECT_LT(close.pace_max_drift_s, 50e-3);
#endif
    expect_bit_identical(cl.wave("out"), offline("srv_paced", "out"));
    srv.stop();
}

// ------------------------------------------------------------------- robustness --

TEST(sim_server, garbage_bytes_get_an_error_frame_then_disconnect) {
    define_scenarios();
    server::sim_server srv;
    srv.start();
    auto cl = server::client::connect_tcp("127.0.0.1", srv.port());
    const std::vector<std::uint8_t> garbage = {'n', 'o', 't', ' ', 's', 'c', 'a', '1',
                                               0x00, 0x01, 0x02, 0x03, 0x04};
    ASSERT_EQ(::send(cl.fd(), garbage.data(), garbage.size(), 0),
              static_cast<ssize_t>(garbage.size()));
    const wire::frame f = cl.read_frame();
    EXPECT_EQ(f.type, wire::msg_type::error);
    // Server hangs up after flushing the error: the next read sees EOF.
    EXPECT_THROW((void)cl.read_frame(), sca::util::error);
    srv.stop();
}

TEST(sim_server, abrupt_client_disconnect_reaps_the_session) {
    define_scenarios();
    server::sim_server srv;
    srv.start();
    {
        auto cl = server::client::connect_tcp("127.0.0.1", srv.port());
        cl.hello();
        cl.open("srv_flood", {}, 1000);
        cl.subscribe("out");
    }  // client destroyed: socket closed mid-run
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (srv.active_sessions() != 0) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "dead connection's session was never reaped";
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_EQ(srv.sessions_opened(), 1U);
    srv.stop();
}
