// Mixed-signal library tests: amplifier, filters, converters, sigma-delta,
// pipelined ADC, PWM, mixers, oscillators, noise sources, external ODE.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/simulation.hpp"
#include "core/transient.hpp"
#include "eln/converter.hpp"
#include "eln/network.hpp"
#include "eln/primitives.hpp"
#include "eln/sources.hpp"
#include "lib/amplifier.hpp"
#include "lib/converters.hpp"
#include "lib/external_ode.hpp"
#include "lib/filters.hpp"
#include "lib/mixer.hpp"
#include "lib/noise_source.hpp"
#include "lib/oscillator.hpp"
#include "lib/pipeline_adc.hpp"
#include "lib/pwm.hpp"
#include "lib/sigma_delta.hpp"
#include "util/fft.hpp"
#include "util/measure.hpp"
#include "util/object_bag.hpp"

namespace de = sca::de;
namespace tdf = sca::tdf;
namespace lib = sca::lib;
namespace core = sca::core;
using namespace sca::de::literals;

namespace {

/// Generic TDF collector used across the tests.
struct collector : tdf::module {
    tdf::in<double> in;
    std::vector<double> samples;
    explicit collector(const de::module_name& nm) : tdf::module(nm), in("in") {}
    void processing() override {
        for (unsigned k = 0; k < in.rate(); ++k) samples.push_back(in.read(k));
    }
};

struct int_collector : tdf::module {
    tdf::in<std::int64_t> in;
    std::vector<std::int64_t> samples;
    explicit int_collector(const de::module_name& nm) : tdf::module(nm), in("in") {}
    void processing() override { samples.push_back(in.read()); }
};

}  // namespace

TEST(amplifier, gain_and_saturation) {
    core::simulation sim;
    lib::sine_source src("src", 1.0, 10e3);
    src.set_timestep(1.0, de::time_unit::us);
    lib::amplifier amp("amp", 5.0, 2.5, -2.5);
    collector sink("sink");
    tdf::signal<double> s1("s1"), s2("s2");
    src.out.bind(s1);
    amp.in.bind(s1);
    amp.out.bind(s2);
    sink.in.bind(s2);

    sim.run(200_us);
    double vmax = 0.0, vmin = 0.0;
    for (double v : sink.samples) {
        vmax = std::max(vmax, v);
        vmin = std::min(vmin, v);
    }
    EXPECT_NEAR(vmax, 2.5, 1e-9);  // clipped, not 5.0
    EXPECT_NEAR(vmin, -2.5, 1e-9);
}

TEST(amplifier, bandwidth_attenuates_high_frequency) {
    auto amplitude_at = [](double f_signal) {
        core::simulation sim;
        lib::sine_source src("src", 1.0, f_signal);
        src.set_timestep(100.0, de::time_unit::ns);
        lib::amplifier amp("amp", 1.0);
        amp.set_bandwidth(10e3);
        collector sink("sink");
        tdf::signal<double> s1("s1"), s2("s2");
        src.out.bind(s1);
        amp.in.bind(s1);
        amp.out.bind(s2);
        sink.in.bind(s2);
        sim.run(2_ms);
        double vmax = 0.0;
        for (std::size_t i = sink.samples.size() / 2; i < sink.samples.size(); ++i) {
            vmax = std::max(vmax, std::abs(sink.samples[i]));
        }
        return vmax;
    };
    EXPECT_GT(amplitude_at(1e3), 0.95);
    EXPECT_LT(amplitude_at(100e3), 0.2);
}

TEST(fir, design_has_unity_dc_gain) {
    const auto taps = lib::fir::design_lowpass(63, 0.1);
    double sum = 0.0;
    for (double t : taps) sum += t;
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(fir, lowpass_rejects_high_frequency) {
    core::simulation sim;
    lib::sine_source lo("lo", 1.0, 1e3);
    lo.set_timestep(10.0, de::time_unit::us);  // fs = 100 kHz
    lib::sine_source hi("hi", 1.0, 40e3);
    struct adder : tdf::module {
        tdf::in<double> a, b;
        tdf::out<double> out;
        explicit adder(const de::module_name& nm)
            : tdf::module(nm), a("a"), b("b"), out("out") {}
        void processing() override { out.write(a.read() + b.read()); }
    } mix("mix");
    lib::fir filt("filt", lib::fir::design_lowpass(101, 0.05));  // fc = 5 kHz
    collector sink("sink");
    tdf::signal<double> s1("s1"), s2("s2"), s3("s3"), s4("s4");
    lo.out.bind(s1);
    hi.out.bind(s2);
    mix.a.bind(s1);
    mix.b.bind(s2);
    mix.out.bind(s3);
    filt.in.bind(s3);
    filt.out.bind(s4);
    sink.in.bind(s4);

    sim.run(20_ms);
    // After settling, output should be nearly the pure 1 kHz tone.
    std::vector<double> tail(sink.samples.end() - 1024, sink.samples.end());
    const auto spec = sca::util::magnitude_spectrum(tail, 100e3);
    double mag_1k = 0.0, mag_40k = 0.0;
    for (const auto& bin : spec) {
        if (std::abs(bin.frequency - 1e3) < 200.0) mag_1k = std::max(mag_1k, bin.magnitude);
        if (std::abs(bin.frequency - 40e3) < 200.0) {
            mag_40k = std::max(mag_40k, bin.magnitude);
        }
    }
    EXPECT_GT(mag_1k, 0.8);
    EXPECT_LT(mag_40k, 0.01);
}

TEST(biquad, bilinear_lowpass_tracks_analog_prototype) {
    // Analog: H(s) = 1/(1 + s/w0); digital biquad via bilinear transform.
    const double fc = 1e3;
    const double w0 = 2.0 * std::numbers::pi * fc;
    const auto c = lib::bilinear({1.0}, {1.0, 1.0 / w0}, 48e3);

    core::simulation sim;
    lib::sine_source src("src", 1.0, fc);  // at the corner: -3 dB expected
    src.set_timestep(1.0 / 48e3, de::time_unit::sec);
    lib::biquad f("f", c);
    collector sink("sink");
    tdf::signal<double> s1("s1"), s2("s2");
    src.out.bind(s1);
    f.in.bind(s1);
    f.out.bind(s2);
    sink.in.bind(s2);

    sim.run(20_ms);
    double vmax = 0.0;
    for (std::size_t i = sink.samples.size() / 2; i < sink.samples.size(); ++i) {
        vmax = std::max(vmax, std::abs(sink.samples[i]));
    }
    EXPECT_NEAR(vmax, 1.0 / std::sqrt(2.0), 0.02);
}

TEST(multirate, decimator_averages) {
    core::simulation sim;
    struct ramp : tdf::module {
        tdf::out<double> out;
        double v = 0.0;
        explicit ramp(const de::module_name& nm) : tdf::module(nm), out("out") {}
        void set_attributes() override { set_timestep(1.0, de::time_unit::us); }
        void processing() override { out.write(v++); }
    } src("src");
    lib::decimator dec("dec", 4);
    collector sink("sink");
    tdf::signal<double> s1("s1"), s2("s2");
    src.out.bind(s1);
    dec.in.bind(s1);
    dec.out.bind(s2);
    sink.in.bind(s2);

    sim.run(16_us);
    ASSERT_GE(sink.samples.size(), 4U);
    EXPECT_DOUBLE_EQ(sink.samples[0], 1.5);   // mean of 0,1,2,3
    EXPECT_DOUBLE_EQ(sink.samples[1], 5.5);   // mean of 4,5,6,7
}

TEST(multirate, interpolator_is_linear) {
    core::simulation sim;
    struct steps : tdf::module {
        tdf::out<double> out;
        double v = 0.0;
        explicit steps(const de::module_name& nm) : tdf::module(nm), out("out") {}
        void set_attributes() override { set_timestep(4.0, de::time_unit::us); }
        void processing() override {
            out.write(v);
            v += 4.0;
        }
    } src("src");
    lib::interpolator interp("interp", 4);
    collector sink("sink");
    tdf::signal<double> s1("s1"), s2("s2");
    src.out.bind(s1);
    interp.in.bind(s1);
    interp.out.bind(s2);
    sink.in.bind(s2);

    sim.run(12_us);
    // First input 0 (prev 0): flat; second input 4: ramps 1,2,3,4.
    ASSERT_GE(sink.samples.size(), 8U);
    EXPECT_DOUBLE_EQ(sink.samples[4], 1.0);
    EXPECT_DOUBLE_EQ(sink.samples[5], 2.0);
    EXPECT_DOUBLE_EQ(sink.samples[7], 4.0);
}

TEST(adc_dac, roundtrip_within_one_lsb) {
    core::simulation sim;
    lib::sine_source src("src", 0.9, 1e3);
    src.set_timestep(10.0, de::time_unit::us);
    lib::adc a("a", 10, 1.0);
    lib::dac d("d", 10, 1.0);
    collector sink("sink");
    collector orig("orig");
    tdf::signal<double> s1("s1"), s3("s3"), s4("s4");
    tdf::signal<std::int64_t> s2("s2");
    src.out.bind(s1);
    a.in.bind(s1);
    a.code.bind(s2);
    a.quantized.bind(s3);
    d.code.bind(s2);
    d.out.bind(s4);
    sink.in.bind(s4);
    orig.in.bind(s1);

    sim.run(2_ms);
    const double lsb = 2.0 / 1024.0;
    for (std::size_t i = 0; i < sink.samples.size(); ++i) {
        EXPECT_NEAR(sink.samples[i], orig.samples[i], lsb) << i;
    }
}

TEST(adc, saturates_at_full_scale) {
    core::simulation sim;
    lib::sine_source src("src", 3.0, 1e3);  // overdrive
    src.set_timestep(10.0, de::time_unit::us);
    lib::adc a("a", 8, 1.0);
    int_collector codes("codes");
    collector q("q");
    tdf::signal<double> s1("s1"), s3("s3");
    tdf::signal<std::int64_t> s2("s2");
    src.out.bind(s1);
    a.in.bind(s1);
    a.code.bind(s2);
    a.quantized.bind(s3);
    codes.in.bind(s2);
    q.in.bind(s3);

    sim.run(2_ms);
    for (auto c : codes.samples) {
        EXPECT_GE(c, -128);
        EXPECT_LE(c, 127);
    }
}

TEST(sample_hold, holds_value_across_output_rate) {
    core::simulation sim;
    lib::sine_source src("src", 1.0, 1e3);
    src.set_timestep(100.0, de::time_unit::us);
    lib::sample_hold sh("sh", 4);
    collector sink("sink");
    tdf::signal<double> s1("s1"), s2("s2");
    src.out.bind(s1);
    sh.in.bind(s1);
    sh.out.bind(s2);
    sink.in.bind(s2);

    sim.run(1_ms);
    ASSERT_GE(sink.samples.size(), 8U);
    for (std::size_t i = 0; i + 3 < sink.samples.size(); i += 4) {
        EXPECT_DOUBLE_EQ(sink.samples[i], sink.samples[i + 1]);
        EXPECT_DOUBLE_EQ(sink.samples[i], sink.samples[i + 3]);
    }
}

TEST(comparator, hysteresis_prevents_chatter) {
    core::simulation sim;
    struct noisy_ramp : tdf::module {
        tdf::out<double> out;
        explicit noisy_ramp(const de::module_name& nm) : tdf::module(nm), out("out") {}
        void set_attributes() override { set_timestep(1.0, de::time_unit::us); }
        void processing() override {
            const double t = tdf_time().to_seconds();
            const double ripple = 0.05 * ((activation_count() % 2 == 0) ? 1.0 : -1.0);
            out.write(t * 1e4 + ripple);  // slow ramp + ripple
        }
    } src("src");
    lib::comparator cmp("cmp", 0.5, 0.2);
    struct bool_collector : tdf::module {
        tdf::in<bool> in;
        int toggles = 0;
        bool last = false;
        explicit bool_collector(const de::module_name& nm) : tdf::module(nm), in("in") {}
        void processing() override {
            if (in.read() != last) ++toggles;
            last = in.read();
        }
    } sink("sink");
    tdf::signal<double> s1("s1");
    tdf::signal<bool> s2("s2");
    src.out.bind(s1);
    cmp.in.bind(s1);
    cmp.out.bind(s2);
    sink.in.bind(s2);

    sim.run(100_us);
    EXPECT_EQ(sink.toggles, 1);  // ripple < hysteresis: exactly one switch
}

TEST(sigma_delta, dc_average_tracks_input) {
    core::simulation sim;
    lib::waveform_source src("src", sca::util::waveform::dc(0.25));
    src.set_timestep(1.0, de::time_unit::us);
    lib::sigma_delta_modulator mod("mod", 2, 1.0);
    collector sink("sink");
    tdf::signal<double> s1("s1"), s2("s2");
    src.out.bind(s1);
    mod.in.bind(s1);
    mod.out.bind(s2);
    sink.in.bind(s2);

    sim.run(20_ms);
    EXPECT_NEAR(sca::util::mean(sink.samples), 0.25, 0.01);
    for (double v : sink.samples) EXPECT_TRUE(v == 1.0 || v == -1.0);
}

TEST(sigma_delta, sinc3_decimation_recovers_sine) {
    core::simulation sim;
    lib::sine_source src("src", 0.5, 1e3);
    src.set_timestep(1.0, de::time_unit::us);  // 1 MHz, OSR 64 -> 15.6 kHz out
    lib::sigma_delta_modulator mod("mod", 2, 1.0);
    lib::sinc3_decimator dec("dec", 64);
    collector sink("sink");
    tdf::signal<double> s1("s1"), s2("s2"), s3("s3");
    src.out.bind(s1);
    mod.in.bind(s1);
    mod.out.bind(s2);
    dec.in.bind(s2);
    dec.out.bind(s3);
    sink.in.bind(s3);

    sim.run(50_ms);
    std::vector<double> tail(sink.samples.begin() + 16, sink.samples.end());
    const double sinad = sca::util::sinad_db(tail, 1e6 / 64.0);
    EXPECT_GT(sinad, 35.0);  // 2nd-order sigma-delta at OSR 64
}

TEST(pipeline_adc, ideal_enob_close_to_nominal) {
    core::simulation sim;
    lib::sine_source src("src", 0.95, 997.0);  // avoid coherent sampling
    src.set_timestep(10.0, de::time_unit::us);
    lib::pipeline_adc adc("adc", 9, 1.0);  // 10-bit
    collector sink("sink");
    tdf::signal<double> s1("s1"), s3("s3");
    tdf::signal<std::int64_t> s2("s2");
    src.out.bind(s1);
    adc.in.bind(s1);
    adc.code.bind(s2);
    adc.analog_estimate.bind(s3);
    sink.in.bind(s3);

    sim.run(82_ms);  // 8192 samples at 100 kHz
    std::vector<double> tail(sink.samples.end() - 8192, sink.samples.end());
    const double enob = sca::util::enob(sca::util::sinad_db(tail, 100e3));
    EXPECT_GT(enob, 8.5);
}

TEST(pipeline_adc, correction_absorbs_comparator_offsets) {
    auto run_enob = [](bool correction) {
        core::simulation sim;
        lib::sine_source src("src", 0.9, 997.0);
        src.set_timestep(10.0, de::time_unit::us);
        lib::pipeline_adc adc("adc", 9, 1.0);
        std::vector<lib::pipeline_stage_params> params(9);
        for (auto& p : params) p.offset = 0.1;  // large comparator offset
        adc.set_stage_params(params);
        adc.set_digital_correction(correction);
        collector sink("sink");
        tdf::signal<double> s1("s1"), s3("s3");
        tdf::signal<std::int64_t> s2("s2");
        src.out.bind(s1);
        adc.in.bind(s1);
        adc.code.bind(s2);
        adc.analog_estimate.bind(s3);
        sink.in.bind(s3);
        sim.run(42_ms);
        std::vector<double> tail(sink.samples.end() - 4096, sink.samples.end());
        return sca::util::enob(sca::util::sinad_db(tail, 100e3));
    };
    const double with = run_enob(true);
    const double without = run_enob(false);
    EXPECT_GT(with, without + 2.0);  // correction buys several bits back
    EXPECT_GT(with, 8.0);
}

TEST(pwm, duty_cycle_sets_high_time) {
    core::simulation sim;
    de::signal<double> duty("duty", 0.25);
    de::signal<bool> out("out", false);
    lib::pwm gen("gen", 10_us);
    gen.duty.bind(duty);
    gen.out.bind(out);

    std::vector<std::pair<double, bool>> log;
    auto& watch = sim.context().register_method("watch", [&] {
        log.emplace_back(sim.context().now().to_seconds(), out.read());
    });
    watch.dont_initialize();
    watch.make_sensitive(out.value_changed_event());

    sim.run(30_us);
    // Rising at 0,10u,20u..., falling at 2.5u,12.5u,...
    ASSERT_GE(log.size(), 5U);
    EXPECT_NEAR(log[1].first - log[0].first, 2.5e-6, 1e-12);
    EXPECT_NEAR(log[2].first - log[0].first, 10e-6, 1e-12);
}

TEST(mixer, produces_sum_and_difference_tones) {
    core::simulation sim;
    lib::sine_source rf("rf", 1.0, 12e3);
    rf.set_timestep(2.0, de::time_unit::us);  // fs = 500 kHz
    lib::sine_source lo("lo", 1.0, 10e3);
    lib::mixer mx("mx", 2.0);  // conversion gain 2 -> products amplitude 1
    collector sink("sink");
    tdf::signal<double> s1("s1"), s2("s2"), s3("s3");
    rf.out.bind(s1);
    lo.out.bind(s2);
    mx.rf.bind(s1);
    mx.lo.bind(s2);
    mx.out.bind(s3);
    sink.in.bind(s3);

    sim.run(40_ms);
    std::vector<double> tail(sink.samples.end() - 8192, sink.samples.end());
    const auto spec = sca::util::magnitude_spectrum(tail, 500e3);
    double at_2k = 0.0, at_22k = 0.0, at_12k = 0.0;
    for (const auto& bin : spec) {
        if (std::abs(bin.frequency - 2e3) < 100.0) at_2k = std::max(at_2k, bin.magnitude);
        if (std::abs(bin.frequency - 22e3) < 100.0) at_22k = std::max(at_22k, bin.magnitude);
        if (std::abs(bin.frequency - 12e3) < 100.0) at_12k = std::max(at_12k, bin.magnitude);
    }
    EXPECT_GT(at_2k, 0.8);   // difference tone
    EXPECT_GT(at_22k, 0.8);  // sum tone
    EXPECT_LT(at_12k, 0.05);  // RF feedthrough suppressed (ideal mixer)
}

TEST(oscillator, quadrature_outputs_are_orthogonal) {
    core::simulation sim;
    lib::quadrature_oscillator osc("osc", 1.0, 5e3);
    osc.set_timestep(1.0, de::time_unit::us);
    collector si("si"), sq("sq");
    tdf::signal<double> s1("s1"), s2("s2");
    osc.out_i.bind(s1);
    osc.out_q.bind(s2);
    si.in.bind(s1);
    sq.in.bind(s2);

    sim.run(5_ms);
    for (std::size_t i = 0; i < si.samples.size(); ++i) {
        const double mag = si.samples[i] * si.samples[i] + sq.samples[i] * sq.samples[i];
        EXPECT_NEAR(mag, 1.0, 1e-9);
    }
}

TEST(noise_sources, statistics_match_parameters) {
    core::simulation sim;
    lib::gaussian_noise_source g("g", 0.5, 42);
    g.set_timestep(1.0, de::time_unit::us);
    lib::uniform_noise_source u("u", 1.0, 43);
    u.set_timestep(1.0, de::time_unit::us);  // separate cluster: own anchor
    collector cg("cg"), cu("cu");
    tdf::signal<double> s1("s1"), s2("s2");
    g.out.bind(s1);
    u.out.bind(s2);
    cg.in.bind(s1);
    cu.in.bind(s2);

    sim.run(100_ms);
    EXPECT_NEAR(sca::util::rms(cg.samples), 0.5, 0.02);
    EXPECT_NEAR(sca::util::mean(cg.samples), 0.0, 0.02);
    double umax = 0.0;
    for (double v : cu.samples) umax = std::max(umax, std::abs(v));
    EXPECT_LE(umax, 1.0);
    EXPECT_GT(umax, 0.95);
}

TEST(external_ode, wrapped_rk4_matches_eln_rc) {
    // The same RC lowpass integrated by the "external" RK4 engine and by the
    // native ELN solver must agree (open solver-coupling objective).
    const double r = 1000.0, c = 100e-9;

    core::simulation sim;
    sca::util::object_bag bag;
    // Native ELN reference.
    sca::eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto vin = net.create_node("vin");
    auto vout = net.create_node("vout");
    bag.make<sca::eln::vsource>("vs", net, vin, gnd,
                          sca::eln::waveform::pulse(0.0, 1.0, 5e-6, 1e-9, 1e-9, 1.0, 2.0));
    bag.make<sca::eln::resistor>("r", net, vin, vout, r);
    bag.make<sca::eln::capacitor>("c", net, vout, gnd, c);

    // External engine wrapped in TDF.
    auto engine = std::make_unique<sca::solver::rk4_solver>(1e-7);
    engine->configure(1, 1,
                      [r, c](double, const std::vector<double>& x,
                             const std::vector<double>& u, std::vector<double>& dx) {
                          dx[0] = (u[0] - x[0]) / (r * c);
                      });
    engine->set_state({0.0});
    lib::external_ode ext("ext", std::move(engine));
    ext.set_timestep(1.0, de::time_unit::us);
    lib::waveform_source stim("stim", sca::util::waveform::pulse(0.0, 1.0, 5e-6, 1e-9,
                                                                 1e-9, 1.0, 2.0));
    collector sink("sink");
    tdf::signal<double> s1("s1"), s2("s2");
    stim.out.bind(s1);
    ext.in.bind(s1);
    ext.out.bind(s2);
    sink.in.bind(s2);

    core::transient_recorder rec(sim, 5_us);
    rec.add_probe("eln", [&] { return net.voltage(vout); });
    rec.add_probe("ext", [&] { return sink.samples.empty() ? 0.0 : sink.samples.back(); });
    rec.run(400_us);

    const auto eln_v = rec.column(0);
    const auto ext_v = rec.column(1);
    for (std::size_t i = 2; i < eln_v.size(); ++i) {
        EXPECT_NEAR(eln_v[i], ext_v[i], 0.02) << i;
    }
}
