// Continuous-time solver tests: linear DAE integration accuracy and
// stability, DC operating point, nonlinear Newton, adaptive stepping, and
// the external (RK4) engine.
#include <gtest/gtest.h>

#include <cmath>

#include "solver/dc.hpp"
#include "solver/equation_system.hpp"
#include "solver/external.hpp"
#include "solver/linear_dae.hpp"
#include "solver/nonlinear_dae.hpp"
#include "util/report.hpp"

namespace solver = sca::solver;

namespace {

/// dx/dt = -x / tau  =>  (1/tau) x + dx/dt = 0.
solver::equation_system decay_system(double tau) {
    solver::equation_system sys;
    const std::size_t x = sys.add_unknown("x");
    sys.add_a(x, x, 1.0 / tau);
    sys.add_b(x, x, 1.0);
    return sys;
}

}  // namespace

TEST(equation_system, rhs_combines_constants_sources_inputs) {
    solver::equation_system sys;
    const std::size_t r = sys.add_unknown("x");
    sys.add_rhs_constant(r, 1.0);
    sys.add_rhs_source(r, [](double t) { return 2.0 * t; });
    const std::size_t slot = sys.add_input(r);
    sys.set_input(slot, 4.0);
    const auto q = sys.rhs(3.0);
    EXPECT_DOUBLE_EQ(q[0], 1.0 + 6.0 + 4.0);
}

TEST(equation_system, clear_stamps_keeps_unknowns) {
    solver::equation_system sys;
    (void)sys.add_unknown("a");
    sys.add_a(0, 0, 5.0);
    const auto gen = sys.stamp_generation();
    sys.clear_stamps();
    EXPECT_EQ(sys.size(), 1U);
    EXPECT_DOUBLE_EQ(sys.a().get(0, 0), 0.0);
    EXPECT_GT(sys.stamp_generation(), gen);
}

TEST(linear_dae, backward_euler_decays_to_analytic) {
    auto sys = decay_system(1e-3);
    solver::linear_dae_solver s(sys, solver::integration_method::backward_euler, 1e-6);
    s.set_initial_state({1.0}, 0.0);
    s.advance_to(1e-3);
    EXPECT_NEAR(s.x()[0], std::exp(-1.0), 2e-3);
}

TEST(linear_dae, trapezoidal_is_second_order) {
    // Global error should shrink ~4x when h halves.
    auto run = [](double h) {
        auto sys = decay_system(1e-3);
        solver::linear_dae_solver s(sys, solver::integration_method::trapezoidal, h);
        s.set_initial_state({1.0}, 0.0);
        s.advance_to(1e-3);
        return std::abs(s.x()[0] - std::exp(-1.0));
    };
    const double e1 = run(4e-6);
    const double e2 = run(2e-6);
    EXPECT_GT(e1 / e2, 3.0);
    EXPECT_LT(e1 / e2, 5.0);
}

TEST(linear_dae, backward_euler_is_first_order) {
    auto run = [](double h) {
        auto sys = decay_system(1e-3);
        solver::linear_dae_solver s(sys, solver::integration_method::backward_euler, h);
        s.set_initial_state({1.0}, 0.0);
        s.advance_to(1e-3);
        return std::abs(s.x()[0] - std::exp(-1.0));
    };
    const double e1 = run(4e-6);
    const double e2 = run(2e-6);
    EXPECT_GT(e1 / e2, 1.7);
    EXPECT_LT(e1 / e2, 2.3);
}

TEST(linear_dae, backward_euler_stable_on_stiff_system) {
    // Fast mode tau = 1 ns, step = 1 us >> tau: BE must remain stable.
    auto sys = decay_system(1e-9);
    solver::linear_dae_solver s(sys, solver::integration_method::backward_euler, 1e-6);
    s.set_initial_state({1.0}, 0.0);
    s.advance_to(1e-4);
    EXPECT_LT(std::abs(s.x()[0]), 1e-6);
}

TEST(linear_dae, factorization_is_reused) {
    auto sys = decay_system(1e-3);
    solver::linear_dae_solver s(sys, solver::integration_method::backward_euler, 1e-6);
    s.set_initial_state({1.0}, 0.0);
    s.advance_to(1e-4);
    EXPECT_EQ(s.factor_count(), 1U);
    EXPECT_EQ(s.solve_count(), 100U);
}

TEST(linear_dae, restamp_triggers_refactor) {
    auto sys = decay_system(1e-3);
    solver::linear_dae_solver s(sys, solver::integration_method::backward_euler, 1e-6);
    s.set_initial_state({1.0}, 0.0);
    s.step();
    sys.clear_stamps();
    sys.add_a(0, 0, 1.0 / 2e-3);
    sys.add_b(0, 0, 1.0);
    s.step();
    EXPECT_EQ(s.factor_count(), 2U);
    // clear_stamps is the pattern-level path: symbolic analysis re-runs.
    EXPECT_EQ(s.symbolic_factor_count(), 2U);
}

TEST(linear_dae, stamp_slot_update_refactors_numerically_only) {
    // dx/dt = -x/tau with tau driven through a stamp slot: updating the slot
    // must cost one numeric refactor and zero symbolic analyses.
    solver::equation_system sys;
    const std::size_t x = sys.add_unknown("x");
    const auto g = sys.add_stamp(1.0 / 1e-3);
    sys.stamp_a(g, x, x, 1.0);
    sys.add_b(x, x, 1.0);
    solver::linear_dae_solver s(sys, solver::integration_method::backward_euler, 1e-6);
    s.set_initial_state({1.0}, 0.0);
    s.advance_to(1e-4);
    EXPECT_EQ(s.factor_count(), 1U);
    EXPECT_EQ(s.symbolic_factor_count(), 1U);

    sys.set_stamp(g, 1.0 / 2e-3);  // values-only: pattern untouched
    s.advance_to(2e-4);
    EXPECT_EQ(s.factor_count(), 2U);
    EXPECT_EQ(s.symbolic_factor_count(), 1U);
    EXPECT_EQ(s.solve_count(), 200U);
}

TEST(equation_system, stamp_slot_added_after_finalize_is_usable) {
    // finalize_stamps() indexes slot -> entries; a slot allocated (and
    // referenced) afterwards must re-index instead of indexing out of range.
    solver::equation_system sys;
    const std::size_t x = sys.add_unknown("x");
    const auto g1 = sys.add_stamp(2.0);
    sys.stamp_a(g1, x, x, 1.0);
    sys.finalize_stamps();
    const auto g2 = sys.add_stamp(3.0);
    sys.stamp_a(g2, x, x, 1.0);
    EXPECT_DOUBLE_EQ(sys.a().get(x, x), 5.0);
    sys.set_stamp(g2, 4.0);
    EXPECT_DOUBLE_EQ(sys.a().get(x, x), 6.0);
    sys.set_stamp(g1, 1.0);
    EXPECT_DOUBLE_EQ(sys.a().get(x, x), 5.0);
}

TEST(equation_system, static_adds_interleaved_with_slots_replay_in_order) {
    solver::equation_system sys;
    const std::size_t x = sys.add_unknown("x");
    sys.add_a(x, x, 10.0);            // static prefix
    const auto g = sys.add_stamp(1.0);
    sys.stamp_a(g, x, x, 2.0);        // + 2*g
    sys.add_a(x, x, 0.5);             // static suffix on a dynamic entry
    EXPECT_DOUBLE_EQ(sys.a().get(x, x), 12.5);
    sys.set_stamp(g, 3.0);
    EXPECT_DOUBLE_EQ(sys.a().get(x, x), 16.5);
}

TEST(linear_dae, timestep_change_refactors_numerically_only) {
    auto sys = decay_system(1e-3);
    solver::linear_dae_solver s(sys, solver::integration_method::backward_euler, 1e-6);
    s.set_initial_state({1.0}, 0.0);
    s.step();
    s.set_timestep(2e-6);
    s.step();
    EXPECT_EQ(s.factor_count(), 2U);
    EXPECT_EQ(s.symbolic_factor_count(), 1U);
}

TEST(linear_dae, slot_update_matches_full_restamp_bit_for_bit) {
    // The same switched-decay transient twice: once through stamp-slot
    // updates (numeric refactor), once through clear_stamps + full restamp
    // (fresh symbolic). Waveforms must match exactly, not approximately.
    const double tau_a = 1e-3, tau_b = 2.5e-4;

    solver::equation_system sys_inc;
    const std::size_t xi = sys_inc.add_unknown("x");
    const auto slot = sys_inc.add_stamp(1.0 / tau_a);
    sys_inc.stamp_a(slot, xi, xi, 1.0);
    sys_inc.add_b(xi, xi, 1.0);
    solver::linear_dae_solver inc(sys_inc, solver::integration_method::backward_euler,
                                  1e-6);
    inc.set_initial_state({1.0}, 0.0);

    solver::equation_system sys_full;
    const std::size_t xf = sys_full.add_unknown("x");
    sys_full.add_a(xf, xf, 1.0 / tau_a);
    sys_full.add_b(xf, xf, 1.0);
    solver::linear_dae_solver full(sys_full, solver::integration_method::backward_euler,
                                   1e-6);
    full.set_initial_state({1.0}, 0.0);

    double tau = tau_a;
    for (int seg = 0; seg < 6; ++seg) {
        tau = seg % 2 == 0 ? tau_b : tau_a;
        sys_inc.set_stamp(slot, 1.0 / tau);
        sys_full.clear_stamps();
        sys_full.add_a(xf, xf, 1.0 / tau);
        sys_full.add_b(xf, xf, 1.0);
        for (int i = 0; i < 50; ++i) {
            inc.step();
            full.step();
            ASSERT_EQ(inc.x()[0], full.x()[0]) << "diverged in segment " << seg;
        }
    }
    EXPECT_EQ(inc.symbolic_factor_count(), 1U);
    EXPECT_GE(full.symbolic_factor_count(), 6U);
}

TEST(linear_dae, dense_and_sparse_paths_agree) {
    auto sys = decay_system(5e-4);
    solver::linear_dae_solver sp(sys, solver::integration_method::trapezoidal, 1e-6);
    sp.set_initial_state({1.0}, 0.0);
    sp.advance_to(2e-4);

    auto sys2 = decay_system(5e-4);
    solver::linear_dae_solver dn(sys2, solver::integration_method::trapezoidal, 1e-6);
    dn.set_use_dense(true);
    dn.set_initial_state({1.0}, 0.0);
    dn.advance_to(2e-4);

    EXPECT_NEAR(sp.x()[0], dn.x()[0], 1e-12);
}

TEST(linear_dae, forced_oscillator_tracks_input) {
    // x' = w (y),  y' = -w x + forcing: second-order resonance integrated as
    // a 2x2 linear DAE; checks multi-unknown assembly.
    solver::equation_system sys;
    const std::size_t x = sys.add_unknown("x");
    const std::size_t y = sys.add_unknown("y");
    const double w = 2.0 * 3.141592653589793 * 1000.0;
    // dx/dt - w y = 0 ; dy/dt + w x = 0; start at (1, 0): circular motion.
    sys.add_b(x, x, 1.0);
    sys.add_a(x, y, -w);
    sys.add_b(y, y, 1.0);
    sys.add_a(y, x, w);
    solver::linear_dae_solver s(sys, solver::integration_method::trapezoidal, 1e-7);
    s.set_initial_state({1.0, 0.0}, 0.0);
    s.advance_to(1e-3);  // one full period
    EXPECT_NEAR(s.x()[0], 1.0, 1e-3);
    EXPECT_NEAR(s.x()[1], 0.0, 2e-3);
}

// -------------------------------------------------------------------- DC ---

TEST(dc, linear_divider) {
    // Unknown v: (1/r1 + 1/r2) v = vs / r1  (divider collapsed to one node).
    solver::equation_system sys;
    const std::size_t v = sys.add_unknown("v");
    sys.add_a(v, v, 1.0 / 1000.0 + 1.0 / 3000.0);
    sys.add_rhs_constant(v, 2.0 / 1000.0);
    const auto x = solver::dc_solve(sys, 0.0);
    EXPECT_NEAR(x[0], 1.5, 1e-12);
}

TEST(dc, singular_a_uses_pseudo_transient) {
    sca::util::clear_reports();
    // Pure capacitor node: A = 0, B = C. DC must come out 0 with a warning.
    solver::equation_system sys;
    const std::size_t v = sys.add_unknown("v");
    sys.add_b(v, v, 1e-9);
    const auto x = solver::dc_solve(sys, 0.0);
    EXPECT_NEAR(x[0], 0.0, 1e-9);
    EXPECT_FALSE(sca::util::warnings().empty());
}

TEST(dc, nonlinear_diode_clamp) {
    // g v + i_d(v) = i_in with a diode-like exponential: Newton converges to
    // a forward voltage near 0.6-0.8 V.
    solver::equation_system sys;
    const std::size_t v = sys.add_unknown("v");
    sys.add_a(v, v, 1e-3);
    sys.add_rhs_constant(v, 10e-3);
    sys.add_nonlinear([v](const std::vector<double>& x, std::vector<double>& r,
                          std::vector<solver::jacobian_entry>& j) {
        const double vt = 0.025852;
        const double is = 1e-14;
        const double vd = std::min(x[v], 1.5);
        const double e = std::exp(vd / vt);
        r[v] += is * (e - 1.0);
        j.push_back({v, v, is * e / vt});
    });
    const auto x = solver::dc_solve(sys, 0.0);
    EXPECT_GT(x[0], 0.5);
    EXPECT_LT(x[0], 0.9);
}

// -------------------------------------------------------------- nonlinear --

TEST(nonlinear_dae, matches_linear_solver_on_linear_problem) {
    auto sys = decay_system(1e-3);
    solver::nonlinear_options opt;
    opt.h_init = 1e-6;
    opt.h_max = 1e-6;
    opt.adaptive = false;
    solver::nonlinear_dae_solver s(sys, opt);
    s.set_initial_state({1.0}, 0.0);
    s.advance_to(1e-3);
    EXPECT_NEAR(s.x()[0], std::exp(-1.0), 2e-3);
}

TEST(nonlinear_dae, cubic_damping_converges) {
    // dx/dt = -x^3, x(0)=1: analytic x(t) = 1/sqrt(1+2t).
    solver::equation_system sys;
    const std::size_t x = sys.add_unknown("x");
    sys.add_b(x, x, 1.0);
    sys.add_nonlinear([x](const std::vector<double>& xi, std::vector<double>& r,
                          std::vector<solver::jacobian_entry>& j) {
        r[x] += xi[x] * xi[x] * xi[x];
        j.push_back({x, x, 3.0 * xi[x] * xi[x]});
    });
    solver::nonlinear_options opt;
    opt.h_init = 1e-3;
    opt.h_max = 0.05;
    opt.lte_reltol = 1e-5;
    solver::nonlinear_dae_solver s(sys, opt);
    s.set_initial_state({1.0}, 0.0);
    s.advance_to(4.0);
    EXPECT_NEAR(s.x()[0], 1.0 / std::sqrt(9.0), 1e-3);
    EXPECT_GT(s.steps_accepted(), 10U);
}

TEST(nonlinear_dae, adaptive_uses_fewer_steps_than_fixed) {
    auto make = [] {
        solver::equation_system sys;
        const std::size_t x = sys.add_unknown("x");
        sys.add_b(x, x, 1.0);
        sys.add_a(x, x, 1.0 / 1e-4);  // tau = 100 us decay, then flat
        return sys;
    };
    auto sys_a = make();
    solver::nonlinear_options adaptive;
    adaptive.h_init = 1e-6;
    adaptive.h_max = 1e-2;
    solver::nonlinear_dae_solver sa(sys_a, adaptive);
    sa.set_initial_state({1.0}, 0.0);
    sa.advance_to(0.01);

    auto sys_f = make();
    solver::nonlinear_options fixed;
    fixed.h_init = 1e-6;
    fixed.h_max = 1e-6;
    fixed.adaptive = false;
    solver::nonlinear_dae_solver sf(sys_f, fixed);
    sf.set_initial_state({1.0}, 0.0);
    sf.advance_to(0.01);

    EXPECT_LT(sa.steps_accepted() * 10, sf.steps_accepted());
    EXPECT_NEAR(sa.x()[0], 0.0, 1e-4);
}

TEST(nonlinear_dae, reports_newton_statistics) {
    auto sys = decay_system(1e-3);
    solver::nonlinear_options opt;
    opt.h_init = 1e-5;
    solver::nonlinear_dae_solver s(sys, opt);
    s.set_initial_state({1.0}, 0.0);
    s.advance_to(1e-4);
    EXPECT_GT(s.newton_iterations(), 0U);
    EXPECT_GT(s.factorizations(), 0U);
}

TEST(nonlinear_dae, newton_reuses_symbolic_factorization) {
    // Cubic damping: many Newton iterations over many timesteps, but the
    // Jacobian pattern is fixed, so the symbolic analysis runs only for the
    // first iteration while every iteration pays a numeric refactor.
    solver::equation_system sys;
    const std::size_t x = sys.add_unknown("x");
    sys.add_b(x, x, 1.0);
    sys.add_nonlinear([x](const std::vector<double>& xi, std::vector<double>& r,
                          std::vector<solver::jacobian_entry>& j) {
        r[x] += xi[x] * xi[x] * xi[x];
        j.push_back({x, x, 3.0 * xi[x] * xi[x]});
    });
    solver::nonlinear_options opt;
    opt.h_init = 1e-3;
    opt.h_max = 0.05;
    solver::nonlinear_dae_solver s(sys, opt);
    s.set_initial_state({1.0}, 0.0);
    s.advance_to(2.0);
    EXPECT_GT(s.factorizations(), 20U);
    EXPECT_EQ(s.symbolic_factorizations(), 1U);
}

// --------------------------------------------------------------- external --

TEST(external_rk4, harmonic_oscillator_period) {
    solver::rk4_solver rk;
    const double w = 2.0 * 3.141592653589793;
    rk.configure(2, 0, [w](double, const std::vector<double>& x,
                           const std::vector<double>&, std::vector<double>& dx) {
        dx[0] = x[1];
        dx[1] = -w * w * x[0];
    });
    rk.set_state({1.0, 0.0});
    const double dt = 1e-3;
    for (int i = 0; i < 1000; ++i) rk.advance(i * dt, dt, {});
    EXPECT_NEAR(rk.state()[0], 1.0, 1e-6);  // back after one period
    EXPECT_EQ(rk.rhs_evaluations(), 4000U);
}

TEST(external_rk4, substepping_respects_max_internal_step) {
    solver::rk4_solver rk(1e-4);
    rk.configure(1, 1, [](double, const std::vector<double>& x,
                          const std::vector<double>& u, std::vector<double>& dx) {
        dx[0] = u[0] - x[0];
    });
    rk.set_state({0.0});
    rk.advance(0.0, 1e-3, {1.0});  // 10 internal steps
    EXPECT_EQ(rk.rhs_evaluations(), 40U);
    EXPECT_NEAR(rk.state()[0], 1.0 - std::exp(-1e-3 / 1.0), 1e-6);
}

TEST(external_rk4, rejects_bad_usage) {
    solver::rk4_solver rk;
    EXPECT_THROW(rk.advance(0.0, 1e-3, {}), sca::util::error);
    rk.configure(1, 0, [](double, const std::vector<double>&, const std::vector<double>&,
                          std::vector<double>& dx) { dx[0] = 0.0; });
    EXPECT_THROW(rk.set_state({1.0, 2.0}), sca::util::error);
    EXPECT_THROW(rk.advance(0.0, -1.0, {}), sca::util::error);
}
