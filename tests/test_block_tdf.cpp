// Block-execution equivalence suite (`ctest -L block`): the block path must
// produce BIT-IDENTICAL waveforms to the per-sample path on every topology —
// seeded-random chains and fan-outs with rates 1..8 and delays 0..4,
// multirate up/down pipelines built from the DSP library, feedback loops,
// and batch caps chosen so block runs straddle ring-buffer wrap points.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <numeric>
#include <random>
#include <string>
#include <vector>

#include "kernel/context.hpp"
#include "lib/filters.hpp"
#include "lib/sigma_delta.hpp"
#include "tdf/block.hpp"
#include "tdf/cluster.hpp"
#include "tdf/module.hpp"
#include "tdf/port.hpp"

namespace de = sca::de;
namespace tdf = sca::tdf;
namespace lib = sca::lib;
using namespace sca::de::literals;

namespace {

// ------------------------------------------------------------ test modules
// Every module implements BOTH paths with the same floating-point operation
// order, so waveforms must match bit for bit (EXPECT_EQ, not NEAR).

/// Deterministic source: sample value is a pure function of the token index.
struct idx_source : tdf::module {
    tdf::out<double> out;
    std::uint64_t next = 0;
    de::time step{1.0, de::time_unit::us};

    idx_source(const de::module_name& nm, unsigned rate) : tdf::module(nm), out("out") {
        out.set_rate(rate);
    }
    static double value(std::uint64_t i) {
        return std::sin(1e-3 * static_cast<double>(i)) +
               1.0 / (1.0 + static_cast<double>(i));
    }
    void set_attributes() override { set_timestep(step); }
    void processing() override {
        for (unsigned k = 0; k < out.rate(); ++k) out.write(value(next++), k);
    }
    [[nodiscard]] bool has_block_processing() const override { return true; }
    void processing(tdf::block_view& blk) override {
        double* y = blk.out_span(out);
        const std::uint64_t tot = blk.count() * out.rate();
        for (std::uint64_t i = 0; i < tot; ++i) y[i] = value(next++);
    }
};

/// Stateful rate converter: reads `in.rate()` tokens, folds them into a
/// running state, emits `out.rate()` tokens.  The state makes any firing
/// reordering / sample loss visible in the waveform.
struct poly_stage : tdf::module {
    tdf::in<double> in;
    tdf::out<double> out;
    double state = 0.0;

    poly_stage(const de::module_name& nm, unsigned in_rate, unsigned out_rate)
        : tdf::module(nm), in("in"), out("out") {
        in.set_rate(in_rate);
        out.set_rate(out_rate);
    }
    void processing() override {
        double acc = 0.0;
        for (unsigned j = 0; j < in.rate(); ++j) {
            acc += static_cast<double>(j + 1) * in.read(j);
        }
        state = 0.5 * state + acc;
        for (unsigned k = 0; k < out.rate(); ++k) {
            out.write(state + static_cast<double>(k), k);
        }
    }
    [[nodiscard]] bool has_block_processing() const override { return true; }
    void processing(tdf::block_view& blk) override {
        const double* x = blk.in_span(in);
        double* y = blk.out_span(out);
        for (std::uint64_t f = 0; f < blk.count(); ++f) {
            const double* xf = x + f * in.rate();
            double acc = 0.0;
            for (unsigned j = 0; j < in.rate(); ++j) {
                acc += static_cast<double>(j + 1) * xf[j];
            }
            state = 0.5 * state + acc;
            double* yf = y + f * out.rate();
            for (unsigned k = 0; k < out.rate(); ++k) {
                yf[k] = state + static_cast<double>(k);
            }
        }
    }
};

/// Waveform capture sink (block-capable, so block runs are captured through
/// span reads and per-sample runs through read()).
struct collector : tdf::module {
    tdf::in<double> in;
    std::vector<double> samples;

    explicit collector(const de::module_name& nm, unsigned rate = 1)
        : tdf::module(nm), in("in") {
        in.set_rate(rate);
    }
    void processing() override {
        for (unsigned j = 0; j < in.rate(); ++j) samples.push_back(in.read(j));
    }
    [[nodiscard]] bool has_block_processing() const override { return true; }
    void processing(tdf::block_view& blk) override {
        const double* x = blk.in_span(in);
        samples.insert(samples.end(), x, x + blk.count() * in.rate());
    }
};

/// Two-input adder with a delayed feedback port: y = a + 0.5 fb.
struct fb_adder : tdf::module {
    tdf::in<double> a;
    tdf::in<double> fb;
    tdf::out<double> out;

    explicit fb_adder(const de::module_name& nm)
        : tdf::module(nm), a("a"), fb("fb"), out("out") {}
    void processing() override { out.write(a.read() + 0.5 * fb.read()); }
    [[nodiscard]] bool has_block_processing() const override { return true; }
    void processing(tdf::block_view& blk) override {
        const double* xa = blk.in_span(a);
        const double* xf = blk.in_span(fb);
        double* y = blk.out_span(out);
        for (std::uint64_t i = 0; i < blk.count(); ++i) y[i] = xa[i] + 0.5 * xf[i];
    }
};

// -------------------------------------------------------- topology harness

/// Owning random graph plus its capture points.
struct graph {
    // shared_ptr<void> erases the concrete type (de::module's dtor is
    // protected) while still destroying through the right type.
    std::vector<std::shared_ptr<void>> mods;
    std::vector<std::unique_ptr<tdf::signal<double>>> sigs;
    std::vector<collector*> sinks;

    tdf::signal<double>& wire(const std::string& nm) {
        sigs.push_back(std::make_unique<tdf::signal<double>>(nm));
        return *sigs.back();
    }
    template <typename M, typename... A>
    M& add(A&&... args) {
        auto m = std::make_shared<M>(std::forward<A>(args)...);
        M& ref = *m;
        mods.push_back(std::move(m));
        return ref;
    }
};

/// Derive exactly-divisible timing from the graph's repetition vector: the
/// cluster period is lcm(reps) picoseconds-ish, so every module timestep is
/// an integer femtosecond count.  Returns a run duration covering an odd,
/// non-power-of-two period count plus a fraction (forces fused-program
/// decomposition remainders and a final partial batch).
de::time setup_timing(idx_source& src, std::size_t n_mods,
                      const std::vector<tdf::rate_edge>& edges) {
    const auto reps = tdf::repetition_vector(n_mods, edges);
    std::uint64_t l = 1;
    for (const auto r : reps) l = std::lcm(l, r);
    const std::uint64_t period_fs = l * 1000;
    src.step = de::time::from_fs(static_cast<std::int64_t>(period_fs / reps[0]));
    const std::uint64_t per_period =
        std::accumulate(reps.begin(), reps.end(), std::uint64_t{0});
    const std::uint64_t n_periods =
        std::clamp<std::uint64_t>(150'000 / per_period, 5, 257) | 1U;
    return de::time::from_fs(
        static_cast<std::int64_t>(period_fs * n_periods + period_fs / 3));
}

/// Seeded random chain: src -> k poly stages -> sink, rates 1..8 on every
/// port, delay 0..4 on every stage input.
de::time build_chain(graph& g, std::mt19937& rng) {
    std::uniform_int_distribution<unsigned> rate(1, 8);
    std::uniform_int_distribution<unsigned> delay(0, 4);
    std::uniform_int_distribution<int> len(2, 5);

    auto& src = g.add<idx_source>(de::module_name("src"), rate(rng));
    std::vector<tdf::rate_edge> edges;
    unsigned prev_rate = src.out.rate();
    tdf::signal<double>* prev = &g.wire("w0");
    src.out.bind(*prev);
    const int n = len(rng);
    for (int i = 0; i < n; ++i) {
        auto& st = g.add<poly_stage>(
            de::module_name(("st" + std::to_string(i)).c_str()), rate(rng), rate(rng));
        st.in.set_delay(delay(rng));
        st.in.bind(*prev);
        edges.push_back({static_cast<std::size_t>(i), static_cast<std::size_t>(i) + 1,
                         prev_rate, st.in.rate()});
        prev_rate = st.out.rate();
        prev = &g.wire("w" + std::to_string(i + 1));
        st.out.bind(*prev);
    }
    auto& sink = g.add<collector>(de::module_name("sink"), rate(rng));
    sink.in.set_delay(delay(rng));
    sink.in.bind(*prev);
    edges.push_back({static_cast<std::size_t>(n), static_cast<std::size_t>(n) + 1,
                     prev_rate, sink.in.rate()});
    g.sinks.push_back(&sink);
    return setup_timing(src, static_cast<std::size_t>(n) + 2, edges);
}

/// Seeded random fan-out: one source feeding two independent branches.
de::time build_fanout(graph& g, std::mt19937& rng) {
    std::uniform_int_distribution<unsigned> rate(1, 8);
    std::uniform_int_distribution<unsigned> delay(0, 4);

    auto& src = g.add<idx_source>(de::module_name("src"), rate(rng));
    auto& trunk = g.wire("trunk");
    src.out.bind(trunk);
    std::vector<tdf::rate_edge> edges;
    for (std::size_t b = 0; b < 2; ++b) {
        auto& st = g.add<poly_stage>(
            de::module_name(("br" + std::to_string(b)).c_str()), rate(rng), rate(rng));
        st.in.set_delay(delay(rng));
        st.in.bind(trunk);
        auto& w = g.wire("bw" + std::to_string(b));
        st.out.bind(w);
        auto& sink =
            g.add<collector>(de::module_name(("sink" + std::to_string(b)).c_str()));
        sink.in.bind(w);
        g.sinks.push_back(&sink);
        // Module indices: src 0, branch stages 1/3, branch sinks 2/4.
        edges.push_back({0, 2 * b + 1, src.out.rate(), st.in.rate()});
        edges.push_back({2 * b + 1, 2 * b + 2, st.out.rate(), sink.in.rate()});
    }
    return setup_timing(src, 5, edges);
}

/// Run `build` under block or per-sample execution and return every sink's
/// full waveform.  `build` returns the run duration.
template <typename BuildFn>
std::vector<std::vector<double>> run_graph(BuildFn&& build, bool block,
                                           std::uint64_t max_batch) {
    de::simulation_context ctx;
    auto& reg = tdf::registry::of(ctx);
    reg.set_default_block_execution(block);
    reg.set_default_max_batch_periods(max_batch);
    graph g;
    const de::time dur = build(g);
    ctx.run(dur);
    std::vector<std::vector<double>> waves;
    waves.reserve(g.sinks.size());
    for (collector* c : g.sinks) waves.push_back(c->samples);
    return waves;
}

void expect_identical(const std::vector<std::vector<double>>& a,
                      const std::vector<std::vector<double>>& b,
                      const std::string& what) {
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::size_t s = 0; s < a.size(); ++s) {
        ASSERT_EQ(a[s].size(), b[s].size()) << what << " sink " << s;
        for (std::size_t i = 0; i < a[s].size(); ++i) {
            // Bit-identity: EXPECT_EQ on doubles, not NEAR.
            ASSERT_EQ(a[s][i], b[s][i])
                << what << " sink " << s << " sample " << i;
        }
    }
}

}  // namespace

// ----------------------------------------------------- randomized topologies

TEST(block_equivalence, seeded_random_chains) {
    for (std::uint32_t seed = 0; seed < 10; ++seed) {
        auto build = [&](graph& g) {
            std::mt19937 rng(seed);
            return build_chain(g, rng);
        };
        const auto base = run_graph(build, false, 64);
        const auto blk = run_graph(build, true, 64);
        ASSERT_FALSE(base.empty());
        ASSERT_FALSE(base[0].empty());
        expect_identical(base, blk, "chain seed " + std::to_string(seed));
    }
}

TEST(block_equivalence, seeded_random_fanout) {
    for (std::uint32_t seed = 100; seed < 106; ++seed) {
        auto build = [&](graph& g) {
            std::mt19937 rng(seed);
            return build_fanout(g, rng);
        };
        const auto base = run_graph(build, false, 64);
        const auto blk = run_graph(build, true, 64);
        expect_identical(base, blk, "fanout seed " + std::to_string(seed));
    }
}

TEST(block_equivalence, wrap_straddling_batch_caps) {
    // Odd batch caps vs the power-of-two fusion ladder force remainder
    // cycles and block runs that hit the ring-buffer wrap mid-run; every cap
    // must still reproduce the per-sample waveform exactly.
    auto build = [](graph& g) {
        std::mt19937 rng(42);
        return build_chain(g, rng);
    };
    const auto base = run_graph(build, false, 1);
    for (std::uint64_t cap : {1ULL, 2ULL, 3ULL, 5ULL, 7ULL, 13ULL, 64ULL}) {
        const auto blk = run_graph(build, true, cap);
        expect_identical(base, blk, "batch cap " + std::to_string(cap));
    }
}

// --------------------------------------------------------- library pipeline

TEST(block_equivalence, dsp_library_multirate_pipeline) {
    // src -> fir -> biquad -> interpolator 1:3 -> amplifier-ish gain via
    // poly -> decimator 4:1 -> sink: the real library kernels, multirate.
    auto build = [](graph& g) {
        auto& src = g.add<idx_source>(de::module_name("src"), 1U);
        src.step = 3_us;  // divisible by the 1:3 interpolation below
        auto& f = g.add<lib::fir>(de::module_name("fir"),
                                  lib::fir::design_lowpass(15, 0.2));
        auto& bq = g.add<lib::biquad>(de::module_name("bq"),
                                      lib::biquad_coefficients{0.2, 0.3, 0.1, -0.4, 0.05});
        auto& up = g.add<lib::interpolator>(de::module_name("up"), 3U);
        auto& down = g.add<lib::decimator>(de::module_name("down"), 4U);
        auto& sink = g.add<collector>(de::module_name("sink"));
        auto &w1 = g.wire("w1"), &w2 = g.wire("w2"), &w3 = g.wire("w3"),
             &w4 = g.wire("w4"), &w5 = g.wire("w5");
        src.out.bind(w1);
        f.in.bind(w1);
        f.out.bind(w2);
        bq.in.bind(w2);
        bq.out.bind(w3);
        up.in.bind(w3);
        up.out.bind(w4);
        down.in.bind(w4);
        down.out.bind(w5);
        sink.in.bind(w5);
        g.sinks.push_back(&sink);
        return de::time(2000.0, de::time_unit::us);
    };
    const auto base = run_graph(build, false, 64);
    const auto blk = run_graph(build, true, 64);
    ASSERT_GT(base[0].size(), 100U);
    expect_identical(base, blk, "dsp pipeline");
}

TEST(block_equivalence, sigma_delta_adc_composite) {
    auto build = [](graph& g) {
        auto& src = g.add<idx_source>(de::module_name("src"), 1U);
        auto& adc = g.add<lib::sigma_delta_adc>(de::module_name("adc"), 2U, 1.0, 16U);
        auto& sink = g.add<collector>(de::module_name("sink"));
        auto &w1 = g.wire("w1"), &w2 = g.wire("w2");
        src.out.bind(w1);
        adc.in.bind(w1);
        adc.out.bind(w2);
        sink.in.bind(w2);
        g.sinks.push_back(&sink);
        return de::time(3000.0, de::time_unit::us);
    };
    const auto base = run_graph(build, false, 64);
    const auto blk = run_graph(build, true, 64);
    ASSERT_GT(base[0].size(), 100U);
    expect_identical(base, blk, "sigma-delta adc");
}

// --------------------------------------------------------------- feedback

TEST(block_equivalence, delayed_feedback_loop) {
    // src -> (+) -> out, out fed back through a 1-token delay: fusion must
    // keep the legal alternation inside the super-cycle.
    auto build = [](graph& g) {
        auto& src = g.add<idx_source>(de::module_name("src"), 1U);
        auto& add = g.add<fb_adder>(de::module_name("add"));
        auto& sink = g.add<collector>(de::module_name("sink"));
        auto &w1 = g.wire("w1"), &w2 = g.wire("w2");
        src.out.bind(w1);
        add.a.bind(w1);
        add.fb.set_delay(1);
        add.fb.bind(w2);
        add.out.bind(w2);
        sink.in.bind(w2);
        g.sinks.push_back(&sink);
        return de::time(733.0, de::time_unit::us);
    };
    const auto base = run_graph(build, false, 64);
    const auto blk = run_graph(build, true, 64);
    ASSERT_GT(base[0].size(), 700U);
    expect_identical(base, blk, "feedback loop");
}

// ------------------------------------------------------------- diagnostics

TEST(block_execution, counters_report_block_calls) {
    de::simulation_context ctx;
    auto& reg = tdf::registry::of(ctx);
    reg.set_default_block_execution(true);
    idx_source src(de::module_name("src"), 1U);
    poly_stage st(de::module_name("st"), 1U, 1U);
    collector sink(de::module_name("sink"));
    tdf::signal<double> w1("w1"), w2("w2");
    src.out.bind(w1);
    st.in.bind(w1);
    st.out.bind(w2);
    sink.in.bind(w2);
    ctx.run(1000_us);

    // Fused programs collapsed many firings into few block calls.
    EXPECT_GT(st.block_firing_count(), 0U);
    EXPECT_GT(st.block_call_count(), 0U);
    EXPECT_LT(st.block_call_count(), st.block_firing_count());
    EXPECT_EQ(st.activation_count(), 1001U);

    const auto& cl = *reg.clusters().at(0);
    EXPECT_TRUE(cl.block_execution());
    EXPECT_FALSE(cl.fused_programs().empty());
    EXPECT_GT(cl.fused_cycle_count(), 0U);
}

TEST(block_execution, disabled_means_no_block_calls) {
    de::simulation_context ctx;
    tdf::registry::of(ctx).set_default_block_execution(false);
    idx_source src(de::module_name("src"), 1U);
    collector sink(de::module_name("sink"));
    tdf::signal<double> w("w");
    src.out.bind(w);
    sink.in.bind(w);
    ctx.run(100_us);
    EXPECT_EQ(src.block_call_count(), 0U);
    EXPECT_EQ(sink.block_call_count(), 0U);
    EXPECT_EQ(src.activation_count(), 101U);
}

// ------------------------------------------- ring-buffer span arithmetic ----
// Audit regressions for the contiguity machinery: ring offsets, wrap-point
// splitting, the per-sample wrap fallback, and the fused-ladder capacity
// guard.

TEST(block_spans, wrap_exactly_at_batch_boundary) {
    // Buffers are sized for the LARGEST fused program, so executing it
    // consumes exactly the ring capacity: every super-cycle ends with the
    // write/read offsets back at zero (wrap exactly at the block boundary,
    // never inside a span).  No firing should need the per-sample fallback.
    de::simulation_context ctx;
    auto& reg = tdf::registry::of(ctx);
    reg.set_default_block_execution(true);
    reg.set_default_max_batch_periods(8);
    idx_source src(de::module_name("src"), 1U);
    collector sink(de::module_name("sink"));
    tdf::signal<double> w("w");
    src.out.bind(w);
    sink.in.bind(w);
    ctx.run(1600_us);  // 1601 periods: many full 8-period super-cycles

    // Zero wrap-straddle fallbacks: every firing went through a block call.
    EXPECT_EQ(src.block_firing_count(), src.activation_count());
    EXPECT_EQ(sink.block_firing_count(), sink.activation_count());
    EXPECT_EQ(src.activation_count(), 1601U);
    for (std::size_t i = 0; i < sink.samples.size(); ++i) {
        ASSERT_EQ(sink.samples[i], idx_source::value(i)) << "sample " << i;
    }
}

TEST(block_spans, misaligned_delay_takes_wrap_fallback_and_stays_exact) {
    // A delayed rate-3 reader walks its ring offset through 2, 5, 8, ... so
    // some reads straddle the wrap point: those firings must fall back to
    // per-sample execution (block_firing_count < activation_count) and the
    // waveform must still match the per-sample baseline bit for bit.
    auto build = [](graph& g) {
        auto& src = g.add<idx_source>(de::module_name("src"), 1U);
        auto& sink = g.add<collector>(de::module_name("sink"), 3U);
        sink.in.set_delay(1);
        auto& w = g.wire("w");
        src.out.bind(w);
        sink.in.bind(w);
        g.sinks.push_back(&sink);
        return de::time(1200.0, de::time_unit::us);
    };
    const auto base = run_graph(build, false, 8);
    const auto blk = run_graph(build, true, 8);
    expect_identical(base, blk, "misaligned delayed reader");

    // Confirm the fallback actually triggered in block mode.
    de::simulation_context ctx;
    auto& reg = tdf::registry::of(ctx);
    reg.set_default_block_execution(true);
    reg.set_default_max_batch_periods(8);
    idx_source src(de::module_name("src"), 1U);
    collector sink(de::module_name("sink"), 3U);
    sink.in.set_delay(1);
    tdf::signal<double> w("w");
    src.out.bind(w);
    sink.in.bind(w);
    ctx.run(1200_us);
    EXPECT_GT(sink.block_firing_count(), 0U);
    EXPECT_LT(sink.block_firing_count(), sink.activation_count());
}

TEST(block_spans, fused_ladder_respects_capacity_guard) {
    // 9000 tokens per period on the inner wire: the power-of-two ladder must
    // stop before any signal needs more than 2^16 tokens (9000*8 > 65536),
    // so the largest fused program is at most 4 periods despite max_batch 64.
    de::simulation_context ctx;
    auto& reg = tdf::registry::of(ctx);
    reg.set_default_block_execution(true);
    reg.set_default_max_batch_periods(64);
    idx_source src(de::module_name("src"), 8U);
    poly_stage widen(de::module_name("widen"), 8U, 7U);  // tokens/cycle: lcm-ish
    collector sink(de::module_name("sink"), 7U);
    tdf::signal<double> w1("w1"), w2("w2");
    src.out.bind(w1);
    widen.in.bind(w1);
    widen.out.bind(w2);
    sink.in.bind(w2);
    ctx.run(4000_us);

    const auto& cl = *reg.clusters().at(0);
    for (const auto& fp : cl.fused_programs()) {
        EXPECT_LE(fp.periods, 64U);
    }
    ASSERT_FALSE(sink.samples.empty());
    // And the stream is still exact.
    std::uint64_t produced = src.next;
    EXPECT_EQ(produced, src.activation_count() * 8U);
}

TEST(block_spans, prefilled_delay_slots_read_initial_value) {
    // A reader with delay d sees d initial-value tokens before the first
    // produced one; the block path maps those negative stream indices onto
    // the prefilled ring slots, so the waveform must start with EXACTLY d
    // copies of the initial value in both modes.
    for (unsigned d = 0; d <= 4; ++d) {
        auto build = [d](graph& g) {
            auto& src = g.add<idx_source>(de::module_name("src"), 1U);
            auto& sink = g.add<collector>(de::module_name("sink"), 1U);
            sink.in.set_delay(d);
            auto& w = g.wire("w");
            src.out.bind(w);
            sink.in.bind(w);
            g.sinks.push_back(&sink);
            return de::time(500.0, de::time_unit::us);
        };
        const auto base = run_graph(build, false, 64);
        const auto blk = run_graph(build, true, 64);
        expect_identical(base, blk, "delay " + std::to_string(d));
        for (unsigned i = 0; i < d; ++i) {
            ASSERT_EQ(blk[0][i], 0.0) << "delay " << d << " prefill token " << i;
        }
        ASSERT_EQ(blk[0][d], idx_source::value(0)) << "delay " << d;
    }
}
