// Tests for the PLL block (phase-2 RF library) and the lumped line
// macromodels (Figure 1 subscriber line).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/ac_analysis.hpp"
#include "core/simulation.hpp"
#include "core/transient.hpp"
#include "eln/line.hpp"
#include "eln/network.hpp"
#include "eln/primitives.hpp"
#include "eln/sources.hpp"
#include "lib/oscillator.hpp"
#include "lib/pll.hpp"
#include "tdf/port.hpp"
#include "util/measure.hpp"
#include "util/object_bag.hpp"

namespace de = sca::de;
namespace tdf = sca::tdf;
namespace eln = sca::eln;
namespace lib = sca::lib;
namespace core = sca::core;
using namespace sca::de::literals;

namespace {

struct recorder : tdf::module {
    tdf::in<double> in;
    std::vector<double> samples;
    explicit recorder(const de::module_name& nm) : tdf::module(nm), in("in") {}
    void processing() override { samples.push_back(in.read()); }
};

struct sink : tdf::module {
    tdf::in<double> in;
    explicit sink(const de::module_name& nm) : tdf::module(nm), in("in") {}
    void processing() override { (void)in.read(); }
};

}  // namespace

TEST(pll, locks_to_offset_reference) {
    core::simulation sim;
    const double f_ref = 10.2e3;
    const double f0 = 10e3;
    const double kv = 2e3;  // Hz/V
    lib::sine_source ref("ref", 1.0, f_ref);
    ref.set_timestep(2.0, de::time_unit::us);  // fs = 500 kHz
    lib::pll loop("loop", f0, kv, 1000.0);
    recorder ctl("ctl");
    sink vco_sink("vco_sink");
    tdf::signal<double> s_ref("s_ref"), s_out("s_out"), s_ctl("s_ctl");
    ref.out.bind(s_ref);
    loop.ref.bind(s_ref);
    loop.out.bind(s_out);
    loop.control.bind(s_ctl);
    vco_sink.in.bind(s_out);
    ctl.in.bind(s_ctl);

    sim.run(300_ms);
    // Locked: the mean control voltage carries the frequency offset (the
    // instantaneous value ripples at 2x the carrier through the PD).
    std::vector<double> tail(ctl.samples.end() - 5000, ctl.samples.end());
    const double vctrl = sca::util::mean(tail);
    EXPECT_NEAR(f0 + kv * vctrl, f_ref, 25.0);
    EXPECT_NEAR(vctrl, (f_ref - f0) / kv, 0.02);
}

TEST(pll, free_runs_at_f0_without_input) {
    core::simulation sim;
    lib::waveform_source zero("zero", sca::util::waveform::dc(0.0));
    zero.set_timestep(2.0, de::time_unit::us);
    lib::pll loop("loop", 10e3, 2e3, 500.0);
    sink s1("s1"), s2("s2");
    tdf::signal<double> s_ref("s_ref"), s_out("s_out"), s_ctl("s_ctl");
    zero.out.bind(s_ref);
    loop.ref.bind(s_ref);
    loop.out.bind(s_out);
    loop.control.bind(s_ctl);
    s1.in.bind(s_out);
    s2.in.bind(s_ctl);
    sim.run(50_ms);
    EXPECT_NEAR(loop.vco_frequency(), 10e3, 1.0);
}

TEST(pll, rejects_insufficient_sample_rate) {
    core::simulation sim;
    lib::waveform_source zero("zero", sca::util::waveform::dc(0.0));
    zero.set_timestep(100.0, de::time_unit::us);  // fs = 10 kHz < 2.5 f0
    lib::pll loop("loop", 10e3, 1e3, 100.0);
    sink s1("s1"), s2("s2");
    tdf::signal<double> s_ref("s_ref"), s_out("s_out"), s_ctl("s_ctl");
    zero.out.bind(s_ref);
    loop.ref.bind(s_ref);
    loop.out.bind(s_out);
    loop.control.bind(s_ctl);
    s1.in.bind(s_out);
    s2.in.bind(s_ctl);
    EXPECT_THROW(sim.elaborate(), sca::util::error);
}

TEST(rc_line, dc_resistance_and_delay_scale_with_length) {
    core::simulation sim;
    eln::network net("net");
    net.set_timestep(10.0, de::time_unit::ns);
    auto gnd = net.ground();
    auto a = net.create_node("a");
    auto b = net.create_node("b");
    eln::vsource vs("vs", net, a, gnd,
                    eln::waveform::pulse(0.0, 1.0, 100e-9, 1e-9, 1e-9, 1.0, 2.0));
    eln::rc_line line("line", net, a, b, gnd, 1000.0, 1e-9, 16);
    eln::resistor load("load", net, b, gnd, 1e6);

    sim.run(50_us);  // >> line tau: settled
    // DC: divider of the line resistance against the load.
    EXPECT_NEAR(net.voltage(b), 1e6 / (1e6 + 1000.0), 1e-6);
}

TEST(rc_line, elmore_delay_matches_theory) {
    // Elmore delay of a distributed RC line is ~0.5 R C; the lumped ladder
    // should land near it (within discretization error).
    core::simulation sim;
    eln::network net("net");
    net.set_timestep(5.0, de::time_unit::ns);
    auto gnd = net.ground();
    auto a = net.create_node("a");
    auto b = net.create_node("b");
    const double r = 10e3, c = 10e-9;  // RC = 100 us
    eln::vsource vs("vs", net, a, gnd,
                    eln::waveform::pulse(0.0, 1.0, 1e-6, 1e-9, 1e-9, 10.0, 20.0));
    eln::rc_line line("line", net, a, b, gnd, r, c, 32);
    eln::resistor load("load", net, b, gnd, 1e9);

    core::transient_recorder rec(sim, 500_ns);
    rec.add_probe("vb", [&] { return net.voltage(b); });
    rec.run(400_us);
    const double t50 = sca::util::first_rising_crossing(
        rec.times(), rec.column(0), 0.5);
    // 50% crossing of a distributed RC step is ~0.38 RC after the edge.
    EXPECT_NEAR(t50 - 1e-6, 0.38 * r * c, 0.08 * r * c);
}

TEST(rc_line, internal_nodes_are_probeable) {
    core::simulation sim;
    sca::util::object_bag bag;
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto a = net.create_node("a");
    auto b = net.create_node("b");
    bag.make<eln::vsource>("vs", net, a, gnd, eln::waveform::dc(4.0));
    auto& line = bag.make<eln::rc_line>("line", net, a, b, gnd, 1000.0, 1e-9, 4);
    bag.make<eln::resistor>("load", net, b, gnd, 1000.0);
    sim.run(20_us);
    // Voltage decreases monotonically along the ladder toward the load.
    double prev = net.voltage(a);
    for (std::size_t i = 0; i + 1 < line.sections(); ++i) {
        const double v = net.voltage(line.internal(i));
        EXPECT_LT(v, prev);
        prev = v;
    }
    EXPECT_LT(net.voltage(b), prev);
    EXPECT_NEAR(net.voltage(b), 2.0, 1e-6);  // 1k line vs 1k load divider
}

TEST(rlgc_line, matched_termination_passes_ac_flatly) {
    // A lossless LC line terminated in its characteristic impedance shows a
    // flat magnitude response well below the section cutoff.
    core::simulation sim;
    sca::util::object_bag bag;
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto a = net.create_node("a");
    auto b = net.create_node("b");
    const double l = 1e-3, c = 1e-9;  // Z0 = 1 kohm
    const double z0 = std::sqrt(l / c);
    auto& vs = bag.make<eln::vsource>("vs", net, a, gnd, eln::waveform::dc(0.0));
    vs.set_ac(1.0);
    bag.make<eln::rlgc_line>("line", net, a, b, gnd, 0.0, l, 0.0, c, 16);
    bag.make<eln::resistor>("term", net, b, gnd, z0);
    sim.elaborate();

    core::ac_analysis ac(net);
    // Section resonance ~ 1/(2 pi sqrt(l/n * c/n)) = n/(2 pi sqrt(lc)) ≈ 2.5 MHz.
    const auto low = std::abs(ac.sweep(b.index(), {1e3, 1e3, 1})[0].value);
    const auto mid = std::abs(ac.sweep(b.index(), {50e3, 50e3, 1})[0].value);
    EXPECT_NEAR(low, mid, 0.05 * low);  // flat passband
    EXPECT_GT(low, 0.5);                // matched line delivers the signal
}
