// Conservative-law (ELN) view tests: MNA stamps, analytic transients,
// controlled sources, transformer, switches, probes.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/simulation.hpp"
#include "core/transient.hpp"
#include "eln/converter.hpp"
#include "eln/network.hpp"
#include "eln/primitives.hpp"
#include "eln/sources.hpp"
#include "util/report.hpp"

#include "../bench/bench_util.hpp"  // shared switched_buck netlist

namespace de = sca::de;
namespace eln = sca::eln;
namespace core = sca::core;
using namespace sca::de::literals;

TEST(eln, resistive_divider_dc) {
    core::simulation sim;
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto vin = net.create_node("vin");
    auto vout = net.create_node("vout");
    eln::vsource vs("vs", net, vin, gnd, eln::waveform::dc(9.0));
    eln::resistor r1("r1", net, vin, vout, 2000.0);
    eln::resistor r2("r2", net, vout, gnd, 1000.0);

    sim.run(10_us);
    EXPECT_NEAR(net.voltage(vout), 3.0, 1e-9);
    EXPECT_NEAR(net.voltage(vin), 9.0, 1e-9);
    // Source current: v/r_total, flowing out of the source branch.
    EXPECT_NEAR(net.current(vs), -9.0 / 3000.0, 1e-9);
}

TEST(eln, rc_step_response_matches_analytic) {
    core::simulation sim;
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto vin = net.create_node("vin");
    auto vout = net.create_node("vout");
    const double r = 1000.0, c = 100e-9;  // tau = 100 us
    eln::vsource vs("vs", net, vin, gnd, eln::waveform::dc(1.0));
    eln::resistor res("r", net, vin, vout, r);
    eln::capacitor cap("c", net, vout, gnd, c);

    core::transient_recorder rec(sim, 10_us);
    rec.add_probe("vout", [&] { return net.voltage(vout); });
    rec.run(500_us);

    // DC init puts the capacitor at the source level immediately (quiescent
    // state), so drive with a sine to see dynamics instead... here: the DC
    // solve of a constant source charges the cap fully: expect flat 1.0.
    const auto v = rec.column(0);
    EXPECT_NEAR(v.back(), 1.0, 1e-9);
}

TEST(eln, rc_pulse_charging_curve) {
    core::simulation sim;
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto vin = net.create_node("vin");
    auto vout = net.create_node("vout");
    const double r = 1000.0, c = 100e-9;  // tau = 100 us
    // Pulse starts after 10 us so the DC init sees 0 V.
    eln::vsource vs("vs", net, vin, gnd,
                    eln::waveform::pulse(0.0, 1.0, 10e-6, 1e-9, 1e-9, 1.0, 2.0));
    eln::resistor res("r", net, vin, vout, r);
    eln::capacitor cap("c", net, vout, gnd, c);

    sim.run(10_us);  // reach pulse start
    sim.run(100_us);  // one tau into the pulse
    const double tau = r * c;
    EXPECT_NEAR(net.voltage(vout), 1.0 - std::exp(-100e-6 / tau), 5e-3);
    sim.run(400_us);
    EXPECT_NEAR(net.voltage(vout), 1.0 - std::exp(-500e-6 / tau), 5e-3);
}

TEST(eln, rl_current_rise) {
    core::simulation sim;
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto vin = net.create_node("vin");
    auto mid = net.create_node("mid");
    const double r = 100.0, l = 10e-3;  // tau = L/R = 100 us
    eln::vsource vs("vs", net, vin, gnd,
                    eln::waveform::pulse(0.0, 1.0, 10e-6, 1e-9, 1e-9, 1.0, 2.0));
    eln::resistor res("r", net, vin, mid, r);
    eln::inductor ind("l", net, mid, gnd, l);

    sim.run(110_us);  // 100 us after the step
    const double i_inf = 1.0 / r;
    EXPECT_NEAR(net.current(ind), i_inf * (1.0 - std::exp(-1.0)), 2e-4);
}

TEST(eln, rlc_underdamped_oscillation_frequency) {
    core::simulation sim;
    eln::network net("net");
    net.set_timestep(100.0, de::time_unit::ns);
    auto gnd = net.ground();
    auto n1 = net.create_node("n1");
    auto n2 = net.create_node("n2");
    auto n3 = net.create_node("n3");
    const double r = 10.0, l = 1e-3, c = 1e-6;  // f0 ~ 5.03 kHz, zeta ~ 0.16
    eln::vsource vs("vs", net, n1, gnd,
                    eln::waveform::pulse(0.0, 1.0, 5e-6, 1e-9, 1e-9, 1.0, 2.0));
    eln::resistor res("r", net, n1, n2, r);
    eln::inductor ind("l", net, n2, n3, l);
    eln::capacitor cap("c", net, n3, gnd, c);

    core::transient_recorder rec(sim, 1_us);
    rec.add_probe("v", [&] { return net.voltage(n3); });
    rec.run(2_ms);

    // Underdamped series RLC: the capacitor voltage overshoots the step and
    // rings down to the source level.
    const auto v = rec.column(0);
    double vmax = 0.0;
    for (double x : v) vmax = std::max(vmax, x);
    EXPECT_GT(vmax, 1.2);
    EXPECT_NEAR(v.back(), 1.0, 0.05);  // settled at the (still high) pulse level
}

TEST(eln, vcvs_gain) {
    core::simulation sim;
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto a = net.create_node("a");
    auto b = net.create_node("b");
    eln::vsource vs("vs", net, a, gnd, eln::waveform::dc(0.5));
    eln::vcvs amp("amp", net, a, gnd, b, gnd, 10.0);
    eln::resistor load("load", net, b, gnd, 1000.0);
    sim.run(2_us);
    EXPECT_NEAR(net.voltage(b), 5.0, 1e-9);
}

TEST(eln, vccs_transconductance) {
    core::simulation sim;
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto a = net.create_node("a");
    auto b = net.create_node("b");
    eln::vsource vs("vs", net, a, gnd, eln::waveform::dc(1.0));
    // i = gm*v(a) flows from gnd -> b inside the source: injects into b.
    eln::vccs gm("gm", net, a, gnd, gnd, b, 1e-3);
    eln::resistor load("load", net, b, gnd, 2000.0);
    sim.run(2_us);
    EXPECT_NEAR(net.voltage(b), 2.0, 1e-9);
}

TEST(eln, cccs_current_mirror) {
    core::simulation sim;
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto a = net.create_node("a");
    auto b = net.create_node("b");
    eln::vsource vs("vs", net, a, gnd, eln::waveform::dc(1.0));
    eln::resistor rin("rin", net, a, gnd, 1000.0);  // source current = -1 mA
    // Mirror the source branch current into node b (beta = 2).
    eln::cccs mirror("mirror", net, vs, gnd, b, 2.0);
    eln::resistor load("load", net, b, gnd, 500.0);
    sim.run(2_us);
    // i_vs = -1 mA (flows a->gnd through external R); mirrored current
    // 2*i_vs from gnd to b: v(b) = -2 mA * 500 = ... sign follows stamp.
    EXPECT_NEAR(std::abs(net.voltage(b)), 1.0, 1e-9);
}

TEST(eln, ccvs_transresistance) {
    core::simulation sim;
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto a = net.create_node("a");
    auto b = net.create_node("b");
    eln::vsource vs("vs", net, a, gnd, eln::waveform::dc(1.0));
    eln::resistor rin("rin", net, a, gnd, 1000.0);
    eln::ccvs rm("rm", net, vs, b, gnd, 5000.0);
    eln::resistor load("load", net, b, gnd, 1000.0);
    sim.run(2_us);
    EXPECT_NEAR(std::abs(net.voltage(b)), 5.0, 1e-9);
}

TEST(eln, ideal_transformer_ratio) {
    core::simulation sim;
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto p = net.create_node("p");
    auto s = net.create_node("s");
    eln::vsource vs("vs", net, p, gnd, eln::waveform::dc(10.0));
    eln::ideal_transformer tr("tr", net, p, gnd, s, gnd, 5.0);  // v1/v2 = 5
    eln::resistor load("load", net, s, gnd, 100.0);
    sim.run(2_us);
    EXPECT_NEAR(net.voltage(s), 2.0, 1e-9);
    // Power balance: p_in = v1*i1 = v2*i2 = 2^2/100 = 40 mW.
    EXPECT_NEAR(std::abs(net.current(tr)) * 10.0, 0.04, 1e-6);
}

TEST(eln, ammeter_reads_branch_current) {
    core::simulation sim;
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto a = net.create_node("a");
    auto b = net.create_node("b");
    eln::vsource vs("vs", net, a, gnd, eln::waveform::dc(5.0));
    eln::ammeter am("am", net, a, b);
    eln::resistor r("r", net, b, gnd, 1000.0);
    sim.run(2_us);
    EXPECT_NEAR(net.current(am), 5e-3, 1e-9);
    EXPECT_NEAR(net.voltage(a, b), 0.0, 1e-12);
}

TEST(eln, switch_changes_divider) {
    core::simulation sim;
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto a = net.create_node("a");
    auto b = net.create_node("b");
    eln::vsource vs("vs", net, a, gnd, eln::waveform::dc(10.0));
    eln::resistor r1("r1", net, a, b, 1000.0);
    eln::resistor r2("r2", net, b, gnd, 1000.0);
    eln::rswitch sw("sw", net, b, gnd, 1.0, 1e12, /*closed=*/false);

    sim.run(2_us);
    EXPECT_NEAR(net.voltage(b), 5.0, 1e-3);
    sw.set_state(true);  // closes: b pulled to ground through 1 ohm
    sim.run(2_us);
    EXPECT_NEAR(net.voltage(b), 10.0 / 1001.0, 1e-3);
}

TEST(eln, de_switch_samples_control_signal) {
    core::simulation sim;
    de::signal<bool> ctl("ctl", false);
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto a = net.create_node("a");
    eln::isource is("is", net, gnd, a, eln::waveform::dc(1e-3));
    eln::resistor r1("r1", net, a, gnd, 1000.0);
    eln::de_rswitch sw("sw", net, a, gnd, 1.0, 1e12);
    sw.ctrl.bind(ctl);

    sim.run(2_us);
    EXPECT_NEAR(net.voltage(a), 1.0, 1e-3);
    // Toggle from the DE side; the network resamples at its next activation.
    ctl.write(true);
    sim.run(3_us);
    EXPECT_LT(net.voltage(a), 0.01);
}

TEST(eln, switch_toggles_are_numeric_refactors_only) {
    // A PWM-style DE-controlled switch: after elaboration every toggle is a
    // values-only slot update, so the symbolic analysis runs exactly once
    // while the numeric factor count tracks the toggles.
    core::simulation sim;
    de::signal<bool> ctl("ctl", false);
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto a = net.create_node("a");
    auto b = net.create_node("b");
    eln::isource is("is", net, gnd, a, eln::waveform::dc(1e-3));
    eln::resistor r1("r1", net, a, b, 100.0);
    eln::capacitor c1("c1", net, b, gnd, 1e-6);
    eln::de_rswitch sw("sw", net, b, gnd, 1.0, 1e9);
    sw.ctrl.bind(ctl);

    sim.run(3_us);
    const auto factors_before = net.factorizations();
    EXPECT_EQ(net.symbolic_factorizations(), 1U);

    for (int i = 0; i < 8; ++i) {
        ctl.write(i % 2 == 0);
        sim.run(2_us);
    }
    // Toggles refactored (numeric) but never re-ran the symbolic phase.
    EXPECT_GT(net.factorizations(), factors_before);
    EXPECT_EQ(net.symbolic_factorizations(), 1U);
}

TEST(eln, set_value_is_numeric_refactor_only) {
    core::simulation sim;
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto a = net.create_node("a");
    eln::isource is("is", net, gnd, a, eln::waveform::dc(1e-3));
    eln::resistor r1("r1", net, a, gnd, 1000.0);

    sim.run(2_us);
    EXPECT_NEAR(net.voltage(a), 1.0, 1e-9);
    EXPECT_EQ(net.symbolic_factorizations(), 1U);
    r1.set_value(2000.0);
    sim.run(2_us);
    EXPECT_NEAR(net.voltage(a), 2.0, 1e-6);
    EXPECT_EQ(net.symbolic_factorizations(), 1U);
}

namespace {

/// Switched RC transient sampled every step; `incremental` selects the
/// values-only pipeline or the rebuild-the-world baseline.
std::vector<double> switched_rc_waveform(bool incremental) {
    core::simulation sim;
    de::signal<bool> ctl("ctl", false);
    eln::network net("net");
    net.set_incremental_updates(incremental);
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto a = net.create_node("a");
    auto b = net.create_node("b");
    eln::vsource vs("vs", net, a, gnd, eln::waveform::dc(5.0));
    eln::resistor r1("r1", net, a, b, 1000.0);
    eln::capacitor c1("c1", net, b, gnd, 100e-9);
    eln::de_rswitch sw("sw", net, b, gnd, 50.0, 1e9);
    sw.ctrl.bind(ctl);

    std::vector<double> samples;
    sca::core::transient_recorder rec(sim, 1_us);
    rec.add_probe("vb", [&] { return net.voltage(b); });
    for (int seg = 0; seg < 10; ++seg) {
        ctl.write(seg % 2 == 0);
        rec.run(25_us);
    }
    return rec.column(0);
}

/// The bench_switching_restamp buck converter — the identical netlist, via
/// the shared bench_util::switched_buck builder (source ESR + input
/// decoupling keep the pivot order value-stable across switch states).
std::vector<double> buck_waveform(bool incremental) {
    core::simulation sim;
    de::signal<bool> gate("gate", false);
    bench_util::switched_buck buck;
    buck.net->set_incremental_updates(incremental);
    buck.hi_side->ctrl.bind(gate);

    sca::core::transient_recorder rec(sim, 1_us);
    rec.add_probe("vout", [&] { return buck.net->voltage(buck.vout_node); });
    for (int seg = 0; seg < 20; ++seg) {
        gate.write(seg % 2 == 0);  // 50 kHz PWM edges
        rec.run(10_us);
    }
    return rec.column(0);
}

void expect_bit_identical(const std::vector<double>& inc,
                          const std::vector<double>& full) {
    ASSERT_EQ(inc.size(), full.size());
    ASSERT_GT(inc.size(), 100U);
    for (std::size_t i = 0; i < inc.size(); ++i) {
        ASSERT_EQ(inc[i], full[i]) << "diverged at sample " << i;
    }
}

}  // namespace

TEST(eln, incremental_restamp_is_bit_identical_to_full_restamp) {
    expect_bit_identical(switched_rc_waveform(true), switched_rc_waveform(false));
}

TEST(eln, buck_converter_is_bit_identical_to_full_restamp) {
    expect_bit_identical(buck_waveform(true), buck_waveform(false));
}

TEST(eln, nature_mismatch_is_rejected) {
    core::simulation sim;
    eln::network net("net");
    auto shaft = net.create_node("shaft", eln::nature::mechanical_rotational);
    auto gnd = net.ground();
    (void)gnd;
    EXPECT_THROW(
        eln::network::check_nature(shaft, eln::nature::electrical, "test"),
        sca::util::error);
}

TEST(eln, voltage_probe_before_run_returns_zero) {
    core::simulation sim;
    eln::network net("net");
    auto n = net.create_node("n");
    EXPECT_DOUBLE_EQ(net.voltage(n), 0.0);
}

TEST(eln, component_without_branch_errors_on_current_probe) {
    core::simulation sim;
    eln::network net("net");
    auto gnd = net.ground();
    auto a = net.create_node("a");
    eln::resistor r("r", net, a, gnd, 1.0);
    EXPECT_THROW((void)net.current(r), sca::util::error);
}
