// TDF MoC tests: repetition vectors, static scheduling, multirate buffers,
// delays, timestep propagation, deadlock detection.
#include <gtest/gtest.h>

#include <vector>

#include "kernel/context.hpp"
#include "tdf/cluster.hpp"
#include "tdf/module.hpp"
#include "tdf/port.hpp"
#include "tdf/schedule.hpp"
#include "util/report.hpp"

namespace de = sca::de;
namespace tdf = sca::tdf;
using namespace sca::de::literals;

// ------------------------------------------------------- repetition vectors

TEST(repetition_vector, uniform_chain_is_all_ones) {
    const std::vector<tdf::rate_edge> edges{{0, 1, 1, 1}, {1, 2, 1, 1}};
    const auto reps = tdf::repetition_vector(3, edges);
    EXPECT_EQ(reps, (std::vector<std::uint64_t>{1, 1, 1}));
}

TEST(repetition_vector, multirate_balances) {
    // A -2:3-> B : 3 firings of A produce 6 tokens = 2 firings of B.
    const std::vector<tdf::rate_edge> edges{{0, 1, 2, 3}};
    const auto reps = tdf::repetition_vector(2, edges);
    EXPECT_EQ(reps, (std::vector<std::uint64_t>{3, 2}));
}

TEST(repetition_vector, chain_of_ratios) {
    // A -1:2-> B -1:2-> C : A 4x, B 2x, C 1x.
    const std::vector<tdf::rate_edge> edges{{0, 1, 1, 2}, {1, 2, 1, 2}};
    const auto reps = tdf::repetition_vector(3, edges);
    EXPECT_EQ(reps, (std::vector<std::uint64_t>{4, 2, 1}));
}

TEST(repetition_vector, disconnected_modules_get_one) {
    const auto reps = tdf::repetition_vector(2, {});
    EXPECT_EQ(reps, (std::vector<std::uint64_t>{1, 1}));
}

TEST(repetition_vector, inconsistent_rates_throw) {
    // Cycle A->B->A with mismatched products has no finite schedule.
    const std::vector<tdf::rate_edge> edges{{0, 1, 2, 1}, {1, 0, 1, 1}};
    EXPECT_THROW((void)tdf::repetition_vector(2, edges), sca::util::error);
}

// ----------------------------------------------------------- module helpers

namespace {

struct ramp_source : tdf::module {
    tdf::out<double> out;
    double next_value = 0.0;

    explicit ramp_source(const de::module_name& nm) : tdf::module(nm), out("out") {}
    void set_attributes() override { set_timestep(1.0, de::time_unit::us); }
    void processing() override {
        for (unsigned k = 0; k < out.rate(); ++k) out.write(next_value++, k);
    }
};

struct scaler : tdf::module {
    tdf::in<double> in;
    tdf::out<double> out;
    double k;

    scaler(const de::module_name& nm, double gain) : tdf::module(nm), in("in"), out("out"), k(gain) {}
    void processing() override { out.write(k * in.read()); }
};

struct collector : tdf::module {
    tdf::in<double> in;
    std::vector<double> samples;

    explicit collector(const de::module_name& nm) : tdf::module(nm), in("in") {}
    void processing() override {
        for (unsigned j = 0; j < in.rate(); ++j) samples.push_back(in.read(j));
    }
};

}  // namespace

// --------------------------------------------------------- cluster behavior

TEST(tdf_cluster, single_rate_pipeline_executes_in_order) {
    de::simulation_context ctx;
    ramp_source src("src");
    scaler amp("amp", 2.0);
    collector sink("sink");
    tdf::signal<double> s1("s1"), s2("s2");
    src.out.bind(s1);
    amp.in.bind(s1);
    amp.out.bind(s2);
    sink.in.bind(s2);

    ctx.run(5_us);
    ASSERT_EQ(sink.samples.size(), 6U);  // t = 0..5 us inclusive
    for (std::size_t i = 0; i < sink.samples.size(); ++i) {
        EXPECT_DOUBLE_EQ(sink.samples[i], 2.0 * static_cast<double>(i));
    }
    EXPECT_EQ(src.timestep(), 1_us);
    EXPECT_EQ(amp.timestep(), 1_us);
}

TEST(tdf_cluster, multirate_producer_consumer) {
    de::simulation_context ctx;
    ramp_source src("src");
    collector sink("sink");
    tdf::signal<double> s("s");
    src.out.set_rate(2);
    src.out.bind(s);
    sink.in.bind(s);
    // sink consumes 3 per firing: reps src=3, sink=2 per cluster cycle.
    // Configure via attribute hook is only on src; set rate directly here.
    sink.in.set_rate(3);

    ctx.run(6_us);
    // src timestep 1us with rate 2 -> sample period 0.5us; sink gets every
    // sample in order.
    ASSERT_GE(sink.samples.size(), 12U);
    for (std::size_t i = 0; i < sink.samples.size(); ++i) {
        EXPECT_DOUBLE_EQ(sink.samples[i], static_cast<double>(i));
    }
    EXPECT_EQ(src.repetitions(), 3U);
    EXPECT_EQ(sink.repetitions(), 2U);
}

TEST(tdf_cluster, port_delay_shifts_stream) {
    de::simulation_context ctx;
    ramp_source src("src");
    collector sink("sink");
    tdf::signal<double> s("s");
    src.out.bind(s);
    sink.in.bind(s);
    sink.in.set_delay(2);

    ctx.run(4_us);
    // Two initial tokens (default 0.0) precede the ramp.
    ASSERT_EQ(sink.samples.size(), 5U);
    EXPECT_DOUBLE_EQ(sink.samples[0], 0.0);
    EXPECT_DOUBLE_EQ(sink.samples[1], 0.0);
    EXPECT_DOUBLE_EQ(sink.samples[2], 0.0);
    EXPECT_DOUBLE_EQ(sink.samples[3], 1.0);
    EXPECT_DOUBLE_EQ(sink.samples[4], 2.0);
}

namespace {

struct feedback_inc : tdf::module {
    tdf::in<double> in;
    tdf::out<double> out;

    explicit feedback_inc(const de::module_name& nm) : tdf::module(nm), in("in"), out("out") {}
    void set_attributes() override { set_timestep(1.0, de::time_unit::us); }
    void processing() override { out.write(in.read() + 1.0); }
};

struct feedback_pass : tdf::module {
    tdf::in<double> in;
    tdf::out<double> out;
    std::vector<double> seen;

    explicit feedback_pass(const de::module_name& nm) : tdf::module(nm), in("in"), out("out") {}
    void processing() override {
        seen.push_back(in.read());
        out.write(in.read());
    }
};

}  // namespace

TEST(tdf_cluster, feedback_without_delay_deadlocks) {
    de::simulation_context ctx;
    feedback_inc a("a");
    feedback_pass b("b");
    tdf::signal<double> s1("s1"), s2("s2");
    a.out.bind(s1);
    b.in.bind(s1);
    b.out.bind(s2);
    a.in.bind(s2);
    EXPECT_THROW(ctx.elaborate(), sca::util::error);
}

TEST(tdf_cluster, feedback_with_delay_accumulates) {
    de::simulation_context ctx;
    feedback_inc a("a");
    feedback_pass b("b");
    tdf::signal<double> s1("s1"), s2("s2");
    a.out.bind(s1);
    b.in.bind(s1);
    b.out.bind(s2);
    a.in.bind(s2);
    a.in.set_delay(1);  // break the cycle

    ctx.run(4_us);
    // Counter: a adds 1 each cycle starting from the initial token 0.
    ASSERT_EQ(b.seen.size(), 5U);
    EXPECT_DOUBLE_EQ(b.seen[0], 1.0);
    EXPECT_DOUBLE_EQ(b.seen[4], 5.0);
}

TEST(tdf_cluster, missing_timestep_anchor_fails) {
    de::simulation_context ctx;
    scaler lonely("lonely", 1.0);
    tdf::signal<double> sin_("sin"), sout_("sout");
    // Self-loop to make it a valid cluster with no anchor anywhere.
    scaler lonely2("lonely2", 1.0);
    lonely.out.bind(sin_);
    lonely2.in.bind(sin_);
    lonely2.out.bind(sout_);
    lonely.in.bind(sout_);
    lonely.in.set_delay(1);
    EXPECT_THROW(ctx.elaborate(), sca::util::error);
}

TEST(tdf_cluster, conflicting_anchors_fail) {
    de::simulation_context ctx;
    ramp_source src("src");  // anchors 1 us
    collector sink("sink");
    tdf::signal<double> s("s");
    src.out.bind(s);
    sink.in.bind(s);
    sink.set_timestep(2.0, de::time_unit::us);  // conflicts at equal rates
    EXPECT_THROW(ctx.elaborate(), sca::util::error);
}

TEST(tdf_cluster, port_timestep_anchor_propagates) {
    de::simulation_context ctx;
    scaler amp("amp", 1.0);
    collector sink("sink");
    // Build src without module anchor; anchor via sink port timestep.
    struct plain_source : tdf::module {
        tdf::out<double> out;
        explicit plain_source(const de::module_name& nm) : tdf::module(nm), out("out") {}
        void processing() override { out.write(1.0); }
    } src("src");
    tdf::signal<double> s1("s1"), s2("s2");
    src.out.bind(s1);
    amp.in.bind(s1);
    amp.out.bind(s2);
    sink.in.bind(s2);
    sink.in.set_timestep(5.0, de::time_unit::us);

    ctx.run(10_us);
    EXPECT_EQ(src.timestep(), 5_us);
    EXPECT_EQ(sink.samples.size(), 3U);
}

TEST(tdf_cluster, two_independent_clusters) {
    de::simulation_context ctx;
    ramp_source src1("src1");
    collector sink1("sink1");
    ramp_source src2("src2");
    collector sink2("sink2");
    src2.set_timestep(2.0, de::time_unit::us);  // overridden in set_attributes!
    tdf::signal<double> s1("s1"), s2("s2");
    src1.out.bind(s1);
    sink1.in.bind(s1);
    src2.out.bind(s2);
    sink2.in.bind(s2);

    ctx.elaborate();
    auto& reg = tdf::registry::of(ctx);
    EXPECT_EQ(reg.clusters().size(), 2U);
    ctx.run(3_us);
    EXPECT_EQ(sink1.samples.size(), 4U);
    EXPECT_EQ(sink2.samples.size(), 4U);
}

TEST(tdf_port, rate_bounds_are_enforced) {
    de::simulation_context ctx;
    struct bad_reader : tdf::module {
        tdf::in<double> in;
        explicit bad_reader(const de::module_name& nm) : tdf::module(nm), in("in") {}
        void set_attributes() override { set_timestep(1.0, de::time_unit::us); }
        void processing() override { (void)in.read(5); }  // rate is 1
    } mod("mod");
    ramp_source src("src");
    tdf::signal<double> s("s");
    src.out.bind(s);
    mod.in.bind(s);
    EXPECT_THROW(ctx.run(1_us), sca::util::error);
}

TEST(tdf_signal, unbound_port_fails) {
    de::simulation_context ctx;
    scaler amp("amp", 1.0);
    tdf::signal<double> s("s");
    amp.out.bind(s);
    // amp.in left unbound.
    EXPECT_THROW(ctx.elaborate(), sca::util::error);
}

TEST(tdf_cluster, schedule_respects_data_dependencies) {
    de::simulation_context ctx;
    ramp_source src("src");
    scaler a("a", 3.0);
    scaler b("b", 5.0);
    collector sink("sink");
    tdf::signal<double> s1("s1"), s2("s2"), s3("s3");
    src.out.bind(s1);
    a.in.bind(s1);
    a.out.bind(s2);
    b.in.bind(s2);
    b.out.bind(s3);
    sink.in.bind(s3);

    ctx.run(2_us);
    ASSERT_EQ(sink.samples.size(), 3U);
    EXPECT_DOUBLE_EQ(sink.samples[1], 15.0);

    auto& reg = tdf::registry::of(ctx);
    ASSERT_EQ(reg.clusters().size(), 1U);
    const auto& schedule = reg.clusters()[0]->schedule();
    ASSERT_EQ(schedule.size(), 4U);
    // src before a before b before sink.
    auto pos = [&](const tdf::module* m) {
        for (std::size_t i = 0; i < schedule.size(); ++i) {
            if (schedule[i] == m) return i;
        }
        return std::size_t{999};
    };
    EXPECT_LT(pos(&src), pos(&a));
    EXPECT_LT(pos(&a), pos(&b));
    EXPECT_LT(pos(&b), pos(&sink));
}

// --------------------------------------------- compiled firing program

TEST(repetition_vector, coprime_rates_balance) {
    // A -3:5-> B : 5 firings of A produce 15 tokens = 3 firings of B.
    const std::vector<tdf::rate_edge> edges{{0, 1, 3, 5}};
    const auto reps = tdf::repetition_vector(2, edges);
    EXPECT_EQ(reps, (std::vector<std::uint64_t>{5, 3}));
}

TEST(compile_schedule, merges_consecutive_firings) {
    // 0 -1:1-> 1 (rate 4 out) -4:1-> 2 : reps {1, 1, 4}; module 2's four
    // firings are consecutive, so the program has three entries.
    std::vector<tdf::sdf_signal_desc> sigs(2);
    sigs[0].writer = {0, 1, 0};
    sigs[0].readers = {{1, 1, 0}};
    sigs[1].writer = {1, 4, 0};
    sigs[1].readers = {{2, 1, 0}};
    const auto compiled = tdf::compile_schedule({1, 1, 4}, sigs);
    EXPECT_EQ(compiled.total_firings, 6U);
    ASSERT_EQ(compiled.program.size(), 3U);
    EXPECT_EQ(compiled.program[2].module, 2U);
    EXPECT_EQ(compiled.program[2].first_firing, 0U);
    EXPECT_EQ(compiled.program[2].count, 4U);
}

TEST(compile_schedule, buffer_holds_full_period_of_tokens) {
    // Writer rate 4 x 3 repetitions = 12 tokens per period.
    std::vector<tdf::sdf_signal_desc> sigs(1);
    sigs[0].writer = {0, 4, 0};
    sigs[0].readers = {{1, 6, 0}};
    const auto compiled = tdf::compile_schedule({3, 2}, sigs);
    ASSERT_EQ(compiled.buffer_capacity.size(), 1U);
    EXPECT_GE(compiled.buffer_capacity[0], 12U);
}

TEST(compile_schedule, deadlock_without_delay_throws) {
    // 0 <-> 1 cycle with no initial tokens: nothing can fire.
    std::vector<tdf::sdf_signal_desc> sigs(2);
    sigs[0].writer = {0, 1, 0};
    sigs[0].readers = {{1, 1, 0}};
    sigs[1].writer = {1, 1, 0};
    sigs[1].readers = {{0, 1, 0}};
    EXPECT_THROW((void)tdf::compile_schedule({1, 1}, sigs), sca::util::error);
}

TEST(tdf_cluster, single_module_cluster_runs) {
    de::simulation_context ctx;
    struct lone_counter : tdf::module {
        std::uint64_t ticks = 0;
        explicit lone_counter(const de::module_name& nm) : tdf::module(nm) {}
        void set_attributes() override { set_timestep(1.0, de::time_unit::us); }
        void processing() override { ++ticks; }
    } mod("mod");

    ctx.run(10_us);
    EXPECT_EQ(mod.ticks, 11U);  // t = 0..10 us
    auto& reg = tdf::registry::of(ctx);
    ASSERT_EQ(reg.clusters().size(), 1U);
    ASSERT_EQ(reg.clusters()[0]->program().size(), 1U);
    EXPECT_EQ(reg.clusters()[0]->program()[0].count, 1U);
    EXPECT_FALSE(reg.clusters()[0]->de_coupled());
}

TEST(tdf_cluster, program_is_run_length_compressed) {
    de::simulation_context ctx;
    ramp_source src("src");
    collector sink("sink");
    tdf::signal<double> s("s");
    src.out.bind(s);
    sink.in.bind(s);
    sink.in.set_rate(4);  // reps: src 4, sink 1

    ctx.elaborate();
    auto& reg = tdf::registry::of(ctx);
    ASSERT_EQ(reg.clusters().size(), 1U);
    const auto& c = *reg.clusters()[0];
    EXPECT_EQ(c.schedule().size(), 5U);       // expanded: 4 src + 1 sink firings
    ASSERT_EQ(c.program().size(), 2U);        // compiled: {src x4}, {sink x1}
    EXPECT_EQ(c.program()[0].mod, &src);
    EXPECT_EQ(c.program()[0].count, 4U);
    EXPECT_EQ(c.program()[1].mod, &sink);
    EXPECT_EQ(c.program()[1].count, 1U);
}

TEST(tdf_cluster, signal_buffer_sized_rate_times_repetition) {
    de::simulation_context ctx;
    ramp_source src("src");
    collector sink("sink");
    tdf::signal<double> s("s");
    src.out.set_rate(4);
    src.out.bind(s);
    sink.in.bind(s);
    sink.in.set_rate(6);  // reps: src 3, sink 2 -> 12 tokens per period

    ctx.elaborate();
    EXPECT_GE(s.capacity(), 12U);
}

namespace {

/// Deterministic multirate pipeline; returns the sink's collected samples.
std::vector<double> run_multirate_pipeline(std::uint64_t max_batch_periods,
                                           const de::time& duration) {
    de::simulation_context ctx;
    tdf::registry::of(ctx).set_default_max_batch_periods(max_batch_periods);
    ramp_source src("src");
    scaler up("up", 1.5);
    collector sink("sink");
    tdf::signal<double> s1("s1"), s2("s2");
    src.out.set_rate(2);
    src.out.bind(s1);
    up.in.bind(s1);
    up.in.set_rate(3);
    up.out.bind(s2);
    sink.in.bind(s2);
    sink.in.set_delay(1);
    ctx.run(duration);
    return sink.samples;
}

}  // namespace

TEST(tdf_cluster, batched_execution_is_bit_identical_to_per_period) {
    const auto per_period = run_multirate_pipeline(1, 1_ms);
    const auto batched = run_multirate_pipeline(tdf::cluster::k_default_max_batch_periods, 1_ms);
    ASSERT_EQ(per_period.size(), batched.size());
    for (std::size_t i = 0; i < per_period.size(); ++i) {
        ASSERT_EQ(per_period[i], batched[i]) << "sample " << i;  // exact, not near
    }
}

TEST(tdf_cluster, batching_reduces_kernel_interactions) {
    de::simulation_context ctx;
    ramp_source src("src");
    collector sink("sink");
    tdf::signal<double> s("s");
    src.out.bind(s);
    sink.in.bind(s);

    ctx.run(de::time(1.0, de::time_unit::ms));  // 1001 periods at 1 us
    auto& reg = tdf::registry::of(ctx);
    ASSERT_EQ(reg.clusters().size(), 1U);
    EXPECT_EQ(reg.clusters()[0]->cycle_count(), 1001U);
    // Every DE interaction is at most two process activations (cycle +
    // batch check); without batching there would be >= 1001.
    ASSERT_NE(reg.clusters()[0]->process(), nullptr);
    EXPECT_LT(reg.clusters()[0]->process()->activation_count(), 150U);
}
