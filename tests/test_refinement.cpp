// Top-down refinement (paper §4, [9]): "a top-down modeling and simulation
// methodology based on a refinement process ... the synchronization
// mechanism between synchronous dataflow and continuous-time models at
// different levels of abstraction, from high-level mathematical models to
// more physical, pin-accurate, models."
//
// The same lowpass function behind the same TDF interface at three
// abstraction levels:
//   level 0 - discrete-time behavioral model (lib::amplifier one-pole)
//   level 1 - mathematical continuous model (LSF transfer function)
//   level 2 - pin-accurate electrical model (ELN RC network)
// The testbench does not change; the refined models must agree.  Also covers
// the DC analysis driver on the most refined view.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numbers>
#include <sstream>

#include "core/dc_analysis.hpp"
#include "core/simulation.hpp"
#include "eln/converter.hpp"
#include "eln/network.hpp"
#include "eln/primitives.hpp"
#include "eln/sources.hpp"
#include "lib/amplifier.hpp"
#include "lib/oscillator.hpp"
#include "lsf/ltf.hpp"
#include "lsf/node.hpp"
#include "lsf/primitives.hpp"
#include "tdf/port.hpp"
#include "util/object_bag.hpp"

namespace de = sca::de;
namespace tdf = sca::tdf;
namespace eln = sca::eln;
namespace lsf = sca::lsf;
namespace lib = sca::lib;
namespace core = sca::core;
using namespace sca::de::literals;

namespace {

constexpr double k_fc = 2e3;  // the function under refinement: 2 kHz lowpass
constexpr double k_r = 1000.0;
const double k_c = 1.0 / (2.0 * std::numbers::pi * k_fc * k_r);

/// The refinement interface: anything that maps one TDF stream to another.
/// Implementations own their internals; the testbench only sees ports.
struct filter_under_refinement {
    virtual ~filter_under_refinement() = default;
    virtual void connect(tdf::signal<double>& in, tdf::signal<double>& out) = 0;
};

/// Level 0: discrete-time behavioral model.
struct behavioral_filter : filter_under_refinement {
    lib::amplifier amp{de::module_name("amp"), 1.0};
    behavioral_filter() { amp.set_bandwidth(k_fc); }
    void connect(tdf::signal<double>& in, tdf::signal<double>& out) override {
        amp.in.bind(in);
        amp.out.bind(out);
    }
};

/// Level 1: continuous mathematical model (Laplace transfer function).
struct mathematical_filter : filter_under_refinement {
    lsf::system sys{de::module_name("sys")};
    std::unique_ptr<lsf::from_tdf> from;
    std::unique_ptr<lsf::ltf_nd> tf;
    std::unique_ptr<lsf::to_tdf> to;
    mathematical_filter() {
        auto u = sys.create_signal("u");
        auto y = sys.create_signal("y");
        from = std::make_unique<lsf::from_tdf>("from", sys, u);
        const double w0 = 2.0 * std::numbers::pi * k_fc;
        tf = std::make_unique<lsf::ltf_nd>("tf", sys, u, y, std::vector<double>{1.0},
                                           std::vector<double>{1.0, 1.0 / w0});
        to = std::make_unique<lsf::to_tdf>("to", sys, y);
    }
    void connect(tdf::signal<double>& in, tdf::signal<double>& out) override {
        from->inp.bind(in);
        to->outp.bind(out);
    }
};

/// Level 2: pin-accurate electrical model.
struct electrical_filter : filter_under_refinement {
    eln::network net{de::module_name("net")};
    std::unique_ptr<eln::tdf_vsource> drive;
    std::unique_ptr<eln::resistor> r;
    std::unique_ptr<eln::capacitor> c;
    std::unique_ptr<eln::tdf_vsink> probe;
    electrical_filter() {
        auto gnd = net.ground();
        auto vin = net.create_node("vin");
        auto vout = net.create_node("vout");
        drive = std::make_unique<eln::tdf_vsource>("drive", net, vin, gnd);
        r = std::make_unique<eln::resistor>("r", net, vin, vout, k_r);
        c = std::make_unique<eln::capacitor>("c", net, vout, gnd, k_c);
        probe = std::make_unique<eln::tdf_vsink>("probe", net, vout, gnd);
    }
    void connect(tdf::signal<double>& in, tdf::signal<double>& out) override {
        drive->inp.bind(in);
        probe->outp.bind(out);
    }
};

struct recorder : tdf::module {
    tdf::in<double> in;
    std::vector<double> samples;
    explicit recorder(const de::module_name& nm) : tdf::module(nm), in("in") {}
    void processing() override { samples.push_back(in.read()); }
};

/// The fixed testbench: a sine through the implementation under test.
double steady_state_amplitude(filter_under_refinement& impl, double freq) {
    lib::sine_source src("src", 1.0, freq);
    src.set_timestep(2.0, de::time_unit::us);
    recorder rec("rec");
    tdf::signal<double> s_in("s_in"), s_out("s_out");
    src.out.bind(s_in);
    impl.connect(s_in, s_out);
    rec.in.bind(s_out);

    de::simulation_context::current().run(de::time::from_seconds(5e-3));
    double amp = 0.0;
    for (std::size_t i = rec.samples.size() / 2; i < rec.samples.size(); ++i) {
        amp = std::max(amp, std::abs(rec.samples[i]));
    }
    return amp;
}

}  // namespace

class refinement_levels : public ::testing::TestWithParam<double> {};

TEST_P(refinement_levels, all_abstraction_levels_agree) {
    const double freq = GetParam();
    const double analytic =
        1.0 / std::sqrt(1.0 + (freq / k_fc) * (freq / k_fc));

    double amp[3] = {};
    {
        core::simulation sim;
        behavioral_filter f;
        amp[0] = steady_state_amplitude(f, freq);
    }
    {
        core::simulation sim;
        mathematical_filter f;
        amp[1] = steady_state_amplitude(f, freq);
    }
    {
        core::simulation sim;
        electrical_filter f;
        amp[2] = steady_state_amplitude(f, freq);
    }
    for (int level = 0; level < 3; ++level) {
        EXPECT_NEAR(amp[level], analytic, 0.03)
            << "abstraction level " << level << " at " << freq << " Hz";
    }
    // Adjacent refinement steps stay close to each other, not only to the
    // ideal curve (the refinement-check criterion of [9]).
    EXPECT_NEAR(amp[0], amp[1], 0.03);
    EXPECT_NEAR(amp[1], amp[2], 0.03);
}

INSTANTIATE_TEST_SUITE_P(frequencies, refinement_levels,
                         ::testing::Values(200.0, 1000.0, 2000.0, 8000.0));

TEST(refinement, dc_analysis_reports_named_operating_point) {
    core::simulation sim;
    sca::util::object_bag bag;
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto a = net.create_node("a");
    auto b = net.create_node("b");
    bag.make<eln::vsource>("vs", net, a, gnd, eln::waveform::dc(9.0));
    bag.make<eln::resistor>("r1", net, a, b, 2000.0);
    bag.make<eln::resistor>("r2", net, b, gnd, 1000.0);
    sim.elaborate();

    core::dc_analysis dc(net);
    const auto op = dc.operating_point();
    ASSERT_EQ(op.size(), 3U);  // v(a), v(b), i(vs.i)
    double va = 0.0, vb = 0.0;
    for (const auto& e : op) {
        if (e.name == "v(a)") va = e.value;
        if (e.name == "v(b)") vb = e.value;
    }
    EXPECT_NEAR(va, 9.0, 1e-12);
    EXPECT_NEAR(vb, 3.0, 1e-12);
    EXPECT_NEAR(dc.value(b.index()), 3.0, 1e-12);

    std::ostringstream os;
    core::dc_analysis::write(op, os);
    EXPECT_NE(os.str().find("v(b)"), std::string::npos);
    EXPECT_NE(os.str().find("DC operating point"), std::string::npos);
}
