// Frequency-domain tests: AC magnitude/phase against closed forms, AC of
// linearized nonlinear circuits, and noise analysis against kT/C and 4kTR.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/ac_analysis.hpp"
#include "core/noise_analysis.hpp"
#include "core/simulation.hpp"
#include "eln/network.hpp"
#include "eln/nonlinear.hpp"
#include "eln/primitives.hpp"
#include "eln/sources.hpp"
#include "lsf/ltf.hpp"
#include "lsf/node.hpp"
#include "lsf/primitives.hpp"
#include "solver/noise.hpp"
#include "util/object_bag.hpp"

namespace de = sca::de;
namespace eln = sca::eln;
namespace lsf = sca::lsf;
namespace core = sca::core;
namespace solver = sca::solver;
using namespace sca::de::literals;

TEST(sweep, logarithmic_and_linear_grids) {
    const solver::sweep log_sw{10.0, 1000.0, 3, solver::sweep::scale::logarithmic};
    const auto fl = log_sw.frequencies();
    ASSERT_EQ(fl.size(), 3U);
    EXPECT_NEAR(fl[0], 10.0, 1e-9);
    EXPECT_NEAR(fl[1], 100.0, 1e-6);
    EXPECT_NEAR(fl[2], 1000.0, 1e-6);

    const solver::sweep lin_sw{0.0, 10.0, 6, solver::sweep::scale::linear};
    const auto fn = lin_sw.frequencies();
    EXPECT_NEAR(fn[1], 2.0, 1e-12);
}

namespace {

struct rc_fixture {
    core::simulation sim;
    sca::util::object_bag bag;
    eln::network net;
    eln::node vout;
    double r = 1000.0;
    double c = 159.15494309e-9;  // fc ~ 1 kHz

    rc_fixture() : net("net"), vout() {
        net.set_timestep(1.0, de::time_unit::us);
        auto gnd = net.ground();
        auto vin = net.create_node("vin");
        vout = net.create_node("vout");
        auto& vs = bag.make<eln::vsource>("vs", net, vin, gnd, eln::waveform::dc(0.0));
        vs.set_ac(1.0);
        bag.make<eln::resistor>("r", net, vin, vout, r);
        bag.make<eln::capacitor>("c", net, vout, gnd, c);
        sim.elaborate();
    }
};

}  // namespace

TEST(ac, rc_lowpass_magnitude_and_phase) {
    rc_fixture f;
    core::ac_analysis ac(f.net);
    const double fc = 1.0 / (2.0 * std::numbers::pi * f.r * f.c);

    const auto pts = ac.sweep(f.vout.index(),
                              {fc, fc, 1, solver::sweep::scale::logarithmic});
    EXPECT_NEAR(pts[0].magnitude_db(), -3.0103, 0.01);
    EXPECT_NEAR(pts[0].phase_deg(), -45.0, 0.1);
}

TEST(ac, rc_lowpass_rolloff_20db_per_decade) {
    rc_fixture f;
    core::ac_analysis ac(f.net);
    const auto pts = ac.sweep(f.vout.index(),
                              {10e3, 100e3, 2, solver::sweep::scale::logarithmic});
    EXPECT_NEAR(pts[0].magnitude_db() - pts[1].magnitude_db(), 20.0, 0.2);
}

TEST(ac, rl_divider_transfer) {
    core::simulation sim;
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto n1 = net.create_node("n1");
    auto n2 = net.create_node("n2");
    const double r = 50.0, l = 1e-3;
    eln::vsource vs("vs", net, n1, gnd, eln::waveform::dc(0.0));
    vs.set_ac(1.0);
    eln::resistor res("r", net, n1, n2, r);
    eln::inductor ind("l", net, n2, gnd, l);
    sim.elaborate();
    core::ac_analysis ac(net);
    const double f0 = 20e3;
    const auto pts =
        ac.sweep(n2.index(), {f0, f0, 1, solver::sweep::scale::logarithmic});
    // RL divider: |H| = wL / sqrt(R^2 + (wL)^2).
    const double wl = 2.0 * std::numbers::pi * f0 * l;
    const double expected = wl / std::sqrt(r * r + wl * wl);
    EXPECT_NEAR(std::abs(pts[0].value), expected, 1e-6);
}

TEST(ac, rlc_bandpass_peaks_at_resonance) {
    core::simulation sim;
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto n1 = net.create_node("n1");
    auto n2 = net.create_node("n2");
    const double r = 1000.0, l = 10e-3, c = 2.533e-9;  // f0 ~ 31.6 kHz
    eln::vsource vs("vs", net, n1, gnd, eln::waveform::dc(0.0));
    vs.set_ac(1.0);
    eln::resistor res("r", net, n1, n2, r);
    eln::inductor ind("l", net, n2, gnd, l);
    eln::capacitor cap("c", net, n2, gnd, c);
    sim.elaborate();
    core::ac_analysis ac(net);
    const double f0 = 1.0 / (2.0 * std::numbers::pi * std::sqrt(l * c));
    const auto at = [&](double f) {
        return std::abs(
            ac.sweep(n2.index(), {f, f, 1, solver::sweep::scale::logarithmic})[0].value);
    };
    // Parallel LC from n2: impedance peaks at f0, so |v(n2)| is maximal.
    EXPECT_NEAR(at(f0), 1.0, 1e-3);  // tank open-circuits: full input appears
    EXPECT_LT(at(f0 / 10.0), 0.2);
    EXPECT_LT(at(f0 * 10.0), 0.2);
}

TEST(ac, lsf_ltf_matches_ideal_response) {
    core::simulation sim;
    lsf::system sys("sys");
    sys.set_timestep(1.0, de::time_unit::us);
    auto u = sys.create_signal("u");
    auto y = sys.create_signal("y");
    lsf::source src("src", sys, u, lsf::waveform::dc(0.0));
    src.set_ac(1.0);
    const std::vector<double> num{1.0};
    const std::vector<double> den{1.0, 1.0 / (2.0 * std::numbers::pi * 5e3),
                                  1.0 / std::pow(2.0 * std::numbers::pi * 5e3, 2)};
    lsf::ltf_nd f("f", sys, u, y, num, den);
    sim.elaborate();

    core::ac_analysis ac(sys);
    for (double freq : {100.0, 1e3, 5e3, 20e3}) {
        const auto pts =
            ac.sweep(y.index(), {freq, freq, 1, solver::sweep::scale::logarithmic});
        const auto ideal = f.ideal_response(freq);
        EXPECT_NEAR(std::abs(pts[0].value), std::abs(ideal), 1e-9) << freq;
        EXPECT_NEAR(std::arg(pts[0].value), std::arg(ideal), 1e-9) << freq;
    }
}

TEST(ac, nonlinear_diode_linearized_at_dc) {
    core::simulation sim;
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto vin = net.create_node("vin");
    auto vd = net.create_node("vd");
    eln::vsource vs("vs", net, vin, gnd, eln::waveform::dc(5.0));
    vs.set_ac(1.0);
    const double r = 10e3;
    eln::resistor res("r", net, vin, vd, r);
    eln::diode d("d", net, vd, gnd);

    sim.run(2_us);  // DC operating point established by the first activation
    const auto dc = net.state();
    const double id = (5.0 - dc[vd.index()]) / r;
    const double rd = 0.025852 / id;  // small-signal diode resistance

    core::ac_analysis ac(net, dc);
    const auto pts =
        ac.sweep(vd.index(), {1e3, 1e3, 1, solver::sweep::scale::logarithmic});
    EXPECT_NEAR(std::abs(pts[0].value), rd / (r + rd), 1e-4);
}

// ------------------------------------------------------------------- noise

TEST(noise, resistor_psd_is_4ktr_at_low_frequency) {
    rc_fixture f;
    core::noise_analysis na(f.net);
    const auto result =
        na.run(f.vout.index(), {1.0, 1.0, 1, solver::sweep::scale::logarithmic});
    const double expected = 4.0 * solver::k_boltzmann * 300.0 * f.r;
    ASSERT_EQ(result.points.size(), 1U);
    EXPECT_NEAR(result.points[0].total_psd / expected, 1.0, 1e-3);
}

TEST(noise, integrated_rc_noise_approaches_kt_over_c) {
    rc_fixture f;
    core::noise_analysis na(f.net);
    // Integrate well past the pole: kT/C is the closed form for the total.
    const auto result = na.run(
        f.vout.index(), {1.0, 100e6, 400, solver::sweep::scale::logarithmic});
    const double expected = std::sqrt(solver::k_boltzmann * 300.0 / f.c);
    EXPECT_NEAR(result.integrated_rms() / expected, 1.0, 0.05);
}

TEST(noise, parallel_resistors_reduce_output_noise) {
    auto run_divider = [](double r2) {
        core::simulation sim;
        sca::util::object_bag bag;
        eln::network net("net");
        net.set_timestep(1.0, de::time_unit::us);
        auto gnd = net.ground();
        auto n = net.create_node("n");
        bag.make<eln::resistor>("r1", net, n, gnd, 1000.0);
        bag.make<eln::resistor>("r2", net, n, gnd, r2);
        sim.elaborate();
        core::noise_analysis na(net);
        const auto res = na.run(n.index(), {1.0, 1.0, 1});
        return res.points[0].total_psd;
    };
    // Output PSD = 4kT * (R1 || R2): smaller parallel resistance, less noise.
    const double psd_small = run_divider(100.0);
    const double psd_large = run_divider(100e3);
    EXPECT_LT(psd_small, psd_large);
    EXPECT_NEAR(psd_small / (4.0 * solver::k_boltzmann * 300.0 * (1000.0 * 100.0 / 1100.0)),
                1.0, 1e-3);
}

TEST(noise, noiseless_resistor_is_excluded) {
    core::simulation sim;
    sca::util::object_bag bag;
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto n = net.create_node("n");
    auto& r1 = bag.make<eln::resistor>("r1", net, n, gnd, 1000.0);
    r1.set_noisy(false);
    bag.make<eln::resistor>("r2", net, n, gnd, 1000.0);
    sim.elaborate();
    core::noise_analysis na(net);
    const auto res = na.run(n.index(), {1.0, 1.0, 1});
    ASSERT_EQ(res.source_names.size(), 1U);
    EXPECT_EQ(res.source_names[0], "r2");
}

TEST(noise, per_source_contributions_sum_to_total) {
    rc_fixture f;
    core::noise_analysis na(f.net);
    const auto res = na.run(f.vout.index(), {100.0, 10e3, 5});
    for (const auto& pt : res.points) {
        double sum = 0.0;
        for (double c : pt.per_source) sum += c;
        EXPECT_NEAR(sum, pt.total_psd, 1e-25);
    }
}

TEST(noise, vsource_noise_psd_contributes) {
    core::simulation sim;
    sca::util::object_bag bag;
    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto a = net.create_node("a");
    auto b = net.create_node("b");
    auto& vs = bag.make<eln::vsource>("vs", net, a, gnd, eln::waveform::dc(0.0));
    vs.set_noise_psd([](double) { return 1e-12; });  // 1 uV/rtHz
    auto& r1 = bag.make<eln::resistor>("r1", net, a, b, 1000.0);
    auto& r2 = bag.make<eln::resistor>("r2", net, b, gnd, 1000.0);
    r1.set_noisy(false);
    r2.set_noisy(false);
    sim.elaborate();
    core::noise_analysis na(net);
    const auto res = na.run(b.index(), {1e3, 1e3, 1});
    // Divider halves the amplitude: PSD scales by 1/4.
    EXPECT_NEAR(res.points[0].total_psd, 0.25e-12, 1e-15);
}
