// Waveform measurement helpers: SNR/SINAD/THD/ENOB on sampled data, rise
// times, settling detection, and simple statistics.  Used by tests and by the
// benches that reproduce the paper's application scenarios.
#ifndef SCA_UTIL_MEASURE_HPP
#define SCA_UTIL_MEASURE_HPP

#include <cstddef>
#include <vector>

namespace sca::util {

/// Root-mean-square value of a sequence.
[[nodiscard]] double rms(const std::vector<double>& x);

/// Arithmetic mean.
[[nodiscard]] double mean(const std::vector<double>& x);

/// Maximum absolute difference between two equally long sequences.
[[nodiscard]] double max_abs_error(const std::vector<double>& a, const std::vector<double>& b);

/// Root-mean-square difference between two equally long sequences.
[[nodiscard]] double rms_error(const std::vector<double>& a, const std::vector<double>& b);

/// Signal-to-noise-and-distortion ratio (dB) of a sampled sine.
///
/// The signal bin is the largest non-DC bin of the windowed spectrum; `skirt`
/// bins on each side of it are attributed to the signal (spectral leakage).
/// Everything else except DC is noise+distortion.
[[nodiscard]] double sinad_db(const std::vector<double>& samples, double fs,
                              std::size_t skirt = 8);

/// Effective number of bits from a SINAD value: (sinad - 1.76) / 6.02.
[[nodiscard]] double enob(double sinad_db_value);

/// Total harmonic distortion (dB, negative) using `n_harmonics` harmonics of
/// the detected fundamental.
[[nodiscard]] double thd_db(const std::vector<double>& samples, double fs,
                            std::size_t n_harmonics = 5, std::size_t skirt = 8);

/// First time the waveform crosses `level` with positive slope; -1 if never.
[[nodiscard]] double first_rising_crossing(const std::vector<double>& t,
                                           const std::vector<double>& x, double level);

/// True when the tail of the waveform (last `fraction` of samples) stays
/// within +/- tolerance of `target`.
[[nodiscard]] bool settled(const std::vector<double>& x, double target, double tolerance,
                           double fraction = 0.1);

}  // namespace sca::util

#endif  // SCA_UTIL_MEASURE_HPP
