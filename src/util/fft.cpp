#include "util/fft.hpp"

#include <cmath>
#include <numbers>

#include "util/report.hpp"

namespace sca::util {

std::size_t next_pow2(std::size_t n) noexcept {
    std::size_t p = 1;
    while (p < n) p <<= 1U;
    return p;
}

void fft(std::vector<std::complex<double>>& data, bool inverse) {
    const std::size_t n = data.size();
    require(n > 0 && (n & (n - 1)) == 0, "fft", "size must be a power of two");

    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1U;
        for (; j & bit; bit >>= 1U) j ^= bit;
        j ^= bit;
        if (i < j) std::swap(data[i], data[j]);
    }

    for (std::size_t len = 2; len <= n; len <<= 1U) {
        const double angle = 2.0 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1.0 : -1.0);
        const std::complex<double> wlen(std::cos(angle), std::sin(angle));
        for (std::size_t i = 0; i < n; i += len) {
            std::complex<double> w(1.0, 0.0);
            for (std::size_t k = 0; k < len / 2; ++k) {
                const std::complex<double> u = data[i + k];
                const std::complex<double> v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w *= wlen;
            }
        }
    }
    if (inverse) {
        for (auto& x : data) x /= static_cast<double>(n);
    }
}

std::vector<std::complex<double>> fft_real(const std::vector<double>& signal) {
    std::vector<std::complex<double>> data(next_pow2(signal.size()));
    for (std::size_t i = 0; i < signal.size(); ++i) data[i] = signal[i];
    fft(data);
    return data;
}

std::vector<spectrum_bin> magnitude_spectrum(const std::vector<double>& signal, double fs,
                                             bool hann) {
    require(fs > 0.0, "magnitude_spectrum", "sample rate must be positive");
    require(!signal.empty(), "magnitude_spectrum", "empty signal");

    const std::size_t n = next_pow2(signal.size());
    std::vector<std::complex<double>> data(n);
    double coherent_gain = 1.0;
    if (hann) {
        coherent_gain = 0.5;
        for (std::size_t i = 0; i < signal.size(); ++i) {
            const double w =
                0.5 * (1.0 - std::cos(2.0 * std::numbers::pi * static_cast<double>(i) /
                                      static_cast<double>(signal.size() - 1)));
            data[i] = signal[i] * w;
        }
    } else {
        for (std::size_t i = 0; i < signal.size(); ++i) data[i] = signal[i];
    }
    fft(data);

    std::vector<spectrum_bin> bins;
    bins.reserve(n / 2 + 1);
    const double scale = 2.0 / (static_cast<double>(signal.size()) * coherent_gain);
    for (std::size_t k = 0; k <= n / 2; ++k) {
        const double f = fs * static_cast<double>(k) / static_cast<double>(n);
        double mag = std::abs(data[k]) * scale;
        if (k == 0 || k == n / 2) mag *= 0.5;  // DC and Nyquist bins are not doubled.
        bins.push_back({f, mag});
    }
    return bins;
}

}  // namespace sca::util
