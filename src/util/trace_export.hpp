// Structured kernel event tracer with Chrome trace_event JSON export.
//
// The tracer records *spans* — named, categorized intervals of kernel
// activity (elaboration phases, cluster firings, DAE factor/solve, snapshot
// save/restore, server session slices) — into a bounded in-memory buffer,
// then exports them in the Chrome trace_event "complete event" form
// (ph:"X") that Perfetto and chrome://tracing load directly:
//
//   {"traceEvents":[{"name":"cluster.fire","cat":"tdf","ph":"X",
//                    "ts":12.3,"dur":4.5,"pid":1,"tid":0,
//                    "args":{"t_sim":1e-6}}, ...]}
//
// Recording is OFF by default: every span site checks one relaxed atomic
// flag before touching the clock, so a disabled tracer costs a predicted
// branch.  Sites go through the SCA_TRACE_SPAN macro, which additionally
// compiles out under SCA_TELEMETRY_ENABLED=0.
//
// The buffer is bounded (default 1M events); once full, further events are
// counted as dropped rather than grown — tracing a long run degrades to a
// truncated trace, never to unbounded memory.
#ifndef SCA_UTIL_TRACE_EXPORT_HPP
#define SCA_UTIL_TRACE_EXPORT_HPP

#include "util/telemetry.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace sca::util {

/// One completed span.  Timestamps are nanoseconds on the steady clock,
/// rebased to the tracer's enable() time at export.
struct trace_event {
    std::string name;          ///< e.g. "cluster.fire", "dae.numeric_factor"
    std::string cat;           ///< layer: "kernel", "tdf", "solver", "core", "server"
    std::int64_t start_ns = 0;
    std::int64_t dur_ns = 0;
    std::uint32_t lane = 0;    ///< exported as tid — one lane per recording thread
    double sim_time = -1.0;    ///< simulated seconds at span start; <0 = not set
};

class event_tracer {
public:
    explicit event_tracer(std::size_t capacity = 1u << 20) : capacity_(capacity) {}
    event_tracer(const event_tracer&) = delete;
    event_tracer& operator=(const event_tracer&) = delete;

    /// Start recording.  Clears any previous events and re-anchors t=0.
    void enable();
    /// Stop recording; buffered events stay available for export.
    void disable();
    [[nodiscard]] bool enabled() const noexcept {
        return enabled_.load(std::memory_order_relaxed);
    }

    /// Record a completed span (called by scoped_span; usable directly for
    /// spans whose begin/end don't nest lexically).
    void record(const char* name, const char* cat, std::int64_t start_ns,
                std::int64_t dur_ns, double sim_time = -1.0);

    /// Monotonic now, in the tracer's timebase.
    [[nodiscard]] static std::int64_t now_ns() noexcept {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now().time_since_epoch())
            .count();
    }

    [[nodiscard]] std::size_t event_count() const;
    [[nodiscard]] std::uint64_t dropped() const noexcept {
        return dropped_.load(std::memory_order_relaxed);
    }
    void clear();

    /// Copy of the buffer (test/export introspection).
    [[nodiscard]] std::vector<trace_event> events() const;

    /// Chrome trace_event JSON ("traceEvents" array of ph:"X" complete
    /// events, ts/dur in fractional microseconds), loadable in Perfetto.
    void write_chrome_json(std::ostream& os) const;

private:
    std::atomic<bool> enabled_{false};
    std::atomic<std::uint64_t> dropped_{0};
    std::size_t capacity_;
    std::int64_t epoch_ns_ = 0;  ///< enable() time; export rebases to it
    mutable std::mutex mutex_;
    std::vector<trace_event> events_;
};

/// RAII span: samples the clock at construction, records at destruction.
/// Null or disabled tracer = no clock reads beyond one relaxed load.
class scoped_span {
public:
    scoped_span(event_tracer* tracer, const char* name, const char* cat,
                double sim_time = -1.0) noexcept
        : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
          name_(name),
          cat_(cat),
          sim_time_(sim_time),
          start_ns_(tracer_ != nullptr ? event_tracer::now_ns() : 0) {}
    ~scoped_span() {
        if (tracer_ == nullptr) return;
        tracer_->record(name_, cat_, start_ns_, event_tracer::now_ns() - start_ns_,
                        sim_time_);
    }
    scoped_span(const scoped_span&) = delete;
    scoped_span& operator=(const scoped_span&) = delete;

private:
    event_tracer* tracer_;
    const char* name_;
    const char* cat_;
    double sim_time_;
    std::int64_t start_ns_;
};

}  // namespace sca::util

// Span macro for instrumentation sites: `SCA_TRACE_SPAN(tracer_ptr, "name",
// "cat")` traces the enclosing scope.  Compiles out with telemetry disabled;
// otherwise costs one relaxed load when the tracer is off.
#if SCA_TELEMETRY_ENABLED
#define SCA_TRACE_SPAN(tracer_ptr, name, cat) \
    const ::sca::util::scoped_span SCA_TELEMETRY_CAT(sca_span_, __LINE__)(tracer_ptr, name, cat)
#define SCA_TRACE_SPAN_T(tracer_ptr, name, cat, t_sim)                                  \
    const ::sca::util::scoped_span SCA_TELEMETRY_CAT(sca_span_, __LINE__)(tracer_ptr, name, \
                                                                          cat, t_sim)
#else
#define SCA_TRACE_SPAN(tracer_ptr, name, cat) \
    do {                                      \
    } while (false)
#define SCA_TRACE_SPAN_T(tracer_ptr, name, cat, t_sim) \
    do {                                               \
    } while (false)
#endif

#endif  // SCA_UTIL_TRACE_EXPORT_HPP
