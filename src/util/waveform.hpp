// Time-domain waveform descriptions shared by all source primitives
// (electrical/mechanical/thermal sources, signal-flow sources, TDF stimuli).
#ifndef SCA_UTIL_WAVEFORM_HPP
#define SCA_UTIL_WAVEFORM_HPP

#include <functional>
#include <utility>
#include <vector>

namespace sca::util {

class waveform {
public:
    /// Constant value.
    static waveform dc(double value);

    /// offset + amplitude * sin(2*pi*freq*(t - delay) + phase).
    static waveform sine(double amplitude, double frequency, double offset = 0.0,
                         double phase_rad = 0.0, double delay = 0.0);

    /// SPICE-style pulse: v1 -> v2 with delay/rise/fall/width/period.
    static waveform pulse(double v1, double v2, double delay, double rise, double fall,
                          double width, double period);

    /// Piecewise linear through (t, v) points (constant before/after).
    static waveform pwl(std::vector<std::pair<double, double>> points);

    /// Arbitrary function of time.
    static waveform custom(std::function<double(double)> fn);

    [[nodiscard]] double at(double t) const { return fn_ ? fn_(t) : dc_; }
    [[nodiscard]] bool is_dc() const noexcept { return !fn_; }
    [[nodiscard]] double dc_value() const noexcept { return dc_; }

private:
    double dc_ = 0.0;
    std::function<double(double)> fn_;  // empty = pure DC
};

}  // namespace sca::util

#endif  // SCA_UTIL_WAVEFORM_HPP
