// Diagnostic reporting for the sca-sim library.
//
// All library errors are reported through these helpers so that user code has
// a single exception type to catch (`sca::util::error`) and so that warnings
// can be collected or silenced centrally.
#ifndef SCA_UTIL_REPORT_HPP
#define SCA_UTIL_REPORT_HPP

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace sca::util {

/// Exception thrown for every unrecoverable library error.
///
/// The message always has the form "<context>: <what>", where the context
/// names the module, port, or analysis that raised the error.
class error : public std::runtime_error {
public:
    error(std::string_view context, std::string_view what)
        : std::runtime_error(std::string(context) + ": " + std::string(what)),
          context_(context) {}

    /// Name of the library entity that raised the error.
    [[nodiscard]] const std::string& context() const noexcept { return context_; }

private:
    std::string context_;
};

/// Severity of a diagnostic message.
enum class severity { info, warning, fatal };

/// Raise a fatal diagnostic: throws sca::util::error.
[[noreturn]] void report_fatal(std::string_view context, std::string_view what);

/// Record a warning. Warnings are collected and retrievable for tests.
void report_warning(std::string_view context, std::string_view what);

/// Record an informational message (collected like warnings).
void report_info(std::string_view context, std::string_view what);

/// All warnings recorded since the last clear_reports() call.
/// Diagnostics are collected per thread: a worker running one scenario of a
/// parallel run_set only ever observes its own run's warnings.
[[nodiscard]] const std::vector<std::string>& warnings();

/// All info messages recorded since the last clear_reports() call.
[[nodiscard]] const std::vector<std::string>& infos();

/// Drop all collected warnings and infos.
void clear_reports();

/// When true (default false), warnings are echoed to stderr as they occur.
void set_echo_warnings(bool on);

/// Throw sca::util::error with the given context if `condition` is false.
inline void require(bool condition, std::string_view context, std::string_view what) {
    if (!condition) report_fatal(context, what);
}

}  // namespace sca::util

#endif  // SCA_UTIL_REPORT_HPP
