// Waveform tracing: tabular (whitespace-separated columns) and VCD output.
//
// Any simulation object that can produce a double per time point can register
// itself with a trace_file through the `traceable` interface.  The analysis
// drivers (core/) call `sample(t)` at every accepted time point.
#ifndef SCA_UTIL_TRACE_HPP
#define SCA_UTIL_TRACE_HPP

#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace sca::util {

/// A named scalar quantity that can be sampled at a time point.
struct trace_channel {
    std::string name;
    std::function<double()> probe;
};

/// Base class for trace sinks. Channels are added before the first sample.
class trace_file {
public:
    virtual ~trace_file() = default;

    trace_file(const trace_file&) = delete;
    trace_file& operator=(const trace_file&) = delete;

    /// Register a named probe; must happen before the first sample().
    void add_channel(std::string name, std::function<double()> probe);

    /// Record the current value of every channel at time `t` (seconds).
    void sample(double t);

    /// Write an externally captured row (one value per channel) — used to
    /// re-emit an in-memory trace into another sink, e.g. a tabular file.
    void replay_row(double t, const std::vector<double>& values);

    /// Flush and close the underlying file. Idempotent.
    virtual void close() = 0;

    [[nodiscard]] std::size_t channel_count() const noexcept { return channels_.size(); }
    [[nodiscard]] const std::string& channel_name(std::size_t i) const {
        return channels_.at(i).name;
    }

protected:
    trace_file() = default;

    virtual void write_header() = 0;
    virtual void write_row(double t, const std::vector<double>& values) = 0;

    std::vector<trace_channel> channels_;
    bool header_written_ = false;
};

/// Tabular trace: one row per sample, first column is time.
class tabular_trace_file final : public trace_file {
public:
    explicit tabular_trace_file(const std::string& path);
    ~tabular_trace_file() override;
    void close() override;

private:
    void write_header() override;
    void write_row(double t, const std::vector<double>& values) override;

    std::ofstream out_;
};

/// Value-change-dump trace with real-valued variables.
class vcd_trace_file final : public trace_file {
public:
    /// `time_resolution` is the VCD timescale in seconds (default 1 ps).
    explicit vcd_trace_file(const std::string& path, double time_resolution = 1e-12);
    ~vcd_trace_file() override;
    void close() override;

private:
    void write_header() override;
    void write_row(double t, const std::vector<double>& values) override;

    std::ofstream out_;
    double resolution_;
    std::vector<double> last_;
    long long last_stamp_ = -1;
};

/// In-memory trace for tests and measurements: stores (t, values) rows.
class memory_trace final : public trace_file {
public:
    memory_trace() = default;
    void close() override {}

    [[nodiscard]] const std::vector<double>& times() const noexcept { return times_; }
    [[nodiscard]] const std::vector<std::vector<double>>& rows() const noexcept { return rows_; }

    /// Column of samples for channel index `c`.
    [[nodiscard]] std::vector<double> column(std::size_t c) const;

private:
    void write_header() override {}
    void write_row(double t, const std::vector<double>& values) override;

    std::vector<double> times_;
    std::vector<std::vector<double>> rows_;
};

}  // namespace sca::util

#endif  // SCA_UTIL_TRACE_HPP
