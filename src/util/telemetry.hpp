// Unified metrics registry: named counters, gauges, and histogram timers
// collected per simulation_context and exportable as JSON/CSV or over the
// SCA1 wire protocol (core/run_protocol).
//
// Design contract:
//  - The fast path is lock-free: a metric handle is a stable reference into
//    the registry, and every mutation is one relaxed atomic op.  Handles are
//    resolved by name once (mutex-protected) and then cached by the
//    instrumented layer — never look a metric up per event.
//  - Cheap enough to leave on: counters/gauges stay compiled in at every
//    build setting.  Only the scoped-timer and trace-span *macros* compile
//    out (SCA_TELEMETRY_ENABLED=0, CMake option SCA_ENABLE_TELEMETRY=OFF),
//    because wall-clock reads in hot loops are the one cost that can matter.
//  - Snapshots are deterministic in content: entries sort by name, and the
//    wire snapshot carries only counters and gauges — values derived from
//    simulation state, reproducible across backends and worker counts.
//    Histograms accumulate wall-clock time and stay host-local.
//
// Naming convention (docs/observability.md): dot-separated lowercase paths,
// "<layer>.<thing>[.<aspect>]" — e.g. "kernel.timed_notifications",
// "tdf.schedule_cache.hits", "solver.numeric_factorizations",
// "time.snapshot.save_s" (histogram timers end in a unit suffix).
#ifndef SCA_UTIL_TELEMETRY_HPP
#define SCA_UTIL_TELEMETRY_HPP

// Compile-time gate for the timing macros below.  The registry itself is
// always available; only wall-clock instrumentation sites vanish.
#ifndef SCA_TELEMETRY_ENABLED
#define SCA_TELEMETRY_ENABLED 1
#endif

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace sca::util {

/// Monotonic event count.  add() is the hot-path op: one relaxed fetch_add.
class counter {
public:
    void add(std::uint64_t n = 1) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
    /// Overwrite (reset, snapshot restore, collector set-semantics).
    void set(std::uint64_t n) noexcept { v_.store(n, std::memory_order_relaxed); }
    [[nodiscard]] std::uint64_t value() const noexcept {
        return v_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value (queue depth, drift seconds, ...).
class gauge {
public:
    void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
    [[nodiscard]] double value() const noexcept {
        return v_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<double> v_{0.0};
};

/// Value accumulator: count / sum / min / max, lock-free (min/max via CAS).
/// Timer histograms record seconds; record() accepts any double series.
class histogram {
public:
    void record(double v) noexcept;
    void reset() noexcept;

    [[nodiscard]] std::uint64_t count() const noexcept {
        return count_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] double sum() const noexcept {
        return sum_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] double min() const noexcept;  ///< 0 when empty
    [[nodiscard]] double max() const noexcept;  ///< 0 when empty
    [[nodiscard]] double mean() const noexcept {
        const std::uint64_t n = count();
        return n == 0 ? 0.0 : sum() / static_cast<double>(n);
    }

private:
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_{0.0};
    std::atomic<double> max_{0.0};
};

/// One exported metric sample — the flat form snapshots, exports, and the
/// wire protocol share.
struct metric_value {
    enum class metric_kind : std::uint8_t { counter = 0, gauge = 1, histogram = 2 };

    std::string name;
    metric_kind kind = metric_kind::counter;
    std::uint64_t count = 0;  ///< counter value / histogram sample count
    double value = 0.0;       ///< gauge value / histogram sum
    double min = 0.0;         ///< histogram only
    double max = 0.0;         ///< histogram only

    bool operator==(const metric_value&) const = default;
};

using metrics_snapshot = std::vector<metric_value>;

/// Per-simulation_context registry of named metrics.  Handle resolution is
/// mutex-protected and allocation-backed (deque: stable addresses); the
/// returned references stay valid for the registry's lifetime, so layers
/// resolve once at construction/elaboration and mutate lock-free after.
class metrics_registry {
public:
    metrics_registry() = default;
    metrics_registry(const metrics_registry&) = delete;
    metrics_registry& operator=(const metrics_registry&) = delete;

    /// Find-or-create by name.  A name identifies exactly one kind; asking
    /// for the same name with a different kind throws.
    counter& get_counter(const std::string& name);
    gauge& get_gauge(const std::string& name);
    histogram& get_histogram(const std::string& name);

    /// Zero every registered metric (names and handles survive — reset
    /// changes values, never invalidates cached references).
    void reset();

    /// Every metric, sorted by name (deterministic content).
    [[nodiscard]] metrics_snapshot snapshot() const;
    /// Counters and gauges only, sorted by name — the deterministic subset
    /// that travels over the wire and is compared bit-for-bit across
    /// backends and worker counts.  Histograms (wall-clock timers) excluded.
    [[nodiscard]] metrics_snapshot wire_snapshot() const;

    /// Flat JSON object: {"metrics":[{name,kind,...}, ...]}.
    void write_json(std::ostream& os) const;
    /// Flat CSV: name,kind,count,value,min,max (header row included).
    void write_csv(std::ostream& os) const;

    [[nodiscard]] std::size_t size() const;

private:
    enum class kind : std::uint8_t { counter, gauge, histogram };
    struct entry {
        std::string name;
        kind k;
        std::size_t slot;
    };

    mutable std::mutex mutex_;
    std::vector<entry> entries_;                       // registration order
    std::unordered_map<std::string, std::size_t> by_name_;  // -> entries_ index
    std::deque<counter> counters_;
    std::deque<gauge> gauges_;
    std::deque<histogram> histograms_;
};

/// Serialize a snapshot as the same JSON array write_json emits (shared by
/// run_set metric dumps and bench artifacts).
void write_metrics_json(std::ostream& os, const metrics_snapshot& snap);

// ------------------------------------------------------------ scoped timer --

/// RAII wall-clock timer recording seconds into a histogram.  Null histogram
/// = disabled (records nothing); the macro form compiles out entirely.
class scoped_timer {
public:
    explicit scoped_timer(histogram* h) noexcept
        : h_(h), t0_(h ? std::chrono::steady_clock::now()
                       : std::chrono::steady_clock::time_point{}) {}
    ~scoped_timer() {
        if (h_ == nullptr) return;
        const auto dt = std::chrono::steady_clock::now() - t0_;
        h_->record(std::chrono::duration<double>(dt).count());
    }
    scoped_timer(const scoped_timer&) = delete;
    scoped_timer& operator=(const scoped_timer&) = delete;

private:
    histogram* h_;
    std::chrono::steady_clock::time_point t0_;
};

}  // namespace sca::util

// Compile-out-able scoped timer for hot loops: `SCA_SCOPED_TIMER(&hist)`
// records the enclosing scope's wall time into `hist` (a histogram*; may be
// null at runtime for a cheap dynamic disable).  With telemetry compiled out
// the macro leaves no code behind.
#if SCA_TELEMETRY_ENABLED
#define SCA_TELEMETRY_CAT2(a, b) a##b
#define SCA_TELEMETRY_CAT(a, b) SCA_TELEMETRY_CAT2(a, b)
#define SCA_SCOPED_TIMER(hist_ptr) \
    const ::sca::util::scoped_timer SCA_TELEMETRY_CAT(sca_timer_, __LINE__)(hist_ptr)
#else
#define SCA_SCOPED_TIMER(hist_ptr) \
    do {                           \
    } while (false)
#endif

#endif  // SCA_UTIL_TELEMETRY_HPP
