#include "util/trace_export.hpp"

#include <atomic>
#include <locale>
#include <ostream>
#include <sstream>

namespace sca::util {

namespace {

// Lane ids label concurrent recorders (kernel worker threads, server session
// threads) as separate Perfetto tracks.  Process-global on purpose: a lane
// identifies a thread, not a context.
std::uint32_t this_lane() {
    static std::atomic<std::uint32_t> next{0};
    thread_local const std::uint32_t lane = next.fetch_add(1, std::memory_order_relaxed);
    return lane;
}

void write_json_escaped(std::ostream& os, const std::string& s) {
    os << '"';
    for (char c : s) {
        switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\r': os << "\\r"; break;
        case '\t': os << "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char* hex = "0123456789abcdef";
                os << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

std::string fmt_double(double v) {
    std::ostringstream ss;
    ss.imbue(std::locale::classic());
    ss.precision(17);
    ss << v;
    return ss.str();
}

}  // namespace

void event_tracer::enable() {
    const std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
    dropped_.store(0, std::memory_order_relaxed);
    epoch_ns_ = now_ns();
    enabled_.store(true, std::memory_order_relaxed);
}

void event_tracer::disable() { enabled_.store(false, std::memory_order_relaxed); }

void event_tracer::record(const char* name, const char* cat, std::int64_t start_ns,
                          std::int64_t dur_ns, double sim_time) {
    if (!enabled()) return;
    const std::uint32_t lane = this_lane();
    const std::lock_guard<std::mutex> lock(mutex_);
    if (events_.size() >= capacity_) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    trace_event ev;
    ev.name = name;
    ev.cat = cat;
    ev.start_ns = start_ns;
    ev.dur_ns = dur_ns;
    ev.lane = lane;
    ev.sim_time = sim_time;
    events_.push_back(std::move(ev));
}

std::size_t event_tracer::event_count() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

void event_tracer::clear() {
    const std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
    dropped_.store(0, std::memory_order_relaxed);
}

std::vector<trace_event> event_tracer::events() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return events_;
}

void event_tracer::write_chrome_json(std::ostream& os) const {
    std::vector<trace_event> evs;
    std::int64_t epoch = 0;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        evs = events_;
        epoch = epoch_ns_;
    }
    os << "{\"traceEvents\":[";
    bool first = true;
    for (const trace_event& ev : evs) {
        if (!first) os << ',';
        first = false;
        // ts/dur are fractional microseconds in the trace_event format.
        const double ts_us = static_cast<double>(ev.start_ns - epoch) / 1000.0;
        const double dur_us = static_cast<double>(ev.dur_ns) / 1000.0;
        os << "{\"name\":";
        write_json_escaped(os, ev.name);
        os << ",\"cat\":";
        write_json_escaped(os, ev.cat);
        os << ",\"ph\":\"X\",\"ts\":" << fmt_double(ts_us) << ",\"dur\":" << fmt_double(dur_us)
           << ",\"pid\":1,\"tid\":" << ev.lane;
        if (ev.sim_time >= 0.0) os << ",\"args\":{\"t_sim\":" << fmt_double(ev.sim_time) << '}';
        os << '}';
    }
    os << "],\"displayTimeUnit\":\"ms\"}";
}

}  // namespace sca::util
