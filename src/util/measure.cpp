#include "util/measure.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/fft.hpp"
#include "util/report.hpp"

namespace sca::util {

double rms(const std::vector<double>& x) {
    require(!x.empty(), "rms", "empty sequence");
    double acc = 0.0;
    for (double v : x) acc += v * v;
    return std::sqrt(acc / static_cast<double>(x.size()));
}

double mean(const std::vector<double>& x) {
    require(!x.empty(), "mean", "empty sequence");
    return std::accumulate(x.begin(), x.end(), 0.0) / static_cast<double>(x.size());
}

double max_abs_error(const std::vector<double>& a, const std::vector<double>& b) {
    require(a.size() == b.size(), "max_abs_error", "size mismatch");
    double m = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
    return m;
}

double rms_error(const std::vector<double>& a, const std::vector<double>& b) {
    require(a.size() == b.size() && !a.empty(), "rms_error", "size mismatch or empty");
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        acc += d * d;
    }
    return std::sqrt(acc / static_cast<double>(a.size()));
}

namespace {
struct power_split {
    double signal = 0.0;
    double rest = 0.0;
    std::size_t fundamental_bin = 0;
};

power_split split_power(const std::vector<double>& samples, double fs, std::size_t skirt) {
    const auto bins = magnitude_spectrum(samples, fs, /*hann=*/true);
    require(bins.size() > 2, "sinad", "signal too short");

    std::size_t peak = 1;
    for (std::size_t k = 2; k + 1 < bins.size(); ++k) {
        if (bins[k].magnitude > bins[peak].magnitude) peak = k;
    }
    power_split out;
    out.fundamental_bin = peak;
    const std::size_t dc_guard = std::min<std::size_t>(skirt, bins.size() - 1);
    for (std::size_t k = 1; k < bins.size(); ++k) {
        const double p = bins[k].magnitude * bins[k].magnitude;
        const bool in_signal = k + skirt >= peak && k <= peak + skirt;
        const bool in_dc = k <= dc_guard;
        if (in_signal) {
            out.signal += p;
        } else if (!in_dc) {
            out.rest += p;
        }
    }
    return out;
}
}  // namespace

double sinad_db(const std::vector<double>& samples, double fs, std::size_t skirt) {
    const auto split = split_power(samples, fs, skirt);
    if (split.rest <= 0.0) return 200.0;  // numerically noiseless
    return 10.0 * std::log10(split.signal / split.rest);
}

double enob(double sinad_db_value) { return (sinad_db_value - 1.76) / 6.02; }

double thd_db(const std::vector<double>& samples, double fs, std::size_t n_harmonics,
              std::size_t skirt) {
    const auto bins = magnitude_spectrum(samples, fs, /*hann=*/true);
    const auto split = split_power(samples, fs, skirt);
    const std::size_t f0 = split.fundamental_bin;

    double harm_power = 0.0;
    for (std::size_t h = 2; h <= n_harmonics + 1; ++h) {
        const std::size_t center = f0 * h;
        if (center >= bins.size()) break;
        const std::size_t lo = center > skirt ? center - skirt : 1;
        const std::size_t hi = std::min(center + skirt, bins.size() - 1);
        double peak = 0.0;
        for (std::size_t k = lo; k <= hi; ++k) peak = std::max(peak, bins[k].magnitude);
        harm_power += peak * peak;
    }
    if (harm_power <= 0.0) return -200.0;
    return 10.0 * std::log10(harm_power / split.signal);
}

double first_rising_crossing(const std::vector<double>& t, const std::vector<double>& x,
                             double level) {
    require(t.size() == x.size(), "first_rising_crossing", "size mismatch");
    for (std::size_t i = 1; i < x.size(); ++i) {
        if (x[i - 1] < level && x[i] >= level) {
            const double frac = (level - x[i - 1]) / (x[i] - x[i - 1]);
            return t[i - 1] + frac * (t[i] - t[i - 1]);
        }
    }
    return -1.0;
}

bool settled(const std::vector<double>& x, double target, double tolerance, double fraction) {
    require(!x.empty() && fraction > 0.0 && fraction <= 1.0, "settled", "bad arguments");
    const auto start = static_cast<std::size_t>(static_cast<double>(x.size()) * (1.0 - fraction));
    for (std::size_t i = start; i < x.size(); ++i) {
        if (std::abs(x[i] - target) > tolerance) return false;
    }
    return true;
}

}  // namespace sca::util
