#include "util/report.hpp"

#include <iostream>

namespace sca::util {

namespace {
// Thread-local so that concurrent scenario runs (core/run_set) collect their
// diagnostics independently: a worker thread never sees another run's
// warnings, and no locking is needed on the report path.
std::vector<std::string>& warning_store() {
    thread_local std::vector<std::string> store;
    return store;
}
std::vector<std::string>& info_store() {
    thread_local std::vector<std::string> store;
    return store;
}
bool& echo_flag() {
    thread_local bool echo = false;
    return echo;
}
}  // namespace

void report_fatal(std::string_view context, std::string_view what) {
    throw error(context, what);
}

void report_warning(std::string_view context, std::string_view what) {
    std::string msg = std::string(context) + ": " + std::string(what);
    if (echo_flag()) std::cerr << "[sca warning] " << msg << '\n';
    warning_store().push_back(std::move(msg));
}

void report_info(std::string_view context, std::string_view what) {
    info_store().push_back(std::string(context) + ": " + std::string(what));
}

const std::vector<std::string>& warnings() { return warning_store(); }
const std::vector<std::string>& infos() { return info_store(); }

void clear_reports() {
    warning_store().clear();
    info_store().clear();
}

void set_echo_warnings(bool on) { echo_flag() = on; }

}  // namespace sca::util
