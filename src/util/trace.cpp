#include "util/trace.hpp"

#include <cmath>
#include <utility>

#include "util/report.hpp"

namespace sca::util {

void trace_file::add_channel(std::string name, std::function<double()> probe) {
    // A channel added after the first sample() could never be retrofitted
    // into the rows already written — the file would have misaligned
    // columns — so reject it by name instead.
    require(!header_written_, "trace_file",
            "cannot add channel '" + name +
                "' after sampling started: the header and earlier rows are "
                "already written without it");
    require(static_cast<bool>(probe), "trace_file", "null probe for channel " + name);
    channels_.push_back({std::move(name), std::move(probe)});
}

void trace_file::sample(double t) {
    if (!header_written_) {
        write_header();
        header_written_ = true;
    }
    std::vector<double> values;
    values.reserve(channels_.size());
    for (const auto& ch : channels_) values.push_back(ch.probe());
    write_row(t, values);
}

void trace_file::replay_row(double t, const std::vector<double>& values) {
    require(values.size() == channels_.size(), "trace_file",
            "replay_row value count does not match channel count");
    if (!header_written_) {
        write_header();
        header_written_ = true;
    }
    write_row(t, values);
}

// ---------------------------------------------------------------- tabular --

tabular_trace_file::tabular_trace_file(const std::string& path) : out_(path) {
    require(out_.good(), "tabular_trace_file", "cannot open " + path);
}

tabular_trace_file::~tabular_trace_file() { close(); }

void tabular_trace_file::close() {
    if (out_.is_open()) out_.close();
}

void tabular_trace_file::write_header() {
    out_ << "%time";
    for (const auto& ch : channels_) out_ << ' ' << ch.name;
    out_ << '\n';
}

void tabular_trace_file::write_row(double t, const std::vector<double>& values) {
    out_ << t;
    for (double v : values) out_ << ' ' << v;
    out_ << '\n';
}

// -------------------------------------------------------------------- vcd --

namespace {
std::string vcd_identifier(std::size_t index) {
    // Printable identifier characters per the VCD grammar: '!' .. '~'.
    std::string id;
    do {
        id.push_back(static_cast<char>('!' + index % 94));
        index /= 94;
    } while (index > 0);
    return id;
}
}  // namespace

vcd_trace_file::vcd_trace_file(const std::string& path, double time_resolution)
    : out_(path), resolution_(time_resolution) {
    require(out_.good(), "vcd_trace_file", "cannot open " + path);
    require(time_resolution > 0.0, "vcd_trace_file", "time resolution must be positive");
}

vcd_trace_file::~vcd_trace_file() { close(); }

void vcd_trace_file::close() {
    if (out_.is_open()) out_.close();
}

void vcd_trace_file::write_header() {
    out_ << "$timescale 1 ps $end\n$scope module sca $end\n";
    for (std::size_t i = 0; i < channels_.size(); ++i) {
        out_ << "$var real 64 " << vcd_identifier(i) << ' ' << channels_[i].name << " $end\n";
    }
    out_ << "$upscope $end\n$enddefinitions $end\n";
    last_.assign(channels_.size(), std::nan(""));
}

void vcd_trace_file::write_row(double t, const std::vector<double>& values) {
    const auto stamp = static_cast<long long>(std::llround(t / resolution_));
    bool stamp_emitted = false;
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (values[i] == last_[i]) continue;
        if (!stamp_emitted && stamp != last_stamp_) {
            out_ << '#' << stamp << '\n';
            last_stamp_ = stamp;
            stamp_emitted = true;
        }
        out_ << 'r' << values[i] << ' ' << vcd_identifier(i) << '\n';
        last_[i] = values[i];
    }
}

// ----------------------------------------------------------------- memory --

std::vector<double> memory_trace::column(std::size_t c) const {
    require(c < channel_count(), "memory_trace", "column index out of range");
    std::vector<double> col;
    col.reserve(rows_.size());
    for (const auto& row : rows_) col.push_back(row[c]);
    return col;
}

void memory_trace::write_row(double t, const std::vector<double>& values) {
    times_.push_back(t);
    rows_.push_back(values);
}

}  // namespace sca::util
