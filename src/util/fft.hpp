// Radix-2 FFT and spectral helpers used by the frequency-domain benches and
// by the measurement utilities (SNR, THD).
#ifndef SCA_UTIL_FFT_HPP
#define SCA_UTIL_FFT_HPP

#include <complex>
#include <cstddef>
#include <vector>

namespace sca::util {

/// In-place radix-2 decimation-in-time FFT. `data.size()` must be a power of
/// two. `inverse` selects the inverse transform (scaled by 1/N).
void fft(std::vector<std::complex<double>>& data, bool inverse = false);

/// Forward FFT of a real signal; returns the full complex spectrum.
/// The input is zero-padded to the next power of two.
[[nodiscard]] std::vector<std::complex<double>> fft_real(const std::vector<double>& signal);

/// Single-sided magnitude spectrum of a real signal sampled at `fs` Hz.
/// Returns (frequency, magnitude) pairs for bins 0..N/2. A Hann window is
/// applied when `hann` is true (magnitudes are corrected for coherent gain).
struct spectrum_bin {
    double frequency;
    double magnitude;
};
[[nodiscard]] std::vector<spectrum_bin> magnitude_spectrum(const std::vector<double>& signal,
                                                           double fs, bool hann = true);

/// Next power of two >= n (and >= 1).
[[nodiscard]] std::size_t next_pow2(std::size_t n) noexcept;

}  // namespace sca::util

#endif  // SCA_UTIL_FFT_HPP
