#include "util/telemetry.hpp"

#include <algorithm>
#include <locale>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sca::util {

// ---------------------------------------------------------------- histogram --

void histogram::record(double v) noexcept {
    const std::uint64_t n = count_.fetch_add(1, std::memory_order_relaxed);
    double s = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(s, s + v, std::memory_order_relaxed)) {
    }
    if (n == 0) {
        // First sample seeds both extremes.  A concurrent first sample loses
        // the n==0 race and goes through the CAS loops below instead, so the
        // extremes stay correct either way.
        min_.store(v, std::memory_order_relaxed);
        max_.store(v, std::memory_order_relaxed);
        return;
    }
    double lo = min_.load(std::memory_order_relaxed);
    while (v < lo && !min_.compare_exchange_weak(lo, v, std::memory_order_relaxed)) {
    }
    double hi = max_.load(std::memory_order_relaxed);
    while (v > hi && !max_.compare_exchange_weak(hi, v, std::memory_order_relaxed)) {
    }
}

void histogram::reset() noexcept {
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    min_.store(0.0, std::memory_order_relaxed);
    max_.store(0.0, std::memory_order_relaxed);
}

double histogram::min() const noexcept {
    return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double histogram::max() const noexcept {
    return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

// --------------------------------------------------------- metrics_registry --

counter& metrics_registry::get_counter(const std::string& name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = by_name_.find(name);
    if (it != by_name_.end()) {
        const entry& e = entries_[it->second];
        if (e.k != kind::counter)
            throw std::logic_error("metric '" + name + "' already registered with another kind");
        return counters_[e.slot];
    }
    counters_.emplace_back();
    by_name_.emplace(name, entries_.size());
    entries_.push_back({name, kind::counter, counters_.size() - 1});
    return counters_.back();
}

gauge& metrics_registry::get_gauge(const std::string& name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = by_name_.find(name);
    if (it != by_name_.end()) {
        const entry& e = entries_[it->second];
        if (e.k != kind::gauge)
            throw std::logic_error("metric '" + name + "' already registered with another kind");
        return gauges_[e.slot];
    }
    gauges_.emplace_back();
    by_name_.emplace(name, entries_.size());
    entries_.push_back({name, kind::gauge, gauges_.size() - 1});
    return gauges_.back();
}

histogram& metrics_registry::get_histogram(const std::string& name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = by_name_.find(name);
    if (it != by_name_.end()) {
        const entry& e = entries_[it->second];
        if (e.k != kind::histogram)
            throw std::logic_error("metric '" + name + "' already registered with another kind");
        return histograms_[e.slot];
    }
    histograms_.emplace_back();
    by_name_.emplace(name, entries_.size());
    entries_.push_back({name, kind::histogram, histograms_.size() - 1});
    return histograms_.back();
}

void metrics_registry::reset() {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (counter& c : counters_) c.set(0);
    for (gauge& g : gauges_) g.set(0.0);
    for (histogram& h : histograms_) h.reset();
}

namespace {

void sort_by_name(metrics_snapshot& snap) {
    std::sort(snap.begin(), snap.end(),
              [](const metric_value& a, const metric_value& b) { return a.name < b.name; });
}

}  // namespace

metrics_snapshot metrics_registry::snapshot() const {
    metrics_snapshot snap;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        snap.reserve(entries_.size());
        for (const entry& e : entries_) {
            metric_value mv;
            mv.name = e.name;
            switch (e.k) {
            case kind::counter:
                mv.kind = metric_value::metric_kind::counter;
                mv.count = counters_[e.slot].value();
                break;
            case kind::gauge:
                mv.kind = metric_value::metric_kind::gauge;
                mv.value = gauges_[e.slot].value();
                break;
            case kind::histogram: {
                const histogram& h = histograms_[e.slot];
                mv.kind = metric_value::metric_kind::histogram;
                mv.count = h.count();
                mv.value = h.sum();
                mv.min = h.min();
                mv.max = h.max();
                break;
            }
            }
            snap.push_back(std::move(mv));
        }
    }
    sort_by_name(snap);
    return snap;
}

metrics_snapshot metrics_registry::wire_snapshot() const {
    metrics_snapshot snap = snapshot();
    snap.erase(std::remove_if(snap.begin(), snap.end(),
                              [](const metric_value& mv) {
                                  return mv.kind == metric_value::metric_kind::histogram;
                              }),
               snap.end());
    return snap;
}

std::size_t metrics_registry::size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

// ------------------------------------------------------------------- export --

namespace {

void write_json_string(std::ostream& os, const std::string& s) {
    os << '"';
    for (char c : s) {
        switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\r': os << "\\r"; break;
        case '\t': os << "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char* hex = "0123456789abcdef";
                os << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

const char* kind_name(metric_value::metric_kind k) {
    switch (k) {
    case metric_value::metric_kind::counter: return "counter";
    case metric_value::metric_kind::gauge: return "gauge";
    case metric_value::metric_kind::histogram: return "histogram";
    }
    return "?";
}

// JSON/CSV numbers must be locale-independent and round-trip exactly; go
// through a fresh stream with max_digits10 rather than the caller's state.
std::string fmt_double(double v) {
    std::ostringstream ss;
    ss.imbue(std::locale::classic());
    ss.precision(17);
    ss << v;
    return ss.str();
}

void write_metric_json(std::ostream& os, const metric_value& mv) {
    os << "{\"name\":";
    write_json_string(os, mv.name);
    os << ",\"kind\":\"" << kind_name(mv.kind) << '"';
    switch (mv.kind) {
    case metric_value::metric_kind::counter:
        os << ",\"value\":" << mv.count;
        break;
    case metric_value::metric_kind::gauge:
        os << ",\"value\":" << fmt_double(mv.value);
        break;
    case metric_value::metric_kind::histogram:
        os << ",\"count\":" << mv.count << ",\"sum\":" << fmt_double(mv.value)
           << ",\"min\":" << fmt_double(mv.min) << ",\"max\":" << fmt_double(mv.max);
        break;
    }
    os << '}';
}

}  // namespace

void write_metrics_json(std::ostream& os, const metrics_snapshot& snap) {
    os << "{\"metrics\":[";
    for (std::size_t i = 0; i < snap.size(); ++i) {
        if (i != 0) os << ',';
        write_metric_json(os, snap[i]);
    }
    os << "]}";
}

void metrics_registry::write_json(std::ostream& os) const {
    write_metrics_json(os, snapshot());
}

void metrics_registry::write_csv(std::ostream& os) const {
    os << "name,kind,count,value,min,max\n";
    for (const metric_value& mv : snapshot()) {
        os << mv.name << ',' << kind_name(mv.kind) << ',' << mv.count << ','
           << fmt_double(mv.value) << ',' << fmt_double(mv.min) << ',' << fmt_double(mv.max)
           << '\n';
    }
}

}  // namespace sca::util
