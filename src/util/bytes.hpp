// Little-endian byte codec shared by the snapshot subsystem (core/snapshot)
// and any layer that serializes its own state through the save_state /
// restore_state hooks.  Lives in util so kernel/tdf headers can use it
// without creating a kernel -> core include cycle.
//
// Encoding discipline matches the SCA1 wire protocol (core/run_protocol):
// all integers little-endian regardless of host order, doubles as their raw
// IEEE-754 bit pattern (bit_cast to u64) so NaNs, signed zeros, infinities
// and denormals round-trip byte-exactly.  The reader throws sca::util::error
// on any short read instead of yielding garbage — truncated snapshots are
// refused, never silently repaired.
#ifndef SCA_UTIL_BYTES_HPP
#define SCA_UTIL_BYTES_HPP

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "util/report.hpp"

namespace sca::util {

/// FNV-1a (32-bit) — the same checksum the SCA1 framing uses.
[[nodiscard]] inline std::uint32_t fnv1a_32(const std::uint8_t* data,
                                            std::size_t n) noexcept {
    std::uint32_t h = 2166136261U;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 16777619U;
    }
    return h;
}

/// Append-only little-endian encoder.
class byte_writer {
public:
    void u8(std::uint8_t v) { buf_.push_back(v); }

    void u32(std::uint32_t v) {
        for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void u64(std::uint64_t v) {
        for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

    void boolean(bool v) { u8(v ? 1 : 0); }

    void str(const std::string& s) {
        u32(static_cast<std::uint32_t>(s.size()));
        buf_.insert(buf_.end(), s.begin(), s.end());
    }

    void f64_vec(const std::vector<double>& v) {
        u64(v.size());
        for (double d : v) f64(d);
    }

    void u64_vec(const std::vector<std::uint64_t>& v) {
        u64(v.size());
        for (std::uint64_t w : v) u64(w);
    }

    [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }
    [[nodiscard]] std::vector<std::uint8_t> take() noexcept { return std::move(buf_); }
    [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

private:
    std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian decoder over a borrowed byte range.
class byte_reader {
public:
    byte_reader(const std::uint8_t* data, std::size_t size)
        : data_(data), size_(size) {}

    explicit byte_reader(const std::vector<std::uint8_t>& v)
        : data_(v.data()), size_(v.size()) {}

    [[nodiscard]] std::uint8_t u8() {
        need(1);
        return data_[pos_++];
    }

    [[nodiscard]] std::uint32_t u32() {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) v |= std::uint32_t(data_[pos_ + i]) << (8 * i);
        pos_ += 4;
        return v;
    }

    [[nodiscard]] std::uint64_t u64() {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i) v |= std::uint64_t(data_[pos_ + i]) << (8 * i);
        pos_ += 8;
        return v;
    }

    [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

    [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }

    [[nodiscard]] bool boolean() { return u8() != 0; }

    [[nodiscard]] std::string str() {
        std::uint32_t n = u32();
        need(n);
        std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
        pos_ += n;
        return s;
    }

    [[nodiscard]] std::vector<double> f64_vec() {
        std::uint64_t n = u64();
        require(n <= remaining() / 8, "byte_reader", "vector length exceeds payload");
        std::vector<double> v;
        v.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = 0; i < n; ++i) v.push_back(f64());
        return v;
    }

    [[nodiscard]] std::vector<std::uint64_t> u64_vec() {
        std::uint64_t n = u64();
        require(n <= remaining() / 8, "byte_reader", "vector length exceeds payload");
        std::vector<std::uint64_t> v;
        v.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = 0; i < n; ++i) v.push_back(u64());
        return v;
    }

    [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }
    [[nodiscard]] bool at_end() const noexcept { return pos_ == size_; }
    [[nodiscard]] std::size_t position() const noexcept { return pos_; }

private:
    void need(std::size_t n) const {
        require(size_ - pos_ >= n, "byte_reader", "truncated payload");
    }

    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

}  // namespace sca::util

#endif  // SCA_UTIL_BYTES_HPP
