// Heterogeneous owned-object storage with deterministic teardown.
//
// Simulation models are built from non-copyable, non-movable objects (modules,
// signals, network components) whose constructors register them with the
// current simulation context.  A bag keeps such objects alive for exactly as
// long as the testbench (or test fixture) that created them, and destroys
// them in reverse construction order — children before the structures they
// registered with.  This replaces the "anchor with bare `new` and never
// delete" idiom, so leak checking can stay enabled under ASan.
#ifndef SCA_UTIL_OBJECT_BAG_HPP
#define SCA_UTIL_OBJECT_BAG_HPP

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

namespace sca::util {

class object_bag {
public:
    object_bag() = default;
    ~object_bag() { clear(); }

    object_bag(const object_bag&) = delete;
    object_bag& operator=(const object_bag&) = delete;

    /// Construct a T in place and own it; the reference stays valid until the
    /// bag is cleared or destroyed.
    template <typename T, typename... Args>
    T& make(Args&&... args) {
        auto item = std::make_unique<holder<T>>(std::forward<Args>(args)...);
        T& ref = item->value;
        items_.push_back(std::move(item));
        return ref;
    }

    /// Destroy all owned objects, newest first.
    void clear() {
        while (!items_.empty()) items_.pop_back();
    }

    [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
    [[nodiscard]] bool empty() const noexcept { return items_.empty(); }

private:
    struct holder_base {
        virtual ~holder_base() = default;
    };
    template <typename T>
    struct holder final : holder_base {
        template <typename... Args>
        explicit holder(Args&&... args) : value(std::forward<Args>(args)...) {}
        T value;
    };

    std::vector<std::unique_ptr<holder_base>> items_;
};

}  // namespace sca::util

#endif  // SCA_UTIL_OBJECT_BAG_HPP
