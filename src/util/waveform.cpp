#include "util/waveform.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/report.hpp"

namespace sca::util {

waveform waveform::dc(double value) {
    waveform w;
    w.dc_ = value;
    return w;
}

waveform waveform::sine(double amplitude, double frequency, double offset, double phase_rad,
                        double delay) {
    require(frequency > 0.0, "waveform::sine", "frequency must be positive");
    waveform w;
    w.dc_ = offset;
    w.fn_ = [=](double t) {
        return offset +
               amplitude * std::sin(2.0 * std::numbers::pi * frequency * (t - delay) +
                                    phase_rad);
    };
    return w;
}

waveform waveform::pulse(double v1, double v2, double delay, double rise, double fall,
                         double width, double period) {
    require(period > 0.0, "waveform::pulse", "period must be positive");
    require(rise + width + fall <= period, "waveform::pulse",
            "rise + width + fall must fit in the period");
    waveform w;
    w.dc_ = v1;
    w.fn_ = [=](double t) {
        if (t < delay) return v1;
        const double tp = std::fmod(t - delay, period);
        if (tp < rise) {
            return rise > 0.0 ? v1 + (v2 - v1) * tp / rise : v2;
        }
        if (tp < rise + width) return v2;
        if (tp < rise + width + fall) {
            return fall > 0.0 ? v2 + (v1 - v2) * (tp - rise - width) / fall : v1;
        }
        return v1;
    };
    return w;
}

waveform waveform::pwl(std::vector<std::pair<double, double>> points) {
    require(!points.empty(), "waveform::pwl", "at least one point required");
    require(std::is_sorted(points.begin(), points.end(),
                           [](const auto& a, const auto& b) { return a.first < b.first; }),
            "waveform::pwl", "points must be sorted by time");
    waveform w;
    w.dc_ = points.front().second;
    w.fn_ = [pts = std::move(points)](double t) {
        if (t <= pts.front().first) return pts.front().second;
        if (t >= pts.back().first) return pts.back().second;
        for (std::size_t i = 1; i < pts.size(); ++i) {
            if (t <= pts[i].first) {
                const double u =
                    (t - pts[i - 1].first) / (pts[i].first - pts[i - 1].first);
                return pts[i - 1].second + u * (pts[i].second - pts[i - 1].second);
            }
        }
        return pts.back().second;
    };
    return w;
}

waveform waveform::custom(std::function<double(double)> fn) {
    require(static_cast<bool>(fn), "waveform::custom", "null function");
    waveform w;
    w.dc_ = fn(0.0);
    w.fn_ = std::move(fn);
    return w;
}

}  // namespace sca::util
