// Data converters and mixed-signal glue: sample&hold, comparator, flash ADC,
// binary DAC (paper Figure 1: "A/D and D/A converters ... modelled as
// signal-flow blocks"; seed work [2]: module libraries with "functional
// models of relatively complex mixed-signal elements (e.g. flash ADC,
// switched capacitor DAC)").
#ifndef SCA_LIB_CONVERTERS_HPP
#define SCA_LIB_CONVERTERS_HPP

#include <cstdint>

#include "tdf/converter.hpp"
#include "tdf/module.hpp"

namespace sca::lib {

/// Ideal track-and-hold: holds the input sample for `hold` activations.
class sample_hold : public tdf::module {
public:
    tdf::in<double> in;
    tdf::out<double> out;

    sample_hold(const de::module_name& nm, unsigned hold_factor = 1);

    void set_attributes() override;
    void processing() override;

private:
    unsigned hold_factor_;
    double held_ = 0.0;
};

/// Comparator with hysteresis; optionally publishes to the DE world.
class comparator : public tdf::module {
public:
    tdf::in<double> in;
    tdf::out<bool> out;
    tdf::de_out<bool> de_out;  // optional DE notification (bind if needed)

    comparator(const de::module_name& nm, double threshold, double hysteresis = 0.0);

    void processing() override;

    [[nodiscard]] bool state() const noexcept { return state_; }

    /// Leave the DE port unbound if unused (bind() a dummy otherwise).
    void enable_de_output(de::signal<bool>& s) {
        de_out.bind(s);
        de_enabled_ = true;
    }

private:
    double threshold_;
    double hysteresis_;
    bool state_ = false;
    bool de_enabled_ = false;
};

/// Flash ADC: quantizes to a signed integer code with saturation; code and
/// quantized analog value are both produced.
class adc : public tdf::module {
public:
    tdf::in<double> in;
    tdf::out<std::int64_t> code;
    tdf::out<double> quantized;

    /// Full scale covers [-vref, +vref) with 2^bits levels.
    adc(const de::module_name& nm, unsigned bits, double vref);

    void processing() override;

    [[nodiscard]] double lsb() const noexcept { return lsb_; }

private:
    unsigned bits_;
    double vref_;
    double lsb_;
    std::int64_t max_code_;
    std::int64_t min_code_;
};

/// Binary-weighted DAC with optional per-bit mismatch errors.
class dac : public tdf::module {
public:
    tdf::in<std::int64_t> code;
    tdf::out<double> out;

    dac(const de::module_name& nm, unsigned bits, double vref);

    /// Relative weight error of each bit (index 0 = LSB), for INL studies.
    void set_bit_errors(std::vector<double> rel_errors);

    void processing() override;

private:
    unsigned bits_;
    double vref_;
    double lsb_;
    std::vector<double> bit_weight_;  // effective weight of each bit in volts
};

}  // namespace sca::lib

#endif  // SCA_LIB_CONVERTERS_HPP
