// Event-driven PWM generator (paper §4 [8]: power drivers with PWM control
// from the discrete world).  Pure DE module: two timed self-triggers per
// period, duty updated from a DE signal at each period boundary.
#ifndef SCA_LIB_PWM_HPP
#define SCA_LIB_PWM_HPP

#include "kernel/module.hpp"
#include "kernel/signal.hpp"

namespace sca::lib {

class pwm : public de::module {
public:
    /// Duty command in [0,1]; sampled at each period start.
    de::in<double> duty;
    de::out<bool> out;

    pwm(const de::module_name& nm, const de::time& period);

    [[nodiscard]] const de::time& period() const noexcept { return period_; }

private:
    void step();

    de::time period_;
    bool phase_high_ = false;
    de::time current_high_;
};

}  // namespace sca::lib

#endif  // SCA_LIB_PWM_HPP
