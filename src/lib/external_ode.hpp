// TDF wrapper around an external continuous-time engine — the executable
// demonstration of the paper's open solver-coupling objective (§3 "coupling
// with existing continuous-time simulators").  The wrapped engine (the
// in-tree RK4 stand-in, or any user-provided external_solver) advances the
// foreign model one TDF step per activation with zero-order-hold inputs.
#ifndef SCA_LIB_EXTERNAL_ODE_HPP
#define SCA_LIB_EXTERNAL_ODE_HPP

#include <memory>

#include "solver/external.hpp"
#include "tdf/module.hpp"

namespace sca::lib {

class external_ode : public tdf::module {
public:
    tdf::in<double> in;
    tdf::out<double> out;

    /// The wrapped engine must already be configured; `output_state` selects
    /// which state variable drives the TDF output.
    external_ode(const de::module_name& nm, std::unique_ptr<solver::external_solver> engine,
                 std::size_t output_state = 0);

    void processing() override;

    [[nodiscard]] solver::external_solver& engine() noexcept { return *engine_; }

private:
    std::unique_ptr<solver::external_solver> engine_;
    std::size_t output_state_;
    bool first_ = true;
};

}  // namespace sca::lib

#endif  // SCA_LIB_EXTERNAL_ODE_HPP
