#include "lib/converters.hpp"

#include <algorithm>
#include <cmath>

#include "util/report.hpp"

namespace sca::lib {

// --------------------------------------------------------------- sample_hold

sample_hold::sample_hold(const de::module_name& nm, unsigned hold_factor)
    : tdf::module(nm), in("in"), out("out"), hold_factor_(hold_factor) {
    util::require(hold_factor >= 1, name(), "hold factor must be >= 1");
}

void sample_hold::set_attributes() { out.set_rate(hold_factor_); }

void sample_hold::processing() {
    held_ = in.read();
    for (unsigned k = 0; k < hold_factor_; ++k) out.write(held_, k);
}

// ---------------------------------------------------------------- comparator

comparator::comparator(const de::module_name& nm, double threshold, double hysteresis)
    : tdf::module(nm), in("in"), out("out"), de_out("de_out"), threshold_(threshold),
      hysteresis_(hysteresis) {
    util::require(hysteresis >= 0.0, name(), "hysteresis must be non-negative");
    de_out.set_optional();
}

void comparator::processing() {
    const double x = in.read();
    if (state_) {
        if (x < threshold_ - hysteresis_ / 2.0) state_ = false;
    } else {
        if (x > threshold_ + hysteresis_ / 2.0) state_ = true;
    }
    out.write(state_);
    if (de_enabled_) de_out.write(state_);
}

// ----------------------------------------------------------------------- adc

adc::adc(const de::module_name& nm, unsigned bits, double vref)
    : tdf::module(nm), in("in"), code("code"), quantized("quantized"), bits_(bits),
      vref_(vref) {
    util::require(bits >= 1 && bits <= 62, name(), "bits must be in [1, 62]");
    util::require(vref > 0.0, name(), "vref must be positive");
    lsb_ = 2.0 * vref / std::pow(2.0, static_cast<double>(bits));
    max_code_ = (std::int64_t{1} << (bits - 1)) - 1;
    min_code_ = -(std::int64_t{1} << (bits - 1));
}

void adc::processing() {
    const double x = in.read();
    auto q = static_cast<std::int64_t>(std::floor(x / lsb_));
    q = std::clamp(q, min_code_, max_code_);
    code.write(q);
    quantized.write((static_cast<double>(q) + 0.5) * lsb_);
}

// ----------------------------------------------------------------------- dac

dac::dac(const de::module_name& nm, unsigned bits, double vref)
    : tdf::module(nm), code("code"), out("out"), bits_(bits), vref_(vref) {
    util::require(bits >= 1 && bits <= 62, name(), "bits must be in [1, 62]");
    util::require(vref > 0.0, name(), "vref must be positive");
    lsb_ = 2.0 * vref / std::pow(2.0, static_cast<double>(bits));
    bit_weight_.resize(bits);
    for (unsigned b = 0; b < bits; ++b) {
        bit_weight_[b] = lsb_ * std::pow(2.0, static_cast<double>(b));
    }
}

void dac::set_bit_errors(std::vector<double> rel_errors) {
    util::require(rel_errors.size() == bits_, name(), "one error per bit required");
    for (unsigned b = 0; b < bits_; ++b) {
        bit_weight_[b] = lsb_ * std::pow(2.0, static_cast<double>(b)) * (1.0 + rel_errors[b]);
    }
}

void dac::processing() {
    // Offset-binary decode of the signed code.
    const std::int64_t offset = std::int64_t{1} << (bits_ - 1);
    std::int64_t u = code.read() + offset;
    u = std::clamp<std::int64_t>(u, 0, (std::int64_t{1} << bits_) - 1);
    double v = -vref_;
    for (unsigned b = 0; b < bits_; ++b) {
        if ((u >> b) & 1) v += bit_weight_[b];
    }
    out.write(v + 0.5 * lsb_);
}

}  // namespace sca::lib
