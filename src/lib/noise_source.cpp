#include "lib/noise_source.hpp"

#include "util/report.hpp"

namespace sca::lib {

gaussian_noise_source::gaussian_noise_source(const de::module_name& nm, double rms,
                                             unsigned seed)
    : tdf::module(nm), out("out"), rng_(seed), dist_(0.0, rms) {
    util::require(rms >= 0.0, name(), "rms must be non-negative");
}

void gaussian_noise_source::processing() { out.write(dist_(rng_)); }

uniform_noise_source::uniform_noise_source(const de::module_name& nm, double amplitude,
                                           unsigned seed)
    : tdf::module(nm), out("out"), rng_(seed), dist_(-amplitude, amplitude) {
    util::require(amplitude >= 0.0, name(), "amplitude must be non-negative");
}

void uniform_noise_source::processing() { out.write(dist_(rng_)); }

}  // namespace sca::lib
