// Discrete-time filters for the dataflow world: FIR, biquad IIR (with
// bilinear-transform design from analog prototypes), and the multirate
// decimator/interpolator blocks the codec scenarios need (paper §2: signal
// processing applications "executing operations such as (de)coding,
// compressing, or filtering data streams with fixed sampling rates").
#ifndef SCA_LIB_FILTERS_HPP
#define SCA_LIB_FILTERS_HPP

#include <complex>
#include <vector>

#include "tdf/block.hpp"
#include "tdf/module.hpp"
#include "util/bytes.hpp"

namespace sca::lib {

/// Direct-form FIR filter.  Input history is kept in a sliding window so the
/// block path runs a contiguous correlation (no per-sample ring index math);
/// per-sample and block paths share the window and compute tap-identical
/// sums, so their outputs are bit-identical.
class fir : public tdf::module {
public:
    tdf::in<double> in;
    tdf::out<double> out;

    fir(const de::module_name& nm, std::vector<double> taps);

    void processing() override;
    [[nodiscard]] bool has_block_processing() const override { return true; }
    void processing(tdf::block_view& blk) override;

    /// z-domain frequency response at the module's resolved sample rate.
    [[nodiscard]] bool has_ac_model() const override { return true; }
    [[nodiscard]] std::complex<double> ac_response(double f) const override;

    [[nodiscard]] const std::vector<double>& taps() const noexcept { return taps_; }

    /// Windowed-sinc lowpass design: cutoff as a fraction of the sample rate
    /// (0 < fc < 0.5), Hamming window.
    static std::vector<double> design_lowpass(std::size_t n_taps, double fc_norm);

    // --- checkpoint/restore: the input history window -----------------------
    [[nodiscard]] bool has_snapshot_state() const noexcept override { return true; }
    void save_state(util::byte_writer& w) const override { w.f64_vec(hist_); }
    void restore_state(util::byte_reader& r) override { hist_ = r.f64_vec(); }

private:
    /// Dot product ending at hist_[end] (the newest sample of the firing).
    [[nodiscard]] double tap_sum(std::size_t end) const;
    void compact_history();

    std::vector<double> taps_;
    std::vector<double> hist_;  // last >= taps-1 inputs, newest at back
};

/// z-domain biquad section: y = (b0 x + b1 x1 + b2 x2) - a1 y1 - a2 y2.
struct biquad_coefficients {
    double b0, b1, b2;
    double a1, a2;
};

/// Bilinear transform of an analog biquad num/den (ascending s powers,
/// degree <= 2) at sample rate fs.
[[nodiscard]] biquad_coefficients bilinear(const std::vector<double>& num,
                                           const std::vector<double>& den, double fs);

class biquad : public tdf::module {
public:
    tdf::in<double> in;
    tdf::out<double> out;

    biquad(const de::module_name& nm, biquad_coefficients c);

    void processing() override;
    [[nodiscard]] bool has_block_processing() const override { return true; }
    void processing(tdf::block_view& blk) override;

    [[nodiscard]] bool has_ac_model() const override { return true; }
    [[nodiscard]] std::complex<double> ac_response(double f) const override;

    // --- checkpoint/restore: the two delay pairs ----------------------------
    [[nodiscard]] bool has_snapshot_state() const noexcept override { return true; }
    void save_state(util::byte_writer& w) const override {
        w.f64(x1_);
        w.f64(x2_);
        w.f64(y1_);
        w.f64(y2_);
    }
    void restore_state(util::byte_reader& r) override {
        x1_ = r.f64();
        x2_ = r.f64();
        y1_ = r.f64();
        y2_ = r.f64();
    }

private:
    biquad_coefficients c_;
    double x1_ = 0.0, x2_ = 0.0, y1_ = 0.0, y2_ = 0.0;
};

/// Rate decimator: consumes `factor` samples, produces their average (or the
/// last sample when `average` is false).
class decimator : public tdf::module {
public:
    tdf::in<double> in;
    tdf::out<double> out;

    decimator(const de::module_name& nm, unsigned factor, bool average = true);

    void set_attributes() override;
    void processing() override;
    [[nodiscard]] bool has_block_processing() const override { return true; }
    void processing(tdf::block_view& blk) override;

private:
    unsigned factor_;
    bool average_;
};

/// Rate interpolator: consumes one sample, produces `factor` linearly
/// interpolated samples.
class interpolator : public tdf::module {
public:
    tdf::in<double> in;
    tdf::out<double> out;

    interpolator(const de::module_name& nm, unsigned factor);

    void set_attributes() override;
    void processing() override;
    [[nodiscard]] bool has_block_processing() const override { return true; }
    void processing(tdf::block_view& blk) override;

    // --- checkpoint/restore: the previous input the ramp starts from --------
    [[nodiscard]] bool has_snapshot_state() const noexcept override { return true; }
    void save_state(util::byte_writer& w) const override { w.f64(previous_); }
    void restore_state(util::byte_reader& r) override { previous_ = r.f64(); }

private:
    unsigned factor_;
    double previous_ = 0.0;
};

}  // namespace sca::lib

#endif  // SCA_LIB_FILTERS_HPP
