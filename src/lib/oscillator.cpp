#include "lib/oscillator.hpp"

#include <cmath>
#include <numbers>

namespace sca::lib {

sine_source::sine_source(const de::module_name& nm, double amplitude, double frequency,
                         double phase_rad, double offset)
    : tdf::module(nm), out("out"), amplitude_(amplitude), frequency_(frequency),
      phase_(phase_rad), offset_(offset) {}

void sine_source::processing() {
    const double t = tdf_time().to_seconds();
    out.write(offset_ +
              amplitude_ * std::sin(2.0 * std::numbers::pi * frequency_ * t + phase_));
}

void sine_source::processing(tdf::block_view& blk) {
    double* y = blk.out_span(out);
    const std::uint64_t n = blk.count();
    // blk.time_at(i) is the same integer-femtosecond sum the per-sample path
    // sees, so to_seconds() (and the sample value) matches bit for bit.
    for (std::uint64_t i = 0; i < n; ++i) {
        const double t = blk.time_at(i).to_seconds();
        y[i] = offset_ +
               amplitude_ * std::sin(2.0 * std::numbers::pi * frequency_ * t + phase_);
    }
}

quadrature_oscillator::quadrature_oscillator(const de::module_name& nm, double amplitude,
                                             double frequency)
    : tdf::module(nm), out_i("out_i"), out_q("out_q"), amplitude_(amplitude),
      frequency_(frequency) {}

void quadrature_oscillator::processing() {
    const double t = tdf_time().to_seconds();
    const double w = 2.0 * std::numbers::pi * frequency_ * t;
    out_i.write(amplitude_ * std::cos(w));
    out_q.write(amplitude_ * std::sin(w));
}

void quadrature_oscillator::processing(tdf::block_view& blk) {
    double* yi = blk.out_span(out_i);
    double* yq = blk.out_span(out_q);
    const std::uint64_t n = blk.count();
    for (std::uint64_t i = 0; i < n; ++i) {
        const double t = blk.time_at(i).to_seconds();
        const double w = 2.0 * std::numbers::pi * frequency_ * t;
        yi[i] = amplitude_ * std::cos(w);
        yq[i] = amplitude_ * std::sin(w);
    }
}

waveform_source::waveform_source(const de::module_name& nm, util::waveform w)
    : tdf::module(nm), out("out"), wave_(std::move(w)) {}

void waveform_source::processing() { out.write(wave_.at(tdf_time().to_seconds())); }

void waveform_source::processing(tdf::block_view& blk) {
    double* y = blk.out_span(out);
    const std::uint64_t n = blk.count();
    for (std::uint64_t i = 0; i < n; ++i) y[i] = wave_.at(blk.time_at(i).to_seconds());
}

}  // namespace sca::lib
