#include "lib/oscillator.hpp"

#include <cmath>
#include <numbers>

namespace sca::lib {

sine_source::sine_source(const de::module_name& nm, double amplitude, double frequency,
                         double phase_rad, double offset)
    : tdf::module(nm), out("out"), amplitude_(amplitude), frequency_(frequency),
      phase_(phase_rad), offset_(offset) {}

void sine_source::processing() {
    const double t = tdf_time().to_seconds();
    out.write(offset_ +
              amplitude_ * std::sin(2.0 * std::numbers::pi * frequency_ * t + phase_));
}

quadrature_oscillator::quadrature_oscillator(const de::module_name& nm, double amplitude,
                                             double frequency)
    : tdf::module(nm), out_i("out_i"), out_q("out_q"), amplitude_(amplitude),
      frequency_(frequency) {}

void quadrature_oscillator::processing() {
    const double t = tdf_time().to_seconds();
    const double w = 2.0 * std::numbers::pi * frequency_ * t;
    out_i.write(amplitude_ * std::cos(w));
    out_q.write(amplitude_ * std::sin(w));
}

waveform_source::waveform_source(const de::module_name& nm, util::waveform w)
    : tdf::module(nm), out("out"), wave_(std::move(w)) {}

void waveform_source::processing() { out.write(wave_.at(tdf_time().to_seconds())); }

}  // namespace sca::lib
