#include "lib/external_ode.hpp"

#include "util/report.hpp"

namespace sca::lib {

external_ode::external_ode(const de::module_name& nm,
                           std::unique_ptr<solver::external_solver> engine,
                           std::size_t output_state)
    : tdf::module(nm), in("in"), out("out"), engine_(std::move(engine)),
      output_state_(output_state) {
    util::require(engine_ != nullptr, name(), "null external solver");
}

void external_ode::processing() {
    const double h = timestep().to_seconds();
    const double t = tdf_time().to_seconds();
    if (first_) {
        first_ = false;
        // First activation publishes the initial state; stepping starts at
        // the second sample, mirroring the embedded DAE modules.
    } else {
        engine_->advance(t - h, h, {in.read()});
    }
    const auto& x = engine_->state();
    util::require(output_state_ < x.size(), name(), "output state index out of range");
    out.write(x[output_state_]);
}

}  // namespace sca::lib
