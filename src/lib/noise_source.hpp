// Stochastic TDF sources: Gaussian white noise and uniform dither, for
// time-domain noise studies complementary to the small-signal noise solver.
#ifndef SCA_LIB_NOISE_SOURCE_HPP
#define SCA_LIB_NOISE_SOURCE_HPP

#include <random>

#include "tdf/module.hpp"

namespace sca::lib {

/// Gaussian white-noise source with the given RMS value; with a fixed seed
/// runs are reproducible.
class gaussian_noise_source : public tdf::module {
public:
    tdf::out<double> out;

    gaussian_noise_source(const de::module_name& nm, double rms, unsigned seed = 1);

    void processing() override;

private:
    std::mt19937 rng_;
    std::normal_distribution<double> dist_;
};

/// Uniform dither in [-amplitude, +amplitude].
class uniform_noise_source : public tdf::module {
public:
    tdf::out<double> out;

    uniform_noise_source(const de::module_name& nm, double amplitude, unsigned seed = 1);

    void processing() override;

private:
    std::mt19937 rng_;
    std::uniform_real_distribution<double> dist_;
};

}  // namespace sca::lib

#endif  // SCA_LIB_NOISE_SOURCE_HPP
