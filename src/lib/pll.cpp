#include "lib/pll.hpp"

#include <cmath>
#include <numbers>

#include "lib/mixer.hpp"
#include "tdf/connect.hpp"
#include "util/report.hpp"

namespace sca::lib {

pll::pll(const de::module_name& nm, double f0, double kv, double loop_bw)
    : tdf::module(nm), ref("ref"), out("out"), control("control"), f0_(f0), kv_(kv),
      loop_bw_(loop_bw) {
    util::require(f0 > 0.0 && kv != 0.0 && loop_bw > 0.0, name(),
                  "f0 and loop bandwidth must be positive, kv nonzero");
    f_now_ = f0;
}

void pll::initialize() {
    h_ = timestep().to_seconds();
    util::require(h_ > 0.0, name(), "PLL needs a resolved timestep");
    util::require(f0_ * h_ < 0.4, name(),
                  "TDF rate too low for the VCO frequency (need fs > 2.5 f0)");
    alpha_ = 1.0 - std::exp(-2.0 * std::numbers::pi * loop_bw_ * h_);
}

void pll::processing() {
    // Multiplying phase detector against the quadrature VCO output: for
    // small phase error e, ref*cos(phase) averages to (A/2) sin(e).
    const double pd = ref.read() * std::cos(phase_);
    // One-pole loop filter strips the 2f product.
    lf_state_ += alpha_ * (pd - lf_state_);
    // PI control drives the VCO.
    integ_ += ki_ * lf_state_ * h_;
    const double vctrl = kp_ * lf_state_ + integ_;
    f_now_ = f0_ + kv_ * vctrl;
    phase_ += 2.0 * std::numbers::pi * f_now_ * h_;
    if (phase_ > 2.0 * std::numbers::pi * 1e6) {
        phase_ = std::fmod(phase_, 2.0 * std::numbers::pi);
    }
    out.write(std::sin(phase_));
    control.write(vctrl);
}

// ------------------------------------------------------------ composite form

pll_loop_filter::pll_loop_filter(const de::module_name& nm, double loop_bw)
    : tdf::module(nm), in("in"), out("out"), loop_bw_(loop_bw) {
    util::require(loop_bw > 0.0, name(), "loop bandwidth must be positive");
}

void pll_loop_filter::initialize() {
    h_ = timestep().to_seconds();
    util::require(h_ > 0.0, name(), "loop filter needs a resolved timestep");
    alpha_ = 1.0 - std::exp(-2.0 * std::numbers::pi * loop_bw_ * h_);
}

void pll_loop_filter::processing() {
    // One-pole filter strips the 2f product, PI control drives the VCO.
    lf_state_ += alpha_ * (in.read() - lf_state_);
    integ_ += ki_ * lf_state_ * h_;
    out.write(kp_ * lf_state_ + integ_);
}

vco::vco(const de::module_name& nm, double f0, double kv)
    : tdf::module(nm), ctrl("ctrl"), out("out"), quad("quad"), f0_(f0), kv_(kv) {
    util::require(f0 > 0.0 && kv != 0.0, name(), "f0 must be positive, kv nonzero");
    f_now_ = f0;
}

void vco::initialize() {
    h_ = timestep().to_seconds();
    util::require(h_ > 0.0, name(), "VCO needs a resolved timestep");
    util::require(f0_ * h_ < 0.4, name(),
                  "TDF rate too low for the VCO frequency (need fs > 2.5 f0)");
}

void vco::processing() {
    f_now_ = f0_ + kv_ * ctrl.read();
    phase_ += 2.0 * std::numbers::pi * f_now_ * h_;
    if (phase_ > 2.0 * std::numbers::pi * 1e6) {
        phase_ = std::fmod(phase_, 2.0 * std::numbers::pi);
    }
    out.write(std::sin(phase_));
    quad.write(std::cos(phase_));
}

pll_loop::pll_loop(const de::module_name& nm, double f0, double kv, double loop_bw)
    : tdf::composite(nm), ref("ref"), out("out") {
    pd_ = &make_child<mixer>("pd", 1.0);
    filter_ = &make_child<pll_loop_filter>("filter", loop_bw);
    vco_ = &make_child<vco>("vco", f0, kv);
    pd_->rf.bind(ref);                          // forwarded reference input
    connect(pd_->out, filter_->in);             // PD product -> loop filter
    control_ = &connect(filter_->out, vco_->ctrl);  // control voltage
    // Feedback: quadrature VCO output closes the cycle with one delay token
    // whose initial value is cos(phase = 0) = 1, matching the monolithic
    // model's first phase-detector read.
    auto& fb = connect(vco_->quad, pd_->lo);
    pd_->lo.set_delay(1);
    fb.set_initial_value(1.0);
    vco_->out.bind(out);                        // exported in-phase output
}

}  // namespace sca::lib
