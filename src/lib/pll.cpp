#include "lib/pll.hpp"

#include <cmath>
#include <numbers>

#include "util/report.hpp"

namespace sca::lib {

pll::pll(const de::module_name& nm, double f0, double kv, double loop_bw)
    : tdf::module(nm), ref("ref"), out("out"), control("control"), f0_(f0), kv_(kv),
      loop_bw_(loop_bw) {
    util::require(f0 > 0.0 && kv != 0.0 && loop_bw > 0.0, name(),
                  "f0 and loop bandwidth must be positive, kv nonzero");
    f_now_ = f0;
}

void pll::initialize() {
    h_ = timestep().to_seconds();
    util::require(h_ > 0.0, name(), "PLL needs a resolved timestep");
    util::require(f0_ * h_ < 0.4, name(),
                  "TDF rate too low for the VCO frequency (need fs > 2.5 f0)");
    alpha_ = 1.0 - std::exp(-2.0 * std::numbers::pi * loop_bw_ * h_);
}

void pll::processing() {
    // Multiplying phase detector against the quadrature VCO output: for
    // small phase error e, ref*cos(phase) averages to (A/2) sin(e).
    const double pd = ref.read() * std::cos(phase_);
    // One-pole loop filter strips the 2f product.
    lf_state_ += alpha_ * (pd - lf_state_);
    // PI control drives the VCO.
    integ_ += ki_ * lf_state_ * h_;
    const double vctrl = kp_ * lf_state_ + integ_;
    f_now_ = f0_ + kv_ * vctrl;
    phase_ += 2.0 * std::numbers::pi * f_now_ * h_;
    if (phase_ > 2.0 * std::numbers::pi * 1e6) {
        phase_ = std::fmod(phase_, 2.0 * std::numbers::pi);
    }
    out.write(std::sin(phase_));
    control.write(vctrl);
}

}  // namespace sca::lib
