// Behavioral amplifier (paper phase 2: "more complex functional (signal-flow)
// models, e.g. amplifiers").  Gain, optional single-pole bandwidth limit,
// and supply-rail saturation; saturation makes it a nonlinearity test
// vehicle for distortion measurements.
#ifndef SCA_LIB_AMPLIFIER_HPP
#define SCA_LIB_AMPLIFIER_HPP

#include <complex>

#include "tdf/block.hpp"
#include "tdf/module.hpp"

namespace sca::lib {

class amplifier : public tdf::module {
public:
    tdf::in<double> in;
    tdf::out<double> out;

    amplifier(const de::module_name& nm, double gain, double v_max = 1e12,
              double v_min = -1e12);

    /// Single-pole bandwidth limit (Hz); 0 disables it.
    void set_bandwidth(double hz) { bandwidth_hz_ = hz; }
    /// Input-referred offset voltage.
    void set_offset(double v) { offset_ = v; }

    void set_attributes() override {}
    void initialize() override;
    void processing() override;
    [[nodiscard]] bool has_block_processing() const override { return true; }
    void processing(tdf::block_view& blk) override;

    /// Linearized small-signal model: gain with a single pole at the
    /// configured bandwidth (saturation ignored, as usual for AC).
    [[nodiscard]] bool has_ac_model() const override { return true; }
    [[nodiscard]] std::complex<double> ac_response(double f) const override;

private:
    double gain_;
    double v_max_, v_min_;
    double bandwidth_hz_ = 0.0;
    double offset_ = 0.0;
    double pole_state_ = 0.0;
    double alpha_ = 1.0;  // one-pole smoothing coefficient
};

}  // namespace sca::lib

#endif  // SCA_LIB_AMPLIFIER_HPP
