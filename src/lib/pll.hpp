// Phase-locked loop (paper phase 2: RF/wireless building blocks).
//
// Two forms are provided:
//  * lib::pll — the compact behavioral PLL in one TDF module (multiplying
//    phase detector, one-pole loop filter, PI control, VCO).  Keeping the
//    loop internal avoids any scheduling subtlety in the feedback path.
//  * lib::pll_loop — the same loop as a hierarchical composite of reusable
//    blocks (mixer PD, pll_loop_filter, vco) with an explicit one-sample
//    delay token closing the feedback cycle through the cluster schedule.
//    Because the monolithic model also updates the VCO phase after the
//    phase-detector read, the composite recursion is identical and the two
//    forms track each other sample for sample.
#ifndef SCA_LIB_PLL_HPP
#define SCA_LIB_PLL_HPP

#include "tdf/module.hpp"

namespace sca::lib {

class pll : public tdf::module {
public:
    tdf::in<double> ref;      // reference input (around f0)
    tdf::out<double> out;     // VCO output
    tdf::out<double> control;  // loop control voltage (for lock detection)

    /// `f0` free-running VCO frequency, `kv` VCO gain (Hz/V),
    /// `loop_bw` loop-filter bandwidth (Hz).
    pll(const de::module_name& nm, double f0, double kv, double loop_bw);

    /// PI controller gains (defaults give a well-damped lock for
    /// loop_bw ~ f0/100).
    void set_pi_gains(double kp, double ki) {
        kp_ = kp;
        ki_ = ki;
    }

    void initialize() override;
    void processing() override;

    /// Instantaneous VCO frequency (valid during simulation).
    [[nodiscard]] double vco_frequency() const noexcept { return f_now_; }

private:
    double f0_;
    double kv_;
    double loop_bw_;
    double kp_ = 4.0;
    double ki_ = 4000.0;
    double h_ = 0.0;        // resolved timestep
    double alpha_ = 1.0;    // loop-filter smoothing coefficient
    double phase_ = 0.0;    // VCO phase
    double lf_state_ = 0.0;  // loop-filter state
    double integ_ = 0.0;     // PI integrator
    double f_now_ = 0.0;
};

/// One-pole loop filter + PI controller (the control path of the PLL).
class pll_loop_filter : public tdf::module {
public:
    tdf::in<double> in;    // phase-detector product
    tdf::out<double> out;  // VCO control voltage

    pll_loop_filter(const de::module_name& nm, double loop_bw);

    void set_pi_gains(double kp, double ki) {
        kp_ = kp;
        ki_ = ki;
    }

    void initialize() override;
    void processing() override;

private:
    double loop_bw_;
    double kp_ = 4.0;
    double ki_ = 4000.0;
    double h_ = 0.0;
    double alpha_ = 1.0;
    double lf_state_ = 0.0;
    double integ_ = 0.0;
};

/// Voltage-controlled oscillator: f = f0 + kv * v(ctrl); `out` is the
/// in-phase (sin) output, `quad` the quadrature (cos) output used as the
/// phase-detector feedback.
class vco : public tdf::module {
public:
    tdf::in<double> ctrl;
    tdf::out<double> out;
    tdf::out<double> quad;

    vco(const de::module_name& nm, double f0, double kv);

    void initialize() override;
    void processing() override;

    /// Instantaneous frequency (valid during simulation).
    [[nodiscard]] double frequency() const noexcept { return f_now_; }

private:
    double f0_;
    double kv_;
    double h_ = 0.0;
    double phase_ = 0.0;
    double f_now_ = 0.0;
};

class mixer;

/// The PLL as a hierarchical composite: mixer phase detector, loop filter,
/// and VCO wired internally, with a one-sample delay token on the feedback
/// path (initial value cos(0) = 1).  Exposes the reference input and the
/// VCO output as forwarded ports; probe the control voltage through
/// control_signal().
class pll_loop : public tdf::composite {
public:
    tdf::in<double> ref;
    tdf::out<double> out;

    pll_loop(const de::module_name& nm, double f0, double kv, double loop_bw);

    void set_pi_gains(double kp, double ki) { filter_->set_pi_gains(kp, ki); }

    /// Instantaneous VCO frequency (valid during simulation).
    [[nodiscard]] double vco_frequency() const noexcept { return vco_->frequency(); }

    /// The interior control-voltage wire (for probing/lock detection).
    [[nodiscard]] const tdf::signal<double>& control_signal() const noexcept {
        return *control_;
    }

private:
    mixer* pd_ = nullptr;
    pll_loop_filter* filter_ = nullptr;
    vco* vco_ = nullptr;
    tdf::signal<double>* control_ = nullptr;
};

}  // namespace sca::lib

#endif  // SCA_LIB_PLL_HPP
