// Phase-locked loop (paper phase 2: RF/wireless building blocks).
//
// A compact behavioral PLL in one TDF module: multiplying phase detector,
// one-pole loop filter, PI control, and a voltage-controlled oscillator.
// Keeping the loop internal avoids inserting cluster-schedule delays into
// the feedback path, which would distort the loop dynamics.
#ifndef SCA_LIB_PLL_HPP
#define SCA_LIB_PLL_HPP

#include "tdf/module.hpp"

namespace sca::lib {

class pll : public tdf::module {
public:
    tdf::in<double> ref;      // reference input (around f0)
    tdf::out<double> out;     // VCO output
    tdf::out<double> control;  // loop control voltage (for lock detection)

    /// `f0` free-running VCO frequency, `kv` VCO gain (Hz/V),
    /// `loop_bw` loop-filter bandwidth (Hz).
    pll(const de::module_name& nm, double f0, double kv, double loop_bw);

    /// PI controller gains (defaults give a well-damped lock for
    /// loop_bw ~ f0/100).
    void set_pi_gains(double kp, double ki) {
        kp_ = kp;
        ki_ = ki;
    }

    void initialize() override;
    void processing() override;

    /// Instantaneous VCO frequency (valid during simulation).
    [[nodiscard]] double vco_frequency() const noexcept { return f_now_; }

private:
    double f0_;
    double kv_;
    double loop_bw_;
    double kp_ = 4.0;
    double ki_ = 4000.0;
    double h_ = 0.0;        // resolved timestep
    double alpha_ = 1.0;    // loop-filter smoothing coefficient
    double phase_ = 0.0;    // VCO phase
    double lf_state_ = 0.0;  // loop-filter state
    double integ_ = 0.0;     // PI integrator
    double f_now_ = 0.0;
};

}  // namespace sca::lib

#endif  // SCA_LIB_PLL_HPP
