#include "lib/amplifier.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/report.hpp"

namespace sca::lib {

amplifier::amplifier(const de::module_name& nm, double gain, double v_max, double v_min)
    : tdf::module(nm), in("in"), out("out"), gain_(gain), v_max_(v_max), v_min_(v_min) {
    util::require(v_max > v_min, name(), "saturation limits must satisfy v_max > v_min");
}

void amplifier::initialize() {
    if (bandwidth_hz_ > 0.0) {
        // Discrete one-pole equivalent of a continuous pole at bandwidth_hz_,
        // exact step response match at the TDF rate.
        const double h = timestep().to_seconds();
        alpha_ = 1.0 - std::exp(-2.0 * std::numbers::pi * bandwidth_hz_ * h);
    } else {
        alpha_ = 1.0;
    }
}

std::complex<double> amplifier::ac_response(double f) const {
    if (bandwidth_hz_ <= 0.0) return {gain_, 0.0};
    return gain_ / std::complex<double>(1.0, f / bandwidth_hz_);
}

void amplifier::processing() {
    const double target = gain_ * (in.read() + offset_);
    pole_state_ += alpha_ * (target - pole_state_);
    out.write(std::clamp(pole_state_, v_min_, v_max_));
}

void amplifier::processing(tdf::block_view& blk) {
    const double* x = blk.in_span(in);
    double* y = blk.out_span(out);
    const std::uint64_t n = blk.count();
    double state = pole_state_;
    for (std::uint64_t i = 0; i < n; ++i) {
        const double target = gain_ * (x[i] + offset_);
        state += alpha_ * (target - state);
        y[i] = std::clamp(state, v_min_, v_max_);
    }
    pole_state_ = state;
}

}  // namespace sca::lib
