// Signal generators for the dataflow world: sine source, quadrature local
// oscillator, and a generic waveform source driven by util::waveform.
#ifndef SCA_LIB_OSCILLATOR_HPP
#define SCA_LIB_OSCILLATOR_HPP

#include "tdf/block.hpp"
#include "tdf/module.hpp"
#include "util/waveform.hpp"

namespace sca::lib {

/// Sine source with optional phase-noise-like random phase walk.
class sine_source : public tdf::module {
public:
    tdf::out<double> out;

    sine_source(const de::module_name& nm, double amplitude, double frequency,
                double phase_rad = 0.0, double offset = 0.0);

    void processing() override;
    [[nodiscard]] bool has_block_processing() const override { return true; }
    void processing(tdf::block_view& blk) override;

private:
    double amplitude_, frequency_, phase_, offset_;
};

/// Quadrature oscillator producing I (cos) and Q (sin) outputs.
class quadrature_oscillator : public tdf::module {
public:
    tdf::out<double> out_i;
    tdf::out<double> out_q;

    quadrature_oscillator(const de::module_name& nm, double amplitude, double frequency);

    void processing() override;
    [[nodiscard]] bool has_block_processing() const override { return true; }
    void processing(tdf::block_view& blk) override;

private:
    double amplitude_, frequency_;
};

/// Arbitrary waveform source.
class waveform_source : public tdf::module {
public:
    tdf::out<double> out;

    waveform_source(const de::module_name& nm, util::waveform w);

    void processing() override;
    [[nodiscard]] bool has_block_processing() const override { return true; }
    void processing(tdf::block_view& blk) override;

private:
    util::waveform wave_;
};

}  // namespace sca::lib

#endif  // SCA_LIB_OSCILLATOR_HPP
