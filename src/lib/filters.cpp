#include "lib/filters.hpp"

#include <cmath>
#include <numbers>

#include "util/report.hpp"

namespace sca::lib {

// ----------------------------------------------------------------------- fir

fir::fir(const de::module_name& nm, std::vector<double> taps)
    : tdf::module(nm), in("in"), out("out"), taps_(std::move(taps)) {
    util::require(!taps_.empty(), name(), "FIR needs at least one tap");
    hist_.assign(taps_.size() - 1, 0.0);  // zero pre-history
    hist_.reserve(taps_.size() - 1 + 256);
}

double fir::tap_sum(std::size_t end) const {
    // acc += taps[k] * x[n-k], ascending k: the same order on both paths
    // keeps per-sample and block outputs bit-identical.
    double acc = 0.0;
    const double* h = hist_.data() + end;
    for (std::size_t k = 0; k < taps_.size(); ++k) acc += taps_[k] * h[-static_cast<std::ptrdiff_t>(k)];
    return acc;
}

void fir::compact_history() {
    // Keep the window bounded: slide the last taps-1 samples to the front
    // once the history grows past a few blocks.
    const std::size_t keep = taps_.size() - 1;
    if (hist_.size() > keep + 8192) {
        hist_.erase(hist_.begin(), hist_.end() - static_cast<std::ptrdiff_t>(keep));
    }
}

void fir::processing() {
    hist_.push_back(in.read());
    out.write(tap_sum(hist_.size() - 1));
    compact_history();
}

void fir::processing(tdf::block_view& blk) {
    const double* x = blk.in_span(in);
    double* y = blk.out_span(out);
    const std::uint64_t n = blk.count();
    const std::size_t h0 = hist_.size();
    hist_.insert(hist_.end(), x, x + n);
    for (std::uint64_t i = 0; i < n; ++i) y[i] = tap_sum(h0 + i);
    compact_history();
}

std::complex<double> fir::ac_response(double f) const {
    // H(e^{jwT}) with T the resolved port timestep.
    const double t = timestep().to_seconds();
    util::require(t > 0.0, name(), "ac_response before elaboration");
    std::complex<double> h = 0.0;
    for (std::size_t k = 0; k < taps_.size(); ++k) {
        const double phi = -2.0 * std::numbers::pi * f * t * static_cast<double>(k);
        h += taps_[k] * std::complex<double>(std::cos(phi), std::sin(phi));
    }
    return h;
}

std::vector<double> fir::design_lowpass(std::size_t n_taps, double fc_norm) {
    util::require(n_taps >= 3, "fir::design_lowpass", "need at least 3 taps");
    util::require(fc_norm > 0.0 && fc_norm < 0.5, "fir::design_lowpass",
                  "cutoff must be in (0, 0.5) of the sample rate");
    std::vector<double> taps(n_taps);
    const double m = static_cast<double>(n_taps - 1);
    double sum = 0.0;
    for (std::size_t i = 0; i < n_taps; ++i) {
        const double x = static_cast<double>(i) - m / 2.0;
        const double sinc = x == 0.0 ? 2.0 * fc_norm
                                     : std::sin(2.0 * std::numbers::pi * fc_norm * x) /
                                           (std::numbers::pi * x);
        const double hamming =
            0.54 - 0.46 * std::cos(2.0 * std::numbers::pi * static_cast<double>(i) / m);
        taps[i] = sinc * hamming;
        sum += taps[i];
    }
    for (double& t : taps) t /= sum;  // unity DC gain
    return taps;
}

// ------------------------------------------------------------------ bilinear

biquad_coefficients bilinear(const std::vector<double>& num, const std::vector<double>& den,
                             double fs) {
    util::require(fs > 0.0, "bilinear", "sample rate must be positive");
    util::require(num.size() <= 3 && den.size() <= 3 && !den.empty(), "bilinear",
                  "analog sections of degree <= 2 only");
    const double k = 2.0 * fs;  // s <- k (1 - z^-1) / (1 + z^-1)
    auto c = [&](const std::vector<double>& p, std::size_t i) {
        return i < p.size() ? p[i] : 0.0;
    };
    // Substitute and collect powers of z^-1:
    //   p0 + p1 s + p2 s^2  ->  (p0 (1+z)^2 + p1 k (1-z)(1+z) + p2 k^2 (1-z)^2) / (1+z)^2
    const double n0 = c(num, 0) + c(num, 1) * k + c(num, 2) * k * k;
    const double n1 = 2.0 * c(num, 0) - 2.0 * c(num, 2) * k * k;
    const double n2 = c(num, 0) - c(num, 1) * k + c(num, 2) * k * k;
    const double d0 = c(den, 0) + c(den, 1) * k + c(den, 2) * k * k;
    const double d1 = 2.0 * c(den, 0) - 2.0 * c(den, 2) * k * k;
    const double d2 = c(den, 0) - c(den, 1) * k + c(den, 2) * k * k;
    util::require(d0 != 0.0, "bilinear", "degenerate denominator after transform");
    return {n0 / d0, n1 / d0, n2 / d0, d1 / d0, d2 / d0};
}

// -------------------------------------------------------------------- biquad

biquad::biquad(const de::module_name& nm, biquad_coefficients c)
    : tdf::module(nm), in("in"), out("out"), c_(c) {}

std::complex<double> biquad::ac_response(double f) const {
    const double t = timestep().to_seconds();
    util::require(t > 0.0, name(), "ac_response before elaboration");
    const double w = 2.0 * std::numbers::pi * f * t;
    const std::complex<double> z1(std::cos(-w), std::sin(-w));
    const std::complex<double> z2 = z1 * z1;
    return (c_.b0 + c_.b1 * z1 + c_.b2 * z2) / (1.0 + c_.a1 * z1 + c_.a2 * z2);
}

void biquad::processing() {
    const double x = in.read();
    const double y = c_.b0 * x + c_.b1 * x1_ + c_.b2 * x2_ - c_.a1 * y1_ - c_.a2 * y2_;
    x2_ = x1_;
    x1_ = x;
    y2_ = y1_;
    y1_ = y;
    out.write(y);
}

void biquad::processing(tdf::block_view& blk) {
    const double* xs = blk.in_span(in);
    double* ys = blk.out_span(out);
    const std::uint64_t n = blk.count();
    // The recurrence stays sequential; the win is one call (and zero ring
    // index math) per block instead of per sample.
    double x1 = x1_, x2 = x2_, y1 = y1_, y2 = y2_;
    for (std::uint64_t i = 0; i < n; ++i) {
        const double x = xs[i];
        const double y = c_.b0 * x + c_.b1 * x1 + c_.b2 * x2 - c_.a1 * y1 - c_.a2 * y2;
        x2 = x1;
        x1 = x;
        y2 = y1;
        y1 = y;
        ys[i] = y;
    }
    x1_ = x1;
    x2_ = x2;
    y1_ = y1;
    y2_ = y2;
}

// ----------------------------------------------------------------- decimator

decimator::decimator(const de::module_name& nm, unsigned factor, bool average)
    : tdf::module(nm), in("in"), out("out"), factor_(factor), average_(average) {
    util::require(factor >= 1, name(), "decimation factor must be >= 1");
}

void decimator::set_attributes() { in.set_rate(factor_); }

void decimator::processing() {
    if (average_) {
        double acc = 0.0;
        for (unsigned k = 0; k < factor_; ++k) acc += in.read(k);
        out.write(acc / factor_);
    } else {
        out.write(in.read(factor_ - 1));
    }
}

void decimator::processing(tdf::block_view& blk) {
    const double* x = blk.in_span(in);
    double* y = blk.out_span(out);
    const std::uint64_t n = blk.count();
    if (average_) {
        for (std::uint64_t i = 0; i < n; ++i) {
            const double* xi = x + i * factor_;
            double acc = 0.0;
            for (unsigned k = 0; k < factor_; ++k) acc += xi[k];
            y[i] = acc / factor_;
        }
    } else {
        for (std::uint64_t i = 0; i < n; ++i) y[i] = x[i * factor_ + factor_ - 1];
    }
}

// -------------------------------------------------------------- interpolator

interpolator::interpolator(const de::module_name& nm, unsigned factor)
    : tdf::module(nm), in("in"), out("out"), factor_(factor) {
    util::require(factor >= 1, name(), "interpolation factor must be >= 1");
}

void interpolator::set_attributes() { out.set_rate(factor_); }

void interpolator::processing() {
    const double x = in.read();
    for (unsigned k = 0; k < factor_; ++k) {
        const double u = static_cast<double>(k + 1) / static_cast<double>(factor_);
        out.write(previous_ + u * (x - previous_), k);
    }
    previous_ = x;
}

void interpolator::processing(tdf::block_view& blk) {
    const double* xs = blk.in_span(in);
    double* ys = blk.out_span(out);
    const std::uint64_t n = blk.count();
    double prev = previous_;
    for (std::uint64_t i = 0; i < n; ++i) {
        const double x = xs[i];
        double* yi = ys + i * factor_;
        for (unsigned k = 0; k < factor_; ++k) {
            const double u = static_cast<double>(k + 1) / static_cast<double>(factor_);
            yi[k] = prev + u * (x - prev);
        }
        prev = x;
    }
    previous_ = prev;
}

}  // namespace sca::lib
