#include "lib/sigma_delta.hpp"

#include <algorithm>

#include "tdf/connect.hpp"
#include "util/report.hpp"

namespace sca::lib {

sigma_delta_modulator::sigma_delta_modulator(const de::module_name& nm, unsigned order,
                                             double vref)
    : tdf::module(nm), in("in"), out("out"), order_(order), vref_(vref) {
    util::require(order == 1 || order == 2, name(), "order must be 1 or 2");
    util::require(vref > 0.0, name(), "vref must be positive");
}

void sigma_delta_modulator::processing() {
    const double x = in.read();
    double quantizer_in = 0.0;
    if (order_ == 1) {
        int1_ += x - (int1_ >= 0.0 ? vref_ : -vref_);
        quantizer_in = int1_;
    } else {
        // Classic 2nd-order loop: two integrators, feedback into both.
        const double fb = int2_ >= 0.0 ? vref_ : -vref_;
        int1_ += x - fb;
        int2_ += int1_ - fb;
        quantizer_in = int2_;
    }
    out.write(quantizer_in >= 0.0 ? vref_ : -vref_);
}

sinc3_decimator::sinc3_decimator(const de::module_name& nm, unsigned osr)
    : tdf::module(nm), in("in"), out("out"), osr_(osr) {
    util::require(osr >= 2, name(), "oversampling ratio must be >= 2");
    window_.assign(3UL * osr, 0.0);
}

void sinc3_decimator::set_attributes() { in.set_rate(osr_); }

void sinc3_decimator::processing() {
    // Shift the 3*OSR window by OSR new samples, then apply the triangular^2
    // (sinc^3) weighting.
    const std::size_t n = window_.size();
    for (std::size_t i = 0; i + osr_ < n; ++i) window_[i] = window_[i + osr_];
    for (unsigned k = 0; k < osr_; ++k) window_[n - osr_ + k] = in.read(k);

    // sinc^3 kernel = triple convolution of a length-OSR boxcar.
    double acc = 0.0;
    double norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        // Triangle-of-triangle weight via closed form: w(i) grows, plateaus,
        // and falls symmetrically; compute by counting boxcar overlaps.
        const auto m = static_cast<long>(osr_);
        const long x = static_cast<long>(i);
        long w = 0;
        // Number of (a,b) pairs with a+b+c = x, 0 <= a,b,c < m.
        const long lo = std::max(0L, x - 2 * (m - 1));
        const long hi = std::min(static_cast<long>(m - 1), x);
        for (long a = lo; a <= hi; ++a) {
            const long rem = x - a;
            const long bmin = std::max(0L, rem - (m - 1));
            const long bmax = std::min(m - 1, rem);
            if (bmax >= bmin) w += bmax - bmin + 1;
        }
        acc += static_cast<double>(w) * window_[i];
        norm += static_cast<double>(w);
    }
    out.write(acc / norm);
}

sigma_delta_adc::sigma_delta_adc(const de::module_name& nm, unsigned order, double vref,
                                 unsigned osr)
    : tdf::composite(nm), in("in"), out("out") {
    mod_ = &make_child<sigma_delta_modulator>("mod", order, vref);
    dec_ = &make_child<sinc3_decimator>("dec", osr);
    mod_->in.bind(in);            // forwarded oversampled input
    connect(mod_->out, dec_->in);  // the multirate boundary, inside the block
    dec_->out.bind(out);          // exported decimated output
}

}  // namespace sca::lib
