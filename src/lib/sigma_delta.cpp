#include "lib/sigma_delta.hpp"

#include <algorithm>

#include "tdf/connect.hpp"
#include "util/report.hpp"

namespace sca::lib {

sigma_delta_modulator::sigma_delta_modulator(const de::module_name& nm, unsigned order,
                                             double vref)
    : tdf::module(nm), in("in"), out("out"), order_(order), vref_(vref) {
    util::require(order == 1 || order == 2, name(), "order must be 1 or 2");
    util::require(vref > 0.0, name(), "vref must be positive");
}

void sigma_delta_modulator::processing() {
    const double x = in.read();
    double quantizer_in = 0.0;
    if (order_ == 1) {
        int1_ += x - (int1_ >= 0.0 ? vref_ : -vref_);
        quantizer_in = int1_;
    } else {
        // Classic 2nd-order loop: two integrators, feedback into both.
        const double fb = int2_ >= 0.0 ? vref_ : -vref_;
        int1_ += x - fb;
        int2_ += int1_ - fb;
        quantizer_in = int2_;
    }
    out.write(quantizer_in >= 0.0 ? vref_ : -vref_);
}

void sigma_delta_modulator::processing(tdf::block_view& blk) {
    const double* xs = blk.in_span(in);
    double* ys = blk.out_span(out);
    const std::uint64_t n = blk.count();
    if (order_ == 1) {
        double i1 = int1_;
        for (std::uint64_t i = 0; i < n; ++i) {
            i1 += xs[i] - (i1 >= 0.0 ? vref_ : -vref_);
            ys[i] = i1 >= 0.0 ? vref_ : -vref_;
        }
        int1_ = i1;
    } else {
        double i1 = int1_, i2 = int2_;
        for (std::uint64_t i = 0; i < n; ++i) {
            const double fb = i2 >= 0.0 ? vref_ : -vref_;
            i1 += xs[i] - fb;
            i2 += i1 - fb;
            ys[i] = i2 >= 0.0 ? vref_ : -vref_;
        }
        int1_ = i1;
        int2_ = i2;
    }
}

sinc3_decimator::sinc3_decimator(const de::module_name& nm, unsigned osr)
    : tdf::module(nm), in("in"), out("out"), osr_(osr) {
    util::require(osr >= 2, name(), "oversampling ratio must be >= 2");
    window_.assign(3UL * osr, 0.0);
    // sinc^3 kernel = triple convolution of a length-OSR boxcar; the weights
    // are integer overlap counts, so precomputing them (once, here) keeps the
    // arithmetic identical to recomputing per firing.
    weights_.resize(window_.size());
    norm_ = 0.0;
    const auto m = static_cast<long>(osr_);
    for (std::size_t i = 0; i < weights_.size(); ++i) {
        const long x = static_cast<long>(i);
        long w = 0;
        // Number of (a,b) pairs with a+b+c = x, 0 <= a,b,c < m.
        const long lo = std::max(0L, x - 2 * (m - 1));
        const long hi = std::min(m - 1, x);
        for (long a = lo; a <= hi; ++a) {
            const long rem = x - a;
            const long bmin = std::max(0L, rem - (m - 1));
            const long bmax = std::min(m - 1, rem);
            if (bmax >= bmin) w += bmax - bmin + 1;
        }
        weights_[i] = static_cast<double>(w);
        norm_ += static_cast<double>(w);
    }
}

void sinc3_decimator::set_attributes() { in.set_rate(osr_); }

double sinc3_decimator::window_dot() const {
    double acc = 0.0;
    for (std::size_t i = 0; i < window_.size(); ++i) acc += weights_[i] * window_[i];
    return acc / norm_;
}

void sinc3_decimator::processing() {
    // Shift the 3*OSR window by OSR new samples, then apply the sinc^3
    // weighting.
    const std::size_t n = window_.size();
    for (std::size_t i = 0; i + osr_ < n; ++i) window_[i] = window_[i + osr_];
    for (unsigned k = 0; k < osr_; ++k) window_[n - osr_ + k] = in.read(k);
    out.write(window_dot());
}

void sinc3_decimator::processing(tdf::block_view& blk) {
    const double* xs = blk.in_span(in);
    double* ys = blk.out_span(out);
    const std::uint64_t nfire = blk.count();
    const std::size_t n = window_.size();
    for (std::uint64_t f = 0; f < nfire; ++f) {
        for (std::size_t i = 0; i + osr_ < n; ++i) window_[i] = window_[i + osr_];
        const double* xf = xs + f * osr_;
        for (unsigned k = 0; k < osr_; ++k) window_[n - osr_ + k] = xf[k];
        ys[f] = window_dot();
    }
}

sigma_delta_adc::sigma_delta_adc(const de::module_name& nm, unsigned order, double vref,
                                 unsigned osr)
    : tdf::composite(nm), in("in"), out("out") {
    mod_ = &make_child<sigma_delta_modulator>("mod", order, vref);
    dec_ = &make_child<sinc3_decimator>("dec", osr);
    mod_->in.bind(in);            // forwarded oversampled input
    connect(mod_->out, dec_->in);  // the multirate boundary, inside the block
    dec_->out.bind(out);          // exported decimated output
}

}  // namespace sca::lib
