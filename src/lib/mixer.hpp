// RF building blocks: multiplying mixer with optional conversion gain and
// feed-through terms (paper §2: RF transceiver design at system level "is
// usually done using dataflow models to improve simulation efficiency").
#ifndef SCA_LIB_MIXER_HPP
#define SCA_LIB_MIXER_HPP

#include "tdf/block.hpp"
#include "tdf/module.hpp"

namespace sca::lib {

class mixer : public tdf::module {
public:
    tdf::in<double> rf;
    tdf::in<double> lo;
    tdf::out<double> out;

    explicit mixer(const de::module_name& nm, double conversion_gain = 1.0);

    /// RF and LO feed-through fractions model port isolation limits.
    void set_feedthrough(double rf_ft, double lo_ft) {
        rf_feedthrough_ = rf_ft;
        lo_feedthrough_ = lo_ft;
    }

    void processing() override;
    [[nodiscard]] bool has_block_processing() const override { return true; }
    void processing(tdf::block_view& blk) override;

private:
    double gain_;
    double rf_feedthrough_ = 0.0;
    double lo_feedthrough_ = 0.0;
};

}  // namespace sca::lib

#endif  // SCA_LIB_MIXER_HPP
