#include "lib/pwm.hpp"

#include <algorithm>
#include <cmath>

#include "util/report.hpp"

namespace sca::lib {

pwm::pwm(const de::module_name& nm, const de::time& period)
    : de::module(nm), duty("duty"), out("out"), period_(period) {
    util::require(period > de::time::zero(), name(), "PWM period must be positive");
    declare_method("step", [this] { step(); });
}

void pwm::step() {
    if (!phase_high_) {
        // Start of a period: sample the duty command.
        const double d = std::clamp(duty.read(), 0.0, 1.0);
        current_high_ = de::time::from_fs(static_cast<std::int64_t>(
            std::llround(static_cast<double>(period_.value_fs()) * d)));
        if (current_high_ > de::time::zero()) {
            out.write(true);
            phase_high_ = true;
            if (current_high_ < period_) {
                next_trigger(current_high_);
            } else {  // 100% duty: stay high a whole period
                phase_high_ = false;
                next_trigger(period_);
            }
        } else {  // 0% duty
            out.write(false);
            next_trigger(period_);
        }
    } else {
        out.write(false);
        phase_high_ = false;
        next_trigger(period_ - current_high_);
    }
}

}  // namespace sca::lib
