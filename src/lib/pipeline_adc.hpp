// Pipelined A/D converter with per-stage errors and digital correction —
// the seed-work scenario of Bonnerud et al. [2] (paper §4): functional-level
// exploration of pipelined architectures with accuracy comparable to a
// numerical reference.
//
// Each 1.5-bit stage resolves a coarse code and produces an amplified
// residue; redundancy plus digital correction absorbs comparator offsets.
// Per-stage gain error and offset model the analog impairments whose effect
// the digital noise cancellation in [2] explores.
#ifndef SCA_LIB_PIPELINE_ADC_HPP
#define SCA_LIB_PIPELINE_ADC_HPP

#include <cstdint>
#include <vector>

#include "tdf/module.hpp"

namespace sca::lib {

struct pipeline_stage_params {
    double gain_error = 0.0;   // relative error of the x2 residue amplifier
    double offset = 0.0;       // comparator offset (volts)
};

class pipeline_adc : public tdf::module {
public:
    tdf::in<double> in;
    tdf::out<std::int64_t> code;
    tdf::out<double> analog_estimate;  // reconstructed value (ideal backend DAC)

    /// `stages` 1.5-bit stages + final 1-bit flash => stages+1 output bits.
    pipeline_adc(const de::module_name& nm, unsigned stages, double vref);

    /// Inject per-stage impairments (defaults are ideal).
    void set_stage_params(std::vector<pipeline_stage_params> params);

    /// Disable the redundancy-based digital correction (raw binary
    /// recombination) to demonstrate why correction matters.
    void set_digital_correction(bool on) noexcept { correction_ = on; }

    void processing() override;

    [[nodiscard]] unsigned bits() const noexcept { return stages_ + 1; }

private:
    unsigned stages_;
    double vref_;
    bool correction_ = true;
    std::vector<pipeline_stage_params> params_;
};

}  // namespace sca::lib

#endif  // SCA_LIB_PIPELINE_ADC_HPP
