// Pipelined A/D converter with per-stage errors and digital correction —
// the seed-work scenario of Bonnerud et al. [2] (paper §4): functional-level
// exploration of pipelined architectures with accuracy comparable to a
// numerical reference.
//
// The converter is a hierarchical composite: a chain of 1.5-bit
// pipeline_stage modules feeding a pipeline_backend that resolves the final
// flash bit and recombines the stage codes (redundancy plus digital
// correction absorbs comparator offsets).  The composite exposes the same
// ports and knobs as the former monolithic module — in/code/analog_estimate,
// set_stage_params, set_digital_correction — and produces bit-identical
// output; stage modules are also usable standalone.
#ifndef SCA_LIB_PIPELINE_ADC_HPP
#define SCA_LIB_PIPELINE_ADC_HPP

#include <cstdint>
#include <vector>

#include "tdf/module.hpp"

namespace sca::lib {

struct pipeline_stage_params {
    double gain_error = 0.0;   // relative error of the x2 residue amplifier
    double offset = 0.0;       // comparator offset (volts)
};

/// One 1.5-bit pipeline stage: coarse decision (d in {-1,0,+1} with digital
/// correction, {-1,+1} without) plus the amplified residue.  The first stage
/// additionally clamps the converter input to the [-vref, vref] full scale.
class pipeline_stage : public tdf::module {
public:
    tdf::in<double> in;
    tdf::out<double> residue;
    tdf::out<int> d;

    pipeline_stage(const de::module_name& nm, double vref, bool first);

    void set_params(const pipeline_stage_params& p) noexcept { params_ = p; }
    void set_correction(bool on) noexcept { correction_ = on; }

    void processing() override;

private:
    double vref_;
    bool first_;
    bool correction_ = true;
    pipeline_stage_params params_;
};

/// Final 1-bit flash plus digital recombination of the stage codes.
class pipeline_backend : public tdf::module {
public:
    tdf::in<double> residue_in;
    tdf::out<std::int64_t> code;
    tdf::out<double> analog_estimate;  // reconstructed value (ideal backend DAC)

    pipeline_backend(const de::module_name& nm, unsigned stages, double vref);

    /// The per-stage code input (0 <= s < stages).
    [[nodiscard]] tdf::in<int>& d_in(unsigned s);

    void processing() override;

private:
    unsigned stages_;
    double vref_;
    std::vector<std::unique_ptr<tdf::in<int>>> d_in_;
};

/// The composite converter: `stages` 1.5-bit stages + final 1-bit flash
/// => stages+1 output bits.
class pipeline_adc : public tdf::composite {
public:
    tdf::in<double> in;                // forwarded to the first stage
    tdf::out<std::int64_t> code;       // forwarded from the backend
    tdf::out<double> analog_estimate;  // forwarded from the backend

    pipeline_adc(const de::module_name& nm, unsigned stages, double vref);

    /// Inject per-stage impairments (defaults are ideal).
    void set_stage_params(std::vector<pipeline_stage_params> params);

    /// Disable the redundancy-based digital correction (raw binary
    /// recombination) to demonstrate why correction matters.
    void set_digital_correction(bool on) noexcept;

    [[nodiscard]] unsigned bits() const noexcept { return stages_ + 1; }

    /// The stage chain (introspection/tests).
    [[nodiscard]] const std::vector<pipeline_stage*>& stages() const noexcept {
        return stages_v_;
    }

private:
    unsigned stages_;
    double vref_;
    std::vector<pipeline_stage*> stages_v_;
    pipeline_backend* backend_ = nullptr;
};

}  // namespace sca::lib

#endif  // SCA_LIB_PIPELINE_ADC_HPP
