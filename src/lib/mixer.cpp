#include "lib/mixer.hpp"

namespace sca::lib {

mixer::mixer(const de::module_name& nm, double conversion_gain)
    : tdf::module(nm), rf("rf"), lo("lo"), out("out"), gain_(conversion_gain) {}

void mixer::processing() {
    const double vrf = rf.read();
    const double vlo = lo.read();
    out.write(gain_ * vrf * vlo + rf_feedthrough_ * vrf + lo_feedthrough_ * vlo);
}

void mixer::processing(tdf::block_view& blk) {
    const double* vrf = blk.in_span(rf);
    const double* vlo = blk.in_span(lo);
    double* y = blk.out_span(out);
    const std::uint64_t n = blk.count();
    for (std::uint64_t i = 0; i < n; ++i) {
        y[i] = gain_ * vrf[i] * vlo[i] + rf_feedthrough_ * vrf[i] + lo_feedthrough_ * vlo[i];
    }
}

}  // namespace sca::lib
