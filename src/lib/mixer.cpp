#include "lib/mixer.hpp"

namespace sca::lib {

mixer::mixer(const de::module_name& nm, double conversion_gain)
    : tdf::module(nm), rf("rf"), lo("lo"), out("out"), gain_(conversion_gain) {}

void mixer::processing() {
    const double vrf = rf.read();
    const double vlo = lo.read();
    out.write(gain_ * vrf * vlo + rf_feedthrough_ * vrf + lo_feedthrough_ * vlo);
}

}  // namespace sca::lib
