#include "lib/pipeline_adc.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "tdf/connect.hpp"
#include "util/report.hpp"

namespace sca::lib {

// ------------------------------------------------------------ pipeline_stage

pipeline_stage::pipeline_stage(const de::module_name& nm, double vref, bool first)
    : tdf::module(nm), in("in"), residue("residue"), d("d"), vref_(vref), first_(first) {
    util::require(vref > 0.0, name(), "vref must be positive");
}

void pipeline_stage::processing() {
    // With digital correction: 1.5-bit decisions at +/- vref/4, codes
    // d in {-1, 0, +1}; the inter-stage redundancy absorbs comparator
    // offsets up to vref/4.  Without correction: plain binary decisions at 0
    // (d in {-1, +1}) whose residue leaves the valid range as soon as a
    // comparator decides wrongly — the failure mode the redundancy exists to
    // fix ([2]).
    double r = in.read();
    if (first_) r = std::clamp(r, -vref_, vref_);
    const double v = r + params_.offset;
    int ds = 0;
    if (correction_) {
        ds = v > vref_ / 4.0 ? 1 : (v < -vref_ / 4.0 ? -1 : 0);
    } else {
        ds = v >= 0.0 ? 1 : -1;
    }
    d.write(ds);
    const double gain = 2.0 * (1.0 + params_.gain_error);
    r = gain * r - static_cast<double>(ds) * vref_ * (1.0 + params_.gain_error);
    residue.write(std::clamp(r, -2.0 * vref_, 2.0 * vref_));
}

// ---------------------------------------------------------- pipeline_backend

pipeline_backend::pipeline_backend(const de::module_name& nm, unsigned stages,
                                   double vref)
    : tdf::module(nm), residue_in("residue_in"), code("code"),
      analog_estimate("analog_estimate"), stages_(stages), vref_(vref) {
    d_in_.reserve(stages);
    for (unsigned s = 0; s < stages; ++s) {
        d_in_.push_back(std::make_unique<tdf::in<int>>("d" + std::to_string(s)));
    }
}

tdf::in<int>& pipeline_backend::d_in(unsigned s) {
    util::require(s < stages_, name(), "stage index out of range");
    return *d_in_[s];
}

void pipeline_backend::processing() {
    // Final 1-bit flash on the last residue.
    const int last = residue_in.read() >= 0.0 ? 1 : -1;

    // Recombination: code = sum d_s * 2^(stages - s) + last.
    std::int64_t out_code = 0;
    for (unsigned s = 0; s < stages_; ++s) {
        const std::int64_t weight = std::int64_t{1}
                                    << static_cast<std::int64_t>(stages_ - s);
        out_code += static_cast<std::int64_t>(d_in_[s]->read()) * weight;
    }
    out_code += last;

    const std::int64_t max_code = (std::int64_t{1} << (stages_ + 1)) - 1;
    out_code = std::clamp<std::int64_t>(out_code, -max_code - 1, max_code);
    code.write(out_code);
    // Reconstruction with an ideal backend: LSB = vref / 2^stages ... the
    // code spans [-2^(stages+1), 2^(stages+1)-1] over [-vref, vref).
    analog_estimate.write(static_cast<double>(out_code) * vref_ /
                          std::pow(2.0, static_cast<double>(stages_ + 1)));
}

// -------------------------------------------------------------- pipeline_adc

pipeline_adc::pipeline_adc(const de::module_name& nm, unsigned stages, double vref)
    : tdf::composite(nm), in("in"), code("code"), analog_estimate("analog_estimate"),
      stages_(stages), vref_(vref) {
    util::require(stages >= 1 && stages <= 20, name(), "stages must be in [1, 20]");
    util::require(vref > 0.0, name(), "vref must be positive");
    backend_ = &make_child<pipeline_backend>("backend", stages, vref);
    stages_v_.reserve(stages);
    for (unsigned s = 0; s < stages; ++s) {
        auto& st =
            make_child<pipeline_stage>("stage" + std::to_string(s), vref, s == 0);
        if (s == 0) {
            st.in.bind(in);  // forwarded converter input
        } else {
            connect(stages_v_.back()->residue, st.in);
        }
        connect(st.d, backend_->d_in(s));
        stages_v_.push_back(&st);
    }
    connect(stages_v_.back()->residue, backend_->residue_in);
    backend_->code.bind(code);
    backend_->analog_estimate.bind(analog_estimate);
}

void pipeline_adc::set_stage_params(std::vector<pipeline_stage_params> params) {
    util::require(params.size() == stages_, name(), "one parameter set per stage required");
    for (unsigned s = 0; s < stages_; ++s) stages_v_[s]->set_params(params[s]);
}

void pipeline_adc::set_digital_correction(bool on) noexcept {
    for (pipeline_stage* s : stages_v_) s->set_correction(on);
}

}  // namespace sca::lib
