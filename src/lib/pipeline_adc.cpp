#include "lib/pipeline_adc.hpp"

#include <algorithm>
#include <cmath>

#include "util/report.hpp"

namespace sca::lib {

pipeline_adc::pipeline_adc(const de::module_name& nm, unsigned stages, double vref)
    : tdf::module(nm), in("in"), code("code"), analog_estimate("analog_estimate"),
      stages_(stages), vref_(vref) {
    util::require(stages >= 1 && stages <= 20, name(), "stages must be in [1, 20]");
    util::require(vref > 0.0, name(), "vref must be positive");
    params_.assign(stages, {});
}

void pipeline_adc::set_stage_params(std::vector<pipeline_stage_params> params) {
    util::require(params.size() == stages_, name(), "one parameter set per stage required");
    params_ = std::move(params);
}

void pipeline_adc::processing() {
    double residue = std::clamp(in.read(), -vref_, vref_);
    // With digital correction: 1.5-bit stages (decisions at +/- vref/4, codes
    // d in {-1, 0, +1}); the inter-stage redundancy absorbs comparator
    // offsets up to vref/4.  Without correction: plain binary stages
    // (decision at 0, d in {-1, +1}) whose residue leaves the valid range as
    // soon as a comparator decides wrongly — the failure mode the redundancy
    // exists to fix ([2]).
    std::vector<int> d(stages_);
    for (unsigned s = 0; s < stages_; ++s) {
        const double v = residue + params_[s].offset;
        int ds = 0;
        if (correction_) {
            ds = v > vref_ / 4.0 ? 1 : (v < -vref_ / 4.0 ? -1 : 0);
        } else {
            ds = v >= 0.0 ? 1 : -1;
        }
        d[s] = ds;
        const double gain = 2.0 * (1.0 + params_[s].gain_error);
        residue = gain * residue - static_cast<double>(ds) * vref_ *
                                      (1.0 + params_[s].gain_error);
        residue = std::clamp(residue, -2.0 * vref_, 2.0 * vref_);
    }
    // Final 1-bit flash.
    const int last = residue >= 0.0 ? 1 : -1;

    // Recombination: code = sum d_s * 2^(stages - s) + last.
    std::int64_t out_code = 0;
    for (unsigned s = 0; s < stages_; ++s) {
        const std::int64_t weight = std::int64_t{1}
                                    << static_cast<std::int64_t>(stages_ - s);
        out_code += static_cast<std::int64_t>(d[s]) * weight;
    }
    out_code += last;

    const std::int64_t max_code = (std::int64_t{1} << (stages_ + 1)) - 1;
    out_code = std::clamp<std::int64_t>(out_code, -max_code - 1, max_code);
    code.write(out_code);
    // Reconstruction with an ideal backend: LSB = vref / 2^stages ... the
    // code spans [-2^(stages+1), 2^(stages+1)-1] over [-vref, vref).
    analog_estimate.write(static_cast<double>(out_code) * vref_ /
                          std::pow(2.0, static_cast<double>(stages_ + 1)));
}

}  // namespace sca::lib
