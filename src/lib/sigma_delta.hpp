// Discrete-time sigma-delta modulators and the matching sinc decimation
// filter (the "sigma-delta prefi/pofi" blocks of the paper's Figure 1 ADSL
// codec).  First- and second-order single-bit modulators with the classic
// noise-shaping behavior, testable via the SNR-vs-OSR sweep.
#ifndef SCA_LIB_SIGMA_DELTA_HPP
#define SCA_LIB_SIGMA_DELTA_HPP

#include <vector>

#include "tdf/block.hpp"
#include "tdf/module.hpp"

namespace sca::lib {

/// Single-bit sigma-delta modulator (order 1 or 2); output is +/- vref.
class sigma_delta_modulator : public tdf::module {
public:
    tdf::in<double> in;
    tdf::out<double> out;

    sigma_delta_modulator(const de::module_name& nm, unsigned order = 2,
                          double vref = 1.0);

    void processing() override;
    [[nodiscard]] bool has_block_processing() const override { return true; }
    void processing(tdf::block_view& blk) override;

private:
    unsigned order_;
    double vref_;
    double int1_ = 0.0;
    double int2_ = 0.0;
};

/// Third-order sinc (CIC-style) decimator matched to a sigma-delta stream:
/// consumes `osr` samples per output sample.
class sinc3_decimator : public tdf::module {
public:
    tdf::in<double> in;
    tdf::out<double> out;

    sinc3_decimator(const de::module_name& nm, unsigned osr);

    void set_attributes() override;
    void processing() override;
    [[nodiscard]] bool has_block_processing() const override { return true; }
    void processing(tdf::block_view& blk) override;

private:
    /// One output sample from the current window contents.
    [[nodiscard]] double window_dot() const;

    unsigned osr_;
    // Sliding 3*OSR window of modulator samples, newest at the back.
    std::vector<double> window_;
    // sinc^3 kernel (triple boxcar convolution), precomputed with its norm.
    std::vector<double> weights_;
    double norm_ = 0.0;
};

/// Complete oversampling converter as a hierarchical composite: modulator
/// followed by the matched sinc3 decimator.  `in` runs at the oversampled
/// rate; `out` produces one sample per `osr` inputs — the multirate boundary
/// lives inside the composite and is resolved by the cluster schedule.
class sigma_delta_adc : public tdf::composite {
public:
    tdf::in<double> in;
    tdf::out<double> out;

    sigma_delta_adc(const de::module_name& nm, unsigned order, double vref,
                    unsigned osr);

    [[nodiscard]] sigma_delta_modulator& modulator() noexcept { return *mod_; }
    [[nodiscard]] sinc3_decimator& decimator() noexcept { return *dec_; }

private:
    sigma_delta_modulator* mod_;
    sinc3_decimator* dec_;
};

}  // namespace sca::lib

#endif  // SCA_LIB_SIGMA_DELTA_HPP
