#include "solver/dc.hpp"

#include <cmath>

#include "numeric/sparse.hpp"
#include "util/report.hpp"

namespace sca::solver {

namespace {

/// Factor A, falling back to (A + B/tau) when A is singular.
num::sparse_lu_d factor_dc_matrix(const equation_system& sys, double tau) {
    try {
        return num::sparse_lu_d(sys.a());
    } catch (const util::error&) {
        util::report_warning("dc_solve",
                             "A is singular; using pseudo-transient regularization");
        num::sparse_matrix_d m(sys.size());
        m.add_scaled(sys.a(), 1.0);
        m.add_scaled(sys.b(), 1.0 / tau);
        return num::sparse_lu_d(m);
    }
}

}  // namespace

std::vector<double> dc_solve(const equation_system& sys, double t0, const dc_options& opt) {
    const std::vector<double> q = sys.rhs(t0);
    if (sys.size() == 0) return {};

    if (sys.is_linear()) {
        return factor_dc_matrix(sys, opt.pseudo_tau).solve(q);
    }

    // Damped Newton from zero: F(x) = A x + g(x) - q.
    std::vector<double> x(sys.size(), 0.0);
    std::vector<double> residual(sys.size());
    std::vector<jacobian_entry> jac;

    auto eval_f = [&](const std::vector<double>& xi) {
        std::vector<double> f = sys.a().multiply(xi);
        residual.assign(sys.size(), 0.0);
        jac.clear();
        sys.eval_nonlinear(xi, residual, jac);
        for (std::size_t i = 0; i < f.size(); ++i) f[i] += residual[i] - q[i];
        return f;
    };

    std::vector<double> f = eval_f(x);
    double fnorm = num::norm_inf(f);
    for (int it = 0; it < opt.max_iterations; ++it) {
        if (fnorm < opt.abstol) return x;
        // J = A + dg/dx (+ B/tau regularization when A was singular: safe to
        // include always at DC since it only damps the iteration).
        num::sparse_matrix_d j(sys.size());
        j.add_scaled(sys.a(), 1.0);
        for (const auto& e : jac) j.add(e.row, e.col, e.value);
        num::sparse_lu_d jlu(j);
        const std::vector<double> dx = jlu.solve(f);

        // Damped update: halve until the residual shrinks (max 8 halvings).
        double damping = 1.0;
        for (int k = 0; k < 8; ++k) {
            std::vector<double> xn = x;
            for (std::size_t i = 0; i < xn.size(); ++i) xn[i] -= damping * dx[i];
            std::vector<double> fn = eval_f(xn);
            const double fn_norm = num::norm_inf(fn);
            if (fn_norm < fnorm || fn_norm < opt.abstol) {
                x = std::move(xn);
                f = std::move(fn);
                fnorm = fn_norm;
                break;
            }
            damping *= 0.5;
            if (k == 7) {  // accept the smallest step to escape plateaus
                x = std::move(xn);
                f = std::move(fn);
                fnorm = fn_norm;
            }
        }
        const double dx_norm = num::norm_inf(dx) * damping;
        if (dx_norm < opt.abstol + opt.reltol * num::norm_inf(x) && fnorm < opt.reltol) {
            return x;
        }
    }
    util::report_warning("dc_solve", "Newton did not fully converge; residual norm " +
                                         std::to_string(fnorm));
    return x;
}

}  // namespace sca::solver
