#include "solver/linear_dae.hpp"

#include <cmath>

#include "util/report.hpp"

namespace sca::solver {

linear_dae_solver::linear_dae_solver(equation_system& sys, integration_method method,
                                     double h)
    : sys_(&sys), method_(method), h_(h) {
    util::require(h > 0.0, "linear_dae_solver", "timestep must be positive");
    util::require(sys.is_linear(), "linear_dae_solver",
                  "system has nonlinear elements; use nonlinear_dae_solver");
    x_.assign(sys.size(), 0.0);
}

void linear_dae_solver::set_initial_state(std::vector<double> x0, double t0) {
    util::require(x0.size() == sys_->size(), "linear_dae_solver",
                  "initial state dimension mismatch");
    x_ = std::move(x0);
    t_ = t0;
    q_prev_ = sys_->rhs(t0);
}

void linear_dae_solver::set_timestep(double h) {
    util::require(h > 0.0, "linear_dae_solver", "timestep must be positive");
    if (h != h_) {
        h_ = h;
        factored_ = false;
    }
}

void linear_dae_solver::invalidate() { factored_ = false; }

void linear_dae_solver::ensure_factored(integration_method m) {
    if (factored_ && factored_method_ == m &&
        stamp_generation_ == sys_->stamp_generation()) {
        return;
    }
    // M = c_a * A + B / h   (c_a = 1 for BE, 1/2 for trapezoidal)
    const double ca = m == integration_method::backward_euler ? 1.0 : 0.5;
    num::sparse_matrix_d mat(sys_->size());
    mat.add_scaled(sys_->a(), ca);
    mat.add_scaled(sys_->b(), 1.0 / h_);
    if (use_dense_) {
        dense_lu_.factor(mat.to_dense());
    } else {
        lu_.factor(mat);
    }
    ++factors_;
    factored_ = true;
    factored_method_ = m;
    stamp_generation_ = sys_->stamp_generation();
}

void linear_dae_solver::step() {
    const integration_method m =
        be_next_ ? integration_method::backward_euler : method_;
    be_next_ = false;
    ensure_factored(m);
    const double t1 = t_ + h_;
    const std::vector<double> q1 = sys_->rhs(t1);
    const std::vector<double> bx = sys_->b().multiply(x_);

    std::vector<double> rhs(sys_->size());
    if (m == integration_method::backward_euler) {
        for (std::size_t i = 0; i < rhs.size(); ++i) rhs[i] = q1[i] + bx[i] / h_;
    } else {
        const std::vector<double> ax = sys_->a().multiply(x_);
        for (std::size_t i = 0; i < rhs.size(); ++i) {
            rhs[i] = 0.5 * (q1[i] + q_prev_[i]) + bx[i] / h_ - 0.5 * ax[i];
        }
    }
    x_ = use_dense_ ? dense_lu_.solve(rhs) : lu_.solve(rhs);
    ++solves_;
    t_ = t1;
    q_prev_ = q1;
}

void linear_dae_solver::advance_to(double t_end) {
    // Steps are counted, not accumulated in floating point, to avoid drift.
    const auto n = static_cast<long long>(std::llround((t_end - t_) / h_));
    for (long long i = 0; i < n; ++i) step();
}

}  // namespace sca::solver
