#include "solver/linear_dae.hpp"

#include <cmath>

#include "util/bytes.hpp"
#include "util/report.hpp"

namespace sca::solver {

linear_dae_solver::linear_dae_solver(equation_system& sys, integration_method method,
                                     double h)
    : sys_(&sys), method_(method), h_(h) {
    util::require(h > 0.0, "linear_dae_solver", "timestep must be positive");
    util::require(sys.is_linear(), "linear_dae_solver",
                  "system has nonlinear elements; use nonlinear_dae_solver");
    x_.assign(sys.size(), 0.0);
}

void linear_dae_solver::set_initial_state(std::vector<double> x0, double t0) {
    util::require(x0.size() == sys_->size(), "linear_dae_solver",
                  "initial state dimension mismatch");
    x_ = std::move(x0);
    t_ = t0;
    q_prev_ = sys_->rhs(t0);
}

void linear_dae_solver::set_timestep(double h) {
    util::require(h > 0.0, "linear_dae_solver", "timestep must be positive");
    if (h != h_) {
        h_ = h;
        factored_ = false;
    }
}

void linear_dae_solver::invalidate() { factored_ = false; }

void linear_dae_solver::ensure_factored(integration_method m) {
    const bool pattern_stale = stamp_generation_ != sys_->stamp_generation();
    const bool values_stale = values_generation_ != sys_->values_generation() ||
                              factored_method_ != m;
    if (factored_ && !pattern_stale && !values_stale) return;
    // M = c_a * A + B / h   (c_a = 1 for BE, 1/2 for trapezoidal)
    const double ca = m == integration_method::backward_euler ? 1.0 : 0.5;
    if (pattern_stale || !iter_mat_valid_) {
        // Pattern may have moved: rebuild the iteration matrix from scratch
        // (fresh pattern version forces a full symbolic factorization).
        iter_mat_ = num::sparse_matrix_d(sys_->size());
        iter_mat_valid_ = true;
    } else {
        // Values-only: reuse the pattern, rewrite the values in place.
        iter_mat_.zero_values();
    }
    iter_mat_.add_scaled(sys_->a(), ca);
    iter_mat_.add_scaled(sys_->b(), 1.0 / h_);
    if (use_dense_) {
        dense_lu_.factor(iter_mat_.to_dense());
        ++symbolic_factors_;
    } else if (!lu_.refactor(iter_mat_)) {
        lu_.factor(iter_mat_);
        ++symbolic_factors_;
    }
    ++factors_;
    factored_ = true;
    factored_method_ = m;
    stamp_generation_ = sys_->stamp_generation();
    values_generation_ = sys_->values_generation();
}

void linear_dae_solver::step() {
    // All scratch vectors are members reused across steps: when the TDF
    // synchronization layer batches many firings per DE interaction, each
    // step is one rhs assembly, one sparse mat-vec, and one triangular
    // solve against the cached factorization — no allocations, no refactor
    // (ensure_factored is a generation check unless the system restamped).
    const integration_method m =
        be_next_ ? integration_method::backward_euler : method_;
    be_next_ = false;
    ensure_factored(m);
    const double t1 = t_ + h_;
    sys_->rhs_into(t1, q1_);
    sys_->b().multiply_into(x_, bx_);

    rhs_.resize(sys_->size());
    if (m == integration_method::backward_euler) {
        for (std::size_t i = 0; i < rhs_.size(); ++i) rhs_[i] = q1_[i] + bx_[i] / h_;
    } else {
        sys_->a().multiply_into(x_, ax_);
        for (std::size_t i = 0; i < rhs_.size(); ++i) {
            rhs_[i] = 0.5 * (q1_[i] + q_prev_[i]) + bx_[i] / h_ - 0.5 * ax_[i];
        }
    }
    if (use_dense_) {
        dense_lu_.solve_into(rhs_, x_next_);
    } else {
        lu_.solve_into(rhs_, x_next_);
    }
    x_.swap(x_next_);
    ++solves_;
    t_ = t1;
    q_prev_.swap(q1_);
}

void linear_dae_solver::advance_to(double t_end) {
    // Steps are counted, not accumulated in floating point, to avoid drift.
    const auto n = static_cast<long long>(std::llround((t_end - t_) / h_));
    for (long long i = 0; i < n; ++i) step();
}

// --------------------------------------------------------------- snapshot --

void linear_dae_solver::save_state(util::byte_writer& w) const {
    w.u8(static_cast<std::uint8_t>(method_));
    w.f64(h_);
    w.f64(t_);
    w.f64_vec(x_);
    w.f64_vec(q_prev_);
    w.boolean(be_next_);
    w.boolean(use_dense_);
    w.boolean(factored_);
    w.u8(static_cast<std::uint8_t>(factored_method_));
    w.u64(stamp_generation_);
    w.u64(values_generation_);
    w.u64(factors_);
    w.u64(symbolic_factors_);
    w.u64(solves_);
    const bool has_symbolic = !use_dense_ && lu_.symbolic_valid();
    w.boolean(has_symbolic);
    if (has_symbolic) w.u64_vec(lu_.export_symbolic());
}

void linear_dae_solver::restore_state(util::byte_reader& r) {
    method_ = static_cast<integration_method>(r.u8());
    h_ = r.f64();
    t_ = r.f64();
    x_ = r.f64_vec();
    util::require(x_.size() == sys_->size(), "snapshot",
                  "linear solver: state dimension differs from rebuilt system");
    q_prev_ = r.f64_vec();
    util::require(q_prev_.size() == sys_->size(), "snapshot",
                  "linear solver: rhs history dimension differs from rebuilt system");
    be_next_ = r.boolean();
    use_dense_ = r.boolean();
    const bool was_factored = r.boolean();
    factored_method_ = static_cast<integration_method>(r.u8());
    const std::uint64_t stamp_gen = r.u64();
    const std::uint64_t values_gen = r.u64();
    const std::uint64_t factors = r.u64();
    const std::uint64_t symbolic_factors = r.u64();
    const std::uint64_t solves = r.u64();
    const bool has_symbolic = r.boolean();
    std::vector<std::uint64_t> symbolic;
    if (has_symbolic) symbolic = r.u64_vec();

    factored_ = false;
    iter_mat_valid_ = false;
    if (was_factored) {
        // Rebuild the iteration matrix the saving process held: its values
        // follow from the (already restored) A/B values and the factored
        // method/timestep, so the refactor below replays the exporting
        // process's last numeric factorization bit for bit.
        const double ca =
            factored_method_ == integration_method::backward_euler ? 1.0 : 0.5;
        iter_mat_ = num::sparse_matrix_d(sys_->size());
        iter_mat_.add_scaled(sys_->a(), ca);
        iter_mat_.add_scaled(sys_->b(), 1.0 / h_);
        iter_mat_valid_ = true;
        if (use_dense_) {
            dense_lu_.factor(iter_mat_.to_dense());
        } else {
            util::require(has_symbolic, "snapshot",
                          "linear solver: snapshot lacks the LU symbolic analysis");
            util::require(lu_.adopt_symbolic(symbolic, iter_mat_), "snapshot",
                          "linear solver: LU symbolic analysis does not fit the "
                          "rebuilt iteration matrix");
            util::require(lu_.refactor(iter_mat_), "snapshot",
                          "linear solver: numeric refactorization under the "
                          "restored pivot order failed");
        }
        factored_ = true;
    }
    stamp_generation_ = stamp_gen;
    values_generation_ = values_gen;
    factors_ = factors;
    symbolic_factors_ = symbolic_factors;
    solves_ = solves;
}

}  // namespace sca::solver
