#include "solver/nonlinear_dae.hpp"

#include <algorithm>
#include <cmath>

#include "numeric/sparse.hpp"
#include "solver/dc.hpp"
#include "util/report.hpp"

namespace sca::solver {

nonlinear_dae_solver::nonlinear_dae_solver(equation_system& sys, nonlinear_options opt)
    : sys_(&sys), opt_(opt), h_(opt.h_init) {
    util::require(opt.h_init > 0.0 && opt.h_min > 0.0 && opt.h_max >= opt.h_init,
                  "nonlinear_dae_solver", "inconsistent step-size options");
    x_.assign(sys.size(), 0.0);
}

void nonlinear_dae_solver::initialize(double t0) {
    set_initial_state(dc_solve(*sys_, t0), t0);
}

void nonlinear_dae_solver::set_initial_state(std::vector<double> x0, double t0) {
    util::require(x0.size() == sys_->size(), "nonlinear_dae_solver",
                  "initial state dimension mismatch");
    x_ = std::move(x0);
    t_ = t0;
    have_prev_ = false;
    h_ = opt_.h_init;
}

bool nonlinear_dae_solver::try_step(double h) {
    // Backward Euler:  (A + B/h) x1 + g(x1) = q(t1) + (B/h) x0
    const double t1 = t_ + h;
    const std::vector<double> q1 = sys_->rhs(t1);
    const std::vector<double> bx0 = sys_->b().multiply(x_);

    std::vector<double> rhs_fixed(sys_->size());
    for (std::size_t i = 0; i < rhs_fixed.size(); ++i) rhs_fixed[i] = q1[i] + bx0[i] / h;

    // A full restamp may have moved the pattern: start the persistent
    // matrices over (their fresh pattern versions force one symbolic
    // factorization); otherwise only rewrite values in place.
    if (!mats_valid_ || stamp_generation_ != sys_->stamp_generation()) {
        iter_mat_ = num::sparse_matrix_d(sys_->size());
        newton_mat_ = num::sparse_matrix_d(sys_->size());
        mats_valid_ = true;
        stamp_generation_ = sys_->stamp_generation();
    } else {
        iter_mat_.zero_values();
    }
    num::sparse_matrix_d& m = iter_mat_;
    m.add_scaled(sys_->a(), 1.0);
    m.add_scaled(sys_->b(), 1.0 / h);

    // Newton iteration starting from the current state (or the predictor).
    x_candidate_ = x_;
    if (have_prev_ && h_prev_ > 0.0) {
        const double r = h / h_prev_;
        for (std::size_t i = 0; i < x_candidate_.size(); ++i) {
            x_candidate_[i] = x_[i] + r * (x_[i] - x_prev_[i]);
        }
    }

    std::vector<double> residual(sys_->size());
    std::vector<jacobian_entry> jac;

    auto eval_f = [&](const std::vector<double>& xi, bool want_jacobian) {
        std::vector<double> f = m.multiply(xi);
        residual.assign(sys_->size(), 0.0);
        if (want_jacobian) jac.clear();
        std::vector<jacobian_entry> scratch;
        sys_->eval_nonlinear(xi, residual, want_jacobian ? jac : scratch);
        for (std::size_t i = 0; i < f.size(); ++i) f[i] += residual[i] - rhs_fixed[i];
        return f;
    };

    std::vector<double> f = eval_f(x_candidate_, true);
    double fnorm = num::norm_inf(f);
    for (int it = 0; it < opt_.newton.max_iterations; ++it) {
        ++newton_iters_;
        // Rebuild the Jacobian values into the persistent matrix; entries a
        // model stops reporting stay as explicit zeros, so the pattern only
        // grows and the symbolic factorization can be reused.
        newton_mat_.zero_values();
        newton_mat_.add_scaled(m, 1.0);
        for (const auto& e : jac) newton_mat_.add(e.row, e.col, e.value);
        if (!newton_lu_.refactor(newton_mat_)) {
            try {
                newton_lu_.factor(newton_mat_);
            } catch (const util::error&) {
                return false;  // singular Jacobian at this step size
            }
            ++symbolic_factorizations_;
        }
        ++factorizations_;
        const std::vector<double> dx = newton_lu_.solve(f);

        double damping = 1.0;
        bool improved = false;
        for (int k = 0; k < 6; ++k) {
            std::vector<double> xn = x_candidate_;
            for (std::size_t i = 0; i < xn.size(); ++i) xn[i] -= damping * dx[i];
            std::vector<double> fn = eval_f(xn, true);
            const double fn_norm = num::norm_inf(fn);
            if (fn_norm <= fnorm || fn_norm < opt_.newton.abstol) {
                x_candidate_ = std::move(xn);
                f = std::move(fn);
                fnorm = fn_norm;
                improved = true;
                break;
            }
            damping *= 0.5;
        }
        if (!improved) return false;

        const double dx_norm = num::norm_inf(dx) * damping;
        const double x_norm = num::norm_inf(x_candidate_);
        if (dx_norm < opt_.newton.abstol + opt_.newton.reltol * x_norm) return true;
    }
    return false;
}

double nonlinear_dae_solver::lte_estimate(double h) const {
    // Error proxy: corrector minus linear predictor, halved (BE local error).
    // Without history the predictor is the frozen state, which overestimates
    // the error and keeps the first steps conservative.
    double worst = 0.0;
    for (std::size_t i = 0; i < x_.size(); ++i) {
        double pred = x_[i];
        if (have_prev_ && h_prev_ > 0.0) {
            pred = x_[i] + (h / h_prev_) * (x_[i] - x_prev_[i]);
        }
        const double err = 0.5 * std::abs(x_candidate_[i] - pred);
        const double scale = opt_.lte_abstol + opt_.lte_reltol * std::abs(x_candidate_[i]);
        worst = std::max(worst, err / scale);
    }
    return worst;
}

void nonlinear_dae_solver::advance_to(double t_end) {
    while (t_ < t_end - 1e-18) {
        double h = std::min(h_, t_end - t_);
        bool accepted = false;
        while (!accepted) {
            if (!try_step(h)) {
                ++rejected_;
                h *= 0.25;
                util::require(h >= opt_.h_min, "nonlinear_dae_solver",
                              "Newton failed to converge at the minimum step size");
                continue;
            }
            if (!opt_.adaptive) break;
            const double err = lte_estimate(h);
            if (err <= 1.0) {
                accepted = true;
                // Grow gently; the sqrt law matches the O(h^2) local error.
                const double grow = std::clamp(0.9 / std::sqrt(std::max(err, 1e-4)), 0.3, 2.0);
                h_ = std::clamp(h * grow, opt_.h_min, opt_.h_max);
            } else {
                ++rejected_;
                h = std::max(h * std::clamp(0.9 / std::sqrt(err), 0.1, 0.5), opt_.h_min);
                util::require(h > opt_.h_min * 1.0000001 || err <= 1.0,
                              "nonlinear_dae_solver",
                              "cannot meet the error tolerance at the minimum step size");
            }
            if (!opt_.adaptive) break;
        }
        x_prev_ = x_;
        h_prev_ = h;
        have_prev_ = true;
        x_ = x_candidate_;
        t_ += h;
        ++accepted_;
    }
}

}  // namespace sca::solver
