#include "solver/nonlinear_dae.hpp"

#include <algorithm>
#include <cmath>

#include "numeric/sparse.hpp"
#include "solver/dc.hpp"
#include "util/bytes.hpp"
#include "util/report.hpp"

namespace sca::solver {

nonlinear_dae_solver::nonlinear_dae_solver(equation_system& sys, nonlinear_options opt)
    : sys_(&sys), opt_(opt), h_(opt.h_init) {
    util::require(opt.h_init > 0.0 && opt.h_min > 0.0 && opt.h_max >= opt.h_init,
                  "nonlinear_dae_solver", "inconsistent step-size options");
    x_.assign(sys.size(), 0.0);
}

void nonlinear_dae_solver::initialize(double t0) {
    set_initial_state(dc_solve(*sys_, t0), t0);
}

void nonlinear_dae_solver::set_initial_state(std::vector<double> x0, double t0) {
    util::require(x0.size() == sys_->size(), "nonlinear_dae_solver",
                  "initial state dimension mismatch");
    x_ = std::move(x0);
    t_ = t0;
    have_prev_ = false;
    h_ = opt_.h_init;
}

bool nonlinear_dae_solver::try_step(double h) {
    // Backward Euler:  (A + B/h) x1 + g(x1) = q(t1) + (B/h) x0
    const double t1 = t_ + h;
    const std::vector<double> q1 = sys_->rhs(t1);
    const std::vector<double> bx0 = sys_->b().multiply(x_);

    std::vector<double> rhs_fixed(sys_->size());
    for (std::size_t i = 0; i < rhs_fixed.size(); ++i) rhs_fixed[i] = q1[i] + bx0[i] / h;

    // A full restamp may have moved the pattern: start the persistent
    // matrices over (their fresh pattern versions force one symbolic
    // factorization); otherwise only rewrite values in place.
    if (!mats_valid_ || stamp_generation_ != sys_->stamp_generation()) {
        iter_mat_ = num::sparse_matrix_d(sys_->size());
        newton_mat_ = num::sparse_matrix_d(sys_->size());
        mats_valid_ = true;
        stamp_generation_ = sys_->stamp_generation();
    } else {
        iter_mat_.zero_values();
    }
    num::sparse_matrix_d& m = iter_mat_;
    m.add_scaled(sys_->a(), 1.0);
    m.add_scaled(sys_->b(), 1.0 / h);

    // Newton iteration starting from the current state (or the predictor).
    x_candidate_ = x_;
    if (have_prev_ && h_prev_ > 0.0) {
        const double r = h / h_prev_;
        for (std::size_t i = 0; i < x_candidate_.size(); ++i) {
            x_candidate_[i] = x_[i] + r * (x_[i] - x_prev_[i]);
        }
    }

    std::vector<double> residual(sys_->size());
    std::vector<jacobian_entry> jac;

    auto eval_f = [&](const std::vector<double>& xi, bool want_jacobian) {
        std::vector<double> f = m.multiply(xi);
        residual.assign(sys_->size(), 0.0);
        if (want_jacobian) jac.clear();
        std::vector<jacobian_entry> scratch;
        sys_->eval_nonlinear(xi, residual, want_jacobian ? jac : scratch);
        for (std::size_t i = 0; i < f.size(); ++i) f[i] += residual[i] - rhs_fixed[i];
        return f;
    };

    std::vector<double> f = eval_f(x_candidate_, true);
    double fnorm = num::norm_inf(f);
    for (int it = 0; it < opt_.newton.max_iterations; ++it) {
        ++newton_iters_;
        // Rebuild the Jacobian values into the persistent matrix; entries a
        // model stops reporting stay as explicit zeros, so the pattern only
        // grows and the symbolic factorization can be reused.
        newton_mat_.zero_values();
        newton_mat_.add_scaled(m, 1.0);
        for (const auto& e : jac) newton_mat_.add(e.row, e.col, e.value);
        if (!newton_lu_.refactor(newton_mat_)) {
            try {
                newton_lu_.factor(newton_mat_);
            } catch (const util::error&) {
                return false;  // singular Jacobian at this step size
            }
            ++symbolic_factorizations_;
        }
        ++factorizations_;
        const std::vector<double> dx = newton_lu_.solve(f);

        double damping = 1.0;
        bool improved = false;
        for (int k = 0; k < 6; ++k) {
            std::vector<double> xn = x_candidate_;
            for (std::size_t i = 0; i < xn.size(); ++i) xn[i] -= damping * dx[i];
            std::vector<double> fn = eval_f(xn, true);
            const double fn_norm = num::norm_inf(fn);
            if (fn_norm <= fnorm || fn_norm < opt_.newton.abstol) {
                x_candidate_ = std::move(xn);
                f = std::move(fn);
                fnorm = fn_norm;
                improved = true;
                break;
            }
            damping *= 0.5;
        }
        if (!improved) return false;

        const double dx_norm = num::norm_inf(dx) * damping;
        const double x_norm = num::norm_inf(x_candidate_);
        if (dx_norm < opt_.newton.abstol + opt_.newton.reltol * x_norm) return true;
    }
    return false;
}

double nonlinear_dae_solver::lte_estimate(double h) const {
    // Error proxy: corrector minus linear predictor, halved (BE local error).
    // Without history the predictor is the frozen state, which overestimates
    // the error and keeps the first steps conservative.
    double worst = 0.0;
    for (std::size_t i = 0; i < x_.size(); ++i) {
        double pred = x_[i];
        if (have_prev_ && h_prev_ > 0.0) {
            pred = x_[i] + (h / h_prev_) * (x_[i] - x_prev_[i]);
        }
        const double err = 0.5 * std::abs(x_candidate_[i] - pred);
        const double scale = opt_.lte_abstol + opt_.lte_reltol * std::abs(x_candidate_[i]);
        worst = std::max(worst, err / scale);
    }
    return worst;
}

void nonlinear_dae_solver::advance_to(double t_end) {
    while (t_ < t_end - 1e-18) {
        double h = std::min(h_, t_end - t_);
        bool accepted = false;
        while (!accepted) {
            if (!try_step(h)) {
                ++rejected_;
                h *= 0.25;
                util::require(h >= opt_.h_min, "nonlinear_dae_solver",
                              "Newton failed to converge at the minimum step size");
                continue;
            }
            if (!opt_.adaptive) break;
            const double err = lte_estimate(h);
            if (err <= 1.0) {
                accepted = true;
                // Grow gently; the sqrt law matches the O(h^2) local error.
                const double grow = std::clamp(0.9 / std::sqrt(std::max(err, 1e-4)), 0.3, 2.0);
                h_ = std::clamp(h * grow, opt_.h_min, opt_.h_max);
            } else {
                ++rejected_;
                h = std::max(h * std::clamp(0.9 / std::sqrt(err), 0.1, 0.5), opt_.h_min);
                util::require(h > opt_.h_min * 1.0000001 || err <= 1.0,
                              "nonlinear_dae_solver",
                              "cannot meet the error tolerance at the minimum step size");
            }
            if (!opt_.adaptive) break;
        }
        x_prev_ = x_;
        h_prev_ = h;
        have_prev_ = true;
        x_ = x_candidate_;
        t_ += h;
        ++accepted_;
    }
}

// --------------------------------------------------------------- snapshot --

namespace {

void save_pattern(util::byte_writer& w, const num::sparse_matrix_d& m) {
    w.u64(m.size());
    for (std::size_t r = 0; r < m.size(); ++r) {
        const auto& idx = m.row_indices(r);
        w.u64(idx.size());
        for (std::size_t c : idx) w.u64(c);
    }
}

/// Rebuild a matrix with the saved sparsity pattern as explicit zeros — the
/// grown pattern history the Newton LU's frozen pivot order depends on.
num::sparse_matrix_d restore_pattern(util::byte_reader& r) {
    const auto n = static_cast<std::size_t>(r.u64());
    num::sparse_matrix_d m(n);
    for (std::size_t row = 0; row < n; ++row) {
        const auto count = static_cast<std::size_t>(r.u64());
        for (std::size_t k = 0; k < count; ++k) {
            m.add(row, static_cast<std::size_t>(r.u64()), 0.0);
        }
    }
    return m;
}

}  // namespace

void nonlinear_dae_solver::save_state(util::byte_writer& w) const {
    w.f64(t_);
    w.f64(h_);
    w.f64(h_prev_);
    w.boolean(have_prev_);
    w.f64_vec(x_);
    w.f64_vec(x_prev_);
    w.u64(accepted_);
    w.u64(rejected_);
    w.u64(newton_iters_);
    w.u64(factorizations_);
    w.u64(symbolic_factorizations_);
    w.boolean(mats_valid_);
    w.u64(stamp_generation_);
    if (mats_valid_) {
        save_pattern(w, iter_mat_);
        save_pattern(w, newton_mat_);
    }
    const bool has_symbolic = newton_lu_.symbolic_valid();
    w.boolean(has_symbolic);
    if (has_symbolic) w.u64_vec(newton_lu_.export_symbolic());
}

void nonlinear_dae_solver::restore_state(util::byte_reader& r) {
    t_ = r.f64();
    h_ = r.f64();
    h_prev_ = r.f64();
    have_prev_ = r.boolean();
    x_ = r.f64_vec();
    util::require(x_.size() == sys_->size(), "snapshot",
                  "nonlinear solver: state dimension differs from rebuilt system");
    x_prev_ = r.f64_vec();
    accepted_ = r.u64();
    rejected_ = r.u64();
    newton_iters_ = r.u64();
    factorizations_ = r.u64();
    symbolic_factorizations_ = r.u64();
    mats_valid_ = r.boolean();
    stamp_generation_ = r.u64();
    if (mats_valid_) {
        iter_mat_ = restore_pattern(r);
        newton_mat_ = restore_pattern(r);
        util::require(iter_mat_.size() == sys_->size() &&
                          newton_mat_.size() == sys_->size(),
                      "snapshot",
                      "nonlinear solver: matrix size differs from rebuilt system");
    }
    const bool has_symbolic = r.boolean();
    if (has_symbolic) {
        util::require(mats_valid_, "snapshot",
                      "nonlinear solver: symbolic analysis without matrices");
        util::require(newton_lu_.adopt_symbolic(r.u64_vec(), newton_mat_), "snapshot",
                      "nonlinear solver: Newton LU symbolic analysis does not fit "
                      "the rebuilt Jacobian pattern");
        // Values stay unpopulated: the next Newton iteration rewrites the
        // Jacobian from scratch and refactors under the adopted pivot order.
    }
}

}  // namespace sca::solver
