// Small-signal frequency-domain (AC) analysis (paper §3: "SystemC-AMS will
// also have to support at least small-signal linear frequency-domain
// analysis ... the frequency-domain model can be derived from the
// time-domain description").
//
// For each analysis frequency f the solver factors (A + j*2*pi*f*B) and
// solves against the AC stimulus vector; for nonlinear systems A is first
// augmented with the Jacobian of g at the DC operating point (linearization).
// The complex system matrix has the same sparsity pattern at every
// frequency, so the per-frequency factorization reuses one cached symbolic
// analysis across the whole sweep (numeric-only refactor per point).
#ifndef SCA_SOLVER_AC_HPP
#define SCA_SOLVER_AC_HPP

#include <complex>
#include <vector>

#include "solver/equation_system.hpp"

namespace sca::solver {

/// Frequency sweep specification.
struct sweep {
    enum class scale { linear, logarithmic };
    double f_start;
    double f_stop;
    std::size_t points;
    scale kind = scale::logarithmic;

    /// Materialize the frequency list.
    [[nodiscard]] std::vector<double> frequencies() const;
};

class ac_solver {
public:
    /// Linear systems need no operating point; nonlinear systems must pass
    /// the DC solution to linearize around.
    explicit ac_solver(const equation_system& sys);
    ac_solver(const equation_system& sys, const std::vector<double>& dc_operating_point);

    /// Phasor solution of all unknowns at frequency `f` (Hz).
    /// Not thread-safe despite constness: solve/transfer reuse mutable
    /// per-sweep factorization caches. Give each thread its own ac_solver
    /// (the core::ac_analysis driver constructs one per sweep call).
    [[nodiscard]] std::vector<std::complex<double>> solve(double f) const;

    /// Transfer from the AC stimulus to unknown `output` over a sweep.
    [[nodiscard]] std::vector<std::complex<double>> transfer(std::size_t output,
                                                             const sweep& sw) const;

private:
    const equation_system* sys_;
    num::sparse_matrix_d a_linearized_;  // A (+ dg/dx at the DC point)
    // Per-frequency solve caches: the complex matrix pattern is frequency-
    // independent, so the symbolic factorization is computed once per sweep.
    mutable num::sparse_matrix_z m_cache_;
    mutable num::sparse_lu_z lu_cache_;
    mutable bool cache_valid_ = false;
};

/// Magnitude in dB (20 log10 |h|).
[[nodiscard]] double magnitude_db(const std::complex<double>& h);

/// Phase in degrees.
[[nodiscard]] double phase_deg(const std::complex<double>& h);

}  // namespace sca::solver

#endif  // SCA_SOLVER_AC_HPP
