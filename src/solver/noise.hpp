// Small-signal noise analysis (paper phase 1: "Linear dynamic continuous-time
// model of computation, including transient, small-signal AC and noise
// simulation").
//
// Each registered noise source is injected separately; its transfer to the
// output is obtained from one complex solve per source per frequency, and
// the output power spectral density is the superposition of the magnitude-
// squared contributions (noise sources are uncorrelated).
#ifndef SCA_SOLVER_NOISE_HPP
#define SCA_SOLVER_NOISE_HPP

#include <string>
#include <vector>

#include "solver/ac.hpp"
#include "solver/equation_system.hpp"

namespace sca::solver {

/// Boltzmann constant (J/K), used by resistor thermal-noise models.
inline constexpr double k_boltzmann = 1.380649e-23;

struct noise_point {
    double frequency;
    double total_psd;                       // output PSD in V^2/Hz
    std::vector<double> per_source;         // contribution of each source
};

struct noise_result {
    std::vector<std::string> source_names;
    std::vector<noise_point> points;

    /// Total integrated output noise (V rms) over the analyzed band using
    /// trapezoidal integration of the PSD.
    [[nodiscard]] double integrated_rms() const;
};

class noise_solver {
public:
    explicit noise_solver(const equation_system& sys);
    noise_solver(const equation_system& sys, const std::vector<double>& dc_operating_point);

    /// Output noise PSD at unknown `output` over the sweep.
    [[nodiscard]] noise_result analyze(std::size_t output, const sweep& sw) const;

private:
    const equation_system* sys_;
    std::vector<double> dc_;
    bool have_dc_ = false;
};

}  // namespace sca::solver

#endif  // SCA_SOLVER_NOISE_HPP
