// Fixed-timestep linear DAE solver.
//
// Solves  A x + B dx/dt = q(t)  with backward Euler or the trapezoidal rule
// at a fixed step h.  The iteration matrix (c_a A + B/h) is factored once and
// reused for every step — the "solved without iterations" property the paper
// attributes to linear systems (§3, citing [6]).  Refactoring is tiered:
// a values-only change (stamp-slot update — switch toggle, parameter write —
// or a timestep/method change) rebuilds the iteration matrix values in place
// and runs a numeric-only refactorization against the cached symbolic
// analysis; only a stamp-generation change (full restamp, pattern may have
// moved) re-runs the symbolic phase.
#ifndef SCA_SOLVER_LINEAR_DAE_HPP
#define SCA_SOLVER_LINEAR_DAE_HPP

#include <cstdint>
#include <vector>

#include "numeric/sparse.hpp"
#include "solver/equation_system.hpp"

namespace sca::solver {

enum class integration_method { backward_euler, trapezoidal };

class linear_dae_solver {
public:
    /// `h` is the fixed timestep in seconds.
    linear_dae_solver(equation_system& sys, integration_method method, double h);

    /// Set the initial state (e.g. from a DC solve) and the start time.
    void set_initial_state(std::vector<double> x0, double t0);

    /// Advance one step of size h; afterwards x() is the solution at time().
    void step();

    /// Advance until `t_end` (an integer number of steps; t_end must be
    /// aligned with the step grid within rounding).
    void advance_to(double t_end);

    [[nodiscard]] const std::vector<double>& x() const noexcept { return x_; }
    [[nodiscard]] double time() const noexcept { return t_; }
    [[nodiscard]] double timestep() const noexcept { return h_; }

    /// Change the timestep (forces a refactor at the next step).
    void set_timestep(double h);

    /// Force rebuild of the iteration matrix (after restamping the system).
    void invalidate();

    /// Take the next step with backward Euler even in trapezoidal mode.
    /// Required after discontinuities (switch events, restamps): the
    /// trapezoidal rule rings indefinitely on algebraic constraints whose
    /// stamps changed, BE re-establishes consistency in one step.
    void force_backward_euler_next() noexcept { be_next_ = true; }

    /// Numeric factorization passes (full factorizations included).
    [[nodiscard]] std::uint64_t factor_count() const noexcept { return factors_; }
    /// Full symbolic analyses (pivot order + fill pattern). Values-only
    /// restamps keep this flat: only factor_count advances.
    [[nodiscard]] std::uint64_t symbolic_factor_count() const noexcept {
        return symbolic_factors_;
    }
    [[nodiscard]] std::uint64_t solve_count() const noexcept { return solves_; }

    /// Use dense factorization instead of sparse (ablation benches).
    void set_use_dense(bool dense) {
        use_dense_ = dense;
        invalidate();
    }

    // --- checkpoint/restore ----------------------------------------------------
    /// Serialize integration state (t, x, q_prev, method/timestep flags),
    /// the cached LU symbolic analysis, and the generation/counter book-
    /// keeping.  The equation system is saved separately by its owner.
    void save_state(util::byte_writer& w) const;
    /// Restore onto a freshly constructed solver whose equation system has
    /// already been overlaid: rebuilds the iteration matrix from the
    /// restored A/B values, adopts the frozen pivot order, and refactors —
    /// bit-identical to the factorization the saving process held.
    void restore_state(util::byte_reader& r);

private:
    void ensure_factored(integration_method m);

    equation_system* sys_;
    integration_method method_;
    double h_;
    double t_ = 0.0;
    std::vector<double> x_;
    std::vector<double> q_prev_;  // q(t) of the accepted point (trapezoidal)
    // Per-step scratch, reused so batched firings never allocate.
    std::vector<double> q1_;
    std::vector<double> bx_;
    std::vector<double> ax_;
    std::vector<double> rhs_;
    std::vector<double> x_next_;
    num::sparse_matrix_d iter_mat_;  // persistent c_a·A + B/h (pattern reused)
    bool iter_mat_valid_ = false;
    num::sparse_lu_d lu_;
    num::dense_lu_d dense_lu_;
    bool use_dense_ = false;
    bool factored_ = false;
    bool be_next_ = false;
    integration_method factored_method_ = integration_method::backward_euler;
    std::uint64_t stamp_generation_ = ~0ULL;
    std::uint64_t values_generation_ = ~0ULL;
    std::uint64_t factors_ = 0;
    std::uint64_t symbolic_factors_ = 0;
    std::uint64_t solves_ = 0;
};

}  // namespace sca::solver

#endif  // SCA_SOLVER_LINEAR_DAE_HPP
