// The equation interface: the solver-agnostic description layer the paper
// mandates ("SystemC-AMS must provide appropriate views ... The interface
// layer provides the solver with the system of equations to solve").
//
// A system describes
//
//      A x(t) + B dx/dt + g(x) = q(t)
//
// where A, B are sparse stamp matrices, g is an optional set of nonlinear
// element contributions, and q(t) collects constant, time-function, and
// externally driven (TDF input slot) sources.  Every continuous-time view
// (ELN netlists via MNA, LSF signal-flow graphs, transfer functions,
// state-space blocks) lowers to this form; every solver (fixed-step linear,
// variable-step nonlinear Newton, DC, AC, noise) consumes it.
#ifndef SCA_SOLVER_EQUATION_SYSTEM_HPP
#define SCA_SOLVER_EQUATION_SYSTEM_HPP

#include <complex>
#include <functional>
#include <string>
#include <vector>

#include "numeric/sparse.hpp"

namespace sca::solver {

/// Dense triplet used by nonlinear elements to report Jacobian entries.
struct jacobian_entry {
    std::size_t row;
    std::size_t col;
    double value;
};

/// A nonlinear element: given the current iterate x, add its contribution to
/// the residual g(x) and its partial derivatives to the Jacobian triplets.
using nonlinear_fn = std::function<void(const std::vector<double>& x,
                                        std::vector<double>& residual,
                                        std::vector<jacobian_entry>& jacobian)>;

/// Time-dependent autonomous source contribution to one equation.
struct rhs_source {
    std::size_t row;
    std::function<double(double t)> value;
};

/// Small-signal AC stimulus entry.
struct ac_source {
    std::size_t row;
    std::complex<double> amplitude;
};

/// Noise source: weighted injections into equation rows (e.g. +1/-1 on the
/// two KCL rows of a resistor) plus a power spectral density function.
struct noise_source {
    std::vector<std::pair<std::size_t, double>> injections;
    std::function<double(double f)> psd;  // in V^2/Hz or A^2/Hz
    std::string name;
};

class equation_system {
public:
    equation_system() = default;

    /// Add an unknown; returns its index.
    std::size_t add_unknown(std::string name);
    [[nodiscard]] std::size_t size() const noexcept { return names_.size(); }
    [[nodiscard]] const std::string& unknown_name(std::size_t i) const { return names_[i]; }

    /// Reset all stamps but keep the unknowns (used when a topology change,
    /// e.g. a switch, requires restamping).
    void clear_stamps();

    // --- linear stamps -------------------------------------------------------
    void add_a(std::size_t row, std::size_t col, double v) { a_.add(row, col, v); }
    void add_b(std::size_t row, std::size_t col, double v) { b_.add(row, col, v); }

    [[nodiscard]] const num::sparse_matrix_d& a() const noexcept { return a_; }
    [[nodiscard]] const num::sparse_matrix_d& b() const noexcept { return b_; }

    // --- right-hand side -----------------------------------------------------
    void add_rhs_constant(std::size_t row, double v);
    void add_rhs_source(std::size_t row, std::function<double(double)> fn);

    /// Reserve an externally driven slot (e.g. a TDF-driven source value).
    /// Returns the slot id; the owner sets it before each solver step.
    std::size_t add_input(std::size_t row);
    void set_input(std::size_t slot, double v);
    [[nodiscard]] double input(std::size_t slot) const { return inputs_[slot].value; }

    /// Assemble q(t) from constants, time functions, and input slots.
    [[nodiscard]] std::vector<double> rhs(double t) const;

    /// Allocation-free variant: assemble q(t) into `q` (resized as needed).
    /// Fixed-step solvers call this once per step with a reused buffer.
    void rhs_into(double t, std::vector<double>& q) const;

    // --- nonlinear -----------------------------------------------------------
    void add_nonlinear(nonlinear_fn fn) { nonlinear_.push_back(std::move(fn)); }
    [[nodiscard]] bool is_linear() const noexcept { return nonlinear_.empty(); }
    [[nodiscard]] const std::vector<nonlinear_fn>& nonlinear_elements() const noexcept {
        return nonlinear_;
    }

    /// Evaluate g(x) and its Jacobian triplets at the iterate x.
    void eval_nonlinear(const std::vector<double>& x, std::vector<double>& residual,
                        std::vector<jacobian_entry>& jacobian) const;

    // --- small-signal / noise descriptions ------------------------------------
    void add_ac_source(std::size_t row, std::complex<double> amplitude);
    [[nodiscard]] const std::vector<ac_source>& ac_sources() const noexcept {
        return ac_sources_;
    }

    void add_noise_source(std::vector<std::pair<std::size_t, double>> injections,
                          std::function<double(double)> psd, std::string name);
    [[nodiscard]] const std::vector<noise_source>& noise_sources() const noexcept {
        return noise_sources_;
    }

    // --- change tracking -------------------------------------------------------
    /// Incremented by clear_stamps(); solvers compare to detect restamping.
    [[nodiscard]] std::uint64_t stamp_generation() const noexcept { return generation_; }

private:
    struct input_slot {
        std::size_t row;
        double value = 0.0;
    };

    std::vector<std::string> names_;
    num::sparse_matrix_d a_;
    num::sparse_matrix_d b_;
    std::vector<double> rhs_constant_;
    std::vector<rhs_source> rhs_sources_;
    std::vector<input_slot> inputs_;
    std::vector<nonlinear_fn> nonlinear_;
    std::vector<ac_source> ac_sources_;
    std::vector<noise_source> noise_sources_;
    std::uint64_t generation_ = 0;
};

}  // namespace sca::solver

#endif  // SCA_SOLVER_EQUATION_SYSTEM_HPP
