// The equation interface: the solver-agnostic description layer the paper
// mandates ("SystemC-AMS must provide appropriate views ... The interface
// layer provides the solver with the system of equations to solve").
//
// A system describes
//
//      A x(t) + B dx/dt + g(x) = q(t)
//
// where A, B are sparse stamp matrices, g is an optional set of nonlinear
// element contributions, and q(t) collects constant, time-function, and
// externally driven (TDF input slot) sources.  Every continuous-time view
// (ELN netlists via MNA, LSF signal-flow graphs, transfer functions,
// state-space blocks) lowers to this form; every solver (fixed-step linear,
// variable-step nonlinear Newton, DC, AC, noise) consumes it.
//
// Stamps come in two flavours.  Plain add_a/add_b contributions are static:
// changing them requires clear_stamps() + a full restamp (which bumps the
// stamp generation and invalidates every cached factorization, symbolic
// included).  *Stamp slots* are the incremental path: a component allocates
// a named value slot once at elaboration (add_stamp) and wires weighted
// references to it into A/B (stamp_a/stamp_b); later set_stamp() calls
// rewrite only the affected matrix entries — the sparsity pattern is
// untouched, only the values generation advances, and solvers respond with
// a numeric-only refactorization against their cached symbolic analysis.
#ifndef SCA_SOLVER_EQUATION_SYSTEM_HPP
#define SCA_SOLVER_EQUATION_SYSTEM_HPP

#include <complex>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "numeric/sparse.hpp"

namespace sca::util {
class byte_writer;
class byte_reader;
}  // namespace sca::util

namespace sca::solver {

/// Dense triplet used by nonlinear elements to report Jacobian entries.
struct jacobian_entry {
    std::size_t row;
    std::size_t col;
    double value;
};

/// A nonlinear element: given the current iterate x, add its contribution to
/// the residual g(x) and its partial derivatives to the Jacobian triplets.
using nonlinear_fn = std::function<void(const std::vector<double>& x,
                                        std::vector<double>& residual,
                                        std::vector<jacobian_entry>& jacobian)>;

/// Time-dependent autonomous source contribution to one equation.
struct rhs_source {
    std::size_t row;
    std::function<double(double t)> value;
};

/// Small-signal AC stimulus entry.
struct ac_source {
    std::size_t row;
    std::complex<double> amplitude;
};

/// Noise source: weighted injections into equation rows (e.g. +1/-1 on the
/// two KCL rows of a resistor) plus a power spectral density function.
struct noise_source {
    std::vector<std::pair<std::size_t, double>> injections;
    std::function<double(double f)> psd;  // in V^2/Hz or A^2/Hz
    std::string name;
};

/// Handle of a runtime-updatable stamp value slot (see class comment).
using stamp_handle = std::size_t;
inline constexpr stamp_handle no_stamp_handle = static_cast<stamp_handle>(-1);

class equation_system {
public:
    equation_system() = default;

    /// Add an unknown; returns its index.
    std::size_t add_unknown(std::string name);
    [[nodiscard]] std::size_t size() const noexcept { return names_.size(); }
    [[nodiscard]] const std::string& unknown_name(std::size_t i) const { return names_[i]; }

    /// Reset all stamps (including stamp slots) but keep the unknowns: the
    /// full-restamp path for topology/pattern changes.
    void clear_stamps();

    // --- linear stamps -------------------------------------------------------
    void add_a(std::size_t row, std::size_t col, double v);
    void add_b(std::size_t row, std::size_t col, double v);

    [[nodiscard]] const num::sparse_matrix_d& a() const noexcept { return a_; }
    [[nodiscard]] const num::sparse_matrix_d& b() const noexcept { return b_; }

    // --- stamp slots (values-only incremental updates) -----------------------
    /// Allocate a value slot with its initial value.
    stamp_handle add_stamp(double initial_value);
    /// Stamp `weight * value(h)` into A/B at (row, col) and register the
    /// dependency so set_stamp(h) can rewrite the entry later.
    void stamp_a(stamp_handle h, std::size_t row, std::size_t col, double weight);
    void stamp_b(stamp_handle h, std::size_t row, std::size_t col, double weight);
    /// Update a slot value; rewrites every dependent A/B entry (replaying
    /// all that entry's contributions in stamping order, so the result is
    /// bit-identical to a full restamp with the new value) and advances the
    /// values generation. No-op when the value is unchanged.
    void set_stamp(stamp_handle h, double value);
    [[nodiscard]] double stamp_value(stamp_handle h) const;

    /// Build the slot -> entries index after (re)stamping completes. Lazy:
    /// set_stamp calls it on demand; views call it eagerly after assembly.
    void finalize_stamps();

    // --- right-hand side -----------------------------------------------------
    void add_rhs_constant(std::size_t row, double v);
    void add_rhs_source(std::size_t row, std::function<double(double)> fn);

    /// Reserve an externally driven slot (e.g. a TDF-driven source value).
    /// Returns the slot id; the owner sets it before each solver step.
    std::size_t add_input(std::size_t row);
    void set_input(std::size_t slot, double v);
    [[nodiscard]] double input(std::size_t slot) const { return inputs_[slot].value; }

    /// Assemble q(t) from constants, time functions, and input slots.
    [[nodiscard]] std::vector<double> rhs(double t) const;

    /// Allocation-free variant: assemble q(t) into `q` (resized as needed).
    /// Fixed-step solvers call this once per step with a reused buffer.
    void rhs_into(double t, std::vector<double>& q) const;

    // --- nonlinear -----------------------------------------------------------
    void add_nonlinear(nonlinear_fn fn) { nonlinear_.push_back(std::move(fn)); }
    [[nodiscard]] bool is_linear() const noexcept { return nonlinear_.empty(); }
    [[nodiscard]] const std::vector<nonlinear_fn>& nonlinear_elements() const noexcept {
        return nonlinear_;
    }

    /// Evaluate g(x) and its Jacobian triplets at the iterate x.
    void eval_nonlinear(const std::vector<double>& x, std::vector<double>& residual,
                        std::vector<jacobian_entry>& jacobian) const;

    // --- small-signal / noise descriptions ------------------------------------
    void add_ac_source(std::size_t row, std::complex<double> amplitude);
    [[nodiscard]] const std::vector<ac_source>& ac_sources() const noexcept {
        return ac_sources_;
    }

    void add_noise_source(std::vector<std::pair<std::size_t, double>> injections,
                          std::function<double(double)> psd, std::string name);
    [[nodiscard]] const std::vector<noise_source>& noise_sources() const noexcept {
        return noise_sources_;
    }

    // --- change tracking -------------------------------------------------------
    /// Incremented by clear_stamps(); a change means the sparsity pattern
    /// may have moved — solvers must re-run symbolic analysis.
    [[nodiscard]] std::uint64_t stamp_generation() const noexcept { return generation_; }
    /// Incremented by set_stamp() value rewrites; a change with an unchanged
    /// stamp generation means a numeric-only refactorization suffices.
    [[nodiscard]] std::uint64_t values_generation() const noexcept {
        return values_generation_;
    }

    // --- checkpoint/restore ----------------------------------------------------
    /// Serialize the mutable numeric state: A/B patterns + values, slot
    /// values, rhs constants, input slot values, generation counters.  The
    /// structural description (unknowns, ledgers, sources) is assumed to be
    /// reproducible by re-running the owning view's build, so restore_state
    /// expects to run on a freshly built system and only overlays values.
    void save_state(util::byte_writer& w) const;
    /// Overlay saved numeric state onto this (freshly rebuilt) system.
    /// Refuses — sca::util::error with context "snapshot" — when the rebuilt
    /// structure (unknown count, sparsity patterns, slot/input counts) does
    /// not match the saved one.
    void restore_state(util::byte_reader& r);

private:
    struct input_slot {
        std::size_t row;
        double value = 0.0;
    };

    enum class matrix_id : std::uint8_t { a, b };

    /// One additive term of a matrix entry: a constant (slot ==
    /// no_stamp_handle, value == weight) or `weight * slots_[slot]`.
    struct contribution {
        stamp_handle slot;
        double weight;
    };

    /// Ordered contribution list of one slot-referencing (row, col) matrix
    /// entry: a prefix constant folding all earlier static adds, then the
    /// slot and static terms in stamping order.  Purely static entries
    /// carry no ledger at all.
    struct entry_ledger {
        std::vector<contribution> terms;
    };

    struct entry_ref {
        matrix_id which;
        std::size_t row;
        std::size_t col;
    };

    static std::uint64_t entry_key(std::size_t row, std::size_t col) noexcept {
        return (static_cast<std::uint64_t>(row) << 32) | static_cast<std::uint64_t>(col);
    }

    void append_static_term(matrix_id which, std::size_t row, std::size_t col, double v);
    void append_slot_term(matrix_id which, std::size_t row, std::size_t col,
                          stamp_handle h, double weight);
    void rewrite_entry(const entry_ref& e);

    std::vector<std::string> names_;
    num::sparse_matrix_d a_;
    num::sparse_matrix_d b_;
    std::vector<double> rhs_constant_;
    std::vector<rhs_source> rhs_sources_;
    std::vector<input_slot> inputs_;
    std::vector<nonlinear_fn> nonlinear_;
    std::vector<ac_source> ac_sources_;
    std::vector<noise_source> noise_sources_;
    std::uint64_t generation_ = 0;
    std::uint64_t values_generation_ = 0;

    std::vector<double> slot_values_;
    std::unordered_map<std::uint64_t, entry_ledger> ledger_a_;
    std::unordered_map<std::uint64_t, entry_ledger> ledger_b_;
    std::vector<std::vector<entry_ref>> slot_entries_;  // slot -> dependent entries
    bool slots_finalized_ = false;
};

}  // namespace sca::solver

#endif  // SCA_SOLVER_EQUATION_SYSTEM_HPP
