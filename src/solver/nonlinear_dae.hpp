// Variable-timestep nonlinear DAE solver (paper phase 2: "support of non
// linear DAEs and their simulation using variable time steps").
//
// Integrates  A x + B dx/dt + g(x) = q(t)  with backward Euler; each step is
// solved by damped Newton iteration, and the step size is controlled by a
// local-truncation-error estimate from the difference between the corrector
// and a linear predictor.
//
// The Jacobian J = A + B/h + dg/dx has a fixed sparsity pattern once the
// nonlinear models have reported their full entry sets, so the solver keeps
// one persistent Jacobian matrix and reuses its symbolic factorization
// (pivot order + fill pattern) across Newton iterations, timesteps, and
// values-only restamps; only a pattern change (full restamp, or a model
// reporting a new entry) re-runs the symbolic analysis.
#ifndef SCA_SOLVER_NONLINEAR_DAE_HPP
#define SCA_SOLVER_NONLINEAR_DAE_HPP

#include <cstdint>
#include <vector>

#include "numeric/sparse.hpp"
#include "solver/equation_system.hpp"

namespace sca::solver {

struct newton_options {
    int max_iterations = 50;
    double abstol = 1e-10;
    double reltol = 1e-7;
};

struct nonlinear_options {
    double h_init = 1e-6;
    double h_min = 1e-15;
    double h_max = 1e-3;
    /// LTE tolerance scales: error is normalized by (lte_abstol + lte_reltol*|x|).
    double lte_abstol = 1e-6;
    double lte_reltol = 1e-4;
    bool adaptive = true;  // false = fixed step h_init (comparison benches)
    newton_options newton;
};

class nonlinear_dae_solver {
public:
    nonlinear_dae_solver(equation_system& sys, nonlinear_options opt = {});

    /// Compute the DC operating point at t0 and start from it.
    void initialize(double t0);

    /// Start from an explicit state instead of a DC solve.
    void set_initial_state(std::vector<double> x0, double t0);

    /// Integrate up to exactly t_end (the last step is shortened to hit it).
    void advance_to(double t_end);

    [[nodiscard]] const std::vector<double>& x() const noexcept { return x_; }
    [[nodiscard]] double time() const noexcept { return t_; }

    // --- statistics (reported by the stiff/variable-step benches) ----------
    [[nodiscard]] std::uint64_t steps_accepted() const noexcept { return accepted_; }
    [[nodiscard]] std::uint64_t steps_rejected() const noexcept { return rejected_; }
    [[nodiscard]] std::uint64_t newton_iterations() const noexcept { return newton_iters_; }
    /// Numeric Jacobian factorization passes (one per Newton iteration).
    [[nodiscard]] std::uint64_t factorizations() const noexcept { return factorizations_; }
    /// Full symbolic analyses; stays flat once the Jacobian pattern settles.
    [[nodiscard]] std::uint64_t symbolic_factorizations() const noexcept {
        return symbolic_factorizations_;
    }
    [[nodiscard]] double current_h() const noexcept { return h_; }

    // --- checkpoint/restore ----------------------------------------------------
    /// Serialize integration state (t, h, x, predictor history), the grown
    /// iteration/Jacobian sparsity patterns, the cached Newton LU symbolic
    /// analysis, and statistics.  Matrix *values* are not saved: every
    /// Newton iteration rewrites them from scratch, so only pattern
    /// continuity (and with it the frozen pivot order) matters for
    /// bit-identical resumption.
    void save_state(util::byte_writer& w) const;
    /// Restore onto a freshly constructed solver (same options, equation
    /// system already overlaid).
    void restore_state(util::byte_reader& r);

private:
    /// One backward-Euler step of size h from (t_, x_). Returns the Newton
    /// convergence flag; the candidate solution lands in x_candidate_.
    bool try_step(double h);

    /// Normalized LTE estimate of the candidate against the predictor.
    double lte_estimate(double h) const;

    equation_system* sys_;
    nonlinear_options opt_;
    double t_ = 0.0;
    double h_;
    std::vector<double> x_;
    std::vector<double> x_prev_;  // accepted state one step back
    double h_prev_ = 0.0;
    std::vector<double> x_candidate_;
    bool have_prev_ = false;

    // Persistent matrices: iter_mat_ holds A + B/h (values rewritten per
    // step), newton_mat_ the full Jacobian.  Their patterns only ever grow
    // (stale entries stay as explicit zeros), so once the nonlinear models'
    // entry sets settle, the cached symbolic factorization in newton_lu_ is
    // valid for every subsequent iteration.
    num::sparse_matrix_d iter_mat_;
    num::sparse_matrix_d newton_mat_;
    num::sparse_lu_d newton_lu_;
    bool mats_valid_ = false;
    std::uint64_t stamp_generation_ = ~0ULL;

    std::uint64_t accepted_ = 0;
    std::uint64_t rejected_ = 0;
    std::uint64_t newton_iters_ = 0;
    std::uint64_t factorizations_ = 0;
    std::uint64_t symbolic_factorizations_ = 0;
};

}  // namespace sca::solver

#endif  // SCA_SOLVER_NONLINEAR_DAE_HPP
