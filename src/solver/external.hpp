// Open solver-coupling interface (paper §3: "SystemC-AMS must support the
// coupling with existing continuous-time simulators ... an open architecture
// in which existing, mature, simulators or solvers may be plugged in").
//
// `external_solver` is the plug-in boundary: any engine that can advance a
// first-order ODE system  dx/dt = f(x, u, t)  by a step can be wrapped and
// driven from a TDF module.  `rk4_solver` is the in-tree reference engine
// standing in for a foreign simulator in tests and examples.
#ifndef SCA_SOLVER_EXTERNAL_HPP
#define SCA_SOLVER_EXTERNAL_HPP

#include <functional>
#include <string>
#include <vector>

namespace sca::solver {

/// Right-hand side of the foreign model: dx/dt = f(t, x, u).
using ode_rhs = std::function<void(double t, const std::vector<double>& x,
                                   const std::vector<double>& u, std::vector<double>& dxdt)>;

/// Abstract coupling interface to an external continuous-time engine.
class external_solver {
public:
    virtual ~external_solver() = default;

    /// Identify the engine (diagnostics).
    [[nodiscard]] virtual std::string engine_name() const = 0;

    /// Configure the problem: state count, input count, derivative function.
    virtual void configure(std::size_t n_states, std::size_t n_inputs, ode_rhs rhs) = 0;

    virtual void set_state(const std::vector<double>& x0) = 0;
    [[nodiscard]] virtual const std::vector<double>& state() const = 0;

    /// Advance from `t` to `t + dt` with inputs held at `u` (ZOH coupling,
    /// the same contract a co-simulation backplane would provide).
    virtual void advance(double t, double dt, const std::vector<double>& u) = 0;
};

/// Classic fixed-step 4th-order Runge-Kutta engine (with optional internal
/// sub-stepping), used as the stand-in "existing simulator".
class rk4_solver final : public external_solver {
public:
    /// `max_internal_step` bounds the internal step; an advance() over a
    /// larger dt is split into sub-steps.
    explicit rk4_solver(double max_internal_step = 0.0);

    [[nodiscard]] std::string engine_name() const override { return "rk4"; }
    void configure(std::size_t n_states, std::size_t n_inputs, ode_rhs rhs) override;
    void set_state(const std::vector<double>& x0) override;
    [[nodiscard]] const std::vector<double>& state() const override { return x_; }
    void advance(double t, double dt, const std::vector<double>& u) override;

    [[nodiscard]] std::uint64_t rhs_evaluations() const noexcept { return rhs_evals_; }

private:
    void rk4_step(double t, double h, const std::vector<double>& u);

    double max_internal_step_;
    std::size_t n_states_ = 0;
    std::size_t n_inputs_ = 0;
    ode_rhs rhs_;
    std::vector<double> x_;
    std::uint64_t rhs_evals_ = 0;
};

}  // namespace sca::solver

#endif  // SCA_SOLVER_EXTERNAL_HPP
