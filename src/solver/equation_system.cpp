#include "solver/equation_system.hpp"

#include "util/report.hpp"

namespace sca::solver {

std::size_t equation_system::add_unknown(std::string name) {
    names_.push_back(std::move(name));
    const std::size_t n = names_.size();
    a_.resize(n);
    b_.resize(n);
    rhs_constant_.resize(n, 0.0);
    return n - 1;
}

void equation_system::clear_stamps() {
    const std::size_t n = names_.size();
    a_.resize(n);
    b_.resize(n);
    a_.clear();
    b_.clear();
    rhs_constant_.assign(n, 0.0);
    rhs_sources_.clear();
    inputs_.clear();
    nonlinear_.clear();
    ac_sources_.clear();
    noise_sources_.clear();
    ++generation_;
}

void equation_system::add_rhs_constant(std::size_t row, double v) {
    util::require(row < size(), "equation_system", "rhs row out of range");
    rhs_constant_[row] += v;
}

void equation_system::add_rhs_source(std::size_t row, std::function<double(double)> fn) {
    util::require(row < size(), "equation_system", "rhs row out of range");
    util::require(static_cast<bool>(fn), "equation_system", "null rhs source");
    rhs_sources_.push_back({row, std::move(fn)});
}

std::size_t equation_system::add_input(std::size_t row) {
    util::require(row < size(), "equation_system", "input row out of range");
    inputs_.push_back({row, 0.0});
    return inputs_.size() - 1;
}

void equation_system::set_input(std::size_t slot, double v) {
    util::require(slot < inputs_.size(), "equation_system", "input slot out of range");
    inputs_[slot].value = v;
}

std::vector<double> equation_system::rhs(double t) const {
    std::vector<double> q;
    rhs_into(t, q);
    return q;
}

void equation_system::rhs_into(double t, std::vector<double>& q) const {
    q.assign(rhs_constant_.begin(), rhs_constant_.end());
    q.resize(size(), 0.0);
    for (const auto& s : rhs_sources_) q[s.row] += s.value(t);
    for (const auto& in : inputs_) q[in.row] += in.value;
}

void equation_system::eval_nonlinear(const std::vector<double>& x,
                                     std::vector<double>& residual,
                                     std::vector<jacobian_entry>& jacobian) const {
    for (const auto& fn : nonlinear_) fn(x, residual, jacobian);
}

void equation_system::add_ac_source(std::size_t row, std::complex<double> amplitude) {
    util::require(row < size(), "equation_system", "ac source row out of range");
    ac_sources_.push_back({row, amplitude});
}

void equation_system::add_noise_source(
    std::vector<std::pair<std::size_t, double>> injections,
    std::function<double(double)> psd, std::string name) {
    for (const auto& [row, weight] : injections) {
        (void)weight;
        util::require(row < size(), "equation_system", "noise source row out of range");
    }
    noise_sources_.push_back({std::move(injections), std::move(psd), std::move(name)});
}

}  // namespace sca::solver
