#include "solver/equation_system.hpp"

#include <algorithm>

#include "util/bytes.hpp"
#include "util/report.hpp"

namespace sca::solver {

std::size_t equation_system::add_unknown(std::string name) {
    names_.push_back(std::move(name));
    const std::size_t n = names_.size();
    a_.resize(n);
    b_.resize(n);
    rhs_constant_.resize(n, 0.0);
    return n - 1;
}

void equation_system::clear_stamps() {
    const std::size_t n = names_.size();
    a_.resize(n);
    b_.resize(n);
    a_.clear();
    b_.clear();
    rhs_constant_.assign(n, 0.0);
    rhs_sources_.clear();
    inputs_.clear();
    nonlinear_.clear();
    ac_sources_.clear();
    noise_sources_.clear();
    slot_values_.clear();
    ledger_a_.clear();
    ledger_b_.clear();
    slot_entries_.clear();
    slots_finalized_ = false;
    ++generation_;
}

void equation_system::append_static_term(matrix_id which, std::size_t row,
                                         std::size_t col, double v) {
    // Ledgers exist only for slot-referencing entries; a static add on one
    // of them must be recorded to keep replay order intact.  Purely static
    // entries never allocate a ledger (their accumulated value is folded
    // into the ledger's prefix constant if a slot reference arrives later).
    auto& ledger = which == matrix_id::a ? ledger_a_ : ledger_b_;
    if (ledger.empty()) return;
    const auto it = ledger.find(entry_key(row, col));
    if (it != ledger.end()) it->second.terms.push_back({no_stamp_handle, v});
}

void equation_system::append_slot_term(matrix_id which, std::size_t row,
                                       std::size_t col, stamp_handle h, double weight) {
    auto& ledger = which == matrix_id::a ? ledger_a_ : ledger_b_;
    auto [it, created] = ledger.try_emplace(entry_key(row, col));
    if (created) {
        // First slot reference on this entry: fold everything stamped so
        // far into one prefix constant.  The prefix is the exact value the
        // matrix accumulated, so replaying prefix + later terms in order
        // reproduces a full restamp bit for bit.
        const auto& mat = which == matrix_id::a ? a_ : b_;
        it->second.terms.push_back({no_stamp_handle, mat.get(row, col)});
    }
    it->second.terms.push_back({h, weight});
    // A new slot dependency after finalize_stamps() must re-index.
    slots_finalized_ = false;
}

void equation_system::add_a(std::size_t row, std::size_t col, double v) {
    a_.add(row, col, v);
    append_static_term(matrix_id::a, row, col, v);
}

void equation_system::add_b(std::size_t row, std::size_t col, double v) {
    b_.add(row, col, v);
    append_static_term(matrix_id::b, row, col, v);
}

stamp_handle equation_system::add_stamp(double initial_value) {
    slot_values_.push_back(initial_value);
    slots_finalized_ = false;  // slot_entries_ must grow before set_stamp
    return slot_values_.size() - 1;
}

void equation_system::stamp_a(stamp_handle h, std::size_t row, std::size_t col,
                              double weight) {
    util::require(h < slot_values_.size(), "equation_system", "invalid stamp handle");
    append_slot_term(matrix_id::a, row, col, h, weight);
    a_.add(row, col, weight * slot_values_[h]);
}

void equation_system::stamp_b(stamp_handle h, std::size_t row, std::size_t col,
                              double weight) {
    util::require(h < slot_values_.size(), "equation_system", "invalid stamp handle");
    append_slot_term(matrix_id::b, row, col, h, weight);
    b_.add(row, col, weight * slot_values_[h]);
}

double equation_system::stamp_value(stamp_handle h) const {
    util::require(h < slot_values_.size(), "equation_system", "invalid stamp handle");
    return slot_values_[h];
}

void equation_system::finalize_stamps() {
    if (slots_finalized_) return;
    slot_entries_.assign(slot_values_.size(), {});
    const auto index = [this](const std::unordered_map<std::uint64_t, entry_ledger>& ledger,
                              matrix_id which) {
        for (const auto& [key, entry] : ledger) {
            const auto row = static_cast<std::size_t>(key >> 32);
            const auto col = static_cast<std::size_t>(key & 0xffffffffULL);
            for (const auto& term : entry.terms) {
                if (term.slot == no_stamp_handle) continue;
                auto& deps = slot_entries_[term.slot];
                const entry_ref ref{which, row, col};
                const bool seen = std::any_of(deps.begin(), deps.end(), [&](const entry_ref& e) {
                    return e.which == which && e.row == row && e.col == col;
                });
                if (!seen) deps.push_back(ref);
            }
        }
    };
    index(ledger_a_, matrix_id::a);
    index(ledger_b_, matrix_id::b);
    slots_finalized_ = true;
}

void equation_system::rewrite_entry(const entry_ref& e) {
    const auto& ledger = e.which == matrix_id::a ? ledger_a_ : ledger_b_;
    const auto it = ledger.find(entry_key(e.row, e.col));
    util::require(it != ledger.end(), "equation_system", "stamp ledger entry missing");
    // Replay every contribution in original stamping order: the sum is
    // bit-identical to what a full restamp with the current slot values
    // would have accumulated through sparse_matrix::add.
    double total = 0.0;
    for (const auto& term : it->second.terms) {
        total += term.slot == no_stamp_handle ? term.weight
                                              : term.weight * slot_values_[term.slot];
    }
    auto& mat = e.which == matrix_id::a ? a_ : b_;
    mat.set_entry(e.row, e.col, total);
}

void equation_system::set_stamp(stamp_handle h, double value) {
    util::require(h < slot_values_.size(), "equation_system", "invalid stamp handle");
    if (slot_values_[h] == value) return;
    finalize_stamps();
    slot_values_[h] = value;
    for (const auto& e : slot_entries_[h]) rewrite_entry(e);
    ++values_generation_;
}

void equation_system::add_rhs_constant(std::size_t row, double v) {
    util::require(row < size(), "equation_system", "rhs row out of range");
    rhs_constant_[row] += v;
}

void equation_system::add_rhs_source(std::size_t row, std::function<double(double)> fn) {
    util::require(row < size(), "equation_system", "rhs row out of range");
    util::require(static_cast<bool>(fn), "equation_system", "null rhs source");
    rhs_sources_.push_back({row, std::move(fn)});
}

std::size_t equation_system::add_input(std::size_t row) {
    util::require(row < size(), "equation_system", "input row out of range");
    inputs_.push_back({row, 0.0});
    return inputs_.size() - 1;
}

void equation_system::set_input(std::size_t slot, double v) {
    util::require(slot < inputs_.size(), "equation_system", "input slot out of range");
    inputs_[slot].value = v;
}

std::vector<double> equation_system::rhs(double t) const {
    std::vector<double> q;
    rhs_into(t, q);
    return q;
}

void equation_system::rhs_into(double t, std::vector<double>& q) const {
    q.assign(rhs_constant_.begin(), rhs_constant_.end());
    q.resize(size(), 0.0);
    for (const auto& s : rhs_sources_) q[s.row] += s.value(t);
    for (const auto& in : inputs_) q[in.row] += in.value;
}

void equation_system::eval_nonlinear(const std::vector<double>& x,
                                     std::vector<double>& residual,
                                     std::vector<jacobian_entry>& jacobian) const {
    for (const auto& fn : nonlinear_) fn(x, residual, jacobian);
}

void equation_system::add_ac_source(std::size_t row, std::complex<double> amplitude) {
    util::require(row < size(), "equation_system", "ac source row out of range");
    ac_sources_.push_back({row, amplitude});
}

void equation_system::add_noise_source(
    std::vector<std::pair<std::size_t, double>> injections,
    std::function<double(double)> psd, std::string name) {
    for (const auto& [row, weight] : injections) {
        (void)weight;
        util::require(row < size(), "equation_system", "noise source row out of range");
    }
    noise_sources_.push_back({std::move(injections), std::move(psd), std::move(name)});
}

// --------------------------------------------------------------- snapshot --

namespace {

void save_matrix(util::byte_writer& w, const num::sparse_matrix_d& m) {
    w.u64(m.size());
    for (std::size_t r = 0; r < m.size(); ++r) {
        const auto& idx = m.row_indices(r);
        const auto& val = m.row_values(r);
        w.u64(idx.size());
        for (std::size_t k = 0; k < idx.size(); ++k) {
            w.u64(idx[k]);
            w.f64(val[k]);
        }
    }
}

/// Overlay saved values onto `m`, requiring the saved sparsity pattern to
/// match the freshly rebuilt one exactly — a mismatch means the restored
/// process rebuilt a structurally different system.
void restore_matrix(util::byte_reader& r, num::sparse_matrix_d& m, const char* which) {
    const auto n = static_cast<std::size_t>(r.u64());
    util::require(n == m.size(), "snapshot",
                  std::string("matrix ") + which + ": rebuilt size differs from snapshot");
    for (std::size_t row = 0; row < n; ++row) {
        const auto& idx = m.row_indices(row);
        const auto count = static_cast<std::size_t>(r.u64());
        util::require(count == idx.size(), "snapshot",
                      std::string("matrix ") + which +
                          ": rebuilt sparsity pattern differs from snapshot");
        for (std::size_t k = 0; k < count; ++k) {
            const auto col = static_cast<std::size_t>(r.u64());
            const double v = r.f64();
            util::require(col == idx[k], "snapshot",
                          std::string("matrix ") + which +
                              ": rebuilt sparsity pattern differs from snapshot");
            m.set_entry(row, col, v);
        }
    }
}

}  // namespace

void equation_system::save_state(util::byte_writer& w) const {
    w.u64(names_.size());
    save_matrix(w, a_);
    save_matrix(w, b_);
    w.f64_vec(slot_values_);
    w.f64_vec(rhs_constant_);
    w.u64(inputs_.size());
    for (const auto& in : inputs_) w.f64(in.value);
    w.u64(generation_);
    w.u64(values_generation_);
}

void equation_system::restore_state(util::byte_reader& r) {
    const auto n = static_cast<std::size_t>(r.u64());
    util::require(n == names_.size(), "snapshot",
                  "equation system: rebuilt unknown count differs from snapshot");
    restore_matrix(r, a_, "A");
    restore_matrix(r, b_, "B");
    std::vector<double> slots = r.f64_vec();
    util::require(slots.size() == slot_values_.size(), "snapshot",
                  "equation system: rebuilt stamp-slot count differs from snapshot");
    slot_values_ = std::move(slots);
    std::vector<double> rhs_c = r.f64_vec();
    util::require(rhs_c.size() == rhs_constant_.size(), "snapshot",
                  "equation system: rebuilt rhs size differs from snapshot");
    rhs_constant_ = std::move(rhs_c);
    const auto n_inputs = static_cast<std::size_t>(r.u64());
    util::require(n_inputs == inputs_.size(), "snapshot",
                  "equation system: rebuilt input-slot count differs from snapshot");
    for (auto& in : inputs_) in.value = r.f64();
    generation_ = r.u64();
    values_generation_ = r.u64();
}

}  // namespace sca::solver
