#include "solver/noise.hpp"

#include <cmath>
#include <numbers>

#include "numeric/sparse.hpp"
#include "util/report.hpp"

namespace sca::solver {

double noise_result::integrated_rms() const {
    double power = 0.0;
    for (std::size_t i = 1; i < points.size(); ++i) {
        const double df = points[i].frequency - points[i - 1].frequency;
        power += 0.5 * (points[i].total_psd + points[i - 1].total_psd) * df;
    }
    return std::sqrt(power);
}

noise_solver::noise_solver(const equation_system& sys) : sys_(&sys) {
    util::require(sys.is_linear(), "noise_solver",
                  "nonlinear system requires a DC operating point for noise analysis");
}

noise_solver::noise_solver(const equation_system& sys,
                           const std::vector<double>& dc_operating_point)
    : sys_(&sys), dc_(dc_operating_point), have_dc_(true) {}

noise_result noise_solver::analyze(std::size_t output, const sweep& sw) const {
    util::require(output < sys_->size(), "noise_solver", "output index out of range");
    const auto& sources = sys_->noise_sources();

    noise_result result;
    for (const auto& s : sources) result.source_names.push_back(s.name);

    // Build the linearized complex system once per frequency, then reuse the
    // factorization for every source (one forward/back substitution each).
    const std::size_t n = sys_->size();
    num::sparse_matrix_d a(n);
    a.add_scaled(sys_->a(), 1.0);
    if (!sys_->is_linear()) {
        std::vector<double> residual(n, 0.0);
        std::vector<jacobian_entry> jac;
        sys_->eval_nonlinear(dc_, residual, jac);
        for (const auto& e : jac) a.add(e.row, e.col, e.value);
    }

    // One complex matrix + factorization reused across the sweep: the
    // pattern is frequency-independent, so only the first point pays the
    // symbolic analysis (numeric-only refactor afterwards).
    num::sparse_matrix_z m(n);
    num::sparse_lu_z lu;
    bool first_point = true;
    for (double f : sw.frequencies()) {
        const double omega = 2.0 * std::numbers::pi * f;
        if (!first_point) m.zero_values();
        first_point = false;
        for (std::size_t r = 0; r < n; ++r) {
            const auto& idx = a.row_indices(r);
            const auto& val = a.row_values(r);
            for (std::size_t k = 0; k < idx.size(); ++k) {
                m.add(r, idx[k], std::complex<double>(val[k], 0.0));
            }
        }
        const auto& b = sys_->b();
        for (std::size_t r = 0; r < n; ++r) {
            const auto& idx = b.row_indices(r);
            const auto& val = b.row_values(r);
            for (std::size_t k = 0; k < idx.size(); ++k) {
                m.add(r, idx[k], std::complex<double>(0.0, omega * val[k]));
            }
        }
        if (!lu.refactor(m)) lu.factor(m);

        noise_point pt;
        pt.frequency = f;
        pt.total_psd = 0.0;
        pt.per_source.reserve(sources.size());
        std::vector<std::complex<double>> u(n, {0.0, 0.0});
        for (const auto& s : sources) {
            u.assign(n, {0.0, 0.0});
            for (const auto& [row, weight] : s.injections) u[row] += weight;
            const auto x = lu.solve(u);
            const double h2 = std::norm(x[output]);
            const double contribution = h2 * s.psd(f);
            pt.per_source.push_back(contribution);
            pt.total_psd += contribution;
        }
        result.points.push_back(std::move(pt));
    }
    return result;
}

}  // namespace sca::solver
