// DC (quiescent) operating point computation — the "consistent initial
// state" the paper requires for mixed-signal synchronization (§3: "the
// synchronization also requires the formal definition of a consistent
// initial (quiescent) state for the whole mixed-signal system").
#ifndef SCA_SOLVER_DC_HPP
#define SCA_SOLVER_DC_HPP

#include <vector>

#include "solver/equation_system.hpp"

namespace sca::solver {

struct dc_options {
    /// Newton iteration limit for nonlinear systems.
    int max_iterations = 100;
    double abstol = 1e-12;
    double reltol = 1e-9;
    /// Pseudo-transient time constant used when A alone is singular
    /// (e.g. floating capacitor nodes); larger = closer to true DC.
    double pseudo_tau = 1e6;
};

/// Compute x such that A x + g(x) = q(t0).
///
/// Linear path: direct sparse LU of A; if A is singular (states whose DC
/// value is fixed by initial conditions, not by the resistive network), a
/// regularized solve of (A + B/tau) is used, which converges to the DC
/// solution on the resistive subspace and leaves pure-integrator states at 0.
/// Nonlinear path: damped Newton from x = 0 with the same regularization
/// fallback.
[[nodiscard]] std::vector<double> dc_solve(const equation_system& sys, double t0,
                                           const dc_options& opt = {});

}  // namespace sca::solver

#endif  // SCA_SOLVER_DC_HPP
