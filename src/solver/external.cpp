#include "solver/external.hpp"

#include <cmath>

#include "util/report.hpp"

namespace sca::solver {

rk4_solver::rk4_solver(double max_internal_step) : max_internal_step_(max_internal_step) {}

void rk4_solver::configure(std::size_t n_states, std::size_t n_inputs, ode_rhs rhs) {
    util::require(n_states > 0, "rk4_solver", "state count must be positive");
    util::require(static_cast<bool>(rhs), "rk4_solver", "null derivative function");
    n_states_ = n_states;
    n_inputs_ = n_inputs;
    rhs_ = std::move(rhs);
    x_.assign(n_states, 0.0);
}

void rk4_solver::set_state(const std::vector<double>& x0) {
    util::require(x0.size() == n_states_, "rk4_solver", "state dimension mismatch");
    x_ = x0;
}

void rk4_solver::advance(double t, double dt, const std::vector<double>& u) {
    util::require(static_cast<bool>(rhs_), "rk4_solver", "advance before configure");
    util::require(u.size() == n_inputs_, "rk4_solver", "input dimension mismatch");
    util::require(dt > 0.0, "rk4_solver", "dt must be positive");
    std::size_t substeps = 1;
    if (max_internal_step_ > 0.0 && dt > max_internal_step_) {
        substeps = static_cast<std::size_t>(std::ceil(dt / max_internal_step_));
    }
    const double h = dt / static_cast<double>(substeps);
    double tk = t;
    for (std::size_t k = 0; k < substeps; ++k) {
        rk4_step(tk, h, u);
        tk += h;
    }
}

void rk4_solver::rk4_step(double t, double h, const std::vector<double>& u) {
    const std::size_t n = n_states_;
    std::vector<double> k1(n), k2(n), k3(n), k4(n), xt(n);

    rhs_(t, x_, u, k1);
    for (std::size_t i = 0; i < n; ++i) xt[i] = x_[i] + 0.5 * h * k1[i];
    rhs_(t + 0.5 * h, xt, u, k2);
    for (std::size_t i = 0; i < n; ++i) xt[i] = x_[i] + 0.5 * h * k2[i];
    rhs_(t + 0.5 * h, xt, u, k3);
    for (std::size_t i = 0; i < n; ++i) xt[i] = x_[i] + h * k3[i];
    rhs_(t + h, xt, u, k4);
    for (std::size_t i = 0; i < n; ++i) {
        x_[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
    rhs_evals_ += 4;
}

}  // namespace sca::solver
