#include "solver/ac.hpp"

#include <cmath>
#include <numbers>

#include "numeric/sparse.hpp"
#include "util/report.hpp"

namespace sca::solver {

std::vector<double> sweep::frequencies() const {
    util::require(points >= 1, "sweep", "at least one point required");
    util::require(f_start > 0.0 || kind == scale::linear, "sweep",
                  "logarithmic sweep requires a positive start frequency");
    std::vector<double> fs;
    fs.reserve(points);
    if (points == 1) {
        fs.push_back(f_start);
        return fs;
    }
    for (std::size_t i = 0; i < points; ++i) {
        const double u = static_cast<double>(i) / static_cast<double>(points - 1);
        if (kind == scale::logarithmic) {
            fs.push_back(f_start * std::pow(f_stop / f_start, u));
        } else {
            fs.push_back(f_start + (f_stop - f_start) * u);
        }
    }
    return fs;
}

namespace {
num::sparse_matrix_d linearize(const equation_system& sys,
                               const std::vector<double>* dc) {
    num::sparse_matrix_d a(sys.size());
    a.add_scaled(sys.a(), 1.0);
    if (!sys.is_linear()) {
        util::require(dc != nullptr, "ac_solver",
                      "nonlinear system requires a DC operating point for AC analysis");
        std::vector<double> residual(sys.size(), 0.0);
        std::vector<jacobian_entry> jac;
        sys.eval_nonlinear(*dc, residual, jac);
        for (const auto& e : jac) a.add(e.row, e.col, e.value);
    }
    return a;
}
}  // namespace

ac_solver::ac_solver(const equation_system& sys)
    : sys_(&sys), a_linearized_(linearize(sys, nullptr)) {}

ac_solver::ac_solver(const equation_system& sys, const std::vector<double>& dc)
    : sys_(&sys), a_linearized_(linearize(sys, &dc)) {}

std::vector<std::complex<double>> ac_solver::solve(double f) const {
    const std::size_t n = sys_->size();
    const double omega = 2.0 * std::numbers::pi * f;

    // The pattern of A + j*omega*B is frequency-independent: build the
    // complex matrix once, then rewrite values per frequency and reuse the
    // cached symbolic factorization (numeric-only refactor per point).
    if (!cache_valid_) {
        m_cache_ = num::sparse_matrix_z(n);
        cache_valid_ = true;
    } else {
        m_cache_.zero_values();
    }
    num::sparse_matrix_z& m = m_cache_;
    for (std::size_t r = 0; r < n; ++r) {
        const auto& idx = a_linearized_.row_indices(r);
        const auto& val = a_linearized_.row_values(r);
        for (std::size_t k = 0; k < idx.size(); ++k) {
            m.add(r, idx[k], std::complex<double>(val[k], 0.0));
        }
    }
    const auto& b = sys_->b();
    for (std::size_t r = 0; r < n; ++r) {
        const auto& idx = b.row_indices(r);
        const auto& val = b.row_values(r);
        for (std::size_t k = 0; k < idx.size(); ++k) {
            m.add(r, idx[k], std::complex<double>(0.0, omega * val[k]));
        }
    }

    std::vector<std::complex<double>> u(n, {0.0, 0.0});
    for (const auto& s : sys_->ac_sources()) u[s.row] += s.amplitude;

    if (!lu_cache_.refactor(m)) lu_cache_.factor(m);
    return lu_cache_.solve(u);
}

std::vector<std::complex<double>> ac_solver::transfer(std::size_t output,
                                                      const sweep& sw) const {
    util::require(output < sys_->size(), "ac_solver", "output index out of range");
    std::vector<std::complex<double>> h;
    for (double f : sw.frequencies()) h.push_back(solve(f)[output]);
    return h;
}

double magnitude_db(const std::complex<double>& h) { return 20.0 * std::log10(std::abs(h)); }

double phase_deg(const std::complex<double>& h) {
    return std::arg(h) * 180.0 / std::numbers::pi;
}

}  // namespace sca::solver
