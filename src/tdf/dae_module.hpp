// Embedding of continuous-time equation clusters into the dataflow world
// (paper §3: "Continuous behaviour encapsulated in static dataflow modules").
//
// A dae_module owns one equation_system and advances it by one TDF timestep
// per activation.  Linear systems use the fixed-step linear DAE solver
// (factor once, solve per step); systems with nonlinear elements
// transparently switch to the variable-step Newton solver, which takes as
// many internal steps as the error control demands and resynchronizes at
// every TDF sample point (paper phase 2).
#ifndef SCA_TDF_DAE_MODULE_HPP
#define SCA_TDF_DAE_MODULE_HPP

#include <memory>

#include "solver/dc.hpp"
#include "solver/equation_system.hpp"
#include "solver/linear_dae.hpp"
#include "solver/nonlinear_dae.hpp"
#include "tdf/module.hpp"

namespace sca::tdf {

class dae_module : public module {
public:
    /// The shared equation system (the paper's "equation interface"): AC and
    /// noise analyses operate on it directly. Valid after elaboration; call
    /// build_now() to force assembly before the first activation.
    [[nodiscard]] solver::equation_system& equations();

    /// Current continuous state vector (valid after the first activation).
    [[nodiscard]] const std::vector<double>& state() const { return state_; }

    /// Integration method for the linear fixed-step path.
    void set_integration_method(solver::integration_method m) { method_ = m; }

    /// Options for the nonlinear variable-step path.
    void set_nonlinear_options(const solver::nonlinear_options& o) { nl_options_ = o; }

    /// Assemble equations if not done yet (for AC/noise before a transient).
    void build_now();

    /// Per-step solver statistics: numeric factorization passes, and full
    /// symbolic analyses (pivot order + fill pattern). A values-only restamp
    /// advances only the former.
    [[nodiscard]] std::uint64_t factorizations() const noexcept;
    [[nodiscard]] std::uint64_t symbolic_factorizations() const noexcept;

    /// A dae_module tolerates dynamic-TDF retiming natively: a cluster
    /// timestep change only moves h, which the linear solver absorbs as a
    /// values-only numeric refactor of the iteration matrix (c_a A + B/h)
    /// and the nonlinear solver by resynchronizing its internal variable
    /// step at the new sample points.
    [[nodiscard]] bool accept_attribute_changes() const override { return true; }

    /// Incremental restamping (default on): components with stamp slots
    /// push value updates straight into the equation system, and the solver
    /// answers with a numeric-only refactor. When off, every value update is
    /// escalated to a full restamp + symbolic factorization — the
    /// rebuild-the-world baseline kept for A/B benches and equivalence tests.
    void set_incremental_updates(bool on) noexcept { incremental_updates_ = on; }
    [[nodiscard]] bool incremental_updates() const noexcept {
        return incremental_updates_;
    }

    void processing() final;

    // --- checkpoint/restore (core/snapshot) ---------------------------------
    /// Serialize assembly flags, the continuous state, the (possibly
    /// fixed-up) nonlinear options, the equation system's values, and the
    /// active solver.  Restore re-runs build_equations() on the rebuilt
    /// components, overlays the equation values (refusing on a sparsity-
    /// pattern mismatch), then recreates and restores the solver so its
    /// frozen pivot order replays bit-identically.
    [[nodiscard]] bool has_snapshot_state() const noexcept override { return true; }
    void save_state(util::byte_writer& w) const override;
    void restore_state(util::byte_reader& r) override;

protected:
    explicit dae_module(const de::module_name& nm) : module(nm) {}

    /// Direct system access without triggering assembly; views use this to
    /// register unknowns during model construction and to stamp inside
    /// build_equations().
    [[nodiscard]] solver::equation_system& raw_system() noexcept { return sys_; }

    // --- customization points for the concrete views (ELN, LSF) -------------
    /// Stamp all components into `equations()`.
    virtual void build_equations() = 0;
    /// Move TDF/DE port samples into the equation system's input slots.
    virtual void read_inputs() {}
    /// Move solution values to TDF/DE output ports.
    virtual void write_outputs() {}
    /// Initial state at t=0; default is the DC operating point.
    virtual std::vector<double> initial_state();

    /// Components call this when their stamp *pattern* may have changed
    /// (topology edits); the system is rebuilt from scratch and the solver
    /// re-runs symbolic analysis before the next step.
    void request_restamp() { restamp_requested_ = true; }

    /// Components call this after writing new values into existing stamp
    /// slots (switch toggle, parameter change): no rebuild, the solver does
    /// a numeric-only refactor. Escalates to a full restamp when
    /// incremental updates are disabled.
    void request_value_update() {
        if (incremental_updates_) {
            value_update_requested_ = true;
        } else {
            restamp_requested_ = true;
        }
    }

    /// Continuous time of the sample being produced (seconds).
    [[nodiscard]] double solve_time() const noexcept { return solve_time_; }

private:
    void rebuild();

    solver::equation_system sys_;
    std::unique_ptr<solver::linear_dae_solver> linear_;
    std::unique_ptr<solver::nonlinear_dae_solver> nonlinear_;
    std::vector<double> state_;
    solver::integration_method method_ = solver::integration_method::trapezoidal;
    solver::nonlinear_options nl_options_;
    bool built_ = false;
    bool first_activation_ = true;
    bool restamp_requested_ = false;
    bool value_update_requested_ = false;
    bool incremental_updates_ = true;
    double solve_time_ = 0.0;
};

}  // namespace sca::tdf

#endif  // SCA_TDF_DAE_MODULE_HPP
