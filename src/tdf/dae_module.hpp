// Embedding of continuous-time equation clusters into the dataflow world
// (paper §3: "Continuous behaviour encapsulated in static dataflow modules").
//
// A dae_module owns one equation_system and advances it by one TDF timestep
// per activation.  Linear systems use the fixed-step linear DAE solver
// (factor once, solve per step); systems with nonlinear elements
// transparently switch to the variable-step Newton solver, which takes as
// many internal steps as the error control demands and resynchronizes at
// every TDF sample point (paper phase 2).
#ifndef SCA_TDF_DAE_MODULE_HPP
#define SCA_TDF_DAE_MODULE_HPP

#include <memory>

#include "solver/dc.hpp"
#include "solver/equation_system.hpp"
#include "solver/linear_dae.hpp"
#include "solver/nonlinear_dae.hpp"
#include "tdf/module.hpp"

namespace sca::tdf {

class dae_module : public module {
public:
    /// The shared equation system (the paper's "equation interface"): AC and
    /// noise analyses operate on it directly. Valid after elaboration; call
    /// build_now() to force assembly before the first activation.
    [[nodiscard]] solver::equation_system& equations();

    /// Current continuous state vector (valid after the first activation).
    [[nodiscard]] const std::vector<double>& state() const { return state_; }

    /// Integration method for the linear fixed-step path.
    void set_integration_method(solver::integration_method m) { method_ = m; }

    /// Options for the nonlinear variable-step path.
    void set_nonlinear_options(const solver::nonlinear_options& o) { nl_options_ = o; }

    /// Assemble equations if not done yet (for AC/noise before a transient).
    void build_now();

    /// Per-step solver statistics.
    [[nodiscard]] std::uint64_t factorizations() const noexcept;

    void processing() final;

protected:
    explicit dae_module(const de::module_name& nm) : module(nm) {}

    /// Direct system access without triggering assembly; views use this to
    /// register unknowns during model construction and to stamp inside
    /// build_equations().
    [[nodiscard]] solver::equation_system& raw_system() noexcept { return sys_; }

    // --- customization points for the concrete views (ELN, LSF) -------------
    /// Stamp all components into `equations()`.
    virtual void build_equations() = 0;
    /// Move TDF/DE port samples into the equation system's input slots.
    virtual void read_inputs() {}
    /// Move solution values to TDF/DE output ports.
    virtual void write_outputs() {}
    /// Initial state at t=0; default is the DC operating point.
    virtual std::vector<double> initial_state();

    /// Components call this when their stamps changed (e.g. switch toggled);
    /// the system is restamped and the solver refactored before the next step.
    void request_restamp() { restamp_requested_ = true; }

    /// Continuous time of the sample being produced (seconds).
    [[nodiscard]] double solve_time() const noexcept { return solve_time_; }

private:
    void rebuild();

    solver::equation_system sys_;
    std::unique_ptr<solver::linear_dae_solver> linear_;
    std::unique_ptr<solver::nonlinear_dae_solver> nonlinear_;
    std::vector<double> state_;
    solver::integration_method method_ = solver::integration_method::trapezoidal;
    solver::nonlinear_options nl_options_;
    bool built_ = false;
    bool first_activation_ = true;
    bool restamp_requested_ = false;
    double solve_time_ = 0.0;
};

}  // namespace sca::tdf

#endif  // SCA_TDF_DAE_MODULE_HPP
