#include "tdf/dae_module.hpp"

#include "util/bytes.hpp"
#include "util/report.hpp"
#include "util/trace_export.hpp"

namespace sca::tdf {

namespace {
void nonlinear_options_fixup(solver::nonlinear_options& o, double h) {
    // The TDF timestep bounds the nonlinear solver's step: it must never
    // overshoot a synchronization point, and a sensible default starts at
    // the TDF step and refines from there.
    if (o.h_max > h || o.h_max <= 0.0) o.h_max = h;
    if (o.h_init > o.h_max) o.h_init = o.h_max;
}
}  // namespace

solver::equation_system& dae_module::equations() {
    build_now();
    return sys_;
}

void dae_module::build_now() {
    if (built_) return;
    built_ = true;  // set first: build_equations may query equations()
    build_equations();
    sys_.finalize_stamps();
}

std::vector<double> dae_module::initial_state() {
    return solver::dc_solve(sys_, solve_time_);
}

std::uint64_t dae_module::factorizations() const noexcept {
    if (linear_) return linear_->factor_count();
    if (nonlinear_) return nonlinear_->factorizations();
    return 0;
}

std::uint64_t dae_module::symbolic_factorizations() const noexcept {
    if (linear_) return linear_->symbolic_factor_count();
    if (nonlinear_) return nonlinear_->symbolic_factorizations();
    return 0;
}

void dae_module::rebuild() {
    SCA_TRACE_SPAN_T(&context().tracer(), "dae.symbolic_rebuild", "solver", solve_time_);
    sys_.clear_stamps();
    build_equations();
    sys_.finalize_stamps();
    restamp_requested_ = false;
}

void dae_module::processing() {
    const double h = timestep().to_seconds();
    util::require(h > 0.0, name(), "DAE module needs a resolved timestep");
    solve_time_ = tdf_time().to_seconds();

    build_now();
    read_inputs();

    if (first_activation_) {
        SCA_TRACE_SPAN_T(&context().tracer(), "dae.init", "solver", solve_time_);
        first_activation_ = false;
        // Components that sampled their controls in read_inputs() above have
        // already pushed slot values into the system; a pattern-level change
        // still needs the rebuild before the initial state is computed.
        if (restamp_requested_) rebuild();
        value_update_requested_ = false;
        state_ = initial_state();
        if (sys_.is_linear()) {
            linear_ = std::make_unique<solver::linear_dae_solver>(sys_, method_, h);
            linear_->set_initial_state(state_, solve_time_);
        } else {
            nonlinear_options_fixup(nl_options_, h);
            nonlinear_ = std::make_unique<solver::nonlinear_dae_solver>(sys_, nl_options_);
            nonlinear_->set_initial_state(state_, solve_time_);
        }
        write_outputs();
        return;
    }

    // A restamp re-runs symbolic analysis; a values-only update refactors
    // numerically against the cached pattern.  Either way the stamps moved
    // discontinuously, so one BE step re-establishes algebraic consistency
    // (the trapezoidal rule rings forever on a stamp discontinuity).
    const bool discontinuity = restamp_requested_ || value_update_requested_;
    if (restamp_requested_) rebuild();
    value_update_requested_ = false;
    if (discontinuity && linear_) linear_->force_backward_euler_next();

    // Dynamic TDF: a rescheduled cluster hands this module a new timestep.
    // For the linear solver that is a values-only change of the iteration
    // matrix (c_a A + B/h): the numeric refactor replays against the cached
    // symbolic analysis, no symbolic pass.  The nonlinear solver controls
    // its own internal step and resynchronizes at advance_to(solve_time_).
    if (linear_ && linear_->timestep() != h) linear_->set_timestep(h);

    {
        SCA_TRACE_SPAN_T(&context().tracer(), "dae.step", "solver", solve_time_);
        if (linear_) {
            linear_->step();
            state_ = linear_->x();
        } else {
            nonlinear_->advance_to(solve_time_);
            state_ = nonlinear_->x();
        }
    }
    write_outputs();
}

// --------------------------------------------------------------- snapshot --

void dae_module::save_state(util::byte_writer& w) const {
    w.boolean(built_);
    w.boolean(first_activation_);
    w.boolean(restamp_requested_);
    w.boolean(value_update_requested_);
    w.boolean(incremental_updates_);
    w.u8(static_cast<std::uint8_t>(method_));
    w.f64(solve_time_);
    w.f64_vec(state_);
    // Nonlinear options after the timestep fixup the first activation applied.
    w.f64(nl_options_.h_init);
    w.f64(nl_options_.h_min);
    w.f64(nl_options_.h_max);
    w.f64(nl_options_.lte_abstol);
    w.f64(nl_options_.lte_reltol);
    w.boolean(nl_options_.adaptive);
    w.i64(nl_options_.newton.max_iterations);
    w.f64(nl_options_.newton.abstol);
    w.f64(nl_options_.newton.reltol);
    if (built_) sys_.save_state(w);
    w.u8(linear_ ? 1 : (nonlinear_ ? 2 : 0));
    if (linear_) linear_->save_state(w);
    if (nonlinear_) nonlinear_->save_state(w);
}

void dae_module::restore_state(util::byte_reader& r) {
    const bool was_built = r.boolean();
    first_activation_ = r.boolean();
    restamp_requested_ = r.boolean();
    value_update_requested_ = r.boolean();
    incremental_updates_ = r.boolean();
    method_ = static_cast<solver::integration_method>(r.u8());
    solve_time_ = r.f64();
    state_ = r.f64_vec();
    nl_options_.h_init = r.f64();
    nl_options_.h_min = r.f64();
    nl_options_.h_max = r.f64();
    nl_options_.lte_abstol = r.f64();
    nl_options_.lte_reltol = r.f64();
    nl_options_.adaptive = r.boolean();
    nl_options_.newton.max_iterations = static_cast<int>(r.i64());
    nl_options_.newton.abstol = r.f64();
    nl_options_.newton.reltol = r.f64();
    if (was_built) {
        // Fresh assembly from the rebuilt components, then value overlay:
        // component hooks restoring their own state (a switch position) run
        // after this in the hierarchy walk, which is harmless — the overlay
        // already carries the values their state produced.
        build_now();
        sys_.restore_state(r);
    }
    const std::uint8_t solver_kind = r.u8();
    if (solver_kind == 1) {
        // Placeholder timestep: the solver's own restore reads the real one.
        linear_ = std::make_unique<solver::linear_dae_solver>(sys_, method_, 1.0);
        linear_->restore_state(r);
    } else if (solver_kind == 2) {
        nonlinear_ = std::make_unique<solver::nonlinear_dae_solver>(sys_, nl_options_);
        nonlinear_->restore_state(r);
    }
}

}  // namespace sca::tdf
