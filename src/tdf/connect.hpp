// Point-to-point TDF wiring without boilerplate signal declarations.
//
//   connect(src.out, lna.in);        // auto-creates the intermediate signal
//   src.out >> lna.in;               // same, operator form
//   auto& w = connect(a.out, b.in);  // the signal is returned for probing
//   connect(a.out, c.in);            // fan-out: reuses a.out's signal
//
// The auto-created signal is owned by the per-context TDF registry (it lives
// until the simulation context dies) and is named after the writer port; when
// called during a composite's construction the signal nests below the
// composite in the object hierarchy.
#ifndef SCA_TDF_CONNECT_HPP
#define SCA_TDF_CONNECT_HPP

#include <memory>
#include <string>
#include <utility>

#include "tdf/cluster.hpp"
#include "tdf/port.hpp"

namespace sca::tdf {

/// Bind `from` and `to` through a tdf::signal<T>, creating (and owning) the
/// signal when `from` is not yet attached to one.  Returns the signal so
/// callers can probe it.  Repeated connects from the same output fan out on
/// the one signal (naming the wire is only allowed on the connect that
/// creates it); connecting an already-bound input is a binding error.
template <typename T>
signal<T>& connect(out<T>& from, in<T>& to, std::string name = "") {
    from.context().make_current();
    if (auto* existing = dynamic_cast<signal<T>*>(from.bound_signal())) {
        util::require(name.empty(), from.name(),
                      "connect: wire name '" + name +
                          "' cannot be applied — this output already drives signal '" +
                          existing->name() + "' (name the first connect instead)");
        to.bind(*existing);
        return *existing;
    }
    if (name.empty()) name = detail::auto_wire_name(from);
    auto owned = std::make_unique<signal<T>>(std::move(name));
    auto& s = static_cast<signal<T>&>(
        registry::of(from.context()).adopt_signal(std::move(owned)));
    from.bind(s);
    to.bind(s);
    return s;
}

/// `a.out >> b.in` — the operator spelling of connect().
template <typename T>
signal<T>& operator>>(out<T>& from, in<T>& to) {
    return connect(from, to);
}

}  // namespace sca::tdf

#endif  // SCA_TDF_CONNECT_HPP
