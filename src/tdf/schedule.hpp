// Static scheduling for synchronous dataflow graphs: repetition-vector
// computation and compilation of the firing order into a flat, preallocated
// firing program.
//
// The repetition vector solves the balance equations
// rep[from] * out_rate == rep[to] * in_rate for every edge (minimal positive
// integer solution) and reports rate inconsistencies (graphs with no finite
// static schedule).  compile_schedule() then runs the PASS construction
// (Lee/Messerschmitt) once at elaboration and emits a run-length-encoded
// firing program plus exact ring-buffer capacities, so per-sample execution
// needs no dynamic scheduling, map lookups, or allocations.
#ifndef SCA_TDF_SCHEDULE_HPP
#define SCA_TDF_SCHEDULE_HPP

#include <cstdint>
#include <vector>

namespace sca::tdf {

struct rate_edge {
    std::size_t from;        // producing module index
    std::size_t to;          // consuming module index
    unsigned out_rate;       // tokens produced per firing of `from`
    unsigned in_rate;        // tokens consumed per firing of `to`
};

/// Minimal repetition vector for `n` modules under the balance equations of
/// `edges`. Modules not touched by any edge get repetition 1.
/// Throws sca::util::error for inconsistent rates.
[[nodiscard]] std::vector<std::uint64_t> repetition_vector(std::size_t n,
                                                           const std::vector<rate_edge>& edges);

/// One end of a dataflow signal: which module it belongs to and how many
/// tokens move per firing (plus initial delay tokens shifting the stream).
struct sdf_endpoint {
    std::size_t module = 0;
    unsigned rate = 1;
    unsigned delay = 0;
};

/// Abstract description of one dataflow signal: a single writer and any
/// number of readers.
struct sdf_signal_desc {
    sdf_endpoint writer;
    std::vector<sdf_endpoint> readers;
};

/// One entry of the compiled firing program: fire `count` consecutive
/// activations of `module`, starting at firing index `first_firing` within
/// the cluster cycle.  Consecutive firings of the same module are merged so
/// the executor's outer loop touches each entry once.
struct firing_entry {
    std::size_t module = 0;
    std::uint64_t first_firing = 0;
    std::uint64_t count = 0;
};

/// Result of schedule compilation: the flat firing program and, per signal,
/// the ring-buffer capacity (in tokens) needed to run it.  Buffers hold at
/// least one full period of tokens (writer rate x writer repetitions), so a
/// cluster cycle never wraps mid-period.
struct compiled_schedule {
    std::vector<firing_entry> program;
    std::vector<std::size_t> buffer_capacity;  // indexed like `signals`
    std::uint64_t total_firings = 0;
};

/// Run the PASS construction over the graph described by `repetitions` (from
/// repetition_vector) and `signals`, producing the firing program and buffer
/// capacities.  Throws sca::util::error on dataflow deadlock (a cycle with
/// insufficient delay tokens).
[[nodiscard]] compiled_schedule compile_schedule(const std::vector<std::uint64_t>& repetitions,
                                                 const std::vector<sdf_signal_desc>& signals);

}  // namespace sca::tdf

#endif  // SCA_TDF_SCHEDULE_HPP
