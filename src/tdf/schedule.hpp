// Repetition-vector computation for synchronous dataflow graphs.
//
// Solves the balance equations rep[from] * out_rate == rep[to] * in_rate for
// every edge, returning the minimal positive integer solution, and reports
// rate inconsistencies (graphs with no finite static schedule).
#ifndef SCA_TDF_SCHEDULE_HPP
#define SCA_TDF_SCHEDULE_HPP

#include <cstdint>
#include <vector>

namespace sca::tdf {

struct rate_edge {
    std::size_t from;        // producing module index
    std::size_t to;          // consuming module index
    unsigned out_rate;       // tokens produced per firing of `from`
    unsigned in_rate;        // tokens consumed per firing of `to`
};

/// Minimal repetition vector for `n` modules under the balance equations of
/// `edges`. Modules not touched by any edge get repetition 1.
/// Throws sca::util::error for inconsistent rates.
[[nodiscard]] std::vector<std::uint64_t> repetition_vector(std::size_t n,
                                                           const std::vector<rate_edge>& edges);

}  // namespace sca::tdf

#endif  // SCA_TDF_SCHEDULE_HPP
