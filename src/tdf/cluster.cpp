#include "tdf/cluster.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <numeric>

#include "kernel/process.hpp"
#include "kernel/signal.hpp"
#include "tdf/dae_module.hpp"
#include "tdf/module.hpp"
#include "tdf/port.hpp"
#include "util/bytes.hpp"
#include "util/report.hpp"
#include "util/trace_export.hpp"

namespace sca::tdf {

namespace {

/// True if any object below `o` is a bound DE port (converter ports are
/// members of the module, so they appear in its object subtree).
bool subtree_has_bound_de_port(const de::object* o) {
    for (const de::object* c : o->children()) {
        if (const auto* p = dynamic_cast<const de::port_base*>(c); p != nullptr && p->bound()) {
            return true;
        }
        if (subtree_has_bound_de_port(c)) return true;
    }
    return false;
}

}  // namespace

cluster::cluster(std::vector<module*> modules) : modules_(std::move(modules)) {
    // Collect the signals touched by member ports (unique, writer required).
    for (module* m : modules_) {
        for (port_base* p : m->ports()) {
            signal_base* s = p->bound_signal();
            util::require(s != nullptr, p->name(), "TDF port is unbound");
            if (std::find(signals_.begin(), signals_.end(), s) == signals_.end()) {
                signals_.push_back(s);
            }
        }
    }
    for (signal_base* s : signals_) {
        util::require(s->writer() != nullptr, s->name(), "TDF signal has no writer");
    }
}

void cluster::compute_repetitions() {
    std::map<module*, std::size_t> index;
    for (std::size_t i = 0; i < modules_.size(); ++i) index[modules_[i]] = i;

    std::vector<rate_edge> edges;
    for (signal_base* s : signals_) {
        const std::size_t from = index.at(s->writer()->owner());
        for (port_base* r : s->readers()) {
            edges.push_back({from, index.at(r->owner()), s->writer()->rate(), r->rate()});
        }
    }
    const auto reps = repetition_vector(modules_.size(), edges);
    for (std::size_t i = 0; i < modules_.size(); ++i) {
        modules_[i]->set_repetitions(reps[i]);
    }
}

void cluster::resolve_timesteps() {
    // Collect timestep anchors: module-level requests and port-level requests
    // (a port request anchors its owner at rate * port_timestep).
    period_ = de::time::zero();
    std::string anchor_name;
    auto consider = [&](const de::time& t_module, module& m, const std::string& who) {
        const de::time tc = t_module * static_cast<std::int64_t>(m.repetitions());
        if (period_ == de::time::zero()) {
            period_ = tc;
            anchor_name = who;
        } else {
            util::require(period_ == tc, who,
                          "conflicting TDF timestep anchors (first anchor: " + anchor_name +
                              " giving cluster period " + period_.to_string() + ", this one " +
                              tc.to_string() + ")");
        }
    };
    for (module* m : modules_) {
        if (m->timestep_request() > de::time::zero()) {
            consider(m->timestep_request(), *m, m->name());
        }
        for (port_base* p : m->ports()) {
            if (p->timestep_request() > de::time::zero()) {
                consider(p->timestep_request() * static_cast<std::int64_t>(p->rate()),
                         *p->owner(), p->name());
            }
        }
    }
    util::require(period_ > de::time::zero(), "tdf_cluster",
                  "no timestep anchor in TDF cluster: call set_timestep on at least "
                  "one module or port");

    for (module* m : modules_) {
        const auto reps = static_cast<std::int64_t>(m->repetitions());
        util::require(period_.value_fs() % reps == 0, m->name(),
                      "cluster period is not an integer multiple of the module period "
                      "at femtosecond resolution; choose rounder timesteps");
        const de::time tm = de::time::from_fs(period_.value_fs() / reps);
        m->set_resolved_timestep(tm);
        for (port_base* p : m->ports()) {
            p->set_resolved_timestep(
                de::time::from_fs(tm.value_fs() / static_cast<std::int64_t>(p->rate())));
        }
    }
}

compiled_schedule cluster::compile_current(std::uint64_t periods) const {
    // Describe the graph abstractly and compile it (PASS construction and
    // run-length encoding live in schedule.cpp).  `periods` > 1 scales the
    // repetition vector: the resulting program is a legal schedule for that
    // many periods fused into one super-cycle (SDF determinacy makes the
    // token streams identical to per-period execution).
    std::map<const module*, std::size_t> index;
    for (std::size_t i = 0; i < modules_.size(); ++i) index[modules_[i]] = i;

    std::vector<sdf_signal_desc> descs(signals_.size());
    for (std::size_t s = 0; s < signals_.size(); ++s) {
        const port_base* w = signals_[s]->writer();
        descs[s].writer = {index.at(w->owner()), w->rate(), w->delay()};
        for (port_base* r : signals_[s]->readers()) {
            descs[s].readers.push_back({index.at(r->owner()), r->rate(), r->delay()});
        }
    }
    std::vector<std::uint64_t> reps(modules_.size());
    for (std::size_t i = 0; i < modules_.size(); ++i) {
        reps[i] = modules_[i]->repetitions() * periods;
    }

    return compile_schedule(reps, descs);
}

void cluster::build_fused_programs(std::vector<std::size_t>& caps) {
    // Power-of-two ladder of fused programs for pure static clusters: the
    // batch planner hands run_cycles() up to max_batch_ periods at a time,
    // and greedy decomposition over {.., 16, 8, 4, 2} periods turns almost
    // all of them into long block calls.  DE-coupled clusters execute one
    // period per kernel interaction and dynamic clusters must offer the
    // change_attributes() window between periods, so neither fuses.
    fused_.clear();
    if (de_coupled_ || dynamic_ || max_batch_ < 2) return;
    // Guard: fused buffers hold `periods` periods of tokens per signal; stop
    // the ladder before memory blows up on very high-rate clusters.
    constexpr std::size_t k_max_tokens_per_signal = std::size_t{1} << 16;
    for (std::uint64_t b = 2; b <= max_batch_; b *= 2) {
        compiled_schedule cs = compile_current(b);
        if (std::any_of(cs.buffer_capacity.begin(), cs.buffer_capacity.end(),
                        [&](std::size_t c) { return c > k_max_tokens_per_signal; })) {
            break;
        }
        for (std::size_t s = 0; s < caps.size(); ++s) {
            caps[s] = std::max(caps[s], cs.buffer_capacity[s]);
        }
        std::vector<program_entry> entries;
        entries.reserve(cs.program.size());
        for (const firing_entry& e : cs.program) {
            entries.push_back({modules_[e.module], e.first_firing, e.count});
        }
        fused_.push_back({b, std::move(entries)});
    }
    std::reverse(fused_.begin(), fused_.end());  // descending periods
}

void cluster::install_program(const compiled_schedule& compiled) {
    program_.clear();
    program_.reserve(compiled.program.size());
    schedule_.clear();
    schedule_firing_.clear();
    schedule_.reserve(compiled.total_firings);
    schedule_firing_.reserve(compiled.total_firings);
    for (const firing_entry& e : compiled.program) {
        program_.push_back({modules_[e.module], e.first_firing, e.count});
        for (std::uint64_t k = 0; k < e.count; ++k) {
            schedule_.push_back(modules_[e.module]);
            schedule_firing_.push_back(e.first_firing + k);
        }
    }
}

void cluster::size_buffers(const std::vector<std::size_t>& capacities, bool in_place) {
    // (Re)allocate the ring buffers and reset port stream positions: writers
    // start after their delay tokens.  Reschedules resize in place where the
    // existing capacity suffices; the streams restart either way, so delay
    // tokens re-read the initial value deterministically.
    for (std::size_t s = 0; s < signals_.size(); ++s) {
        if (in_place) {
            signals_[s]->ensure_allocated(capacities[s]);
        } else {
            signals_[s]->allocate(capacities[s]);
        }
        signals_[s]->writer()->reset_position(signals_[s]->writer()->delay());
        for (port_base* r : signals_[s]->readers()) r->reset_position(0);
    }
}

void cluster::build_schedule() {
    last_compiled_ = compile_current();
    install_program(last_compiled_);
    // Ring buffers are sized for the largest program that can run on them:
    // the per-period program or any fused multi-period program.  Capacity
    // only affects layout, not values, so the per-sample path is unchanged.
    std::vector<std::size_t> caps = last_compiled_.buffer_capacity;
    build_fused_programs(caps);
    size_buffers(caps, /*in_place=*/false);
}

void cluster::detect_de_coupling() {
    de_coupled_ = false;
    for (module* m : modules_) {
        if (m->de_coupled_declared() || subtree_has_bound_de_port(m)) {
            de_coupled_ = true;
            return;
        }
    }
}

void cluster::elaborate() {
    compute_repetitions();
    resolve_timesteps();
    // DE-coupling and dynamic membership gate fused-program compilation, so
    // both are detected before the schedule is built.
    detect_de_coupling();
    dynamic_modules_.clear();
    for (module* m : modules_) {
        if (m->does_attribute_changes()) dynamic_modules_.push_back(m);
    }
    dynamic_ = !dynamic_modules_.empty();
    build_schedule();
    if (dynamic_) {
        // Seed the schedule cache with the elaborated configuration, so a
        // model that wanders away and back reinstates it with a hash lookup.
        cache_.insert(compute_signature(), snapshot_config());
    }
    for (module* m : modules_) m->set_owning_cluster(*this);
    for (module* m : modules_) m->initialize();
}

// ----------------------------------------------------- dynamic rescheduling

attribute_signature cluster::compute_signature() const {
    attribute_signature sig;
    for (const module* m : modules_) {
        sig.words.push_back(static_cast<std::uint64_t>(m->timestep_request().value_fs()));
        for (const port_base* p : m->ports()) {
            sig.words.push_back((static_cast<std::uint64_t>(p->rate()) << 32U) |
                                static_cast<std::uint64_t>(p->delay()));
        }
    }
    return sig;
}

cluster_config cluster::snapshot_config() const {
    cluster_config cfg;
    cfg.period = period_;
    cfg.compiled = last_compiled_;
    for (const module* m : modules_) {
        cfg.repetitions.push_back(m->repetitions());
        cfg.module_timesteps.push_back(m->timestep());
        for (const port_base* p : m->ports()) {
            cfg.port_timesteps.push_back(p->timestep());
        }
    }
    return cfg;
}

void cluster::install_config(const cluster_config& cfg) {
    period_ = cfg.period;
    std::size_t pi = 0;
    for (std::size_t i = 0; i < modules_.size(); ++i) {
        modules_[i]->set_repetitions(cfg.repetitions[i]);
        modules_[i]->set_resolved_timestep(cfg.module_timesteps[i]);
        for (port_base* p : modules_[i]->ports()) {
            p->set_resolved_timestep(cfg.port_timesteps[pi++]);
        }
    }
    last_compiled_ = cfg.compiled;
    install_program(cfg.compiled);
    size_buffers(cfg.compiled.buffer_capacity, /*in_place=*/true);
}

void cluster::run_change_attributes() {
    // Block/reschedule barrier: this window only opens between periods, and
    // block calls never span a period boundary on dynamic clusters (they
    // compile no fused programs), so any in-flight block is already flushed
    // — every staged token is written and every port position advanced —
    // before a reschedule can land.
    bool any = false;
    for (module* m : dynamic_modules_) {
        m->set_in_change_attributes(true);
        m->change_attributes();
        m->set_in_change_attributes(false);
        if (m->has_pending_timestep()) any = true;
        for (port_base* p : m->ports()) {
            if (p->has_staged_rate()) any = true;
        }
    }
    if (any) apply_attribute_changes();
}

void cluster::apply_attribute_changes() {
    // A request that restates the current configuration is a no-op: clear
    // the staged values without touching the schedule (so a module may
    // unconditionally re-request its state every period for free).  The
    // timestep comparison is against the module's *resolved* timestep —
    // for an anchored module that equals its request, and for an
    // unanchored module it is the state a restatement restates.
    bool changed = false;
    std::string requester;
    for (module* m : dynamic_modules_) {
        if (m->has_pending_timestep() && m->pending_timestep() != m->timestep()) {
            changed = true;
            requester = m->name();
        }
        for (port_base* p : m->ports()) {
            if (p->has_staged_rate() && p->staged_rate() != p->rate()) {
                changed = true;
                requester = m->name();
            }
        }
    }
    if (!changed) {
        for (module* m : dynamic_modules_) {
            m->clear_pending_timestep();
            for (port_base* p : m->ports()) p->clear_staged_rate();
        }
        return;
    }

    // Gating: every member must tolerate the retiming.  Modules that change
    // attributes themselves accept by default (see module.hpp).
    for (module* m : modules_) {
        util::require(m->accept_attribute_changes(), m->name(),
                      "rejects the TDF attribute change requested by " + requester +
                          ": override accept_attribute_changes() to return true "
                          "(its timestep/port sample periods would move at runtime)");
    }

    // Apply the staged requests, then swap in the matching schedule: a hash
    // lookup for configurations visited before, a full recompile otherwise.
    // Restatements riding along with another module's real change are
    // dropped, not applied: turning them into fresh anchors would conflict
    // with the new timing they merely restated.
    for (module* m : dynamic_modules_) {
        if (m->has_pending_timestep()) {
            if (m->pending_timestep() != m->timestep()) {
                m->set_timestep(m->pending_timestep());
            }
            m->clear_pending_timestep();
        }
        for (port_base* p : m->ports()) {
            if (p->has_staged_rate()) p->set_rate(p->staged_rate());
            p->clear_staged_rate();
        }
    }
    SCA_TRACE_SPAN(ctx_ != nullptr ? &ctx_->tracer() : nullptr, "tdf.cluster.reschedule",
                   "tdf");
    ++reschedules_;
    const attribute_signature sig = compute_signature();
    if (const cluster_config* cfg = cache_.find(sig)) {
        install_config(*cfg);
        return;
    }
    ++recompiles_;
    compute_repetitions();
    resolve_timesteps();
    last_compiled_ = compile_current();
    install_program(last_compiled_);
    size_buffers(last_compiled_.buffer_capacity, /*in_place=*/true);
    cache_.insert(sig, snapshot_config());
}

void cluster::attach(de::simulation_context& ctx) {
    ctx_ = &ctx;
    proc_ = &ctx.register_method("tdf_cluster_exec", [this] { on_wake(); });
}

void cluster::set_max_batch_periods(std::uint64_t n) {
    util::require(n >= 1, "tdf_cluster", "max batch periods must be >= 1");
    max_batch_ = n;
}

void cluster::set_peer_processes(std::vector<const de::method_process*> peers) {
    peers_ = std::move(peers);
}

void cluster::exec_program(const std::vector<program_entry>& prog, const de::time& t) {
    if (block_execution_) {
        for (const program_entry& e : prog) {
            if (e.mod->has_block_processing()) {
                e.mod->fire_block_run(t, e.first_firing, e.count);
            } else {
                e.mod->fire_run(t, e.first_firing, e.count);
            }
        }
    } else {
        for (const program_entry& e : prog) {
            e.mod->fire_run(t, e.first_firing, e.count);
        }
    }
}

void cluster::run_cycles(const de::time& start, std::uint64_t n) {
    SCA_TRACE_SPAN_T(ctx_ != nullptr ? &ctx_->tracer() : nullptr, "tdf.cluster.cycles",
                     "tdf", start.to_seconds());
    de::time t = start;
    std::uint64_t left = n;
    // Greedy decomposition over the fused-program ladder (descending
    // periods): a 63-period batch runs as 32+16+8+4+2 fused super-cycles
    // plus one per-period pass.  Fused programs only exist for pure static
    // clusters and only pay off on the block path.
    if (block_execution_) {
        for (const fused_program& fp : fused_) {
            while (left >= fp.periods) {
                exec_program(fp.entries, t);
                cycles_ += fp.periods;
                fused_cycles_ += fp.periods;
                t += period_ * static_cast<std::int64_t>(fp.periods);
                left -= fp.periods;
            }
        }
    }
    for (std::uint64_t c = 0; c < left; ++c) {
        exec_program(program_, t);
        ++cycles_;
        t += period_;
    }
    next_cycle_start_ = t;
}

std::uint64_t cluster::plan_batch_ahead(bool for_peek) const {
    // Batching contract: run cycles ahead of DE time only when no DE process
    // could observe the difference.  DE-coupled clusters never qualify.  For
    // pure clusters the bound is the next pending timed event — except the
    // re-arms of independent peer clusters, which provably cannot interact —
    // and the end of the current scheduler run, so the final state matches
    // per-period execution exactly.  This runs in a zero-delay re-activation
    // of the driving process: every same-timestamp process has already
    // executed and re-armed, making the timed queue authoritative.
    const std::int64_t p = period_.value_fs();
    if (p <= 0) return 0;
    const de::time s = next_cycle_start_;
    std::uint64_t n = max_batch_ - 1;  // one cycle already ran this interaction

    const de::scheduler& sch = static_cast<const de::simulation_context&>(*ctx_).sched();
    const de::time end = sch.run_end();
    // The run_end clamp is a batch-size bound only.  The peek must ignore it
    // (see the header comment): whether the re-arm goes through the settled
    // delta has to be a function of the model state alone, not of the
    // caller's slice length, or sliced and continuous runs diverge in
    // same-instant event order right after a run() boundary.
    if (!for_peek && end != de::time::max()) {
        if (s > end) return 0;
        n = std::min(n, static_cast<std::uint64_t>((end - s).value_fs() / p) + 1);
    }
    ignore_scratch_.clear();
    for (const de::method_process* peer : peers_) {
        if (const de::event* ev = peer->timeout_event(); ev != nullptr) {
            ignore_scratch_.push_back(ev);
        }
    }
    const de::time next_ev = sch.next_event_time_ignoring(ignore_scratch_);
    if (next_ev != de::time::max()) {
        if (next_ev <= s) return 0;
        const std::int64_t gap = (next_ev - s).value_fs();
        n = std::min(n, static_cast<std::uint64_t>((gap + p - 1) / p));
    }
    return n;
}

void cluster::on_wake() {
    const de::time now = ctx_->now();
    if (!batch_check_pending_) {
        // Timed wake at a cycle boundary.
        run_cycles(now, 1);
        if (dynamic_) {
            // Dynamic clusters give their members the change_attributes()
            // window between periods, then re-arm with whatever period the
            // (possibly rescheduled) configuration resolved to — this is the
            // DE re-sync: the next timed wake lands on the new grid.  The
            // cycle just run still spans its old period, so the next cycle
            // starts at next_cycle_start_ regardless of a period change.
            run_change_attributes();
            // Pure dynamic clusters batch too (via the settled re-check
            // below): periods execute back-to-back with the change window
            // interleaved, so only the kernel re-arms are elided — the
            // per-period sequence the modules observe is unchanged.
            if (!de_coupled_ && max_batch_ > 1 && plan_batch_ahead(true) > 0) {
                batch_check_pending_ = true;
                ctx_->next_trigger(de::time::zero());
                return;
            }
            ctx_->next_trigger(next_cycle_start_ - now);
            return;
        }
        // Peek: schedule the batch-check re-activation only when the (possibly
        // still unsettled) queue suggests batching could yield anything —
        // event-dense models otherwise pay a useless delta round per period.
        // The peek may overestimate; the settled re-check below is what
        // guarantees correctness.
        if (!de_coupled_ && max_batch_ > 1 && plan_batch_ahead(true) > 0) {
            batch_check_pending_ = true;
            ctx_->next_trigger(de::time::zero());
            return;
        }
        ctx_->next_trigger(period_);
        return;
    }
    // Zero-delay (delta) re-activation: plan only once the instant has
    // settled, so every same-timestamp process has executed and armed its
    // next timed event.  Peer pure clusters are ignored — their same-instant
    // wakes and deferral deltas cannot interact with this cluster, and two
    // deferring clusters would otherwise ping-pong forever.  Anything else
    // still active at this instant -> defer one more delta cycle.
    ignore_scratch_.clear();
    for (const de::method_process* peer : peers_) {
        if (const de::event* ev = peer->timeout_event(); ev != nullptr) {
            ignore_scratch_.push_back(ev);
        }
    }
    if (static_cast<const de::simulation_context&>(*ctx_).sched().instant_active_ignoring(
            peers_, ignore_scratch_)) {
        ctx_->next_trigger(de::time::zero());
        return;
    }
    batch_check_pending_ = false;
    if (dynamic_) {
        // Interleaved batch: the same per-period sequence as the timed path
        // (one cycle, then the change_attributes() window), minus the DE
        // re-arm between periods.  A reschedule invalidates the plan — the
        // remaining periods were bounded assuming the old timestep — so the
        // batch breaks and the next timed wake re-syncs on the new grid.
        std::uint64_t ahead = plan_batch_ahead();
        const std::uint64_t planned_at = reschedules_;
        while (ahead-- > 0) {
            run_cycles(next_cycle_start_, 1);
            run_change_attributes();
            if (reschedules_ != planned_at) break;
        }
        ctx_->next_trigger(next_cycle_start_ - now);
        return;
    }
    const std::uint64_t ahead = plan_batch_ahead();
    if (ahead > 0) run_cycles(next_cycle_start_, ahead);
    ctx_->next_trigger(next_cycle_start_ - now);
}

// ------------------------------------------------------------------ snapshot

void cluster::save_state(util::byte_writer& w) const {
    w.u64(static_cast<std::uint64_t>(modules_.size()));
    for (const module* m : modules_) {
        w.i64(m->timestep_request().value_fs());
        w.i64(m->timestep().value_fs());
        w.u64(m->repetitions());
        w.i64(m->tdf_time().value_fs());
        w.u64(m->activation_count());
        w.u64(m->block_call_count());
        w.u64(m->block_firing_count());
        w.u64(static_cast<std::uint64_t>(m->ports().size()));
        for (const port_base* p : m->ports()) {
            w.u32(p->rate());
            w.u32(p->delay());
            w.i64(p->timestep_request().value_fs());
            w.i64(p->timestep().value_fs());
            w.u64(p->position());
        }
    }
    // The installed attribute signature: restore recomputes it from the
    // overlaid attributes and refuses on mismatch (revalidation, not trust).
    w.u64_vec(compute_signature().words);
    w.u64(static_cast<std::uint64_t>(signals_.size()));
    for (const signal_base* s : signals_) s->save_tokens(w);
    w.i64(period_.value_fs());
    w.i64(next_cycle_start_.value_fs());
    w.u64(cycles_);
    w.u64(fused_cycles_);
    w.u64(reschedules_);
    w.u64(recompiles_);
    w.boolean(de_coupled_);
    w.boolean(dynamic_);
}

void cluster::restore_state(util::byte_reader& r) {
    util::require(r.u64() == modules_.size(), "snapshot",
                  "cluster: rebuilt module count differs from snapshot");
    // The signature the *rebuilt* model elaborated with; if the saved run had
    // rescheduled away from it, the matching program must be reinstalled.
    const attribute_signature elaborated_sig = compute_signature();

    struct module_state {
        de::time current_time;
        std::uint64_t activations, block_calls, block_firings;
        std::vector<std::uint64_t> positions;
    };
    std::vector<module_state> saved(modules_.size());
    for (std::size_t i = 0; i < modules_.size(); ++i) {
        module* m = modules_[i];
        const auto ts_request = de::time::from_fs(r.i64());
        const auto ts_resolved = de::time::from_fs(r.i64());
        const std::uint64_t reps = r.u64();
        saved[i].current_time = de::time::from_fs(r.i64());
        saved[i].activations = r.u64();
        saved[i].block_calls = r.u64();
        saved[i].block_firings = r.u64();
        util::require(r.u64() == m->ports().size(), "snapshot",
                      "cluster: rebuilt port count of '" + m->name() +
                          "' differs from snapshot");
        // Overlay the schedule-determining attributes first: the reinstall
        // below compiles (or cache-installs) against them.
        m->set_timestep(ts_request);
        m->set_resolved_timestep(ts_resolved);
        m->set_repetitions(reps);
        for (port_base* p : m->ports()) {
            p->set_rate(r.u32());
            p->set_delay(r.u32());
            p->set_timestep(de::time::from_fs(r.i64()));
            p->set_resolved_timestep(de::time::from_fs(r.i64()));
            saved[i].positions.push_back(r.u64());
        }
    }

    attribute_signature saved_sig;
    saved_sig.words = r.u64_vec();
    util::require(compute_signature() == saved_sig, "snapshot",
                  "cluster: rebuilt attribute signature differs from snapshot");
    if (!(saved_sig == elaborated_sig)) {
        // The saved run had rescheduled: reinstall the matching program — a
        // schedule-cache hit when this configuration was visited before
        // (elaboration seeds the cache), otherwise a full recompile that
        // seeds it now.  Counters are overlaid afterwards either way.
        if (const cluster_config* cfg = cache_.find(saved_sig)) {
            install_config(*cfg);
        } else {
            compute_repetitions();
            resolve_timesteps();
            last_compiled_ = compile_current();
            install_program(last_compiled_);
            size_buffers(last_compiled_.buffer_capacity, /*in_place=*/true);
            cache_.insert(saved_sig, snapshot_config());
        }
        // install_config/resolve_timesteps recompute what the overlay already
        // set; re-overlay repetitions and timesteps so bookkeeping that is
        // not signature-determined (an unanchored module's resolved step) is
        // exactly the saved one.  Port positions are overlaid below.
    }

    // Positions and tokens go last: schedule installation resets both.
    for (std::size_t i = 0; i < modules_.size(); ++i) {
        module* m = modules_[i];
        m->restore_runtime_state(saved[i].current_time, saved[i].activations,
                                 saved[i].block_calls, saved[i].block_firings);
        std::size_t pi = 0;
        for (port_base* p : m->ports()) p->reset_position(saved[i].positions[pi++]);
    }
    util::require(r.u64() == signals_.size(), "snapshot",
                  "cluster: rebuilt signal count differs from snapshot");
    for (signal_base* s : signals_) s->restore_tokens(r);
    period_ = de::time::from_fs(r.i64());
    next_cycle_start_ = de::time::from_fs(r.i64());
    cycles_ = r.u64();
    fused_cycles_ = r.u64();
    reschedules_ = r.u64();
    recompiles_ = r.u64();
    util::require(r.boolean() == de_coupled_, "snapshot",
                  "cluster: DE coupling differs from snapshot");
    util::require(r.boolean() == dynamic_, "snapshot",
                  "cluster: dynamic membership differs from snapshot");
    batch_check_pending_ = false;  // settled points never carry a pending check
}

// ------------------------------------------------------------------ registry

registry::registry(de::simulation_context& ctx) : ctx_(&ctx) {
    ctx.add_elaboration_hook([this] { elaborate_clusters(); });
    // The hot per-object counters (module activations, cluster cycles,
    // schedule-cache hits) stay where the firing loops write them; this
    // collector publishes their totals into the context registry on demand
    // with set-semantics, so repeated collection never double-counts.
    ctx.add_metrics_collector([this] { publish_metrics(); });
}

void registry::publish_metrics() {
    util::metrics_registry& reg = ctx_->metrics();
    std::uint64_t cycles = 0, fused = 0, resched = 0, recompiles = 0, hits = 0, misses = 0;
    for (const auto& c : clusters_) {
        cycles += c->cycle_count();
        fused += c->fused_cycle_count();
        resched += c->reschedule_count();
        recompiles += c->recompile_count();
        hits += c->schedule_cache_hits();
        misses += c->schedule_cache_misses();
    }
    std::uint64_t activations = 0, block_calls = 0, block_firings = 0;
    std::uint64_t numeric = 0, symbolic = 0;
    for (module* m : modules_) {
        activations += m->activation_count();
        block_calls += m->block_call_count();
        block_firings += m->block_firing_count();
        if (const auto* d = dynamic_cast<const dae_module*>(m)) {
            numeric += d->factorizations();
            symbolic += d->symbolic_factorizations();
        }
    }
    reg.get_counter("tdf.clusters").set(clusters_.size());
    reg.get_counter("tdf.cluster.cycles").set(cycles);
    reg.get_counter("tdf.cluster.fused_cycles").set(fused);
    reg.get_counter("tdf.cluster.reschedules").set(resched);
    reg.get_counter("tdf.cluster.recompiles").set(recompiles);
    reg.get_counter("tdf.schedule_cache.hits").set(hits);
    reg.get_counter("tdf.schedule_cache.misses").set(misses);
    reg.get_counter("tdf.module.activations").set(activations);
    reg.get_counter("tdf.module.block_calls").set(block_calls);
    reg.get_counter("tdf.module.block_firings").set(block_firings);
    reg.get_counter("solver.numeric_factorizations").set(numeric);
    reg.get_counter("solver.symbolic_factorizations").set(symbolic);
}

registry::~registry() = default;

registry& registry::of(de::simulation_context& ctx) { return ctx.domain_data<registry>(); }

void registry::add_module(module& m) { modules_.push_back(&m); }

signal_base& registry::adopt_signal(std::unique_ptr<signal_base> s) {
    adopted_signals_.push_back(std::move(s));
    return *adopted_signals_.back();
}

void registry::set_default_max_batch_periods(std::uint64_t n) {
    util::require(n >= 1, "tdf_registry", "max batch periods must be >= 1");
    default_max_batch_ = n;
    for (auto& c : clusters_) c->set_max_batch_periods(n);
}

void registry::set_default_block_execution(bool on) {
    default_block_execution_ = on;
    for (auto& c : clusters_) c->set_block_execution(on);
}

void registry::elaborate_clusters() {
    if (elaborated_) return;
    elaborated_ = true;
    SCA_TRACE_SPAN(&ctx_->tracer(), "tdf.elaborate_clusters", "tdf");

    // Binding resolution: follow every port's forwarding chain to its
    // terminal signal and attach dataflow endpoints there.  This covers
    // module ports, composite forwarding ports, and the converter ports of
    // ELN/LSF components alike; unbound chains fail here with the port's
    // full hierarchical path.
    for (de::object* o : ctx_->objects()) {
        if (auto* p = dynamic_cast<port_base*>(o)) p->resolve();
    }

    // Attribute settling: modules declare rates/delays/timesteps.
    for (module* m : modules_) m->set_attributes();

    // Union-find over modules connected through TDF signals.
    std::map<module*, std::size_t> index;
    for (std::size_t i = 0; i < modules_.size(); ++i) index[modules_[i]] = i;
    std::vector<std::size_t> parent(modules_.size());
    std::iota(parent.begin(), parent.end(), std::size_t{0});
    std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };
    auto unite = [&](std::size_t a, std::size_t b) { parent[find(a)] = find(b); };

    for (module* m : modules_) {
        for (port_base* p : m->ports()) {
            util::require(p->owner() != nullptr, p->name(), "TDF port has no owner module");
            signal_base* s = p->bound_signal();
            util::require(s != nullptr, p->name(), "TDF port is unbound");
            if (s->writer() != nullptr && s->writer()->owner() != nullptr) {
                unite(index.at(m), index.at(s->writer()->owner()));
            }
            for (port_base* r : s->readers()) {
                if (r->owner() != nullptr) unite(index.at(m), index.at(r->owner()));
            }
        }
    }

    std::map<std::size_t, std::vector<module*>> groups;
    for (std::size_t i = 0; i < modules_.size(); ++i) {
        groups[find(i)].push_back(modules_[i]);
    }
    for (auto& [root, members] : groups) {
        clusters_.push_back(std::make_unique<cluster>(std::move(members)));
        clusters_.back()->set_max_batch_periods(default_max_batch_);
        clusters_.back()->set_block_execution(default_block_execution_);
        clusters_.back()->elaborate();
        clusters_.back()->attach(*ctx_);
    }

    // Independent clusters cannot observe one another, so batch planning may
    // ignore the re-arm events of every pure (non-DE-coupled) peer.
    std::vector<const de::method_process*> pure_procs;
    for (const auto& c : clusters_) {
        if (!c->de_coupled()) pure_procs.push_back(c->process());
    }
    for (const auto& c : clusters_) {
        if (!c->de_coupled()) c->set_peer_processes(pure_procs);
    }
}

}  // namespace sca::tdf
