#include "tdf/cluster.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "tdf/module.hpp"
#include "tdf/port.hpp"
#include "tdf/schedule.hpp"
#include "util/report.hpp"

namespace sca::tdf {

cluster::cluster(std::vector<module*> modules) : modules_(std::move(modules)) {
    // Collect the signals touched by member ports (unique, writer required).
    for (module* m : modules_) {
        for (port_base* p : m->ports()) {
            signal_base* s = p->bound_signal();
            util::require(s != nullptr, p->name(), "TDF port is unbound");
            if (std::find(signals_.begin(), signals_.end(), s) == signals_.end()) {
                signals_.push_back(s);
            }
        }
    }
    for (signal_base* s : signals_) {
        util::require(s->writer() != nullptr, s->name(), "TDF signal has no writer");
    }
}

void cluster::compute_repetitions() {
    std::map<module*, std::size_t> index;
    for (std::size_t i = 0; i < modules_.size(); ++i) index[modules_[i]] = i;

    std::vector<rate_edge> edges;
    for (signal_base* s : signals_) {
        const std::size_t from = index.at(s->writer()->owner());
        for (port_base* r : s->readers()) {
            edges.push_back({from, index.at(r->owner()), s->writer()->rate(), r->rate()});
        }
    }
    const auto reps = repetition_vector(modules_.size(), edges);
    for (std::size_t i = 0; i < modules_.size(); ++i) {
        modules_[i]->set_repetitions(reps[i]);
    }
}

void cluster::resolve_timesteps() {
    // Collect timestep anchors: module-level requests and port-level requests
    // (a port request anchors its owner at rate * port_timestep).
    period_ = de::time::zero();
    std::string anchor_name;
    auto consider = [&](const de::time& t_module, module& m, const std::string& who) {
        const de::time tc = t_module * static_cast<std::int64_t>(m.repetitions());
        if (period_ == de::time::zero()) {
            period_ = tc;
            anchor_name = who;
        } else {
            util::require(period_ == tc, who,
                          "conflicting TDF timestep anchors (first anchor: " + anchor_name +
                              " giving cluster period " + period_.to_string() + ", this one " +
                              tc.to_string() + ")");
        }
    };
    for (module* m : modules_) {
        if (m->timestep_request() > de::time::zero()) {
            consider(m->timestep_request(), *m, m->name());
        }
        for (port_base* p : m->ports()) {
            if (p->timestep_request() > de::time::zero()) {
                consider(p->timestep_request() * static_cast<std::int64_t>(p->rate()),
                         *p->owner(), p->name());
            }
        }
    }
    util::require(period_ > de::time::zero(), "tdf_cluster",
                  "no timestep anchor in TDF cluster: call set_timestep on at least "
                  "one module or port");

    for (module* m : modules_) {
        const auto reps = static_cast<std::int64_t>(m->repetitions());
        util::require(period_.value_fs() % reps == 0, m->name(),
                      "cluster period is not an integer multiple of the module period "
                      "at femtosecond resolution; choose rounder timesteps");
        const de::time tm = de::time::from_fs(period_.value_fs() / reps);
        m->set_resolved_timestep(tm);
        for (port_base* p : m->ports()) {
            p->set_resolved_timestep(
                de::time::from_fs(tm.value_fs() / static_cast<std::int64_t>(p->rate())));
        }
    }
}

void cluster::build_schedule() {
    // PASS construction (Lee/Messerschmitt): repeatedly fire any module whose
    // input tokens are available until every module reached its repetition
    // count. Failure to complete means the graph is deadlocked (needs delays).
    std::map<const signal_base*, std::uint64_t> produced;   // incl. writer delay
    std::map<const port_base*, std::uint64_t> consumed;     // per reader
    std::map<const module*, std::uint64_t> fired;
    std::map<const signal_base*, std::uint64_t> max_span;

    for (signal_base* s : signals_) {
        produced[s] = s->writer()->delay();
        for (port_base* r : s->readers()) consumed[r] = 0;
        max_span[s] = 0;
    }
    for (module* m : modules_) fired[m] = 0;

    auto update_span = [&](signal_base* s) {
        std::int64_t oldest = static_cast<std::int64_t>(produced[s]);
        for (port_base* r : s->readers()) {
            oldest = std::min(oldest, static_cast<std::int64_t>(consumed[r]) -
                                          static_cast<std::int64_t>(r->delay()));
        }
        const auto span = static_cast<std::uint64_t>(
            std::max<std::int64_t>(0, static_cast<std::int64_t>(produced[s]) - oldest));
        max_span[s] = std::max(max_span[s], span);
    };
    for (signal_base* s : signals_) update_span(s);

    auto fireable = [&](module* m) {
        if (fired[m] >= m->repetitions()) return false;
        for (port_base* p : m->ports()) {
            if (!p->is_input()) continue;
            const signal_base* s = p->bound_signal();
            const std::int64_t needed = static_cast<std::int64_t>(consumed[p]) +
                                        static_cast<std::int64_t>(p->rate()) -
                                        static_cast<std::int64_t>(p->delay());
            if (needed > static_cast<std::int64_t>(produced.at(s))) return false;
        }
        return true;
    };

    schedule_.clear();
    schedule_firing_.clear();
    std::uint64_t total = 0;
    for (module* m : modules_) total += m->repetitions();

    while (schedule_.size() < total) {
        bool progress = false;
        for (module* m : modules_) {
            if (!fireable(m)) continue;
            schedule_.push_back(m);
            schedule_firing_.push_back(fired[m]);
            ++fired[m];
            progress = true;
            for (port_base* p : m->ports()) {
                auto* s = const_cast<signal_base*>(p->bound_signal());
                if (p->is_input()) {
                    consumed[p] += p->rate();
                } else {
                    produced[s] += p->rate();
                    update_span(s);
                }
            }
        }
        util::require(progress, "tdf_cluster",
                      "dataflow deadlock: no module can fire; insert port delays to "
                      "break the cycle");
    }

    // Ring-buffer capacities from the observed maximum live-token span.
    for (signal_base* s : signals_) {
        s->allocate(static_cast<std::size_t>(std::max<std::uint64_t>(max_span[s], 1)) +
                    s->writer()->rate());
    }
}

void cluster::size_buffers() {
    // Reset port stream positions: writers start after their delay tokens.
    for (signal_base* s : signals_) {
        s->writer()->reset_position(s->writer()->delay());
        for (port_base* r : s->readers()) r->reset_position(0);
    }
}

void cluster::elaborate() {
    compute_repetitions();
    resolve_timesteps();
    build_schedule();
    size_buffers();
    for (module* m : modules_) m->set_owning_cluster(*this);
    for (module* m : modules_) m->initialize();
}

void cluster::attach(de::simulation_context& ctx) {
    ctx_ = &ctx;
    ctx.register_method("tdf_cluster_exec", [this] {
        execute();
        ctx_->next_trigger(period_);
    });
}

void cluster::execute() {
    const de::time t0 = ctx_ != nullptr ? ctx_->now() : de::time::zero();
    for (std::size_t i = 0; i < schedule_.size(); ++i) {
        schedule_[i]->fire(t0, schedule_firing_[i]);
    }
    ++cycles_;
}

// ------------------------------------------------------------------ registry

registry::registry(de::simulation_context& ctx) : ctx_(&ctx) {
    ctx.add_elaboration_hook([this] { elaborate_clusters(); });
}

registry& registry::of(de::simulation_context& ctx) { return ctx.domain_data<registry>(); }

void registry::add_module(module& m) { modules_.push_back(&m); }

void registry::elaborate_clusters() {
    if (elaborated_) return;
    elaborated_ = true;

    // Attribute settling first: modules declare rates/delays/timesteps.
    for (module* m : modules_) m->set_attributes();

    // Union-find over modules connected through TDF signals.
    std::map<module*, std::size_t> index;
    for (std::size_t i = 0; i < modules_.size(); ++i) index[modules_[i]] = i;
    std::vector<std::size_t> parent(modules_.size());
    std::iota(parent.begin(), parent.end(), std::size_t{0});
    std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };
    auto unite = [&](std::size_t a, std::size_t b) { parent[find(a)] = find(b); };

    for (module* m : modules_) {
        for (port_base* p : m->ports()) {
            util::require(p->owner() != nullptr, p->name(), "TDF port has no owner module");
            signal_base* s = p->bound_signal();
            util::require(s != nullptr, p->name(), "TDF port is unbound");
            if (s->writer() != nullptr && s->writer()->owner() != nullptr) {
                unite(index.at(m), index.at(s->writer()->owner()));
            }
            for (port_base* r : s->readers()) {
                if (r->owner() != nullptr) unite(index.at(m), index.at(r->owner()));
            }
        }
    }

    std::map<std::size_t, std::vector<module*>> groups;
    for (std::size_t i = 0; i < modules_.size(); ++i) {
        groups[find(i)].push_back(modules_[i]);
    }
    for (auto& [root, members] : groups) {
        clusters_.push_back(std::make_unique<cluster>(std::move(members)));
        clusters_.back()->elaborate();
        clusters_.back()->attach(*ctx_);
    }
}

}  // namespace sca::tdf
