// TDF module base class.
//
//   struct scaler : sca::tdf::module {
//       sca::tdf::in<double> x;
//       sca::tdf::out<double> y;
//       explicit scaler(const sca::de::module_name& nm)
//           : module(nm), x("x"), y("y") {}
//       void set_attributes() override { set_timestep(1.0, sca::de::time_unit::us); }
//       void processing() override { y.write(2.0 * x.read()); }
//   };
//
// Modules connected through tdf::signal form a cluster; the synchronization
// layer derives the static schedule and drives the cluster from one DE
// process (paper §3: "continuous behaviour encapsulated in static dataflow
// modules", "synchronisation between discrete event and continuous time MoCs
// using static dataflow semantics").
#ifndef SCA_TDF_MODULE_HPP
#define SCA_TDF_MODULE_HPP

#include <complex>
#include <cstdint>

#include "kernel/module.hpp"
#include "kernel/time.hpp"
#include "tdf/port.hpp"

namespace sca::tdf {

class cluster;
class registry;
class block_view;

class module : public de::module {
public:
    [[nodiscard]] const char* kind() const noexcept override { return "tdf_module"; }

    /// Set rates, delays and timesteps. Called once before scheduling.
    virtual void set_attributes() {}

    /// Called once after the schedule is known, before the first processing().
    virtual void initialize() {}

    /// The per-activation behavior.
    virtual void processing() = 0;

    // --- block execution (see tdf/block.hpp) --------------------------------
    /// Declare that this module implements the span-based block path.  The
    /// cluster then hands it runs of consecutive firings through
    /// processing(block_view&) instead of one virtual call per sample.
    [[nodiscard]] virtual bool has_block_processing() const { return false; }

    /// Process `blk.count()` consecutive firings over contiguous per-port
    /// spans.  Only called when has_block_processing() returns true; must
    /// compute exactly what count() calls of processing() would (the
    /// per-sample path remains the fallback at ring-buffer wrap points and
    /// when block execution is disabled, and shares this module's state).
    virtual void processing(block_view& blk);

    // --- dynamic TDF (runtime attribute changes) ----------------------------
    /// Declare that this module may change its attributes at runtime via
    /// change_attributes().  A cluster containing such a module becomes
    /// dynamic: it calls change_attributes() between periods and reschedules
    /// incrementally when a request lands.  Clusters without any dynamic
    /// module keep the compiled static fast path untouched.
    [[nodiscard]] virtual bool does_attribute_changes() const { return false; }

    /// Declare that this module tolerates attribute changes requested by
    /// other cluster members (its timestep and port sample periods may then
    /// move between periods).  A module that changes attributes itself
    /// accepts them by default; a reschedule request reaching a member with
    /// accept_attribute_changes() == false is an error naming that member's
    /// full hierarchical path.
    [[nodiscard]] virtual bool accept_attribute_changes() const {
        return does_attribute_changes();
    }

    /// Called on dynamic modules between cluster periods (after the period's
    /// firings, before the next period is scheduled).  Override and call
    /// request_timestep() / request_rate() to retime the cluster; the new
    /// configuration takes effect at the next period boundary.
    virtual void change_attributes() {}

    /// Replace this module's timestep anchor (valid only inside
    /// change_attributes()).  The cluster re-resolves all member timesteps
    /// against the new anchor before the next period.
    void request_timestep(const de::time& t);
    void request_timestep(double v, de::time_unit u) { request_timestep(de::time(v, u)); }

    /// Request a new rate on one of this module's ports (valid only inside
    /// change_attributes()).  Changes the cluster's repetition vector; the
    /// recompiled (or cache-hit) firing program applies from the next period.
    void request_rate(port_base& p, unsigned rate);

    /// Called when the simulation finishes (optional).
    virtual void end_of_simulation() {}

    /// Optional small-signal frequency-domain model (paper §4, [6]: the
    /// mixed-signal system can be simulated "in the frequency domain,
    /// provided frequency-domain models are added to the discrete-time
    /// components").  Single-input single-output response at `f` Hz;
    /// modules without a frequency-domain model report has_ac_model()
    /// false and are rejected by cascade analyses.
    [[nodiscard]] virtual bool has_ac_model() const { return false; }
    [[nodiscard]] virtual std::complex<double> ac_response(double f) const {
        (void)f;
        return {1.0, 0.0};
    }

    // --- attribute helpers (valid inside set_attributes) --------------------
    /// Anchor this module's activation period.
    void set_timestep(const de::time& t) { timestep_request_ = t; }
    void set_timestep(double v, de::time_unit u) { timestep_request_ = de::time(v, u); }

    // --- timing queries (valid inside initialize()/processing()) -----------
    /// Activation period of this module.
    [[nodiscard]] const de::time& timestep() const noexcept { return timestep_; }
    /// Time of the first sample of the current activation.
    [[nodiscard]] const de::time& tdf_time() const noexcept { return current_time_; }

    [[nodiscard]] const de::time& timestep_request() const noexcept {
        return timestep_request_;
    }

    /// Ports declared by this module (registered automatically).
    [[nodiscard]] const std::vector<port_base*>& ports() const noexcept { return ports_; }
    void register_port(port_base& p) { ports_.push_back(&p); }

    /// Number of activations per cluster cycle (repetition count).
    [[nodiscard]] std::uint64_t repetitions() const noexcept { return repetitions_; }

    /// Total activations so far (diagnostics, benches).
    [[nodiscard]] std::uint64_t activation_count() const noexcept { return activations_; }

    // --- cluster interface ---------------------------------------------------
    void set_resolved_timestep(const de::time& t) noexcept { timestep_ = t; }
    void set_repetitions(std::uint64_t r) noexcept { repetitions_ = r; }

    /// Execute one firing at cycle start `t0`, firing index `k` in the cycle.
    void fire(const de::time& t0, std::uint64_t k) { fire_run(t0, k, 1); }

    /// Execute `n` consecutive firings starting at firing index `k0` of the
    /// cycle beginning at `t0` (the compiled firing program's inner loop).
    void fire_run(const de::time& t0, std::uint64_t k0, std::uint64_t n);

    /// Execute `n` consecutive firings through the block path: maximal
    /// contiguous sub-runs go to processing(block_view&); a firing whose
    /// tokens straddle a ring-buffer wrap point falls back to one per-sample
    /// fire.  Requires has_block_processing().
    void fire_block_run(const de::time& t0, std::uint64_t k0, std::uint64_t n);

    /// Block calls and samples processed through them (diagnostics/benches;
    /// wrap-point fallback firings count toward activation_count() only).
    [[nodiscard]] std::uint64_t block_call_count() const noexcept { return block_calls_; }
    [[nodiscard]] std::uint64_t block_firing_count() const noexcept {
        return block_firings_;
    }

    /// Declare that this module exchanges samples with the DE world outside
    /// the TDF converter-port protocol (ELN/LSF converter components call
    /// this).  The owning cluster then synchronizes with the DE kernel every
    /// cycle instead of batching cycles.
    void declare_de_coupled() noexcept { de_coupled_ = true; }
    [[nodiscard]] bool de_coupled_declared() const noexcept { return de_coupled_; }

    [[nodiscard]] cluster* owning_cluster() const noexcept { return cluster_; }
    void set_owning_cluster(cluster& c) noexcept { cluster_ = &c; }

    /// Scope guard state for change_attributes(): request_timestep() and
    /// request_rate() are only legal while the cluster runs the callback.
    void set_in_change_attributes(bool in) noexcept { in_change_attributes_ = in; }

    // --- checkpoint/restore (core/snapshot) ---------------------------------
    /// Overlay the runtime bookkeeping a snapshot captured for this module
    /// (activation clock and diagnostic counters).  Called by the owning
    /// cluster's restore, after the schedule is reinstalled.
    void restore_runtime_state(const de::time& current_time, std::uint64_t activations,
                               std::uint64_t block_calls,
                               std::uint64_t block_firings) noexcept {
        current_time_ = current_time;
        activations_ = activations;
        block_calls_ = block_calls;
        block_firings_ = block_firings;
    }

    /// Staged timestep request (consumed by the cluster at the reschedule
    /// point following change_attributes()).
    [[nodiscard]] bool has_pending_timestep() const noexcept {
        return has_pending_timestep_;
    }
    [[nodiscard]] const de::time& pending_timestep() const noexcept {
        return pending_timestep_;
    }
    void clear_pending_timestep() noexcept { has_pending_timestep_ = false; }

protected:
    explicit module(const de::module_name& nm);

private:
    std::vector<port_base*> ports_;
    de::time timestep_request_;  // zero = unconstrained
    de::time timestep_;
    de::time current_time_;
    de::time pending_timestep_;  // staged by request_timestep()
    std::uint64_t repetitions_ = 0;
    std::uint64_t activations_ = 0;
    std::uint64_t block_calls_ = 0;
    std::uint64_t block_firings_ = 0;
    bool de_coupled_ = false;
    bool in_change_attributes_ = false;
    bool has_pending_timestep_ = false;
    cluster* cluster_ = nullptr;
};

/// Structural-only TDF module: a reusable subsystem that owns child TDF
/// modules (via make_child) and exposes TDF ports that forward to them.  A
/// composite never fires — its ports have no owner module, so at elaboration
/// they resolve as pure aliases of the terminal signals while the children
/// join the cluster schedule individually.
///
///   struct gain_chain : sca::tdf::composite {
///       sca::tdf::in<double> in;
///       sca::tdf::out<double> out;
///       explicit gain_chain(const sca::de::module_name& nm)
///           : composite(nm), in("in"), out("out") {
///           auto& a = make_child<scaler>("a");
///           auto& b = make_child<scaler>("b");
///           a.x.bind(in);             // forwarded input
///           connect(a.y, b.x);        // auto-created interior signal
///           b.y.bind(out);            // exported output
///       }
///   };
class composite : public de::module {
public:
    [[nodiscard]] const char* kind() const noexcept override { return "tdf_composite"; }

protected:
    explicit composite(const de::module_name& nm) : de::module(nm) {}
};

}  // namespace sca::tdf

#endif  // SCA_TDF_MODULE_HPP
