// Converter ports between the TDF and DE worlds — the port-level face of the
// synchronization layer (paper §3: interactions between continuous-time and
// discrete-time MoCs "have to be formally defined").
//
// Semantics implemented here (documented in DESIGN.md):
//  * de_in:  reads the DE signal value valid at the cluster activation time;
//            multirate reads within one activation see the same value
//            (zero-order hold across the cluster period).
//  * de_out: writes are timestamped with the exact TDF sample time; samples
//            that fall after the current DE time are scheduled through a
//            helper process, so the DE world observes them at the right time.
#ifndef SCA_TDF_CONVERTER_HPP
#define SCA_TDF_CONVERTER_HPP

#include <deque>

#include "kernel/process.hpp"
#include "kernel/signal.hpp"
#include "tdf/module.hpp"

namespace sca::tdf {

/// DE -> TDF converter port; member of a tdf::module.
template <typename T>
class de_in : public de::in<T> {
public:
    explicit de_in(std::string name = "de_in") : de::in<T>(std::move(name)) {
        owner_ = dynamic_cast<module*>(this->parent());
        util::require(owner_ != nullptr, this->name(),
                      "de_in must be declared inside a tdf::module");
    }

    /// Sample `k` of the current activation; zero-order hold, so every
    /// in-activation sample reads the value at activation time.
    [[nodiscard]] const T& read(unsigned /*k*/ = 0) const { return de::in<T>::read(); }

private:
    module* owner_;
};

/// TDF -> DE converter port; member of a tdf::module.
template <typename T>
class de_out : public de::out<T> {
public:
    explicit de_out(std::string name = "de_out") : de::out<T>(std::move(name)) {
        owner_ = dynamic_cast<module*>(this->parent());
        util::require(owner_ != nullptr, this->name(),
                      "de_out must be declared inside a tdf::module");
        event_ = std::make_unique<de::event>(this->name() + ".wakeup");
        auto& proc = this->context().register_method(this->name() + ".writer",
                                                     [this] { drain(); });
        proc.dont_initialize();
        proc.make_sensitive(*event_);
    }

    /// Samples per module activation (determines sample timestamps).
    void set_rate(unsigned rate) {
        util::require(rate >= 1, this->name(), "rate must be >= 1");
        rate_ = rate;
    }
    [[nodiscard]] unsigned rate() const noexcept { return rate_; }

    /// Write sample `k` of the current activation at its exact TDF time.
    void write(const T& v, unsigned k = 0) {
        util::require(k < rate_, this->name(), "sample index exceeds port rate");
        const de::time step =
            de::time::from_fs(owner_->timestep().value_fs() / static_cast<std::int64_t>(rate_));
        const de::time at = owner_->tdf_time() + step * static_cast<std::int64_t>(k);
        const de::time now = this->context().now();
        if (at <= now) {
            de::out<T>::write(v);
            return;
        }
        queue_.push_back({at, v});
        event_->notify(at - now);  // earliest pending notification wins
    }

private:
    void drain() {
        const de::time now = this->context().now();
        while (!queue_.empty() && queue_.front().at <= now) {
            de::out<T>::write(queue_.front().value);
            queue_.pop_front();
        }
        if (!queue_.empty()) event_->notify(queue_.front().at - now);
    }

    struct pending {
        de::time at;
        T value;
    };

    module* owner_;
    unsigned rate_ = 1;
    std::deque<pending> queue_;
    std::unique_ptr<de::event> event_;
};

}  // namespace sca::tdf

#endif  // SCA_TDF_CONVERTER_HPP
