// Timed synchronous dataflow (TDF) ports and signals.
//
// A TDF port carries `rate` samples per module activation, optionally shifted
// by `delay` initial tokens, at a fixed sample period (`timestep`).  Ports of
// connected modules form clusters that are statically scheduled (paper §3:
// SDF models "have the nice property that a finite static scheduling can
// always be found").
#ifndef SCA_TDF_PORT_HPP
#define SCA_TDF_PORT_HPP

#include <algorithm>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "kernel/object.hpp"
#include "kernel/time.hpp"
#include "util/bytes.hpp"
#include "util/report.hpp"

namespace sca::tdf {

class module;
class signal_base;
class cluster;

/// Common state of TDF input and output ports.
class port_base : public de::object {
public:
    [[nodiscard]] const char* kind() const noexcept override { return "tdf_port"; }

    /// Samples transported per module activation (>= 1).
    void set_rate(unsigned rate) {
        util::require(rate >= 1, name(), "rate must be >= 1");
        rate_ = rate;
    }
    [[nodiscard]] unsigned rate() const noexcept { return rate_; }

    /// Initial tokens inserted on this port (shifts the stream).
    void set_delay(unsigned delay) noexcept { delay_ = delay; }
    [[nodiscard]] unsigned delay() const noexcept { return delay_; }

    /// Anchor the sample period of this port (propagated to the cluster).
    void set_timestep(const de::time& t) { timestep_request_ = t; }
    void set_timestep(double value, de::time_unit unit) {
        timestep_request_ = de::time(value, unit);
    }
    [[nodiscard]] const de::time& timestep_request() const noexcept {
        return timestep_request_;
    }

    /// Resolved sample period; valid after cluster elaboration.
    [[nodiscard]] const de::time& timestep() const noexcept { return timestep_; }
    void set_resolved_timestep(const de::time& t) noexcept { timestep_ = t; }

    /// Module this port belongs to (normally the enclosing tdf::module).
    [[nodiscard]] module* owner() const noexcept { return owner_; }
    /// Attach to a module explicitly (used by ELN/LSF converter primitives
    /// whose ports belong to the embedding network module).
    void set_owner(module& m);

    [[nodiscard]] signal_base* bound_signal() const noexcept { return signal_; }
    /// Parent/child port this port forwards to (hierarchical binding).
    [[nodiscard]] port_base* forwarded_port() const noexcept { return forward_; }
    [[nodiscard]] bool is_input() const noexcept { return is_input_; }
    [[nodiscard]] bool bound() const noexcept {
        return signal_ != nullptr || forward_ != nullptr;
    }

    /// Follow the port-to-port forwarding chain to the terminal signal and,
    /// for ports that belong to a tdf::module (dataflow endpoints), attach as
    /// reader/writer there.  Forwarding ports of composite modules resolve to
    /// the same signal but never attach — they are structural aliases.
    /// Called by the synchronization layer before cluster discovery;
    /// idempotent.  Unbound chains are an elaboration error reporting the
    /// full hierarchical path.
    void resolve();

    /// Absolute stream position (tokens handled so far, including delay).
    [[nodiscard]] std::uint64_t position() const noexcept { return position_; }
    void advance() noexcept { position_ += rate_; }
    /// Advance by `n` firings at once (block execution).
    void advance_n(std::uint64_t n) noexcept { position_ += rate_ * n; }
    void reset_position(std::uint64_t p) noexcept { position_ = p; }

    // --- block execution (see tdf/block.hpp) --------------------------------
    /// Ring-buffer offset (in tokens) of this port's next token: the next
    /// unread token for inputs (with the read-side delay already applied,
    /// floored modulo, so pre-stream tokens map onto their prefilled slots)
    /// or the next unwritten token for outputs.
    [[nodiscard]] std::size_t ring_offset() const;

    /// Largest number of consecutive firings (<= want) whose tokens stay
    /// contiguous in the ring buffer starting at ring_offset().  Zero means
    /// the very next firing straddles the wrap point and must run on the
    /// per-sample path.
    [[nodiscard]] std::uint64_t contiguous_firings(std::uint64_t want) const;

    // --- dynamic TDF (runtime attribute changes) ----------------------------
    /// Stage a rate request (module::request_rate); the owning cluster
    /// consumes it at the next reschedule point.  0 = no request staged.
    void stage_rate(unsigned rate) {
        util::require(rate >= 1, name(), "requested rate must be >= 1");
        staged_rate_ = rate;
    }
    [[nodiscard]] bool has_staged_rate() const noexcept { return staged_rate_ != 0; }
    [[nodiscard]] unsigned staged_rate() const noexcept { return staged_rate_; }
    void clear_staged_rate() noexcept { staged_rate_ = 0; }

protected:
    port_base(std::string name, bool is_input);

    /// Record a direct signal binding (double binding is an error).
    void record_signal_binding(signal_base& s);
    /// Record a port-to-port forwarding binding (double binding is an error).
    void record_port_binding(port_base& p);

    signal_base* signal_ = nullptr;
    port_base* forward_ = nullptr;
    module* owner_ = nullptr;
    unsigned rate_ = 1;
    unsigned delay_ = 0;
    unsigned staged_rate_ = 0;  // dynamic-rate request, 0 = none
    bool is_input_;
    bool resolved_ = false;
    de::time timestep_request_;  // zero = unconstrained
    de::time timestep_;
    std::uint64_t position_ = 0;
};

namespace detail {
/// Name for an auto-created wire: "ownerbasename_portbasename" (or
/// "portbasename_wire" for orphan ports).  Used by tdf/connect.hpp.
[[nodiscard]] std::string auto_wire_name(const port_base& from);
}  // namespace detail

/// Untyped TDF signal: one writer, any number of readers.
class signal_base : public de::object {
public:
    [[nodiscard]] const char* kind() const noexcept override { return "tdf_signal"; }

    [[nodiscard]] port_base* writer() const noexcept { return writer_; }
    [[nodiscard]] const std::vector<port_base*>& readers() const noexcept { return readers_; }

    void attach_writer(port_base& p);
    void attach_reader(port_base& p);

    /// Ring-buffer allocation; called by the cluster after scheduling.
    virtual void allocate(std::size_t capacity) = 0;

    /// Ring-buffer (re)allocation for a reschedule: grows only when the
    /// current capacity is insufficient, otherwise resets tokens in place
    /// (stream positions restart, so pre-stream tokens must read the
    /// initial value again).
    virtual void ensure_allocated(std::size_t capacity) = 0;

    /// Current ring-buffer capacity in tokens (valid after elaboration).
    [[nodiscard]] virtual std::size_t capacity() const noexcept = 0;

    /// Refresh the traced last-written value from the token at absolute
    /// stream index `index` (block writes bypass write_token, which would
    /// otherwise keep the probe current).
    virtual void refresh_last(std::uint64_t index) = 0;

    // --- checkpoint/restore (core/snapshot) ---------------------------------
    /// Serialize the ring-buffer contents (type tag, capacity, every token,
    /// initial and last-written value).  Called by the owning cluster so
    /// tokens are captured alongside the stream positions they pair with.
    virtual void save_tokens(util::byte_writer& w) const = 0;
    /// Reallocate to the *saved* capacity and overlay the tokens.  Ring
    /// indexing is modulo the buffer size, so restoring the exact capacity —
    /// not merely a sufficient one — is what keeps resumed token placement
    /// bit-identical.  Runs after the cluster reinstalls its schedule (which
    /// resets buffers), never before.
    virtual void restore_tokens(util::byte_reader& r) = 0;

protected:
    explicit signal_base(std::string name) : de::object(std::move(name)) {}

    port_base* writer_ = nullptr;
    std::vector<port_base*> readers_;
};

/// Typed TDF signal holding the token ring buffer.
template <typename T>
class signal : public signal_base {
public:
    explicit signal(std::string name = "tdf_signal") : signal_base(std::move(name)) {}

    void allocate(std::size_t capacity) override {
        util::require(capacity > 0, name(), "zero buffer capacity");
        buffer_.assign(capacity, initial_);
    }

    void ensure_allocated(std::size_t capacity) override {
        util::require(capacity > 0, name(), "zero buffer capacity");
        if (capacity > buffer_.size()) {
            buffer_.assign(capacity, initial_);
        } else {
            // In-place: keep the (possibly larger) allocation, refresh the
            // pre-stream prefill so restarted delay tokens are deterministic.
            std::fill(buffer_.begin(), buffer_.end(), initial_);
        }
    }

    [[nodiscard]] std::size_t capacity() const noexcept override { return buffer_.size(); }

    /// Value used for tokens before the start of the stream (delay tokens).
    /// Intended to be called from module initialize(), i.e. after buffer
    /// allocation but before any token is produced: the prefill is refreshed.
    void set_initial_value(const T& v) {
        initial_ = v;
        std::fill(buffer_.begin(), buffer_.end(), v);
        last_value_ = v;
    }

    /// Token by absolute stream index; negative indices yield the initial
    /// value. Returned by value: tokens are small, and std::vector<bool>
    /// has no stable element references.
    [[nodiscard]] T read_token(std::int64_t index) const {
        if (index < 0) return initial_;
        return buffer_[static_cast<std::size_t>(index) % buffer_.size()];
    }

    void write_token(std::uint64_t index, const T& v) {
        buffer_[index % buffer_.size()] = v;
        last_value_ = v;
    }

    /// Most recently written token (tracing probe).
    [[nodiscard]] const T& last_value() const noexcept { return last_value_; }

    /// Raw ring-buffer storage for block spans (tdf/block.hpp).  Only
    /// instantiated for span-capable element types (not std::vector<bool>).
    [[nodiscard]] T* data() noexcept { return buffer_.data(); }
    [[nodiscard]] const T* data() const noexcept { return buffer_.data(); }

    void refresh_last(std::uint64_t index) override {
        last_value_ = buffer_[index % buffer_.size()];
    }

    void save_tokens(util::byte_writer& w) const override {
        w.u8(token_type_tag());
        w.u64(static_cast<std::uint64_t>(buffer_.size()));
        for (std::size_t i = 0; i < buffer_.size(); ++i) write_value(w, buffer_[i]);
        write_value(w, initial_);
        write_value(w, last_value_);
    }

    void restore_tokens(util::byte_reader& r) override {
        util::require(r.u8() == token_type_tag(), "snapshot",
                      "signal '" + name() + "': token type differs from snapshot");
        const auto cap = static_cast<std::size_t>(r.u64());
        util::require(cap > 0, "snapshot",
                      "signal '" + name() + "': zero capacity in snapshot");
        buffer_.assign(cap, initial_);
        for (std::size_t i = 0; i < cap; ++i) buffer_[i] = read_value(r);
        initial_ = read_value(r);
        last_value_ = read_value(r);
    }

private:
    [[nodiscard]] static constexpr std::uint8_t token_type_tag() {
        if constexpr (std::is_same_v<T, bool>) {
            return 1;
        } else if constexpr (std::is_floating_point_v<T>) {
            return 2;
        } else if constexpr (std::is_integral_v<T>) {
            return 3;
        } else {
            return 0;  // unsupported: save/restore refuse below
        }
    }
    static void write_value(util::byte_writer& w, const T& v) {
        if constexpr (std::is_same_v<T, bool>) {
            w.boolean(v);
        } else if constexpr (std::is_floating_point_v<T>) {
            w.f64(static_cast<double>(v));
        } else if constexpr (std::is_integral_v<T>) {
            w.i64(static_cast<std::int64_t>(v));
        } else {
            util::report_fatal("snapshot", "unsupported TDF token type");
        }
    }
    [[nodiscard]] static T read_value(util::byte_reader& r) {
        if constexpr (std::is_same_v<T, bool>) {
            return r.boolean();
        } else if constexpr (std::is_floating_point_v<T>) {
            return static_cast<T>(r.f64());
        } else if constexpr (std::is_integral_v<T>) {
            return static_cast<T>(r.i64());
        } else {
            util::report_fatal("snapshot", "unsupported TDF token type");
        }
    }

    std::vector<T> buffer_{T{}};
    T initial_{};
    T last_value_{};
};

/// TDF input port.  Binds to a tdf::signal<T> or, hierarchically, to another
/// in<T> (a composite module's forwarded input); reader attachment happens at
/// elaboration once the forwarding chain is resolved.
template <typename T>
class in : public port_base {
public:
    explicit in(std::string name = "in") : port_base(std::move(name), /*is_input=*/true) {}

    void bind(signal<T>& s) { record_signal_binding(s); }
    /// Hierarchical binding: this port reads through `parent` (an input port
    /// of the enclosing composite, or of a sibling composite's interior).
    void bind(in<T>& parent) { record_port_binding(parent); }
    void operator()(signal<T>& s) { bind(s); }
    void operator()(in<T>& parent) { bind(parent); }

    /// Sample `k` (0 <= k < rate) of the current activation.
    [[nodiscard]] T read(unsigned k = 0) const {
        const auto* s = static_cast<const signal<T>*>(signal_);
        util::require(s != nullptr, name(), "read of unbound TDF port");
        util::require(k < rate_, name(), "sample index exceeds port rate");
        return s->read_token(static_cast<std::int64_t>(position_ + k) -
                             static_cast<std::int64_t>(delay_));
    }

private:
};

/// TDF output port.  Binds to a tdf::signal<T> or, hierarchically, to the
/// out<T> of the enclosing composite module (export); writer attachment
/// happens at elaboration once the forwarding chain is resolved.
template <typename T>
class out : public port_base {
public:
    explicit out(std::string name = "out") : port_base(std::move(name), /*is_input=*/false) {}

    void bind(signal<T>& s) { record_signal_binding(s); }
    /// Hierarchical binding: this port writes through `parent`.
    void bind(out<T>& parent) { record_port_binding(parent); }
    void operator()(signal<T>& s) { bind(s); }
    void operator()(out<T>& parent) { bind(parent); }

    /// Write sample `k` (0 <= k < rate) of the current activation.
    void write(const T& v, unsigned k = 0) {
        auto* s = static_cast<signal<T>*>(signal_);
        util::require(s != nullptr, name(), "write to unbound TDF port");
        util::require(k < rate_, name(), "sample index exceeds port rate");
        s->write_token(position_ + k, v);
    }

    /// Set the value of the `delay()` initial tokens.
    void set_initial_value(const T& v) {
        auto* s = static_cast<signal<T>*>(signal_);
        util::require(s != nullptr, name(), "initial value on unbound TDF port");
        s->set_initial_value(v);
    }
};

}  // namespace sca::tdf

#endif  // SCA_TDF_PORT_HPP
