#include "tdf/module.hpp"

#include <algorithm>

#include "tdf/block.hpp"
#include "tdf/cluster.hpp"
#include "util/report.hpp"

namespace sca::tdf {

module::module(const de::module_name& nm) : de::module(nm) {
    registry::of(context()).add_module(*this);
}

void module::request_timestep(const de::time& t) {
    util::require(in_change_attributes_, name(),
                  "request_timestep is only valid inside change_attributes()");
    util::require(t > de::time::zero(), name(), "requested timestep must be positive");
    pending_timestep_ = t;
    has_pending_timestep_ = true;
}

void module::request_rate(port_base& p, unsigned rate) {
    util::require(in_change_attributes_, name(),
                  "request_rate is only valid inside change_attributes()");
    util::require(std::find(ports_.begin(), ports_.end(), &p) != ports_.end(), name(),
                  "request_rate on port " + p.name() +
                      " which does not belong to this module");
    p.stage_rate(rate);
}

void module::fire_run(const de::time& t0, std::uint64_t k0, std::uint64_t n) {
    de::time t = t0 + timestep_ * static_cast<std::int64_t>(k0);
    for (std::uint64_t i = 0; i < n; ++i) {
        current_time_ = t;
        processing();
        ++activations_;
        for (port_base* p : ports_) p->advance();
        t += timestep_;
    }
}

void module::processing(block_view& blk) {
    (void)blk;
    util::report_fatal(name(),
                       "processing(block_view&) called on a module that does not "
                       "override it (has_block_processing() must only return true "
                       "when the block path is implemented)");
}

void module::fire_block_run(const de::time& t0, std::uint64_t k0, std::uint64_t n) {
    std::uint64_t done = 0;
    while (done < n) {
        // Maximal run whose tokens stay contiguous on every port.
        std::uint64_t m = n - done;
        for (port_base* p : ports_) m = std::min(m, p->contiguous_firings(m));
        if (m == 0) {
            // The next firing straddles a ring-buffer wrap point on some
            // port: per-sample fallback for exactly this firing (write_token
            // / read_token wrap per token).
            fire_run(t0, k0 + done, 1);
            ++done;
            continue;
        }
        current_time_ = t0 + timestep_ * static_cast<std::int64_t>(k0 + done);
        block_view blk(current_time_, timestep_, m);
        processing(blk);
        ++block_calls_;
        block_firings_ += m;
        activations_ += m;
        for (port_base* p : ports_) {
            if (!p->is_input()) {
                p->bound_signal()->refresh_last(p->position() +
                                                static_cast<std::uint64_t>(p->rate()) * m - 1);
            }
            p->advance_n(m);
        }
        done += m;
    }
}

}  // namespace sca::tdf
