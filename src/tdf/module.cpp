#include "tdf/module.hpp"

#include "tdf/cluster.hpp"

namespace sca::tdf {

module::module(const de::module_name& nm) : de::module(nm) {
    registry::of(context()).add_module(*this);
}

void module::fire(const de::time& t0, std::uint64_t k) {
    current_time_ = t0 + timestep_ * static_cast<std::int64_t>(k);
    processing();
    ++activations_;
    for (port_base* p : ports_) p->advance();
}

}  // namespace sca::tdf
