#include "tdf/module.hpp"

#include "tdf/cluster.hpp"

namespace sca::tdf {

module::module(const de::module_name& nm) : de::module(nm) {
    registry::of(context()).add_module(*this);
}

void module::fire_run(const de::time& t0, std::uint64_t k0, std::uint64_t n) {
    de::time t = t0 + timestep_ * static_cast<std::int64_t>(k0);
    for (std::uint64_t i = 0; i < n; ++i) {
        current_time_ = t;
        processing();
        ++activations_;
        for (port_base* p : ports_) p->advance();
        t += timestep_;
    }
}

}  // namespace sca::tdf
