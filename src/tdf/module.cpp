#include "tdf/module.hpp"

#include <algorithm>

#include "tdf/cluster.hpp"
#include "util/report.hpp"

namespace sca::tdf {

module::module(const de::module_name& nm) : de::module(nm) {
    registry::of(context()).add_module(*this);
}

void module::request_timestep(const de::time& t) {
    util::require(in_change_attributes_, name(),
                  "request_timestep is only valid inside change_attributes()");
    util::require(t > de::time::zero(), name(), "requested timestep must be positive");
    pending_timestep_ = t;
    has_pending_timestep_ = true;
}

void module::request_rate(port_base& p, unsigned rate) {
    util::require(in_change_attributes_, name(),
                  "request_rate is only valid inside change_attributes()");
    util::require(std::find(ports_.begin(), ports_.end(), &p) != ports_.end(), name(),
                  "request_rate on port " + p.name() +
                      " which does not belong to this module");
    p.stage_rate(rate);
}

void module::fire_run(const de::time& t0, std::uint64_t k0, std::uint64_t n) {
    de::time t = t0 + timestep_ * static_cast<std::int64_t>(k0);
    for (std::uint64_t i = 0; i < n; ++i) {
        current_time_ = t;
        processing();
        ++activations_;
        for (port_base* p : ports_) p->advance();
        t += timestep_;
    }
}

}  // namespace sca::tdf
