#include "tdf/converter.hpp"

namespace sca::tdf {

// Converter ports are header-only templates; this translation unit anchors
// the component in the build and provides a place for future non-template
// helpers.

}  // namespace sca::tdf
