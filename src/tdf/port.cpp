#include "tdf/port.hpp"

#include "tdf/module.hpp"

namespace sca::tdf {

port_base::port_base(std::string name, bool is_input)
    : de::object(std::move(name)), is_input_(is_input) {
    // A port declared as a member of a tdf::module registers automatically;
    // converter primitives (ELN/LSF) set the owner explicitly instead.
    if (auto* m = dynamic_cast<module*>(parent())) {
        owner_ = m;
        m->register_port(*this);
    }
}

void port_base::set_owner(module& m) {
    owner_ = &m;
    m.register_port(*this);
}

namespace {
void require_unbound(const port_base& port, const signal_base* s, const port_base* f) {
    if (s != nullptr || f != nullptr) {
        util::report_fatal(port.name(), "TDF port is already bound (to " +
                                            (s != nullptr ? s->name() : f->name()) +
                                            "); a port binds exactly one signal or "
                                            "parent port");
    }
}
}  // namespace

void port_base::record_signal_binding(signal_base& s) {
    require_unbound(*this, signal_, forward_);
    signal_ = &s;
}

void port_base::record_port_binding(port_base& p) {
    require_unbound(*this, signal_, forward_);
    util::require(&p != this, name(), "TDF port cannot forward to itself");
    util::require(p.is_input() == is_input_, name(),
                  "TDF port-to-port binding must preserve direction "
                  "(in forwards to in, out forwards to out)");
    forward_ = &p;
}

void port_base::resolve() {
    if (resolved_) return;
    resolved_ = true;
    // Follow the forwarding chain to the terminal signal.  Chains may be
    // resolved in any order: intermediate ports are not required to have
    // resolved already, only to lead to a signal eventually.
    const port_base* p = this;
    int hops = 0;
    while (p->signal_ == nullptr && p->forward_ != nullptr) {
        p = p->forward_;
        util::require(++hops < 1024, name(), "TDF port binding cycle detected");
    }
    util::require(p->signal_ != nullptr, name(),
                  p == this ? "unbound TDF port"
                            : "unbound TDF port (forwarding chain ends at " + p->name() +
                                  " without reaching a signal)");
    signal_ = p->signal_;
    // Only dataflow endpoints (ports owned by a tdf::module, including the
    // converter ports ELN/LSF components re-own onto their network) attach
    // to the signal; forwarding ports of composites are aliases.
    if (owner_ != nullptr) {
        if (is_input_) {
            signal_->attach_reader(*this);
        } else {
            signal_->attach_writer(*this);
        }
    }
}

std::size_t port_base::ring_offset() const {
    // Signed/floored modulo: an input's next token index can be negative
    // while the stream is still inside its delay window; the floored result
    // maps it onto the prefilled slot read_token() would return the initial
    // value for (capacity accounting keeps that slot unwritten while any
    // reader still needs it).
    const auto cap = static_cast<std::int64_t>(signal_->capacity());
    std::int64_t s = static_cast<std::int64_t>(position_);
    if (is_input_) s -= static_cast<std::int64_t>(delay_);
    std::int64_t off = s % cap;
    if (off < 0) off += cap;
    return static_cast<std::size_t>(off);
}

std::uint64_t port_base::contiguous_firings(std::uint64_t want) const {
    const std::size_t cap = signal_->capacity();
    const std::uint64_t room =
        static_cast<std::uint64_t>(cap - ring_offset()) / rate_;
    return std::min(want, room);
}

std::string detail::auto_wire_name(const port_base& from) {
    const de::object* parent = from.parent();
    if (parent != nullptr) return parent->basename() + "_" + from.basename();
    return from.basename() + "_wire";
}

void signal_base::attach_writer(port_base& p) {
    if (writer_ != nullptr) {
        util::report_fatal(name(), "TDF signal already has a writer (" + writer_->name() +
                                       "); cannot also attach " + p.name());
    }
    writer_ = &p;
}

void signal_base::attach_reader(port_base& p) { readers_.push_back(&p); }

}  // namespace sca::tdf
