#include "tdf/port.hpp"

#include "tdf/module.hpp"

namespace sca::tdf {

port_base::port_base(std::string name, bool is_input)
    : de::object(std::move(name)), is_input_(is_input) {
    // A port declared as a member of a tdf::module registers automatically;
    // converter primitives (ELN/LSF) set the owner explicitly instead.
    if (auto* m = dynamic_cast<module*>(parent())) {
        owner_ = m;
        m->register_port(*this);
    }
}

void port_base::set_owner(module& m) {
    owner_ = &m;
    m.register_port(*this);
}

void signal_base::attach_writer(port_base& p) {
    util::require(writer_ == nullptr, name(), "TDF signal already has a writer");
    writer_ = &p;
}

void signal_base::attach_reader(port_base& p) { readers_.push_back(&p); }

}  // namespace sca::tdf
