// Dynamic TDF: runtime attribute changes with incremental rescheduling.
//
// A module that overrides change_attributes() (and declares it via
// does_attribute_changes()) may call request_timestep() / request_rate()
// between cluster periods; the owning cluster then re-resolves timesteps and
// recompiles its firing program before the next period.  Recompilation is
// incremental: every visited rate configuration is cached in a
// schedule_cache keyed by the cluster's attribute signature, so repeat
// visits (a model oscillating between a fast and a slow state) are a hash
// lookup, not a schedule compilation.  Clusters without any
// does_attribute_changes() module never touch this machinery and keep the
// compiled static fast path bit-identically.
#ifndef SCA_TDF_DYNAMIC_HPP
#define SCA_TDF_DYNAMIC_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "kernel/time.hpp"
#include "tdf/schedule.hpp"

namespace sca::tdf {

/// Flattened encoding of every schedule-determining attribute of a cluster:
/// per member module (in cluster order) the module timestep request in
/// femtoseconds, then per port the (rate, delay) pair.  Two equal signatures
/// resolve to identical schedules, so the signature is the cache key.
struct attribute_signature {
    std::vector<std::uint64_t> words;

    bool operator==(const attribute_signature&) const = default;
};

/// FNV-1a over the signature words.
struct attribute_signature_hash {
    [[nodiscard]] std::size_t operator()(const attribute_signature& s) const noexcept;
};

/// Everything a cluster installs when a rate configuration becomes active:
/// the resolved timing, the repetition vector, and the compiled firing
/// program with its ring-buffer capacities.  Module/port entries follow the
/// cluster's member order (ports module-major, in declaration order).
struct cluster_config {
    de::time period;
    std::vector<std::uint64_t> repetitions;  // per member module
    std::vector<de::time> module_timesteps;  // per member module
    std::vector<de::time> port_timesteps;    // module-major port order
    compiled_schedule compiled;              // program + buffer capacities
};

/// Per-cluster cache of compiled schedules keyed by attribute signature.
/// find() counts hits and misses; the counters back the incremental-
/// rescheduling contract asserted in tests and reported by benches.
///
/// The cache is bounded: a model whose requested timestep is computed from
/// signal data can produce an endless stream of distinct configurations,
/// and an unbounded cache would grow without limit over a long run.  When
/// full, an arbitrary entry is evicted — the cache is purely an
/// optimization, a future miss just recompiles.
class schedule_cache {
public:
    static constexpr std::size_t k_default_max_entries = 256;

    /// Cached configuration for `sig`, or nullptr (counted as hit / miss).
    [[nodiscard]] const cluster_config* find(const attribute_signature& sig);

    /// Store the configuration compiled for `sig` (overwrites duplicates;
    /// evicts an arbitrary entry when the cache is full).
    void insert(const attribute_signature& sig, cluster_config cfg);

    /// Cap the number of cached configurations (>= 1).
    void set_max_entries(std::size_t n);
    [[nodiscard]] std::size_t max_entries() const noexcept { return max_entries_; }

    [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
    [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
    [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

private:
    std::unordered_map<attribute_signature, cluster_config, attribute_signature_hash>
        entries_;
    std::size_t max_entries_ = k_default_max_entries;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

}  // namespace sca::tdf

#endif  // SCA_TDF_DYNAMIC_HPP
