#include "tdf/dynamic.hpp"

#include "util/report.hpp"

namespace sca::tdf {

std::size_t attribute_signature_hash::operator()(
    const attribute_signature& s) const noexcept {
    // FNV-1a, folding each 64-bit word byte-free (multiply-xor per word is
    // enough: signatures are short and equality is checked on collision).
    std::uint64_t h = 1469598103934665603ULL;
    for (const std::uint64_t w : s.words) {
        h ^= w;
        h *= 1099511628211ULL;
    }
    return static_cast<std::size_t>(h);
}

const cluster_config* schedule_cache::find(const attribute_signature& sig) {
    const auto it = entries_.find(sig);
    if (it == entries_.end()) {
        ++misses_;
        return nullptr;
    }
    ++hits_;
    return &it->second;
}

void schedule_cache::set_max_entries(std::size_t n) {
    util::require(n >= 1, "tdf_schedule_cache", "max entries must be >= 1");
    max_entries_ = n;
    while (entries_.size() > max_entries_) entries_.erase(entries_.begin());
}

void schedule_cache::insert(const attribute_signature& sig, cluster_config cfg) {
    if (entries_.size() >= max_entries_ && entries_.find(sig) == entries_.end()) {
        // Arbitrary eviction: any entry is as good as any other — a future
        // miss on the evicted configuration just recompiles it.
        entries_.erase(entries_.begin());
    }
    entries_[sig] = std::move(cfg);
}

}  // namespace sca::tdf
