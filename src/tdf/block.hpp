// Block-based TDF execution: a `block_view` hands a module `count`
// consecutive firings worth of samples as contiguous per-port spans over the
// preallocated ring buffers.
//
// The static schedule fixes buffer sizes and repetition counts at
// elaboration (paper §3), which is exactly what makes block execution legal:
// a module will consume/produce rate x count tokens per block, the executor
// knows both bounds, and the ring buffers already hold a full period.  The
// cluster splits a block run at the ring-buffer wrap point (and executes a
// wrap-straddling firing on the per-sample path), so inside
// processing(block_view&) every span is plain contiguous memory:
//
//   void gain::processing(tdf::block_view& blk) override {
//       const double* x = blk.in_span(in);     // rate * count samples
//       double* y = blk.out_span(out);
//       for (std::uint64_t i = 0; i < blk.count(); ++i) y[i] = k_ * x[i];
//   }
//
// Contract (see docs/api.md "Block processing"):
//   - in_span/out_span return rate() * count() tokens, oldest first.  Input
//     spans may point at prefilled (initial-value) slots for pre-stream
//     tokens of delayed ports; capacity accounting guarantees those slots
//     still hold the initial value.
//   - Spans alias the ring buffers: do not hold them across activations.
//   - A module overriding processing(block_view&) must also keep its
//     per-sample processing() semantically identical: the executor falls
//     back to it for wrap-straddling firings and when block execution is
//     disabled, and the two paths share the module's internal state.
#ifndef SCA_TDF_BLOCK_HPP
#define SCA_TDF_BLOCK_HPP

#include <cstdint>

#include "kernel/time.hpp"
#include "tdf/port.hpp"

namespace sca::tdf {

class block_view {
public:
    /// Built by module::fire_block_run; `t0` is the time of the block's
    /// first firing, `count` the number of consecutive firings it covers.
    block_view(const de::time& t0, const de::time& timestep, std::uint64_t count) noexcept
        : t0_(t0), timestep_(timestep), n_(count) {}

    /// Consecutive firings covered by this block (>= 1).
    [[nodiscard]] std::uint64_t count() const noexcept { return n_; }

    /// Time of firing `k` of the block (k = 0 is tdf_time()).  Exact de::time
    /// arithmetic, bit-identical to the per-sample activation grid.
    [[nodiscard]] de::time time_at(std::uint64_t k) const {
        return t0_ + timestep_ * static_cast<std::int64_t>(k);
    }

    /// Contiguous read span of `p.rate() * count()` tokens, oldest first
    /// (sample k of firing i is element i * rate + k).
    template <typename T>
    [[nodiscard]] const T* in_span(const in<T>& p) const {
        const auto* s = static_cast<const signal<T>*>(p.bound_signal());
        return s->data() + p.ring_offset();
    }

    /// Contiguous write span of `p.rate() * count()` tokens; every element
    /// must be written (they are the port's tokens for these firings).
    template <typename T>
    [[nodiscard]] T* out_span(const out<T>& p) const {
        auto* s = static_cast<signal<T>*>(p.bound_signal());
        return s->data() + p.ring_offset();
    }

private:
    de::time t0_;
    de::time timestep_;
    std::uint64_t n_;
};

}  // namespace sca::tdf

#endif  // SCA_TDF_BLOCK_HPP
