#include "tdf/schedule.hpp"

#include <numeric>

#include "util/report.hpp"

namespace sca::tdf {

namespace {

/// Exact rational with int64 numerator/denominator, kept reduced.
struct rational {
    std::int64_t num = 0;
    std::int64_t den = 1;

    static rational make(std::int64_t n, std::int64_t d) {
        const std::int64_t g = std::gcd(n, d);
        if (g != 0) {
            n /= g;
            d /= g;
        }
        if (d < 0) {
            n = -n;
            d = -d;
        }
        return {n, d};
    }

    [[nodiscard]] rational times(std::int64_t n, std::int64_t d) const {
        return make(num * n, den * d);
    }

    bool operator==(const rational&) const = default;
};

}  // namespace

std::vector<std::uint64_t> repetition_vector(std::size_t n,
                                             const std::vector<rate_edge>& edges) {
    // Adjacency with rate ratio: rep[to] = rep[from] * out_rate / in_rate.
    struct link {
        std::size_t other;
        std::int64_t num;  // multiply by num/den going from `this` to `other`
        std::int64_t den;
    };
    std::vector<std::vector<link>> adj(n);
    for (const auto& e : edges) {
        util::require(e.from < n && e.to < n, "repetition_vector", "edge index out of range");
        util::require(e.out_rate > 0 && e.in_rate > 0, "repetition_vector",
                      "rates must be positive");
        adj[e.from].push_back({e.to, e.out_rate, e.in_rate});
        adj[e.to].push_back({e.from, e.in_rate, e.out_rate});
    }

    std::vector<rational> rep(n, rational{0, 1});
    std::vector<std::size_t> stack;
    for (std::size_t start = 0; start < n; ++start) {
        if (rep[start].num != 0) continue;
        rep[start] = rational{1, 1};
        stack.push_back(start);
        while (!stack.empty()) {
            const std::size_t u = stack.back();
            stack.pop_back();
            for (const auto& l : adj[u]) {
                const rational expected = rep[u].times(l.num, l.den);
                if (rep[l.other].num == 0) {
                    rep[l.other] = expected;
                    stack.push_back(l.other);
                } else {
                    util::require(rep[l.other] == expected, "repetition_vector",
                                  "inconsistent dataflow rates: no finite static "
                                  "schedule exists for this graph");
                }
            }
        }
    }

    // Scale to the minimal integer vector: multiply by lcm of denominators,
    // then divide by the gcd of the numerators.
    std::int64_t den_lcm = 1;
    for (const auto& r : rep) den_lcm = std::lcm(den_lcm, r.den);
    std::vector<std::uint64_t> result(n);
    std::int64_t num_gcd = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::int64_t v = rep[i].num * (den_lcm / rep[i].den);
        result[i] = static_cast<std::uint64_t>(v);
        num_gcd = std::gcd(num_gcd, v);
    }
    if (num_gcd > 1) {
        for (auto& v : result) v /= static_cast<std::uint64_t>(num_gcd);
    }
    return result;
}

}  // namespace sca::tdf
