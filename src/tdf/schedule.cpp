#include "tdf/schedule.hpp"

#include <algorithm>
#include <numeric>

#include "util/report.hpp"

namespace sca::tdf {

namespace {

/// Exact rational with int64 numerator/denominator, kept reduced.
struct rational {
    std::int64_t num = 0;
    std::int64_t den = 1;

    static rational make(std::int64_t n, std::int64_t d) {
        const std::int64_t g = std::gcd(n, d);
        if (g != 0) {
            n /= g;
            d /= g;
        }
        if (d < 0) {
            n = -n;
            d = -d;
        }
        return {n, d};
    }

    [[nodiscard]] rational times(std::int64_t n, std::int64_t d) const {
        return make(num * n, den * d);
    }

    bool operator==(const rational&) const = default;
};

}  // namespace

std::vector<std::uint64_t> repetition_vector(std::size_t n,
                                             const std::vector<rate_edge>& edges) {
    // Adjacency with rate ratio: rep[to] = rep[from] * out_rate / in_rate.
    struct link {
        std::size_t other;
        std::int64_t num;  // multiply by num/den going from `this` to `other`
        std::int64_t den;
    };
    std::vector<std::vector<link>> adj(n);
    for (const auto& e : edges) {
        util::require(e.from < n && e.to < n, "repetition_vector", "edge index out of range");
        util::require(e.out_rate > 0 && e.in_rate > 0, "repetition_vector",
                      "rates must be positive");
        adj[e.from].push_back({e.to, e.out_rate, e.in_rate});
        adj[e.to].push_back({e.from, e.in_rate, e.out_rate});
    }

    std::vector<rational> rep(n, rational{0, 1});
    std::vector<std::size_t> stack;
    for (std::size_t start = 0; start < n; ++start) {
        if (rep[start].num != 0) continue;
        rep[start] = rational{1, 1};
        stack.push_back(start);
        while (!stack.empty()) {
            const std::size_t u = stack.back();
            stack.pop_back();
            for (const auto& l : adj[u]) {
                const rational expected = rep[u].times(l.num, l.den);
                if (rep[l.other].num == 0) {
                    rep[l.other] = expected;
                    stack.push_back(l.other);
                } else {
                    util::require(rep[l.other] == expected, "repetition_vector",
                                  "inconsistent dataflow rates: no finite static "
                                  "schedule exists for this graph");
                }
            }
        }
    }

    // Scale to the minimal integer vector: multiply by lcm of denominators,
    // then divide by the gcd of the numerators.
    std::int64_t den_lcm = 1;
    for (const auto& r : rep) den_lcm = std::lcm(den_lcm, r.den);
    std::vector<std::uint64_t> result(n);
    std::int64_t num_gcd = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::int64_t v = rep[i].num * (den_lcm / rep[i].den);
        result[i] = static_cast<std::uint64_t>(v);
        num_gcd = std::gcd(num_gcd, v);
    }
    if (num_gcd > 1) {
        for (auto& v : result) v /= static_cast<std::uint64_t>(num_gcd);
    }
    return result;
}

compiled_schedule compile_schedule(const std::vector<std::uint64_t>& repetitions,
                                   const std::vector<sdf_signal_desc>& signals) {
    const std::size_t n_mod = repetitions.size();
    const std::size_t n_sig = signals.size();

    // Flat per-module port tables so the PASS loop below runs on plain
    // indexed vectors (no associative lookups).
    struct input_ref {
        std::size_t signal;
        std::size_t reader;  // index into signals[signal].readers
        unsigned rate;
        unsigned delay;
    };
    struct output_ref {
        std::size_t signal;
        unsigned rate;
    };
    std::vector<std::vector<input_ref>> inputs(n_mod);
    std::vector<std::vector<output_ref>> outputs(n_mod);

    std::vector<std::uint64_t> produced(n_sig);  // tokens written, incl. writer delay
    std::vector<std::vector<std::uint64_t>> consumed(n_sig);  // per reader
    std::vector<std::uint64_t> max_span(n_sig, 0);

    for (std::size_t s = 0; s < n_sig; ++s) {
        const sdf_signal_desc& sig = signals[s];
        util::require(sig.writer.module < n_mod, "compile_schedule",
                      "writer module index out of range");
        util::require(sig.writer.rate > 0, "compile_schedule", "writer rate must be positive");
        produced[s] = sig.writer.delay;
        outputs[sig.writer.module].push_back({s, sig.writer.rate});
        consumed[s].assign(sig.readers.size(), 0);
        for (std::size_t r = 0; r < sig.readers.size(); ++r) {
            const sdf_endpoint& rd = sig.readers[r];
            util::require(rd.module < n_mod, "compile_schedule",
                          "reader module index out of range");
            util::require(rd.rate > 0, "compile_schedule", "reader rate must be positive");
            inputs[rd.module].push_back({s, r, rd.rate, rd.delay});
        }
    }

    // Live-token span of a signal: newest produced minus oldest still needed
    // (delayed readers reach `delay` tokens into the past).  The maximum over
    // the constructed schedule is the exact ring-buffer requirement.
    auto update_span = [&](std::size_t s) {
        std::int64_t oldest = static_cast<std::int64_t>(produced[s]);
        const sdf_signal_desc& sig = signals[s];
        for (std::size_t r = 0; r < sig.readers.size(); ++r) {
            oldest = std::min(oldest, static_cast<std::int64_t>(consumed[s][r]) -
                                          static_cast<std::int64_t>(sig.readers[r].delay));
        }
        const auto span = static_cast<std::uint64_t>(
            std::max<std::int64_t>(0, static_cast<std::int64_t>(produced[s]) - oldest));
        max_span[s] = std::max(max_span[s], span);
    };
    for (std::size_t s = 0; s < n_sig; ++s) update_span(s);

    std::vector<std::uint64_t> fired(n_mod, 0);
    auto fireable = [&](std::size_t m) {
        if (fired[m] >= repetitions[m]) return false;
        for (const input_ref& in : inputs[m]) {
            const std::int64_t needed = static_cast<std::int64_t>(consumed[in.signal][in.reader]) +
                                        static_cast<std::int64_t>(in.rate) -
                                        static_cast<std::int64_t>(in.delay);
            if (needed > static_cast<std::int64_t>(produced[in.signal])) return false;
        }
        return true;
    };

    compiled_schedule out;
    for (std::size_t m = 0; m < n_mod; ++m) out.total_firings += repetitions[m];

    // PASS construction (Lee/Messerschmitt), greedy per module: firing a
    // module to exhaustion before moving on maximizes run lengths, so the
    // run-length-encoded program stays short.  Any PASS order produces the
    // same token streams (SDF is determinate).
    std::uint64_t scheduled = 0;
    while (scheduled < out.total_firings) {
        bool progress = false;
        for (std::size_t m = 0; m < n_mod; ++m) {
            std::uint64_t run = 0;
            while (fireable(m)) {
                for (const input_ref& in : inputs[m]) consumed[in.signal][in.reader] += in.rate;
                for (const output_ref& o : outputs[m]) {
                    produced[o.signal] += o.rate;
                    update_span(o.signal);
                }
                ++fired[m];
                ++run;
            }
            if (run == 0) continue;
            progress = true;
            scheduled += run;
            if (!out.program.empty() && out.program.back().module == m) {
                out.program.back().count += run;
            } else {
                out.program.push_back({m, fired[m] - run, run});
            }
        }
        util::require(progress, "tdf_schedule",
                      "dataflow deadlock: no module can fire; insert port delays to "
                      "break the cycle");
    }

    // Ring capacity: the observed live-token span plus one firing of slack
    // (the seed's rule), but never less than a full period of tokens
    // (writer rate x writer repetitions) so a cycle never wraps mid-period.
    out.buffer_capacity.resize(n_sig);
    for (std::size_t s = 0; s < n_sig; ++s) {
        const sdf_endpoint& w = signals[s].writer;
        const std::uint64_t span_rule = std::max<std::uint64_t>(max_span[s], 1) + w.rate;
        const std::uint64_t period_rule = static_cast<std::uint64_t>(w.rate) *
                                          repetitions[w.module];
        out.buffer_capacity[s] = static_cast<std::size_t>(std::max(span_rule, period_rule));
    }
    return out;
}

}  // namespace sca::tdf
