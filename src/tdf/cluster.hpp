// Cluster discovery, static scheduling, and DE-kernel attachment: the
// synchronization layer between the dataflow/continuous-time world and the
// discrete-event kernel (paper §3: "the concept of a dedicated manager, let
// us call it the synchronization layer").
//
// At elaboration each cluster compiles its repetition vector into a flat
// firing program (run-length-encoded {module, count} entries with
// preallocated ring buffers); at runtime the program executes as a tight
// loop with no map lookups or allocations.  Clusters that do not exchange
// samples with the DE world batch several schedule periods per DE kernel
// interaction, bounded by the next pending DE event and the end of the
// current run; converter-coupled clusters synchronize every period.
#ifndef SCA_TDF_CLUSTER_HPP
#define SCA_TDF_CLUSTER_HPP

#include <cstdint>
#include <vector>

#include "kernel/context.hpp"
#include "kernel/time.hpp"
#include "tdf/dynamic.hpp"
#include "tdf/schedule.hpp"

namespace sca::util {
class byte_writer;
class byte_reader;
}  // namespace sca::util

namespace sca::tdf {

class module;
class signal_base;

/// A maximal set of TDF modules connected through TDF signals, executed as
/// one statically scheduled unit from a single DE process.
class cluster {
public:
    /// One compiled firing-program entry: `count` consecutive firings of
    /// `mod`, the first at cycle-relative firing index `first_firing`.
    struct program_entry {
        module* mod;
        std::uint64_t first_firing;
        std::uint64_t count;
    };

    /// A firing program compiled for `periods` schedule periods fused into
    /// one super-cycle: the PASS construction run on repetitions x periods,
    /// so chains collapse into long run-length entries (= large block calls)
    /// while delay-broken feedback loops keep their legal alternation.
    struct fused_program {
        std::uint64_t periods;
        std::vector<program_entry> entries;
    };

    /// Default cap on schedule periods executed per DE kernel interaction.
    static constexpr std::uint64_t k_default_max_batch_periods = 64;

    explicit cluster(std::vector<module*> modules);

    /// Compute repetition vector, resolve timesteps, compile the firing
    /// program (PASS), size the buffers, and call initialize() on modules.
    void elaborate();

    /// Register the driving DE process with the kernel.  The driving process
    /// runs one cycle per timed wake; for clusters without DE coupling a
    /// zero-delay re-activation then runs further cycles ahead of DE time
    /// once the event queue has settled — never past the next pending DE
    /// event or the end of the current scheduler run.
    void attach(de::simulation_context& ctx);

    /// Peer-cluster processes whose re-arm events batch planning may ignore
    /// (independent clusters cannot observe each other); set by the registry.
    void set_peer_processes(std::vector<const de::method_process*> peers);

    /// The driving DE process (valid after attach()).
    [[nodiscard]] const de::method_process* process() const noexcept { return proc_; }

    [[nodiscard]] const de::time& period() const noexcept { return period_; }
    [[nodiscard]] const std::vector<module*>& modules() const noexcept { return modules_; }
    /// Expanded firing order (one entry per firing); introspection/tests.
    [[nodiscard]] const std::vector<module*>& schedule() const noexcept { return schedule_; }
    /// The compiled (run-length-encoded) firing program.
    [[nodiscard]] const std::vector<program_entry>& program() const noexcept {
        return program_;
    }
    [[nodiscard]] std::uint64_t cycle_count() const noexcept { return cycles_; }

    /// True when any member module exchanges samples with the DE world
    /// (converter ports or DE-controlled ELN/LSF components); such clusters
    /// synchronize with the DE kernel at every period boundary.
    [[nodiscard]] bool de_coupled() const noexcept { return de_coupled_; }

    /// Cap the number of schedule periods executed per DE kernel
    /// interaction (>= 1).  1 disables batching entirely.
    void set_max_batch_periods(std::uint64_t n);
    [[nodiscard]] std::uint64_t max_batch_periods() const noexcept { return max_batch_; }

    // --- block execution (see tdf/block.hpp) --------------------------------
    /// Enable/disable the block path (default on).  Off restores the exact
    /// per-sample executor — the A/B baseline; results are bit-identical
    /// either way.
    void set_block_execution(bool on) noexcept { block_execution_ = on; }
    [[nodiscard]] bool block_execution() const noexcept { return block_execution_; }

    /// Multi-period fused firing programs (pure static clusters only; empty
    /// for DE-coupled and dynamic clusters).  Descending period counts.
    [[nodiscard]] const std::vector<fused_program>& fused_programs() const noexcept {
        return fused_;
    }
    /// Cycles executed through fused programs (diagnostics/benches).
    [[nodiscard]] std::uint64_t fused_cycle_count() const noexcept {
        return fused_cycles_;
    }

    // --- dynamic TDF (runtime attribute changes) ----------------------------
    /// True when any member declares does_attribute_changes(): the cluster
    /// calls change_attributes() between periods and reschedules when a
    /// request lands.  Static clusters (the common case) never enter this
    /// path and keep the compiled fast path bit-identically.
    [[nodiscard]] bool is_dynamic() const noexcept { return dynamic_; }

    /// Reschedules applied so far (requests that actually changed something).
    [[nodiscard]] std::uint64_t reschedule_count() const noexcept { return reschedules_; }
    /// Full schedule compilations triggered by reschedules (cache misses);
    /// stays constant once every visited configuration is cached.
    [[nodiscard]] std::uint64_t recompile_count() const noexcept { return recompiles_; }
    [[nodiscard]] std::uint64_t schedule_cache_hits() const noexcept {
        return cache_.hits();
    }
    [[nodiscard]] std::uint64_t schedule_cache_misses() const noexcept {
        return cache_.misses();
    }
    [[nodiscard]] std::size_t schedule_cache_size() const noexcept {
        return cache_.size();
    }

    // --- checkpoint/restore (core/snapshot) ----------------------------------
    /// Serialize the cluster's runtime state at a settled point: the
    /// schedule-determining attributes of every member (with the installed
    /// attribute signature, so restore revalidates instead of trusting),
    /// per-port stream positions, every signal's ring-buffer tokens, and the
    /// cycle/reschedule bookkeeping.
    void save_state(util::byte_writer& w) const;
    /// Restore onto a freshly elaborated cluster: overlay the saved
    /// attributes, reinstall the matching schedule (cache hit or recompile —
    /// only when the saved signature differs from the elaborated one), then
    /// overlay stream positions and ring-buffer tokens.  Token overlay runs
    /// last because schedule installation resets positions and buffers.
    void restore_state(util::byte_reader& r);

private:
    void compute_repetitions();
    void resolve_timesteps();
    void build_schedule();
    void detect_de_coupling();
    /// Driving-process body: one cycle per timed wake plus the batched
    /// continuation on the zero-delay re-activation.
    void on_wake();
    /// Fire `n` cluster cycles, the first starting at virtual time `start`.
    void run_cycles(const de::time& start, std::uint64_t n);
    /// Cycles safe to run ahead of DE time, starting at next_cycle_start_.
    /// `for_peek` skips the run_end clamp: the peek decides only whether to
    /// defer the re-arm to a settled delta, and that decision must not
    /// depend on where the current run() call happens to stop — otherwise a
    /// sliced run re-arms through a different path than a continuous one,
    /// flips same-instant event order after the boundary, and breaks
    /// bit-identity between sliced and full runs.
    [[nodiscard]] std::uint64_t plan_batch_ahead(bool for_peek = false) const;

    // --- dynamic rescheduling (see tdf/dynamic.hpp) -------------------------
    /// Compile the current rates/anchors into a firing program (the PASS run
    /// shared by elaboration and reschedule misses).  `periods` > 1 fuses
    /// that many schedule periods into one super-cycle program.
    [[nodiscard]] compiled_schedule compile_current(std::uint64_t periods = 1) const;
    /// Compile the power-of-two ladder of fused programs and fold their
    /// ring-buffer needs into `caps` (elementwise max).
    void build_fused_programs(std::vector<std::size_t>& caps);
    /// Install a compiled program into program_/schedule_.
    void install_program(const compiled_schedule& compiled);
    /// Run one pass of `prog` at cycle start `t` (block or per-sample).
    void exec_program(const std::vector<program_entry>& prog, const de::time& t);
    /// Allocate ring buffers and restart stream positions.  `in_place`
    /// grows buffers only when needed (reschedules); elaboration allocates
    /// exactly.
    void size_buffers(const std::vector<std::size_t>& capacities, bool in_place);
    /// Call change_attributes() on every dynamic member; reschedule if a
    /// request landed.  Runs between periods (after a cycle's firings).
    void run_change_attributes();
    /// Gate, apply staged requests, and swap in the new configuration —
    /// from the schedule cache when this signature was visited before,
    /// otherwise via a full recompile that seeds the cache.
    void apply_attribute_changes();
    /// Current schedule-determining attributes as a cache key.
    [[nodiscard]] attribute_signature compute_signature() const;
    /// Snapshot the installed configuration (for caching after a compile).
    [[nodiscard]] cluster_config snapshot_config() const;
    /// Install a cached configuration (timing + program + buffers).
    void install_config(const cluster_config& cfg);

    std::vector<module*> modules_;
    std::vector<signal_base*> signals_;
    std::vector<program_entry> program_;
    std::vector<module*> schedule_;               // expanded firing order
    std::vector<std::uint64_t> schedule_firing_;  // firing index per entry
    std::vector<const de::method_process*> peers_;
    std::vector<module*> dynamic_modules_;
    std::vector<fused_program> fused_;  // descending periods, pure static only
    mutable std::vector<const de::event*> ignore_scratch_;
    schedule_cache cache_;
    compiled_schedule last_compiled_;  // index form of the installed program
    de::time period_;
    de::time next_cycle_start_;
    std::uint64_t cycles_ = 0;
    std::uint64_t max_batch_ = k_default_max_batch_periods;
    std::uint64_t reschedules_ = 0;
    std::uint64_t recompiles_ = 0;
    std::uint64_t fused_cycles_ = 0;
    bool de_coupled_ = false;
    bool dynamic_ = false;
    bool block_execution_ = true;
    bool batch_check_pending_ = false;
    de::method_process* proc_ = nullptr;
    de::simulation_context* ctx_ = nullptr;
};

/// Per-context registry of TDF modules; installs the elaboration hook that
/// builds clusters (created lazily through simulation_context::domain_data).
class registry {
public:
    explicit registry(de::simulation_context& ctx);
    ~registry();  // out of line: adopted signals need the complete type

    static registry& of(de::simulation_context& ctx);

    void add_module(module& m);

    [[nodiscard]] const std::vector<std::unique_ptr<cluster>>& clusters() const noexcept {
        return clusters_;
    }

    /// Batch cap applied to every cluster (existing and future).
    void set_default_max_batch_periods(std::uint64_t n);

    /// Block-execution default applied to every cluster (existing and
    /// future); the per-sample A/B baseline is set_default_block_execution(false).
    void set_default_block_execution(bool on);

    /// Cluster discovery + scheduling; runs as an elaboration hook.  Resolves
    /// every TDF port's forwarding chain first, so discovery traverses
    /// hierarchical (port-to-port) bindings transparently.
    void elaborate_clusters();

    /// Take ownership of an auto-created signal (see tdf/connect.hpp); the
    /// signal lives until the context is destroyed.
    signal_base& adopt_signal(std::unique_ptr<signal_base> s);

private:
    /// Metrics collector body (registered with the context): publish the
    /// cluster/module/solver counter totals into the context's registry.
    void publish_metrics();

    de::simulation_context* ctx_;
    std::vector<module*> modules_;
    std::vector<std::unique_ptr<cluster>> clusters_;
    std::vector<std::unique_ptr<signal_base>> adopted_signals_;
    std::uint64_t default_max_batch_ = cluster::k_default_max_batch_periods;
    bool default_block_execution_ = true;
    bool elaborated_ = false;
};

}  // namespace sca::tdf

#endif  // SCA_TDF_CLUSTER_HPP
