// Cluster discovery, static scheduling, and DE-kernel attachment: the
// synchronization layer between the dataflow/continuous-time world and the
// discrete-event kernel (paper §3: "the concept of a dedicated manager, let
// us call it the synchronization layer").
#ifndef SCA_TDF_CLUSTER_HPP
#define SCA_TDF_CLUSTER_HPP

#include <cstdint>
#include <vector>

#include "kernel/context.hpp"
#include "kernel/time.hpp"

namespace sca::tdf {

class module;
class signal_base;

/// A maximal set of TDF modules connected through TDF signals, executed as
/// one statically scheduled unit from a single DE process.
class cluster {
public:
    explicit cluster(std::vector<module*> modules);

    /// Compute repetition vector, resolve timesteps, build the static
    /// schedule (PASS), size the buffers, and call initialize() on modules.
    void elaborate();

    /// Register the driving DE process with the kernel.
    void attach(de::simulation_context& ctx);

    /// Execute one full cluster cycle at the current DE time.
    void execute();

    [[nodiscard]] const de::time& period() const noexcept { return period_; }
    [[nodiscard]] const std::vector<module*>& modules() const noexcept { return modules_; }
    [[nodiscard]] const std::vector<module*>& schedule() const noexcept { return schedule_; }
    [[nodiscard]] std::uint64_t cycle_count() const noexcept { return cycles_; }

private:
    void compute_repetitions();
    void resolve_timesteps();
    void build_schedule();
    void size_buffers();

    std::vector<module*> modules_;
    std::vector<signal_base*> signals_;
    std::vector<module*> schedule_;
    std::vector<std::uint64_t> schedule_firing_;  // firing index per schedule entry
    de::time period_;
    std::uint64_t cycles_ = 0;
    de::simulation_context* ctx_ = nullptr;
};

/// Per-context registry of TDF modules; installs the elaboration hook that
/// builds clusters (created lazily through simulation_context::domain_data).
class registry {
public:
    explicit registry(de::simulation_context& ctx);

    static registry& of(de::simulation_context& ctx);

    void add_module(module& m);

    [[nodiscard]] const std::vector<std::unique_ptr<cluster>>& clusters() const noexcept {
        return clusters_;
    }

    /// Cluster discovery + scheduling; runs as an elaboration hook.
    void elaborate_clusters();

private:
    de::simulation_context* ctx_;
    std::vector<module*> modules_;
    std::vector<std::unique_ptr<cluster>> clusters_;
    bool elaborated_ = false;
};

}  // namespace sca::tdf

#endif  // SCA_TDF_CLUSTER_HPP
