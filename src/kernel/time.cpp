#include "kernel/time.hpp"

#include <cmath>
#include <ostream>
#include <sstream>

#include "util/report.hpp"

namespace sca::de {

time::time(double value, time_unit unit) {
    util::require(std::isfinite(value), "time", "value must be finite");
    fs_ = static_cast<std::int64_t>(std::llround(value * static_cast<double>(unit)));
}

time time::from_seconds(double seconds) { return time(seconds, time_unit::sec); }

double time::to_seconds() const noexcept { return static_cast<double>(fs_) * 1e-15; }

std::string time::to_string() const {
    std::ostringstream os;
    os << *this;
    return os.str();
}

std::ostream& operator<<(std::ostream& os, const time& t) {
    const std::int64_t fs = t.value_fs();
    struct scale {
        std::int64_t mult;
        const char* suffix;
    };
    static constexpr scale scales[] = {{1'000'000'000'000'000, "s"},
                                       {1'000'000'000'000, "ms"},
                                       {1'000'000'000, "us"},
                                       {1'000'000, "ns"},
                                       {1'000, "ps"},
                                       {1, "fs"}};
    for (const auto& s : scales) {
        if (fs != 0 && fs % s.mult == 0) {
            os << fs / s.mult << ' ' << s.suffix;
            return os;
        }
    }
    if (fs == 0) {
        os << "0 s";
    }
    return os;
}

}  // namespace sca::de
