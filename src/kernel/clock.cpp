#include "kernel/clock.hpp"

#include <cmath>

#include "util/report.hpp"

namespace sca::de {

clock::clock(const module_name& nm, const time& period, double duty, const time& start,
             bool start_high)
    : module(nm),
      sig_("sig"),
      period_(period),
      start_(start),
      start_high_(start_high) {
    util::require(period > time::zero(), name(), "clock period must be positive");
    util::require(duty > 0.0 && duty < 1.0, name(), "duty cycle must be in (0, 1)");
    high_time_ = time::from_fs(
        static_cast<std::int64_t>(std::llround(static_cast<double>(period.value_fs()) * duty)));
    low_time_ = period_ - high_time_;
    util::require(high_time_ > time::zero() && low_time_ > time::zero(), name(),
                  "duty cycle leaves a zero-length phase at this period");
    value_ = !start_high_;
    sig_.initialize(value_);
    declare_method("tick", [this] { tick(); });
}

void clock::tick() {
    if (first_) {
        first_ = false;
        if (start_ > time::zero()) {
            next_trigger(start_);
            return;
        }
    }
    value_ = !value_;
    sig_.write(value_);
    next_trigger(value_ ? high_time_ : low_time_);
}

}  // namespace sca::de
