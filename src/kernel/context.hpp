// The simulation context: object registry, construction stack for
// hierarchical naming, the scheduler, and elaboration.
//
// Contexts are explicit and resettable so that many simulations can run in
// one process (essential for unit tests).  A thread-local "current context"
// pointer lets modules/signals/events register themselves at construction
// without threading a context argument through every model constructor.
#ifndef SCA_KERNEL_CONTEXT_HPP
#define SCA_KERNEL_CONTEXT_HPP

#include <functional>
#include <memory>
#include <string>
#include <typeindex>
#include <unordered_map>
#include <vector>

#include "kernel/scheduler.hpp"
#include "kernel/time.hpp"
#include "util/telemetry.hpp"
#include "util/trace_export.hpp"

namespace sca::de {

class object;
class module;
class method_process;
class event;

/// One independent simulation: object hierarchy + scheduler + elaboration.
class simulation_context {
public:
    /// Creates the context and makes it current.
    simulation_context();
    ~simulation_context();

    simulation_context(const simulation_context&) = delete;
    simulation_context& operator=(const simulation_context&) = delete;

    /// The context new kernel objects register with. Never null once a
    /// context exists; throws if none.
    static simulation_context& current();
    static bool has_current() noexcept;

    /// Make this context current (e.g. when juggling several in tests).
    void make_current() noexcept;

    [[nodiscard]] scheduler& sched() noexcept { return scheduler_; }
    [[nodiscard]] const scheduler& sched() const noexcept { return scheduler_; }
    [[nodiscard]] const time& now() const noexcept { return scheduler_.now(); }

    // --- telemetry -----------------------------------------------------------
    /// This context's metrics registry.  Kernel counters live here from
    /// construction; MoC layers register their own metrics and collectors.
    [[nodiscard]] util::metrics_registry& metrics() noexcept { return metrics_; }
    [[nodiscard]] const util::metrics_registry& metrics() const noexcept { return metrics_; }

    /// This context's span tracer (off until tracer().enable()).
    [[nodiscard]] util::event_tracer& tracer() noexcept { return tracer_; }

    /// Register a collector run by collect_metrics(): layers whose hot
    /// counters live in their own objects (TDF modules, clusters, solvers)
    /// publish them into the registry here, with set-semantics so repeated
    /// collection is idempotent.
    void add_metrics_collector(std::function<void()> collector);

    /// Run every collector, then return the full registry snapshot
    /// (sorted by name).
    [[nodiscard]] util::metrics_snapshot collect_metrics();
    /// Run every collector, then return the deterministic counter/gauge
    /// subset that travels over the SCA1 wire (sorted by name).
    [[nodiscard]] util::metrics_snapshot collect_wire_metrics();

    // --- construction-time services ----------------------------------------
    void register_object(object& obj);
    void unregister_object(object& obj);
    [[nodiscard]] object* construction_parent() const noexcept;
    void push_construction_parent(object& obj);
    void pop_construction_parent();
    [[nodiscard]] std::size_t construction_depth() const noexcept {
        return construction_stack_.size();
    }

    /// Find an object by full hierarchical name (nullptr if absent).
    [[nodiscard]] object* find_object(const std::string& full_name) const noexcept;
    [[nodiscard]] const std::vector<object*>& objects() const noexcept { return objects_; }

    /// The object hierarchy in depth-first pre-order: every root (object
    /// without a parent) in registration order, each immediately followed by
    /// its subtree.  Parents always precede their children; this is the
    /// traversal order of the elaboration walk.
    [[nodiscard]] std::vector<object*> hierarchy() const;

    // --- event bookkeeping ---------------------------------------------------
    /// Every live event, in registration order.  Build-time events register
    /// deterministically (model construction is replayed by the scenario
    /// factory), which is what lets core/snapshot identify an event across
    /// processes by (name, occurrence index) instead of storing ids.
    [[nodiscard]] const std::vector<event*>& events() const noexcept { return events_; }
    void register_event(event& e);
    void unregister_event(event& e);

    // --- process bookkeeping -------------------------------------------------
    method_process& register_method(std::string name, std::function<void()> body);
    void next_trigger(event& e);
    void next_trigger(const time& delay);
    [[nodiscard]] method_process* running_process() const noexcept { return running_; }
    void set_running_process(method_process* p) noexcept { running_ = p; }

    // --- elaboration & run ----------------------------------------------------
    /// Hook executed during elaborate(), after port binding; used by the AMS
    /// synchronization layer to discover and schedule TDF clusters.
    void add_elaboration_hook(std::function<void()> hook);

    /// Resolve port bindings, call end_of_elaboration on modules, run hooks.
    /// Idempotent; called automatically by run() if needed.
    void elaborate();

    [[nodiscard]] bool elaborated() const noexcept { return elaborated_; }

    /// Advance the simulation by `duration` from the current time.
    void run(const time& duration);

    /// Run until no activity remains.
    void run_to_completion();

    /// Per-context extension data keyed by type; created on first access.
    /// Used by MoC layers (e.g. the TDF registry) to attach their state to
    /// the simulation without the kernel knowing about them.
    template <typename T>
    T& domain_data() {
        const std::type_index key(typeid(T));
        auto it = domain_data_.find(key);
        if (it == domain_data_.end()) {
            it = domain_data_.emplace(key, std::make_shared<T>(*this)).first;
        }
        return *static_cast<T*>(it->second.get());
    }

private:
    // Telemetry precedes the scheduler: the scheduler's counters reside in
    // the registry (bound in the constructor), so the registry must outlive
    // it through destruction.
    util::metrics_registry metrics_;
    util::event_tracer tracer_;
    std::vector<std::function<void()>> metrics_collectors_;
    scheduler scheduler_;
    std::vector<object*> objects_;
    std::vector<event*> events_;
    std::vector<object*> construction_stack_;
    std::vector<std::unique_ptr<method_process>> processes_;
    std::vector<std::function<void()>> elaboration_hooks_;
    std::unordered_map<std::type_index, std::shared_ptr<void>> domain_data_;
    method_process* running_ = nullptr;
    bool elaborated_ = false;
    simulation_context* previous_current_ = nullptr;
};

/// RAII helper used in module constructor argument lists to establish the
/// hierarchical name of the module being constructed (the SystemC
/// sc_module_name idiom).
class module_name {
public:
    module_name(const char* name);  // NOLINT(google-explicit-constructor)
    module_name(const std::string& name);  // NOLINT(google-explicit-constructor)
    ~module_name();

    module_name(const module_name&) = delete;
    module_name& operator=(const module_name&) = delete;

    [[nodiscard]] const std::string& str() const noexcept { return name_; }

private:
    std::string name_;
    std::size_t stack_depth_at_ctor_ = 0;
};

}  // namespace sca::de

#endif  // SCA_KERNEL_CONTEXT_HPP
