// A periodic boolean clock built on a signal<bool> plus one method process.
#ifndef SCA_KERNEL_CLOCK_HPP
#define SCA_KERNEL_CLOCK_HPP

#include <string>

#include "kernel/module.hpp"
#include "kernel/signal.hpp"
#include "kernel/time.hpp"

namespace sca::de {

/// Clock generator. The boolean signal is exposed through `sig()` and can be
/// bound to in<bool> ports; `posedge_event()` is the usual trigger.
class clock final : public module {
public:
    /// `period` must be positive; `duty` in (0,1); first edge at `start`.
    clock(const module_name& nm, const time& period, double duty = 0.5,
          const time& start = time::zero(), bool start_high = true);

    [[nodiscard]] signal<bool>& sig() noexcept { return sig_; }
    [[nodiscard]] event& posedge_event() { return sig_.posedge_event(); }
    [[nodiscard]] event& negedge_event() { return sig_.negedge_event(); }
    [[nodiscard]] bool read() const noexcept { return sig_.read(); }
    [[nodiscard]] const time& period() const noexcept { return period_; }

private:
    void tick();

    signal<bool> sig_;
    time period_;
    time high_time_;
    time low_time_;
    time start_;
    bool start_high_;
    bool value_ = false;
    bool first_ = true;
};

}  // namespace sca::de

#endif  // SCA_KERNEL_CLOCK_HPP
