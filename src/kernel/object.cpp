#include "kernel/object.hpp"

#include <algorithm>

#include "kernel/context.hpp"
#include "util/report.hpp"

namespace sca::de {

object::object(std::string basename) : basename_(std::move(basename)) {
    context_ = &simulation_context::current();
    parent_ = context_->construction_parent();
    if (parent_ != nullptr) {
        parent_->children_.push_back(this);
        full_name_ = parent_->full_name_ + "." + basename_;
    } else {
        full_name_ = basename_;
    }
    context_->register_object(*this);
}

object::object(std::string basename, object& parent) : basename_(std::move(basename)) {
    context_ = &parent.context();
    parent_ = &parent;
    parent_->children_.push_back(this);
    full_name_ = parent_->full_name_ + "." + basename_;
    context_->register_object(*this);
}

void object::save_state(util::byte_writer& w) const { (void)w; }

void object::restore_state(util::byte_reader& r) {
    (void)r;
    util::report_fatal("snapshot",
                       "object '" + full_name_ + "' does not implement state restore");
}

object::~object() {
    if (parent_ != nullptr) {
        auto& siblings = parent_->children_;
        siblings.erase(std::remove(siblings.begin(), siblings.end(), this), siblings.end());
    }
    // Children that outlive this object (e.g. auto-created wires owned by a
    // per-context registry) must not dereference a dangling parent pointer.
    for (object* c : children_) c->parent_ = nullptr;
    context_->unregister_object(*this);
}

}  // namespace sca::de
