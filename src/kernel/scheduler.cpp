#include "kernel/scheduler.hpp"

#include <algorithm>
#include <thread>

#include "kernel/event.hpp"
#include "kernel/process.hpp"
#include "kernel/signal.hpp"
#include "util/report.hpp"
#include "util/telemetry.hpp"
#include "util/trace_export.hpp"

namespace sca::de {

void scheduler::bind_telemetry(util::metrics_registry& registry,
                               util::event_tracer* tracer) {
    timed_notifications_m_ = &registry.get_counter("kernel.timed_notifications");
    delta_count_m_ = &registry.get_counter("kernel.delta_cycles");
    pacing_drift_m_ = &registry.get_gauge("kernel.pacing.drift_s");
    pacing_max_drift_m_ = &registry.get_gauge("kernel.pacing.max_drift_s");
    tracer_ = tracer;
    publish_telemetry();
}

void scheduler::publish_telemetry() noexcept {
    if (delta_count_m_ == nullptr) return;
    delta_count_m_->set(delta_count_);
    timed_notifications_m_->set(timed_notifications_);
    pacing_drift_m_->set(pacing_drift_);
    pacing_max_drift_m_->set(pacing_max_drift_);
}

std::uint64_t scheduler::delta_count() const noexcept { return delta_count_; }

std::uint64_t scheduler::timed_notification_count() const noexcept {
    return timed_notifications_;
}

double scheduler::pacing_drift() const noexcept { return pacing_drift_; }

double scheduler::pacing_max_drift() const noexcept { return pacing_max_drift_; }

void scheduler::count_timed_notification() noexcept { ++timed_notifications_; }

void scheduler::count_delta_cycle() noexcept { ++delta_count_; }

void scheduler::record_drift(double drift, bool is_new_max) noexcept {
    pacing_drift_ = drift;
    if (is_new_max) {
        pacing_max_drift_ = drift;
    }
}

void scheduler::make_runnable(method_process& p) {
    if (p.queued()) return;
    p.set_queued(true);
    runnable_.push_back(&p);
}

void scheduler::queue_delta_event(event& e) { delta_events_.push_back(&e); }

void scheduler::queue_timed_event(event& e, const time& at) {
    util::require(at >= now_, "scheduler", "timed notification in the past");
    count_timed_notification();
    timed_queue_.emplace(at, timed_entry{&e, e.generation()});
}

void scheduler::request_update(signal_base& s) { update_queue_.push_back(&s); }

void scheduler::register_process(method_process& p) { all_processes_.push_back(&p); }

void scheduler::unregister_process(method_process& p) {
    all_processes_.erase(std::remove(all_processes_.begin(), all_processes_.end(), &p),
                         all_processes_.end());
    runnable_.erase(std::remove(runnable_.begin(), runnable_.end(), &p), runnable_.end());
}

bool scheduler::idle() const noexcept {
    return runnable_.empty() && delta_events_.empty() && update_queue_.empty() &&
           timed_queue_.empty();
}

time scheduler::next_event_time() const noexcept {
    if (timed_queue_.empty()) return time::max();
    return timed_queue_.begin()->first;
}

bool scheduler::instant_active_ignoring(
    const std::vector<const method_process*>& ignored_processes,
    const std::vector<const event*>& ignored_events) const noexcept {
    if (!update_queue_.empty()) return true;
    for (const method_process* p : runnable_) {
        if (std::find(ignored_processes.begin(), ignored_processes.end(), p) ==
            ignored_processes.end()) {
            return true;
        }
    }
    for (const event* e : delta_events_) {
        if (!e->pending()) continue;
        if (std::find(ignored_events.begin(), ignored_events.end(), e) ==
            ignored_events.end()) {
            return true;
        }
    }
    return false;
}

time scheduler::next_event_time_ignoring(
    const std::vector<const event*>& ignored) const noexcept {
    for (const auto& [at, entry] : timed_queue_) {
        if (entry.generation != entry.ev->generation() || !entry.ev->pending()) continue;
        if (std::find(ignored.begin(), ignored.end(), entry.ev) != ignored.end()) continue;
        return at;
    }
    return time::max();
}

void scheduler::initialization_phase() {
    // All method processes run once at time zero unless dont_initialize().
    for (method_process* p : all_processes_) {
        if (p->initialize()) make_runnable(*p);
    }
    initialized_ = true;
}

void scheduler::evaluate_update_loop() {
    while (!runnable_.empty() || !update_queue_.empty() || !delta_events_.empty()) {
        // Evaluation phase: run every runnable process. Processes made
        // runnable during this phase (immediate notification) run in the
        // same phase.
        while (!runnable_.empty()) {
            method_process* p = runnable_.back();
            runnable_.pop_back();
            p->set_queued(false);
            p->execute();
        }
        // Update phase: apply deferred signal writes.
        auto updates = std::move(update_queue_);
        update_queue_.clear();
        for (signal_base* s : updates) s->update();
        // Delta notification phase.
        auto deltas = std::move(delta_events_);
        delta_events_.clear();
        bool any = false;
        for (event* e : deltas) {
            if (e->pending()) {
                e->trigger();
                any = true;
            }
        }
        if (any || !runnable_.empty()) count_delta_cycle();
    }
}

void scheduler::set_pacing(double real_time_factor) noexcept {
    pacing_ = real_time_factor > 0.0 ? real_time_factor : 0.0;
    // Re-anchor at the next paced advance: wall time spent while pacing was
    // off (pause, reconfiguration) must not count as accumulated lag.
    pace_anchor_valid_ = false;
    pacing_max_drift_ = 0.0;
    record_drift(0.0, true);
}

void scheduler::pace_to(const time& t) {
    if (pacing_ <= 0.0 || t == time::max()) return;
    const auto wall_now = std::chrono::steady_clock::now();
    if (!pace_anchor_valid_) {
        pace_anchor_valid_ = true;
        pace_anchor_sim_ = now_;
        pace_anchor_wall_ = wall_now;
    }
    const double wall_offset_s = (t - pace_anchor_sim_).to_seconds() / pacing_;
    const auto target =
        pace_anchor_wall_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                                std::chrono::duration<double>(wall_offset_s));
    if (wall_now < target) {
        std::this_thread::sleep_until(target);
        record_drift(0.0, false);
    } else {
        const double drift = std::chrono::duration<double>(wall_now - target).count();
        record_drift(drift, drift > pacing_max_drift_);
    }
}

time scheduler::run(const time& end) {
    SCA_TRACE_SPAN_T(tracer_, "kernel.run", "kernel", now_.to_seconds());
    run_end_ = end;
    if (!initialized_) {
        initialization_phase();
        evaluate_update_loop();
    }
    while (!timed_queue_.empty()) {
        const time next = timed_queue_.begin()->first;
        if (next > end) break;
        pace_to(next);
        now_ = next;
        // Pop and trigger every valid notification at this time point.
        while (!timed_queue_.empty() && timed_queue_.begin()->first == now_) {
            const timed_entry entry = timed_queue_.begin()->second;
            timed_queue_.erase(timed_queue_.begin());
            if (entry.generation == entry.ev->generation() && entry.ev->pending()) {
                entry.ev->trigger();
            }
        }
        evaluate_update_loop();
    }
    if (now_ < end) {
        // Quiet tail: no events up to `end`, but a paced session still owes
        // the wall clock the remaining interval.
        pace_to(end);
        now_ = end;
    }
    publish_telemetry();
    return now_;
}

std::vector<std::pair<time, event*>> scheduler::pending_timed_events() const {
    std::vector<std::pair<time, event*>> out;
    out.reserve(timed_queue_.size());
    for (const auto& [at, entry] : timed_queue_) {
        if (entry.generation != entry.ev->generation() || !entry.ev->pending()) continue;
        out.emplace_back(at, entry.ev);
    }
    return out;
}

void scheduler::begin_restore(const time& now) {
    util::require(!initialized_, "snapshot",
                  "state restore requires a context that has never run");
    util::require(runnable_.empty() && delta_events_.empty() && update_queue_.empty() &&
                      timed_queue_.empty(),
                  "snapshot", "state restore into a scheduler with pending activity");
    now_ = now;
    initialized_ = true;
}

void scheduler::finish_restore(std::uint64_t delta_count,
                               std::uint64_t timed_notifications) {
    delta_count_ = delta_count;
    timed_notifications_ = timed_notifications;
    publish_telemetry();
}

void scheduler::reset() {
    now_ = time::zero();
    run_end_ = time::max();
    delta_count_ = 0;
    timed_notifications_ = 0;
    initialized_ = false;
    pacing_ = 0.0;
    pacing_max_drift_ = 0.0;
    record_drift(0.0, true);
    pace_anchor_valid_ = false;
    runnable_.clear();
    delta_events_.clear();
    update_queue_.clear();
    timed_queue_.clear();
    publish_telemetry();
}

}  // namespace sca::de
