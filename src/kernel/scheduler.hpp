// The discrete-event scheduler: evaluate / update / delta-notify cycles and
// timed-event advance, following the SystemC simulation semantics the paper
// builds on (§3 "SystemC-AMS must be an extension of the SystemC language").
#ifndef SCA_KERNEL_SCHEDULER_HPP
#define SCA_KERNEL_SCHEDULER_HPP

#include <chrono>
#include <cstdint>
#include <map>
#include <vector>

#include "kernel/time.hpp"

namespace sca::util {
class counter;
class gauge;
class metrics_registry;
class event_tracer;
}  // namespace sca::util

namespace sca::de {

class event;
class method_process;
class signal_base;

class scheduler {
public:
    scheduler() = default;
    scheduler(const scheduler&) = delete;
    scheduler& operator=(const scheduler&) = delete;

    /// Mirror the kernel counters onto a metrics registry
    /// ("kernel.timed_notifications", "kernel.delta_cycles",
    /// "kernel.pacing.drift_s"/"max_drift_s") and attach the kernel tracer.
    /// Called once by simulation_context's constructor; current local values
    /// seed the registry so binding is value-preserving.  The hot-path
    /// increments stay plain member writes (an atomic RMW per delta cycle
    /// costs several percent on the per-sample TDF path); the registry view
    /// is refreshed by publish_telemetry() at every sync point.
    void bind_telemetry(util::metrics_registry& registry, util::event_tracer* tracer);

    /// Copy the local counter/gauge values into the bound registry handles.
    /// No-op when unbound.  run()/reset()/finish_restore() call this, and
    /// simulation_context registers it as a metrics collector, so the
    /// registry is current whenever anyone snapshots it.
    void publish_telemetry() noexcept;

    [[nodiscard]] const time& now() const noexcept { return now_; }
    [[nodiscard]] std::uint64_t delta_count() const noexcept;

    /// Cumulative timed notifications queued since construction/reset().
    /// A cheap proxy for DE-kernel interaction volume: the TDF layer uses it
    /// in benches/tests to show that batching (static clusters) and period
    /// stretching (dynamic clusters slowing themselves down) both shrink the
    /// kernel traffic, not just the module firing count.
    [[nodiscard]] std::uint64_t timed_notification_count() const noexcept;

    // --- called by events / signals / processes ----------------------------
    void make_runnable(method_process& p);
    void queue_delta_event(event& e);
    void queue_timed_event(event& e, const time& at);
    void request_update(signal_base& s);

    /// Register a process for the initialization phase.
    void register_process(method_process& p);
    void unregister_process(method_process& p);

    // --- simulation control -------------------------------------------------
    /// Run initialization then advance until `end` (inclusive) or until no
    /// activity remains. Returns the time reached.
    time run(const time& end);

    /// True when no timed events, delta events, or runnables remain.
    [[nodiscard]] bool idle() const noexcept;

    /// True while the current instant still has pending evaluation work —
    /// runnable processes, queued signal updates, or delta notifications —
    /// other than the given processes/events.  TDF batch planning defers
    /// until the instant is settled (so every same-timestamp process has
    /// armed its next timed event), ignoring independent peer clusters,
    /// whose same-instant activity cannot interact with the caller.
    [[nodiscard]] bool instant_active_ignoring(
        const std::vector<const method_process*>& ignored_processes,
        const std::vector<const event*>& ignored_events) const noexcept;

    /// Time of the next pending timed event (time::max() if none).
    [[nodiscard]] time next_event_time() const noexcept;

    /// Like next_event_time(), but skipping cancelled notifications and the
    /// given events (used by TDF batch planning to ignore the re-arm events
    /// of independent peer clusters).
    [[nodiscard]] time next_event_time_ignoring(
        const std::vector<const event*>& ignored) const noexcept;

    /// End bound of the in-progress (or most recent) run() call; time::max()
    /// before the first run.  The TDF synchronization layer uses it to keep
    /// batched cluster execution from running past the requested stop time.
    [[nodiscard]] const time& run_end() const noexcept { return run_end_; }

    // --- wall-clock pacing ---------------------------------------------------
    /// Opt-in soft-real-time mode (hardware-in-the-loop sessions): before
    /// advancing simulated time, sleep until wall time has caught up, with
    /// `real_time_factor` simulated seconds passing per wall second (1.0 =
    /// real time, 10.0 = 10x faster than real time).  <= 0 disables pacing
    /// (the default).  Calling set_pacing re-anchors the sim-time/wall-time
    /// correspondence at the current instant, so a paused-and-resumed
    /// session does not sprint to catch up over the paused interval.
    void set_pacing(double real_time_factor) noexcept;
    [[nodiscard]] double pacing_factor() const noexcept { return pacing_; }

    /// Wall-clock lag observed at the most recent paced advance, in seconds
    /// (0 while the kernel keeps up — i.e. it slept — positive when the
    /// model is too slow to hold the requested factor).
    [[nodiscard]] double pacing_drift() const noexcept;
    /// Largest lag observed since pacing was (re-)enabled.
    [[nodiscard]] double pacing_max_drift() const noexcept;

    // --- checkpoint/restore (core/snapshot) ----------------------------------
    /// Registered processes in registration order — the stable identity a
    /// snapshot uses for processes and their timeout events (model
    /// construction and elaboration register processes deterministically).
    [[nodiscard]] const std::vector<method_process*>& processes() const noexcept {
        return all_processes_;
    }

    /// Live timed-queue entries in firing order (stale generations and
    /// cancelled notifications skipped).  Same-time entries keep their
    /// insertion order — the property restore must reproduce so that
    /// same-instant notifications fire in the original registration order.
    [[nodiscard]] std::vector<std::pair<time, event*>> pending_timed_events() const;

    /// True once the initialization phase has run (i.e. run() was called at
    /// least once).  A snapshot must capture an initialized scheduler:
    /// restore marks the rebuilt one initialized, so saving a never-run
    /// context would silently skip initialization after resume.
    [[nodiscard]] bool initialized() const noexcept { return initialized_; }

    /// True when the current instant is fully evaluated: no runnable
    /// process, no queued signal update, no pending delta notification.
    /// run() always returns at a settled point; the snapshot writer asserts
    /// it rather than trying to serialize mid-instant evaluation state.
    [[nodiscard]] bool settled() const noexcept {
        return runnable_.empty() && delta_events_.empty() && update_queue_.empty();
    }

    /// Snapshot restore, step one: adopt the saved simulation clock on a
    /// context that has never run.  Marks the scheduler initialized so the
    /// next run() skips the initialization phase — the restored wait states
    /// stand in for it.
    void begin_restore(const time& now);

    /// Snapshot restore, final step: overlay the counters captured at save
    /// time (replaying timed notifications in between bumped them).
    void finish_restore(std::uint64_t delta_count, std::uint64_t timed_notifications);

    void reset();

private:
    void initialization_phase();
    /// One evaluate/update/delta sequence; returns true if any process ran.
    void evaluate_update_loop();
    /// Sleep until wall time reaches sim time `t` under the pacing factor;
    /// records drift when the kernel is already late.  No-op when pacing is
    /// off or `t` is the time::max() "never" marker.
    void pace_to(const time& t);
    void count_timed_notification() noexcept;
    void count_delta_cycle() noexcept;
    void record_drift(double drift, bool is_new_max) noexcept;

    time now_;
    time run_end_ = time::max();
    // The members are the source of truth (cheap hot-path increments); the
    // registry handles below are a mirror refreshed by publish_telemetry().
    std::uint64_t delta_count_ = 0;
    std::uint64_t timed_notifications_ = 0;
    util::counter* delta_count_m_ = nullptr;
    util::counter* timed_notifications_m_ = nullptr;
    util::gauge* pacing_drift_m_ = nullptr;
    util::gauge* pacing_max_drift_m_ = nullptr;
    util::event_tracer* tracer_ = nullptr;
    bool initialized_ = false;

    double pacing_ = 0.0;
    double pacing_drift_ = 0.0;
    double pacing_max_drift_ = 0.0;
    bool pace_anchor_valid_ = false;
    time pace_anchor_sim_;
    std::chrono::steady_clock::time_point pace_anchor_wall_;

    std::vector<method_process*> all_processes_;
    std::vector<method_process*> runnable_;
    std::vector<event*> delta_events_;
    std::vector<signal_base*> update_queue_;

    struct timed_entry {
        event* ev;
        std::uint64_t generation;
    };
    std::multimap<time, timed_entry> timed_queue_;
};

}  // namespace sca::de

#endif  // SCA_KERNEL_SCHEDULER_HPP
