// Discrete simulation time.
//
// Time is an integer count of femtoseconds (the minimum resolvable time,
// cf. paper §3: "time can be handled ... as an integer multiple of a base
// time").  64-bit femtoseconds cover simulations up to ~2.5 hours of model
// time, far beyond any mixed-signal run, while making time comparisons exact.
#ifndef SCA_KERNEL_TIME_HPP
#define SCA_KERNEL_TIME_HPP

#include <cstdint>
#include <iosfwd>
#include <string>

namespace sca::de {

/// Time unit multipliers, in femtoseconds.
enum class time_unit : std::int64_t {
    fs = 1,
    ps = 1'000,
    ns = 1'000'000,
    us = 1'000'000'000,
    ms = 1'000'000'000'000,
    sec = 1'000'000'000'000'000,
};

/// A point in (or duration of) simulated time. Regular value type.
class time {
public:
    constexpr time() = default;

    /// `value` in the given unit; fractional values are rounded to fs.
    time(double value, time_unit unit);

    /// Exact construction from a femtosecond count.
    static constexpr time from_fs(std::int64_t fs) {
        time t;
        t.fs_ = fs;
        return t;
    }

    /// Convert a duration in seconds (rounded to the nearest femtosecond).
    static time from_seconds(double seconds);

    [[nodiscard]] constexpr std::int64_t value_fs() const noexcept { return fs_; }
    [[nodiscard]] double to_seconds() const noexcept;

    /// Largest representable time; used as "never" marker.
    static constexpr time max() { return from_fs(INT64_MAX); }
    static constexpr time zero() { return from_fs(0); }

    [[nodiscard]] std::string to_string() const;

    constexpr auto operator<=>(const time&) const = default;

    constexpr time& operator+=(const time& rhs) noexcept {
        fs_ += rhs.fs_;
        return *this;
    }
    constexpr time& operator-=(const time& rhs) noexcept {
        fs_ -= rhs.fs_;
        return *this;
    }
    friend constexpr time operator+(time a, const time& b) noexcept { return a += b; }
    friend constexpr time operator-(time a, const time& b) noexcept { return a -= b; }
    friend constexpr time operator*(time a, std::int64_t k) noexcept {
        return from_fs(a.fs_ * k);
    }
    friend constexpr std::int64_t operator/(const time& a, const time& b) noexcept {
        return a.fs_ / b.fs_;
    }
    friend constexpr time operator%(const time& a, const time& b) noexcept {
        return from_fs(a.fs_ % b.fs_);
    }

private:
    std::int64_t fs_ = 0;
};

std::ostream& operator<<(std::ostream& os, const time& t);

namespace literals {
inline time operator""_fs(unsigned long long v) {
    return time::from_fs(static_cast<std::int64_t>(v));
}
inline time operator""_ps(unsigned long long v) {
    return time(static_cast<double>(v), time_unit::ps);
}
inline time operator""_ns(unsigned long long v) {
    return time(static_cast<double>(v), time_unit::ns);
}
inline time operator""_us(unsigned long long v) {
    return time(static_cast<double>(v), time_unit::us);
}
inline time operator""_ms(unsigned long long v) {
    return time(static_cast<double>(v), time_unit::ms);
}
inline time operator""_sec(unsigned long long v) {
    return time(static_cast<double>(v), time_unit::sec);
}
}  // namespace literals

}  // namespace sca::de

#endif  // SCA_KERNEL_TIME_HPP
