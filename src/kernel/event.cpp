#include "kernel/event.hpp"

#include <algorithm>

#include "kernel/context.hpp"
#include "kernel/process.hpp"
#include "util/report.hpp"

namespace sca::de {

event::event(std::string name) : name_(std::move(name)) {
    context_ = &simulation_context::current();
    context_->register_event(*this);
}

event::~event() {
    // Deregister from subscribers so their destructors do not come back to
    // this (freed) event — context teardown destroys events and processes
    // in whatever order the owners were declared.
    for (method_process* p : static_subscribers_) p->event_destroyed(*this);
    for (method_process* p : dynamic_subscribers_) p->event_destroyed(*this);
    context_->unregister_event(*this);
}

void event::notify() {
    // Immediate notification: fires during the current evaluation phase and
    // supersedes any pending delta/timed notification.
    cancel();
    trigger();
}

void event::notify_delta() {
    if (pending_kind_ == kind::delta) return;
    if (pending_kind_ == kind::timed) cancel();
    pending_kind_ = kind::delta;
    context_->sched().queue_delta_event(*this);
}

void event::notify(const time& delay) {
    if (delay == time::zero()) {
        notify_delta();
        return;
    }
    const time at = context_->sched().now() + delay;
    if (pending_kind_ == kind::delta) return;  // delta beats any timed notification
    if (pending_kind_ == kind::timed) {
        if (pending_time_ <= at) return;  // earlier pending notification wins
        ++generation_;                    // invalidate the later one
    }
    pending_kind_ = kind::timed;
    pending_time_ = at;
    context_->sched().queue_timed_event(*this, at);
}

void event::cancel() {
    if (pending_kind_ == kind::none) return;
    ++generation_;  // invalidates queued delta/timed entries lazily
    pending_kind_ = kind::none;
}

void event::add_static_subscriber(method_process& p) {
    if (std::find(static_subscribers_.begin(), static_subscribers_.end(), &p) ==
        static_subscribers_.end()) {
        static_subscribers_.push_back(&p);
    }
}

void event::remove_static_subscriber(method_process& p) {
    static_subscribers_.erase(
        std::remove(static_subscribers_.begin(), static_subscribers_.end(), &p),
        static_subscribers_.end());
}

void event::add_dynamic_subscriber(method_process& p) {
    dynamic_subscribers_.push_back(&p);
}

void event::remove_dynamic_subscriber(method_process& p) {
    dynamic_subscribers_.erase(
        std::remove(dynamic_subscribers_.begin(), dynamic_subscribers_.end(), &p),
        dynamic_subscribers_.end());
}

void event::restore_timed(const time& at) {
    util::require(pending_kind_ == kind::none, "snapshot",
                  "restore_timed on an event with a pending notification");
    pending_kind_ = kind::timed;
    pending_time_ = at;
    context_->sched().queue_timed_event(*this, at);
}

void event::trigger() {
    pending_kind_ = kind::none;
    scheduler& sched = context_->sched();
    for (method_process* p : static_subscribers_) {
        if (!p->dynamically_waiting()) sched.make_runnable(*p);
    }
    // Dynamic subscribers are one-shot; firing clears their wait state.
    auto dynamics = std::move(dynamic_subscribers_);
    dynamic_subscribers_.clear();
    for (method_process* p : dynamics) {
        p->dynamic_trigger_fired();
        sched.make_runnable(*p);
    }
}

}  // namespace sca::de
