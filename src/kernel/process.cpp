#include "kernel/process.hpp"

#include <algorithm>
#include <utility>

#include "kernel/context.hpp"
#include "util/report.hpp"

namespace sca::de {

method_process::method_process(std::string name, std::function<void()> body,
                               simulation_context& ctx)
    : name_(std::move(name)), body_(std::move(body)), context_(&ctx) {
    util::require(static_cast<bool>(body_), name_, "method body must not be null");
    context_->sched().register_process(*this);
}

method_process::~method_process() {
    for (event* e : static_sensitivity_) e->remove_static_subscriber(*this);
    clear_dynamic_subscriptions();
    context_->sched().unregister_process(*this);
}

void method_process::make_sensitive(event& e) {
    static_sensitivity_.push_back(&e);
    e.add_static_subscriber(*this);
}

void method_process::execute() {
    method_process* previous = context_->running_process();
    context_->set_running_process(this);
    trigger_requested_ = false;
    ++activations_;
    body_();
    context_->set_running_process(previous);
    // If the body did not request a dynamic trigger, static sensitivity
    // applies again (any previous dynamic wait was consumed by this run).
    if (!trigger_requested_) {
        dynamic_waiting_ = false;
    }
}

void method_process::next_trigger(event& e) {
    clear_dynamic_subscriptions();
    e.add_dynamic_subscriber(*this);
    dynamic_events_.push_back(&e);
    dynamic_waiting_ = true;
    trigger_requested_ = true;
}

void method_process::next_trigger(const time& delay) {
    clear_dynamic_subscriptions();
    ensure_timeout_event();
    timeout_event_->notify(delay);
    timeout_event_->add_dynamic_subscriber(*this);
    dynamic_events_.push_back(timeout_event_.get());
    dynamic_waiting_ = true;
    trigger_requested_ = true;
}

void method_process::next_trigger(const time& delay, event& e) {
    clear_dynamic_subscriptions();
    ensure_timeout_event();
    timeout_event_->notify(delay);
    timeout_event_->add_dynamic_subscriber(*this);
    dynamic_events_.push_back(timeout_event_.get());
    e.add_dynamic_subscriber(*this);
    dynamic_events_.push_back(&e);
    dynamic_waiting_ = true;
    trigger_requested_ = true;
}

event& method_process::ensure_timeout_event() {
    if (!timeout_event_) timeout_event_ = std::make_unique<event>(name_ + ".timeout");
    return *timeout_event_;
}

void method_process::event_destroyed(event& e) {
    static_sensitivity_.erase(
        std::remove(static_sensitivity_.begin(), static_sensitivity_.end(), &e),
        static_sensitivity_.end());
    dynamic_events_.erase(
        std::remove(dynamic_events_.begin(), dynamic_events_.end(), &e),
        dynamic_events_.end());
}

void method_process::dynamic_trigger_fired() {
    // One of the dynamic events fired; withdraw from all the others so this
    // activation is one-shot.
    clear_dynamic_subscriptions();
    dynamic_waiting_ = false;
}

void method_process::clear_dynamic_subscriptions() {
    for (event* e : dynamic_events_) e->remove_dynamic_subscriber(*this);
    dynamic_events_.clear();
    if (timeout_event_) timeout_event_->cancel();
}

}  // namespace sca::de
