// Method processes: the kernel's unit of concurrent behavior.
//
// A method process is a callback executed to completion on every activation
// (the SC_METHOD style).  Activation comes from its static sensitivity list
// or from a one-shot dynamic trigger requested with next_trigger(); a dynamic
// trigger overrides static sensitivity for exactly one activation, matching
// SystemC semantics.
#ifndef SCA_KERNEL_PROCESS_HPP
#define SCA_KERNEL_PROCESS_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "kernel/event.hpp"
#include "kernel/time.hpp"

namespace sca::de {

class simulation_context;

class method_process {
public:
    method_process(std::string name, std::function<void()> body, simulation_context& ctx);
    ~method_process();

    method_process(const method_process&) = delete;
    method_process& operator=(const method_process&) = delete;

    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    /// Add an event to the static sensitivity list.
    void make_sensitive(event& e);

    /// Suppress the initial activation at simulation start.
    void dont_initialize() noexcept { dont_initialize_ = true; }
    [[nodiscard]] bool initialize() const noexcept { return !dont_initialize_; }

    /// Execute the body once (scheduler only). Sets the running-process
    /// context so next_trigger() calls inside the body land here.
    void execute();

    /// One-shot dynamic triggers (normally called via context::next_trigger).
    void next_trigger(event& e);
    void next_trigger(const time& delay);
    void next_trigger(const time& delay, event& e);  // timeout or event

    [[nodiscard]] bool dynamically_waiting() const noexcept { return dynamic_waiting_; }

    /// The lazily created timed-trigger event (nullptr until the first timed
    /// wait).  The TDF synchronization layer uses its identity to ignore
    /// peer-cluster re-arms when planning batched execution.
    [[nodiscard]] const event* timeout_event() const noexcept { return timeout_event_.get(); }

    /// Clear dynamic wait state when a dynamic trigger fires.
    void dynamic_trigger_fired();

    /// An event this process subscribes to is being destroyed: drop every
    /// reference so the process destructor does not unsubscribe from freed
    /// memory (events and processes may be torn down in either order).
    void event_destroyed(event& e);

    /// Scheduler bookkeeping: avoid double-queueing in one evaluation phase.
    [[nodiscard]] bool queued() const noexcept { return queued_; }
    void set_queued(bool q) noexcept { queued_ = q; }

    /// Number of completed activations (diagnostics, benches).
    [[nodiscard]] std::uint64_t activation_count() const noexcept { return activations_; }

    // --- checkpoint/restore (core/snapshot) --------------------------------
    /// Force-create the timed-trigger event without arming it.  Restore
    /// path: the snapshot records that the saving process had created it;
    /// pending notifications and subscriptions are replayed onto it
    /// afterwards.
    event& ensure_timeout_event();

    /// Ordered events this process is dynamically waiting on.
    [[nodiscard]] const std::vector<event*>& dynamic_events() const noexcept {
        return dynamic_events_;
    }

    /// Restore-only mutators replaying a captured dynamic wait.  The event
    /// side re-adds the actual subscriptions (its subscriber order is what
    /// trigger() replays); this side only mirrors the bookkeeping.
    void restore_dynamic_wait(bool waiting) noexcept { dynamic_waiting_ = waiting; }
    void restore_dynamic_event(event& e) { dynamic_events_.push_back(&e); }
    void restore_activation_count(std::uint64_t n) noexcept { activations_ = n; }

private:
    void clear_dynamic_subscriptions();

    std::string name_;
    std::function<void()> body_;
    simulation_context* context_;
    std::vector<event*> static_sensitivity_;
    std::unique_ptr<event> timeout_event_;  // lazily created for timed triggers
    std::vector<event*> dynamic_events_;    // events we are dynamically waiting on
    bool dynamic_waiting_ = false;
    bool trigger_requested_ = false;  // next_trigger called during current execute()
    bool dont_initialize_ = false;
    bool queued_ = false;
    std::uint64_t activations_ = 0;
};

}  // namespace sca::de

#endif  // SCA_KERNEL_PROCESS_HPP
