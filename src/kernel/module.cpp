#include "kernel/module.hpp"

#include "kernel/signal.hpp"
#include "util/report.hpp"

namespace sca::de {

method_handle& method_handle::sensitive(port_base& p) {
    p.add_pending_sensitivity(*process_);
    return *this;
}

module::module(const module_name& nm) : object(nm.str()) {
    context().push_construction_parent(*this);
}

module::~module() = default;

method_handle module::declare_method(const std::string& name, std::function<void()> body) {
    method_process& p = context().register_method(this->name() + "." + name, std::move(body));
    return method_handle(p);
}

}  // namespace sca::de
