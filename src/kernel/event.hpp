// Simulation events with immediate, delta, and timed notification, matching
// SystemC notification semantics (at most one pending notification per event;
// an earlier notification overrides a later pending one).
#ifndef SCA_KERNEL_EVENT_HPP
#define SCA_KERNEL_EVENT_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "kernel/time.hpp"

namespace sca::de {

class method_process;
class scheduler;
class simulation_context;

class event {
public:
    /// Creates an event registered with the current simulation context.
    explicit event(std::string name = "event");
    ~event();

    event(const event&) = delete;
    event& operator=(const event&) = delete;

    /// Immediate notification: sensitive processes become runnable in the
    /// current evaluation phase.
    void notify();

    /// Delta notification: processes run in the next delta cycle.
    void notify_delta();

    /// Timed notification after `delay`. A pending notification at an earlier
    /// time wins; a pending later one is cancelled and replaced.
    void notify(const time& delay);

    /// Cancel any pending (delta or timed) notification.
    void cancel();

    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    /// True if a delta or timed notification is pending.
    [[nodiscard]] bool pending() const noexcept { return pending_kind_ != kind::none; }

    // --- used by processes and the scheduler -------------------------------
    void add_static_subscriber(method_process& p);
    void remove_static_subscriber(method_process& p);
    void add_dynamic_subscriber(method_process& p);
    void remove_dynamic_subscriber(method_process& p);

    /// Fire: make subscribers runnable. Called by the scheduler (delta/timed)
    /// or directly by notify() (immediate).
    void trigger();

    /// Generation counter validates timed queue entries after cancel().
    [[nodiscard]] std::uint64_t generation() const noexcept { return generation_; }

    // --- checkpoint/restore (core/snapshot) --------------------------------
    /// Pending-notification introspection for snapshot capture.  At a
    /// settled point (run() returned, instant fully evaluated) only timed
    /// notifications can still be pending.
    [[nodiscard]] bool pending_timed() const noexcept {
        return pending_kind_ == kind::timed;
    }
    [[nodiscard]] const time& pending_time() const noexcept { return pending_time_; }

    /// Ordered dynamic-subscriber list.  trigger() fires dynamic subscribers
    /// in subscription order, so a snapshot must record — and restore must
    /// replay — exactly this sequence.
    [[nodiscard]] const std::vector<method_process*>& dynamic_subscribers() const noexcept {
        return dynamic_subscribers_;
    }

    /// Re-establish a pending timed notification at absolute time `at`
    /// (snapshot restore only; the event must be idle).
    void restore_timed(const time& at);

private:
    enum class kind { none, delta, timed };

    std::string name_;
    simulation_context* context_ = nullptr;
    std::vector<method_process*> static_subscribers_;
    std::vector<method_process*> dynamic_subscribers_;
    kind pending_kind_ = kind::none;
    time pending_time_;
    std::uint64_t generation_ = 0;
};

}  // namespace sca::de

#endif  // SCA_KERNEL_EVENT_HPP
