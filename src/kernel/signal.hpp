// Signals (primitive channels) and ports.
//
// Signals follow the SystemC evaluate/update discipline: writes during the
// evaluation phase are deferred; the new value becomes visible in the update
// phase and, when it differs from the old value, fires the value-changed
// event as a delta notification.
#ifndef SCA_KERNEL_SIGNAL_HPP
#define SCA_KERNEL_SIGNAL_HPP

#include <string>
#include <type_traits>
#include <vector>

#include "kernel/context.hpp"
#include "kernel/event.hpp"
#include "kernel/object.hpp"
#include "util/bytes.hpp"
#include "util/report.hpp"

namespace sca::de {

/// Untyped base so the scheduler can hold a heterogeneous update queue.
class signal_base : public object {
public:
    [[nodiscard]] const char* kind() const noexcept override { return "signal"; }

    /// Event fired (delta) whenever the stored value changes.
    [[nodiscard]] event& value_changed_event() noexcept { return value_changed_; }

    /// Apply the pending write (scheduler, update phase only).
    virtual void update() = 0;

protected:
    explicit signal_base(std::string name)
        : object(std::move(name)), value_changed_(this->name() + ".value_changed") {}

    void request_update() { context().sched().request_update(*this); }

    event value_changed_;
};

/// Typed signal. T must be equality-comparable and copyable.
template <typename T>
class signal : public signal_base {
public:
    explicit signal(std::string name = "signal", T initial = T{})
        : signal_base(std::move(name)), current_(initial), next_(initial) {}

    [[nodiscard]] const T& read() const noexcept { return current_; }

    /// Deferred write; visible after the next update phase.
    void write(const T& value) {
        next_ = value;
        if (!update_requested_) {
            update_requested_ = true;
            request_update();
        }
    }

    /// Write that bypasses the update phase (elaboration-time initialization).
    void initialize(const T& value) {
        current_ = value;
        next_ = value;
    }

    void update() override {
        update_requested_ = false;
        if (next_ == current_) return;
        const bool rising = rising_edge(current_, next_);
        const bool falling = falling_edge(current_, next_);
        current_ = next_;
        value_changed_.notify_delta();
        if (rising && posedge_) posedge_->notify_delta();
        if (falling && negedge_) negedge_->notify_delta();
    }

    /// Edge events are created on demand (only meaningful for bool-like T).
    [[nodiscard]] event& posedge_event() {
        if (!posedge_) posedge_ = std::make_unique<event>(name() + ".posedge");
        return *posedge_;
    }
    [[nodiscard]] event& negedge_event() {
        if (!negedge_) negedge_ = std::make_unique<event>(name() + ".negedge");
        return *negedge_;
    }

    // --- checkpoint/restore ----------------------------------------------------
    // At a settled point the pending write has been applied (current_ ==
    // next_, no update queued), so the value plus the on-demand edge-event
    // existence is the whole state.  Edge events are force-created before
    // the event overlay so a pending notification on one can be replayed.
    [[nodiscard]] bool has_snapshot_state() const noexcept override {
        return std::is_same_v<T, bool> || std::is_arithmetic_v<T>;
    }
    void save_state(util::byte_writer& w) const override {
        if constexpr (std::is_same_v<T, bool>) {
            w.boolean(current_);
        } else if constexpr (std::is_floating_point_v<T>) {
            w.f64(static_cast<double>(current_));
        } else if constexpr (std::is_integral_v<T>) {
            w.i64(static_cast<std::int64_t>(current_));
        } else {
            util::report_fatal("snapshot", "signal '" + name() + "': unsupported type");
        }
        w.boolean(posedge_ != nullptr);
        w.boolean(negedge_ != nullptr);
    }
    void restore_state(util::byte_reader& r) override {
        if constexpr (std::is_same_v<T, bool>) {
            initialize(r.boolean());
        } else if constexpr (std::is_floating_point_v<T>) {
            initialize(static_cast<T>(r.f64()));
        } else if constexpr (std::is_integral_v<T>) {
            initialize(static_cast<T>(r.i64()));
        } else {
            util::report_fatal("snapshot", "signal '" + name() + "': unsupported type");
        }
        if (r.boolean()) (void)posedge_event();
        if (r.boolean()) (void)negedge_event();
    }

private:
    static bool rising_edge(const T& from, const T& to) {
        if constexpr (std::is_same_v<T, bool>) {
            return !from && to;
        } else {
            (void)from;
            (void)to;
            return false;
        }
    }
    static bool falling_edge(const T& from, const T& to) {
        if constexpr (std::is_same_v<T, bool>) {
            return from && !to;
        } else {
            (void)from;
            (void)to;
            return false;
        }
    }

    T current_;
    T next_;
    bool update_requested_ = false;
    std::unique_ptr<event> posedge_;
    std::unique_ptr<event> negedge_;
};

/// Untyped port base; binding is resolved transitively at elaboration.
class port_base : public object {
public:
    [[nodiscard]] const char* kind() const noexcept override { return "port"; }

    /// Bind to a signal or, hierarchically, to another port.
    void bind(signal_base& s) { bound_signal_ = &s; }
    void bind(port_base& p) { bound_port_ = &p; }

    [[nodiscard]] bool bound() const noexcept {
        return bound_signal_ != nullptr || bound_port_ != nullptr;
    }

    /// Optional ports may stay unbound through elaboration (reads then fail
    /// at runtime); used for auxiliary outputs a model may not connect.
    void set_optional() noexcept { optional_ = true; }
    [[nodiscard]] bool optional() const noexcept { return optional_; }

    /// Follow port-to-port chains; sets the final signal. Elaboration only.
    void resolve();

    /// Defer process sensitivity until the bound signal is known.
    void add_pending_sensitivity(method_process& p) { pending_sensitive_.push_back(&p); }

    [[nodiscard]] signal_base* resolved_signal() const noexcept { return bound_signal_; }

protected:
    explicit port_base(std::string name) : object(std::move(name)) {}

    signal_base* bound_signal_ = nullptr;
    port_base* bound_port_ = nullptr;
    bool optional_ = false;
    std::vector<method_process*> pending_sensitive_;
};

/// Input port for signal<T>.
template <typename T>
class in : public port_base {
public:
    explicit in(std::string name = "in") : port_base(std::move(name)) {}

    [[nodiscard]] const T& read() const {
        return typed_signal("read of unbound port").read();
    }

    [[nodiscard]] event& value_changed_event() {
        return typed_signal("event of unbound port").value_changed_event();
    }
    [[nodiscard]] event& posedge_event() {
        return typed_signal("event of unbound port").posedge_event();
    }
    [[nodiscard]] event& negedge_event() {
        return typed_signal("event of unbound port").negedge_event();
    }

    void operator()(signal<T>& s) { this->bind(s); }
    void operator()(in<T>& p) { this->bind(p); }

private:
    [[nodiscard]] signal<T>& typed_signal(const char* what) const {
        auto* s = dynamic_cast<signal<T>*>(bound_signal_);
        util::require(s != nullptr, name(), what);
        return *s;
    }
};

/// Output port for signal<T>. Also readable (like sc_inout).
template <typename T>
class out : public port_base {
public:
    explicit out(std::string name = "out") : port_base(std::move(name)) {}

    void write(const T& value) { typed_signal("write to unbound port").write(value); }
    [[nodiscard]] const T& read() const {
        return typed_signal("read of unbound port").read();
    }
    [[nodiscard]] event& value_changed_event() {
        return typed_signal("event of unbound port").value_changed_event();
    }

    void operator()(signal<T>& s) { this->bind(s); }
    void operator()(out<T>& p) { this->bind(p); }

private:
    [[nodiscard]] signal<T>& typed_signal(const char* what) const {
        auto* s = dynamic_cast<signal<T>*>(bound_signal_);
        util::require(s != nullptr, name(), what);
        return *s;
    }
};

}  // namespace sca::de

#endif  // SCA_KERNEL_SIGNAL_HPP
