#include "kernel/context.hpp"

#include <algorithm>

#include "kernel/event.hpp"
#include "kernel/module.hpp"
#include "kernel/object.hpp"
#include "kernel/process.hpp"
#include "kernel/signal.hpp"
#include "util/report.hpp"

namespace sca::de {

namespace {
thread_local simulation_context* g_current = nullptr;
}

simulation_context::simulation_context() {
    scheduler_.bind_telemetry(metrics_, &tracer_);
    metrics_collectors_.push_back([this] { scheduler_.publish_telemetry(); });
    previous_current_ = g_current;
    g_current = this;
}

void simulation_context::add_metrics_collector(std::function<void()> collector) {
    metrics_collectors_.push_back(std::move(collector));
}

util::metrics_snapshot simulation_context::collect_metrics() {
    for (const auto& c : metrics_collectors_) c();
    return metrics_.snapshot();
}

util::metrics_snapshot simulation_context::collect_wire_metrics() {
    for (const auto& c : metrics_collectors_) c();
    return metrics_.wire_snapshot();
}

simulation_context::~simulation_context() {
    if (g_current == this) g_current = previous_current_;
}

simulation_context& simulation_context::current() {
    util::require(g_current != nullptr, "simulation_context",
                  "no current context; create a simulation_context first");
    return *g_current;
}

bool simulation_context::has_current() noexcept { return g_current != nullptr; }

void simulation_context::make_current() noexcept { g_current = this; }

void simulation_context::register_object(object& obj) { objects_.push_back(&obj); }

void simulation_context::unregister_object(object& obj) {
    objects_.erase(std::remove(objects_.begin(), objects_.end(), &obj), objects_.end());
}

void simulation_context::register_event(event& e) { events_.push_back(&e); }

void simulation_context::unregister_event(event& e) {
    events_.erase(std::remove(events_.begin(), events_.end(), &e), events_.end());
}

object* simulation_context::construction_parent() const noexcept {
    return construction_stack_.empty() ? nullptr : construction_stack_.back();
}

void simulation_context::push_construction_parent(object& obj) {
    construction_stack_.push_back(&obj);
}

void simulation_context::pop_construction_parent() {
    if (!construction_stack_.empty()) construction_stack_.pop_back();
}

object* simulation_context::find_object(const std::string& full_name) const noexcept {
    for (object* o : objects_) {
        if (o->name() == full_name) return o;
    }
    return nullptr;
}

std::vector<object*> simulation_context::hierarchy() const {
    std::vector<object*> order;
    order.reserve(objects_.size());
    // Iterative pre-order DFS from each root; children pushed in reverse so
    // they pop in construction order.
    std::vector<object*> stack;
    for (object* o : objects_) {
        if (o->parent() != nullptr) continue;
        stack.push_back(o);
        while (!stack.empty()) {
            object* top = stack.back();
            stack.pop_back();
            order.push_back(top);
            const auto& kids = top->children();
            for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
        }
    }
    return order;
}

method_process& simulation_context::register_method(std::string name,
                                                    std::function<void()> body) {
    processes_.push_back(
        std::make_unique<method_process>(std::move(name), std::move(body), *this));
    return *processes_.back();
}

void simulation_context::next_trigger(event& e) {
    util::require(running_ != nullptr, "simulation_context",
                  "next_trigger outside of a method process");
    running_->next_trigger(e);
}

void simulation_context::next_trigger(const time& delay) {
    util::require(running_ != nullptr, "simulation_context",
                  "next_trigger outside of a method process");
    running_->next_trigger(delay);
}

void simulation_context::add_elaboration_hook(std::function<void()> hook) {
    elaboration_hooks_.push_back(std::move(hook));
}

void simulation_context::elaborate() {
    if (elaborated_) return;
    util::require(construction_stack_.empty(), "simulation_context",
                  "elaborate called during module construction");
    SCA_TRACE_SPAN(&tracer_, "elaborate", "kernel");
    // 1. Hierarchy walk: a parent-before-child traversal of the object tree.
    //    Composites appear before the children they own, so structural
    //    callbacks can rely on enclosing modules being processed first.
    std::vector<object*> walk;
    {
        SCA_TRACE_SPAN(&tracer_, "elaborate.hierarchy", "kernel");
        walk = hierarchy();
    }
    // 2. Binding resolution: follow DE port-to-port forwarding chains to the
    //    terminal signals (chains may be followed in any order).
    {
        SCA_TRACE_SPAN(&tracer_, "elaborate.resolve_ports", "kernel");
        for (object* o : walk) {
            if (auto* p = dynamic_cast<port_base*>(o)) p->resolve();
        }
    }
    // 3. Structural callbacks, outermost modules first.
    {
        SCA_TRACE_SPAN(&tracer_, "elaborate.end_of_elaboration", "kernel");
        for (object* o : walk) {
            if (auto* m = dynamic_cast<module*>(o)) m->end_of_elaboration();
        }
    }
    // 4. Domain hooks: TDF binding resolution + cluster discovery and
    //    scheduling, which in turn triggers DAE setup in the views.
    {
        SCA_TRACE_SPAN(&tracer_, "elaborate.domain_hooks", "kernel");
        for (const auto& hook : elaboration_hooks_) hook();
    }
    elaborated_ = true;
}

void simulation_context::run(const time& duration) {
    elaborate();
    scheduler_.run(scheduler_.now() + duration);
}

void simulation_context::run_to_completion() {
    elaborate();
    while (!scheduler_.idle()) {
        const time next = scheduler_.next_event_time();
        if (next == time::max()) {
            // Only delta activity remains; one bounded run drains it.
            scheduler_.run(scheduler_.now());
            break;
        }
        scheduler_.run(next);
    }
}

// ------------------------------------------------------------ module_name --

module_name::module_name(const char* name) : name_(name) {
    stack_depth_at_ctor_ = simulation_context::current().construction_depth();
}

module_name::module_name(const std::string& name) : name_(name) {
    stack_depth_at_ctor_ = simulation_context::current().construction_depth();
}

module_name::~module_name() {
    auto& ctx = simulation_context::current();
    while (ctx.construction_depth() > stack_depth_at_ctor_) ctx.pop_construction_parent();
}

}  // namespace sca::de
