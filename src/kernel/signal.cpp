#include "kernel/signal.hpp"

#include "kernel/process.hpp"

namespace sca::de {

void port_base::resolve() {
    // Follow port-to-port chains to the terminal signal.
    const port_base* p = this;
    int hops = 0;
    while (p->bound_signal_ == nullptr && p->bound_port_ != nullptr) {
        p = p->bound_port_;
        util::require(++hops < 1024, name(), "port binding cycle detected");
    }
    if (p->bound_signal_ == nullptr && optional_) {
        util::require(pending_sensitive_.empty(), name(),
                      "optional port with pending sensitivity left unbound");
        return;
    }
    util::require(p->bound_signal_ != nullptr, name(), "port is unbound after elaboration");
    bound_signal_ = p->bound_signal_;
    for (method_process* proc : pending_sensitive_) {
        proc->make_sensitive(bound_signal_->value_changed_event());
    }
    pending_sensitive_.clear();
}

}  // namespace sca::de
