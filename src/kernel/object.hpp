// Named object hierarchy, the backbone of module/port/signal naming.
//
// Every kernel entity is an `object` with a hierarchical name of the form
// "top.sub.block.port".  The hierarchy is established at construction time
// through the simulation context's construction stack (see context.hpp).
#ifndef SCA_KERNEL_OBJECT_HPP
#define SCA_KERNEL_OBJECT_HPP

#include <string>
#include <vector>

namespace sca::util {
class byte_writer;
class byte_reader;
}  // namespace sca::util

namespace sca::de {

class simulation_context;

/// Base of all named simulation entities. Non-copyable; lifetime is managed
/// by the user model (objects are typically data members of modules).
class object {
public:
    object(const object&) = delete;
    object& operator=(const object&) = delete;
    virtual ~object();

    /// Leaf name ("port") and full hierarchical name ("top.block.port").
    [[nodiscard]] const std::string& basename() const noexcept { return basename_; }
    [[nodiscard]] const std::string& name() const noexcept { return full_name_; }

    [[nodiscard]] object* parent() const noexcept { return parent_; }
    [[nodiscard]] const std::vector<object*>& children() const noexcept { return children_; }

    /// Context this object was created in.
    [[nodiscard]] simulation_context& context() const noexcept { return *context_; }

    /// Kind string for diagnostics ("module", "signal", ...).
    [[nodiscard]] virtual const char* kind() const noexcept { return "object"; }

    // --- checkpoint/restore (core/snapshot) ----------------------------------
    /// True when this object carries runtime state that a full-state
    /// snapshot must capture.  Objects returning true implement
    /// save_state/restore_state as an exact round trip: restore_state runs
    /// on a freshly rebuilt object (same scenario, same parameters) and
    /// overlays only the mutable state.
    [[nodiscard]] virtual bool has_snapshot_state() const noexcept { return false; }
    /// Serialize runtime state (never structure — the restoring process
    /// rebuilds the model through the scenario factory first).
    virtual void save_state(util::byte_writer& w) const;
    /// Overlay saved runtime state; the default errors, so an object whose
    /// has_snapshot_state() returns true must override both hooks.
    virtual void restore_state(util::byte_reader& r);

protected:
    /// Registers with the current simulation context and attaches to the
    /// object on top of the construction stack (if any).
    explicit object(std::string basename);

    /// Registers with `parent`'s context and attaches below `parent`
    /// explicitly, ignoring the construction stack.  Used by ports/terminals
    /// that belong to a non-module owner (e.g. ELN components), so their
    /// hierarchical names nest under it ("top.rc1.r.p").
    object(std::string basename, object& parent);

private:
    std::string basename_;
    std::string full_name_;
    object* parent_ = nullptr;
    std::vector<object*> children_;
    simulation_context* context_ = nullptr;
};

}  // namespace sca::de

#endif  // SCA_KERNEL_OBJECT_HPP
