// Module base class: the structural unit of a model.
//
// Usage follows the SystemC idiom without macros:
//
//   struct lowpass : sca::de::module {
//       sca::de::in<double> x;
//       sca::de::out<double> y;
//       explicit lowpass(const sca::de::module_name& nm)
//           : module(nm), x("x"), y("y") {
//           declare_method("step", [this] { y.write(0.5 * x.read()); })
//               .sensitive(x);
//       }
//   };
#ifndef SCA_KERNEL_MODULE_HPP
#define SCA_KERNEL_MODULE_HPP

#include <functional>
#include <string>
#include <utility>

#include "kernel/context.hpp"
#include "kernel/object.hpp"
#include "kernel/process.hpp"
#include "util/object_bag.hpp"

namespace sca::de {

class port_base;

/// Fluent helper returned by module::declare_method for sensitivity setup.
class method_handle {
public:
    explicit method_handle(method_process& p) : process_(&p) {}

    /// Sensitize to an event.
    method_handle& sensitive(event& e) {
        process_->make_sensitive(e);
        return *this;
    }

    /// Sensitize to a port's value-changed event (resolved at elaboration).
    method_handle& sensitive(port_base& p);

    method_handle& dont_initialize() {
        process_->dont_initialize();
        return *this;
    }

    [[nodiscard]] method_process& process() noexcept { return *process_; }

private:
    method_process* process_;
};

class module : public object {
public:
    [[nodiscard]] const char* kind() const noexcept override { return "module"; }

    /// Called once after port binding, before simulation starts.
    virtual void end_of_elaboration() {}

    /// Construct a child object owned by this module.  The child is attached
    /// below this module in the object hierarchy (its name becomes
    /// "<this>.<child>") and is destroyed with the module, newest first —
    /// object_bag semantics, so grandchildren die before the structures they
    /// registered with.  Works both inside the constructor (composite
    /// modules building their internals) and afterwards (builders growing a
    /// hierarchy from outside).
    template <typename T, typename... Args>
    T& make_child(Args&&... args) {
        context().make_current();
        const construction_scope scope(*this);
        return children_bag_.make<T>(std::forward<Args>(args)...);
    }

    /// Number of owned children (diagnostics/tests).
    [[nodiscard]] std::size_t owned_children() const noexcept {
        return children_bag_.size();
    }

protected:
    explicit module(const module_name& nm);
    ~module() override;

    /// Register a method process owned by this module.
    method_handle declare_method(const std::string& name, std::function<void()> body);

    /// One-shot dynamic trigger for the currently running method.
    void next_trigger(event& e) { context().next_trigger(e); }
    void next_trigger(const time& delay) { context().next_trigger(delay); }

    /// Current simulation time.
    [[nodiscard]] const time& now() const noexcept { return context().now(); }

private:
    /// RAII frame making `parent` the construction parent for the duration
    /// of a child construction; pops back to the entry depth even when the
    /// child's module_name already unwound part of the stack.
    class construction_scope {
    public:
        explicit construction_scope(module& parent)
            : ctx_(&parent.context()), depth_(ctx_->construction_depth()) {
            ctx_->push_construction_parent(parent);
        }
        ~construction_scope() {
            while (ctx_->construction_depth() > depth_) ctx_->pop_construction_parent();
        }
        construction_scope(const construction_scope&) = delete;
        construction_scope& operator=(const construction_scope&) = delete;

    private:
        simulation_context* ctx_;
        std::size_t depth_;
    };

    util::object_bag children_bag_;
};

}  // namespace sca::de

#endif  // SCA_KERNEL_MODULE_HPP
