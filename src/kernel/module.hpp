// Module base class: the structural unit of a model.
//
// Usage follows the SystemC idiom without macros:
//
//   struct lowpass : sca::de::module {
//       sca::de::in<double> x;
//       sca::de::out<double> y;
//       explicit lowpass(const sca::de::module_name& nm)
//           : module(nm), x("x"), y("y") {
//           declare_method("step", [this] { y.write(0.5 * x.read()); })
//               .sensitive(x);
//       }
//   };
#ifndef SCA_KERNEL_MODULE_HPP
#define SCA_KERNEL_MODULE_HPP

#include <functional>
#include <string>

#include "kernel/context.hpp"
#include "kernel/object.hpp"
#include "kernel/process.hpp"

namespace sca::de {

class port_base;

/// Fluent helper returned by module::declare_method for sensitivity setup.
class method_handle {
public:
    explicit method_handle(method_process& p) : process_(&p) {}

    /// Sensitize to an event.
    method_handle& sensitive(event& e) {
        process_->make_sensitive(e);
        return *this;
    }

    /// Sensitize to a port's value-changed event (resolved at elaboration).
    method_handle& sensitive(port_base& p);

    method_handle& dont_initialize() {
        process_->dont_initialize();
        return *this;
    }

    [[nodiscard]] method_process& process() noexcept { return *process_; }

private:
    method_process* process_;
};

class module : public object {
public:
    [[nodiscard]] const char* kind() const noexcept override { return "module"; }

    /// Called once after port binding, before simulation starts.
    virtual void end_of_elaboration() {}

protected:
    explicit module(const module_name& nm);
    ~module() override;

    /// Register a method process owned by this module.
    method_handle declare_method(const std::string& name, std::function<void()> body);

    /// One-shot dynamic trigger for the currently running method.
    void next_trigger(event& e) { context().next_trigger(e); }
    void next_trigger(const time& delay) { context().next_trigger(delay); }

    /// Current simulation time.
    [[nodiscard]] const time& now() const noexcept { return context().now(); }
};

}  // namespace sca::de

#endif  // SCA_KERNEL_MODULE_HPP
