// Sparse linear algebra for MNA systems: triplet assembly with duplicate
// summing, compressed row storage, and a fill-in-aware sparse LU with
// threshold partial pivoting.  MNA matrices from ladder/mesh networks are
// extremely sparse; factor-once/solve-many with sparse storage is what makes
// the fixed-timestep linear solver cheap per step (paper §3, [6]).
#ifndef SCA_NUMERIC_SPARSE_HPP
#define SCA_NUMERIC_SPARSE_HPP

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstddef>
#include <vector>

#include "numeric/dense.hpp"
#include "util/report.hpp"

namespace sca::num {

/// Sparse square matrix assembled from (row, col, value) triplets.
/// Duplicate entries are summed, matching the "stamping" style of MNA.
template <typename T>
class sparse_matrix {
public:
    sparse_matrix() = default;
    explicit sparse_matrix(std::size_t n) { resize(n); }

    /// Grow to `n` unknowns, preserving existing entries (MNA views allocate
    /// branch unknowns lazily while stamping). Shrinking is not supported.
    void resize(std::size_t n) {
        util::require(n >= n_, "sparse_matrix", "resize cannot shrink the matrix");
        n_ = n;
        rows_idx_.resize(n);
        rows_val_.resize(n);
    }

    void clear() {
        rows_idx_.assign(n_, {});
        rows_val_.assign(n_, {});
        nnz_ = 0;
    }

    [[nodiscard]] std::size_t size() const noexcept { return n_; }
    [[nodiscard]] std::size_t nonzeros() const noexcept { return nnz_; }

    /// Add `value` at (r, c); sums with any existing entry (MNA stamp).
    void add(std::size_t r, std::size_t c, T value) {
        util::require(r < n_ && c < n_, "sparse_matrix", "index out of range");
        auto& idx = rows_idx_[r];
        auto& val = rows_val_[r];
        const auto it = std::lower_bound(idx.begin(), idx.end(), c);
        if (it != idx.end() && *it == c) {
            val[static_cast<std::size_t>(it - idx.begin())] += value;
        } else {
            const auto pos = static_cast<std::size_t>(it - idx.begin());
            idx.insert(it, c);
            val.insert(val.begin() + static_cast<std::ptrdiff_t>(pos), value);
            ++nnz_;
        }
    }

    [[nodiscard]] T get(std::size_t r, std::size_t c) const {
        util::require(r < n_ && c < n_, "sparse_matrix", "index out of range");
        if (rows_idx_.size() != n_) return T{};
        const auto& idx = rows_idx_[r];
        const auto it = std::lower_bound(idx.begin(), idx.end(), c);
        if (it != idx.end() && *it == c) {
            return rows_val_[r][static_cast<std::size_t>(it - idx.begin())];
        }
        return T{};
    }

    /// y = this * x
    [[nodiscard]] std::vector<T> multiply(const std::vector<T>& x) const {
        std::vector<T> y;
        multiply_into(x, y);
        return y;
    }

    /// y = this * x into a caller-owned buffer (no allocation once y has
    /// capacity); x and y must be distinct vectors.
    void multiply_into(const std::vector<T>& x, std::vector<T>& y) const {
        util::require(x.size() == n_, "sparse_matrix", "multiply: dimension mismatch");
        util::require(&x != &y, "sparse_matrix", "multiply: aliased output");
        y.assign(n_, T{});
        for (std::size_t r = 0; r < rows_idx_.size(); ++r) {
            T acc{};
            const auto& idx = rows_idx_[r];
            const auto& val = rows_val_[r];
            for (std::size_t k = 0; k < idx.size(); ++k) acc += val[k] * x[idx[k]];
            y[r] = acc;
        }
    }

    /// Dense copy (tests, small systems, ablation benches).
    [[nodiscard]] dense_matrix<T> to_dense() const {
        dense_matrix<T> d(n_, n_);
        for (std::size_t r = 0; r < rows_idx_.size(); ++r) {
            for (std::size_t k = 0; k < rows_idx_[r].size(); ++k) {
                d(r, rows_idx_[r][k]) = rows_val_[r][k];
            }
        }
        return d;
    }

    /// this = this * alpha + other * beta (pattern union).
    void add_scaled(const sparse_matrix<T>& other, T beta) {
        util::require(other.size() == n_, "sparse_matrix", "add_scaled: size mismatch");
        for (std::size_t r = 0; r < other.rows_idx_.size(); ++r) {
            for (std::size_t k = 0; k < other.rows_idx_[r].size(); ++k) {
                add(r, other.rows_idx_[r][k], beta * other.rows_val_[r][k]);
            }
        }
    }

    /// Row access for the factorization (index array, value array).
    [[nodiscard]] const std::vector<std::size_t>& row_indices(std::size_t r) const {
        return rows_idx_[r];
    }
    [[nodiscard]] const std::vector<T>& row_values(std::size_t r) const { return rows_val_[r]; }

private:
    std::size_t n_ = 0;
    std::size_t nnz_ = 0;
    std::vector<std::vector<std::size_t>> rows_idx_;
    std::vector<std::vector<T>> rows_val_;
};

/// Sparse LU with threshold partial pivoting (right-looking, row-based
/// Gaussian elimination on sorted sparse rows).  Fill-in is created as
/// needed; for the banded matrices MNA produces from ladders and meshes the
/// fill stays near the band.
template <typename T>
class sparse_lu {
public:
    sparse_lu() = default;
    explicit sparse_lu(const sparse_matrix<T>& a, double pivot_threshold = 0.1) {
        factor(a, pivot_threshold);
    }

    void factor(const sparse_matrix<T>& a, double pivot_threshold = 0.1) {
        n_ = a.size();
        util::require(pivot_threshold > 0.0 && pivot_threshold <= 1.0, "sparse_lu",
                      "pivot threshold must be in (0, 1]");
        // Working copy of the rows.
        rows_idx_.assign(n_, {});
        rows_val_.assign(n_, {});
        for (std::size_t r = 0; r < n_; ++r) {
            rows_idx_[r] = a.row_indices(r);
            rows_val_[r] = a.row_values(r);
        }
        perm_.resize(n_);
        for (std::size_t i = 0; i < n_; ++i) perm_[i] = i;
        lower_idx_.assign(n_, {});
        lower_val_.assign(n_, {});

        std::vector<T> work(n_, T{});          // scatter buffer for row updates
        std::vector<std::size_t> work_touched;  // columns touched in `work`

        for (std::size_t k = 0; k < n_; ++k) {
            // --- pivot selection: largest |a_ik| among rows i >= k, but accept
            // the diagonal row when it is within `pivot_threshold` of the best
            // (keeps permutations, and therefore fill, low).
            std::size_t pivot = n_;
            double best = 0.0;
            double diag_mag = 0.0;
            for (std::size_t r = k; r < n_; ++r) {
                const T v = entry(r, k);
                const double mag = pivot_magnitude(v);
                if (r == k) diag_mag = mag;
                if (mag > best) {
                    best = mag;
                    pivot = r;
                }
            }
            util::require(best > 0.0, "sparse_lu", "matrix is singular");
            if (diag_mag >= pivot_threshold * best) pivot = k;
            if (pivot != k) {
                std::swap(rows_idx_[k], rows_idx_[pivot]);
                std::swap(rows_val_[k], rows_val_[pivot]);
                std::swap(perm_[k], perm_[pivot]);
                // The already-accumulated L multipliers travel with the row.
                std::swap(lower_idx_[k], lower_idx_[pivot]);
                std::swap(lower_val_[k], lower_val_[pivot]);
            }

            const T pivot_value = entry(k, k);
            const T inv_piv = T(1) / pivot_value;

            // --- eliminate column k from all rows below.
            for (std::size_t r = k + 1; r < n_; ++r) {
                const T a_rk = entry(r, k);
                if (a_rk == T{}) continue;
                const T mult = a_rk * inv_piv;
                lower_idx_[r].push_back(k);
                lower_val_[r].push_back(mult);

                // row_r -= mult * row_k  (columns > k), via scatter/gather.
                work_touched.clear();
                const auto& ridx = rows_idx_[r];
                const auto& rval = rows_val_[r];
                for (std::size_t j = 0; j < ridx.size(); ++j) {
                    if (ridx[j] > k) {
                        work[ridx[j]] = rval[j];
                        work_touched.push_back(ridx[j]);
                    }
                }
                const auto& kidx = rows_idx_[k];
                const auto& kval = rows_val_[k];
                for (std::size_t j = 0; j < kidx.size(); ++j) {
                    if (kidx[j] <= k) continue;
                    if (work[kidx[j]] == T{} &&
                        std::find(work_touched.begin(), work_touched.end(), kidx[j]) ==
                            work_touched.end()) {
                        work_touched.push_back(kidx[j]);
                    }
                    work[kidx[j]] -= mult * kval[j];
                }
                std::sort(work_touched.begin(), work_touched.end());
                auto& new_idx = rows_idx_[r];
                auto& new_val = rows_val_[r];
                new_idx.clear();
                new_val.clear();
                for (std::size_t c : work_touched) {
                    if (work[c] != T{}) {
                        new_idx.push_back(c);
                        new_val.push_back(work[c]);
                    }
                    work[c] = T{};
                }
            }
        }
        factored_ = true;
    }

    [[nodiscard]] std::vector<T> solve(const std::vector<T>& b) const {
        std::vector<T> x;
        solve_into(b, x);
        return x;
    }

    /// Solve into a caller-owned buffer (no allocation once x has capacity);
    /// b and x must be distinct vectors.
    void solve_into(const std::vector<T>& b, std::vector<T>& x) const {
        util::require(factored_, "sparse_lu", "solve before factor");
        util::require(b.size() == n_, "sparse_lu", "solve: dimension mismatch");
        util::require(&b != &x, "sparse_lu", "solve: aliased output");
        x.assign(n_, T{});
        // Forward: L y = P b  (L has unit diagonal, stored per-row).
        for (std::size_t i = 0; i < n_; ++i) {
            T acc = b[perm_[i]];
            const auto& lidx = lower_idx_[i];
            const auto& lval = lower_val_[i];
            for (std::size_t j = 0; j < lidx.size(); ++j) acc -= lval[j] * x[lidx[j]];
            x[i] = acc;
        }
        // Backward: U x = y. Row i of U holds columns >= i.
        for (std::size_t ii = n_; ii-- > 0;) {
            T acc = x[ii];
            T diag{};
            const auto& uidx = rows_idx_[ii];
            const auto& uval = rows_val_[ii];
            for (std::size_t j = 0; j < uidx.size(); ++j) {
                if (uidx[j] == ii) {
                    diag = uval[j];
                } else if (uidx[j] > ii) {
                    acc -= uval[j] * x[uidx[j]];
                }
            }
            x[ii] = acc / diag;
        }
    }

    [[nodiscard]] bool factored() const noexcept { return factored_; }
    [[nodiscard]] std::size_t size() const noexcept { return n_; }

    /// Number of stored entries in L + U (fill-in diagnostic).
    [[nodiscard]] std::size_t factor_nonzeros() const {
        std::size_t nnz = 0;
        for (const auto& r : rows_idx_) nnz += r.size();
        for (const auto& r : lower_idx_) nnz += r.size();
        return nnz;
    }

private:
    [[nodiscard]] T entry(std::size_t r, std::size_t c) const {
        const auto& idx = rows_idx_[r];
        const auto it = std::lower_bound(idx.begin(), idx.end(), c);
        if (it != idx.end() && *it == c) {
            return rows_val_[r][static_cast<std::size_t>(it - idx.begin())];
        }
        return T{};
    }

    std::size_t n_ = 0;
    bool factored_ = false;
    std::vector<std::size_t> perm_;
    std::vector<std::vector<std::size_t>> rows_idx_;  // becomes U after factor
    std::vector<std::vector<T>> rows_val_;
    std::vector<std::vector<std::size_t>> lower_idx_;  // L multipliers per row
    std::vector<std::vector<T>> lower_val_;
};

using sparse_matrix_d = sparse_matrix<double>;
using sparse_matrix_z = sparse_matrix<std::complex<double>>;
using sparse_lu_d = sparse_lu<double>;
using sparse_lu_z = sparse_lu<std::complex<double>>;

}  // namespace sca::num

#endif  // SCA_NUMERIC_SPARSE_HPP
